// Layout transformation primitives (paper §4.1, Table 1).
//
// Basic primitives: split, reorder, fuse. Advanced primitives: unfold
// (overlapped tiling, Fig. 2 / Eq. (1)), pad, store_at. Each primitive has an
// inverse (fold, unpad, decouple_at are the advanced inverses); LayoutSeq
// composes primitives and exposes:
//
//   * the forward shape transform,
//   * the forward access-expression rewrite (how reads of the tensor written
//     with ORIGINAL indices are redirected into the NEW physical layout),
//   * the inverse access map (how canonical indices are reconstructed from
//     new-layout loop variables — the S^-1 of paper §6).

#ifndef ALT_LAYOUT_PRIMITIVE_H_
#define ALT_LAYOUT_PRIMITIVE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/ir/expr.h"
#include "src/support/status.h"

namespace alt::layout {

enum class PrimitiveKind { kSplit, kReorder, kFuse, kUnfold, kPad, kStoreAt };

// A sliding-window access decomposition: index = stride * base + window,
// where `window` ranges over [0, window_size). Convolution lowerings pass
// these so unfold can apply the Eq. (1) window-aware rewrite instead of the
// canonical-representative rewrite.
struct WindowPattern {
  ir::Expr base;          // the window position iterator (e.g. output row)
  int64_t stride = 1;     // convolutional stride V
  ir::Expr window;        // the intra-window offset iterator (e.g. rh)
  int64_t window_size = 1;  // M: extent of `window`
};

struct Primitive {
  PrimitiveKind kind;

  // kSplit: splits dimension `dim` into factors (product must equal the old
  // extent). kFuse: fuses `num_dims` dims starting at `dim`. kUnfold / kPad
  // target `dim`.
  int dim = 0;
  std::vector<int64_t> factors;  // kSplit: new sub-extents, outer first
  std::vector<int> perm;         // kReorder: new dim d reads old dim perm[d]
  int num_dims = 0;              // kFuse
  int64_t tile_size = 0;         // kUnfold: B
  int64_t stride = 0;            // kUnfold: S (requires S <= B)
  int64_t pad_before = 0;        // kPad
  int64_t pad_after = 0;         // kPad
  int store_src_tensor = -1;     // kStoreAt: tensor attached into `dim`

  static Primitive Split(int dim, std::vector<int64_t> factors);
  static Primitive Reorder(std::vector<int> perm);
  static Primitive Fuse(int dim, int num_dims);
  static Primitive Unfold(int dim, int64_t tile_size, int64_t stride);
  static Primitive Pad(int dim, int64_t before, int64_t after);
  static Primitive StoreAt(int src_tensor, int dim);

  // True for advanced primitives that duplicate or extend data (paper §4.2:
  // propagation stops at "non-trivial advanced primitives").
  bool IsNontrivialAdvanced() const;

  // Flattened numeric description of the primitive's current parameters; the
  // concatenation over a sequence forms the RL state (paper §5.2.1).
  std::vector<double> StateVector() const;

  std::string ToString() const;
};

// An ordered sequence of primitives applied to one tensor.
class LayoutSeq {
 public:
  LayoutSeq() = default;

  LayoutSeq& Append(Primitive p) {
    prims_.push_back(std::move(p));
    return *this;
  }

  bool empty() const { return prims_.empty(); }
  size_t size() const { return prims_.size(); }
  const std::vector<Primitive>& primitives() const { return prims_; }

  bool HasNontrivialAdvanced() const;

  // Applies the sequence to a shape. Fails when a primitive is inapplicable
  // (e.g. split factors do not divide the extent).
  Status ApplyToShape(std::vector<int64_t>& shape) const;

  // DEPRECATED: thin wrapper over LayoutRelation::MapRead (layout/relation.h,
  // the first-class relation API new call sites should construct directly).
  // Forward access rewrite: given the indices a consumer uses against the
  // ORIGINAL layout (optionally annotated with window patterns, parallel to
  // the index vector), returns indices into the NEW layout.
  StatusOr<std::vector<ir::Expr>> MapRead(
      const std::vector<int64_t>& original_shape, const std::vector<ir::Expr>& indices,
      const std::vector<std::optional<WindowPattern>>& patterns = {}) const;

  // DEPRECATED: thin wrapper over LayoutRelation::MapInverse.
  // Inverse access map: given loop vars / exprs over the NEW layout dims,
  // reconstructs the canonical (original-layout) indices. Sequences with
  // unfold are inverted via old = tile * S + offset (any duplicate maps back
  // to the same canonical element).
  StatusOr<std::vector<ir::Expr>> MapInverse(const std::vector<int64_t>& original_shape,
                                             const std::vector<ir::Expr>& new_indices) const;

  // Inverse sequence built from forward primitives (split <-> fuse, reorder
  // <-> inverse permutation): applying Inverted() to the transformed shape
  // recovers the original layout. Only defined for BASIC primitive sequences;
  // the advanced primitives' inverses (fold / unpad / decouple_at) are
  // realized functionally by MapInverse / runtime::Canonicalize, since they
  // drop duplicated or padded data and are not shape-preserving rewrites.
  StatusOr<LayoutSeq> Inverted(const std::vector<int64_t>& original_shape) const;

  // DEPRECATED compat shim: raw per-primitive RL state (paper §5.2.1),
  // order-sensitive — two sequences denoting the same relation can encode
  // differently. The tuner feeds the agent LayoutRelation::CanonicalState()
  // instead; this remains for the shim test and legacy callers.
  std::vector<double> StateVector() const;

  std::string ToString() const;

 private:
  std::vector<Primitive> prims_;
};

}  // namespace alt::layout

#endif  // ALT_LAYOUT_PRIMITIVE_H_

#include "src/layout/relation.h"

#include <algorithm>
#include <sstream>

#include "src/support/string_util.h"

namespace alt::layout {

using ir::Expr;

namespace detail {
int64_t UnfoldTiles(int64_t extent, int64_t tile, int64_t stride);
Status ApplyPrimitiveToShape(const Primitive& p, std::vector<int64_t>& shape);
}  // namespace detail

namespace {

using Digit = LayoutRelation::Digit;
using PhysDim = LayoutRelation::PhysDim;

// Merges adjacent digits forming one contiguous radix of the same canonical
// dim and drops unit digits — the normalization that makes split∘fuse cancel
// and equivalent factorizations coincide.
void NormalizeDim(PhysDim& dim) {
  std::vector<Digit> out;
  for (const Digit& d : dim.digits) {
    if (d.extent == 1) {
      continue;
    }
    if (!out.empty() && out.back().target == d.target &&
        out.back().stride == d.stride * d.extent) {
      out.back().extent *= d.extent;
      out.back().stride = d.stride;
    } else {
      out.push_back(d);
    }
  }
  dim.digits = std::move(out);
}

// Repartitions a dimension's digit list along `factors` (outer first), each
// part taking a whole number of radix positions; a digit straddling a factor
// boundary is split in two when the boundary divides it. Returns nullopt when
// a boundary falls strictly inside a digit at a non-divisible position (the
// factorization interleaves canonical dims — relation goes opaque).
std::optional<std::vector<PhysDim>> SplitDigits(const PhysDim& dim,
                                                const std::vector<int64_t>& factors) {
  std::vector<Digit> pool(dim.digits.rbegin(), dim.digits.rend());  // inner first
  int m = static_cast<int>(factors.size());
  std::vector<PhysDim> out(m);
  for (int k = m - 1; k >= 0; --k) {
    int64_t need = factors[k];
    std::vector<Digit> got;  // inner first
    while (need > 1) {
      if (pool.empty()) {
        return std::nullopt;
      }
      Digit d = pool.front();
      pool.erase(pool.begin());
      if (d.extent <= need) {
        if (need % d.extent != 0) {
          return std::nullopt;
        }
        got.push_back(d);
        need /= d.extent;
      } else {
        if (d.extent % need != 0) {
          return std::nullopt;
        }
        got.push_back({d.target, need, d.stride});
        pool.insert(pool.begin(), {d.target, d.extent / need, d.stride * need});
        need = 1;
      }
    }
    out[k].extent = factors[k];
    out[k].digits.assign(got.rbegin(), got.rend());
  }
  return out;
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

StatusOr<LayoutRelation> LayoutRelation::FromSeq(const LayoutSeq& seq,
                                                 std::vector<int64_t> canonical_shape) {
  LayoutRelation r;
  r.canonical_shape_ = canonical_shape;
  r.steps_ = seq;
  r.offsets_.assign(canonical_shape.size(), 0);
  for (size_t i = 0; i < canonical_shape.size(); ++i) {
    PhysDim d;
    d.extent = canonical_shape[i];
    if (canonical_shape[i] > 1) {
      d.digits.push_back({static_cast<int>(i), canonical_shape[i], 1});
    }
    r.dims_.push_back(std::move(d));
  }

  std::vector<int64_t> shape = std::move(canonical_shape);
  for (const Primitive& p : seq.primitives()) {
    // Shape validation first (identical statuses to LayoutSeq::ApplyToShape);
    // the digit update below may then index freely.
    ALT_RETURN_IF_ERROR(detail::ApplyPrimitiveToShape(p, shape));
    r.expands_data_ = r.expands_data_ || p.IsNontrivialAdvanced();

    auto shift_unfolds = [&](int at, int delta, int invalidate_lo, int invalidate_hi) {
      auto& u = r.unfolds_;
      u.erase(std::remove_if(u.begin(), u.end(),
                             [&](const UnfoldAccess& a) {
                               return (a.phys_tile_dim >= invalidate_lo &&
                                       a.phys_tile_dim < invalidate_hi) ||
                                      (a.phys_offset_dim >= invalidate_lo &&
                                       a.phys_offset_dim < invalidate_hi);
                             }),
              u.end());
      for (UnfoldAccess& a : u) {
        if (a.phys_tile_dim >= at) {
          a.phys_tile_dim += delta;
        }
        if (a.phys_offset_dim >= at) {
          a.phys_offset_dim += delta;
        }
      }
    };

    if (r.opaque_) {
      continue;
    }
    switch (p.kind) {
      case PrimitiveKind::kSplit: {
        auto parts = SplitDigits(r.dims_[p.dim], p.factors);
        if (!parts) {
          r.opaque_ = true;
          break;
        }
        shift_unfolds(p.dim + 1, static_cast<int>(p.factors.size()) - 1, p.dim, p.dim + 1);
        r.dims_.erase(r.dims_.begin() + p.dim);
        r.dims_.insert(r.dims_.begin() + p.dim, parts->begin(), parts->end());
        break;
      }
      case PrimitiveKind::kReorder: {
        int rank = static_cast<int>(p.perm.size());
        std::vector<PhysDim> out(rank);
        std::vector<int> new_pos(rank);
        for (int d = 0; d < rank; ++d) {
          out[d] = std::move(r.dims_[p.perm[d]]);
          new_pos[p.perm[d]] = d;
        }
        r.dims_ = std::move(out);
        for (UnfoldAccess& a : r.unfolds_) {
          a.phys_tile_dim = new_pos[a.phys_tile_dim];
          a.phys_offset_dim = new_pos[a.phys_offset_dim];
        }
        break;
      }
      case PrimitiveKind::kFuse: {
        PhysDim fused;
        fused.extent = 1;
        for (int i = 0; i < p.num_dims; ++i) {
          const PhysDim& part = r.dims_[p.dim + i];
          fused.extent *= part.extent;
          fused.digits.insert(fused.digits.end(), part.digits.begin(), part.digits.end());
        }
        shift_unfolds(p.dim + p.num_dims, 1 - p.num_dims, p.dim, p.dim + p.num_dims);
        r.dims_.erase(r.dims_.begin() + p.dim, r.dims_.begin() + p.dim + p.num_dims);
        r.dims_.insert(r.dims_.begin() + p.dim, std::move(fused));
        break;
      }
      case PrimitiveKind::kUnfold: {
        NormalizeDim(r.dims_[p.dim]);
        if (r.dims_[p.dim].digits.size() > 1 ||
            (r.dims_[p.dim].digits.empty() && r.dims_[p.dim].extent > 1)) {
          r.opaque_ = true;
          break;
        }
        int64_t extent = r.dims_[p.dim].extent;
        int64_t tiles = detail::UnfoldTiles(extent, p.tile_size, p.stride);
        PhysDim tile, off;
        tile.extent = tiles;
        off.extent = p.tile_size;
        // Invalidate/shift existing terms first: the shift's invalidation
        // range covers p.dim and must not swallow the term recorded below.
        shift_unfolds(p.dim + 1, 1, p.dim, p.dim + 1);
        if (!r.dims_[p.dim].digits.empty()) {
          Digit base = r.dims_[p.dim].digits[0];
          tile.digits.push_back({base.target, tiles, p.stride * base.stride});
          off.digits.push_back({base.target, p.tile_size, base.stride});
          if (p.stride < p.tile_size) {
            r.unfolds_.push_back(
                {p.dim, p.dim + 1, base.target, p.tile_size, p.stride, tiles});
          }
        }
        r.dims_.erase(r.dims_.begin() + p.dim);
        r.dims_.insert(r.dims_.begin() + p.dim, {std::move(tile), std::move(off)});
        break;
      }
      case PrimitiveKind::kPad: {
        NormalizeDim(r.dims_[p.dim]);
        if (r.dims_[p.dim].digits.size() != 1 && (p.pad_before != 0 || p.pad_after != 0)) {
          r.opaque_ = true;
          break;
        }
        r.dims_[p.dim].extent += p.pad_before + p.pad_after;
        if (!r.dims_[p.dim].digits.empty()) {
          Digit& d = r.dims_[p.dim].digits[0];
          d.extent += p.pad_before + p.pad_after;
          r.offsets_[d.target] += p.pad_before * d.stride;
        }
        shift_unfolds(p.dim, 0, p.dim, p.dim + 1);
        break;
      }
      case PrimitiveKind::kStoreAt: {
        // The attached slice holds foreign data; no digit form describes it.
        r.dims_[p.dim].extent += 1;
        r.opaque_ = true;
        r.has_store_at_ = true;
        break;
      }
    }
  }
  r.physical_shape_ = std::move(shape);
  for (PhysDim& d : r.dims_) {
    NormalizeDim(d);
  }
  if (r.opaque_) {
    r.dims_.clear();
    r.unfolds_.clear();
  }
  return r;
}

LayoutRelation LayoutRelation::Identity(std::vector<int64_t> shape) {
  auto r = FromSeq(LayoutSeq(), std::move(shape));
  ALT_CHECK(r.ok());
  return *std::move(r);
}

bool LayoutRelation::IsBijective() const {
  if (opaque_ || expands_data_) {
    return false;
  }
  for (int64_t off : offsets_) {
    if (off != 0) {
      return false;
    }
  }
  int crank = static_cast<int>(canonical_shape_.size());
  std::vector<std::vector<Digit>> per_dim(crank);
  for (const PhysDim& d : dims_) {
    for (const Digit& g : d.digits) {
      if (g.target < 0 || g.target >= crank) {
        return false;
      }
      per_dim[g.target].push_back(g);
    }
  }
  for (int c = 0; c < crank; ++c) {
    auto& digits = per_dim[c];
    std::sort(digits.begin(), digits.end(),
              [](const Digit& a, const Digit& b) { return a.stride < b.stride; });
    int64_t radix = 1;
    for (const Digit& g : digits) {
      if (g.stride != radix) {
        return false;
      }
      radix *= g.extent;
    }
    if (radix != canonical_shape_[c]) {
      return false;
    }
  }
  return true;
}

bool LayoutRelation::IsIdentity() const {
  if (opaque_ || expands_data_ || physical_shape_ != canonical_shape_) {
    return false;
  }
  for (size_t i = 0; i < dims_.size(); ++i) {
    const PhysDim& d = dims_[i];
    if (d.digits.empty()) {
      if (d.extent != 1) {
        return false;
      }
      continue;
    }
    if (d.digits.size() != 1 || d.digits[0].target != static_cast<int>(i) ||
        d.digits[0].stride != 1 || d.digits[0].extent != d.extent) {
      return false;
    }
  }
  return true;
}

StatusOr<LayoutSeq> LayoutRelation::SynthesizeSteps() const {
  if (opaque_ || !IsBijective()) {
    return Status::InvalidArgument("synthesis requires an exact bijective relation");
  }
  int crank = static_cast<int>(canonical_shape_.size());
  if (crank == 0) {
    return LayoutSeq();
  }
  // Entry: one intermediate dim produced by splitting a canonical dim. Digits
  // keyed by (phys dim, digit index); pseudo entries carry {-1, -1}.
  struct Entry {
    int64_t extent;
    int phys = -1, digit = -1;
    int64_t stride = 0;
  };
  std::vector<std::vector<Entry>> ext(crank);  // outer first per canonical dim
  for (size_t p = 0; p < dims_.size(); ++p) {
    for (size_t j = 0; j < dims_[p].digits.size(); ++j) {
      const Digit& g = dims_[p].digits[j];
      ext[g.target].push_back(
          {g.extent, static_cast<int>(p), static_cast<int>(j), g.stride});
    }
  }
  for (auto& list : ext) {
    std::sort(list.begin(), list.end(),
              [](const Entry& a, const Entry& b) { return a.stride > b.stride; });
  }
  // Unit physical dims consume pseudo unit entries split off canonical dim 0.
  std::vector<int> unit_phys;
  for (size_t p = 0; p < dims_.size(); ++p) {
    if (dims_[p].digits.empty()) {
      unit_phys.push_back(static_cast<int>(p));
    }
  }
  for (size_t u = 0; u < unit_phys.size(); ++u) {
    ext[0].push_back({1, unit_phys[u], -1, 0});
  }

  LayoutSeq seq;
  // Split phase: intermediate slot ids in canonical order.
  struct Slot {
    int phys, digit;
  };
  std::vector<Slot> slots;
  int extra = 0;
  for (int c = 0; c < crank; ++c) {
    if (ext[c].empty()) {
      // Unit canonical dim nothing consumes: fuse it into physical dim 0.
      slots.push_back({0, -2});
      continue;
    }
    if (ext[c].size() >= 2) {
      std::vector<int64_t> factors;
      for (const Entry& e : ext[c]) {
        factors.push_back(e.extent);
      }
      seq.Append(Primitive::Split(c + extra, std::move(factors)));
    }
    for (const Entry& e : ext[c]) {
      slots.push_back({e.phys, e.digit == -1 ? -1 : e.digit});
    }
    extra += static_cast<int>(ext[c].size()) - 1;
  }
  // Reorder phase: physical consumption order over the intermediate slots.
  std::vector<int> perm;
  std::vector<int> group(dims_.size(), 0);
  for (size_t p = 0; p < dims_.size(); ++p) {
    // Real digits fuse outer-to-inner, i.e. by digit index — a dim's outer
    // digit can sit at a later slot than its inner one when the two target
    // different canonical dims, so slot order is not the consumption order.
    // Trailing unit slots (pseudo digits, leftover unit canonical dims) fuse
    // innermost — their value is always zero, so placement is free; dim 0
    // hosts the leftovers.
    for (size_t j = 0; j < dims_[p].digits.size(); ++j) {
      for (size_t s = 0; s < slots.size(); ++s) {
        if (slots[s].phys == static_cast<int>(p) &&
            slots[s].digit == static_cast<int>(j)) {
          perm.push_back(static_cast<int>(s));
          ++group[p];
        }
      }
    }
    for (size_t s = 0; s < slots.size(); ++s) {
      bool pseudo_here = slots[s].phys == static_cast<int>(p) && slots[s].digit == -1;
      bool leftover_here = p == 0 && slots[s].digit == -2;
      if (pseudo_here || leftover_here) {
        perm.push_back(static_cast<int>(s));
        ++group[p];
      }
    }
  }
  bool identity = true;
  for (size_t i = 0; i < perm.size(); ++i) {
    identity = identity && perm[i] == static_cast<int>(i);
  }
  if (!identity) {
    seq.Append(Primitive::Reorder(perm));
  }
  // Fuse phase.
  int pos = 0;
  for (size_t p = 0; p < dims_.size(); ++p) {
    if (group[p] >= 2) {
      seq.Append(Primitive::Fuse(pos, group[p]));
    }
    ++pos;
  }
  return seq;
}

StatusOr<LayoutRelation> LayoutRelation::Inverse() const {
  if (!IsBijective()) {
    return Status::InvalidArgument("Inverse: relation is not bijective");
  }
  LayoutRelation inv;
  inv.canonical_shape_ = physical_shape_;
  inv.physical_shape_ = canonical_shape_;
  inv.offsets_.assign(physical_shape_.size(), 0);
  int crank = static_cast<int>(canonical_shape_.size());
  inv.dims_.resize(crank);
  for (int c = 0; c < crank; ++c) {
    inv.dims_[c].extent = canonical_shape_[c];
  }
  // A digit at radix position `pos` of old physical dim p becomes, in the
  // inverse, a digit extracting floor(phys[p] / pos) — the transpose.
  struct Placed {
    Digit digit;
    int64_t old_stride;
  };
  std::vector<std::vector<Placed>> per_dim(crank);
  for (size_t p = 0; p < dims_.size(); ++p) {
    int64_t pos = 1;
    for (int j = static_cast<int>(dims_[p].digits.size()) - 1; j >= 0; --j) {
      const Digit& g = dims_[p].digits[j];
      per_dim[g.target].push_back({{static_cast<int>(p), g.extent, pos}, g.stride});
      pos *= g.extent;
    }
  }
  for (int c = 0; c < crank; ++c) {
    std::sort(per_dim[c].begin(), per_dim[c].end(),
              [](const Placed& a, const Placed& b) { return a.old_stride > b.old_stride; });
    for (const Placed& pl : per_dim[c]) {
      inv.dims_[c].digits.push_back(pl.digit);
    }
    NormalizeDim(inv.dims_[c]);
  }
  auto steps = inv.SynthesizeSteps();
  ALT_RETURN_IF_ERROR(steps.status());
  inv.steps_ = *std::move(steps);
  return inv;
}

StatusOr<LayoutRelation> LayoutRelation::Compose(const LayoutRelation& second,
                                                 const LayoutRelation& first) {
  if (second.canonical_shape() != first.physical_shape()) {
    return Status::InvalidArgument("Compose: shape mismatch between relations");
  }
  // Relation construction is itself a fold of per-primitive compositions, so
  // composing is replaying both step lists over the first canonical shape —
  // exact wherever the digit rules align, opaque otherwise.
  LayoutSeq combined = first.steps();
  for (const Primitive& p : second.steps().primitives()) {
    combined.Append(p);
  }
  return FromSeq(combined, first.canonical_shape());
}

uint64_t LayoutRelation::Fingerprint() const {
  std::ostringstream oss;
  if (opaque_) {
    oss << "O|c=" << Join(canonical_shape_, ",") << "|" << steps_.ToString();
    return Fnv1a(oss.str());
  }
  oss << "R|c=" << Join(canonical_shape_, ",") << "|";
  for (const PhysDim& d : dims_) {
    oss << "d" << d.extent << ":";
    for (const Digit& g : d.digits) {
      oss << "(" << g.target << "," << g.extent << "," << g.stride << ")";
    }
    oss << "|";
  }
  oss << "o=" << Join(offsets_, ",");
  if (expands_data_) {
    oss << "|x";
  }
  return Fnv1a(oss.str());
}

int64_t LayoutRelation::InnerStrideOf(int dim) const {
  if (opaque_) {
    return 0;
  }
  std::vector<int64_t> pstrides(dims_.size(), 1);
  for (int i = static_cast<int>(dims_.size()) - 2; i >= 0; --i) {
    pstrides[i] = pstrides[i + 1] * dims_[i + 1].extent;
  }
  for (size_t p = 0; p < dims_.size(); ++p) {
    int64_t pos = 1;
    for (int j = static_cast<int>(dims_[p].digits.size()) - 1; j >= 0; --j) {
      const Digit& g = dims_[p].digits[j];
      if (g.target == dim && g.stride == 1) {
        return pstrides[p] * pos;
      }
      pos *= g.extent;
    }
  }
  return 0;
}

int64_t LayoutRelation::CoalescedRun(int dim) const {
  if (opaque_) {
    return 1;
  }
  // Flatten digits innermost-first across the physical row-major order; a
  // canonical run stays contiguous while the trailing digits continue the
  // radix of `dim`.
  std::vector<Digit> flat;
  for (const PhysDim& d : dims_) {
    for (const Digit& g : d.digits) {
      flat.push_back(g);
    }
  }
  int64_t run = 1;
  for (auto it = flat.rbegin(); it != flat.rend(); ++it) {
    if (it->target != dim || it->stride != run) {
      break;
    }
    run *= it->extent;
  }
  return run;
}

std::vector<int64_t> LayoutRelation::DigitExtents(int dim) const {
  std::vector<Digit> digits;
  for (const PhysDim& d : dims_) {
    for (const Digit& g : d.digits) {
      if (g.target == dim) {
        digits.push_back(g);
      }
    }
  }
  std::sort(digits.begin(), digits.end(),
            [](const Digit& a, const Digit& b) { return a.stride < b.stride; });
  std::vector<int64_t> out;
  for (const Digit& g : digits) {
    out.push_back(g.extent);
  }
  return out;
}

std::vector<double> LayoutRelation::CanonicalState() const {
  if (!opaque_ && IsBijective()) {
    auto steps = SynthesizeSteps();
    if (steps.ok()) {
      return steps->StateVector();
    }
  }
  if (!opaque_) {
    // Flat numeric encoding of the normalized form: identical for any two
    // sequences denoting this relation.
    std::vector<double> s;
    for (const PhysDim& d : dims_) {
      s.push_back(static_cast<double>(d.extent));
      s.push_back(static_cast<double>(d.digits.size()));
      for (const Digit& g : d.digits) {
        s.push_back(g.target);
        s.push_back(static_cast<double>(g.extent));
        s.push_back(static_cast<double>(g.stride));
      }
    }
    s.push_back(-1.0);
    for (int64_t off : offsets_) {
      s.push_back(static_cast<double>(off));
    }
    return s;
  }
  return steps_.StateVector();
}

std::string LayoutRelation::ToString() const {
  std::ostringstream oss;
  oss << "(" << Join(canonical_shape_, "x") << ") -> (" << Join(physical_shape_, "x")
      << ")";
  if (opaque_) {
    oss << " opaque{" << steps_.ToString() << "}";
    return oss.str();
  }
  for (const PhysDim& d : dims_) {
    oss << " [";
    for (size_t j = 0; j < d.digits.size(); ++j) {
      const Digit& g = d.digits[j];
      oss << (j > 0 ? " " : "") << "c" << g.target << "/" << g.stride << "%" << g.extent;
    }
    oss << "]";
  }
  for (size_t c = 0; c < offsets_.size(); ++c) {
    if (offsets_[c] != 0) {
      oss << " off(c" << c << ")=" << offsets_[c];
    }
  }
  return oss.str();
}

// ---------------------------------------------------------------------------
// Access-map emission. These walks are the legacy LayoutSeq::MapRead /
// MapInverse algorithms moved verbatim (LayoutSeq now delegates here): the
// differential corpus in layout_relation_test pins them expression-for-
// expression, so lowered programs — and every downstream structural key and
// perf estimate — are unchanged by the relation layer.
// ---------------------------------------------------------------------------

StatusOr<std::vector<Expr>> LayoutRelation::MapRead(
    const std::vector<Expr>& indices,
    const std::vector<std::optional<WindowPattern>>& patterns) const {
  std::vector<int64_t> shape = canonical_shape_;
  std::vector<Expr> idx = indices;
  std::vector<std::optional<WindowPattern>> pat = patterns;
  pat.resize(idx.size());

  for (const auto& p : steps_.primitives()) {
    int rank = static_cast<int>(shape.size());
    switch (p.kind) {
      case PrimitiveKind::kSplit: {
        Expr e = idx[p.dim];
        std::vector<Expr> parts;
        int m = static_cast<int>(p.factors.size());
        int64_t inner = 1;
        for (int l = 1; l < m; ++l) {
          inner *= p.factors[l];
        }
        for (int l = 0; l < m; ++l) {
          Expr part = ir::FloorDiv(e, inner);
          if (l > 0) {
            part = ir::Mod(part, p.factors[l]);
          }
          parts.push_back(part);
          if (l + 1 < m) {
            inner /= p.factors[l + 1];
          }
        }
        idx.erase(idx.begin() + p.dim);
        idx.insert(idx.begin() + p.dim, parts.begin(), parts.end());
        pat.erase(pat.begin() + p.dim);
        pat.insert(pat.begin() + p.dim, static_cast<size_t>(m), std::nullopt);
        break;
      }
      case PrimitiveKind::kReorder: {
        std::vector<Expr> out(rank);
        std::vector<std::optional<WindowPattern>> pout(rank);
        for (int d = 0; d < rank; ++d) {
          out[d] = idx[p.perm[d]];
          pout[d] = pat[p.perm[d]];
        }
        idx = std::move(out);
        pat = std::move(pout);
        break;
      }
      case PrimitiveKind::kFuse: {
        Expr fused = idx[p.dim];
        for (int i = 1; i < p.num_dims; ++i) {
          fused = ir::Add(ir::Mul(fused, shape[p.dim + i]), idx[p.dim + i]);
        }
        idx.erase(idx.begin() + p.dim, idx.begin() + p.dim + p.num_dims);
        idx.insert(idx.begin() + p.dim, fused);
        pat.erase(pat.begin() + p.dim, pat.begin() + p.dim + p.num_dims);
        pat.insert(pat.begin() + p.dim, std::nullopt);
        break;
      }
      case PrimitiveKind::kUnfold: {
        int64_t extent = shape[p.dim];
        int64_t tiles = detail::UnfoldTiles(extent, p.tile_size, p.stride);
        Expr tile;
        Expr offset;
        const auto& wp = pat[p.dim];
        bool window_form = false;
        if (wp.has_value() && (p.tile_size - wp->window_size) % wp->stride == 0) {
          // Eq. (1): windows per tile; valid when tiles advance by whole
          // windows so a window never straddles tiles.
          int64_t wpt = (p.tile_size - wp->window_size) / wp->stride + 1;
          if (p.stride == wp->stride * wpt) {
            tile = ir::FloorDiv(wp->base, wpt);
            offset = ir::Add(ir::Mul(ir::Mod(wp->base, wpt), wp->stride), wp->window);
            window_form = true;
          }
        }
        if (!window_form) {
          // Canonical representative: the copy in the last tile containing
          // the element with the smallest tile index.
          Expr e = idx[p.dim];
          tile = ir::Min(ir::FloorDiv(e, p.stride), ir::Const(tiles - 1));
          offset = ir::Sub(e, ir::Mul(tile, p.stride));
        }
        idx[p.dim] = tile;
        idx.insert(idx.begin() + p.dim + 1, offset);
        pat[p.dim] = std::nullopt;
        pat.insert(pat.begin() + p.dim + 1, std::nullopt);
        break;
      }
      case PrimitiveKind::kPad: {
        idx[p.dim] = ir::Add(idx[p.dim], p.pad_before);
        if (pat[p.dim].has_value()) {
          // Shifting the base keeps the window decomposition valid.
          auto wp = *pat[p.dim];
          if (p.pad_before % wp.stride == 0) {
            wp.base = ir::Add(wp.base, p.pad_before / wp.stride);
            pat[p.dim] = wp;
          } else {
            pat[p.dim] = std::nullopt;
          }
        }
        break;
      }
      case PrimitiveKind::kStoreAt: {
        // Reads of the destination tensor are unchanged; the attached source
        // occupies the extra trailing slice and is rewritten by the lowering.
        break;
      }
    }
    ALT_RETURN_IF_ERROR(detail::ApplyPrimitiveToShape(p, shape));
  }
  return idx;
}

StatusOr<std::vector<Expr>> LayoutRelation::MapInverse(
    const std::vector<Expr>& physical_indices) const {
  // Record the shape before each primitive.
  std::vector<std::vector<int64_t>> shapes;
  std::vector<int64_t> shape = canonical_shape_;
  for (const auto& p : steps_.primitives()) {
    shapes.push_back(shape);
    ALT_RETURN_IF_ERROR(detail::ApplyPrimitiveToShape(p, shape));
  }

  std::vector<Expr> idx = physical_indices;
  for (int pi = static_cast<int>(steps_.size()) - 1; pi >= 0; --pi) {
    const Primitive& p = steps_.primitives()[pi];
    const std::vector<int64_t>& before = shapes[pi];
    switch (p.kind) {
      case PrimitiveKind::kSplit: {
        int m = static_cast<int>(p.factors.size());
        Expr combined = idx[p.dim];
        for (int l = 1; l < m; ++l) {
          combined = ir::Add(ir::Mul(combined, p.factors[l]), idx[p.dim + l]);
        }
        idx.erase(idx.begin() + p.dim, idx.begin() + p.dim + m);
        idx.insert(idx.begin() + p.dim, combined);
        break;
      }
      case PrimitiveKind::kReorder: {
        int rank = static_cast<int>(p.perm.size());
        std::vector<Expr> out(rank);
        for (int d = 0; d < rank; ++d) {
          out[p.perm[d]] = idx[d];
        }
        idx = std::move(out);
        break;
      }
      case PrimitiveKind::kFuse: {
        Expr fused = idx[p.dim];
        std::vector<Expr> parts(p.num_dims);
        int64_t inner = 1;
        for (int i = 1; i < p.num_dims; ++i) {
          inner *= before[p.dim + i];
        }
        for (int i = 0; i < p.num_dims; ++i) {
          Expr part = ir::FloorDiv(fused, inner);
          if (i > 0) {
            part = ir::Mod(part, before[p.dim + i]);
          }
          parts[i] = part;
          if (i + 1 < p.num_dims) {
            inner /= before[p.dim + i + 1];
          }
        }
        idx.erase(idx.begin() + p.dim);
        idx.insert(idx.begin() + p.dim, parts.begin(), parts.end());
        break;
      }
      case PrimitiveKind::kUnfold: {
        Expr original = ir::Add(ir::Mul(idx[p.dim], p.stride), idx[p.dim + 1]);
        idx.erase(idx.begin() + p.dim, idx.begin() + p.dim + 2);
        idx.insert(idx.begin() + p.dim, original);
        break;
      }
      case PrimitiveKind::kPad: {
        idx[p.dim] = ir::Sub(idx[p.dim], p.pad_before);
        break;
      }
      case PrimitiveKind::kStoreAt:
        break;
    }
  }
  return idx;
}

}  // namespace alt::layout

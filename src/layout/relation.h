// First-class layout relations (layout algebra v2).
//
// A LayoutRelation is the semantic object a primitive sequence (§4.1) merely
// spells: an invertible index relation between a tensor's canonical
// (logical) coordinates and its physical (laid-out) coordinates. Where
// LayoutSeq is syntax — an ordered list of rewrite steps — the relation is
// the function those steps denote, normalized so two sequences denoting the
// same relation compare equal (`Fingerprint()`), compose (`Compose`), invert
// (`Inverse`), and answer coalescing / divisibility / stride queries without
// primitive-kind dispatch.
//
// Canonical form. The inverse map physical → canonical of every primitive
// sequence is a pure quasi-affine function (only the *forward* unfold rewrite
// needs a Min clamp), so the relation is normalized into a mixed-radix "digit
// form": each physical dimension carries an ordered digit list, each digit
// extracting floor(value / radix) % extent and contributing
// `extent × stride` canonical units of one canonical dimension, plus a
// per-canonical-dimension offset (padding shift). Under this form:
//
//   * split-then-fuse cancels, split(d,{a,b,c}) == split(d,{a,bc});split(...)
//     and identity reorders vanish — adjacent digits with matching strides
//     merge and unit digits drop;
//   * bijectivity is a radix check (every canonical dim exactly tiled, no
//     offsets, no data expansion), and `Inverse` is a digit transpose;
//   * composition substitutes one relation's digit decomposition into the
//     other's extractions, splitting digits at aligned radix boundaries.
//
// Sequences whose advanced primitives act on a dimension that is not a
// single merged digit (e.g. pad after an interleaving fuse) fall back to an
// *opaque* relation: access maps, shape transforms and data-expansion flags
// stay exact, but the fingerprint hashes the step serialization instead of
// the digit form, so only textually identical sequences deduplicate.
//
// Access-map emission is bit-identical to the legacy LayoutSeq path by
// construction: the relation keeps the originating steps and emits
// MapRead / MapInverse expressions with the exact historical algorithm
// (gated by the randomized differential corpus in layout_relation_test).
// The normalized form feeds only the algebra: Compose / Inverse /
// Fingerprint / queries / CanonicalState.

#ifndef ALT_LAYOUT_RELATION_H_
#define ALT_LAYOUT_RELATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/layout/primitive.h"

namespace alt::layout {

class LayoutRelation {
 public:
  // One mixed-radix digit of a physical dimension: selects
  // floor(canonical[target] / stride) mod extent (reading the relation
  // inversely: contributes digit_value * stride to canonical[target]).
  struct Digit {
    int target = -1;
    int64_t extent = 1;
    int64_t stride = 1;
  };

  struct PhysDim {
    int64_t extent = 1;
    std::vector<Digit> digits;  // outer-to-inner mixed radix; empty: constant
  };

  // One overlapped-tiling (unfold, S < B) term of the relation: physical dims
  // `phys_tile_dim` / `phys_offset_dim` jointly cover canonical dim
  // `canonical_dim` as tile * stride + offset. This is the precise metadata
  // behind the single-clamp normal form Min(FloorDiv(e, stride), tiles - 1)
  // the forward access rewrite emits, which ir::AffineAnalyzer
  // ::DecomposeClamped consumes exactly (see src/ir/affine.h).
  struct UnfoldAccess {
    int phys_tile_dim = -1;
    int phys_offset_dim = -1;
    int canonical_dim = -1;
    int64_t tile_size = 0;
    int64_t stride = 0;
    int64_t tiles = 0;
  };

  // Builds the relation denoted by `seq` over `canonical_shape`. Fails
  // exactly when the sequence is inapplicable to the shape (same statuses as
  // LayoutSeq::ApplyToShape).
  static StatusOr<LayoutRelation> FromSeq(const LayoutSeq& seq,
                                          std::vector<int64_t> canonical_shape);

  static LayoutRelation Identity(std::vector<int64_t> shape);

  const std::vector<int64_t>& canonical_shape() const { return canonical_shape_; }
  const std::vector<int64_t>& physical_shape() const { return physical_shape_; }
  // The originating primitive steps (provenance; drives access-map emission).
  const LayoutSeq& steps() const { return steps_; }

  // Forward shape transform: the canonical shape mapped through the relation.
  const std::vector<int64_t>& ApplyToShape() const { return physical_shape_; }

  // Forward access rewrite / inverse access map, bit-identical to the legacy
  // LayoutSeq::MapRead / MapInverse (which now delegate here).
  StatusOr<std::vector<ir::Expr>> MapRead(
      const std::vector<ir::Expr>& indices,
      const std::vector<std::optional<WindowPattern>>& patterns = {}) const;
  StatusOr<std::vector<ir::Expr>> MapInverse(
      const std::vector<ir::Expr>& physical_indices) const;

  // True when the normalized digit form represents the relation exactly;
  // false for opaque fallbacks (advanced primitive on a compound dimension).
  bool exact() const { return !opaque_; }

  // Data expansion (paper §4.2 constraint 1): overlapping unfold (S < B),
  // nonzero pad, or store_at duplicates/extends data, so propagation must
  // stop. Matches LayoutSeq::HasNontrivialAdvanced exactly.
  bool ExpandsData() const { return expands_data_; }

  // True when the relation is a bijection between canonical and physical
  // index space: every canonical dimension is exactly tiled by its digits,
  // no offsets, no data expansion. Bijective relations invert.
  bool IsBijective() const;

  bool IsIdentity() const;

  // The inverse relation (physical → canonical). Defined iff IsBijective();
  // the result carries a synthesized primitive realization so its access
  // maps emit through the same legacy path.
  StatusOr<LayoutRelation> Inverse() const;

  // Relation composition: `second ∘ first` — `first` maps canonical → mid,
  // `second` maps mid → physical (second.canonical_shape() must equal
  // first.physical_shape()). Exact when second's digit boundaries align with
  // first's radix decomposition; otherwise the result is the step
  // concatenation with an opaque semantic core.
  static StatusOr<LayoutRelation> Compose(const LayoutRelation& second,
                                          const LayoutRelation& first);

  // Stable 64-bit fingerprint of the normalized relation: equal for any two
  // primitive sequences denoting the same relation (exact case), equal only
  // for identical step serializations in the opaque case. Includes the
  // canonical shape (parameters are shape-dependent).
  uint64_t Fingerprint() const;

  // --- Coalescing / divisibility / stride queries (exact relations). ---

  // Physical row-major stride at which canonical dimension `dim` advances in
  // its unit-stride digit (0 when the dim has no unit digit or the relation
  // is opaque). The innermost-loop coalescing question: stride 1 means
  // consecutive canonical elements along `dim` are physically adjacent.
  int64_t InnerStrideOf(int dim) const;

  // Length of the physically contiguous run along canonical dimension `dim`:
  // how many consecutive canonical elements land in consecutive physical
  // slots before the layout jumps. 1 when scattered, extent when dense.
  int64_t CoalescedRun(int dim) const;

  // The factors canonical dimension `dim` is partitioned into, innermost
  // first (the divisibility structure a vectorizer / tiler must respect).
  std::vector<int64_t> DigitExtents(int dim) const;

  // Overlapped-tiling terms (see UnfoldAccess). Empty for bijective layouts.
  const std::vector<UnfoldAccess>& UnfoldAccesses() const { return unfolds_; }

  // Relation-derived RL state (paper §5.2.1): the legacy per-primitive state
  // of the *canonical synthesized sequence*, so any two sequences denoting
  // the same relation feed the PPO agent identical states. Opaque relations
  // fall back to the raw step state.
  std::vector<double> CanonicalState() const;

  std::string ToString() const;

 private:
  LayoutRelation() = default;

  // Synthesizes a primitive sequence realizing the normalized digit form
  // (bijective relations only): per-dim splits, one reorder, per-dim fuses.
  StatusOr<LayoutSeq> SynthesizeSteps() const;

  std::vector<int64_t> canonical_shape_;
  std::vector<int64_t> physical_shape_;
  LayoutSeq steps_;

  std::vector<PhysDim> dims_;     // normalized digit form (exact case)
  std::vector<int64_t> offsets_;  // per canonical dim: canonical = Σ digits − offset
  std::vector<UnfoldAccess> unfolds_;
  bool opaque_ = false;
  bool expands_data_ = false;
  bool has_store_at_ = false;
};

}  // namespace alt::layout

#endif  // ALT_LAYOUT_RELATION_H_

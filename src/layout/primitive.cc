#include "src/layout/primitive.h"

#include <sstream>

#include "src/layout/relation.h"
#include "src/support/string_util.h"

namespace alt::layout {

using ir::Expr;

Primitive Primitive::Split(int dim, std::vector<int64_t> factors) {
  Primitive p;
  p.kind = PrimitiveKind::kSplit;
  p.dim = dim;
  p.factors = std::move(factors);
  return p;
}

Primitive Primitive::Reorder(std::vector<int> perm) {
  Primitive p;
  p.kind = PrimitiveKind::kReorder;
  p.perm = std::move(perm);
  return p;
}

Primitive Primitive::Fuse(int dim, int num_dims) {
  Primitive p;
  p.kind = PrimitiveKind::kFuse;
  p.dim = dim;
  p.num_dims = num_dims;
  return p;
}

Primitive Primitive::Unfold(int dim, int64_t tile_size, int64_t stride) {
  Primitive p;
  p.kind = PrimitiveKind::kUnfold;
  p.dim = dim;
  p.tile_size = tile_size;
  p.stride = stride;
  return p;
}

Primitive Primitive::Pad(int dim, int64_t before, int64_t after) {
  Primitive p;
  p.kind = PrimitiveKind::kPad;
  p.dim = dim;
  p.pad_before = before;
  p.pad_after = after;
  return p;
}

Primitive Primitive::StoreAt(int src_tensor, int dim) {
  Primitive p;
  p.kind = PrimitiveKind::kStoreAt;
  p.dim = dim;
  p.store_src_tensor = src_tensor;
  return p;
}

bool Primitive::IsNontrivialAdvanced() const {
  switch (kind) {
    case PrimitiveKind::kUnfold:
      // Overlapped tiling duplicates data whenever the stride is smaller than
      // the tile; a non-overlapping unfold (S == B) is an ordinary split.
      return stride < tile_size;
    case PrimitiveKind::kPad:
      return pad_before != 0 || pad_after != 0;
    case PrimitiveKind::kStoreAt:
      return true;
    default:
      return false;
  }
}

std::vector<double> Primitive::StateVector() const {
  std::vector<double> s;
  s.push_back(static_cast<double>(kind));
  s.push_back(dim);
  switch (kind) {
    case PrimitiveKind::kSplit:
      for (int64_t f : factors) {
        s.push_back(static_cast<double>(f));
      }
      break;
    case PrimitiveKind::kReorder:
      for (int d : perm) {
        s.push_back(d);
      }
      break;
    case PrimitiveKind::kFuse:
      s.push_back(num_dims);
      break;
    case PrimitiveKind::kUnfold:
      s.push_back(static_cast<double>(tile_size));
      s.push_back(static_cast<double>(stride));
      break;
    case PrimitiveKind::kPad:
      s.push_back(static_cast<double>(pad_before));
      s.push_back(static_cast<double>(pad_after));
      break;
    case PrimitiveKind::kStoreAt:
      s.push_back(store_src_tensor);
      break;
  }
  return s;
}

std::string Primitive::ToString() const {
  std::ostringstream oss;
  switch (kind) {
    case PrimitiveKind::kSplit:
      oss << "split(dim=" << dim << ", factors=[" << Join(factors, ", ") << "])";
      break;
    case PrimitiveKind::kReorder:
      oss << "reorder(perm=[" << Join(perm, ", ") << "])";
      break;
    case PrimitiveKind::kFuse:
      oss << "fuse(dim=" << dim << ", num=" << num_dims << ")";
      break;
    case PrimitiveKind::kUnfold:
      oss << "unfold(dim=" << dim << ", tile=" << tile_size << ", stride=" << stride << ")";
      break;
    case PrimitiveKind::kPad:
      oss << "pad(dim=" << dim << ", before=" << pad_before << ", after=" << pad_after << ")";
      break;
    case PrimitiveKind::kStoreAt:
      oss << "store_at(src=T" << store_src_tensor << ", dim=" << dim << ")";
      break;
  }
  return oss.str();
}

// Shared with relation.cc (the relation replays primitive steps for shape
// transforms and access-map emission).
namespace detail {

// Number of tiles an unfold produces: ceil((D - B) / S) + 1 (paper §4.1.2).
int64_t UnfoldTiles(int64_t extent, int64_t tile, int64_t stride) {
  int64_t n = (extent - tile + stride - 1) / stride + 1;
  return n < 1 ? 1 : n;
}

Status ApplyPrimitiveToShape(const Primitive& p, std::vector<int64_t>& shape) {
  int rank = static_cast<int>(shape.size());
  switch (p.kind) {
    case PrimitiveKind::kSplit: {
      if (p.dim < 0 || p.dim >= rank) {
        return Status::InvalidArgument("split: dim out of range");
      }
      int64_t prod = 1;
      for (int64_t f : p.factors) {
        if (f <= 0) {
          return Status::InvalidArgument("split: non-positive factor");
        }
        prod *= f;
      }
      if (prod != shape[p.dim]) {
        return Status::InvalidArgument("split: factors do not multiply to the extent");
      }
      shape.erase(shape.begin() + p.dim);
      shape.insert(shape.begin() + p.dim, p.factors.begin(), p.factors.end());
      return Status::Ok();
    }
    case PrimitiveKind::kReorder: {
      if (static_cast<int>(p.perm.size()) != rank) {
        return Status::InvalidArgument("reorder: permutation size mismatch");
      }
      std::vector<bool> seen(rank, false);
      std::vector<int64_t> out(rank);
      for (int d = 0; d < rank; ++d) {
        int s = p.perm[d];
        if (s < 0 || s >= rank || seen[s]) {
          return Status::InvalidArgument("reorder: invalid permutation");
        }
        seen[s] = true;
        out[d] = shape[s];
      }
      shape = std::move(out);
      return Status::Ok();
    }
    case PrimitiveKind::kFuse: {
      if (p.dim < 0 || p.num_dims < 2 || p.dim + p.num_dims > rank) {
        return Status::InvalidArgument("fuse: dim range out of bounds");
      }
      int64_t prod = 1;
      for (int i = 0; i < p.num_dims; ++i) {
        prod *= shape[p.dim + i];
      }
      shape.erase(shape.begin() + p.dim, shape.begin() + p.dim + p.num_dims);
      shape.insert(shape.begin() + p.dim, prod);
      return Status::Ok();
    }
    case PrimitiveKind::kUnfold: {
      if (p.dim < 0 || p.dim >= rank) {
        return Status::InvalidArgument("unfold: dim out of range");
      }
      if (p.tile_size <= 0 || p.stride <= 0 || p.stride > p.tile_size) {
        return Status::InvalidArgument("unfold: require 0 < stride <= tile_size");
      }
      if (p.tile_size > shape[p.dim]) {
        return Status::InvalidArgument("unfold: tile larger than extent");
      }
      int64_t tiles = UnfoldTiles(shape[p.dim], p.tile_size, p.stride);
      shape[p.dim] = tiles;
      shape.insert(shape.begin() + p.dim + 1, p.tile_size);
      return Status::Ok();
    }
    case PrimitiveKind::kPad: {
      if (p.dim < 0 || p.dim >= rank) {
        return Status::InvalidArgument("pad: dim out of range");
      }
      if (p.pad_before < 0 || p.pad_after < 0) {
        return Status::InvalidArgument("pad: negative padding");
      }
      shape[p.dim] += p.pad_before + p.pad_after;
      return Status::Ok();
    }
    case PrimitiveKind::kStoreAt: {
      if (p.dim < 0 || p.dim >= rank) {
        return Status::InvalidArgument("store_at: dim out of range");
      }
      shape[p.dim] += 1;
      return Status::Ok();
    }
  }
  return Status::Internal("unknown primitive");
}

}  // namespace detail

using detail::ApplyPrimitiveToShape;

bool LayoutSeq::HasNontrivialAdvanced() const {
  for (const auto& p : prims_) {
    if (p.IsNontrivialAdvanced()) {
      return true;
    }
  }
  return false;
}

Status LayoutSeq::ApplyToShape(std::vector<int64_t>& shape) const {
  for (const auto& p : prims_) {
    ALT_RETURN_IF_ERROR(ApplyPrimitiveToShape(p, shape));
  }
  return Status::Ok();
}

StatusOr<std::vector<Expr>> LayoutSeq::MapRead(
    const std::vector<int64_t>& original_shape, const std::vector<Expr>& indices,
    const std::vector<std::optional<WindowPattern>>& patterns) const {
  // Thin deprecated wrapper: the relation carries the access-map emission
  // (bit-identical to the historical in-place walk; see relation.cc).
  auto rel = LayoutRelation::FromSeq(*this, original_shape);
  ALT_RETURN_IF_ERROR(rel.status());
  return rel->MapRead(indices, patterns);
}

StatusOr<std::vector<Expr>> LayoutSeq::MapInverse(const std::vector<int64_t>& original_shape,
                                                  const std::vector<Expr>& new_indices) const {
  // Thin deprecated wrapper over LayoutRelation::MapInverse.
  auto rel = LayoutRelation::FromSeq(*this, original_shape);
  ALT_RETURN_IF_ERROR(rel.status());
  return rel->MapInverse(new_indices);
}

StatusOr<LayoutSeq> LayoutSeq::Inverted(const std::vector<int64_t>& original_shape) const {
  // Record the shape before each primitive, then invert back-to-front.
  std::vector<std::vector<int64_t>> shapes;
  std::vector<int64_t> shape = original_shape;
  for (const auto& p : prims_) {
    shapes.push_back(shape);
    ALT_RETURN_IF_ERROR(ApplyPrimitiveToShape(p, shape));
  }
  LayoutSeq inverse;
  for (int i = static_cast<int>(prims_.size()) - 1; i >= 0; --i) {
    const Primitive& p = prims_[i];
    const std::vector<int64_t>& before = shapes[i];
    switch (p.kind) {
      case PrimitiveKind::kSplit:
        inverse.Append(Primitive::Fuse(p.dim, static_cast<int>(p.factors.size())));
        break;
      case PrimitiveKind::kFuse: {
        std::vector<int64_t> extents(before.begin() + p.dim,
                                     before.begin() + p.dim + p.num_dims);
        inverse.Append(Primitive::Split(p.dim, std::move(extents)));
        break;
      }
      case PrimitiveKind::kReorder: {
        std::vector<int> inv(p.perm.size());
        for (size_t d = 0; d < p.perm.size(); ++d) {
          inv[p.perm[d]] = static_cast<int>(d);
        }
        inverse.Append(Primitive::Reorder(std::move(inv)));
        break;
      }
      default:
        return Status::Unimplemented(
            "advanced primitives invert via MapInverse / Canonicalize, not as "
            "forward primitives");
    }
  }
  return inverse;
}

std::vector<double> LayoutSeq::StateVector() const {
  std::vector<double> s;
  for (const auto& p : prims_) {
    auto ps = p.StateVector();
    s.insert(s.end(), ps.begin(), ps.end());
  }
  return s;
}

std::string LayoutSeq::ToString() const {
  std::ostringstream oss;
  for (size_t i = 0; i < prims_.size(); ++i) {
    if (i > 0) {
      oss << "; ";
    }
    oss << prims_[i].ToString();
  }
  return oss.str();
}

}  // namespace alt::layout

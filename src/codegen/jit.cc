#include "src/codegen/jit.h"

#include <cstdlib>
#include <utility>

#include "src/codegen/cpp_emitter.h"
#include "src/support/fileio.h"

#if defined(__unix__) || defined(__APPLE__)
#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>
#define ALT_JIT_SUPPORTED 1
#else
#define ALT_JIT_SUPPORTED 0
#endif

namespace alt::codegen {

NativeKernel::~NativeKernel() {
#if ALT_JIT_SUPPORTED
  if (handle_ != nullptr) {
    dlclose(handle_);
  }
#endif
}

#if ALT_JIT_SUPPORTED

namespace {

std::string ResolveCompiler(const JitOptions& options) {
  if (!options.compiler.empty()) {
    return options.compiler;
  }
  if (const char* env = std::getenv("ALT_CXX"); env != nullptr && env[0] != '\0') {
    return env;
  }
  return "c++";
}

std::string ResolveTempRoot(const JitOptions& options) {
  if (!options.temp_root.empty()) {
    return options.temp_root;
  }
  if (const char* env = std::getenv("TMPDIR"); env != nullptr && env[0] != '\0') {
    return env;
  }
  return "/tmp";
}

// Scratch build directory that removes its (known, flat) contents and itself
// on every exit path — compiler failures included.
class ScratchDir {
 public:
  static StatusOr<ScratchDir> Make(const std::string& root) {
    std::string pattern = root + "/altjit-XXXXXX";
    std::vector<char> buf(pattern.begin(), pattern.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr) {
      return Status::Internal("mkdtemp failed under " + root);
    }
    ScratchDir dir;
    dir.path_ = buf.data();
    return dir;
  }

  ScratchDir(ScratchDir&& other) noexcept : path_(std::move(other.path_)) {
    other.path_.clear();
  }
  ScratchDir& operator=(ScratchDir&&) = delete;
  ScratchDir(const ScratchDir&) = delete;
  ScratchDir& operator=(const ScratchDir&) = delete;

  ~ScratchDir() {
    if (path_.empty()) {
      return;
    }
    for (const char* name : {"kernel.cc", "kernel.so", "cc.err"}) {
      ::unlink((path_ + "/" + name).c_str());
    }
    ::rmdir(path_.c_str());
  }

  const std::string& path() const { return path_; }

 private:
  ScratchDir() = default;
  std::string path_;
};

StatusOr<std::shared_ptr<NativeKernel>> OpenObject(const std::string& so_path,
                                                   std::vector<unsigned char> bytes) {
  void* handle = dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    const char* err = dlerror();
    return Status::InvalidArgument(std::string("native kernel dlopen failed: ") +
                                   (err != nullptr ? err : "unknown error"));
  }
  void* sym = dlsym(handle, kKernelSymbol);
  if (sym == nullptr) {
    dlclose(handle);
    return Status::InvalidArgument(std::string("native kernel missing symbol ") +
                                   kKernelSymbol);
  }
  return std::make_shared<NativeKernel>(handle, reinterpret_cast<KernelFn>(sym),
                                        std::move(bytes));
}

}  // namespace

StatusOr<std::shared_ptr<NativeKernel>> CompileAndLoad(const std::string& source,
                                                       const JitOptions& options) {
  auto dir = ScratchDir::Make(ResolveTempRoot(options));
  if (!dir.ok()) {
    return dir.status();
  }
  const std::string src_path = dir->path() + "/kernel.cc";
  const std::string so_path = dir->path() + "/kernel.so";
  const std::string err_path = dir->path() + "/cc.err";
  ALT_RETURN_IF_ERROR(WriteFile(src_path, source));

  // -ffp-contract=off: the generated bodies round double products to float
  // exactly where the interpreter does; FMA contraction would skip that
  // rounding and break bit-identity.
  const std::string command = ResolveCompiler(options) +
                              " -std=c++17 -O2 -fPIC -shared -ffp-contract=off -o '" +
                              so_path + "' '" + src_path + "' 2>'" + err_path + "'";
  const int rc = std::system(command.c_str());
  if (rc != 0) {
    std::string diag;
    if (auto err = ReadFile(err_path); err.ok()) {
      diag = err->substr(0, 500);
    }
    return Status::Internal("native kernel compile failed (exit " + std::to_string(rc) +
                            "): " + diag);
  }
  auto bytes = ReadFile(so_path);
  if (!bytes.ok()) {
    return bytes.status();
  }
  return OpenObject(so_path,
                    std::vector<unsigned char>(bytes->begin(), bytes->end()));
  // ScratchDir unlinks the .so after dlopen: the mapping outlives the file.
}

StatusOr<std::shared_ptr<NativeKernel>> LoadObject(const std::vector<unsigned char>& bytes,
                                                   const JitOptions& options) {
  auto dir = ScratchDir::Make(ResolveTempRoot(options));
  if (!dir.ok()) {
    return dir.status();
  }
  const std::string so_path = dir->path() + "/kernel.so";
  ALT_RETURN_IF_ERROR(WriteFile(
      so_path, std::string_view(reinterpret_cast<const char*>(bytes.data()), bytes.size())));
  return OpenObject(so_path, bytes);
}

#else  // !ALT_JIT_SUPPORTED

StatusOr<std::shared_ptr<NativeKernel>> CompileAndLoad(const std::string&,
                                                       const JitOptions&) {
  return Status::Internal("native codegen is not supported on this platform");
}

StatusOr<std::shared_ptr<NativeKernel>> LoadObject(const std::vector<unsigned char>&,
                                                   const JitOptions&) {
  return Status::Internal("native codegen is not supported on this platform");
}

#endif  // ALT_JIT_SUPPORTED

}  // namespace alt::codegen

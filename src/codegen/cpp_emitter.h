// KernelSpec → C++ translation unit.
//
// The emitted source contains one `extern "C"` function (kKernelSymbol) plus
// a small static preamble: exact replicas of the interpreter's floor/ceil
// integer division helpers and of ir::GuardRange, so guard splitting in
// native code lands on the same [else)[then)[else) segment boundaries as the
// affine engine. Loop nests are emitted as literal `for` statements with all
// extents, strides, and accumulator bases as integer constants — the host
// compiler sees exactly the unit-stride loops the affine analysis proved,
// and its vectorizer does the rest. Floating-point immediates are emitted as
// bit patterns (never decimal round-trips), and kernels are compiled with
// -ffp-contract=off (jit.h), so every double→float conversion happens where
// — and only where — the interpreter performs it.

#ifndef ALT_CODEGEN_CPP_EMITTER_H_
#define ALT_CODEGEN_CPP_EMITTER_H_

#include <string>

#include "src/codegen/kernel_spec.h"

namespace alt::codegen {

// Entry-point symbol of every generated shared object. Fixed: each kernel
// lives in its own dlopened object (RTLD_LOCAL), so names never collide.
inline constexpr const char* kKernelSymbol = "alt_kernel_entry";

// Bumped whenever emitted code could change for an unchanged spec; part of
// the kernel cache key, so stale cached objects are never reused.
// v2: kernel ABI takes a [begin, end) slice of the outer parallel loop —
// v1 objects embedded in old artifacts miss the new "cg2|"-salted keys and
// recompile instead of loading with the four-argument signature.
inline constexpr int kCodegenVersion = 2;

// Renders `spec` as a complete, self-contained C++ translation unit.
// Deterministic: equal specs produce byte-identical source.
std::string EmitKernelSource(const KernelSpec& spec);

}  // namespace alt::codegen

#endif  // ALT_CODEGEN_CPP_EMITTER_H_

// Structural description of one lowered program's native kernel.
//
// A KernelSpec is the affine execution plan (runtime/interpreter.cc) with
// every raw pointer replaced by an index: buffers become positions in a
// buffer table the caller passes at invocation time, and per-element
// fallback leaves become indices into a callback. That substitution makes
// the spec a pure function of the program's STRUCTURE — two programs with
// equal `ir::ProgramStructureKey` build byte-identical specs — which is what
// lets compiled kernels be cached and shared across sessions, artifacts, and
// hot-swaps (kernel_cache.h).
//
// The generated function (cpp_emitter.h) executes the spec with the exact
// arithmetic of the affine interpreter: the same double→float conversion
// sequences, the same element order, the same guard-range splitting, and the
// same segment-endpoint bounds checks. Bit-identity with the interpreter is
// a contract, not an aspiration — the randomized differential corpus in
// tests/affine_exec_test.cc enforces it three ways.

#ifndef ALT_CODEGEN_KERNEL_SPEC_H_
#define ALT_CODEGEN_KERNEL_SPEC_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace alt::codegen {

// The generated entry point.
//   bufs     — float* per spec buffer, in spec order.
//   env      — loop-variable environment (spec.env_size slots), zeroed by the
//              caller; maintained by the kernel only when a fallback leaf
//              needs it.
//   ctx      — opaque host state threaded through to `fallback`.
//   fallback — runs fallback leaf `leaf` at the loop state in `env`; returns
//              0 on success, nonzero to abort the kernel.
//   begin/end — iteration slice [begin, end) of the outermost loop when the
//              spec was built `sliced` (a kParallel root with proven
//              write-disjointness — ir::ParallelRootWritesDisjoint): the
//              runtime dispatches one invocation per shard, each on its own
//              env array. Non-sliced kernels ignore both (callers pass 0, 0);
//              sliced kernels run the full program when called with
//              (0, root extent).
// Returns 0 on success or one of the KernelError codes below.
using KernelFn = int64_t (*)(float** bufs, int64_t* env, void* ctx,
                             int64_t (*fallback)(void* ctx, int64_t leaf, int64_t* env),
                             int64_t begin, int64_t end);

// Nonzero return codes of a generated kernel. Fallback-leaf codes pass
// through verbatim, so hosts must keep their own codes out of this range.
enum KernelError : int64_t {
  kOk = 0,
  kStoreOutOfBounds = 1,
  kLoadOutOfBounds = 2,
  kInternalGuard = 4,  // unsplittable guard reached the native executor
};

struct KernelSpec {
  // One affine load/store offset: value(acc) + inner * v, where acc is an
  // accumulator (base value + per-loop bumps) and v the leaf loop variable.
  struct Access {
    int buffer = -1;      // index into the buffer table
    int64_t size = 0;     // element count, for endpoint bounds checks
    int acc = -1;         // accumulator id
    int64_t inner = 0;    // stride along the leaf variable
  };

  enum class BranchKind {
    kFill,    // splat an immediate
    kCopy,    // copy one affine load
    kMulAcc,  // load*load, load*imm or imm*load
  };

  struct Branch {
    BranchKind kind = BranchKind::kFill;
    double imm = 0.0;  // kFill splat value
    bool a_is_imm = false, b_is_imm = false;  // kMulAcc operand forms
    double imm_a = 0.0, imm_b = 0.0;
    Access a, b;
  };

  // One ANDed guard along the leaf loop: e(v) = acc + cv * v must satisfy
  // lo <= e < hi and (when modulus > 1) e ≡ rem (mod modulus).
  struct Cond {
    int acc = -1;
    int64_t cv = 0, lo = 0, hi = 0, modulus = 1, rem = 0;
  };

  struct Leaf {
    int64_t extent = 1;  // leaf loop trip count (1 for singleton stores)
    int vslot = -1;      // env slot of the consumed loop (-1: singleton)
    // When true the leaf runs through the host callback (non-affine store
    // offset or a value shape the kernel library doesn't cover).
    bool fallback = false;
    // Kernel leaf fields (ignored when fallback).
    int out_buffer = -1;
    int64_t out_size = 0;
    int store_acc = -1;
    int64_t store_inner = 0;
    bool accumulate = false;
    bool guarded = false;
    std::vector<Cond> conds;
    Branch then_k, else_k;
  };

  // Flattened loop program, exactly the interpreter's instruction array.
  struct Instr {
    enum Kind { kLoopBegin, kLoopEnd, kLeaf };
    Kind kind = kLeaf;
    int slot = -1;       // kLoopBegin: env slot
    int64_t extent = 0;  // kLoopBegin
    int match = -1;      // kLoopBegin: index of matching end (and vice versa)
    int leaf = -1;       // kLeaf: index into `leaves`
    // kLoopBegin: accumulator bumps per iteration (accumulator id, stride).
    std::vector<std::pair<int, int64_t>> bumps;
  };

  int num_buffers = 0;
  int env_size = 0;
  // True when instrs[0] is the program's outermost loop AND that loop is a
  // kParallel root with proven cross-iteration write-disjointness: the
  // emitted outer loop then runs `for (i = begin; i < end; ++i)` so the
  // runtime can shard it. Pure function of program structure (the proof
  // consults only extents/strides/guards, all part of ProgramStructureKey),
  // so cache sharing by structure key stays sound.
  bool sliced = false;
  // True when any leaf falls back: loops then maintain `env` for the
  // callback; otherwise env writes are omitted entirely.
  bool needs_env = false;
  std::vector<int64_t> acc_init;  // accumulator base values
  std::vector<Instr> instrs;
  std::vector<Leaf> leaves;
};

}  // namespace alt::codegen

#endif  // ALT_CODEGEN_KERNEL_SPEC_H_

// Process-global cache of compiled native kernels.
//
// Keyed by KeyForStructure(ir::ProgramStructureKey(program)) — a salted
// 64-bit FNV-1a of the normalized program structure plus the codegen
// version. Equal keys mean structurally identical programs, which build
// byte-identical KernelSpecs and therefore byte-identical generated source
// (kernel_spec.h), so one compiled object serves every session, prepared
// program, and hot-swapped model that shares the structure. Compile results
// are cached both ways: successes as loaded kernels, failures as their
// Status, so a missing host compiler costs one shell-out per structure, not
// one per Prepare.
//
// RegisterObject is the artifact path: a loaded artifact re-registers its
// embedded .so bytes under their saved keys, and the next Prepare hits the
// cache instead of recompiling — the "zero recompiles across save/load"
// contract, observable via the codegen.cache_hits / codegen.compiles
// counters in the process metrics registry.

#ifndef ALT_CODEGEN_KERNEL_CACHE_H_
#define ALT_CODEGEN_KERNEL_CACHE_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/codegen/jit.h"
#include "src/codegen/kernel_spec.h"
#include "src/support/status.h"

namespace alt::codegen {

class KernelCache {
 public:
  static KernelCache& Global();

  // The cache/artifact key for a program structure key: 16 lowercase hex
  // chars of Fnv1a64 over "cg<version>|<structure_key>".
  static std::string KeyForStructure(const std::string& structure_key);

  // Returns the cached kernel for `key`, compiling `spec` on a miss. A
  // failed compile is remembered and returned as the same Status on every
  // subsequent call (the caller falls back to the interpreter each time
  // without paying the shell-out again).
  StatusOr<std::shared_ptr<NativeKernel>> GetOrCompile(const std::string& key,
                                                       const KernelSpec& spec);

  // Cached kernel for `key`, or nullptr.
  std::shared_ptr<NativeKernel> Find(const std::string& key);

  // Installs a precompiled object (artifact load). A key that is already
  // resident is left untouched — the resident kernel is equivalent by key
  // construction. Load failures (foreign architecture, corrupt bytes)
  // return a Status and leave the cache unchanged.
  Status RegisterObject(const std::string& key, const std::vector<unsigned char>& bytes);

  // The .so bytes for `key` (artifact save). NotFound when the key was never
  // compiled; the remembered failure Status when its compile failed.
  StatusOr<std::vector<unsigned char>> ObjectBytes(const std::string& key);

  int64_t size() const;

  // Test hooks: route compiles through a specific toolchain/temp dir, and
  // drop all cached state (including remembered failures).
  void SetJitOptionsForTest(const JitOptions& options);
  void ClearForTest();

 private:
  KernelCache() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<NativeKernel>> kernels_;
  std::map<std::string, Status> failures_;
  JitOptions jit_;
};

}  // namespace alt::codegen

#endif  // ALT_CODEGEN_KERNEL_CACHE_H_

#include "src/codegen/kernel_cache.h"

#include <cinttypes>
#include <cstdio>

#include "src/codegen/cpp_emitter.h"
#include "src/support/crc32.h"
#include "src/support/metrics.h"

namespace alt::codegen {

KernelCache& KernelCache::Global() {
  static KernelCache* cache = new KernelCache();
  return *cache;
}

std::string KernelCache::KeyForStructure(const std::string& structure_key) {
  const std::string salted =
      "cg" + std::to_string(kCodegenVersion) + "|" + structure_key;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, Fnv1a64(salted));
  return buf;
}

StatusOr<std::shared_ptr<NativeKernel>> KernelCache::GetOrCompile(const std::string& key,
                                                                 const KernelSpec& spec) {
  static Counter& hits = MetricsRegistry::Global().counter("codegen.cache_hits");
  static Counter& compiles = MetricsRegistry::Global().counter("codegen.compiles");
  static Counter& failures = MetricsRegistry::Global().counter("codegen.compile_failures");

  // The lock covers the compile: concurrent Prepares of the same structure
  // must not race the toolchain, and distinct structures compiling serially
  // is an accepted cost (compiles are rare and cached forever).
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = kernels_.find(key); it != kernels_.end()) {
    hits.Add();
    return it->second;
  }
  if (auto it = failures_.find(key); it != failures_.end()) {
    return it->second;
  }
  compiles.Add();
  auto kernel = CompileAndLoad(EmitKernelSource(spec), jit_);
  if (!kernel.ok()) {
    failures.Add();
    failures_.emplace(key, kernel.status());
    return kernel.status();
  }
  kernels_.emplace(key, *kernel);
  return *kernel;
}

std::shared_ptr<NativeKernel> KernelCache::Find(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = kernels_.find(key);
  return it == kernels_.end() ? nullptr : it->second;
}

Status KernelCache::RegisterObject(const std::string& key,
                                   const std::vector<unsigned char>& bytes) {
  static Counter& registered = MetricsRegistry::Global().counter("codegen.registered");
  static Counter& load_failures =
      MetricsRegistry::Global().counter("codegen.load_failures");
  std::lock_guard<std::mutex> lock(mu_);
  if (kernels_.count(key) > 0) {
    return Status::Ok();
  }
  auto kernel = LoadObject(bytes, jit_);
  if (!kernel.ok()) {
    load_failures.Add();
    return kernel.status();
  }
  kernels_.emplace(key, *kernel);
  failures_.erase(key);  // a delivered object supersedes a remembered failure
  registered.Add();
  return Status::Ok();
}

StatusOr<std::vector<unsigned char>> KernelCache::ObjectBytes(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = kernels_.find(key); it != kernels_.end()) {
    return it->second->object_bytes();
  }
  if (auto it = failures_.find(key); it != failures_.end()) {
    return it->second;
  }
  return Status::NotFound("no native kernel cached under key " + key);
}

int64_t KernelCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(kernels_.size());
}

void KernelCache::SetJitOptionsForTest(const JitOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  jit_ = options;
}

void KernelCache::ClearForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  kernels_.clear();
  failures_.clear();
}

}  // namespace alt::codegen

// Shelling out to the host toolchain: source → .so → dlopened KernelFn.
//
// CompileAndLoad writes the generated translation unit into a private
// mkdtemp directory, invokes the host C++ compiler (`$ALT_CXX`, else `c++`)
// with -O2 -fPIC -shared and -ffp-contract=off (bit-identity: no FMA
// contraction the interpreter wouldn't perform), dlopens the result, and
// ALWAYS removes the temp directory — on success the mapping keeps the code
// alive without the file, and on failure nothing is left behind. Every
// failure path (missing compiler, diagnostics, dlopen/dlsym errors) returns
// a Status; nothing here ever aborts, because a failed compile just means
// the caller serves through the interpreter instead.
//
// The raw .so bytes are retained on the loaded kernel so artifacts can embed
// them (core/artifact.cc); LoadObject is the reverse path, used when a
// loaded artifact re-registers its kernels without recompiling.

#ifndef ALT_CODEGEN_JIT_H_
#define ALT_CODEGEN_JIT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/codegen/kernel_spec.h"
#include "src/support/status.h"

namespace alt::codegen {

struct JitOptions {
  // Compiler driver; empty resolves $ALT_CXX, then "c++".
  std::string compiler;
  // Parent directory for scratch build dirs; empty resolves $TMPDIR, then
  // "/tmp". Tests point this at a private dir to assert cleanup.
  std::string temp_root;
};

// A dlopened kernel. Destroying the last reference dlcloses the object.
class NativeKernel {
 public:
  NativeKernel(void* handle, KernelFn fn, std::vector<unsigned char> object_bytes)
      : handle_(handle), fn_(fn), object_bytes_(std::move(object_bytes)) {}
  ~NativeKernel();

  NativeKernel(const NativeKernel&) = delete;
  NativeKernel& operator=(const NativeKernel&) = delete;

  KernelFn fn() const { return fn_; }
  // The shared object's file contents, for artifact embedding.
  const std::vector<unsigned char>& object_bytes() const { return object_bytes_; }

 private:
  void* handle_ = nullptr;
  KernelFn fn_ = nullptr;
  std::vector<unsigned char> object_bytes_;
};

// Compiles `source` and loads the entry point. Internal on compiler failure
// (with the first diagnostics attached), dlopen/dlsym failures likewise.
StatusOr<std::shared_ptr<NativeKernel>> CompileAndLoad(const std::string& source,
                                                       const JitOptions& options = JitOptions());

// dlopens a shared object delivered as bytes (an artifact's embedded
// kernel). A wrong-architecture or corrupt object returns InvalidArgument —
// the caller recompiles or serves through the interpreter.
StatusOr<std::shared_ptr<NativeKernel>> LoadObject(const std::vector<unsigned char>& bytes,
                                                   const JitOptions& options = JitOptions());

}  // namespace alt::codegen

#endif  // ALT_CODEGEN_JIT_H_

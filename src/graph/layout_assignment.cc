#include "src/graph/layout_assignment.h"

#include <deque>

#include "src/support/logging.h"

namespace alt::graph {

StatusOr<std::vector<int64_t>> LayoutAssignment::PhysicalShape(const Graph& graph,
                                                               int tensor_id) const {
  std::vector<int64_t> shape = graph.tensor(tensor_id).shape;
  ALT_RETURN_IF_ERROR(Get(tensor_id).ApplyToShape(shape));
  return shape;
}

bool SameLayout(const layout::LayoutSeq& a, const layout::LayoutSeq& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    const auto& pa = a.primitives()[i];
    const auto& pb = b.primitives()[i];
    if (pa.kind != pb.kind || pa.dim != pb.dim || pa.factors != pb.factors ||
        pa.perm != pb.perm || pa.num_dims != pb.num_dims || pa.tile_size != pb.tile_size ||
        pa.stride != pb.stride || pa.pad_before != pb.pad_before ||
        pa.pad_after != pb.pad_after || pa.store_src_tensor != pb.store_src_tensor) {
      return false;
    }
  }
  return true;
}

bool SameLayout(const layout::LayoutSeq& a, const layout::LayoutSeq& b,
                const std::vector<int64_t>& shape) {
  auto ra = layout::LayoutRelation::FromSeq(a, shape);
  auto rb = layout::LayoutRelation::FromSeq(b, shape);
  if (!ra.ok() || !rb.ok()) {
    return SameLayout(a, b);  // inapplicable sequence: fall back to syntax
  }
  return ra->Fingerprint() == rb->Fingerprint();
}

PropagationResult PropagateOutputLayout(const Graph& graph, LayoutAssignment& assignment,
                                        int tensor_id, bool multi_hop, bool overwrite) {
  PropagationResult result;
  const layout::LayoutSeq& seq = assignment.Get(tensor_id);
  if (seq.empty()) {
    return result;
  }
  // Propagation is relation composition: an element-wise consumer computes
  // out[i] = f(in[i]) over canonical indices, so giving its output the
  // producer's layout relation R makes the consumer's physical relation
  // R ∘ Id — the loop nests reconstruct identically and fusion stays legal.
  auto rel = layout::LayoutRelation::FromSeq(seq, graph.tensor(tensor_id).shape);
  if (!rel.ok()) {
    return result;  // inapplicable to this shape: nothing to propagate
  }
  // Constraint 1 (Alg. 1 line 3): never duplicate data-expanding relations
  // across operators (overlapping unfold, pad, store_at — the non-trivial
  // advanced primitives).
  if (rel->ExpandsData()) {
    result.stopped_at_advanced = true;
    return result;
  }

  std::deque<int> queue{tensor_id};
  std::vector<bool> visited(graph.tensors().size(), false);
  visited[tensor_id] = true;
  while (!queue.empty()) {
    int src = queue.front();
    queue.pop_front();
    for (int consumer_id : graph.ConsumersOf(src)) {
      const Op& consumer = graph.op(consumer_id);
      // Constraint 2: stop at complex operators — each tunes its own layouts
      // independently (Alg. 1 line 10, no conversion inserted here).
      if (IsComplex(consumer.kind)) {
        result.stopped_at_complex = true;
        continue;
      }
      // Constraint 3: only element-wise consumers with identical shapes can
      // share the relation (its parameters are shape-dependent).
      if (!IsElementwise(consumer.kind)) {
        continue;
      }
      int out = consumer.output;
      if (graph.tensor(out).shape != graph.tensor(src).shape) {
        continue;
      }
      if (visited[out] || (!overwrite && assignment.Has(out))) {
        continue;  // already tuned or propagated
      }
      visited[out] = true;
      assignment.Set(out, rel->steps());
      result.forward_assigned.push_back(out);
      if (multi_hop) {
        queue.push_back(out);
      }
    }
  }
  return result;
}

InputSatisfaction RequestInputLayout(Graph& graph, LayoutAssignment& assignment, int consumer_op,
                                     int input_index, const layout::LayoutSeq& seq) {
  Op& consumer = graph.mutable_op(consumer_op);
  ALT_CHECK(input_index >= 0 && input_index < static_cast<int>(consumer.inputs.size()));
  int tensor_id = consumer.inputs[input_index];

  // Semantic comparison: an equivalent relation spelled differently must not
  // trigger a conversion (the inserted op would be a physical no-op).
  if (SameLayout(assignment.Get(tensor_id), seq, graph.tensor(tensor_id).shape)) {
    return InputSatisfaction::kAlreadySame;
  }

  // Weights and other constants: transform offline, zero runtime cost.
  if (graph.IsConstant(tensor_id)) {
    assignment.Set(tensor_id, seq);
    return InputSatisfaction::kOffline;
  }

  int producer_id = graph.ProducerOf(tensor_id);
  // A simple sole-consumer producer can be re-lowered to emit any requested
  // layout (Fig. 5b), even replacing a previously assigned one — its output
  // has no other reader whose expectations could break.
  bool producer_can_write =
      producer_id >= 0 && !IsComplex(graph.op(producer_id).kind) &&
      graph.op(producer_id).kind != OpKind::kLayoutConvert &&
      graph.ConsumersOf(tensor_id).size() == 1;
  if (producer_can_write) {
    // Fig. 5b: the simple producer (e.g. padding) emits the new layout
    // directly; its loop nest is reconstructed from this output layout.
    assignment.Set(tensor_id, seq);
    return InputSatisfaction::kProducerWrites;
  }

  // Fig. 5a: insert an explicit conversion operator.
  Op convert;
  convert.kind = OpKind::kLayoutConvert;
  convert.name = graph.tensor(tensor_id).name + "_cvt";
  convert.inputs = {tensor_id};
  int converted = graph.AddCustomOp(std::move(convert), graph.tensor(tensor_id).shape,
                                    graph.tensor(tensor_id).name + "_cvt");
  assignment.Set(converted, seq);
  graph.mutable_op(consumer_op).inputs[input_index] = converted;
  return InputSatisfaction::kConversionInserted;
}

std::vector<int> TopoOrder(const Graph& graph) {
  int n = static_cast<int>(graph.ops().size());
  std::vector<int> indegree(n, 0);
  for (const Op& op : graph.ops()) {
    // Count distinct produced input tensors (ConsumersOf reports a consumer
    // once per tensor even when an op reads the same tensor twice).
    std::vector<int> seen;
    for (int in : op.inputs) {
      if (graph.ProducerOf(in) < 0) {
        continue;
      }
      bool dup = false;
      for (int s : seen) {
        dup = dup || (s == in);
      }
      if (!dup) {
        seen.push_back(in);
        ++indegree[op.id];
      }
    }
  }
  std::deque<int> ready;
  for (int i = 0; i < n; ++i) {
    if (indegree[i] == 0) {
      ready.push_back(i);
    }
  }
  std::vector<int> order;
  order.reserve(n);
  while (!ready.empty()) {
    int id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (int consumer : graph.ConsumersOf(graph.op(id).output)) {
      if (--indegree[consumer] == 0) {
        ready.push_back(consumer);
      }
    }
  }
  ALT_CHECK_MSG(static_cast<int>(order.size()) == n, "graph has a cycle");
  return order;
}

}  // namespace alt::graph

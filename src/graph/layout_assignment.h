// Layout assignment and propagation (paper §4.2, Algorithm 1).
//
// A LayoutAssignment maps tensors to the primitive sequence describing their
// physical storage. The graph itself stays canonical; lowering consults this
// table to reconstruct loops (for outputs) and rewrite accesses (for inputs).
//
// Two propagation directions mirror the paper:
//   * RequestInputLayout — a complex operator asks for its input tensor in a
//     new layout. Constants are transformed offline; a simple producer is
//     re-lowered to write the new layout directly (Fig. 5b); otherwise a
//     conversion operator is inserted (Fig. 5a).
//   * PropagateOutputLayout — a tuned output layout is duplicated onto
//     element-wise consumer chains so their loop nests reconstruct
//     identically and fusion stays legal (Fig. 6 → Fig. 7).

#ifndef ALT_GRAPH_LAYOUT_ASSIGNMENT_H_
#define ALT_GRAPH_LAYOUT_ASSIGNMENT_H_

#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"
#include "src/layout/primitive.h"
#include "src/layout/relation.h"

namespace alt::graph {

class LayoutAssignment {
 public:
  void Set(int tensor_id, layout::LayoutSeq seq) { seqs_[tensor_id] = std::move(seq); }
  void Clear(int tensor_id) { seqs_.erase(tensor_id); }

  bool Has(int tensor_id) const { return seqs_.count(tensor_id) > 0; }

  // Empty sequence when unassigned (canonical layout).
  const layout::LayoutSeq& Get(int tensor_id) const {
    static const layout::LayoutSeq kEmpty;
    auto it = seqs_.find(tensor_id);
    return it == seqs_.end() ? kEmpty : it->second;
  }

  StatusOr<std::vector<int64_t>> PhysicalShape(const Graph& graph, int tensor_id) const;

  // All assigned sequences (used e.g. to locate store_at hosts).
  const std::unordered_map<int, layout::LayoutSeq>& all() const { return seqs_; }

 private:
  std::unordered_map<int, layout::LayoutSeq> seqs_;
};

enum class InputSatisfaction {
  kAlreadySame,         // requested layout equals the current one
  kOffline,             // constant tensor: transformed at compile time
  kProducerWrites,      // simple producer re-lowered to emit the new layout
  kConversionInserted,  // explicit layout_convert op added to the graph
};

struct PropagationResult {
  std::vector<int> forward_assigned;  // tensors that received the layout
  bool stopped_at_complex = false;
  bool stopped_at_advanced = false;
};

// Algorithm 1 forward phase: propagates the layout already assigned to
// `tensor_id` across element-wise consumers with matching shapes. When
// `multi_hop` is false only direct fusion partners are skipped (the ALT-WP
// ablation of §7.2 disables this entirely). With `overwrite`, previously
// propagated layouts on the chain are replaced (used when a complex op's
// output layout is re-tuned after an earlier initialization pass).
PropagationResult PropagateOutputLayout(const Graph& graph, LayoutAssignment& assignment,
                                        int tensor_id, bool multi_hop = true,
                                        bool overwrite = false);

// Requests layout `seq` for input `input_index` of op `consumer_op`. May
// insert a layout_convert op; `graph` is mutated in that case and the
// consumer is rewired to the converted tensor.
InputSatisfaction RequestInputLayout(Graph& graph, LayoutAssignment& assignment, int consumer_op,
                                     int input_index, const layout::LayoutSeq& seq);

// Kahn topological order over op ids (needed once conversion ops are
// appended out of order).
std::vector<int> TopoOrder(const Graph& graph);

// Syntactic equality: identical primitive step lists. Sufficient (never
// necessary) for denoting the same layout; prefer the semantic overload when
// the tensor shape is at hand.
bool SameLayout(const layout::LayoutSeq& a, const layout::LayoutSeq& b);

// Semantic equality over `shape`: equal normalized relation fingerprints
// (layout/relation.h), so differently-spelled sequences denoting the same
// layout compare equal and no-op conversions are never inserted for them.
bool SameLayout(const layout::LayoutSeq& a, const layout::LayoutSeq& b,
                const std::vector<int64_t>& shape);

}  // namespace alt::graph

#endif  // ALT_GRAPH_LAYOUT_ASSIGNMENT_H_

// Builders for the evaluation networks (paper §7.2) and micro-benchmark
// subgraphs (§7.3). Shapes follow the paper: image nets take N×3×224×224,
// video nets N×3×16×112×112, BERT takes N×128 token sequences.

#ifndef ALT_GRAPH_NETWORKS_H_
#define ALT_GRAPH_NETWORKS_H_

#include <cstdint>

#include "src/graph/graph.h"

namespace alt::graph {

Graph BuildResNet18(int64_t batch);
Graph BuildMobileNetV2(int64_t batch);
// hidden=768, layers=12 for BERT-base; hidden=128, layers=2 for BERT-tiny.
Graph BuildBert(int64_t batch, int64_t hidden, int64_t layers, int64_t seq_len = 128);
Graph BuildResNet3d18(int64_t batch);

// §7.3.2 / Fig. 12 subgraphs: padding → C2D(3×3,s1) → C2D(1×1,s1).
// Subgraph#1: H=W=7, channels 512→512→512.
// Subgraph#2: H=W=14, channels 512→512→2048.
Graph BuildFig12Subgraph(int index);

// §7.3.4 / Table 3 and Fig. 11 workload: the first layer of ResNet-18 —
// padding (to 230×230) → C2D(O=64, 7×7, stride 2) → bias add → ReLU.
Graph BuildResNetFirstLayer(int64_t batch);

// Single complex operator wrapped in a graph (used by Fig. 1 / Fig. 9).
struct ConvConfig {
  int64_t batch = 1;
  int64_t in_channels = 64;
  int64_t out_channels = 64;
  int64_t spatial[3] = {56, 56, 16};  // H, W (, D for 3-D at index 2)
  int64_t kernel[3] = {3, 3, 3};
  int64_t stride = 1;
  int64_t dilation = 1;
  int64_t groups = 1;
  int64_t pad = 1;
};

Graph BuildSingleConv(OpKind kind, const ConvConfig& cfg);
Graph BuildSingleMatmul(int64_t m, int64_t k, int64_t n);

}  // namespace alt::graph

#endif  // ALT_GRAPH_NETWORKS_H_

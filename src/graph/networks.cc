#include "src/graph/networks.h"

#include <string>

namespace alt::graph {

namespace {

// Explicit zero-padding op over the spatial dims of an N,C,spatial tensor.
int PadSpatial(Graph& g, int input, int64_t pad, const std::string& name) {
  if (pad == 0) {
    return input;
  }
  PadAttrs attrs;
  attrs.before.assign(g.tensor(input).shape.size(), 0);
  attrs.after.assign(g.tensor(input).shape.size(), 0);
  for (size_t d = 2; d < attrs.before.size(); ++d) {
    attrs.before[d] = pad;
    attrs.after[d] = pad;
  }
  return g.AddPad(input, attrs, name);
}

// conv + bias + relu; padding is an explicit operator (as in the paper's
// computational graphs, e.g. Fig. 5 / §7.3.2).
int ConvBnRelu(Graph& g, int input, int64_t out_channels, int64_t kernel, int64_t stride,
               int64_t pad, const std::string& name, bool relu = true, int64_t groups = 1,
               int64_t dilation = 1) {
  int64_t in_channels = g.tensor(input).shape[1];
  input = PadSpatial(g, input, pad, name + "_pad");
  int w = g.AddConstant(name + "_w", {out_channels, in_channels / groups, kernel, kernel});
  ConvAttrs attrs;
  attrs.spatial_dims = 2;
  attrs.stride[0] = attrs.stride[1] = stride;
  attrs.groups = groups;
  attrs.dilation[0] = attrs.dilation[1] = dilation;
  int conv = g.AddConv(OpKind::kConv2d, input, w, attrs, name);
  int b = g.AddConstant(name + "_b", {out_channels});
  int biased = g.AddBiasAdd(conv, b, 1, name + "_bias");
  return relu ? g.AddRelu(biased, name + "_relu") : biased;
}

int Conv3dBnRelu(Graph& g, int input, int64_t out_channels, int64_t kernel, int64_t stride,
                 int64_t pad, const std::string& name, bool relu = true) {
  int64_t in_channels = g.tensor(input).shape[1];
  input = PadSpatial(g, input, pad, name + "_pad");
  int w = g.AddConstant(name + "_w", {out_channels, in_channels, kernel, kernel, kernel});
  ConvAttrs attrs;
  attrs.spatial_dims = 3;
  for (int d = 0; d < 3; ++d) {
    attrs.stride[d] = stride;
  }
  int conv = g.AddConv(OpKind::kConv3d, input, w, attrs, name);
  int b = g.AddConstant(name + "_b", {out_channels});
  int biased = g.AddBiasAdd(conv, b, 1, name + "_bias");
  return relu ? g.AddRelu(biased, name + "_relu") : biased;
}

}  // namespace

Graph BuildResNet18(int64_t batch) {
  Graph g("resnet18_b" + std::to_string(batch));
  int x = g.AddInput("data", {batch, 3, 224, 224});
  x = ConvBnRelu(g, x, 64, 7, 2, 3, "conv1");
  x = PadSpatial(g, x, 1, "pool1_pad");
  PoolAttrs pool;
  pool.window[0] = pool.window[1] = 3;
  pool.stride[0] = pool.stride[1] = 2;
  x = g.AddMaxPool2d(x, pool, "pool1");

  int64_t channels[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < 2; ++block) {
      int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      std::string base = "s" + std::to_string(stage) + "b" + std::to_string(block);
      int identity = x;
      int y = ConvBnRelu(g, x, channels[stage], 3, stride, 1, base + "_conv1");
      y = ConvBnRelu(g, y, channels[stage], 3, 1, 1, base + "_conv2", /*relu=*/false);
      if (stride != 1 || g.tensor(identity).shape[1] != channels[stage]) {
        identity = ConvBnRelu(g, x, channels[stage], 1, stride, 0, base + "_down", /*relu=*/false);
      }
      x = g.AddRelu(g.AddAdd(y, identity, base + "_add"), base + "_relu");
    }
  }

  PoolAttrs gap;
  gap.global = true;
  x = g.AddAvgPool2d(x, gap, "gap");
  int fc_in = g.AddReshape(x, {batch, 512}, "flatten");
  int w = g.AddConstant("fc_w", {512, 1000});
  int fc = g.AddMatmul(fc_in, w, "fc");
  int b = g.AddConstant("fc_b", {1000});
  g.AddBiasAdd(fc, b, 1, "fc_bias");
  return g;
}

Graph BuildMobileNetV2(int64_t batch) {
  Graph g("mobilenetv2_b" + std::to_string(batch));
  int x = g.AddInput("data", {batch, 3, 224, 224});
  x = ConvBnRelu(g, x, 32, 3, 2, 1, "conv1");

  struct BlockCfg {
    int64_t expand, out, stride;
  };
  // The standard 17-block MobileNet-V2 configuration.
  const BlockCfg blocks[] = {
      {1, 16, 1},  {6, 24, 2},  {6, 24, 1},  {6, 32, 2},  {6, 32, 1},  {6, 32, 1},
      {6, 64, 2},  {6, 64, 1},  {6, 64, 1},  {6, 64, 1},  {6, 96, 1},  {6, 96, 1},
      {6, 96, 1},  {6, 160, 2}, {6, 160, 1}, {6, 160, 1}, {6, 320, 1},
  };
  int idx = 0;
  for (const auto& cfg : blocks) {
    std::string base = "ir" + std::to_string(idx++);
    int64_t in_c = g.tensor(x).shape[1];
    int64_t mid = in_c * cfg.expand;
    int y = x;
    if (cfg.expand != 1) {
      y = ConvBnRelu(g, y, mid, 1, 1, 0, base + "_expand");
    }
    // Depthwise 3x3.
    y = ConvBnRelu(g, y, mid, 3, cfg.stride, 1, base + "_dw", /*relu=*/true, /*groups=*/mid);
    // Linear projection.
    y = ConvBnRelu(g, y, cfg.out, 1, 1, 0, base + "_project", /*relu=*/false);
    if (cfg.stride == 1 && in_c == cfg.out) {
      y = g.AddAdd(y, x, base + "_add");
    }
    x = y;
  }
  x = ConvBnRelu(g, x, 1280, 1, 1, 0, "conv_last");
  PoolAttrs gap;
  gap.global = true;
  x = g.AddAvgPool2d(x, gap, "gap");
  int fc_in = g.AddReshape(x, {batch, 1280}, "flatten");
  int w = g.AddConstant("fc_w", {1280, 1000});
  g.AddMatmul(fc_in, w, "fc");
  return g;
}

Graph BuildBert(int64_t batch, int64_t hidden, int64_t layers, int64_t seq_len) {
  Graph g("bert_h" + std::to_string(hidden) + "_b" + std::to_string(batch));
  int64_t tokens = batch * seq_len;
  int64_t heads = hidden / 64;
  int64_t ffn = hidden * 4;
  int x = g.AddInput("embeddings", {tokens, hidden});
  for (int64_t l = 0; l < layers; ++l) {
    std::string base = "l" + std::to_string(l);
    // Fused QKV projection.
    int wqkv = g.AddConstant(base + "_wqkv", {hidden, 3 * hidden});
    int qkv = g.AddMatmul(x, wqkv, base + "_qkv");
    int bqkv = g.AddConstant(base + "_bqkv", {3 * hidden});
    qkv = g.AddBiasAdd(qkv, bqkv, 1, base + "_qkv_bias");
    // Attention scores / context, flattened across batch*heads. This keeps
    // the GMM shapes of multi-head attention (128×64 · 64×128 and
    // 128×128 · 128×64) without batched-matmul support; see DESIGN.md.
    int scores_a = g.AddInput(base + "_q_flat", {batch * heads * seq_len, 64});
    int scores_b = g.AddConstant(base + "_k_flat", {64, seq_len});
    int scores = g.AddMatmul(scores_a, scores_b, base + "_scores");
    scores = g.AddMulScalar(scores, 0.125, base + "_scale");
    scores = g.AddSoftmax(scores, base + "_softmax");
    int ctx_b = g.AddConstant(base + "_v_flat", {seq_len, 64});
    int ctx = g.AddMatmul(scores, ctx_b, base + "_context");
    (void)ctx;
    (void)qkv;
    // Output projection + residual + layernorm.
    int wo = g.AddConstant(base + "_wo", {hidden, hidden});
    int att = g.AddMatmul(x, wo, base + "_att_out");
    int bo = g.AddConstant(base + "_bo", {hidden});
    att = g.AddBiasAdd(att, bo, 1, base + "_att_bias");
    att = g.AddAdd(att, x, base + "_att_res");
    att = g.AddLayerNorm(att, base + "_ln1");
    // FFN.
    int w1 = g.AddConstant(base + "_w1", {hidden, ffn});
    int h = g.AddMatmul(att, w1, base + "_ffn1");
    int b1 = g.AddConstant(base + "_b1", {ffn});
    h = g.AddBiasAdd(h, b1, 1, base + "_ffn1_bias");
    h = g.AddGelu(h, base + "_gelu");
    int w2 = g.AddConstant(base + "_w2", {ffn, hidden});
    h = g.AddMatmul(h, w2, base + "_ffn2");
    int b2 = g.AddConstant(base + "_b2", {hidden});
    h = g.AddBiasAdd(h, b2, 1, base + "_ffn2_bias");
    h = g.AddAdd(h, att, base + "_ffn_res");
    x = g.AddLayerNorm(h, base + "_ln2");
  }
  return g;
}

Graph BuildResNet3d18(int64_t batch) {
  Graph g("resnet3d18_b" + std::to_string(batch));
  int x = g.AddInput("data", {batch, 3, 16, 112, 112});
  x = Conv3dBnRelu(g, x, 64, 3, 2, 1, "conv1");
  int64_t channels[4] = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int block = 0; block < 2; ++block) {
      int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      std::string base = "s" + std::to_string(stage) + "b" + std::to_string(block);
      int identity = x;
      int y = Conv3dBnRelu(g, x, channels[stage], 3, stride, 1, base + "_conv1");
      y = Conv3dBnRelu(g, y, channels[stage], 3, 1, 1, base + "_conv2", /*relu=*/false);
      if (stride != 1 || g.tensor(identity).shape[1] != channels[stage]) {
        identity = Conv3dBnRelu(g, x, channels[stage], 1, stride, 0, base + "_down",
                                /*relu=*/false);
      }
      x = g.AddRelu(g.AddAdd(y, identity, base + "_add"), base + "_relu");
    }
  }
  return g;
}

Graph BuildFig12Subgraph(int index) {
  ALT_CHECK(index == 1 || index == 2);
  int64_t hw = index == 1 ? 7 : 14;
  int64_t out2 = index == 1 ? 512 : 2048;
  Graph g("fig12_subgraph" + std::to_string(index));
  int x = g.AddInput("data", {1, 512, hw, hw});
  PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  x = g.AddPad(x, pad, "pad");
  int w1 = g.AddConstant("w1", {512, 512, 3, 3});
  ConvAttrs a1;
  a1.spatial_dims = 2;
  x = g.AddConv(OpKind::kConv2d, x, w1, a1, "c2d_3x3");
  int w2 = g.AddConstant("w2", {out2, 512, 1, 1});
  ConvAttrs a2;
  a2.spatial_dims = 2;
  g.AddConv(OpKind::kConv2d, x, w2, a2, "c2d_1x1");
  return g;
}

Graph BuildResNetFirstLayer(int64_t batch) {
  Graph g("r18_first_layer_b" + std::to_string(batch));
  int x = g.AddInput("data", {batch, 3, 224, 224});
  PadAttrs pad;
  pad.before = {0, 0, 3, 3};
  pad.after = {0, 0, 3, 3};
  x = g.AddPad(x, pad, "pad");  // 224 + 6 = 230 as in §7.3.1
  int w = g.AddConstant("w", {64, 3, 7, 7});
  ConvAttrs attrs;
  attrs.spatial_dims = 2;
  attrs.stride[0] = attrs.stride[1] = 2;
  int conv = g.AddConv(OpKind::kConv2d, x, w, attrs, "conv1");
  int b = g.AddConstant("b", {64});
  int biased = g.AddBiasAdd(conv, b, 1, "bias");
  g.AddRelu(biased, "relu");
  return g;
}

Graph BuildSingleConv(OpKind kind, const ConvConfig& cfg) {
  int sd = 2;
  if (kind == OpKind::kConv1d) {
    sd = 1;
  } else if (kind == OpKind::kConv3d || kind == OpKind::kTransposedConv3d) {
    sd = 3;
  }
  Graph g("single_conv");
  std::vector<int64_t> in_shape{cfg.batch, cfg.in_channels};
  std::vector<int64_t> w_shape;
  bool transposed = (kind == OpKind::kTransposedConv2d || kind == OpKind::kTransposedConv3d);
  if (transposed) {
    w_shape = {cfg.in_channels, cfg.out_channels / cfg.groups};
  } else {
    w_shape = {cfg.out_channels, cfg.in_channels / cfg.groups};
  }
  for (int d = 0; d < sd; ++d) {
    in_shape.push_back(cfg.spatial[d]);
    w_shape.push_back(cfg.kernel[d]);
  }
  int x = g.AddInput("data", in_shape);
  int w = g.AddConstant("weight", w_shape);
  ConvAttrs attrs;
  attrs.spatial_dims = sd;
  for (int d = 0; d < sd; ++d) {
    attrs.stride[d] = cfg.stride;
    attrs.dilation[d] = cfg.dilation;
    attrs.pad[d] = cfg.pad;
  }
  attrs.groups = cfg.groups;
  // Forward convolutions take explicitly padded inputs (see lowering).
  if (!transposed && cfg.pad > 0) {
    PadAttrs pad;
    pad.before.assign(in_shape.size(), 0);
    pad.after.assign(in_shape.size(), 0);
    for (int d = 0; d < sd; ++d) {
      pad.before[2 + d] = cfg.pad;
      pad.after[2 + d] = cfg.pad;
      attrs.pad[d] = 0;
    }
    x = g.AddPad(x, pad, "pad");
  }
  g.AddConv(kind, x, w, attrs, "op");
  return g;
}

Graph BuildSingleMatmul(int64_t m, int64_t k, int64_t n) {
  Graph g("single_matmul");
  int a = g.AddInput("A", {m, k});
  int b = g.AddConstant("B", {k, n});
  g.AddMatmul(a, b, "op");
  return g;
}

}  // namespace alt::graph

#include "src/graph/graph.h"

#include <sstream>

namespace alt::graph {

int Graph::AddTensor(const std::string& name, std::vector<int64_t> shape, bool is_const) {
  ir::Tensor t;
  t.id = static_cast<int>(tensors_.size());
  t.name = name.empty() ? ("t" + std::to_string(t.id)) : name;
  t.shape = std::move(shape);
  tensors_.push_back(std::move(t));
  producer_.push_back(-1);
  is_const_.push_back(is_const);
  return tensors_.back().id;
}

int Graph::AddOpNode(Op op, std::vector<int64_t> output_shape, const std::string& tensor_name) {
  op.id = static_cast<int>(ops_.size());
  if (op.name.empty()) {
    op.name = std::string(OpKindName(op.kind)) + "_" + std::to_string(op.id);
  }
  std::string out_name = tensor_name.empty() ? (op.name + "_out") : tensor_name;
  int out = AddTensor(out_name, std::move(output_shape), /*is_const=*/false);
  op.output = out;
  producer_[out] = op.id;
  ops_.push_back(std::move(op));
  return out;
}

int Graph::AddInput(const std::string& name, std::vector<int64_t> shape) {
  return AddTensor(name, std::move(shape), /*is_const=*/false);
}

int Graph::AddConstant(const std::string& name, std::vector<int64_t> shape) {
  return AddTensor(name, std::move(shape), /*is_const=*/true);
}

namespace {

int64_t ConvOutExtent(int64_t in, int64_t kernel, int64_t stride, int64_t dilation, int64_t pad) {
  return (in + 2 * pad - dilation * (kernel - 1) - 1) / stride + 1;
}

int64_t TransposedConvOutExtent(int64_t in, int64_t kernel, int64_t stride, int64_t pad,
                                int64_t out_pad) {
  return (in - 1) * stride - 2 * pad + kernel + out_pad;
}

}  // namespace

int Graph::AddConv(OpKind kind, int data, int weight, const ConvAttrs& attrs,
                   const std::string& name) {
  const auto& in_shape = tensors_[data].shape;
  const auto& w_shape = tensors_[weight].shape;
  int sd = attrs.spatial_dims;
  ALT_CHECK_MSG(static_cast<int>(in_shape.size()) == 2 + sd, "conv data rank mismatch");
  ALT_CHECK_MSG(static_cast<int>(w_shape.size()) == 2 + sd, "conv weight rank mismatch");

  int64_t n = in_shape[0];
  int64_t c = in_shape[1];
  bool transposed = (kind == OpKind::kTransposedConv2d || kind == OpKind::kTransposedConv3d);
  // Weight canonical: forward O, C/g, K...; transposed C, O/g, K...
  int64_t o = transposed ? w_shape[1] * attrs.groups : w_shape[0];
  ALT_CHECK_MSG(transposed ? (w_shape[0] == c) : (w_shape[1] * attrs.groups == c),
                "conv channel mismatch");

  std::vector<int64_t> out_shape{n, o};
  for (int d = 0; d < sd; ++d) {
    int64_t in_extent = in_shape[2 + d];
    int64_t kernel = w_shape[2 + d];
    int64_t extent =
        transposed
            ? TransposedConvOutExtent(in_extent, kernel, attrs.stride[d], attrs.pad[d],
                                      attrs.output_pad[d])
            : ConvOutExtent(in_extent, kernel, attrs.stride[d], attrs.dilation[d], attrs.pad[d]);
    ALT_CHECK_MSG(extent > 0, "conv output extent <= 0");
    out_shape.push_back(extent);
  }

  Op op;
  op.kind = kind;
  op.name = name;
  op.inputs = {data, weight};
  op.conv = attrs;
  return AddOpNode(std::move(op), std::move(out_shape), "");
}

int Graph::AddMatmul(int a, int b, const std::string& name) {
  const auto& sa = tensors_[a].shape;
  const auto& sb = tensors_[b].shape;
  ALT_CHECK(sa.size() == 2 && sb.size() == 2);
  ALT_CHECK_MSG(sa[1] == sb[0], "matmul inner-dim mismatch");
  Op op;
  op.kind = OpKind::kMatmul;
  op.name = name;
  op.inputs = {a, b};
  return AddOpNode(std::move(op), {sa[0], sb[1]}, "");
}

int Graph::AddPad(int input, PadAttrs attrs, const std::string& name) {
  const auto& in_shape = tensors_[input].shape;
  ALT_CHECK(attrs.before.size() == in_shape.size() && attrs.after.size() == in_shape.size());
  std::vector<int64_t> out_shape = in_shape;
  for (size_t d = 0; d < out_shape.size(); ++d) {
    out_shape[d] += attrs.before[d] + attrs.after[d];
  }
  Op op;
  op.kind = OpKind::kPad;
  op.name = name;
  op.inputs = {input};
  op.pad = std::move(attrs);
  return AddOpNode(std::move(op), std::move(out_shape), "");
}

int Graph::AddElementwise(OpKind kind, int input, const std::string& name) {
  Op op;
  op.kind = kind;
  op.name = name;
  op.inputs = {input};
  return AddOpNode(std::move(op), tensors_[input].shape, "");
}

int Graph::AddBiasAdd(int input, int bias, int axis, const std::string& name) {
  ALT_CHECK(tensors_[bias].shape.size() == 1);
  ALT_CHECK(tensors_[bias].shape[0] == tensors_[input].shape[axis]);
  Op op;
  op.kind = OpKind::kBiasAdd;
  op.name = name;
  op.inputs = {input, bias};
  op.bias_axis = axis;
  return AddOpNode(std::move(op), tensors_[input].shape, "");
}

int Graph::AddRelu(int input, const std::string& name) {
  return AddElementwise(OpKind::kRelu, input, name);
}

int Graph::AddGelu(int input, const std::string& name) {
  return AddElementwise(OpKind::kGelu, input, name);
}

int Graph::AddAdd(int a, int b, const std::string& name) {
  ALT_CHECK(tensors_[a].shape == tensors_[b].shape);
  Op op;
  op.kind = OpKind::kAddTensors;
  op.name = name;
  op.inputs = {a, b};
  return AddOpNode(std::move(op), tensors_[a].shape, "");
}

int Graph::AddMulScalar(int input, double scalar, const std::string& name) {
  Op op;
  op.kind = OpKind::kMulScalar;
  op.name = name;
  op.inputs = {input};
  op.scalar = scalar;
  return AddOpNode(std::move(op), tensors_[input].shape, "");
}

namespace {
std::vector<int64_t> PoolOutShape(const std::vector<int64_t>& in, const PoolAttrs& attrs) {
  ALT_CHECK(in.size() == 4);
  if (attrs.global) {
    return {in[0], in[1], 1, 1};
  }
  std::vector<int64_t> out = in;
  for (int d = 0; d < 2; ++d) {
    out[2 + d] = (in[2 + d] + 2 * attrs.pad[d] - attrs.window[d]) / attrs.stride[d] + 1;
  }
  return out;
}
}  // namespace

int Graph::AddMaxPool2d(int input, const PoolAttrs& attrs, const std::string& name) {
  Op op;
  op.kind = OpKind::kMaxPool2d;
  op.name = name;
  op.inputs = {input};
  op.pool = attrs;
  return AddOpNode(std::move(op), PoolOutShape(tensors_[input].shape, attrs), "");
}

int Graph::AddAvgPool2d(int input, const PoolAttrs& attrs, const std::string& name) {
  Op op;
  op.kind = OpKind::kAvgPool2d;
  op.name = name;
  op.inputs = {input};
  op.pool = attrs;
  return AddOpNode(std::move(op), PoolOutShape(tensors_[input].shape, attrs), "");
}

int Graph::AddSoftmax(int input, const std::string& name) {
  Op op;
  op.kind = OpKind::kSoftmax;
  op.name = name;
  op.inputs = {input};
  return AddOpNode(std::move(op), tensors_[input].shape, "");
}

int Graph::AddReshape(int input, std::vector<int64_t> shape, const std::string& name) {
  int64_t n = 1;
  for (int64_t d : shape) {
    n *= d;
  }
  ALT_CHECK_MSG(n == tensors_[input].NumElements(), "reshape element-count mismatch");
  Op op;
  op.kind = OpKind::kReshape;
  op.name = name;
  op.inputs = {input};
  return AddOpNode(std::move(op), std::move(shape), "");
}

int Graph::AddLayerNorm(int input, const std::string& name) {
  Op op;
  op.kind = OpKind::kLayerNorm;
  op.name = name;
  op.inputs = {input};
  return AddOpNode(std::move(op), tensors_[input].shape, "");
}

int Graph::AddIdentity(int input, const std::string& name) {
  return AddElementwise(OpKind::kIdentity, input, name);
}

int Graph::AddCustomOp(Op op, std::vector<int64_t> output_shape, const std::string& tensor_name) {
  return AddOpNode(std::move(op), std::move(output_shape), tensor_name);
}

StatusOr<Graph> Graph::FromParts(std::string name, std::vector<ir::Tensor> tensors,
                                 std::vector<Op> ops, std::vector<bool> is_const) {
  const int num_tensors = static_cast<int>(tensors.size());
  if (is_const.size() != tensors.size()) {
    return Status::InvalidArgument("graph parts: is_const/tensor count mismatch");
  }
  std::vector<int> producer(tensors.size(), -1);
  for (int i = 0; i < num_tensors; ++i) {
    if (tensors[i].id != i) {
      return Status::InvalidArgument("graph parts: non-contiguous tensor ids");
    }
    for (int64_t d : tensors[i].shape) {
      if (d <= 0) {
        return Status::InvalidArgument("graph parts: non-positive extent in tensor " +
                                       tensors[i].name);
      }
    }
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    Op& op = ops[i];
    if (op.id != static_cast<int>(i)) {
      return Status::InvalidArgument("graph parts: non-contiguous op ids");
    }
    if (op.output < 0 || op.output >= num_tensors) {
      return Status::InvalidArgument("graph parts: op output out of range");
    }
    if (producer[op.output] >= 0) {
      return Status::InvalidArgument("graph parts: tensor produced twice");
    }
    if (is_const[op.output]) {
      return Status::InvalidArgument("graph parts: constant tensor has a producer");
    }
    producer[op.output] = op.id;
    for (int in : op.inputs) {
      if (in < 0 || in >= num_tensors) {
        return Status::InvalidArgument("graph parts: op input out of range");
      }
    }
  }
  Graph g(std::move(name));
  g.tensors_ = std::move(tensors);
  g.ops_ = std::move(ops);
  g.producer_ = std::move(producer);
  g.is_const_.assign(is_const.begin(), is_const.end());
  return g;
}

std::vector<int> Graph::ConsumersOf(int tensor_id) const {
  std::vector<int> out;
  for (const auto& op : ops_) {
    for (int in : op.inputs) {
      if (in == tensor_id) {
        out.push_back(op.id);
        break;
      }
    }
  }
  return out;
}

std::vector<int> Graph::ComplexOps() const {
  std::vector<int> out;
  for (const auto& op : ops_) {
    if (IsComplex(op.kind)) {
      out.push_back(op.id);
    }
  }
  return out;
}

std::string Graph::ToString() const {
  std::ostringstream oss;
  oss << "graph " << name_ << " {\n";
  for (const auto& op : ops_) {
    oss << "  %" << op.output << " = " << OpKindName(op.kind) << "(";
    for (size_t i = 0; i < op.inputs.size(); ++i) {
      if (i > 0) {
        oss << ", ";
      }
      oss << "%" << op.inputs[i];
    }
    oss << ")  // " << op.name << " " << ir::ShapeToString(tensors_[op.output].shape) << "\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace alt::graph

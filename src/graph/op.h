// Operator definitions for the computational graph.
//
// "Complex" operators (paper §5.1) are the layout-sensitive ones that get
// their own layout tuning templates: convolutions (incl. grouped / depthwise
// / dilated / transposed variants) and general matrix multiplication. All
// other operators are "simple"; layouts reach them only through propagation
// (paper §4.2).

#ifndef ALT_GRAPH_OP_H_
#define ALT_GRAPH_OP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace alt::graph {

enum class OpKind {
  kInput,            // graph input placeholder (no computation)
  // --- complex operators ---
  kConv1d,           // N,C,W * O,C/g,KW -> N,O,OW
  kConv2d,           // N,C,H,W * O,C/g,KH,KW -> N,O,OH,OW (covers GRP/DEP/DIL)
  kConv3d,           // N,C,D,H,W * O,C/g,KD,KH,KW -> N,O,OD,OH,OW
  kTransposedConv2d,
  kTransposedConv3d,
  kMatmul,           // M,K * K,N -> M,N
  // --- simple operators ---
  kPad,              // zero padding of spatial dims
  kBiasAdd,          // out[..c..] = in[..c..] + bias[c]
  kRelu,
  kGelu,             // tanh approximation
  kAddTensors,       // elementwise sum of two same-shape tensors
  kMulScalar,        // elementwise scale
  kMaxPool2d,
  kAvgPool2d,        // window or global
  kSoftmax,          // over the last canonical dim
  kReshape,          // reinterpret shape (same element count, row-major)
  kLayerNorm,        // over the last canonical dim
  kIdentity,
  kLayoutConvert,    // materializes a tensor in a different physical layout
};

// Convolution attributes. For 1-D / 3-D, only the first 1 / 3 entries of the
// spatial arrays are used.
struct ConvAttrs {
  int spatial_dims = 2;
  int64_t stride[3] = {1, 1, 1};
  int64_t dilation[3] = {1, 1, 1};
  int64_t pad[3] = {0, 0, 0};  // symmetric zero padding per spatial dim
  int64_t groups = 1;
  // Transposed convs: extra size added to the output (output_padding).
  int64_t output_pad[3] = {0, 0, 0};
};

struct PoolAttrs {
  int64_t window[2] = {1, 1};
  int64_t stride[2] = {1, 1};
  int64_t pad[2] = {0, 0};
  bool global = false;  // reduce the full spatial extent
};

struct PadAttrs {
  // Per-dim (canonical) before/after zero padding.
  std::vector<int64_t> before;
  std::vector<int64_t> after;
};

struct Op {
  int id = -1;
  OpKind kind = OpKind::kIdentity;
  std::string name;
  std::vector<int> inputs;  // tensor ids (data first, then weights/bias)
  int output = -1;          // tensor id

  ConvAttrs conv;
  PoolAttrs pool;
  PadAttrs pad;
  double scalar = 1.0;      // kMulScalar
  int bias_axis = 1;        // kBiasAdd: canonical axis the bias indexes
};

// Complex operators get layout tuning templates (paper §5.1).
bool IsComplex(OpKind kind);

// Element-wise operators with identical in/out shape: layouts propagate
// across them (paper §4.2, Algorithm 1 line 10).
bool IsElementwise(OpKind kind);

const char* OpKindName(OpKind kind);

// Inverse of OpKindName for artifact deserialization. Unknown names (from a
// newer or corrupt artifact) are an error, never an abort.
StatusOr<OpKind> OpKindFromName(const std::string& name);

// Classified operator label used in the single-operator benchmark (Fig. 9):
// distinguishes C2D / GRP / DEP / DIL via attributes.
std::string OperatorLabel(const Op& op, int64_t in_channels);

}  // namespace alt::graph

#endif  // ALT_GRAPH_OP_H_

#include "src/graph/op.h"

namespace alt::graph {

bool IsComplex(OpKind kind) {
  switch (kind) {
    case OpKind::kConv1d:
    case OpKind::kConv2d:
    case OpKind::kConv3d:
    case OpKind::kTransposedConv2d:
    case OpKind::kTransposedConv3d:
    case OpKind::kMatmul:
      return true;
    default:
      return false;
  }
}

bool IsElementwise(OpKind kind) {
  switch (kind) {
    case OpKind::kBiasAdd:
    case OpKind::kRelu:
    case OpKind::kGelu:
    case OpKind::kAddTensors:
    case OpKind::kMulScalar:
    case OpKind::kIdentity:
      return true;
    default:
      return false;
  }
}

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return "input";
    case OpKind::kConv1d:
      return "conv1d";
    case OpKind::kConv2d:
      return "conv2d";
    case OpKind::kConv3d:
      return "conv3d";
    case OpKind::kTransposedConv2d:
      return "transposed_conv2d";
    case OpKind::kTransposedConv3d:
      return "transposed_conv3d";
    case OpKind::kMatmul:
      return "matmul";
    case OpKind::kPad:
      return "pad";
    case OpKind::kBiasAdd:
      return "bias_add";
    case OpKind::kRelu:
      return "relu";
    case OpKind::kGelu:
      return "gelu";
    case OpKind::kAddTensors:
      return "add";
    case OpKind::kMulScalar:
      return "mul_scalar";
    case OpKind::kMaxPool2d:
      return "max_pool2d";
    case OpKind::kAvgPool2d:
      return "avg_pool2d";
    case OpKind::kSoftmax:
      return "softmax";
    case OpKind::kReshape:
      return "reshape";
    case OpKind::kLayerNorm:
      return "layer_norm";
    case OpKind::kIdentity:
      return "identity";
    case OpKind::kLayoutConvert:
      return "layout_convert";
  }
  return "?";
}

StatusOr<OpKind> OpKindFromName(const std::string& name) {
  static constexpr OpKind kAll[] = {
      OpKind::kInput,         OpKind::kConv1d,          OpKind::kConv2d,
      OpKind::kConv3d,        OpKind::kTransposedConv2d, OpKind::kTransposedConv3d,
      OpKind::kMatmul,        OpKind::kPad,             OpKind::kBiasAdd,
      OpKind::kRelu,          OpKind::kGelu,            OpKind::kAddTensors,
      OpKind::kMulScalar,     OpKind::kMaxPool2d,       OpKind::kAvgPool2d,
      OpKind::kSoftmax,       OpKind::kReshape,         OpKind::kLayerNorm,
      OpKind::kIdentity,      OpKind::kLayoutConvert,
  };
  for (OpKind kind : kAll) {
    if (name == OpKindName(kind)) {
      return kind;
    }
  }
  return Status::InvalidArgument("unknown op kind '" + name + "'");
}

std::string OperatorLabel(const Op& op, int64_t in_channels) {
  switch (op.kind) {
    case OpKind::kConv1d:
      return "C1D";
    case OpKind::kConv3d:
      return "C3D";
    case OpKind::kTransposedConv2d:
      return "T2D";
    case OpKind::kTransposedConv3d:
      return "T3D";
    case OpKind::kMatmul:
      return "GMM";
    case OpKind::kConv2d: {
      if (op.conv.groups == in_channels && in_channels > 1) {
        return "DEP";
      }
      if (op.conv.groups > 1) {
        return "GRP";
      }
      if (op.conv.dilation[0] > 1 || op.conv.dilation[1] > 1) {
        return "DIL";
      }
      return "C2D";
    }
    default:
      return OpKindName(op.kind);
  }
}

}  // namespace alt::graph

// Computational graph: operators as nodes, tensors as edges (paper §2).
//
// Tensor shapes here are CANONICAL (logical) shapes — conv data is N,C,H,W,
// weights are O,I,KH,KW, matmul operands are M,K / K,N. Physical storage
// layouts are primitive sequences kept in a LayoutAssignment side table
// (layout_assignment.h); the graph itself never changes when layouts do,
// which is exactly the decoupling the paper argues for.

#ifndef ALT_GRAPH_GRAPH_H_
#define ALT_GRAPH_GRAPH_H_

#include <string>
#include <vector>

#include "src/graph/op.h"
#include "src/ir/tensor.h"
#include "src/support/status.h"

namespace alt::graph {

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // --- construction (shape inference is built into each helper) ---

  int AddInput(const std::string& name, std::vector<int64_t> shape);
  int AddConstant(const std::string& name, std::vector<int64_t> shape);

  // data: N,C,W|H,W|D,H,W. weight: O, C/groups, K... Returns output tensor id.
  int AddConv(OpKind kind, int data, int weight, const ConvAttrs& attrs,
              const std::string& name = "");
  int AddMatmul(int a, int b, const std::string& name = "");

  int AddPad(int input, PadAttrs attrs, const std::string& name = "");
  int AddBiasAdd(int input, int bias, int axis = 1, const std::string& name = "");
  int AddRelu(int input, const std::string& name = "");
  int AddGelu(int input, const std::string& name = "");
  int AddAdd(int a, int b, const std::string& name = "");
  int AddMulScalar(int input, double scalar, const std::string& name = "");
  int AddMaxPool2d(int input, const PoolAttrs& attrs, const std::string& name = "");
  int AddAvgPool2d(int input, const PoolAttrs& attrs, const std::string& name = "");
  int AddSoftmax(int input, const std::string& name = "");
  int AddReshape(int input, std::vector<int64_t> shape, const std::string& name = "");
  int AddLayerNorm(int input, const std::string& name = "");
  int AddIdentity(int input, const std::string& name = "");

  // Inserts `op` consuming existing tensors; output shape given explicitly.
  // Used by layout propagation to insert conversion operators.
  int AddCustomOp(Op op, std::vector<int64_t> output_shape, const std::string& tensor_name);

  // Restores a graph from previously serialized parts (artifact loading).
  // Unlike the Add* helpers this performs no shape inference — a tuned graph
  // contains inserted conversion ops whose inputs may reference later tensor
  // ids, so it cannot be rebuilt by replaying construction. All structural
  // invariants (contiguous ids, in-range references, positive extents, one
  // producer per tensor) are validated with Status, never aborts: the parts
  // come from untrusted files.
  static StatusOr<Graph> FromParts(std::string name, std::vector<ir::Tensor> tensors,
                                   std::vector<Op> ops, std::vector<bool> is_const);

  // --- access ---

  const std::vector<Op>& ops() const { return ops_; }
  const std::vector<ir::Tensor>& tensors() const { return tensors_; }
  const ir::Tensor& tensor(int id) const { return tensors_[id]; }
  const Op& op(int id) const { return ops_[id]; }
  Op& mutable_op(int id) { return ops_[id]; }

  // Producer op id of a tensor, or -1 for graph inputs/constants.
  int ProducerOf(int tensor_id) const { return producer_[tensor_id]; }
  // Ops consuming a tensor.
  std::vector<int> ConsumersOf(int tensor_id) const;

  // Ids of complex ops in topological (insertion) order.
  std::vector<int> ComplexOps() const;

  bool IsGraphInput(int tensor_id) const {
    return producer_[tensor_id] < 0 && !is_const_[tensor_id];
  }
  bool IsConstant(int tensor_id) const { return is_const_[tensor_id]; }

  std::string ToString() const;

 private:
  int AddTensor(const std::string& name, std::vector<int64_t> shape, bool is_const);
  int AddOpNode(Op op, std::vector<int64_t> output_shape, const std::string& tensor_name);
  int AddElementwise(OpKind kind, int input, const std::string& name);

  std::string name_;
  std::vector<ir::Tensor> tensors_;
  std::vector<Op> ops_;
  std::vector<int> producer_;    // tensor id -> op id or -1
  std::vector<bool> is_const_;   // tensor id -> constant weight?
};

}  // namespace alt::graph

#endif  // ALT_GRAPH_GRAPH_H_

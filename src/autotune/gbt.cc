#include "src/autotune/gbt.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/support/status.h"

namespace alt::autotune {

double GradientBoostedTrees::Tree::Predict(const std::vector<double>& x) const {
  int node = 0;
  while (nodes[node].feature >= 0) {
    const Node& n = nodes[node];
    double v = n.feature < static_cast<int>(x.size()) ? x[n.feature] : 0.0;
    node = v <= n.threshold ? n.left : n.right;
  }
  return nodes[node].value;
}

void GradientBoostedTrees::Split(Tree& tree, int node_id,
                                 const std::vector<std::vector<double>>& x,
                                 const std::vector<double>& residual,
                                 std::vector<int>& indices, int begin, int end, int depth) {
  int count = end - begin;
  double sum = 0.0;
  for (int i = begin; i < end; ++i) {
    sum += residual[indices[i]];
  }
  double mean = count > 0 ? sum / count : 0.0;
  tree.nodes[node_id].value = mean;
  if (depth >= options_.max_depth || count < 2 * options_.min_samples_leaf) {
    return;
  }

  int num_features = static_cast<int>(x[0].size());
  double best_gain = 1e-12;
  int best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, double>> vals(count);  // (feature value, residual)
  for (int f = 0; f < num_features; ++f) {
    for (int i = 0; i < count; ++i) {
      int idx = indices[begin + i];
      vals[i] = {x[idx][f], residual[idx]};
    }
    std::sort(vals.begin(), vals.end());
    double left_sum = 0.0;
    for (int i = 0; i + 1 < count; ++i) {
      left_sum += vals[i].second;
      if (vals[i].first == vals[i + 1].first) {
        continue;
      }
      int nl = i + 1;
      int nr = count - nl;
      if (nl < options_.min_samples_leaf || nr < options_.min_samples_leaf) {
        continue;
      }
      double right_sum = sum - left_sum;
      double gain = left_sum * left_sum / nl + right_sum * right_sum / nr - sum * sum / count;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = f;
        best_threshold = 0.5 * (vals[i].first + vals[i + 1].first);
      }
    }
  }
  if (best_feature < 0) {
    return;
  }

  auto mid_it = std::partition(indices.begin() + begin, indices.begin() + end,
                               [&](int idx) { return x[idx][best_feature] <= best_threshold; });
  int mid = static_cast<int>(mid_it - indices.begin());
  if (mid == begin || mid == end) {
    return;
  }
  tree.nodes[node_id].feature = best_feature;
  tree.nodes[node_id].threshold = best_threshold;
  int left = static_cast<int>(tree.nodes.size());
  tree.nodes.push_back(Node{});
  int right = static_cast<int>(tree.nodes.size());
  tree.nodes.push_back(Node{});
  tree.nodes[node_id].left = left;
  tree.nodes[node_id].right = right;
  Split(tree, left, x, residual, indices, begin, mid, depth + 1);
  Split(tree, right, x, residual, indices, mid, end, depth + 1);
}

GradientBoostedTrees::Tree GradientBoostedTrees::FitTree(
    const std::vector<std::vector<double>>& x, const std::vector<double>& residual) {
  Tree tree;
  tree.nodes.push_back(Node{});
  std::vector<int> indices(x.size());
  std::iota(indices.begin(), indices.end(), 0);
  Split(tree, 0, x, residual, indices, 0, static_cast<int>(x.size()), 0);
  return tree;
}

void GradientBoostedTrees::Fit(const std::vector<std::vector<double>>& x,
                               const std::vector<double>& y) {
  trees_.clear();
  if (x.empty()) {
    return;
  }
  ALT_CHECK(x.size() == y.size());
  base_ = std::accumulate(y.begin(), y.end(), 0.0) / y.size();
  std::vector<double> pred(y.size(), base_);
  for (int t = 0; t < options_.num_trees; ++t) {
    std::vector<double> residual(y.size());
    for (size_t i = 0; i < y.size(); ++i) {
      residual[i] = y[i] - pred[i];
    }
    Tree tree = FitTree(x, residual);
    for (size_t i = 0; i < y.size(); ++i) {
      pred[i] += options_.learning_rate * tree.Predict(x[i]);
    }
    trees_.push_back(std::move(tree));
  }
}

double GradientBoostedTrees::Predict(const std::vector<double>& x) const {
  double out = base_;
  for (const auto& tree : trees_) {
    out += options_.learning_rate * tree.Predict(x);
  }
  return out;
}

}  // namespace alt::autotune

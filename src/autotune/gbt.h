// Gradient-boosted regression trees — the cost model family the paper uses
// (an XGBoost ensemble, §5.2.3). Trained online on measured points to rank
// candidate programs so only the predicted top-k get "measured".

#ifndef ALT_AUTOTUNE_GBT_H_
#define ALT_AUTOTUNE_GBT_H_

#include <cstdint>
#include <vector>

namespace alt::autotune {

struct GbtOptions {
  int num_trees = 40;
  int max_depth = 4;
  double learning_rate = 0.3;
  int min_samples_leaf = 4;
};

class GradientBoostedTrees {
 public:
  explicit GradientBoostedTrees(GbtOptions options = {}) : options_(options) {}

  // Fits on (features, targets); squared loss, exact greedy splits.
  void Fit(const std::vector<std::vector<double>>& x, const std::vector<double>& y);

  double Predict(const std::vector<double>& x) const;

  bool trained() const { return !trees_.empty(); }

 private:
  struct Node {
    int feature = -1;      // -1: leaf
    double threshold = 0.0;
    double value = 0.0;    // leaf prediction
    int left = -1;
    int right = -1;
  };
  struct Tree {
    std::vector<Node> nodes;
    double Predict(const std::vector<double>& x) const;
  };

  Tree FitTree(const std::vector<std::vector<double>>& x, const std::vector<double>& residual);
  void Split(Tree& tree, int node, const std::vector<std::vector<double>>& x,
             const std::vector<double>& residual, std::vector<int>& indices, int begin, int end,
             int depth);

  GbtOptions options_;
  double base_ = 0.0;
  std::vector<Tree> trees_;
};

}  // namespace alt::autotune

#endif  // ALT_AUTOTUNE_GBT_H_

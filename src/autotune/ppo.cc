#include "src/autotune/ppo.h"

#include <algorithm>
#include <cmath>

#include "src/support/metrics.h"
#include "src/support/status.h"
#include "src/support/trace.h"

namespace alt::autotune {

namespace {

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

PpoAgent::PpoAgent(PpoOptions options, Rng& rng)
    : options_(options),
      rng_(rng.NextU64()),
      actor_(options.state_dim, options.hidden, options.action_dim, rng),
      critic_(options.state_dim, options.hidden, 1, rng) {}

std::vector<double> PpoAgent::PadState(const std::vector<double>& state) const {
  std::vector<double> padded(options_.state_dim, 0.0);
  for (size_t i = 0; i < state.size() && i < padded.size(); ++i) {
    // Log-compress magnitudes: primitive states hold extents up to millions.
    double v = state[i];
    padded[i] = v >= 0 ? std::log1p(v) * 0.25 : -std::log1p(-v) * 0.25;
  }
  return padded;
}

std::vector<double> PpoAgent::Act(const std::vector<double>& state) {
  ALT_CHECK_MSG(!pending_, "Act called twice without Reward");
  Transition t;
  t.state = PadState(state);
  t.mean = actor_.Forward(t.state);
  double sigma = std::exp(options_.log_std);
  t.u.resize(options_.action_dim);
  std::vector<double> action(options_.action_dim);
  for (int i = 0; i < options_.action_dim; ++i) {
    t.u[i] = t.mean[i] + sigma * rng_.NextGaussian();
    action[i] = Sigmoid(t.u[i]);
  }
  buffer_.push_back(std::move(t));
  pending_ = true;
  return action;
}

void PpoAgent::Reward(double reward) {
  ALT_CHECK_MSG(pending_, "Reward without a pending Act");
  buffer_.back().reward = reward;
  pending_ = false;
  if (static_cast<int>(buffer_.size()) >= options_.batch_before_update) {
    Update();
    buffer_.clear();
  }
}

void PpoAgent::Update() {
  TraceSpan span("ppo.update");
  static Counter& updates = MetricsRegistry::Global().counter("ppo.updates");
  static Histogram& update_us = MetricsRegistry::Global().histogram("ppo.update_us");
  updates.Add();
  const int64_t start_ns = TraceRecorder::NowNs();
  // Normalize rewards across the batch for a stable advantage scale.
  double mean_r = 0.0;
  for (const auto& t : buffer_) {
    mean_r += t.reward;
  }
  mean_r /= buffer_.size();
  double var_r = 0.0;
  for (const auto& t : buffer_) {
    var_r += (t.reward - mean_r) * (t.reward - mean_r);
  }
  double std_r = std::sqrt(var_r / buffer_.size()) + 1e-6;

  const double sigma = std::exp(options_.log_std);
  const double inv_var = 1.0 / (sigma * sigma);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    for (const auto& t : buffer_) {
      double norm_reward = (t.reward - mean_r) / std_r;
      double value = critic_.Forward(t.state)[0];
      double advantage = norm_reward - value;

      // Critic: squared error towards the normalized reward.
      critic_.Backward(t.state, {2.0 * (value - norm_reward)});

      // Actor: PPO-clip. ratio = pi(u|s)/pi_old(u|s) with gaussian policy;
      // log pi = -0.5 * inv_var * ||u - mean||^2 + const.
      auto mean_now = actor_.Forward(t.state);
      double log_ratio = 0.0;
      for (int i = 0; i < options_.action_dim; ++i) {
        double d_new = t.u[i] - mean_now[i];
        double d_old = t.u[i] - t.mean[i];
        log_ratio += -0.5 * inv_var * (d_new * d_new - d_old * d_old);
      }
      double ratio = std::exp(std::clamp(log_ratio, -10.0, 10.0));
      bool clipped = (advantage > 0 && ratio > 1.0 + options_.clip) ||
                     (advantage < 0 && ratio < 1.0 - options_.clip);
      if (!clipped) {
        // d(-ratio*A)/d mean_i = -A * ratio * inv_var * (u_i - mean_i)
        std::vector<double> grad(options_.action_dim);
        for (int i = 0; i < options_.action_dim; ++i) {
          grad[i] = -advantage * ratio * inv_var * (t.u[i] - mean_now[i]);
        }
        actor_.Backward(t.state, grad);
      }
    }
    actor_.AdamStep(options_.actor_lr);
    critic_.AdamStep(options_.critic_lr);
  }
  update_us.Observe(static_cast<double>(TraceRecorder::NowNs() - start_ns) * 1e-3);
}

std::vector<double> PpoAgent::Snapshot() const {
  auto a = actor_.GetWeights();
  auto c = critic_.GetWeights();
  a.insert(a.end(), c.begin(), c.end());
  return a;
}

void PpoAgent::Restore(const std::vector<double>& snapshot) {
  auto a = actor_.GetWeights();  // sizes
  std::vector<double> actor_w(snapshot.begin(), snapshot.begin() + a.size());
  std::vector<double> critic_w(snapshot.begin() + a.size(), snapshot.end());
  actor_.SetWeights(actor_w);
  critic_.SetWeights(critic_w);
}

}  // namespace alt::autotune

// Proximal Policy Optimization agent (paper §5.2).
//
// The tuner's exploration agents are PPO actors with a shared critic. Each
// proposal is a one-step episode: observe the primitive/schedule state,
// output a vector of actions in (0,1) (mapped to split factors via Eq. (2)),
// receive the reward U - latency (Eq. (3)). Updates use the clipped PPO
// objective with an MLP policy (Gaussian in pre-sigmoid space) and an MLP
// value baseline.

#ifndef ALT_AUTOTUNE_PPO_H_
#define ALT_AUTOTUNE_PPO_H_

#include <memory>
#include <vector>

#include "src/autotune/mlp.h"
#include "src/support/rng.h"

namespace alt::autotune {

struct PpoOptions {
  int state_dim = 32;
  int action_dim = 12;
  int hidden = 64;
  double log_std = -0.1;      // exploration noise (sigma ~ 0.9 pre-sigmoid)
  double clip = 0.2;
  double actor_lr = 3e-3;
  double critic_lr = 1e-2;
  int epochs = 4;
  int batch_before_update = 16;
};

class PpoAgent {
 public:
  PpoAgent(PpoOptions options, Rng& rng);

  // Samples an action vector in (0,1)^action_dim for `state` (padded /
  // truncated to state_dim internally).
  std::vector<double> Act(const std::vector<double>& state);

  // Reports the reward of the LAST Act() call. When enough transitions have
  // accumulated, runs a PPO update.
  void Reward(double reward);

  // Pretraining support: snapshot / restore all weights.
  std::vector<double> Snapshot() const;
  void Restore(const std::vector<double>& snapshot);

  const PpoOptions& options() const { return options_; }

 private:
  struct Transition {
    std::vector<double> state;
    std::vector<double> u;        // pre-sigmoid gaussian sample
    std::vector<double> mean;     // policy mean at sample time
    double reward = 0.0;
  };

  std::vector<double> PadState(const std::vector<double>& state) const;
  void Update();

  PpoOptions options_;
  Rng rng_;
  Mlp actor_;
  Mlp critic_;
  std::vector<Transition> buffer_;
  bool pending_ = false;
};

}  // namespace alt::autotune

#endif  // ALT_AUTOTUNE_PPO_H_

#include "src/autotune/worker_pool.h"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <deque>
#include <exception>
#include <limits>
#include <string>

#include "src/autotune/measure.h"  // RetryPolicy + RetryBackoffMs
#include "src/support/trace.h"

namespace alt::autotune {

namespace {

int64_t NowMs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

bool HookFires(uint64_t hook_site, int attempt_bound, uint64_t site, int attempt) {
  if (hook_site == 0) {
    return false;
  }
  if (hook_site != kAnyMeasureSite && hook_site != site) {
    return false;
  }
  return attempt_bound <= 0 || attempt < attempt_bound;
}

Status StatusFromCode(int code, std::string message) {
  if (code <= 0 || code > static_cast<int>(StatusCode::kDeadlineExceeded)) {
    return Status::Internal("worker reported an unknown status code: " + std::move(message));
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

// Reply payload: "r <item> <code> <latency %.17g> <eval_ns>[ <message>]".
struct Reply {
  int item = -1;
  int code = 0;
  double latency_us = 0.0;
  long long eval_ns = 0;
  std::string message;
};

bool ParseReply(const std::string& payload, Reply* out) {
  int consumed = 0;
  if (std::sscanf(payload.c_str(), "r %d %d %lf %lld%n", &out->item, &out->code,
                  &out->latency_us, &out->eval_ns, &consumed) != 4) {
    return false;
  }
  if (consumed + 1 < static_cast<int>(payload.size())) {
    out->message = payload.substr(consumed + 1);
  }
  return true;
}

}  // namespace

WorkerPool::WorkerPool(const IsolateOptions& options, const RetryPolicy& retry,
                       const FaultInjector* injector, const std::vector<uint64_t>& sites,
                       EvalFn eval)
    : options_(options),
      retry_(retry),
      injector_(injector),
      sites_(sites),
      eval_(std::move(eval)) {
  if (options_.workers <= 0) {
    options_.workers = 1;
  }
  // A worker killed between our poll and our write turns the write into
  // SIGPIPE; the parent must see EPIPE from write(2) instead and respawn.
  static const bool sigpipe_ignored = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)sigpipe_ignored;
}

WorkerPool::~WorkerPool() {
  for (Slot& slot : slots_) {
    KillChild(&slot.proc);
  }
}

int WorkerPool::ChildMain(int request_fd, int reply_fd) {
  std::string payload;
  for (;;) {
    FrameReadResult r = ReadFrame(request_fd, &payload, /*deadline_ms=*/-1);
    if (r != FrameReadResult::kOk) {
      return 0;  // parent closed the request pipe (or died): clean exit
    }
    int item = 0;
    int attempt = 0;
    if (std::sscanf(payload.c_str(), "m %d %d", &item, &attempt) != 2 || work_ == nullptr ||
        item < 0 || item >= static_cast<int>(work_->size())) {
      return 1;
    }
    const int index = (*work_)[item];
    const uint64_t site = sites_[index];
    const WorkerFaultHooks& hooks = options_.faults;
    if (HookFires(hooks.crash_site, hooks.crash_attempts, site, attempt)) {
      ::raise(SIGKILL);  // indistinguishable from an external kill -9
    }
    if (HookFires(hooks.hang_site, hooks.hang_attempts, site, attempt)) {
      for (;;) {
        ::sleep(3600);  // the parent watchdog kills us long before this matters
      }
    }
    const int64_t start_ns = TraceRecorder::NowNs();
    WorkerEval eval;
    try {
      eval = eval_(index);
    } catch (const std::exception& e) {
      eval.status = Status::Internal(std::string("measurement threw: ") + e.what());
    } catch (...) {
      eval.status = Status::Internal("measurement threw");
    }
    const long long eval_ns = TraceRecorder::NowNs() - start_ns;
    char head[128];
    std::snprintf(head, sizeof(head), "r %d %d %.17g %lld", item,
                  static_cast<int>(eval.status.code()), eval.latency_us, eval_ns);
    std::string reply = head;
    if (!eval.status.ok() && !eval.status.message().empty()) {
      reply += " " + eval.status.message();
    }
    std::string frame = EncodeFrame(reply);
    if (HookFires(hooks.garble_site, hooks.garble_attempts, site, attempt)) {
      frame.back() ^= 0x5a;  // flip payload bits so the parent's CRC check trips
    }
    if (!WriteAll(reply_fd, frame).ok()) {
      return 1;
    }
  }
}

Status WorkerPool::Spawn(Slot* slot) {
  // A child must not inherit its siblings' pipe ends: a crashed sibling is
  // detected by EOF, which only fires once every copy of its write end is
  // closed.
  std::vector<int> close_in_child;
  for (const Slot& other : slots_) {
    if (&other != slot && other.proc.running()) {
      close_in_child.push_back(other.proc.read_fd);
      close_in_child.push_back(other.proc.write_fd);
    }
  }
  auto child = SpawnChild(
      [this](int request_fd, int reply_fd) { return ChildMain(request_fd, reply_fd); },
      close_in_child);
  if (!child.ok()) {
    return child.status();
  }
  slot->proc = *child;
  return Status::Ok();
}

void WorkerPool::Respawn(Slot* slot) {
  KillChild(&slot->proc);
  ++restarts_;
  // A failed respawn leaves the slot dead; dispatch tries to spawn again and
  // fails the candidate if workers truly cannot be created.
  Status ignored = Spawn(slot);
  (void)ignored;
}

std::vector<WorkerOutcome> WorkerPool::Run(const std::vector<int>& work) {
  std::vector<WorkerOutcome> out(work.size());
  if (work.empty()) {
    return out;
  }
  work_ = &work;
  const int max_attempts = std::max(1, retry_.max_attempts);
  constexpr int64_t kFarFuture = std::numeric_limits<int64_t>::max();

  struct Item {
    int item = 0;
    int attempt = 0;
    int64_t ready_at_ms = 0;  // backoff release time
  };
  std::deque<Item> queue;
  for (int j = 0; j < static_cast<int>(work.size()); ++j) {
    queue.push_back({j, 0, 0});
  }
  size_t done = 0;

  // Parent-side per-candidate trace spans: the child's recorder dies with the
  // child, so the dispatch-to-completion window is stamped here instead. A
  // span covers every attempt of its item, backoff included, matching what
  // TraceSpan("measure.candidate") wraps on the in-process path.
  const bool tracing = TraceRecorder::Global().enabled();
  std::vector<int64_t> started_ns(work.size(), 0);
  auto finish = [&](int item) {
    ++done;
    if (tracing && started_ns[item] != 0) {
      TraceRecorder::Global().Record("measure.candidate", "", started_ns[item],
                                     TraceRecorder::NowNs(), /*instant=*/false);
    }
  };

  if (static_cast<int>(slots_.size()) < options_.workers) {
    slots_.resize(options_.workers);
  }

  // Charges one failed attempt, then requeues with backoff or finalizes.
  // Mirrors the in-process accounting: retries/backoff are charged when the
  // retry is scheduled, i.e. for attempts numbered >= 1.
  auto transient_failure = [&](int item, int attempt, Status why) {
    ++out[item].attempts;
    if (attempt + 1 < max_attempts) {
      ++out[item].retries;
      const int delay = RetryBackoffMs(retry_, attempt + 1);
      out[item].backoff_ms += delay;
      queue.push_back({item, attempt + 1, NowMs() + delay});
    } else {
      out[item].status = std::move(why);
      finish(item);
    }
  };

  while (done < work.size()) {
    const int64_t now = NowMs();

    // Dispatch ready items onto idle workers. Injected faults are decided
    // HERE, parent-side, so the child never runs for them and each
    // (site, attempt) pair meets exactly the fate the in-process path gives
    // it — journal resume stays deterministic under isolation.
    for (Slot& slot : slots_) {
      if (slot.busy) {
        continue;
      }
      bool dispatched = false;
      while (!dispatched) {
        auto it = std::find_if(queue.begin(), queue.end(),
                               [now](const Item& q) { return q.ready_at_ms <= now; });
        if (it == queue.end()) {
          break;
        }
        const Item item = *it;
        queue.erase(it);
        if (tracing && started_ns[item.item] == 0) {
          started_ns[item.item] = TraceRecorder::NowNs();
        }
        const uint64_t site = sites_[work[item.item]];
        if (injector_ != nullptr && injector_->enabled() &&
            injector_->ShouldFail(site, item.attempt)) {
          ++out[item.item].injected;
          transient_failure(item.item, item.attempt,
                            Status::Unavailable("injected transient measurement fault"));
          continue;  // the slot is still free; try the next ready item
        }
        if (!slot.proc.running()) {
          Status spawned = Spawn(&slot);
          if (!spawned.ok()) {
            // Cannot create workers (fd/process exhaustion): retrying without
            // one is pointless, so the candidate fails outright.
            out[item.item].status = spawned;
            finish(item.item);
            continue;
          }
        }
        const std::string request =
            "m " + std::to_string(item.item) + " " + std::to_string(item.attempt);
        Status wrote = WriteFrame(slot.proc.write_fd, request);
        if (!wrote.ok()) {
          // The worker died while idle; replace it and try once more.
          Respawn(&slot);
          if (slot.proc.running()) {
            wrote = WriteFrame(slot.proc.write_fd, request);
          }
          if (!wrote.ok()) {
            transient_failure(item.item, item.attempt,
                              Status::Unavailable("measurement worker unreachable: " +
                                                  wrote.message()));
            continue;
          }
        }
        slot.busy = true;
        slot.item = item.item;
        slot.attempt = item.attempt;
        slot.deadline_abs_ms = options_.deadline_ms > 0 ? NowMs() + options_.deadline_ms : 0;
        dispatched = true;
      }
    }
    if (done >= work.size()) {
      break;
    }

    // Sleep until a reply arrives, a watchdog expires, or a backoff releases.
    std::vector<struct pollfd> pfds;
    std::vector<Slot*> pfd_slots;
    int64_t wake = kFarFuture;
    for (Slot& slot : slots_) {
      if (!slot.busy) {
        continue;
      }
      pfds.push_back({slot.proc.read_fd, POLLIN, 0});
      pfd_slots.push_back(&slot);
      if (slot.deadline_abs_ms > 0) {
        wake = std::min(wake, slot.deadline_abs_ms);
      }
    }
    for (const Item& q : queue) {
      wake = std::min(wake, q.ready_at_ms);
    }
    if (pfds.empty() && wake == kFarFuture) {
      break;  // defensive: no in-flight work and nothing queued
    }
    int timeout_ms = -1;
    if (wake != kFarFuture) {
      timeout_ms = static_cast<int>(std::clamp<int64_t>(wake - NowMs(), 0, 60000));
    }
    ::poll(pfds.data(), pfds.size(), timeout_ms);

    const int64_t after = NowMs();
    for (size_t k = 0; k < pfds.size(); ++k) {
      Slot& slot = *pfd_slots[k];
      if (!slot.busy || (pfds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      const int item = slot.item;
      const int attempt = slot.attempt;
      std::string payload;
      const int remaining =
          slot.deadline_abs_ms > 0
              ? static_cast<int>(std::max<int64_t>(0, slot.deadline_abs_ms - after))
              : -1;
      FrameReadResult fr = ReadFrame(slot.proc.read_fd, &payload, remaining);
      Reply reply;
      if (fr == FrameReadResult::kOk && ParseReply(payload, &reply) && reply.item == item) {
        ++out[item].attempts;
        out[item].eval_ns += reply.eval_ns;
        if (reply.code == 0) {
          out[item].status = Status::Ok();
          out[item].latency_us = reply.latency_us;
        } else {
          // Deterministic evaluation failure (e.g. a lowering error): the
          // in-process path never retries these either.
          out[item].status = StatusFromCode(reply.code, std::move(reply.message));
        }
        finish(item);
        slot.busy = false;
      } else if (fr == FrameReadResult::kTimeout) {
        // A partial frame straddled the watchdog deadline: same as a hang.
        Respawn(&slot);
        slot.busy = false;
        transient_failure(item, attempt,
                          Status::Unavailable("measurement worker missed deadline"));
      } else {
        const char* what = fr == FrameReadResult::kEof     ? "died"
                           : fr == FrameReadResult::kOk    ? "spoke out of protocol"
                                                           : "wrote a garbled frame";
        Respawn(&slot);
        slot.busy = false;
        transient_failure(
            item, attempt,
            Status::Unavailable(std::string("measurement worker ") + what +
                                "; killed and respawned"));
      }
    }

    // Watchdog sweep: kill and respawn workers that missed their deadline.
    if (options_.deadline_ms > 0) {
      const int64_t sweep_now = NowMs();
      for (Slot& slot : slots_) {
        if (slot.busy && slot.deadline_abs_ms > 0 && sweep_now >= slot.deadline_abs_ms) {
          const int item = slot.item;
          const int attempt = slot.attempt;
          Respawn(&slot);
          slot.busy = false;
          transient_failure(item, attempt,
                            Status::Unavailable("measurement worker missed deadline"));
        }
      }
    }
  }
  work_ = nullptr;
  return out;
}

}  // namespace alt::autotune

// Crash-isolated out-of-process measurement workers.
//
// The measurement engine's in-process path evaluates candidates on a thread
// pool; a segfaulting, OOM-ing, or hanging candidate takes the whole tuning
// session down with it. WorkerPool moves candidate evaluation into FORKED
// child processes so the tuner survives anything a candidate can do:
//
//   * A worker that EXITS (crash, kill -9, clean death) is detected by pipe
//     EOF, killed/reaped, and respawned; the in-flight candidate re-enters
//     the retry/backoff path as a transient failure.
//   * A worker that writes a GARBLED frame (CRC mismatch, torn write,
//     protocol desync) is killed and respawned the same way — the corruption
//     never reaches the tuner.
//   * A worker that HANGS past the per-candidate `deadline_ms` watchdog is
//     SIGKILLed and respawned; the candidate retries.
//   * Candidates that fail persistently exhaust the RetryPolicy and surface
//     as a failed MeasureResult — the caller's quarantine machinery takes it
//     from there. The tuner process never dies and never loses a candidate.
//
// DETERMINISM. The parent is a single-threaded poll(2) scheduler that
// consults the FaultInjector itself (children never see injected faults) and
// reports per-candidate outcomes positionally, so the isolated path yields
// bit-identical results and budget accounting to the in-process path — and
// journal resume works unchanged. Evaluation order across workers is
// nondeterministic; outcome REDUCTION (in measure.cc) is slot-ordered.
//
// FORK CONTRACT. Children are forked per measurement batch and inherit the
// batch context (graph/assignment/group/schedules) by copy-on-write, so no
// graph serialization crosses the pipe. The child body runs only the pure
// lower+estimate evaluation and raw pipe I/O: no engine locks, no logging,
// no shared allocator state may be touched after fork. This is safe while
// the only threads that allocate during a batch are the engine's own pool
// threads, which are idle whenever the isolated path runs (it replaces
// ParallelFor rather than nesting inside it).

#ifndef ALT_AUTOTUNE_WORKER_POOL_H_
#define ALT_AUTOTUNE_WORKER_POOL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/support/fault_injection.h"
#include "src/support/status.h"
#include "src/support/subprocess.h"

namespace alt::autotune {

struct RetryPolicy;  // measure.h; broken cycle — measure.h includes this header

// Wildcard site for WorkerFaultHooks: the hook fires for every candidate.
inline constexpr uint64_t kAnyMeasureSite = ~0ull;

// Test-only fault hooks executed INSIDE the worker child, keyed by the same
// 64-bit site fingerprint the FaultInjector uses. A hook fires when its site
// matches the candidate (or is kAnyMeasureSite) and the attempt number is
// below its `*_attempts` bound (0 bounds nothing: every attempt fires, which
// drives the candidate into quarantine).
struct WorkerFaultHooks {
  uint64_t crash_site = 0;  // raise(SIGKILL) before evaluating — kill -9
  int crash_attempts = 0;
  uint64_t hang_site = 0;  // sleep far past any deadline; the watchdog kills
  int hang_attempts = 0;
  uint64_t garble_site = 0;  // corrupt the reply frame's checksum
  int garble_attempts = 0;

  bool any() const { return crash_site != 0 || hang_site != 0 || garble_site != 0; }
};

// Knobs for the isolated measurement path (MeasureEngineConfig::isolate).
struct IsolateOptions {
  bool enabled = false;
  // Concurrent worker processes (<= 0: one). Forked per batch; idle batches
  // (fully cached/replayed) spawn nothing.
  int workers = 2;
  // Per-candidate watchdog: a worker that has not replied this many ms after
  // dispatch is killed and the candidate retries. <= 0 disables the watchdog
  // (a hung candidate then hangs the batch, as in-process evaluation would).
  int deadline_ms = 10000;
  WorkerFaultHooks faults;
};

// What the child-side evaluation returned for one candidate.
struct WorkerEval {
  Status status = Status::Ok();
  double latency_us = 0.0;
};

// Final per-candidate outcome after the retry policy ran its course. Field
// semantics mirror the in-process per-slot tallies in MeasureEngine::Measure.
struct WorkerOutcome {
  Status status = Status::Ok();
  double latency_us = 0.0;
  int attempts = 0;  // attempts charged (injected + dispatched), as in-process
  int retries = 0;
  int injected = 0;          // attempts failed by the parent-side FaultInjector
  double backoff_ms = 0.0;   // total retry backoff requested
  int64_t eval_ns = 0;       // child-reported lower+estimate time, all attempts
};

class WorkerPool {
 public:
  // Runs in the CHILD; must be pure in `index` (see the fork contract above).
  using EvalFn = std::function<WorkerEval(int index)>;

  // `retry`, `injector` (may be null), `sites`, and `eval` are borrowed and
  // must outlive the pool. `sites[index]` is the candidate's stable
  // fingerprint, consulted by the injector (parent) and fault hooks (child).
  WorkerPool(const IsolateOptions& options, const RetryPolicy& retry,
             const FaultInjector* injector, const std::vector<uint64_t>& sites, EvalFn eval);
  ~WorkerPool();  // kills any workers still alive

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Evaluates candidates `work` (values are indices passed to `eval`/`sites`)
  // and returns outcomes aligned with `work`. Never throws and never blocks
  // past the watchdog: whatever the workers do, every candidate gets an
  // outcome. Not reentrant; one Run at a time.
  std::vector<WorkerOutcome> Run(const std::vector<int>& work);

  // Workers killed and respawned after a crash, garbled frame, or missed
  // deadline. Initial spawns do not count.
  int64_t restarts() const { return restarts_; }

 private:
  struct Slot {
    ChildProcess proc;
    bool busy = false;
    int item = -1;      // position in `work` currently in flight
    int attempt = 0;
    int64_t deadline_abs_ms = 0;  // 0: no watchdog armed
  };

  int ChildMain(int request_fd, int reply_fd);
  Status Spawn(Slot* slot);
  void Respawn(Slot* slot);  // kill + spawn, counting the restart

  IsolateOptions options_;
  const RetryPolicy& retry_;
  const FaultInjector* injector_;
  const std::vector<uint64_t>& sites_;
  EvalFn eval_;
  const std::vector<int>* work_ = nullptr;  // valid during Run (children fork then)
  std::vector<Slot> slots_;
  int64_t restarts_ = 0;
};

}  // namespace alt::autotune

#endif  // ALT_AUTOTUNE_WORKER_POOL_H_

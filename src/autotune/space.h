// Search spaces (paper §5.1).
//
// Points are vectors in [0,1)^k — the representation PPO actors emit (Eq. (2)
// maps an action in (0,1) to a split factor) and random explorers sample.
// Decoding is sequential and dependency-aware: each coordinate selects from
// the divisor set that remains valid given the previous choices.

#ifndef ALT_AUTOTUNE_SPACE_H_
#define ALT_AUTOTUNE_SPACE_H_

#include <string>
#include <vector>

#include "src/autotune/layout_templates.h"
#include "src/graph/graph.h"
#include "src/loop/lowering.h"
#include "src/loop/schedule.h"
#include "src/sim/machine.h"
#include "src/support/rng.h"

namespace alt::autotune {

using Point = std::vector<double>;

inline int PickIndex(double coord, int n) {
  int idx = static_cast<int>(coord * n);
  return idx < 0 ? 0 : (idx >= n ? n - 1 : idx);
}

// ---------------------------------------------------------------------------
// Layout space for one complex operator.
// ---------------------------------------------------------------------------

struct DecodedLayouts {
  layout::LayoutSeq output;  // GMM: C
  layout::LayoutSeq input;   // GMM: A
  layout::LayoutSeq weight;  // GMM: B
  // RL state (§5.2.1): concatenated relation-canonical states of all three
  // sequences (see RelationState below).
  std::vector<double> state;
  std::string desc;
};

// RL state of a decoded candidate: the concatenated
// layout::LayoutRelation::CanonicalState() of output/input/weight over the
// op's tensor shapes, so two primitive spellings of the same physical layout
// feed the agent identical states. Falls back to the legacy order-sensitive
// LayoutSeq::StateVector() for a sequence whose relation is inapplicable to
// its shape.
std::vector<double> RelationState(const graph::Graph& graph, const graph::Op& op,
                                  const DecodedLayouts& d);

// Semantic identity key of the candidate's layout triple: the three relation
// fingerprints joined, or "" when any relation fails to build. Equal keys
// denote the same physical layouts, so the tuner shares one evaluation among
// all spellings (layout.relation_dedup).
std::string RelationKey(const graph::Graph& graph, const graph::Op& op,
                        const DecodedLayouts& d);

class LayoutSpace {
 public:
  static StatusOr<LayoutSpace> ForOp(const graph::Graph& graph, int op_id, bool two_level);

  int num_knobs() const { return static_cast<int>(knob_divisors_.size()); }
  // Log-scale size estimate of the layout space (for reporting).
  double NumPoints() const;

  StatusOr<DecodedLayouts> Decode(const graph::Graph& graph, const Point& point) const;

 private:
  int op_id_ = -1;
  bool is_gmm_ = false;
  bool two_level_ = false;
  int spatial_dims_ = 0;
  // Divisor choices per knob, in decode order.
  std::vector<std::vector<int64_t>> knob_divisors_;
};

// ---------------------------------------------------------------------------
// Loop space for one fused group.
// ---------------------------------------------------------------------------

class LoopSpace {
 public:
  // `restricted` models the AutoTVM-style small template space (fewer knobs:
  // no mid level, no rotation).
  static LoopSpace ForSignature(const loop::LoopNestSignature& sig,
                                const sim::Machine& machine, bool restricted = false);

  int num_knobs() const { return num_knobs_; }
  double NumPoints() const;

  loop::LoopSchedule Decode(const Point& point) const;

  // Heuristic non-tuned schedule (vendor baseline, untuned groups).
  static loop::LoopSchedule Default(const loop::LoopNestSignature& sig,
                                    const sim::Machine& machine);

 private:
  loop::LoopNestSignature sig_;
  int lanes_ = 1;
  bool restricted_ = false;
  int num_knobs_ = 0;
};

// Uniformly random point of dimension `dim`.
Point RandomPoint(int dim, Rng& rng);
// Random-walk neighbour: perturbs one coordinate.
Point NeighbourPoint(const Point& p, Rng& rng);

}  // namespace alt::autotune

#endif  // ALT_AUTOTUNE_SPACE_H_

#include "src/autotune/tuner.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "src/graph/networks.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"
#include "src/support/trace.h"

namespace alt::autotune {

using graph::Graph;
using graph::LayoutAssignment;
using graph::Op;
using graph::OpKind;
using loop::FusedGroup;
using loop::LoopSchedule;

namespace {

MeasureEngineConfig EngineConfig(const TuningOptions& options) {
  MeasureEngineConfig c;
  c.threads = options.measure_threads;
  c.cache_enabled = options.measure_cache;
  c.faults = options.fault_injection;
  c.retry = options.measure_retry;
  c.replay = options.measure_replay;
  c.isolate.enabled = options.isolate_measurement;
  c.isolate.workers = options.measure_workers;
  c.isolate.deadline_ms = options.measure_deadline_ms;
  c.isolate.faults = options.worker_faults;
  c.database = options.measure_database;
  if (options.event_sink != nullptr) {
    TuningEventSink* sink = options.event_sink;
    c.on_measured = [sink](const std::string& key, const MeasureResult& result) {
      sink->OnMeasured(key, result);
    };
  }
  return c;
}

// Owns the tracing session of one Tune() run when trace_path is set: starts
// the global recorder on construction, stops it and writes the Chrome trace
// on destruction — error returns included. A failed write only costs the
// trace, never the tuning result.
class TraceSessionGuard {
 public:
  explicit TraceSessionGuard(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) {
      TraceRecorder::Global().Start();
    }
  }
  ~TraceSessionGuard() {
    if (path_.empty()) {
      return;
    }
    Status s = TraceRecorder::Global().StopAndWriteChromeTrace(path_);
    if (!s.ok()) {
      ALT_LOG(Warning) << "failed to write tuning trace " << path_ << ": " << s.message();
    } else {
      ALT_LOG(Info) << "wrote tuning trace to " << path_;
    }
  }

  TraceSessionGuard(const TraceSessionGuard&) = delete;
  TraceSessionGuard& operator=(const TraceSessionGuard&) = delete;

 private:
  std::string path_;
};

}  // namespace

JointTuner::JointTuner(const Graph& graph, const sim::Machine& machine, TuningOptions options)
    : graph_(graph),
      machine_(machine),
      options_(options),
      engine_(machine, EngineConfig(options)),
      rng_(options.seed) {
  if (options_.tune_layout && options_.method != SearchMethod::kRandom) {
    PpoOptions ppo;
    layout_agent_ = std::make_unique<PpoAgent>(ppo, rng_);
    if (options_.method == SearchMethod::kPpoPretrained &&
        options_.pretrained_agent != nullptr && !options_.pretrained_agent->empty()) {
      layout_agent_->Restore(*options_.pretrained_agent);
    }
  }
}

void JointTuner::RecordMeasurement(double latency_us, bool complex_group) {
  ++measurements_;
  // The tuning curve tracks the best latency found for complex-operator
  // groups (simple groups like padding would otherwise pollute the minimum).
  if (complex_group) {
    best_total_us_ = std::min(best_total_us_, latency_us);
  }
  // Until the first successful complex-group measurement there is no best to
  // chart; appending would leak the kNoBest sentinel into history_us. The
  // curve simply starts at the first complex success.
  if (has_best()) {
    history_us_.push_back(best_total_us_);
  }
}

void JointTuner::BeginPhase(const char* phase) {
  TraceInstant("tuner.phase", phase);
  if (options_.event_sink != nullptr) {
    options_.event_sink->OnPhase(phase);
  }
}

MeasureResult JointTuner::MeasureGroup(const Graph& g, const LayoutAssignment& la,
                                       const FusedGroup& group, const LoopSchedule& sched) {
  return engine_.MeasureOne(g, la, group, sched);
}

std::vector<double> JointTuner::Features(const loop::LoopNestSignature& sig,
                                         const LoopSchedule& sched,
                                         const std::vector<double>& layout_state) const {
  std::vector<double> f;
  auto lg = [](double v) { return std::log1p(v); };
  double flops = 1.0;
  for (int64_t e : sig.spatial_extents) {
    flops *= static_cast<double>(e);
  }
  for (int64_t e : sig.reduction_extents) {
    flops *= static_cast<double>(e);
  }
  f.push_back(lg(flops));
  for (size_t j = 0; j < sched.spatial.size() && j < 7; ++j) {
    f.push_back(lg(sched.spatial[j].outer));
    f.push_back(lg(sched.spatial[j].mid));
    f.push_back(lg(sched.spatial[j].inner));
    f.push_back(lg(sched.spatial[j].vec));
  }
  for (size_t r = 0; r < sched.reduction.size() && r < 4; ++r) {
    f.push_back(lg(sched.reduction[r].outer));
    f.push_back(lg(sched.reduction[r].inner));
  }
  f.push_back(sched.parallel_axes);
  f.push_back(sched.inner_order_rotation);
  f.push_back(sched.unroll_inner_reduction ? 1.0 : 0.0);
  for (size_t i = 0; i < layout_state.size() && i < 12; ++i) {
    f.push_back(lg(std::abs(layout_state[i])));
  }
  f.resize(56, 0.0);
  return f;
}

void JointTuner::LoopTuneBatch(const Graph& g, const LayoutAssignment& la,
                               const FusedGroup& group,
                               const std::vector<double>& layout_state, LoopTuneState& state,
                               Rng& rng) {
  TraceSpan span("tuner.loop_batch");
  static Counter& batches = MetricsRegistry::Global().counter("tuner.loop_batches");
  batches.Add();
  auto sig_or = loop::GroupSignature(g, la, group);
  if (!sig_or.ok()) {
    return;
  }
  const auto& sig = *sig_or;

  // Sample a batch: random points plus random-walk neighbours of the best.
  std::vector<Point> batch;
  for (int i = 0; i < options_.batch_size; ++i) {
    if (!state.best_point.empty() && i % 2 == 1) {
      batch.push_back(NeighbourPoint(state.best_point, rng));
    } else {
      batch.push_back(RandomPoint(state.space.num_knobs(), rng));
    }
  }

  // Rank with the cost model; only the predicted top-k are measured.
  std::vector<std::pair<double, int>> ranked;
  for (int i = 0; i < static_cast<int>(batch.size()); ++i) {
    double score = 0.0;
    if (options_.use_cost_model && cost_model_.trained()) {
      score = cost_model_.Predict(Features(sig, state.space.Decode(batch[i]), layout_state));
    } else {
      score = rng.NextDouble();
    }
    ranked.push_back({score, i});
  }
  std::sort(ranked.begin(), ranked.end());
  int to_measure = options_.use_cost_model
                       ? std::min<int>(options_.top_k, ranked.size())
                       : static_cast<int>(ranked.size());

  // Lower + estimate the predicted top-k concurrently; the reduction below
  // walks results in rank order, so the trajectory (budget spend, cost-model
  // training set, best-so-far updates) is identical for any thread count.
  std::vector<LoopSchedule> scheds;
  scheds.reserve(to_measure);
  for (int r = 0; r < to_measure; ++r) {
    scheds.push_back(state.space.Decode(batch[ranked[r].second]));
  }
  auto results = engine_.Measure(g, la, group, scheds);
  const bool complex = graph::IsComplex(g.op(group.anchor_op).kind);
  for (int r = 0; r < to_measure; ++r) {
    const MeasureResult& res = results[r];
    if (!res.status.ok()) {
      continue;
    }
    if (!res.cache_hit) {
      // Cache hits are free: no budget spent, no duplicate training row.
      RecordMeasurement(res.latency_us, complex);
      train_x_.push_back(Features(sig, scheds[r], layout_state));
      train_y_.push_back(std::log1p(res.latency_us));
    }
    if (res.latency_us < state.best_latency) {
      state.best_latency = res.latency_us;
      state.best_point = batch[ranked[r].second];
      state.best_schedule = scheds[r];
    }
  }
  if (options_.use_cost_model && train_x_.size() >= 24 && train_x_.size() % 24 == 0) {
    cost_model_.Fit(train_x_, train_y_);
  }
  if (options_.event_sink != nullptr) {
    // "No result yet" is reported as NaN, never as the internal sentinel.
    options_.event_sink->OnBatchDone(
        measurements_,
        has_best() ? best_total_us_ : std::numeric_limits<double>::quiet_NaN());
  }
}

namespace {

// Applies a decoded layout candidate to a trial assignment. Returns the extra
// conversion cost in microseconds (approximated during search; a real
// conversion op is only inserted when the winner is committed).
double ApplyCandidate(const Graph& g, const Op& op, const DecodedLayouts& decoded,
                      bool multi_hop, InputLayoutPolicy policy, const sim::Machine& machine,
                      LayoutAssignment& la) {
  la.Set(op.inputs[1], decoded.weight);  // constants transform offline
  double penalty = 0.0;
  int in_id = op.inputs[0];
  int producer = g.ProducerOf(in_id);
  bool producer_complex = producer >= 0 && graph::IsComplex(g.op(producer).kind);
  // A simple sole-consumer producer can be re-lowered to emit any layout,
  // including overwriting one assigned during initialization.
  bool producer_writes = producer >= 0 && !producer_complex &&
                         g.op(producer).kind != OpKind::kLayoutConvert &&
                         g.ConsumersOf(in_id).size() == 1;
  if (producer_complex && policy == InputLayoutPolicy::kInheritProducer) {
    // ALT-FP: read whatever layout the producer already emits.
  } else if (producer_complex && policy == InputLayoutPolicy::kForceProducer) {
    la.Set(in_id, decoded.input);  // ALT-BP: override the producer's output
  } else if (g.IsConstant(in_id) || producer_writes) {
    la.Set(in_id, decoded.input);
  } else if (!graph::SameLayout(la.Get(in_id), decoded.input, g.tensor(in_id).shape)) {
    // Conversion operator cost: read + write of the physical tensor.
    auto phys = la.PhysicalShape(g, in_id);
    double bytes = 4.0;
    if (phys.ok()) {
      for (int64_t d : *phys) {
        bytes *= static_cast<double>(d);
      }
    }
    penalty = 2.0 * bytes / (machine.dram_bw_gbps * 1e3) + (machine.gpu_like ? 3.0 : 0.5);
    la.Set(in_id, decoded.input);  // trial: pretend converted
  }
  la.Set(op.output, decoded.output);
  if (multi_hop) {
    graph::PropagateOutputLayout(g, la, op.output, true, /*overwrite=*/true);
  }
  return penalty;
}

// Well-known layouts expressed inside the template space, assessed before RL
// exploration starts: the blocked NCHWc family (what NeoCPU/Ansor fix a
// priori) and the channels-last family. This guarantees the joint stage never
// does worse than the fixed-layout baselines it subsumes.
std::vector<DecodedLayouts> SeedLayouts(const Graph& g, const Op& op) {
  std::vector<DecodedLayouts> seeds;
  {
    DecodedLayouts canonical;  // empty sequences: NOHW / KN
    canonical.desc = "seed:canonical";
    seeds.push_back(std::move(canonical));
  }
  auto largest_divisor_leq = [](int64_t n, int64_t cap) {
    int64_t best = 1;
    for (int64_t d = 1; d <= std::min(n, cap); ++d) {
      if (n % d == 0) {
        best = d;
      }
    }
    return best;
  };
  auto finish = [&](StatusOr<ConvLayouts> layouts, const char* desc) {
    if (!layouts.ok()) {
      return;
    }
    DecodedLayouts d;
    d.output = layouts->output;
    d.input = layouts->input;
    d.weight = layouts->weight;
    d.state = RelationState(g, op, d);
    d.desc = desc;
    seeds.push_back(std::move(d));
  };
  if (op.kind == OpKind::kMatmul) {
    const auto& sa = g.tensor(op.inputs[0]).shape;
    const auto& sb = g.tensor(op.inputs[1]).shape;
    GmmLayoutParams params;
    params.mt = largest_divisor_leq(sa[0], 16);
    params.nt = largest_divisor_leq(sb[1], 16);
    params.kt = sa[1];
    auto layouts = MakeGmmTemplates(g, op, params);
    if (layouts.ok()) {
      DecodedLayouts d;
      d.output = layouts->c;
      d.input = layouts->a;
      d.weight = layouts->b;
      d.state = RelationState(g, op, d);
      d.desc = "seed:NKn16";
      seeds.push_back(std::move(d));
    }
    return seeds;
  }
  const auto& out_shape = g.tensor(op.output).shape;
  const auto& in_shape = g.tensor(op.inputs[0]).shape;
  const auto& w_shape = g.tensor(op.inputs[1]).shape;
  int sd = op.conv.spatial_dims;
  ConvLayoutParams blocked;
  for (int d = 0; d < sd; ++d) {
    blocked.spatial_tiles.push_back(out_shape[2 + d]);  // spatial untiled
  }
  blocked.out_tile = largest_divisor_leq(out_shape[1], 16);
  blocked.in_tile = largest_divisor_leq(in_shape[1], 16);
  blocked.w_in_tile = largest_divisor_leq(w_shape[1], 16);
  blocked.w_out_tile = largest_divisor_leq(w_shape[0], 16);
  finish(MakeConvTemplates(g, op, blocked), "seed:blocked16");

  ConvLayoutParams channels_last = blocked;
  channels_last.out_tile = out_shape[1];
  channels_last.in_tile = in_shape[1];
  channels_last.w_in_tile = w_shape[1];
  channels_last.w_out_tile = w_shape[0];
  finish(MakeConvTemplates(g, op, channels_last), "seed:channels_last");
  return seeds;
}

}  // namespace

StatusOr<std::optional<DecodedLayouts>> JointTuner::TuneOpLayout(int op_id,
                                                                 int op_budget) {
  TraceSpan span("tuner.tune_op_layout", "op=" + std::to_string(op_id));
  const Op& op = graph_.op(op_id);
  auto space_or = LayoutSpace::ForOp(graph_, op_id, options_.two_level_templates);
  if (!space_or.ok()) {
    return space_or.status();
  }
  const LayoutSpace& space = *space_or;

  double best_reward = -1e30;
  std::optional<DecodedLayouts> best_layouts;
  std::vector<double> agent_state;  // starts canonical (all zeros)

  // Briefly loop-tunes `group` under `la`, seeding with the heuristic
  // default schedule so a layout's reward reflects a competent loop nest.
  // The batch draws come from a generator seeded per candidate (from its
  // relation fingerprint), so the assessment is a deterministic function of
  // the layout relation rather than of the shared tuner RNG's position.
  auto assess = [&](const LayoutAssignment& la, const FusedGroup& group,
                    const std::vector<double>& layout_state, uint64_t candidate_seed,
                    std::optional<LoopSchedule>* schedule_out) -> double {
    auto sig = loop::GroupSignature(graph_, la, group);
    if (!sig.ok()) {
      return -1.0;
    }
    LoopTuneState loop_state;
    loop_state.space = LoopSpace::ForSignature(*sig, machine_, options_.restricted_loop_space);
    LoopSchedule def = LoopSpace::Default(*sig, machine_);
    MeasureResult def_res = MeasureGroup(graph_, la, group, def);
    if (def_res.status.ok()) {
      if (!def_res.cache_hit) {
        RecordMeasurement(def_res.latency_us, true);
      }
      loop_state.best_schedule = def;
      loop_state.best_latency = def_res.latency_us;
    }
    Rng candidate_rng(candidate_seed);
    for (int round = 0; round < options_.loop_rounds_per_layout; ++round) {
      LoopTuneBatch(graph_, la, group, layout_state, loop_state, candidate_rng);
    }
    if (schedule_out != nullptr) {
      *schedule_out = loop_state.best_schedule;
    }
    return loop_state.best_schedule.has_value() ? loop_state.best_latency : -1.0;
  };

  // Holds the best schedule found for the most recently evaluated candidate.
  std::optional<LoopSchedule> last_schedule_storage;
  std::optional<LoopSchedule>* last_schedule_ = &last_schedule_storage;

  // Evaluates a fully-decoded layout candidate: apply to a trial assignment,
  // rebuild the loop nest, loop-tune briefly, return latency (or -1).
  auto evaluate_candidate = [&](const DecodedLayouts& decoded,
                                uint64_t candidate_seed) -> double {
    LayoutAssignment trial = assignment_;
    double penalty = ApplyCandidate(graph_, op, decoded, options_.propagate_multi_hop,
                                    options_.input_policy, machine_, trial);
    auto groups = loop::PartitionGraph(graph_, trial, true);
    const FusedGroup* target = nullptr;
    for (const auto& grp : groups) {
      if (grp.anchor_op == op_id) {
        target = &grp;
      }
    }
    if (target == nullptr) {
      return -1.0;
    }
    double tuned = assess(trial, *target, decoded.state, candidate_seed, last_schedule_);
    return tuned < 0 ? -1.0 : tuned + penalty;
  };

  // Semantic dedup (layout/relation.h): candidates whose layout triples have
  // equal relation fingerprints denote the same physical layouts, so every
  // spelling after the first replays the recorded evaluation (latency,
  // schedule, and failure alike) and spends no measurement budget.
  struct CachedEval {
    double latency = -1.0;
    std::optional<LoopSchedule> schedule;
  };
  std::unordered_map<std::string, CachedEval> relation_cache;
  static Counter& enumerated =
      MetricsRegistry::Global().counter("layout.candidates_enumerated");
  static Counter& deduped = MetricsRegistry::Global().counter("layout.relation_dedup");

  auto evaluate_dedup = [&](const DecodedLayouts& decoded) -> double {
    enumerated.Add();
    // The key always exists when the relations are constructible: it both
    // addresses the replay cache and seeds the candidate's loop-tuning RNG,
    // so dedup on/off cannot change which schedules a candidate explores.
    std::string key = RelationKey(graph_, op, decoded);
    if (options_.layout_relation_dedup && !key.empty()) {
      auto it = relation_cache.find(key);
      if (it != relation_cache.end()) {
        deduped.Add();
        *last_schedule_ = it->second.schedule;
        return it->second.latency;
      }
    }
    uint64_t candidate_seed =
        options_.seed ^
        (std::hash<std::string>{}(key.empty() ? decoded.desc : key) | 1ull);
    double latency = evaluate_candidate(decoded, candidate_seed);
    if (!key.empty()) {
      relation_cache.emplace(std::move(key), CachedEval{latency, *last_schedule_});
    }
    return latency;
  };

  auto consider = [&](const DecodedLayouts& decoded, double latency) {
    double reward = -std::log1p(latency);  // Eq. (3) with U = 0, log-scaled
    if (reward > best_reward) {
      best_reward = reward;
      best_layouts = decoded;
      agent_state = decoded.state;
      if (last_schedule_ != nullptr && last_schedule_->has_value()) {
        joint_best_schedules_[op_id] = **last_schedule_;
      }
    }
    return reward;
  };

  int spent_start = measurements_;
  int failed_attempts = 0;
  // With the measurement cache on, an agent that keeps re-proposing already-
  // cached layouts spends no budget; the streak counter keeps that from
  // spinning forever. (Cache off: every successful evaluation spends budget,
  // so the streak never grows and historical behavior is unchanged.)
  int zero_spend_streak = 0;

  // Known-good template instances first (see SeedLayouts).
  for (const auto& seed :
       options_.seed_layout_candidates ? SeedLayouts(graph_, op)
                                       : std::vector<DecodedLayouts>{}) {
    if (measurements_ - spent_start >= op_budget) {
      break;
    }
    double latency = evaluate_dedup(seed);
    if (latency > 0) {
      consider(seed, latency);
    }
  }

  while (measurements_ - spent_start < op_budget && failed_attempts < 4 * op_budget + 32 &&
         zero_spend_streak < 64) {
    int spent_before = measurements_;
    Point point;
    if (layout_agent_ != nullptr) {
      auto action = layout_agent_->Act(agent_state);
      point.assign(action.begin(), action.begin() + std::min<size_t>(action.size(),
                                                                     space.num_knobs()));
      point.resize(space.num_knobs(), 0.5);
    } else {
      point = RandomPoint(space.num_knobs(), rng_);
    }
    auto decoded = space.Decode(graph_, point);
    if (!decoded.ok()) {
      ++failed_attempts;
      if (layout_agent_ != nullptr) {
        layout_agent_->Reward(-10.0);
      }
      continue;
    }
    double latency = evaluate_dedup(*decoded);
    if (latency < 0) {
      ++failed_attempts;
      if (layout_agent_ != nullptr) {
        layout_agent_->Reward(-10.0);
      }
      continue;
    }
    double reward = consider(*decoded, latency);
    if (layout_agent_ != nullptr) {
      layout_agent_->Reward(reward);
    }
    zero_spend_streak = measurements_ == spent_before ? zero_spend_streak + 1 : 0;
  }

  return best_layouts;
}

void JointTuner::CommitLayouts(int op_id, const DecodedLayouts& layouts) {
  // Commit: weight offline, input via the real propagation machinery (may
  // insert a conversion op), output propagated per variant. Cache ids first:
  // RequestInputLayout can append ops, invalidating references into ops_.
  int weight_id = graph_.op(op_id).inputs[1];
  int in_id = graph_.op(op_id).inputs[0];
  int out_id = graph_.op(op_id).output;
  assignment_.Set(weight_id, layouts.weight);
  int producer = graph_.ProducerOf(in_id);
  bool producer_complex = producer >= 0 && graph::IsComplex(graph_.op(producer).kind);
  if (producer_complex && options_.input_policy == InputLayoutPolicy::kInheritProducer) {
    // ALT-FP: no request; the consumer reads the producer's layout.
  } else if (producer_complex && options_.input_policy == InputLayoutPolicy::kForceProducer) {
    assignment_.Set(in_id, layouts.input);  // ALT-BP override
  } else {
    graph::RequestInputLayout(graph_, assignment_, op_id, 0, layouts.input);
  }
  assignment_.Set(out_id, layouts.output);
  graph::PropagateOutputLayout(graph_, assignment_, out_id, options_.propagate_multi_hop,
                               /*overwrite=*/true);
  if (options_.event_sink != nullptr) {
    auto sched_it = joint_best_schedules_.find(op_id);
    options_.event_sink->OnLayoutCommitted(
        op_id, layouts,
        sched_it == joint_best_schedules_.end() ? nullptr : &sched_it->second);
  }
}

StatusOr<CompiledNetwork> JointTuner::Tune() {
  // Session-scoped telemetry: the trace guard owns the recorder (and writes
  // the file on any exit path); the metrics snapshot anchors the per-run
  // delta attached to the result.
  TraceSessionGuard trace_session(options_.trace_path);
  const MetricsSnapshot metrics_start = MetricsRegistry::Global().Snapshot();
  TraceSpan tune_span("tuner.tune");

  if (!options_.tune_layout && options_.initial_assignment != nullptr) {
    assignment_ = *options_.initial_assignment;
  }
  // Initialize every conv with the fixed layout family. For loop-only
  // baselines (ALT-OL / Ansor) these layouts are final; for full ALT they are
  // the starting point the joint stage improves on — ALT's template space is
  // a superset of them, so ALT never starts worse than ALT-OL.
  if (options_.initial_assignment == nullptr &&
      options_.fixed_layout != FixedLayout::kCanonical) {
    for (int op_id : graph_.ComplexOps()) {
      // Cache what we need: RequestInputLayout below can append ops and
      // invalidate references into the op vector.
      const Op op = graph_.op(op_id);
      if (op.kind == OpKind::kMatmul) {
        continue;  // KN default
      }
      int sd = op.conv.spatial_dims;
      layout::LayoutSeq out_seq;
      layout::LayoutSeq in_seq;
      if (options_.fixed_layout == FixedLayout::kChannelsLast) {
        out_seq = ChannelsLast(sd);
        in_seq = ChannelsLast(sd);
      } else {
        auto blocked_out = BlockedChannels(graph_.tensor(op.output).shape,
                                           std::min<int64_t>(16, graph_.tensor(op.output)
                                                                     .shape[1]));
        auto blocked_in = BlockedChannels(graph_.tensor(op.inputs[0]).shape,
                                          std::min<int64_t>(16, graph_.tensor(op.inputs[0])
                                                                    .shape[1]));
        if (!blocked_out.ok() || !blocked_in.ok()) {
          continue;
        }
        out_seq = *blocked_out;
        in_seq = *blocked_in;
      }
      assignment_.Set(op.output, out_seq);
      graph::RequestInputLayout(graph_, assignment_, op_id, 0, in_seq);
      graph::PropagateOutputLayout(graph_, assignment_, op.output, true);
    }
  }

  // --- joint stage ---
  BeginPhase("joint");
  if (options_.tune_layout) {
    TraceSpan joint_span("tuner.joint_stage");
    auto complex_ops = graph_.ComplexOps();
    if (options_.reverse_op_order) {
      std::reverse(complex_ops.begin(), complex_ops.end());
    }
    // Deduplicate ops by workload signature: operators with identical shapes
    // and attributes share one tuning task (our stand-in for the paper's much
    // larger per-op budgets), and the winning layouts apply to every member.
    std::vector<std::pair<std::string, std::vector<int>>> classes;
    for (int op_id : complex_ops) {
      const Op& op = graph_.op(op_id);
      std::ostringstream key;
      key << static_cast<int>(op.kind) << "|"
          << ir::ShapeToString(graph_.tensor(op.inputs[0]).shape) << "|"
          << ir::ShapeToString(graph_.tensor(op.inputs[1]).shape) << "|" << op.conv.groups
          << "|" << op.conv.stride[0] << "|" << op.conv.dilation[0];
      bool found = false;
      for (auto& [k, members] : classes) {
        if (k == key.str()) {
          members.push_back(op_id);
          found = true;
        }
      }
      if (!found) {
        classes.push_back({key.str(), {op_id}});
      }
    }
    int joint_budget = static_cast<int>(options_.total_budget * options_.joint_fraction);
    if (!classes.empty() && joint_budget > 0) {
      int per_class = std::max(joint_budget / static_cast<int>(classes.size()),
                               3 * (options_.top_k + 1));
      for (const auto& [key, members] : classes) {
        if (measurements_ >= joint_budget) {
          break;
        }
        auto best = TuneOpLayout(members[0],
                                 std::min(per_class, joint_budget - measurements_));
        if (!best.ok()) {
          return best.status();
        }
        if (!best->has_value()) {
          continue;
        }
        auto rep_schedule = joint_best_schedules_.find(members[0]);
        for (int member : members) {
          CommitLayouts(member, **best);
          if (member != members[0] && rep_schedule != joint_best_schedules_.end()) {
            joint_best_schedules_[member] = rep_schedule->second;
          }
        }
      }
    }
  }

  // --- loop-only stage ---
  BeginPhase("loop");
  std::optional<TraceSpan> loop_span;
  loop_span.emplace("tuner.loop_stage");
  auto groups = loop::PartitionGraph(graph_, assignment_, true);
  std::vector<LoopTuneState> states(groups.size());
  std::vector<loop::LoopNestSignature> sigs(groups.size());
  std::vector<bool> tunable(groups.size(), false);
  std::vector<double> weight(groups.size(), 0.0);

  for (size_t i = 0; i < groups.size(); ++i) {
    const Op& anchor = graph_.op(groups[i].anchor_op);
    auto sig = loop::GroupSignature(graph_, assignment_, groups[i]);
    if (!sig.ok()) {
      continue;
    }
    sigs[i] = *sig;
    if (anchor.kind == OpKind::kSoftmax || anchor.kind == OpKind::kLayerNorm) {
      continue;  // fixed lowering
    }
    tunable[i] = true;
    states[i].space =
        LoopSpace::ForSignature(sigs[i], machine_, options_.restricted_loop_space);
    // Seed with the heuristic default and, for complex groups, the best
    // schedule the joint stage found for the committed layout.
    LoopSchedule def = LoopSpace::Default(sigs[i], machine_);
    MeasureResult def_res = MeasureGroup(graph_, assignment_, groups[i], def);
    if (def_res.status.ok()) {
      if (!def_res.cache_hit) {
        RecordMeasurement(def_res.latency_us, graph::IsComplex(anchor.kind));
      }
      states[i].best_schedule = def;
      states[i].best_latency = def_res.latency_us;
      weight[i] = def_res.latency_us;
    }
    auto joint_it = joint_best_schedules_.find(groups[i].anchor_op);
    if (joint_it != joint_best_schedules_.end()) {
      MeasureResult jres = MeasureGroup(graph_, assignment_, groups[i], joint_it->second);
      if (jres.status.ok()) {
        if (!jres.cache_hit) {
          RecordMeasurement(jres.latency_us, true);
        }
        if (jres.latency_us < states[i].best_latency) {
          states[i].best_schedule = joint_it->second;
          states[i].best_latency = jres.latency_us;
          weight[i] = jres.latency_us;
        }
      }
    }
  }

  double total_weight = 0.0;
  for (double w : weight) {
    total_weight += w;
  }
  int remaining = options_.total_budget - measurements_;
  if (remaining > 0 && total_weight > 0) {
    for (size_t i = 0; i < groups.size(); ++i) {
      if (!tunable[i]) {
        continue;
      }
      int share = static_cast<int>(remaining * weight[i] / total_weight);
      int spent_start = measurements_;
      int stalls = 0;
      while (measurements_ - spent_start < share && stalls < 16) {
        int before = measurements_;
        LoopTuneBatch(graph_, assignment_, groups[i], {}, states[i], rng_);
        stalls = measurements_ == before ? stalls + 1 : 0;
      }
    }
  }

  loop_span.reset();

  // --- final lowering ---
  BeginPhase("lower");
  TraceSpan lowering_span("tuner.lowering");
  CompiledNetwork result;
  result.graph = graph_;
  result.assignment = assignment_;
  result.groups = groups;
  for (size_t i = 0; i < groups.size(); ++i) {
    StatusOr<ir::Program> program = Status::Ok();
    if (tunable[i] && states[i].best_schedule.has_value()) {
      result.schedules.push_back(*states[i].best_schedule);
      program = loop::LowerGroup(graph_, assignment_, groups[i], *states[i].best_schedule);
    } else {
      result.schedules.push_back(
          LoopSchedule::Naive(sigs[i].spatial_extents, sigs[i].reduction_extents));
      program = loop::LowerGroupNaive(graph_, assignment_, groups[i]);
    }
    if (!program.ok()) {
      return program.status();
    }
    result.programs.push_back(std::move(*program));
  }
  result.perf = sim::EstimatePrograms(result.programs, machine_);
  result.measurements_used = measurements_;
  result.history_us = history_us_;
  result.measure_stats = engine_.stats();
  result.metrics = MetricsRegistry::Global().Snapshot().DeltaSince(metrics_start);
  const MeasureStats& ms = result.measure_stats;
  ALT_LOG(Info) << "measure engine: " << ms.requested << " candidates, " << ms.measured
                << " measured, " << ms.cache_hits << " cache hits, " << ms.replayed
                << " replayed, " << ms.db_hits << " db hits, " << ms.failed << " failed, "
                << ms.retries << " retries, " << ms.quarantined << " quarantined, "
                << ms.worker_restarts << " worker restarts, wall "
                << FormatMicros(ms.wall_ms * 1e3)
                << " (" << engine_.threads() << " thread(s), cache "
                << (engine_.cache_enabled() ? "on" : "off") << ")";
  return result;
}

std::vector<double> PretrainLayoutAgent(const sim::Machine& machine, uint64_t seed,
                                        int budget) {
  // Optimize a couple of C2D and GMM workloads with a fresh PPO agent (the
  // paper pretrains on C2D and GMM with recommended hyper-parameters, §6).
  Rng rng(seed);
  PpoOptions ppo;
  ppo.batch_before_update = 8;
  PpoAgent agent(ppo, rng);

  struct Workload {
    graph::Graph g;
    int op_id;
  };
  std::vector<Workload> workloads;
  {
    graph::ConvConfig cfg;
    cfg.in_channels = 16;
    cfg.out_channels = 32;
    cfg.spatial[0] = cfg.spatial[1] = 28;
    cfg.kernel[0] = cfg.kernel[1] = 3;
    cfg.pad = 0;
    graph::Graph g = graph::BuildSingleConv(graph::OpKind::kConv2d, cfg);
    workloads.push_back({std::move(g), 0});
  }
  {
    graph::Graph g = graph::BuildSingleMatmul(128, 64, 128);
    workloads.push_back({std::move(g), 0});
  }

  for (int step = 0; step < budget; ++step) {
    Workload& wl = workloads[step % workloads.size()];
    auto space = LayoutSpace::ForOp(wl.g, wl.op_id, false);
    if (!space.ok()) {
      continue;
    }
    auto action = agent.Act({});
    Point point(action.begin(), action.begin() + std::min<size_t>(action.size(),
                                                                  space->num_knobs()));
    point.resize(space->num_knobs(), 0.5);
    auto decoded = space->Decode(wl.g, point);
    if (!decoded.ok()) {
      agent.Reward(-10.0);
      continue;
    }
    graph::LayoutAssignment la;
    const Op& op = wl.g.op(wl.op_id);
    la.Set(op.output, decoded->output);
    la.Set(op.inputs[0], decoded->input);
    la.Set(op.inputs[1], decoded->weight);
    auto groups = loop::PartitionGraph(wl.g, la, true);
    auto sig = loop::GroupSignature(wl.g, la, groups[0]);
    if (!sig.ok()) {
      agent.Reward(-10.0);
      continue;
    }
    auto sched = LoopSpace::Default(*sig, machine);
    auto program = loop::LowerGroup(wl.g, la, groups[0], sched);
    if (!program.ok()) {
      agent.Reward(-10.0);
      continue;
    }
    double latency = sim::EstimateProgram(*program, machine).latency_us;
    agent.Reward(-std::log1p(latency));
  }
  return agent.Snapshot();
}

}  // namespace alt::autotune

#include "src/autotune/layout_templates.h"

#include <numeric>

namespace alt::autotune {

using layout::LayoutSeq;
using layout::Primitive;

namespace {

Status CheckDivides(int64_t factor, int64_t extent, const char* what) {
  if (factor <= 0 || extent % factor != 0) {
    return Status::InvalidArgument(std::string(what) + " tile does not divide extent");
  }
  return Status::Ok();
}

}  // namespace

StatusOr<ConvLayouts> MakeConvTemplates(const graph::Graph& graph, const graph::Op& op,
                                        const ConvLayoutParams& params) {
  const auto& attrs = op.conv;
  int sd = attrs.spatial_dims;
  const auto& out_shape = graph.tensor(op.output).shape;
  const auto& in_shape = graph.tensor(op.inputs[0]).shape;
  const auto& w_shape = graph.tensor(op.inputs[1]).shape;
  if (static_cast<int>(params.spatial_tiles.size()) != sd) {
    return Status::InvalidArgument("spatial tile count mismatch");
  }

  ConvLayouts layouts;

  // ---- output: N  S1/t1 ... Sd/td  O/ot  t1 ... td  ot  (optionally two-level
  // on ot) ----
  int64_t out_channels = out_shape[1];
  for (int d = 0; d < sd; ++d) {
    ALT_RETURN_IF_ERROR(CheckDivides(params.spatial_tiles[d], out_shape[2 + d], "spatial"));
  }
  ALT_RETURN_IF_ERROR(CheckDivides(params.out_tile * params.out_tile2, out_channels, "out ch"));
  {
    LayoutSeq seq;
    // Split spatial dims from the last to keep indices stable.
    for (int d = sd - 1; d >= 0; --d) {
      int64_t extent = out_shape[2 + d];
      int64_t t = params.spatial_tiles[d];
      if (t < extent) {
        seq.Append(Primitive::Split(2 + d, {extent / t, t}));
      }
    }
    // With every spatial dim split the channel dim is still at index 1.
    int64_t ot_total = params.out_tile * params.out_tile2;
    int o_parts = 1;
    if (params.out_tile2 > 1) {
      seq.Append(
          Primitive::Split(1, {out_channels / ot_total, params.out_tile2, params.out_tile}));
      o_parts = 3;
    } else if (ot_total < out_channels) {
      seq.Append(Primitive::Split(1, {out_channels / ot_total, params.out_tile}));
      o_parts = 2;
    }
    // Assemble the permutation over the current dim list.
    // Current order: N, O-parts..., then per spatial dim its parts...
    int pos = 1;
    std::vector<int> o_dims(o_parts);
    for (int i = 0; i < o_parts; ++i) {
      o_dims[i] = pos++;
    }
    std::vector<std::pair<int, int>> s_dims;  // (outer, inner) or (single,-1)
    for (int d = 0; d < sd; ++d) {
      if (params.spatial_tiles[d] < out_shape[2 + d]) {
        int a = pos++;
        int b = pos++;
        s_dims.push_back({a, b});
      } else {
        s_dims.push_back({pos++, -1});
      }
    }
    // Desired: N, spatial outers, O outer(s, all but last), spatial inners, O last.
    std::vector<int> perm{0};
    for (auto& sdims : s_dims) {
      perm.push_back(sdims.first);
    }
    for (int i = 0; i + 1 < o_parts; ++i) {
      perm.push_back(o_dims[i]);
    }
    // Two-level: the middle ot2 sits before the spatial inners.
    for (auto& sdims : s_dims) {
      if (sdims.second >= 0) {
        perm.push_back(sdims.second);
      }
    }
    perm.push_back(o_dims[o_parts - 1]);
    bool identity = true;
    for (size_t i = 0; i < perm.size(); ++i) {
      identity = identity && perm[i] == static_cast<int>(i);
    }
    if (!identity) {
      seq.Append(Primitive::Reorder(perm));
    }
    layouts.output = seq;
  }

  // ---- input: N  S1/t1.. I/it  B1.. it ----
  int64_t in_channels = in_shape[1];
  ALT_RETURN_IF_ERROR(CheckDivides(params.in_tile, in_channels, "in ch"));
  {
    LayoutSeq seq;
    std::vector<bool> unfolded(sd, false);
    for (int d = sd - 1; d >= 0; --d) {
      int64_t t = params.spatial_tiles[d];
      if (t >= out_shape[2 + d]) {
        continue;  // spatial dim untiled -> no unfold
      }
      int64_t window = attrs.dilation[d] * (w_shape[2 + d] - 1) + 1;
      int64_t tile = attrs.stride[d] * (t - 1) + window;
      int64_t stride = attrs.stride[d] * t;
      if (stride > tile || tile > in_shape[2 + d]) {
        continue;  // no overlap to exploit (e.g. 1x1 stride-2)
      }
      seq.Append(Primitive::Unfold(2 + d, tile, stride));
      unfolded[d] = true;
    }
    if (params.in_tile < in_channels) {
      seq.Append(Primitive::Split(1, {in_channels / params.in_tile, params.in_tile}));
    }
    // Current order: N, I-parts, then per spatial dim (tile, window) or single.
    int pos = 1;
    int i_parts = params.in_tile < in_channels ? 2 : 1;
    std::vector<int> i_dims(i_parts);
    for (int i = 0; i < i_parts; ++i) {
      i_dims[i] = pos++;
    }
    std::vector<std::pair<int, int>> s_dims;
    for (int d = 0; d < sd; ++d) {
      if (unfolded[d]) {
        int a = pos++;
        int b = pos++;
        s_dims.push_back({a, b});
      } else {
        s_dims.push_back({pos++, -1});
      }
    }
    std::vector<int> perm{0};
    for (auto& sdims : s_dims) {
      perm.push_back(sdims.first);
    }
    perm.push_back(i_dims[0]);
    for (auto& sdims : s_dims) {
      if (sdims.second >= 0) {
        perm.push_back(sdims.second);
      }
    }
    if (i_parts == 2) {
      perm.push_back(i_dims[1]);
    }
    bool identity = true;
    for (size_t i = 0; i < perm.size(); ++i) {
      identity = identity && perm[i] == static_cast<int>(i);
    }
    if (!identity) {
      seq.Append(Primitive::Reorder(perm));
    }
    layouts.input = seq;
  }

  // ---- weight: O/ot' I/it' K.. it' ot' ----
  // Canonical forward weight O, Ig, K..; transposed weight C, O/g, K..: tile
  // dim0/dim1 generically.
  int64_t w0 = w_shape[0];
  int64_t w1 = w_shape[1];
  ALT_RETURN_IF_ERROR(CheckDivides(params.w_out_tile, w0, "w dim0"));
  ALT_RETURN_IF_ERROR(CheckDivides(params.w_in_tile, w1, "w dim1"));
  {
    LayoutSeq seq;
    bool split1 = params.w_in_tile < w1;
    bool split0 = params.w_out_tile < w0;
    if (split1) {
      seq.Append(Primitive::Split(1, {w1 / params.w_in_tile, params.w_in_tile}));
    }
    if (split0) {
      seq.Append(Primitive::Split(0, {w0 / params.w_out_tile, params.w_out_tile}));
    }
    // Current: [O0, (ot')?, I0, (it')?, K...]
    std::vector<int> perm;
    int pos = 0;
    int o_outer = pos++;
    int o_inner = split0 ? pos++ : -1;
    int i_outer = pos++;
    int i_inner = split1 ? pos++ : -1;
    perm.push_back(o_outer);
    perm.push_back(i_outer);
    for (int d = 0; d < sd; ++d) {
      perm.push_back(pos++);
    }
    if (i_inner >= 0) {
      perm.push_back(i_inner);
    }
    if (o_inner >= 0) {
      perm.push_back(o_inner);
    }
    bool identity = true;
    for (size_t i = 0; i < perm.size(); ++i) {
      identity = identity && perm[i] == static_cast<int>(i);
    }
    if (!identity) {
      seq.Append(Primitive::Reorder(perm));
    }
    layouts.weight = seq;
  }
  return layouts;
}

StatusOr<GmmLayouts> MakeGmmTemplates(const graph::Graph& graph, const graph::Op& op,
                                      const GmmLayoutParams& params) {
  const auto& sa = graph.tensor(op.inputs[0]).shape;
  const auto& sb = graph.tensor(op.inputs[1]).shape;
  int64_t m = sa[0], k = sa[1], n = sb[1];
  ALT_RETURN_IF_ERROR(CheckDivides(params.mt, m, "mt"));
  ALT_RETURN_IF_ERROR(CheckDivides(params.nt, n, "nt"));
  ALT_RETURN_IF_ERROR(CheckDivides(params.kt, k, "kt"));

  auto tile2d = [](int64_t d0, int64_t t0, int64_t d1, int64_t t1) {
    LayoutSeq seq;
    bool s1 = t1 < d1;
    bool s0 = t0 < d0;
    if (s1) {
      seq.Append(Primitive::Split(1, {d1 / t1, t1}));
    }
    if (s0) {
      seq.Append(Primitive::Split(0, {d0 / t0, t0}));
    }
    if (s0 && s1) {
      seq.Append(Primitive::Reorder({0, 2, 1, 3}));
    } else if (s0 && !s1) {
      // [D0o, t0, D1] -> D0o D1 t0
      seq.Append(Primitive::Reorder({0, 2, 1}));
    }
    // (!s0 && s1): [D0, D1o, t1] already D0 D1o t1 — keep.
    return seq;
  };

  GmmLayouts layouts;
  layouts.c = tile2d(m, params.mt, n, params.nt);
  layouts.a = tile2d(m, params.mt, k, params.kt);
  layouts.b = tile2d(k, params.kt, n, params.nt);
  return layouts;
}

layout::LayoutSeq ChannelsLast(int spatial_dims) {
  // N,C,S... -> N,S...,C
  std::vector<int> perm{0};
  for (int d = 0; d < spatial_dims; ++d) {
    perm.push_back(2 + d);
  }
  perm.push_back(1);
  LayoutSeq seq;
  seq.Append(Primitive::Reorder(perm));
  return seq;
}

layout::LayoutSeq Hwon() {
  LayoutSeq seq;
  seq.Append(Primitive::Reorder({2, 3, 1, 0}));
  return seq;
}

StatusOr<layout::LayoutSeq> BlockedChannels(const std::vector<int64_t>& canonical_shape,
                                            int64_t ct) {
  int64_t channels = canonical_shape[1];
  ALT_RETURN_IF_ERROR(CheckDivides(ct, channels, "channel"));
  LayoutSeq seq;
  if (ct < channels) {
    seq.Append(Primitive::Split(1, {channels / ct, ct}));
    // N, C/ct, ct, S... -> N, C/ct, S..., ct
    int rank = static_cast<int>(canonical_shape.size()) + 1;
    std::vector<int> perm{0, 1};
    for (int d = 3; d < rank; ++d) {
      perm.push_back(d);
    }
    perm.push_back(2);
    seq.Append(Primitive::Reorder(perm));
  }
  return seq;
}

layout::LayoutSeq TransposedB() {
  LayoutSeq seq;
  seq.Append(Primitive::Reorder({1, 0}));
  return seq;
}

}  // namespace alt::autotune

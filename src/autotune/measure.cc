#include "src/autotune/measure.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>
#include <thread>

#include "src/ir/affine.h"
#include "src/ir/tensor.h"
#include "src/loop/serialization.h"
#include "src/support/crc32.h"
#include "src/support/metrics.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace alt::autotune {

namespace {

int ResolveThreads(int threads) {
  return threads > 0 ? threads : HardwareThreads();
}

void AppendOpKey(const graph::Graph& g, const graph::LayoutAssignment& la, int op_id,
                 std::ostringstream& oss) {
  const graph::Op& op = g.op(op_id);
  oss << "k" << static_cast<int>(op.kind);
  // Every attribute the lowering consults must be part of the key; a missed
  // attribute would alias distinct programs onto one cache entry.
  oss << ";c" << op.conv.spatial_dims << "," << op.conv.groups;
  for (int d = 0; d < 3; ++d) {
    oss << "," << op.conv.stride[d] << "," << op.conv.dilation[d] << "," << op.conv.pad[d]
        << "," << op.conv.output_pad[d];
  }
  oss << ";p" << op.pool.window[0] << "," << op.pool.window[1] << "," << op.pool.stride[0]
      << "," << op.pool.stride[1] << "," << op.pool.pad[0] << "," << op.pool.pad[1] << ","
      << (op.pool.global ? 1 : 0);
  oss << ";z";
  for (size_t d = 0; d < op.pad.before.size(); ++d) {
    oss << op.pad.before[d] << "/" << op.pad.after[d] << ",";
  }
  oss << ";s" << op.scalar << ";b" << op.bias_axis;
  for (int in : op.inputs) {
    oss << ";i" << ir::ShapeToString(g.tensor(in).shape) << "@"
        << loop::EncodeLayoutSeq(la.Get(in));
  }
  oss << ";o" << ir::ShapeToString(g.tensor(op.output).shape) << "@"
      << loop::EncodeLayoutSeq(la.Get(op.output));
}

// Adds the lifetime of the enclosing scope (in nanoseconds) to `*sink`; used
// to charge lower+estimate attempt time to cpu_ms without counting backoff
// sleeps, whatever exit path the attempt takes.
class NsAccumulator {
 public:
  explicit NsAccumulator(int64_t* sink) : sink_(sink), start_(TraceRecorder::NowNs()) {}
  ~NsAccumulator() { *sink_ += TraceRecorder::NowNs() - start_; }

 private:
  int64_t* sink_;
  int64_t start_;
};

}  // namespace

int RetryBackoffMs(const RetryPolicy& retry, int retry_number) {
  if (retry.backoff_base_ms <= 0) {
    return 0;
  }
  int64_t delay = static_cast<int64_t>(retry.backoff_base_ms);
  for (int i = 1; i < retry_number && delay < retry.backoff_cap_ms; ++i) {
    delay <<= 1;
  }
  return static_cast<int>(std::min<int64_t>(delay, retry.backoff_cap_ms));
}

std::string GroupCacheKey(const graph::Graph& graph,
                          const graph::LayoutAssignment& assignment,
                          const loop::FusedGroup& group) {
  std::ostringstream oss;
  AppendOpKey(graph, assignment, group.anchor_op, oss);
  for (int fused : group.fused_ops) {
    oss << "|";
    AppendOpKey(graph, assignment, fused, oss);
  }
  return oss.str();
}

MeasureEngine::MeasureEngine(const sim::Machine& machine, MeasureEngineConfig config)
    : machine_(machine),
      config_(std::move(config)),
      injector_(config_.faults),
      pool_(ResolveThreads(config_.threads)) {}

MeasureEngine::MeasureEngine(const sim::Machine& machine, int threads, bool cache_enabled)
    : MeasureEngine(machine, [&] {
        MeasureEngineConfig c;
        c.threads = threads;
        c.cache_enabled = cache_enabled;
        return c;
      }()) {}

int64_t MeasureEngine::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return static_cast<int64_t>(cache_.size());
}

int64_t MeasureEngine::quarantine_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return static_cast<int64_t>(quarantine_.size());
}

int64_t MeasureEngine::analysis_cache_size() const {
  std::lock_guard<std::mutex> lock(analysis_mu_);
  return static_cast<int64_t>(analysis_cache_.size());
}

bool MeasureEngine::keyed() const {
  return config_.cache_enabled || config_.replay != nullptr ||
         static_cast<bool>(config_.on_measured) || injector_.enabled() ||
         config_.database != nullptr || config_.isolate.enabled;
}

bool MeasureEngine::InsertQuarantine(const std::string& key) {
  if (!quarantine_.insert(key).second) {
    return false;
  }
  quarantine_order_.push_back(key);
  const int cap = config_.retry.max_quarantine;
  if (cap > 0) {
    while (static_cast<int>(quarantine_order_.size()) > cap) {
      quarantine_.erase(quarantine_order_.front());
      quarantine_order_.pop_front();
    }
  }
  return true;
}

std::vector<MeasureResult> MeasureEngine::Measure(
    const graph::Graph& graph, const graph::LayoutAssignment& assignment,
    const loop::FusedGroup& group, const std::vector<loop::LoopSchedule>& schedules) {
  auto start = std::chrono::steady_clock::now();
  TraceSpan batch_span("measure.batch");
  const MeasureStats stats_before = stats_;
  const int n = static_cast<int>(schedules.size());
  std::vector<MeasureResult> results(n);
  stats_.requested += n;

  // Resolve cache hits, quarantined keys, replayed measurements, and
  // intra-batch duplicates up front so only genuine misses reach the pool.
  // `measure_slot[i]` marks slots that need work; `alias_of[i]` points a
  // duplicate at the slot that measures its key.
  std::vector<std::string> keys(n);
  std::vector<uint64_t> sites(n, 0);
  std::vector<bool> measure_slot(n, true);
  std::vector<int> alias_of(n, -1);
  if (keyed()) {
    const std::string group_key = GroupCacheKey(graph, assignment, group);
    std::unordered_map<std::string, int> first_slot;
    std::lock_guard<std::mutex> lock(cache_mu_);
    for (int i = 0; i < n; ++i) {
      keys[i] = group_key + "#" + loop::EncodeSchedule(schedules[i]);
      sites[i] = Fnv1a64(keys[i]);
      if (config_.cache_enabled) {
        auto cached = cache_.find(keys[i]);
        if (cached != cache_.end()) {
          results[i].latency_us = cached->second;
          results[i].cache_hit = true;
          measure_slot[i] = false;
          continue;
        }
      }
      if (quarantine_.count(keys[i]) > 0) {
        results[i].status = Status::Unavailable("candidate quarantined");
        measure_slot[i] = false;
        continue;
      }
      if (config_.replay != nullptr) {
        auto replayed = config_.replay->ok.find(sites[i]);
        if (replayed != config_.replay->ok.end()) {
          results[i].latency_us = replayed->second;
          results[i].replayed = true;
          measure_slot[i] = false;
          // Cache the replayed latency so later occurrences of this key hit
          // the cache exactly as they did in the run that wrote the journal.
          if (config_.cache_enabled) {
            cache_.emplace(keys[i], replayed->second);
          }
          continue;
        }
        if (config_.replay->failed.count(sites[i]) > 0) {
          results[i].status = Status::Unavailable("replayed measurement failure");
          results[i].replayed = true;
          measure_slot[i] = false;
          InsertQuarantine(keys[i]);
          continue;
        }
      }
      if (config_.database != nullptr) {
        // Warm start: measurements persisted by previous runs. Consulted
        // after cache/quarantine/replay so in-run memoization and journal
        // resume keep priority; hits use replay semantics (cache_hit ==
        // false) so the warm run spends budget exactly as the cold run did.
        auto entry = config_.database->Lookup(sites[i]);
        if (entry.has_value()) {
          results[i].db_hit = true;
          measure_slot[i] = false;
          if (!entry->failed) {
            results[i].latency_us = entry->latency_us;
            if (config_.cache_enabled) {
              cache_.emplace(keys[i], entry->latency_us);
            }
          } else {
            results[i].status =
                Status::Unavailable("measurement failed in a previous run (tuning database)");
            InsertQuarantine(keys[i]);
          }
          continue;
        }
      }
      if (config_.cache_enabled) {
        auto [it, inserted] = first_slot.try_emplace(keys[i], i);
        if (!inserted) {
          alias_of[i] = it->second;
          measure_slot[i] = false;
        }
      }
    }
  }

  std::vector<int> work;
  for (int i = 0; i < n; ++i) {
    if (measure_slot[i]) {
      work.push_back(i);
    }
  }

  // Lower + estimate the misses concurrently, retrying transient (injected)
  // failures with capped backoff. Each task writes only its own slots —
  // result, retry/backoff tallies — so the reduction below is deterministic.
  // LowerGroup/EstimateProgram are pure; a deterministic failure (bad
  // schedule, lowering error) is never retried.
  const int w_count = static_cast<int>(work.size());
  std::vector<int> slot_retries(w_count, 0);
  std::vector<int> slot_injected(w_count, 0);
  std::vector<double> slot_backoff(w_count, 0.0);
  std::vector<int64_t> slot_cpu_ns(w_count, 0);
  std::vector<char> slot_done(w_count, 0);
  std::vector<char> slot_analysis_hit(w_count, 0);
  const int max_attempts = std::max(1, config_.retry.max_attempts);
  Histogram& queue_wait_hist = MetricsRegistry::Global().histogram("measure.queue_wait_us");
  Histogram& candidate_hist = MetricsRegistry::Global().histogram("measure.candidate_us");
  const int64_t submit_ns = TraceRecorder::NowNs();
  Status pool_status = Status::Ok();
  if (config_.isolate.enabled && w_count > 0) {
    // Out-of-process evaluation: a WorkerPool schedules the misses onto
    // forked worker subprocesses, handling retry/backoff/injected faults
    // itself with the same accounting as the loop below; the engine keeps
    // only the slot-ordered reduction. The analysis cache is skipped —
    // children cannot publish into the parent's cache — which changes
    // analysis_cache_hits but never a latency (EstimateProgram is pure).
    auto eval = [&](int i) -> WorkerEval {
      auto program = loop::LowerGroup(graph, assignment, group, schedules[i]);
      if (!program.ok()) {
        return {program.status(), 0.0};
      }
      return {Status::Ok(), sim::EstimateProgram(*program, machine_).latency_us};
    };
    WorkerPool workers(config_.isolate, config_.retry,
                       injector_.enabled() ? &injector_ : nullptr, sites, eval);
    std::vector<WorkerOutcome> outcomes = workers.Run(work);
    for (int w = 0; w < w_count; ++w) {
      const int i = work[w];
      const WorkerOutcome& o = outcomes[w];
      results[i].status = o.status;
      if (o.status.ok()) {
        results[i].latency_us = o.latency_us;
      }
      results[i].attempts = o.attempts;
      slot_retries[w] = o.retries;
      slot_injected[w] = o.injected;
      slot_backoff[w] = o.backoff_ms;
      slot_cpu_ns[w] = o.eval_ns;
      slot_done[w] = 1;
      candidate_hist.Observe(static_cast<double>(o.eval_ns) * 1e-3);
    }
    stats_.worker_restarts += workers.restarts();
  } else {
    pool_status = pool_.ParallelFor(w_count, [&](int w) {
      int i = work[w];
      // Time from batch submission until a pool thread picked this slot up.
      queue_wait_hist.Observe(static_cast<double>(TraceRecorder::NowNs() - submit_ns) *
                              1e-3);
      TraceSpan candidate_span("measure.candidate");
      for (int attempt = 0; attempt < max_attempts; ++attempt) {
        if (attempt > 0) {
          ++slot_retries[w];
          int delay = RetryBackoffMs(config_.retry, attempt);
          slot_backoff[w] += delay;
          if (delay > 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
          }
        }
        NsAccumulator attempt_timer(&slot_cpu_ns[w]);
        ++results[i].attempts;
        if (injector_.enabled() && injector_.ShouldFail(sites[i], attempt)) {
          ++slot_injected[w];
          results[i].status = Status::Unavailable("injected transient measurement fault");
          continue;  // transient: retry
        }
        try {
          auto program = loop::LowerGroup(graph, assignment, group, schedules[i]);
          if (!program.ok()) {
            results[i].status = program.status();  // deterministic: no retry
            break;
          }
          if (config_.analysis_cache) {
            // Structurally identical programs (e.g. schedules differing only
            // in omitted unit loops) analyze once; EstimateProgram is pure in
            // the structure + buffer shapes the key captures, so a hit
            // returns the exact latency a fresh analysis would.
            std::string akey = ir::ProgramStructureKey(*program);
            bool hit = false;
            double latency = 0.0;
            {
              std::lock_guard<std::mutex> lock(analysis_mu_);
              auto it = analysis_cache_.find(akey);
              if (it != analysis_cache_.end()) {
                hit = true;
                latency = it->second;
              }
            }
            if (hit) {
              slot_analysis_hit[w] = 1;
            } else {
              latency = sim::EstimateProgram(*program, machine_).latency_us;
              std::lock_guard<std::mutex> lock(analysis_mu_);
              analysis_cache_.emplace(std::move(akey), latency);
            }
            results[i].latency_us = latency;
          } else {
            results[i].latency_us = sim::EstimateProgram(*program, machine_).latency_us;
          }
          results[i].status = Status::Ok();
          break;
        } catch (const std::exception& e) {
          results[i].status =
              Status::Internal(std::string("measurement threw: ") + e.what());
          break;
        }
      }
      candidate_hist.Observe(static_cast<double>(slot_cpu_ns[w]) * 1e-3);
      slot_done[w] = 1;
    });
  }

  // Reduce in deterministic slot order on the calling thread.
  for (int w = 0; w < w_count; ++w) {
    int i = work[w];
    if (!slot_done[w] && results[i].status.ok()) {
      // A pool-level fault (task exception escaping the engine's own
      // try/catch) must not masquerade as a successful measurement.
      results[i].status = pool_status.ok() ? Status::Internal("measurement never ran")
                                           : pool_status;
    }
    stats_.retries += slot_retries[w];
    stats_.injected_failures += slot_injected[w];
    stats_.analysis_cache_hits += slot_analysis_hit[w];
    stats_.backoff_ms += slot_backoff[w];
    stats_.cpu_ms += static_cast<double>(slot_cpu_ns[w]) * 1e-6;
    if (results[i].status.ok()) {
      ++stats_.measured;
      if (config_.cache_enabled) {
        std::lock_guard<std::mutex> lock(cache_mu_);
        cache_.emplace(keys[i], results[i].latency_us);
      }
    } else {
      ++stats_.failed;
      if (keyed()) {
        std::lock_guard<std::mutex> lock(cache_mu_);
        if (InsertQuarantine(keys[i])) {
          ++stats_.quarantined;
        }
      }
    }
    if (config_.database != nullptr) {
      // Write-through: persist this measurement so a later run against the
      // same database (and machine) never re-measures the candidate.
      MeasureDatabase::Entry entry;
      entry.failed = !results[i].status.ok();
      entry.latency_us = entry.failed ? 0.0 : results[i].latency_us;
      config_.database->Record(sites[i], entry);
    }
    if (config_.on_measured) {
      config_.on_measured(keys[i], results[i]);
    }
  }
  for (int i = 0; i < n; ++i) {
    if (alias_of[i] >= 0) {
      results[i] = results[alias_of[i]];
      // The first occurrence paid the measurement; this one is free.
      results[i].attempts = 0;
      results[i].replayed = false;
      results[i].db_hit = false;
      if (results[i].status.ok()) {
        results[i].cache_hit = true;
        ++stats_.cache_hits;
      } else {
        ++stats_.failed;  // duplicate of a failing candidate
      }
    } else if (results[i].cache_hit) {
      ++stats_.cache_hits;
    } else if (results[i].replayed) {
      ++stats_.replayed;
    } else if (results[i].db_hit) {
      ++stats_.db_hits;
    } else if (!measure_slot[i] && !results[i].status.ok()) {
      ++stats_.failed;  // quarantine short-circuit
    }
  }

  // Batch wall time is charged exactly once, on the calling thread (see the
  // wall_ms comment in measure.h: batches never overlap, so summing per-batch
  // wall clocks cannot double-count).
  stats_.wall_ms +=
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();

  // Mirror this batch's stats deltas into the global metrics registry so a
  // MetricsSnapshot of a run always agrees with its MeasureStats.
  auto& registry = MetricsRegistry::Global();
  static Counter& c_requested = registry.counter("measure.requested");
  static Counter& c_measured = registry.counter("measure.measured");
  static Counter& c_cache_hits = registry.counter("measure.cache_hits");
  static Counter& c_failed = registry.counter("measure.failed");
  static Counter& c_replayed = registry.counter("measure.replayed");
  static Counter& c_retries = registry.counter("measure.retries");
  static Counter& c_quarantined = registry.counter("measure.quarantined");
  static Counter& c_injected = registry.counter("measure.injected_failures");
  static Counter& c_analysis_hits = registry.counter("measure.analysis_cache_hits");
  static Counter& c_db_hits = registry.counter("measure.db_hits");
  static Counter& c_worker_restarts = registry.counter("measure.worker_restarts");
  c_requested.Add(stats_.requested - stats_before.requested);
  c_measured.Add(stats_.measured - stats_before.measured);
  c_cache_hits.Add(stats_.cache_hits - stats_before.cache_hits);
  c_failed.Add(stats_.failed - stats_before.failed);
  c_replayed.Add(stats_.replayed - stats_before.replayed);
  c_retries.Add(stats_.retries - stats_before.retries);
  c_quarantined.Add(stats_.quarantined - stats_before.quarantined);
  c_injected.Add(stats_.injected_failures - stats_before.injected_failures);
  c_analysis_hits.Add(stats_.analysis_cache_hits - stats_before.analysis_cache_hits);
  c_db_hits.Add(stats_.db_hits - stats_before.db_hits);
  c_worker_restarts.Add(stats_.worker_restarts - stats_before.worker_restarts);
  registry.gauge("measure.quarantine_size").Set(static_cast<double>(quarantine_size()));
  return results;
}

MeasureResult MeasureEngine::MeasureOne(const graph::Graph& graph,
                                        const graph::LayoutAssignment& assignment,
                                        const loop::FusedGroup& group,
                                        const loop::LoopSchedule& schedule) {
  return Measure(graph, assignment, group, {schedule})[0];
}

}  // namespace alt::autotune

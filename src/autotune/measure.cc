#include "src/autotune/measure.h"

#include <chrono>
#include <sstream>
#include <thread>

#include "src/ir/tensor.h"
#include "src/loop/serialization.h"

namespace alt::autotune {

namespace {

int ResolveThreads(int threads) {
  if (threads > 0) {
    return threads;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void AppendOpKey(const graph::Graph& g, const graph::LayoutAssignment& la, int op_id,
                 std::ostringstream& oss) {
  const graph::Op& op = g.op(op_id);
  oss << "k" << static_cast<int>(op.kind);
  // Every attribute the lowering consults must be part of the key; a missed
  // attribute would alias distinct programs onto one cache entry.
  oss << ";c" << op.conv.spatial_dims << "," << op.conv.groups;
  for (int d = 0; d < 3; ++d) {
    oss << "," << op.conv.stride[d] << "," << op.conv.dilation[d] << "," << op.conv.pad[d]
        << "," << op.conv.output_pad[d];
  }
  oss << ";p" << op.pool.window[0] << "," << op.pool.window[1] << "," << op.pool.stride[0]
      << "," << op.pool.stride[1] << "," << op.pool.pad[0] << "," << op.pool.pad[1] << ","
      << (op.pool.global ? 1 : 0);
  oss << ";z";
  for (size_t d = 0; d < op.pad.before.size(); ++d) {
    oss << op.pad.before[d] << "/" << op.pad.after[d] << ",";
  }
  oss << ";s" << op.scalar << ";b" << op.bias_axis;
  for (int in : op.inputs) {
    oss << ";i" << ir::ShapeToString(g.tensor(in).shape) << "@"
        << loop::EncodeLayoutSeq(la.Get(in));
  }
  oss << ";o" << ir::ShapeToString(g.tensor(op.output).shape) << "@"
      << loop::EncodeLayoutSeq(la.Get(op.output));
}

}  // namespace

std::string GroupCacheKey(const graph::Graph& graph,
                          const graph::LayoutAssignment& assignment,
                          const loop::FusedGroup& group) {
  std::ostringstream oss;
  AppendOpKey(graph, assignment, group.anchor_op, oss);
  for (int fused : group.fused_ops) {
    oss << "|";
    AppendOpKey(graph, assignment, fused, oss);
  }
  return oss.str();
}

MeasureEngine::MeasureEngine(const sim::Machine& machine, int threads, bool cache_enabled)
    : machine_(machine), cache_enabled_(cache_enabled), pool_(ResolveThreads(threads)) {}

int64_t MeasureEngine::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return static_cast<int64_t>(cache_.size());
}

std::vector<MeasureResult> MeasureEngine::Measure(
    const graph::Graph& graph, const graph::LayoutAssignment& assignment,
    const loop::FusedGroup& group, const std::vector<loop::LoopSchedule>& schedules) {
  auto start = std::chrono::steady_clock::now();
  const int n = static_cast<int>(schedules.size());
  std::vector<MeasureResult> results(n);
  stats_.requested += n;

  // Resolve cache hits (and intra-batch duplicates) up front so only genuine
  // misses reach the pool. `measure_slot[i]` marks slots that need work;
  // `alias_of[i]` points a duplicate at the slot that measures its key.
  std::vector<std::string> keys(n);
  std::vector<bool> measure_slot(n, true);
  std::vector<int> alias_of(n, -1);
  if (cache_enabled_) {
    const std::string group_key = GroupCacheKey(graph, assignment, group);
    std::unordered_map<std::string, int> first_slot;
    std::lock_guard<std::mutex> lock(cache_mu_);
    for (int i = 0; i < n; ++i) {
      keys[i] = group_key + "#" + loop::EncodeSchedule(schedules[i]);
      auto cached = cache_.find(keys[i]);
      if (cached != cache_.end()) {
        results[i].latency_us = cached->second;
        results[i].cache_hit = true;
        measure_slot[i] = false;
        continue;
      }
      auto [it, inserted] = first_slot.try_emplace(keys[i], i);
      if (!inserted) {
        alias_of[i] = it->second;
        measure_slot[i] = false;
      }
    }
  }

  std::vector<int> work;
  for (int i = 0; i < n; ++i) {
    if (measure_slot[i]) {
      work.push_back(i);
    }
  }

  // Lower + estimate the misses concurrently. Each task writes only its own
  // slot; LowerGroup/EstimateProgram are pure, so this is deterministic.
  pool_.ParallelFor(static_cast<int>(work.size()), [&](int w) {
    int i = work[w];
    auto program = loop::LowerGroup(graph, assignment, group, schedules[i]);
    if (!program.ok()) {
      results[i].status = program.status();
      return;
    }
    results[i].latency_us = sim::EstimateProgram(*program, machine_).latency_us;
  });

  for (int i : work) {
    if (results[i].status.ok()) {
      ++stats_.measured;
      if (cache_enabled_) {
        std::lock_guard<std::mutex> lock(cache_mu_);
        cache_.emplace(keys[i], results[i].latency_us);
      }
    } else {
      ++stats_.failed;
    }
  }
  for (int i = 0; i < n; ++i) {
    if (alias_of[i] >= 0) {
      results[i] = results[alias_of[i]];
      // The first occurrence paid the measurement; this one is free.
      if (results[i].status.ok()) {
        results[i].cache_hit = true;
        ++stats_.cache_hits;
      } else {
        ++stats_.failed;  // duplicate of a failing candidate
      }
    } else if (results[i].cache_hit) {
      ++stats_.cache_hits;
    }
  }

  stats_.wall_ms +=
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  return results;
}

MeasureResult MeasureEngine::MeasureOne(const graph::Graph& graph,
                                        const graph::LayoutAssignment& assignment,
                                        const loop::FusedGroup& group,
                                        const loop::LoopSchedule& schedule) {
  return Measure(graph, assignment, group, {schedule})[0];
}

}  // namespace alt::autotune

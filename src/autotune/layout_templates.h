// Layout tuning templates (paper §5.1).
//
// For convolutions the template tiles spatial dims of the output (and unfolds
// the corresponding input windows, Eq. (1)) and channel dims of all three
// tensors, always moving the tiled channel innermost for data reuse + SIMD:
//
//   output  N  H/ht W/wt  O/ot  ht wt ot
//   input   N  H/ht W/wt  I/it  (V(ht-1)+KHeff) (V(wt-1)+KWeff)  it
//   weight  O/ot' I/it'  KH KW  it' ot'
//
// For GMM:  C = M/mt N/nt mt nt,  A = M/mt K/kt mt kt,  B = K/kt N/nt kt nt.
//
// This header also provides the classic fixed layouts used by Fig. 1 and the
// baselines (NOHW, NHWO, HWON, blocked NCHWc, KN / NK / NKn).

#ifndef ALT_AUTOTUNE_LAYOUT_TEMPLATES_H_
#define ALT_AUTOTUNE_LAYOUT_TEMPLATES_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph.h"
#include "src/layout/primitive.h"
#include "src/support/status.h"

namespace alt::autotune {

struct ConvLayoutParams {
  // One tile factor per spatial dim of the output (must divide the extent).
  // A factor equal to the extent means "un-tiled".
  std::vector<int64_t> spatial_tiles;
  int64_t out_tile = 1;    // ot
  int64_t in_tile = 1;     // it (input channels)
  int64_t w_in_tile = 1;   // it'
  int64_t w_out_tile = 1;  // ot'
  // Optional second tiling level for ot (two-level template, §7.3.3).
  int64_t out_tile2 = 1;
};

struct ConvLayouts {
  layout::LayoutSeq output;
  layout::LayoutSeq input;
  layout::LayoutSeq weight;
};

// Builds the §5.1 conv template for `op` (any spatial rank, incl. grouped /
// dilated). Unfold is skipped on dims where stride exceeds the effective
// window (no overlap to exploit).
StatusOr<ConvLayouts> MakeConvTemplates(const graph::Graph& graph, const graph::Op& op,
                                        const ConvLayoutParams& params);

struct GmmLayoutParams {
  int64_t mt = 1;
  int64_t nt = 1;
  int64_t kt = 1;
};

struct GmmLayouts {
  layout::LayoutSeq c;
  layout::LayoutSeq a;
  layout::LayoutSeq b;
};

StatusOr<GmmLayouts> MakeGmmTemplates(const graph::Graph& graph, const graph::Op& op,
                                      const GmmLayoutParams& params);

// --- classic fixed layouts (Fig. 1, baselines) ---

// Channel-last for an N,C,spatial... tensor: NHWO / NWO / NDHWO etc.
layout::LayoutSeq ChannelsLast(int spatial_dims);
// HWON: spatial dims first, then channel, then batch (2-D only).
layout::LayoutSeq Hwon();
// Blocked NCHWc with channel tile `ct` (NeoCPU-style N C/ct H W ct).
StatusOr<layout::LayoutSeq> BlockedChannels(const std::vector<int64_t>& canonical_shape,
                                            int64_t ct);
// Matmul operand layouts: NK transposes B; NKn tiles all three (paper §2).
layout::LayoutSeq TransposedB();

}  // namespace alt::autotune

#endif  // ALT_AUTOTUNE_LAYOUT_TEMPLATES_H_

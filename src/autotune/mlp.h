// Minimal dense neural network with manual backprop and Adam — the function
// approximator behind the PPO actor/critic (paper §5.2). Two tanh hidden
// layers and a linear head.

#ifndef ALT_AUTOTUNE_MLP_H_
#define ALT_AUTOTUNE_MLP_H_

#include <vector>

#include "src/support/rng.h"

namespace alt::autotune {

class Mlp {
 public:
  Mlp(int in_dim, int hidden, int out_dim, Rng& rng);

  std::vector<double> Forward(const std::vector<double>& x) const;

  // Accumulates gradients for one example; returns nothing. Call AdamStep to
  // apply and clear accumulated gradients.
  void Backward(const std::vector<double>& x, const std::vector<double>& grad_out);

  void AdamStep(double lr);

  // Flat parameter snapshot (for pretrained-agent cloning).
  std::vector<double> GetWeights() const;
  void SetWeights(const std::vector<double>& w);

  int in_dim() const { return in_dim_; }
  int out_dim() const { return out_dim_; }

 private:
  struct Layer {
    int in, out;
    std::vector<double> w, b;        // weights row-major [out][in]
    std::vector<double> gw, gb;      // gradient accumulators
    std::vector<double> mw, vw, mb, vb;  // Adam moments
  };

  std::vector<double> LayerForward(const Layer& l, const std::vector<double>& x,
                                   bool tanh_act) const;

  int in_dim_, hidden_, out_dim_;
  Layer l1_, l2_, l3_;
  int adam_t_ = 0;
};

}  // namespace alt::autotune

#endif  // ALT_AUTOTUNE_MLP_H_

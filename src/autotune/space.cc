#include "src/autotune/space.h"

#include <cmath>
#include <sstream>

#include "src/layout/relation.h"
#include "src/support/string_util.h"

namespace alt::autotune {

using graph::OpKind;

// ---------------------------------------------------------------------------
// LayoutSpace
// ---------------------------------------------------------------------------

StatusOr<LayoutSpace> LayoutSpace::ForOp(const graph::Graph& graph, int op_id, bool two_level) {
  const graph::Op& op = graph.op(op_id);
  if (!graph::IsComplex(op.kind)) {
    return Status::InvalidArgument("layout spaces exist only for complex operators");
  }
  LayoutSpace space;
  space.op_id_ = op_id;
  space.two_level_ = two_level;
  if (op.kind == OpKind::kMatmul) {
    space.is_gmm_ = true;
    const auto& sa = graph.tensor(op.inputs[0]).shape;
    const auto& sb = graph.tensor(op.inputs[1]).shape;
    space.knob_divisors_.push_back(Divisors(sa[0]));  // mt
    space.knob_divisors_.push_back(Divisors(sb[1]));  // nt
    space.knob_divisors_.push_back(Divisors(sa[1]));  // kt
    return space;
  }
  const auto& out_shape = graph.tensor(op.output).shape;
  const auto& in_shape = graph.tensor(op.inputs[0]).shape;
  const auto& w_shape = graph.tensor(op.inputs[1]).shape;
  space.spatial_dims_ = op.conv.spatial_dims;
  for (int d = 0; d < space.spatial_dims_; ++d) {
    space.knob_divisors_.push_back(Divisors(out_shape[2 + d]));
  }
  space.knob_divisors_.push_back(Divisors(out_shape[1]));  // ot
  space.knob_divisors_.push_back(Divisors(in_shape[1]));   // it
  space.knob_divisors_.push_back(Divisors(w_shape[1]));    // w it'
  space.knob_divisors_.push_back(Divisors(w_shape[0]));    // w ot'
  if (two_level) {
    space.knob_divisors_.push_back(Divisors(out_shape[1]));  // ot2 (validated on decode)
  }
  return space;
}

double LayoutSpace::NumPoints() const {
  double n = 1.0;
  for (const auto& d : knob_divisors_) {
    n *= static_cast<double>(d.size());
  }
  return n;
}

StatusOr<DecodedLayouts> LayoutSpace::Decode(const graph::Graph& graph,
                                             const Point& point) const {
  if (static_cast<int>(point.size()) < num_knobs()) {
    return Status::InvalidArgument("layout point dimension too small");
  }
  const graph::Op& op = graph.op(op_id_);
  DecodedLayouts out;
  if (is_gmm_) {
    GmmLayoutParams params;
    params.mt = knob_divisors_[0][PickIndex(point[0], knob_divisors_[0].size())];
    params.nt = knob_divisors_[1][PickIndex(point[1], knob_divisors_[1].size())];
    params.kt = knob_divisors_[2][PickIndex(point[2], knob_divisors_[2].size())];
    auto layouts = MakeGmmTemplates(graph, op, params);
    if (!layouts.ok()) {
      return layouts.status();
    }
    out.output = layouts->c;
    out.input = layouts->a;
    out.weight = layouts->b;
    std::ostringstream oss;
    oss << "gmm(mt=" << params.mt << ", nt=" << params.nt << ", kt=" << params.kt << ")";
    out.desc = oss.str();
  } else {
    ConvLayoutParams params;
    int k = 0;
    for (int d = 0; d < spatial_dims_; ++d, ++k) {
      params.spatial_tiles.push_back(
          knob_divisors_[k][PickIndex(point[k], knob_divisors_[k].size())]);
    }
    params.out_tile = knob_divisors_[k][PickIndex(point[k], knob_divisors_[k].size())];
    ++k;
    params.in_tile = knob_divisors_[k][PickIndex(point[k], knob_divisors_[k].size())];
    ++k;
    params.w_in_tile = knob_divisors_[k][PickIndex(point[k], knob_divisors_[k].size())];
    ++k;
    params.w_out_tile = knob_divisors_[k][PickIndex(point[k], knob_divisors_[k].size())];
    ++k;
    if (two_level_) {
      // ot2 must divide O/ot; remap the coordinate over the valid divisors.
      int64_t remaining = graph.tensor(op.output).shape[1] / params.out_tile;
      auto divs = Divisors(remaining);
      params.out_tile2 = divs[PickIndex(point[k], divs.size())];
      ++k;
    }
    auto layouts = MakeConvTemplates(graph, op, params);
    if (!layouts.ok()) {
      return layouts.status();
    }
    out.output = layouts->output;
    out.input = layouts->input;
    out.weight = layouts->weight;
    std::ostringstream oss;
    oss << "conv(spatial=[" << Join(params.spatial_tiles, ",") << "], ot=" << params.out_tile;
    if (two_level_) {
      oss << "x" << params.out_tile2;
    }
    oss << ", it=" << params.in_tile << ", w=" << params.w_in_tile << "/" << params.w_out_tile
        << ")";
    out.desc = oss.str();
  }
  out.state = RelationState(graph, op, out);
  return out;
}

std::vector<double> RelationState(const graph::Graph& graph, const graph::Op& op,
                                  const DecodedLayouts& d) {
  auto one = [&](const layout::LayoutSeq& seq, int tensor_id) {
    auto rel = layout::LayoutRelation::FromSeq(seq, graph.tensor(tensor_id).shape);
    return rel.ok() ? rel->CanonicalState() : seq.StateVector();
  };
  std::vector<double> state = one(d.output, op.output);
  auto si = one(d.input, op.inputs[0]);
  auto sw = one(d.weight, op.inputs[1]);
  state.insert(state.end(), si.begin(), si.end());
  state.insert(state.end(), sw.begin(), sw.end());
  return state;
}

std::string RelationKey(const graph::Graph& graph, const graph::Op& op,
                        const DecodedLayouts& d) {
  auto one = [&](const layout::LayoutSeq& seq, int tensor_id) -> std::string {
    auto rel = layout::LayoutRelation::FromSeq(seq, graph.tensor(tensor_id).shape);
    return rel.ok() ? std::to_string(rel->Fingerprint()) : std::string();
  };
  std::string o = one(d.output, op.output);
  std::string i = one(d.input, op.inputs[0]);
  std::string w = one(d.weight, op.inputs[1]);
  if (o.empty() || i.empty() || w.empty()) {
    return std::string();
  }
  return o + "|" + i + "|" + w;
}

// ---------------------------------------------------------------------------
// LoopSpace
// ---------------------------------------------------------------------------

LoopSpace LoopSpace::ForSignature(const loop::LoopNestSignature& sig,
                                  const sim::Machine& machine, bool restricted) {
  LoopSpace space;
  space.sig_ = sig;
  space.lanes_ = machine.vector_lanes;
  space.restricted_ = restricted;
  int ns = static_cast<int>(sig.spatial_extents.size());
  int nr = static_cast<int>(sig.reduction_extents.size());
  // vec (last axis) + per-axis inner (+ mid) + per-reduction inner
  // + parallel depth + rotation + unroll.
  space.num_knobs_ = 1 + ns * (restricted ? 1 : 2) + nr + (restricted ? 1 : 3);
  return space;
}

double LoopSpace::NumPoints() const {
  double n = 1.0;
  for (int64_t e : sig_.spatial_extents) {
    double d = static_cast<double>(Divisors(e).size());
    n *= restricted_ ? d : d * d;
  }
  for (int64_t e : sig_.reduction_extents) {
    n *= static_cast<double>(Divisors(e).size());
  }
  return n * 8.0;
}

loop::LoopSchedule LoopSpace::Decode(const Point& point) const {
  loop::LoopSchedule sched;
  int ns = static_cast<int>(sig_.spatial_extents.size());
  int nr = static_cast<int>(sig_.reduction_extents.size());
  size_t k = 0;
  auto next = [&]() -> double {
    double v = k < point.size() ? point[k] : 0.0;
    ++k;
    return v;
  };

  // Vector split on the last axis, choosing among divisors up to the lanes.
  int64_t vec = 1;
  {
    double coord = next();
    if (ns > 0) {
      std::vector<int64_t> choices;
      for (int64_t d : Divisors(sig_.spatial_extents[ns - 1])) {
        if (d <= lanes_) {
          choices.push_back(d);
        }
      }
      vec = choices[PickIndex(coord, static_cast<int>(choices.size()))];
    }
  }

  for (int j = 0; j < ns; ++j) {
    loop::SpatialAxisSchedule axis;
    int64_t extent = sig_.spatial_extents[j];
    if (j == ns - 1) {
      axis.vec = vec;
      extent /= vec;
    }
    auto inner_divs = Divisors(extent);
    axis.inner = inner_divs[PickIndex(next(), static_cast<int>(inner_divs.size()))];
    extent /= axis.inner;
    if (!restricted_) {
      auto mid_divs = Divisors(extent);
      axis.mid = mid_divs[PickIndex(next(), static_cast<int>(mid_divs.size()))];
      extent /= axis.mid;
    }
    axis.outer = extent;
    sched.spatial.push_back(axis);
  }
  for (int r = 0; r < nr; ++r) {
    loop::ReductionAxisSchedule axis;
    auto divs = Divisors(sig_.reduction_extents[r]);
    axis.inner = divs[PickIndex(next(), static_cast<int>(divs.size()))];
    axis.outer = sig_.reduction_extents[r] / axis.inner;
    sched.reduction.push_back(axis);
  }
  if (restricted_) {
    sched.parallel_axes = ns > 0 ? 1 : 0;
    sched.inner_order_rotation = 0;
    sched.unroll_inner_reduction = PickIndex(next(), 2) == 1;
  } else {
    sched.parallel_axes = ns > 0 ? 1 + PickIndex(next(), std::min(ns, 3)) : 0;
    sched.inner_order_rotation = ns > 0 ? PickIndex(next(), ns) : 0;
    sched.unroll_inner_reduction = PickIndex(next(), 2) == 1;
  }
  return sched;
}

loop::LoopSchedule LoopSpace::Default(const loop::LoopNestSignature& sig,
                                      const sim::Machine& machine) {
  loop::LoopSchedule sched =
      loop::LoopSchedule::Naive(sig.spatial_extents, sig.reduction_extents);
  int ns = static_cast<int>(sched.spatial.size());
  if (ns > 0) {
    auto& last = sched.spatial[ns - 1];
    int64_t extent = sig.spatial_extents[ns - 1];
    for (int64_t v = machine.vector_lanes; v > 1; v /= 2) {
      if (extent % v == 0) {
        last.vec = v;
        last.outer = extent / v;
        break;
      }
    }
    // Modest inner tile on the second-to-last axis for locality.
    if (ns >= 2) {
      auto& axis = sched.spatial[ns - 2];
      int64_t e = sig.spatial_extents[ns - 2];
      for (int64_t t : {8, 4, 2}) {
        if (e % t == 0) {
          axis.inner = t;
          axis.outer = e / t;
          break;
        }
      }
    }
    sched.parallel_axes = std::min(ns, 2);
  }
  for (size_t r = 0; r < sched.reduction.size(); ++r) {
    int64_t e = sig.reduction_extents[r];
    for (int64_t t : {4, 2}) {
      if (e % t == 0) {
        sched.reduction[r].inner = t;
        sched.reduction[r].outer = e / t;
        break;
      }
    }
  }
  sched.unroll_inner_reduction = true;
  return sched;
}

Point RandomPoint(int dim, Rng& rng) {
  Point p(dim);
  for (auto& v : p) {
    v = rng.NextDouble();
  }
  return p;
}

Point NeighbourPoint(const Point& p, Rng& rng) {
  Point out = p;
  if (out.empty()) {
    return out;
  }
  size_t i = rng.NextBelow(out.size());
  out[i] += rng.NextGaussian() * 0.15;
  out[i] = std::min(0.999999, std::max(0.0, out[i]));
  return out;
}

}  // namespace alt::autotune

// Parallel measurement engine with a memoizing measurement cache.
//
// "Measurement" in this code base is lowering a fused group under a schedule
// (loop::LowerGroup) and running the analytic performance model over the
// result (sim::EstimateProgram). Both are pure functions of their inputs —
// they share no mutable state beyond an atomic variable-id counter — so a
// batch of candidates can be evaluated concurrently and still produce
// bit-identical results. The engine exploits that in two ways:
//
//   * PARALLELISM — the cost-model top-k candidates of a tuning batch are
//     lowered and estimated on a fixed-size thread pool. Results are written
//     into positionally-aligned slots and the tuner reduces them in candidate
//     rank order, so a fixed seed reproduces the single-threaded tuning
//     trajectory bit-for-bit at any thread count.
//   * MEMOIZATION — results are cached under a key derived from the group's
//     structural signature (op kinds, attributes, shapes), the serialized
//     layout sequences of every tensor the group touches, and the serialized
//     schedule. A candidate revisited across rounds, layout proposals, or the
//     loop-only stage is returned from the cache and costs zero budget.
//
// The cache is thread-safe; lookups and inserts happen on the reducing
// thread, misses are measured on the pool.

#ifndef ALT_AUTOTUNE_MEASURE_H_
#define ALT_AUTOTUNE_MEASURE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/graph/layout_assignment.h"
#include "src/loop/lowering.h"
#include "src/sim/perf_model.h"
#include "src/support/thread_pool.h"

namespace alt::autotune {

// Per-run counters, surfaced on CompiledNetwork and logged at the end of a
// tuning run so cache effectiveness and parallel speedup are observable.
struct MeasureStats {
  int64_t requested = 0;   // candidates submitted to the engine
  int64_t measured = 0;    // actual lower+estimate executions
  int64_t cache_hits = 0;  // candidates answered from the cache
  int64_t failed = 0;      // candidates whose lowering failed
  double wall_ms = 0.0;    // wall-clock spent inside Measure() calls
};

struct MeasureResult {
  Status status = Status::Ok();
  double latency_us = 1e30;
  bool cache_hit = false;
};

// Structural cache-key prefix for one fused group under an assignment:
// op kinds + attributes + tensor shapes + serialized layout sequences of all
// tensors the group reads or writes. Two groups with equal keys lower to the
// same program for any given schedule.
std::string GroupCacheKey(const graph::Graph& graph,
                          const graph::LayoutAssignment& assignment,
                          const loop::FusedGroup& group);

class MeasureEngine {
 public:
  // `threads` <= 0 means one thread per hardware core. `cache_enabled`
  // toggles memoization (parallelism works either way).
  MeasureEngine(const sim::Machine& machine, int threads, bool cache_enabled);

  // Lowers and estimates every schedule for `group`; result i corresponds to
  // schedules[i]. With the cache enabled, duplicate schedules within one call
  // are measured once and later occurrences report as cache hits; with it
  // disabled every slot is measured, preserving the historical trajectory.
  std::vector<MeasureResult> Measure(const graph::Graph& graph,
                                     const graph::LayoutAssignment& assignment,
                                     const loop::FusedGroup& group,
                                     const std::vector<loop::LoopSchedule>& schedules);

  MeasureResult MeasureOne(const graph::Graph& graph,
                           const graph::LayoutAssignment& assignment,
                           const loop::FusedGroup& group,
                           const loop::LoopSchedule& schedule);

  const MeasureStats& stats() const { return stats_; }
  int threads() const { return pool_.size(); }
  bool cache_enabled() const { return cache_enabled_; }
  int64_t cache_size() const;

 private:
  const sim::Machine& machine_;
  const bool cache_enabled_;
  ThreadPool pool_;

  mutable std::mutex cache_mu_;
  std::unordered_map<std::string, double> cache_;  // key -> latency_us

  MeasureStats stats_;
};

}  // namespace alt::autotune

#endif  // ALT_AUTOTUNE_MEASURE_H_

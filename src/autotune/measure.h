// Parallel measurement engine with a memoizing measurement cache, fault
// injection, retry/quarantine, and journal replay.
//
// "Measurement" in this code base is lowering a fused group under a schedule
// (loop::LowerGroup) and running the analytic performance model over the
// result (sim::EstimateProgram). Both are pure functions of their inputs —
// they share no mutable state beyond an atomic variable-id counter — so a
// batch of candidates can be evaluated concurrently and still produce
// bit-identical results. The engine exploits that in several ways:
//
//   * PARALLELISM — the cost-model top-k candidates of a tuning batch are
//     lowered and estimated on a fixed-size thread pool. Results are written
//     into positionally-aligned slots and the tuner reduces them in candidate
//     rank order, so a fixed seed reproduces the single-threaded tuning
//     trajectory bit-for-bit at any thread count.
//   * MEMOIZATION — results are cached under a key derived from the group's
//     structural signature (op kinds, attributes, shapes), the serialized
//     layout sequences of every tensor the group touches, and the serialized
//     schedule. A candidate revisited across rounds, layout proposals, or the
//     loop-only stage is returned from the cache and costs zero budget.
//   * FAULT TOLERANCE — an optional FaultInjector simulates transient
//     measurement failures; failed attempts are retried with capped
//     exponential backoff, and candidates that fail persistently (transient
//     retries exhausted, or a deterministic lowering error) are quarantined:
//     their failure is remembered and later requests short-circuit without
//     re-measuring. Failures are never cached as latencies and never abort a
//     batch — the tuner sees a non-ok MeasureResult and moves on.
//   * REPLAY — a MeasureReplayLog (reconstructed from a tuning journal)
//     answers already-performed measurements without re-executing them.
//     Replayed results report cache_hit == false so a resumed tuning run
//     spends budget exactly as the original did, and successful replays are
//     inserted into the cache so later duplicates hit it exactly as in the
//     original run. This is what makes journal resume deterministic.
//   * WARM START — an optional MeasureDatabase (core::TuningDatabase on
//     disk) answers measurements recorded by PREVIOUS runs, consulted after
//     cache/quarantine/replay and written through on every fresh outcome.
//     Database hits use replay semantics (cache_hit == false, budget spent),
//     so a warm-started run walks the exact trajectory of a cold run and
//     issues zero redundant measurements.
//   * ISOLATION — with MeasureEngineConfig::isolate enabled, fresh
//     candidates are evaluated in forked worker subprocesses (worker_pool.h)
//     instead of on the thread pool; a candidate that crashes, hangs, or
//     corrupts its reply costs a worker respawn and a retry, never the tuner
//     process, and persistent offenders land in the quarantine like any
//     other persistent failure.
//
// The cache and quarantine set are thread-safe; lookups and inserts happen on
// the reducing thread, misses are measured on the pool.

#ifndef ALT_AUTOTUNE_MEASURE_H_
#define ALT_AUTOTUNE_MEASURE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/autotune/worker_pool.h"
#include "src/graph/layout_assignment.h"
#include "src/loop/lowering.h"
#include "src/sim/perf_model.h"
#include "src/support/fault_injection.h"
#include "src/support/thread_pool.h"

namespace alt::autotune {

// Per-run counters, surfaced on CompiledNetwork and logged at the end of a
// tuning run so cache effectiveness, parallel speedup, and fault recovery are
// observable. Invariant: requested == measured + cache_hits + failed +
// replayed + db_hits (the five buckets are disjoint).
struct MeasureStats {
  int64_t requested = 0;   // candidates submitted to the engine
  int64_t measured = 0;    // actual lower+estimate executions that succeeded
  int64_t cache_hits = 0;  // candidates answered from the cache
  int64_t failed = 0;      // fresh failures (lowering errors, retries exhausted,
                           // quarantine short-circuits)
  int64_t replayed = 0;    // candidates answered from a replay log (ok or fail)
  int64_t db_hits = 0;     // candidates answered from the tuning database
  int64_t retries = 0;     // extra attempts after a transient failure
  int64_t quarantined = 0; // distinct keys placed in quarantine
  // Measurement workers killed and respawned by the isolated path (crash,
  // garbled frame, or missed deadline). 0 unless isolation is enabled.
  int64_t worker_restarts = 0;
  // Fresh measurements whose lowered program matched an already-analyzed
  // structure (ir::ProgramStructureKey) and skipped sim::EstimateProgram.
  // These still count as `measured` — the candidate was lowered — but the
  // analysis work was served from the structure cache. The count can vary
  // with thread scheduling (concurrent first-misses race benignly); the
  // returned latencies never do.
  int64_t analysis_cache_hits = 0;
  int64_t injected_failures = 0;  // attempts failed by the FaultInjector
  double backoff_ms = 0.0;        // total retry backoff requested
  // Wall-clock of Measure() calls, accounted ONCE PER BATCH on the calling
  // thread. The engine's single-caller contract (ParallelFor is not
  // reentrant) means batches never overlap, so this is the true elapsed time
  // spent measuring; it is NOT the work performed — with N pool threads the
  // batch does up to N x wall_ms of lowering+estimation.
  double wall_ms = 0.0;
  // Lower+estimate time summed over every attempt across all pool threads
  // (the "CPU" view). cpu_ms / wall_ms approximates the parallel speedup;
  // with one thread cpu_ms <= wall_ms.
  double cpu_ms = 0.0;
};

struct MeasureResult {
  Status status = Status::Ok();
  double latency_us = 1e30;
  bool cache_hit = false;
  // Answered from a replay log; reported with cache_hit == false so the
  // caller's budget accounting matches the run that produced the log.
  bool replayed = false;
  // Answered from the persistent tuning database (warm start). Like replay,
  // reported with cache_hit == false so a warm-started run spends budget
  // exactly as the run that populated the database did.
  bool db_hit = false;
  // Lower+estimate attempts spent on this result (1 for a clean first try;
  // 0 for cache/replay/database/quarantine answers).
  int attempts = 0;
};

// Retry policy for transient measurement failures. Backoff for attempt k
// (1-based retry count) is min(backoff_base_ms << (k-1), backoff_cap_ms);
// a base of 0 disables sleeping entirely, which keeps tests fast and makes
// the injected-fault trajectory timing-independent.
struct RetryPolicy {
  int max_attempts = 3;
  int backoff_base_ms = 0;
  int backoff_cap_ms = 100;
  // Cap on the quarantine set: once this many keys are quarantined, the
  // OLDEST entry is evicted per insertion (it may then be re-measured and
  // re-quarantined — correctness is unaffected, only memoized failure
  // short-circuits are lost). <= 0: unbounded, the historical behavior.
  int max_quarantine = 4096;
};

// Backoff in ms before retry number `retry_number` (1-based) under `retry`.
// Shared by the in-process and isolated measurement paths so both charge
// identical backoff_ms for identical failure sequences.
int RetryBackoffMs(const RetryPolicy& retry, int retry_number);

// Persistent store of measured outcomes, keyed by the 64-bit site fingerprint
// (Fnv1a64 of the full measurement cache key — the same identity the tuning
// journal records). Implemented by core::TuningDatabase; the interface lives
// here so autotune does not depend on core (mirrors TuningEventSink). Called
// only from the engine's reducing thread, never concurrently.
class MeasureDatabase {
 public:
  struct Entry {
    bool failed = false;     // the measurement failed persistently
    double latency_us = 0.0; // valid when !failed
  };

  virtual ~MeasureDatabase() = default;
  virtual std::optional<Entry> Lookup(uint64_t site) = 0;
  virtual void Record(uint64_t site, const Entry& entry) = 0;
};

// Measurements recovered from a tuning journal, keyed by Fnv1a64 of the full
// measurement cache key. Split by outcome: `ok` maps to the recorded latency,
// `failed` records keys whose measurement failed persistently.
struct MeasureReplayLog {
  std::unordered_map<uint64_t, double> ok;
  std::unordered_set<uint64_t> failed;

  bool empty() const { return ok.empty() && failed.empty(); }
  int64_t size() const { return static_cast<int64_t>(ok.size() + failed.size()); }
};

struct MeasureEngineConfig {
  int threads = 0;            // <= 0: one per hardware core
  bool cache_enabled = true;  // memoization (parallelism works either way)
  // Structure-keyed analysis cache: candidates whose lowered programs are
  // structurally identical (schedules differing only in omitted unit loops,
  // or distinct groups lowering to the same nest) share one EstimateProgram
  // run. Keyed by ir::ProgramStructureKey, which normalizes variable and
  // tensor ids, so it is strictly finer-grained than the measurement cache.
  bool analysis_cache = true;
  FaultInjector::Options faults;
  RetryPolicy retry;
  // Out-of-process measurement isolation (see worker_pool.h). When enabled,
  // fresh candidates are evaluated in forked worker processes instead of on
  // the thread pool; a crashing, hanging, or garbling candidate costs a
  // worker respawn and a retry, never the tuner process. Results are
  // bit-identical to the in-process path (the isolated path skips the
  // analysis cache — EstimateProgram is pure, so only analysis_cache_hits
  // differs, never a latency).
  IsolateOptions isolate;
  // Not owned; must outlive the engine when set.
  const MeasureReplayLog* replay = nullptr;
  // Persistent warm-start store, consulted after cache/quarantine/replay and
  // written through on every fresh outcome. Not owned; must outlive the
  // engine when set.
  MeasureDatabase* database = nullptr;
  // Invoked on the reducing thread, in deterministic slot order, once per
  // FRESH measurement outcome (success or persistent failure) — never for
  // cache hits, replays, or quarantine short-circuits. The journal writer
  // hangs off this hook.
  std::function<void(const std::string& key, const MeasureResult& result)> on_measured;
};

// Structural cache-key prefix for one fused group under an assignment:
// op kinds + attributes + tensor shapes + serialized layout sequences of all
// tensors the group reads or writes. Two groups with equal keys lower to the
// same program for any given schedule.
std::string GroupCacheKey(const graph::Graph& graph,
                          const graph::LayoutAssignment& assignment,
                          const loop::FusedGroup& group);

class MeasureEngine {
 public:
  explicit MeasureEngine(const sim::Machine& machine, MeasureEngineConfig config = {});

  // Legacy convenience constructor (threads <= 0 means one per core).
  MeasureEngine(const sim::Machine& machine, int threads, bool cache_enabled);

  // Lowers and estimates every schedule for `group`; result i corresponds to
  // schedules[i]. With the cache enabled, duplicate schedules within one call
  // are measured once and later occurrences report as cache hits; with it
  // disabled every slot is measured, preserving the historical trajectory.
  std::vector<MeasureResult> Measure(const graph::Graph& graph,
                                     const graph::LayoutAssignment& assignment,
                                     const loop::FusedGroup& group,
                                     const std::vector<loop::LoopSchedule>& schedules);

  MeasureResult MeasureOne(const graph::Graph& graph,
                           const graph::LayoutAssignment& assignment,
                           const loop::FusedGroup& group,
                           const loop::LoopSchedule& schedule);

  const MeasureStats& stats() const { return stats_; }
  int threads() const { return pool_.size(); }
  bool cache_enabled() const { return config_.cache_enabled; }
  int64_t cache_size() const;
  int64_t quarantine_size() const;
  int64_t analysis_cache_size() const;

 private:
  // True when per-candidate keys must be computed (cache, replay, journal
  // hook, or fault injection active). Without any of these the engine skips
  // key construction entirely, as the original implementation did.
  bool keyed() const;

  const sim::Machine& machine_;
  MeasureEngineConfig config_;
  FaultInjector injector_;
  ThreadPool pool_;

  // Inserts `key` into the quarantine set, evicting the oldest entry when
  // RetryPolicy::max_quarantine is exceeded. Returns whether the key was
  // newly inserted. Requires cache_mu_ held.
  bool InsertQuarantine(const std::string& key);

  mutable std::mutex cache_mu_;
  std::unordered_map<std::string, double> cache_;  // key -> latency_us (ok only)
  std::unordered_set<std::string> quarantine_;     // keys that fail persistently
  std::deque<std::string> quarantine_order_;       // insertion order, for eviction

  // Structure key -> latency_us. Guarded separately from cache_mu_: lookups
  // happen on pool threads mid-measurement, not on the reducing thread.
  mutable std::mutex analysis_mu_;
  std::unordered_map<std::string, double> analysis_cache_;

  MeasureStats stats_;
};

}  // namespace alt::autotune

#endif  // ALT_AUTOTUNE_MEASURE_H_

// Joint layout + loop auto-tuning (paper §5).
//
// The tuner implements the two-stage cross-exploration architecture:
//
//   * JOINT STAGE — for each complex operator in topological order, a layout
//     agent proposes a point in the pruned layout-template space; the loop
//     space is rebuilt for that layout and several rounds of loop tuning run
//     on it; the best latency found becomes the layout's reward (Eq. (3)).
//     The winning layouts are committed and propagated (Algorithm 1),
//     inserting conversion operators where the constraints demand them.
//   * LOOP-ONLY STAGE — with layouts frozen (so loop spaces never get
//     reconstructed again), the remaining budget tunes every fused group's
//     schedule.
//
// "Measurement" is a simulator estimate; budget accounting mirrors the paper
// (a batch costs top_k measurements — only the cost-model top-k are run).

#ifndef ALT_AUTOTUNE_TUNER_H_
#define ALT_AUTOTUNE_TUNER_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/autotune/gbt.h"
#include "src/autotune/measure.h"
#include "src/autotune/ppo.h"
#include "src/autotune/space.h"
#include "src/graph/layout_assignment.h"
#include "src/loop/lowering.h"
#include "src/sim/perf_model.h"
#include "src/support/metrics.h"

namespace alt::autotune {

enum class SearchMethod { kPpoPretrained, kPpo, kRandom };

// Observer of tuning progress, called synchronously on the tuning thread in
// deterministic order. The crash-safe journal writer (core/tuning_journal)
// implements this; the interface lives here so autotune does not depend on
// core. Implementations must not throw; a sink that fails internally (e.g.
// disk full) should record its own error and ignore subsequent events.
class TuningEventSink {
 public:
  virtual ~TuningEventSink() = default;
  // One fresh measurement outcome (success or persistent failure). Never
  // invoked for cache hits or replayed measurements.
  virtual void OnMeasured(const std::string& key, const MeasureResult& result) = 0;
  // The joint stage committed `layouts` to op `op_id`. `best_schedule` is the
  // best loop schedule found while assessing the winning layout (may be null).
  virtual void OnLayoutCommitted(int op_id, const DecodedLayouts& layouts,
                                 const loop::LoopSchedule* best_schedule) = 0;
  // A loop-tuning batch finished: `spent` measurements consumed so far,
  // `best_us` best complex-group latency so far. Before the first successful
  // complex-group measurement there is no best; `best_us` is then NaN ("no
  // result yet") — the 1e30 internal sentinel is never reported.
  virtual void OnBatchDone(int spent, double best_us) = 0;
  // The tuner entered a new phase ("joint", "loop", "lower"). Called once per
  // phase in order; phases that have nothing to do are still announced.
  // Default is a no-op so existing sinks keep compiling unchanged.
  virtual void OnPhase(const std::string& phase) { (void)phase; }
};

// How a complex op's tuned input layout is satisfied when its producer is
// another complex op (paper §7.3.2, Fig. 12):
//   * kIndependent (ALT) — both ops keep their own layouts; a conversion
//     operator is inserted between them.
//   * kInheritProducer (ALT-FP) — the consumer reads the producer's output
//     layout directly; its own input-layout preference is discarded.
//   * kForceProducer (ALT-BP) — the consumer's input layout overrides the
//     producer's output layout (tuned consumer-first).
enum class InputLayoutPolicy { kIndependent, kInheritProducer, kForceProducer };

// Fixed layout family used when layout tuning is disabled (ALT-OL, Ansor).
enum class FixedLayout { kCanonical, kChannelsLast, kBlocked };

struct TuningOptions {
  int total_budget = 600;     // total "measurements"
  double joint_fraction = 0.3;  // paper: 300/1000 single-op, 8k/20k networks
  int batch_size = 16;
  int top_k = 4;
  int loop_rounds_per_layout = 2;

  SearchMethod method = SearchMethod::kPpoPretrained;
  bool tune_layout = true;            // false: ALT-OL / loop-only baselines
  bool propagate_multi_hop = true;    // false: ALT-WP (Fig. 5b only)
  bool two_level_templates = false;   // §7.3.3 ablation
  bool use_cost_model = true;         // false: FlexTensor-like
  bool restricted_loop_space = false; // true: AutoTVM-like template space
  FixedLayout fixed_layout = FixedLayout::kChannelsLast;
  InputLayoutPolicy input_policy = InputLayoutPolicy::kIndependent;
  // Assess canonical/blocked/channels-last template instances before RL
  // exploration. Disabled by the Fig. 13 ablation to expose the raw
  // space-size-vs-budget tradeoff.
  bool seed_layout_candidates = true;
  bool reverse_op_order = false;  // tune complex ops consumer-first (ALT-BP)
  // Deduplicate layout candidates by normalized relation fingerprint
  // (layout/relation.h): differently-spelled candidates denoting the same
  // physical layouts share one evaluation, so the budget buys more distinct
  // layouts. Counters layout.candidates_enumerated / layout.relation_dedup
  // expose the hit rate; off restores evaluate-every-decode behavior.
  bool layout_relation_dedup = true;

  // Parallel measurement engine (see measure.h). `measure_threads` is the
  // number of threads lowering + estimating a batch's top-k candidates
  // (<= 0: one per hardware core); results are reduced in candidate order, so
  // any thread count reproduces the same tuning trajectory for a fixed seed.
  // `measure_cache` memoizes measurements by (group, layouts, schedule) so
  // revisited candidates cost zero budget.
  int measure_threads = 1;
  bool measure_cache = true;

  // Fault tolerance (see measure.h). `fault_injection` simulates transient
  // measurement failures; `measure_retry` bounds the retries that absorb
  // them. `measure_replay` answers journaled measurements without re-running
  // them (journal resume), and `event_sink` observes fresh measurements,
  // layout commits, and batch completions (journal writing). Both pointers
  // are borrowed and must outlive the tuner.
  FaultInjector::Options fault_injection;
  RetryPolicy measure_retry;
  const MeasureReplayLog* measure_replay = nullptr;
  TuningEventSink* event_sink = nullptr;

  // Crash isolation (see worker_pool.h). With `isolate_measurement` set,
  // candidates are evaluated in forked worker subprocesses: a candidate that
  // crashes, hangs past `measure_deadline_ms`, or corrupts its reply is
  // retried/quarantined without ever taking the tuner down. The isolated
  // path is trajectory-identical to in-process measurement for a fixed seed.
  // `worker_faults` injects child-side failures for testing.
  bool isolate_measurement = false;
  int measure_workers = 2;
  int measure_deadline_ms = 10000;
  WorkerFaultHooks worker_faults;

  // Persistent tuning database (see measure.h / core/tuning_database.h).
  // Consulted before measuring and written through after, so a run warm-
  // started from a populated database issues zero redundant measurements.
  // Borrowed; must outlive the tuner.
  MeasureDatabase* measure_database = nullptr;

  // When non-empty, Tune() records a span trace of the whole run (tuner
  // phases, loop batches, measurement batches and candidates, PPO updates,
  // journal writes) and writes it to this path as Chrome trace-event JSON.
  // Tracing owns the global TraceRecorder for the duration of the run, so
  // only one traced tuner may run at a time; with the path empty the
  // instrumentation costs <1% (see bench_tuner_throughput).
  std::string trace_path;

  uint64_t seed = 1;
  const std::vector<double>* pretrained_agent = nullptr;  // PPO snapshot
  // When layout tuning is off, start from these layouts instead of
  // `fixed_layout` (used by Fig. 1 to loop-tune specific fixed layouts).
  const graph::LayoutAssignment* initial_assignment = nullptr;
};

struct CompiledNetwork {
  graph::Graph graph;  // tuned copy (may contain inserted conversion ops)
  graph::LayoutAssignment assignment;
  std::vector<loop::FusedGroup> groups;
  std::vector<loop::LoopSchedule> schedules;
  std::vector<ir::Program> programs;
  sim::PerfCounters perf;
  int measurements_used = 0;
  // Best latency discovered after each measurement (tuning curve, Fig. 11).
  // Starts at the first SUCCESSFUL complex-group measurement — the curve is
  // empty until one exists, never padded with a sentinel — and is monotone
  // non-increasing from there.
  std::vector<double> history_us;
  // Measurement-engine counters for this run (cache hits, wall time, ...).
  MeasureStats measure_stats;
  // Per-run delta of the global metrics registry (counters + latency
  // histograms; see support/metrics.h). The measure.* counters equal the
  // fields of `measure_stats` above.
  MetricsSnapshot metrics;
};

class JointTuner {
 public:
  JointTuner(const graph::Graph& graph, const sim::Machine& machine, TuningOptions options);

  StatusOr<CompiledNetwork> Tune();

 private:
  struct LoopTuneState {
    LoopSpace space;
    Point best_point;
    std::optional<loop::LoopSchedule> best_schedule;
    double best_latency = 1e30;
  };

  MeasureResult MeasureGroup(const graph::Graph& g, const graph::LayoutAssignment& la,
                             const loop::FusedGroup& group, const loop::LoopSchedule& sched);

  // One batch of loop tuning on a group; updates `state`, spends budget.
  // `rng` supplies the batch's random draws: the joint stage passes a
  // per-candidate generator seeded from the candidate's relation fingerprint
  // so a layout's brief assessment is a deterministic function of the layout
  // relation (what makes replaying fingerprint-equal candidates sound); the
  // loop-only stage passes the shared tuner rng.
  void LoopTuneBatch(const graph::Graph& g, const graph::LayoutAssignment& la,
                     const loop::FusedGroup& group, const std::vector<double>& layout_state,
                     LoopTuneState& state, Rng& rng);

  // Tunes the layouts of one complex op (joint stage); returns the winning
  // decoded layouts (nullopt when nothing beat the canonical seed).
  StatusOr<std::optional<DecodedLayouts>> TuneOpLayout(int op_id, int op_budget);

  // Applies decoded layouts to an op: weight offline, input via propagation
  // or a conversion op, output propagated per variant.
  void CommitLayouts(int op_id, const DecodedLayouts& layouts);

  std::vector<double> Features(const loop::LoopNestSignature& sig,
                               const loop::LoopSchedule& sched,
                               const std::vector<double>& layout_state) const;

  void RecordMeasurement(double latency_us, bool complex_group);

  // True once a complex-group measurement has succeeded; before that,
  // best_total_us_ still holds the kNoBest sentinel, which must never leak
  // into history_us_ or event sinks.
  bool has_best() const { return best_total_us_ < kNoBest; }

  // Announces a tuner phase to the trace and the event sink.
  void BeginPhase(const char* phase);

  static constexpr double kNoBest = 1e30;

  graph::Graph graph_;
  const sim::Machine& machine_;
  TuningOptions options_;
  MeasureEngine engine_;
  Rng rng_;
  graph::LayoutAssignment assignment_;
  std::unique_ptr<PpoAgent> layout_agent_;
  GradientBoostedTrees cost_model_;
  std::vector<std::vector<double>> train_x_;
  std::vector<double> train_y_;
  int measurements_ = 0;
  double best_total_us_ = kNoBest;
  std::vector<double> history_us_;
  // Best loop schedule found while assessing the committed layout of each
  // complex op (joint stage); seeds the loop-only stage.
  std::unordered_map<int, loop::LoopSchedule> joint_best_schedules_;
};

// Pretrains a layout PPO agent on small C2D and GMM workloads (paper §6) and
// returns its snapshot.
std::vector<double> PretrainLayoutAgent(const sim::Machine& machine, uint64_t seed = 99,
                                        int budget = 120);

}  // namespace alt::autotune

#endif  // ALT_AUTOTUNE_TUNER_H_

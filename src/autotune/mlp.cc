#include "src/autotune/mlp.h"

#include <cmath>

#include "src/support/status.h"

namespace alt::autotune {

Mlp::Mlp(int in_dim, int hidden, int out_dim, Rng& rng)
    : in_dim_(in_dim), hidden_(hidden), out_dim_(out_dim) {
  auto init = [&rng](Layer& l, int in, int out) {
    l.in = in;
    l.out = out;
    double scale = std::sqrt(2.0 / (in + out));
    l.w.resize(in * out);
    for (auto& v : l.w) {
      v = rng.NextGaussian() * scale;
    }
    l.b.assign(out, 0.0);
    l.gw.assign(in * out, 0.0);
    l.gb.assign(out, 0.0);
    l.mw.assign(in * out, 0.0);
    l.vw.assign(in * out, 0.0);
    l.mb.assign(out, 0.0);
    l.vb.assign(out, 0.0);
  };
  init(l1_, in_dim, hidden);
  init(l2_, hidden, hidden);
  init(l3_, hidden, out_dim);
}

std::vector<double> Mlp::LayerForward(const Layer& l, const std::vector<double>& x,
                                      bool tanh_act) const {
  std::vector<double> out(l.out);
  for (int o = 0; o < l.out; ++o) {
    double acc = l.b[o];
    const double* w = &l.w[o * l.in];
    for (int i = 0; i < l.in; ++i) {
      acc += w[i] * x[i];
    }
    out[o] = tanh_act ? std::tanh(acc) : acc;
  }
  return out;
}

std::vector<double> Mlp::Forward(const std::vector<double>& x) const {
  ALT_CHECK(static_cast<int>(x.size()) == in_dim_);
  auto h1 = LayerForward(l1_, x, true);
  auto h2 = LayerForward(l2_, h1, true);
  return LayerForward(l3_, h2, false);
}

void Mlp::Backward(const std::vector<double>& x, const std::vector<double>& grad_out) {
  // Recompute activations (cheap at this scale).
  auto h1 = LayerForward(l1_, x, true);
  auto h2 = LayerForward(l2_, h1, true);

  // Layer 3 (linear).
  std::vector<double> dh2(l2_.out, 0.0);
  for (int o = 0; o < l3_.out; ++o) {
    double g = grad_out[o];
    l3_.gb[o] += g;
    double* gw = &l3_.gw[o * l3_.in];
    const double* w = &l3_.w[o * l3_.in];
    for (int i = 0; i < l3_.in; ++i) {
      gw[i] += g * h2[i];
      dh2[i] += g * w[i];
    }
  }
  // Layer 2 (tanh).
  std::vector<double> dh1(l1_.out, 0.0);
  for (int o = 0; o < l2_.out; ++o) {
    double g = dh2[o] * (1.0 - h2[o] * h2[o]);
    l2_.gb[o] += g;
    double* gw = &l2_.gw[o * l2_.in];
    const double* w = &l2_.w[o * l2_.in];
    for (int i = 0; i < l2_.in; ++i) {
      gw[i] += g * h1[i];
      dh1[i] += g * w[i];
    }
  }
  // Layer 1 (tanh).
  for (int o = 0; o < l1_.out; ++o) {
    double g = dh1[o] * (1.0 - h1[o] * h1[o]);
    l1_.gb[o] += g;
    double* gw = &l1_.gw[o * l1_.in];
    for (int i = 0; i < l1_.in; ++i) {
      gw[i] += g * x[i];
    }
  }
}

void Mlp::AdamStep(double lr) {
  ++adam_t_;
  const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  double bc1 = 1.0 - std::pow(b1, adam_t_);
  double bc2 = 1.0 - std::pow(b2, adam_t_);
  auto step = [&](std::vector<double>& w, std::vector<double>& g, std::vector<double>& m,
                  std::vector<double>& v) {
    for (size_t i = 0; i < w.size(); ++i) {
      m[i] = b1 * m[i] + (1 - b1) * g[i];
      v[i] = b2 * v[i] + (1 - b2) * g[i] * g[i];
      w[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
      g[i] = 0.0;
    }
  };
  for (Layer* l : {&l1_, &l2_, &l3_}) {
    step(l->w, l->gw, l->mw, l->vw);
    step(l->b, l->gb, l->mb, l->vb);
  }
}

std::vector<double> Mlp::GetWeights() const {
  std::vector<double> out;
  for (const Layer* l : {&l1_, &l2_, &l3_}) {
    out.insert(out.end(), l->w.begin(), l->w.end());
    out.insert(out.end(), l->b.begin(), l->b.end());
  }
  return out;
}

void Mlp::SetWeights(const std::vector<double>& w) {
  size_t pos = 0;
  for (Layer* l : {&l1_, &l2_, &l3_}) {
    ALT_CHECK(pos + l->w.size() + l->b.size() <= w.size());
    std::copy(w.begin() + pos, w.begin() + pos + l->w.size(), l->w.begin());
    pos += l->w.size();
    std::copy(w.begin() + pos, w.begin() + pos + l->b.size(), l->b.begin());
    pos += l->b.size();
  }
}

}  // namespace alt::autotune

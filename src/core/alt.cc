#include "src/core/alt.h"

#include <map>
#include <memory>
#include <mutex>

#include "src/core/tuning_database.h"
#include "src/support/logging.h"

namespace alt::core {

const char* VariantName(AltVariant variant) {
  switch (variant) {
    case AltVariant::kFull:
      return "ALT";
    case AltVariant::kLoopOnly:
      return "ALT-OL";
    case AltVariant::kWithoutPropagation:
      return "ALT-WP";
  }
  return "?";
}

const std::vector<double>& SharedPretrainedAgent(const sim::Machine& machine) {
  static std::mutex mutex;
  static std::map<std::string, std::vector<double>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(machine.name);
  if (it == cache.end()) {
    it = cache.emplace(machine.name, autotune::PretrainLayoutAgent(machine)).first;
  }
  return it->second;
}

autotune::TuningOptions ToTuningOptions(const AltOptions& options,
                                        const sim::Machine& machine) {
  autotune::TuningOptions tuning;
  tuning.total_budget = options.budget;
  tuning.joint_fraction = options.joint_fraction;
  tuning.method = options.method;
  tuning.two_level_templates = options.two_level_templates;
  tuning.layout_relation_dedup = options.layout_relation_dedup;
  tuning.seed = options.seed;
  tuning.measure_threads = options.measure.threads;
  tuning.measure_cache = options.measure.cache;
  tuning.fault_injection = options.fault.injection;
  tuning.measure_retry = options.fault.retry;
  tuning.isolate_measurement = options.measure.isolate;
  tuning.measure_workers = options.measure.workers;
  tuning.measure_deadline_ms = options.measure.deadline_ms;
  tuning.worker_faults = options.fault.worker;
  tuning.trace_path = options.trace.path;
  switch (options.variant) {
    case AltVariant::kFull:
      break;
    case AltVariant::kLoopOnly:
      tuning.tune_layout = false;
      tuning.fixed_layout = autotune::FixedLayout::kChannelsLast;  // NHWO / NDHWO
      break;
    case AltVariant::kWithoutPropagation:
      tuning.propagate_multi_hop = false;
      break;
  }
  if (tuning.tune_layout && options.method == autotune::SearchMethod::kPpoPretrained) {
    tuning.pretrained_agent = &SharedPretrainedAgent(machine);
  }
  return tuning;
}

runtime::SessionOptions ToSessionOptions(const AltOptions& options) {
  runtime::SessionOptions session;
  session.exec.engine = options.engine;
  session.intra_threads = options.intra_threads;
  return session;
}

StatusOr<autotune::CompiledNetwork> RunTuner(const graph::Graph& graph,
                                             const sim::Machine& machine,
                                             const AltOptions& options,
                                             autotune::TuningOptions tuning) {
  std::unique_ptr<TuningDatabase> database;
  if (!options.measure.database.empty()) {
    auto db_or = TuningDatabase::Open(options.measure.database, machine);
    if (!db_or.ok()) {
      return db_or.status();
    }
    database = std::move(*db_or);
    tuning.measure_database = database.get();
    ALT_LOG(Info) << "tuning database " << options.measure.database << ": "
                  << database->stats().loaded << " measurement(s) for this machine";
  }
  autotune::JointTuner tuner(graph, machine, tuning);
  auto result = tuner.Tune();
  if (database != nullptr) {
    Status db_status = database->Close();
    if (!db_status.ok()) {
      // The run itself is fine; only its persistence is gone.
      ALT_LOG(Warning) << "tuning database " << options.measure.database
                       << " stopped recording: " << db_status.message();
    }
  }
  return result;
}

StatusOr<autotune::CompiledNetwork> Compile(const graph::Graph& graph,
                                            const sim::Machine& machine,
                                            const AltOptions& options) {
  return RunTuner(graph, machine, options, ToTuningOptions(options, machine));
}

}  // namespace alt::core

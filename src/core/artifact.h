// Versioned on-disk artifacts for tuned networks (the deployment half of the
// compile-once / serve-many split).
//
// A tuned CompiledNetwork is fully determined by four pieces — the tuned
// graph (including inserted conversion ops), the layout assignment, the
// fused groups, and the per-group loop schedules — because lowering
// (loop::LowerGroup) is a pure deterministic function of them. The artifact
// therefore serializes exactly those pieces plus tuning provenance, and
// LoadArtifact re-lowers: a saved network round-trips to bit-identical
// execution without storing any IR and without re-tuning.
//
// FILE FORMAT — text, one record per line, each line independently framed
// with the journal's CRC scheme (support/crc32: "<crc32-hex-8> <payload>"):
//
//   altart v1 gsig=<hex16>            header; format version + graph signature
//   machine <name>                    sim machine the network was tuned for
//   prov seed=.. budget=.. variant=.. method=.. best_us=<%.17g>
//        measurements=..              tuning provenance
//   net <name>                        graph name
//   tensor <id> <var|const> shape=<csv> name=<rest>
//   op <id> <kind> out=<id> in=<csv|-> conv=.. pool=.. padb=.. pada=..
//        scalar=<%.17g> axis=.. name=<rest>
//   layout <tensor-id> <primitives>   one per assigned layout sequence
//   group <anchor-id> fused=<csv|-> s=.. r=.. par=.. rot=.. unroll=..
//   kernel <key-hex16> size=<bytes> lines=<k>   (v2) native kernel object
//   kdata <hex>                       (v2) one chunk of the object's bytes
//   end n=<line-count>                trailer; line count excludes itself
//
// v2 extends v1 with an optional native-kernel section: the JIT-compiled
// shared objects (src/codegen) for the network's programs, keyed by the
// codegen cache key, so a loaded artifact serves under ExecEngine::kNative
// with zero recompiles. SaveArtifact emits v2 only when kernels are present
// (options.engine == kNative and the toolchain produced objects); otherwise
// it writes plain v1. LoadArtifact registers embedded kernels with the
// process-wide codegen::KernelCache; an object that fails to dlopen (e.g.
// saved on a different architecture) is skipped with a warning — kernels are
// an execution *strategy*, the re-lowered programs remain the source of
// truth and the native engine falls back per program.
//
// VERSIONING RULES — the version is bumped when a line's meaning changes;
// readers reject any version they don't know (unlike the tuning journal,
// which skips unknown RECORD KINDS — an artifact must reproduce execution
// exactly or not at all). Unknown versions, CRC failures, a missing or
// mismatched trailer (truncation), and a graph-signature mismatch are all
// InvalidArgument — never aborts, never a partially-loaded network.
//
// `gsig` is Fnv1a64 over the serialized graph section (net/tensor/op lines);
// LoadArtifact recomputes it from the lines it parsed and rejects the file
// when the header disagrees — a bit flip that survives all line CRCs (it
// cannot) or a hand-edited graph is caught before lowering.

#ifndef ALT_CORE_ARTIFACT_H_
#define ALT_CORE_ARTIFACT_H_

#include <cstdint>
#include <string>

#include "src/core/alt.h"

namespace alt::core {

// Provenance and identity carried by an artifact.
struct ArtifactInfo {
  int version = 1;
  uint64_t graph_signature = 0;
  std::string machine;
  uint64_t seed = 0;
  int budget = 0;
  AltVariant variant = AltVariant::kFull;
  autotune::SearchMethod method = autotune::SearchMethod::kPpoPretrained;
  // Best tuned latency (last point of the tuning curve); NaN when the run
  // produced no successful measurement.
  double best_latency_us = 0.0;
  int measurements_used = 0;
  // Native kernel objects delivered to the codegen::KernelCache by this load
  // (records whose object was registered or already resident; 0 for v1).
  int kernels = 0;
};

struct LoadedArtifact {
  ArtifactInfo info;
  // Re-lowered network: graph, assignment, groups, schedules, and programs
  // are fully populated; perf is re-estimated when the machine name is known
  // to this build, and the tuning curve / measure stats are empty (they
  // belong to the tuning run, not the artifact).
  autotune::CompiledNetwork network;
};

// Stable signature of a graph's structure (the exact serialized graph
// section an artifact would carry). Two graphs with equal signatures
// serialize identically — same tensors, shapes, ops, attributes, and names.
uint64_t GraphSignature(const graph::Graph& graph);

// Stable signature of a graph's SERVING INTERFACE: the (name, canonical
// shape) of every graph input and constant, in tensor order. Unlike
// GraphSignature it is invariant under retuning — inserted conversion ops,
// layout changes, and schedule changes don't alter it — so the serving
// front-end uses it to decide whether a freshly tuned artifact can hot-swap
// in for a live model (same clients, same request format).
uint64_t InterfaceSignature(const graph::Graph& graph);

// Writes `network` (+ provenance from `options`) to `path`, atomically
// replacing any existing file contents.
Status SaveArtifact(const autotune::CompiledNetwork& network, const sim::Machine& machine,
                    const AltOptions& options, const std::string& path);

// Parses, validates, and re-lowers an artifact. Any corruption, version or
// signature mismatch, or structurally invalid content yields a Status.
StatusOr<LoadedArtifact> LoadArtifact(const std::string& path);

}  // namespace alt::core

#endif  // ALT_CORE_ARTIFACT_H_

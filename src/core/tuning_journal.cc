#include "src/core/tuning_journal.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string_view>

#include "src/ir/tensor.h"
#include "src/loop/serialization.h"
#include "src/support/crc32.h"
#include "src/support/logging.h"
#include "src/support/metrics.h"
#include "src/support/string_util.h"
#include "src/support/trace.h"

namespace alt::core {

namespace {

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);  // round-trips bit-exactly
  return buf;
}

std::string FormatU64Hex(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

// Parses a 16-digit hex field starting at `s`; advances `s` past it.
bool ParseU64Hex(const char** s, uint64_t* out) {
  char* end = nullptr;
  uint64_t v = std::strtoull(*s, &end, 16);
  if (end != *s + 16) {
    return false;
  }
  *s = end;
  *out = v;
  return true;
}

bool ConsumePrefix(const char** s, const char* prefix) {
  size_t len = std::strlen(prefix);
  if (std::strncmp(*s, prefix, len) != 0) {
    return false;
  }
  *s += len;
  return true;
}

// Applies one verified payload to `out`. Returns false when the line is
// structurally broken in a way CRC cannot catch (it can't — the CRC covers
// the payload — so false here means an incompatible header, which ends the
// valid prefix just like corruption would).
bool ApplyPayload(const std::string& payload, bool first, TuningJournalContents* out) {
  const char* s = payload.c_str();
  if (first) {
    if (!ConsumePrefix(&s, "journal v1 fp=") || !ParseU64Hex(&s, &out->fingerprint)) {
      return false;  // missing or unsupported header: nothing is trustworthy
    }
    out->has_header = true;
    return true;
  }
  if (ConsumePrefix(&s, "measure ")) {
    uint64_t site = 0;
    if (!ParseU64Hex(&s, &site)) {
      return false;
    }
    if (ConsumePrefix(&s, " ok ")) {
      char* end = nullptr;
      double latency = std::strtod(s, &end);
      if (end == s) {
        return false;
      }
      out->replay.ok[site] = latency;
    } else if (ConsumePrefix(&s, " fail")) {
      out->replay.failed.insert(site);
    } else {
      return false;
    }
    ++out->measure_lines;
    return true;
  }
  if (ConsumePrefix(&s, "commit ")) {
    ++out->commit_lines;  // informational; replay does not need the fields
    return true;
  }
  if (ConsumePrefix(&s, "phase ")) {
    ++out->phase_lines;  // informational; replay does not need the name
    return true;
  }
  if (ConsumePrefix(&s, "batch spent=")) {
    // Checked parse: a spent count that is non-numeric or does not fit an int
    // (e.g. a journal damaged into "spent=99999999999999999999") is a corrupt
    // record, rejected like any other, never silently truncated.
    const char* sep = std::strstr(s, " best=");
    if (sep == nullptr) {
      return false;
    }
    StatusOr<int> spent = ParseInt32(std::string(s, sep));
    if (!spent.ok()) {
      return false;
    }
    s = sep + std::strlen(" best=");
    char* end = nullptr;
    double best = std::strtod(s, &end);
    if (end == s) {
      return false;
    }
    out->last_spent = *spent;
    out->last_best_us = best;
    ++out->batch_lines;
    return true;
  }
  return true;  // unknown record kind written by a newer version: skip
}

}  // namespace

uint64_t TuningFingerprint(const graph::Graph& graph, const sim::Machine& machine,
                           const AltOptions& options) {
  std::ostringstream oss;
  oss << "net=" << graph.name() << ";machine=" << machine.name << ";ops=";
  for (const auto& op : graph.ops()) {
    oss << static_cast<int>(op.kind) << ":";
    for (int in : op.inputs) {
      oss << in << ",";
    }
    oss << ">" << op.output << ";";
  }
  oss << "tensors=";
  for (const auto& t : graph.tensors()) {
    oss << ir::ShapeToString(t.shape) << ";";
  }
  // Every trajectory-affecting option. measure.threads is intentionally
  // absent (see header); wall-clock-only knobs like backoff_base_ms are
  // included anyway for simplicity — changing them mid-run is unusual enough
  // that refusing to resume is the safer default.
  oss << "budget=" << options.budget << ";jf=" << FormatDouble(options.joint_fraction)
      << ";variant=" << static_cast<int>(options.variant)
      << ";method=" << static_cast<int>(options.method)
      << ";two_level=" << (options.two_level_templates ? 1 : 0)
      << ";seed=" << options.seed << ";cache=" << (options.measure.cache ? 1 : 0)
      << ";frate=" << FormatDouble(options.fault.injection.failure_rate)
      << ";fseed=" << options.fault.injection.seed
      << ";ffirst=" << options.fault.injection.always_fail_first
      << ";retries=" << options.fault.retry.max_attempts
      << ";backoff=" << options.fault.retry.backoff_base_ms << ","
      << options.fault.retry.backoff_cap_ms;
  return Fnv1a64(oss.str());
}

StatusOr<TuningJournalContents> LoadTuningJournal(const std::string& path) {
  auto data_or = ReadFile(path);
  if (!data_or.ok()) {
    return data_or.status();
  }
  const std::string& data = *data_or;
  TuningJournalContents out;
  size_t pos = 0;
  bool first = true;
  while (pos < data.size()) {
    size_t nl = data.find('\n', pos);
    if (nl == std::string::npos) {
      break;  // torn final line (no terminator): part of the discarded tail
    }
    std::string payload;
    if (!UnframeLine(std::string_view(data).substr(pos, nl - pos), &payload) ||
        !ApplyPayload(payload, first, &out)) {
      break;  // first bad line ends the valid prefix
    }
    first = false;
    pos = nl + 1;
    out.valid_bytes = static_cast<int64_t>(pos);
  }
  out.discarded_bytes = static_cast<int64_t>(data.size()) - out.valid_bytes;
  return out;
}

StatusOr<TuningJournalWriter> TuningJournalWriter::Open(
    const std::string& path, uint64_t fingerprint, bool write_header,
    const TuningJournalOptions& journal_options) {
  auto file = AppendWriter::Open(path);
  if (!file.ok()) {
    return file.status();
  }
  TuningJournalWriter writer;
  writer.writer_ = std::move(*file);
  writer.options_ = journal_options;
  if (write_header) {
    writer.Append("journal v1 fp=" + FormatU64Hex(fingerprint));
    if (!writer.status_.ok()) {
      return writer.status_;
    }
  }
  return writer;
}

void TuningJournalWriter::Append(const std::string& payload) {
  if (!status_.ok()) {
    return;  // sticky failure: journal is dead, tuning proceeds unjournaled
  }
  const std::string framed = FrameLine(payload);
  // AppendLine write+flushes, so this histogram is the per-record durability
  // cost — the journal's share of tuning wall time (bench_tuning_resume
  // budgets it at <2%).
  static Counter& lines = MetricsRegistry::Global().counter("journal.lines");
  static Counter& bytes = MetricsRegistry::Global().counter("journal.bytes");
  static Histogram& append_us = MetricsRegistry::Global().histogram("journal.append_us");
  const int64_t start_ns = TraceRecorder::NowNs();
  status_ = writer_.AppendLine(framed);
  append_us.Observe(static_cast<double>(TraceRecorder::NowNs() - start_ns) * 1e-3);
  if (status_.ok()) {
    lines.Add();
    bytes.Add(static_cast<int64_t>(framed.size()) + 1);  // +1: newline
    ++lines_appended_;
    if (options_.fsync_every_n_lines > 0 &&
        lines_appended_ % options_.fsync_every_n_lines == 0) {
      static Counter& fsyncs = MetricsRegistry::Global().counter("journal.fsyncs");
      status_ = writer_.Sync();
      if (status_.ok()) {
        fsyncs.Add();
      }
    }
  }
}

void TuningJournalWriter::OnMeasured(const std::string& key,
                                     const autotune::MeasureResult& result) {
  std::string payload = "measure " + FormatU64Hex(Fnv1a64(key));
  if (result.status.ok()) {
    payload += " ok " + FormatDouble(result.latency_us);
  } else {
    payload += " fail";
  }
  Append(payload);
}

void TuningJournalWriter::OnLayoutCommitted(int op_id,
                                            const autotune::DecodedLayouts& layouts,
                                            const loop::LoopSchedule* best_schedule) {
  std::ostringstream oss;
  oss << "commit " << op_id << "|" << loop::EncodeLayoutSeq(layouts.output) << "|"
      << loop::EncodeLayoutSeq(layouts.input) << "|" << loop::EncodeLayoutSeq(layouts.weight)
      << "|" << (best_schedule != nullptr ? loop::EncodeSchedule(*best_schedule) : "-");
  Append(oss.str());
}

void TuningJournalWriter::OnBatchDone(int spent, double best_us) {
  Append("batch spent=" + std::to_string(spent) + " best=" + FormatDouble(best_us));
}

void TuningJournalWriter::OnPhase(const std::string& phase) { Append("phase " + phase); }

StatusOr<autotune::CompiledNetwork> CompileWithJournal(
    const graph::Graph& graph, const sim::Machine& machine, const AltOptions& options,
    const std::string& journal_path, const TuningJournalOptions& journal_options) {
  const uint64_t fingerprint = TuningFingerprint(graph, machine, options);
  TuningJournalContents contents;
  if (FileExists(journal_path)) {
    auto loaded = LoadTuningJournal(journal_path);
    if (!loaded.ok()) {
      return loaded.status();
    }
    contents = std::move(*loaded);
    if (contents.has_header && contents.fingerprint != fingerprint) {
      return Status::InvalidArgument(
          "tuning journal " + journal_path +
          " was written for a different (graph, machine, options) configuration; "
          "refusing to resume from it");
    }
    if (contents.discarded_bytes > 0) {
      ALT_LOG(Warning) << "tuning journal " << journal_path << ": discarding "
                       << contents.discarded_bytes << " corrupt trailing byte(s), keeping "
                       << contents.valid_bytes;
    }
    // Cut the torn tail (or everything, when even the header is unusable) so
    // new lines append cleanly after the valid prefix.
    ALT_RETURN_IF_ERROR(TruncateFile(journal_path, contents.valid_bytes));
  }

  auto writer_or = TuningJournalWriter::Open(journal_path, fingerprint,
                                             /*write_header=*/!contents.has_header,
                                             journal_options);
  if (!writer_or.ok()) {
    return writer_or.status();
  }
  TuningJournalWriter writer = std::move(*writer_or);

  autotune::TuningOptions tuning = ToTuningOptions(options, machine);
  if (!contents.replay.empty()) {
    tuning.measure_replay = &contents.replay;
    ALT_LOG(Info) << "resuming from " << journal_path << ": replaying "
                  << contents.replay.size() << " journaled measurement(s)";
  }
  tuning.event_sink = &writer;
  auto result = RunTuner(graph, machine, options, std::move(tuning));
  if (!writer.status().ok()) {
    // The run itself is fine; only its crash insurance is gone.
    ALT_LOG(Warning) << "tuning journal " << journal_path
                     << " stopped recording: " << writer.status().message();
  }
  return result;
}

StatusOr<autotune::CompiledNetwork> CompileWithJournal(const graph::Graph& graph,
                                                       const sim::Machine& machine,
                                                       const AltOptions& options,
                                                       const std::string& journal_path) {
  return CompileWithJournal(graph, machine, options, journal_path, TuningJournalOptions{});
}

StatusOr<autotune::CompiledNetwork> ResumeFromJournal(const graph::Graph& graph,
                                                      const sim::Machine& machine,
                                                      const AltOptions& options,
                                                      const std::string& journal_path) {
  if (!FileExists(journal_path)) {
    return Status::NotFound("no tuning journal at " + journal_path);
  }
  auto loaded = LoadTuningJournal(journal_path);
  if (!loaded.ok()) {
    return loaded.status();
  }
  if (!loaded->has_header) {
    return Status::InvalidArgument("tuning journal " + journal_path +
                                   " has no valid header; cannot resume from it");
  }
  return CompileWithJournal(graph, machine, options, journal_path);
}

}  // namespace alt::core

// Crash-safe tuning journal with deterministic resume (replay-based).
//
// A tuning run is a long computation whose only expensive step — lowering a
// candidate and running the analytic cost model over it — is a pure function
// of its inputs. The journal exploits that: instead of snapshotting tuner
// state (PPO weights, GBT forest, RNG cursor, budget counters — all of which
// would have to stay bit-compatible forever), it records the OUTCOME of every
// fresh measurement as it happens. Resume then simply re-runs the tuner from
// the start with the same seed; journaled measurements are answered from a
// replay log (autotune::MeasureReplayLog) instead of being re-executed, so
// the trajectory — every budget decrement, reward, cost-model training row —
// is reproduced exactly and cheaply up to the crash point, after which tuning
// continues live. A resumed run therefore produces a CompiledNetwork
// bit-identical to an uninterrupted run with the same options.
//
// FILE FORMAT — text, one record per line, each line independently framed:
//
//   <crc32-hex-8> <payload>\n
//
// where the checksum covers exactly <payload>. Payloads:
//
//   journal v1 fp=<fingerprint-hex-16>        header; fingerprint of
//                                             (graph, machine, options)
//   measure <site-hex-16> ok <latency %.17g>  fresh successful measurement
//   measure <site-hex-16> fail                persistent measurement failure
//   commit <op>|<out>|<in>|<weight>|<sched>   joint stage committed layouts
//   batch spent=<n> best=<%.17g>              loop-batch progress marker
//   phase <name>                              tuner phase marker (joint/...)
//
// A batch line written before any successful complex-group measurement
// carries best=nan ("no result yet"); the tuner never reports its internal
// 1e30 sentinel. Commit, batch, and phase lines are informational — replay
// correctness needs only the measure lines.
//
// `site` is Fnv1a64 of the full measurement cache key; `%.17g` round-trips
// doubles bit-exactly. The writer flushes after every line, so on a crash the
// file is a valid journal plus at most one torn final line. The reader stops
// at the first line whose checksum (or framing) fails and reports the number
// of valid bytes; resume truncates the file to that prefix before appending.

#ifndef ALT_CORE_TUNING_JOURNAL_H_
#define ALT_CORE_TUNING_JOURNAL_H_

#include <cstdint>
#include <string>

#include "src/core/alt.h"
#include "src/support/fileio.h"

namespace alt::core {

// Everything recoverable from a journal file.
struct TuningJournalContents {
  bool has_header = false;
  uint64_t fingerprint = 0;
  autotune::MeasureReplayLog replay;
  int64_t measure_lines = 0;
  int64_t commit_lines = 0;
  int64_t batch_lines = 0;
  int64_t phase_lines = 0;
  int last_spent = 0;        // from the last batch line
  double last_best_us = 0;   // from the last batch line
  int64_t valid_bytes = 0;   // prefix that parsed and checksummed cleanly
  int64_t discarded_bytes = 0;  // torn/corrupt tail (0 for a clean file)
};

// Stable fingerprint of everything the tuning trajectory depends on: the
// graph structure, the machine, and every trajectory-affecting option.
// Deliberately EXCLUDES measure.threads — the engine reduces measurements in
// candidate order, so any thread count replays the same trajectory and a
// journal written with 8 threads may be resumed with 1. The isolation knobs
// (measure.isolate / workers / deadline_ms) and the tuning-database path are
// excluded for the same reason: the isolated path is trajectory-identical to
// in-process measurement, and database hits use replay semantics, so flipping
// them between runs cannot change what the journal would record.
uint64_t TuningFingerprint(const graph::Graph& graph, const sim::Machine& machine,
                           const AltOptions& options);

// Parses `path`, tolerating a torn or corrupt tail: the first line that fails
// framing or checksum ends the valid prefix and everything after it is
// reported in `discarded_bytes`, never an error. Only a missing/unreadable
// file is an error.
StatusOr<TuningJournalContents> LoadTuningJournal(const std::string& path);

// Durability knobs for the journal writer.
struct TuningJournalOptions {
  // Every Nth appended line is forced to stable storage (fflush + fsync).
  // AppendLine alone flushes to the kernel, which survives a crash of this
  // process but not a power loss. <= 0 (default) never fsyncs — the right
  // tradeoff for tuning runs, where losing the tail costs only re-measuring
  // it. Sync failures are sticky like write failures.
  int fsync_every_n_lines = 0;
};

// TuningEventSink that appends journal lines. Write errors (disk full, file
// deleted) are sticky and silent: the first failure is recorded in status()
// and later events are ignored — a broken journal must never abort or skew
// the tuning run it observes.
class TuningJournalWriter : public autotune::TuningEventSink {
 public:
  // Opens `path` for appending. When `write_header` is set, a fresh header
  // line carrying `fingerprint` is written immediately (pass false when
  // appending to a journal that already has one).
  static StatusOr<TuningJournalWriter> Open(const std::string& path, uint64_t fingerprint,
                                            bool write_header,
                                            const TuningJournalOptions& journal_options = {});

  void OnMeasured(const std::string& key, const autotune::MeasureResult& result) override;
  void OnLayoutCommitted(int op_id, const autotune::DecodedLayouts& layouts,
                         const loop::LoopSchedule* best_schedule) override;
  void OnBatchDone(int spent, double best_us) override;
  void OnPhase(const std::string& phase) override;

  // First write error, if any. Ok while everything has been durably written.
  const Status& status() const { return status_; }

 private:
  TuningJournalWriter() = default;

  void Append(const std::string& payload);

  AppendWriter writer_;
  Status status_ = Status::Ok();
  TuningJournalOptions options_;
  int64_t lines_appended_ = 0;
};

// Compiles `graph`, journaling every fresh measurement to `journal_path`.
//
//   * No file at `journal_path`: identical to core::Compile, plus the journal.
//   * A valid journal for the same fingerprint: its measurements are replayed
//     (spending budget exactly as the original run did) and tuning continues
//     live from where the journaled run stopped; the result is identical to
//     an uninterrupted run. A torn/corrupt tail is truncated away first.
//   * A journal for a DIFFERENT fingerprint: InvalidArgument — resuming a
//     different workload's journal would silently corrupt the search.
StatusOr<autotune::CompiledNetwork> CompileWithJournal(const graph::Graph& graph,
                                                       const sim::Machine& machine,
                                                       const AltOptions& options,
                                                       const std::string& journal_path,
                                                       const TuningJournalOptions& journal_options);
StatusOr<autotune::CompiledNetwork> CompileWithJournal(const graph::Graph& graph,
                                                       const sim::Machine& machine,
                                                       const AltOptions& options,
                                                       const std::string& journal_path);

// Strict-resume variant: requires `journal_path` to exist and contain a valid
// header (NotFound / InvalidArgument otherwise), then behaves exactly like
// CompileWithJournal.
StatusOr<autotune::CompiledNetwork> ResumeFromJournal(const graph::Graph& graph,
                                                      const sim::Machine& machine,
                                                      const AltOptions& options,
                                                      const std::string& journal_path);

}  // namespace alt::core

#endif  // ALT_CORE_TUNING_JOURNAL_H_

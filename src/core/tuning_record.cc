#include "src/core/tuning_record.h"

#include <sstream>

#include "src/autotune/space.h"
#include "src/support/string_util.h"

namespace alt::core {

using layout::LayoutSeq;
using layout::Primitive;
using layout::PrimitiveKind;

namespace {

std::string EncodePrimitive(const Primitive& p) {
  std::ostringstream oss;
  switch (p.kind) {
    case PrimitiveKind::kSplit:
      oss << "split:" << p.dim << ":" << Join(p.factors, ",");
      break;
    case PrimitiveKind::kReorder:
      oss << "reorder:" << Join(p.perm, ",");
      break;
    case PrimitiveKind::kFuse:
      oss << "fuse:" << p.dim << ":" << p.num_dims;
      break;
    case PrimitiveKind::kUnfold:
      oss << "unfold:" << p.dim << ":" << p.tile_size << ":" << p.stride;
      break;
    case PrimitiveKind::kPad:
      oss << "pad:" << p.dim << ":" << p.pad_before << ":" << p.pad_after;
      break;
    case PrimitiveKind::kStoreAt:
      oss << "store_at:" << p.store_src_tensor << ":" << p.dim;
      break;
  }
  return oss.str();
}

std::vector<int64_t> ParseInts(const std::string& s) {
  std::vector<int64_t> out;
  for (const auto& part : Split(s, ',')) {
    if (!part.empty()) {
      out.push_back(std::stoll(part));
    }
  }
  return out;
}

StatusOr<Primitive> DecodePrimitive(const std::string& text) {
  auto fields = Split(text, ':');
  if (fields.empty()) {
    return Status::InvalidArgument("empty primitive");
  }
  const std::string& kind = fields[0];
  if (kind == "split" && fields.size() == 3) {
    return Primitive::Split(std::stoi(fields[1]), ParseInts(fields[2]));
  }
  if (kind == "reorder" && fields.size() == 2) {
    std::vector<int> perm;
    for (int64_t v : ParseInts(fields[1])) {
      perm.push_back(static_cast<int>(v));
    }
    return Primitive::Reorder(perm);
  }
  if (kind == "fuse" && fields.size() == 3) {
    return Primitive::Fuse(std::stoi(fields[1]), std::stoi(fields[2]));
  }
  if (kind == "unfold" && fields.size() == 4) {
    return Primitive::Unfold(std::stoi(fields[1]), std::stoll(fields[2]),
                             std::stoll(fields[3]));
  }
  if (kind == "pad" && fields.size() == 4) {
    return Primitive::Pad(std::stoi(fields[1]), std::stoll(fields[2]), std::stoll(fields[3]));
  }
  if (kind == "store_at" && fields.size() == 3) {
    return Primitive::StoreAt(std::stoi(fields[1]), std::stoi(fields[2]));
  }
  return Status::InvalidArgument("unparsable primitive: " + text);
}

}  // namespace

std::string SerializeTuningRecord(const autotune::CompiledNetwork& compiled) {
  std::ostringstream oss;
  oss << "# ALT tuning record v1\n";
  oss << "# network: " << compiled.graph.name() << "\n";
  for (const auto& t : compiled.graph.tensors()) {
    const LayoutSeq& seq = compiled.assignment.Get(t.id);
    if (seq.empty()) {
      continue;
    }
    oss << "layout " << t.name;
    for (const auto& p : seq.primitives()) {
      oss << " " << EncodePrimitive(p);
    }
    oss << "\n";
  }
  for (size_t i = 0; i < compiled.groups.size() && i < compiled.schedules.size(); ++i) {
    const auto& sched = compiled.schedules[i];
    oss << "schedule " << compiled.graph.op(compiled.groups[i].anchor_op).name;
    oss << " s=";
    for (size_t j = 0; j < sched.spatial.size(); ++j) {
      if (j > 0) {
        oss << ";";
      }
      oss << sched.spatial[j].outer << "," << sched.spatial[j].mid << ","
          << sched.spatial[j].inner << "," << sched.spatial[j].vec;
    }
    oss << " r=";
    for (size_t j = 0; j < sched.reduction.size(); ++j) {
      if (j > 0) {
        oss << ";";
      }
      oss << sched.reduction[j].outer << "," << sched.reduction[j].inner;
    }
    oss << " par=" << sched.parallel_axes << " rot=" << sched.inner_order_rotation
        << " unroll=" << (sched.unroll_inner_reduction ? 1 : 0) << "\n";
  }
  return oss.str();
}

StatusOr<TuningRecord> ParseTuningRecord(const std::string& text) {
  TuningRecord record;
  std::istringstream iss(text);
  std::string line;
  while (std::getline(iss, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    auto tokens = Split(line, ' ');
    if (tokens.size() < 2) {
      return Status::InvalidArgument("malformed record line: " + line);
    }
    if (tokens[0] == "layout") {
      LayoutSeq seq;
      for (size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i].empty()) {
          continue;
        }
        auto prim = DecodePrimitive(tokens[i]);
        if (!prim.ok()) {
          return prim.status();
        }
        seq.Append(*prim);
      }
      record.layouts.push_back({tokens[1], std::move(seq)});
    } else if (tokens[0] == "schedule") {
      loop::LoopSchedule sched;
      for (size_t i = 2; i < tokens.size(); ++i) {
        auto kv = Split(tokens[i], '=');
        if (kv.size() != 2) {
          continue;
        }
        if (kv[0] == "s") {
          for (const auto& axis : Split(kv[1], ';')) {
            auto parts = ParseInts(axis);
            if (parts.size() != 4) {
              return Status::InvalidArgument("bad spatial axis: " + axis);
            }
            sched.spatial.push_back({parts[0], parts[1], parts[2], parts[3]});
          }
        } else if (kv[0] == "r") {
          for (const auto& axis : Split(kv[1], ';')) {
            if (axis.empty()) {
              continue;
            }
            auto parts = ParseInts(axis);
            if (parts.size() != 2) {
              return Status::InvalidArgument("bad reduction axis: " + axis);
            }
            sched.reduction.push_back({parts[0], parts[1]});
          }
        } else if (kv[0] == "par") {
          sched.parallel_axes = std::stoi(kv[1]);
        } else if (kv[0] == "rot") {
          sched.inner_order_rotation = std::stoi(kv[1]);
        } else if (kv[0] == "unroll") {
          sched.unroll_inner_reduction = kv[1] == "1";
        }
      }
      record.schedules[tokens[1]] = std::move(sched);
    } else {
      return Status::InvalidArgument("unknown record directive: " + tokens[0]);
    }
  }
  return record;
}

StatusOr<autotune::CompiledNetwork> ApplyTuningRecord(const graph::Graph& graph,
                                                      const sim::Machine& machine,
                                                      const TuningRecord& record) {
  autotune::CompiledNetwork result;
  result.graph = graph;
  graph::Graph& g = result.graph;
  graph::LayoutAssignment& assignment = result.assignment;

  auto find_tensor = [&](const std::string& name) -> int {
    for (const auto& t : g.tensors()) {
      if (t.name == name) {
        return t.id;
      }
    }
    return -1;
  };

  for (const auto& [name, seq] : record.layouts) {
    int id = find_tensor(name);
    if (id >= 0) {
      assignment.Set(id, seq);
      continue;
    }
    // "<base>_cvt": the tuning run inserted a conversion op; re-create it
    // on the complex consumers of the base tensor.
    const std::string suffix = "_cvt";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      int base = find_tensor(name.substr(0, name.size() - suffix.size()));
      if (base >= 0) {
        bool inserted = false;
        for (int consumer : g.ConsumersOf(base)) {
          if (!graph::IsComplex(g.op(consumer).kind)) {
            continue;
          }
          for (size_t i = 0; i < g.op(consumer).inputs.size(); ++i) {
            if (g.op(consumer).inputs[i] == base) {
              graph::RequestInputLayout(g, assignment, consumer, static_cast<int>(i), seq);
              inserted = true;
            }
          }
        }
        if (inserted) {
          continue;
        }
      }
    }
    return Status::NotFound("record references unknown tensor '" + name +
                            "' — wrong network?");
  }

  result.groups = loop::PartitionGraph(g, assignment, true);
  for (const auto& group : result.groups) {
    auto sig = loop::GroupSignature(g, assignment, group);
    if (!sig.ok()) {
      return sig.status();
    }
    loop::LoopSchedule sched;
    auto it = record.schedules.find(g.op(group.anchor_op).name);
    if (it != record.schedules.end() &&
        it->second.spatial.size() == sig->spatial_extents.size() &&
        it->second.reduction.size() == sig->reduction_extents.size()) {
      sched = it->second;
    } else {
      sched = autotune::LoopSpace::Default(*sig, machine);
    }
    auto program = loop::LowerGroup(g, assignment, group, sched);
    if (!program.ok()) {
      // Row ops and schedule mismatches fall back to the naive lowering.
      program = loop::LowerGroupNaive(g, assignment, group);
      if (!program.ok()) {
        return program.status();
      }
      sched = loop::LoopSchedule::Naive(sig->spatial_extents, sig->reduction_extents);
    }
    result.schedules.push_back(sched);
    result.programs.push_back(std::move(*program));
  }
  result.perf = sim::EstimatePrograms(result.programs, machine);
  return result;
}

}  // namespace alt::core

#include "src/core/tuning_record.h"

#include <sstream>

#include "src/autotune/space.h"
#include "src/loop/serialization.h"
#include "src/support/string_util.h"

namespace alt::core {

using layout::LayoutSeq;
using loop::DecodePrimitive;
using loop::DecodeScheduleToken;
using loop::EncodePrimitive;
using loop::EncodeSchedule;

std::string SerializeTuningRecord(const autotune::CompiledNetwork& compiled) {
  std::ostringstream oss;
  oss << "# ALT tuning record v1\n";
  oss << "# network: " << compiled.graph.name() << "\n";
  for (const auto& t : compiled.graph.tensors()) {
    const LayoutSeq& seq = compiled.assignment.Get(t.id);
    if (seq.empty()) {
      continue;
    }
    oss << "layout " << t.name;
    for (const auto& p : seq.primitives()) {
      oss << " " << EncodePrimitive(p);
    }
    oss << "\n";
  }
  for (size_t i = 0; i < compiled.groups.size() && i < compiled.schedules.size(); ++i) {
    oss << "schedule " << compiled.graph.op(compiled.groups[i].anchor_op).name << " "
        << EncodeSchedule(compiled.schedules[i]) << "\n";
  }
  return oss.str();
}

StatusOr<TuningRecord> ParseTuningRecord(const std::string& text) {
  TuningRecord record;
  std::istringstream iss(text);
  std::string line;
  while (std::getline(iss, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    auto tokens = Split(line, ' ');
    if (tokens.size() < 2) {
      return Status::InvalidArgument("malformed record line: " + line);
    }
    if (tokens[0] == "layout") {
      LayoutSeq seq;
      for (size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i].empty()) {
          continue;
        }
        auto prim = DecodePrimitive(tokens[i]);
        if (!prim.ok()) {
          return prim.status();
        }
        seq.Append(*prim);
      }
      record.layouts.push_back({tokens[1], std::move(seq)});
    } else if (tokens[0] == "schedule") {
      loop::LoopSchedule sched;
      for (size_t i = 2; i < tokens.size(); ++i) {
        auto kv = Split(tokens[i], '=');
        if (kv.size() != 2) {
          continue;
        }
        ALT_RETURN_IF_ERROR(DecodeScheduleToken(kv[0], kv[1], sched));
      }
      // The token grammar accepts any integers; reject structurally invalid
      // schedules (zero/negative tile factors, wild axis counts) here, at the
      // untrusted-text boundary.
      ALT_RETURN_IF_ERROR(loop::ValidateSchedule(sched));
      record.schedules[tokens[1]] = std::move(sched);
    } else {
      return Status::InvalidArgument("unknown record directive: " + tokens[0]);
    }
  }
  return record;
}

StatusOr<autotune::CompiledNetwork> ApplyTuningRecord(const graph::Graph& graph,
                                                      const sim::Machine& machine,
                                                      const TuningRecord& record) {
  autotune::CompiledNetwork result;
  result.graph = graph;
  graph::Graph& g = result.graph;
  graph::LayoutAssignment& assignment = result.assignment;

  auto find_tensor = [&](const std::string& name) -> int {
    for (const auto& t : g.tensors()) {
      if (t.name == name) {
        return t.id;
      }
    }
    return -1;
  };

  for (const auto& [name, seq] : record.layouts) {
    int id = find_tensor(name);
    if (id >= 0) {
      assignment.Set(id, seq);
      // A layout that cannot be applied to this tensor's shape (e.g. a split
      // on a nonexistent dim from a record for a different-sized network)
      // must fail here with context, not deep inside lowering.
      auto phys = assignment.PhysicalShape(g, id);
      if (!phys.ok()) {
        return Status::InvalidArgument("record layout for tensor '" + name +
                                       "' does not apply to its shape: " +
                                       phys.status().message());
      }
      continue;
    }
    // "<base>_cvt": the tuning run inserted a conversion op; re-create it
    // on the complex consumers of the base tensor.
    const std::string suffix = "_cvt";
    if (name.size() > suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      int base = find_tensor(name.substr(0, name.size() - suffix.size()));
      if (base >= 0) {
        bool inserted = false;
        for (int consumer : g.ConsumersOf(base)) {
          if (!graph::IsComplex(g.op(consumer).kind)) {
            continue;
          }
          for (size_t i = 0; i < g.op(consumer).inputs.size(); ++i) {
            if (g.op(consumer).inputs[i] == base) {
              graph::RequestInputLayout(g, assignment, consumer, static_cast<int>(i), seq);
              inserted = true;
            }
          }
        }
        if (inserted) {
          continue;
        }
      }
    }
    return Status::InvalidArgument("record references unknown tensor '" + name +
                                   "' — wrong network?");
  }

  // Every schedule must name an op of this graph; a silent skip would make a
  // record for the wrong network "apply" cleanly with default schedules.
  for (const auto& [op_name, sched] : record.schedules) {
    bool known = false;
    for (const auto& op : g.ops()) {
      if (op.name == op_name) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("record references unknown op '" + op_name +
                                     "' — wrong network?");
    }
    ALT_RETURN_IF_ERROR(loop::ValidateSchedule(sched));
  }

  result.groups = loop::PartitionGraph(g, assignment, true);
  for (const auto& group : result.groups) {
    auto sig = loop::GroupSignature(g, assignment, group);
    if (!sig.ok()) {
      return sig.status();
    }
    loop::LoopSchedule sched;
    auto it = record.schedules.find(g.op(group.anchor_op).name);
    if (it != record.schedules.end() &&
        it->second.spatial.size() == sig->spatial_extents.size() &&
        it->second.reduction.size() == sig->reduction_extents.size()) {
      sched = it->second;
    } else {
      sched = autotune::LoopSpace::Default(*sig, machine);
    }
    auto program = loop::LowerGroup(g, assignment, group, sched);
    if (!program.ok()) {
      // Row ops and schedule mismatches fall back to the naive lowering.
      program = loop::LowerGroupNaive(g, assignment, group);
      if (!program.ok()) {
        return program.status();
      }
      sched = loop::LoopSchedule::Naive(sig->spatial_extents, sig->reduction_extents);
    }
    result.schedules.push_back(sched);
    result.programs.push_back(std::move(*program));
  }
  result.perf = sim::EstimatePrograms(result.programs, machine);
  return result;
}

}  // namespace alt::core

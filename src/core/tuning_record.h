// Tuning records: serialize the outcome of a tuning run (layout assignment +
// per-group loop schedules) to a text format and re-apply it later without
// re-searching — the equivalent of TVM/Ansor tuning logs, and what lets a
// deployment reuse the 12–16 h tuning investment the paper describes.
//
// Records are keyed by tensor and operator NAMES, so they apply to any graph
// built the same way (e.g. the same network at the same batch size).
// Conversion operators inserted during tuning are re-created on apply.

#ifndef ALT_CORE_TUNING_RECORD_H_
#define ALT_CORE_TUNING_RECORD_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/autotune/tuner.h"

namespace alt::core {

struct TuningRecord {
  // Layout primitive sequences keyed by tensor name.
  std::vector<std::pair<std::string, layout::LayoutSeq>> layouts;
  // Loop schedules keyed by anchor-op name; missing groups use defaults.
  std::unordered_map<std::string, loop::LoopSchedule> schedules;
};

// Serializes layouts and schedules of a compiled network.
std::string SerializeTuningRecord(const autotune::CompiledNetwork& compiled);

StatusOr<TuningRecord> ParseTuningRecord(const std::string& text);

// Re-lowers `graph` under a record (no search): resolves names, re-creates
// conversion operators where the record references "<tensor>_cvt" tensors,
// applies recorded schedules (or defaults), returns programs + perf.
StatusOr<autotune::CompiledNetwork> ApplyTuningRecord(const graph::Graph& graph,
                                                      const sim::Machine& machine,
                                                      const TuningRecord& record);

}  // namespace alt::core

#endif  // ALT_CORE_TUNING_RECORD_H_

// ALT compiler facade: the public entry point.
//
//   graph::Graph g = graph::BuildResNet18(1);
//   core::AltOptions options;
//   auto compiled = core::Compile(g, sim::Machine::IntelCpu(), options);
//
// Variants mirror the paper's ablations (§7.2):
//   * kFull — joint layout + loop tuning with full propagation (ALT).
//   * kLoopOnly — loop tuning only, NHWO/NDHWO layouts (ALT-OL).
//   * kWithoutPropagation — joint tuning but only direct producer-side
//     conversion elimination, no multi-hop propagation, so fusion conflicts
//     remain (ALT-WP).

#ifndef ALT_CORE_ALT_H_
#define ALT_CORE_ALT_H_

#include "src/autotune/tuner.h"
#include "src/baselines/baselines.h"

namespace alt::core {

enum class AltVariant { kFull, kLoopOnly, kWithoutPropagation };

const char* VariantName(AltVariant variant);

struct AltOptions {
  int budget = 600;
  double joint_fraction = 0.3;
  AltVariant variant = AltVariant::kFull;
  autotune::SearchMethod method = autotune::SearchMethod::kPpoPretrained;
  bool two_level_templates = false;
  uint64_t seed = 1;
  // Measurement engine knobs (see autotune/measure.h): candidate lowering +
  // estimation threads (<= 0: one per core) and measurement memoization.
  int measure_threads = 1;
  bool measure_cache = true;
  // Fault-tolerance knobs (see autotune/measure.h): simulated transient
  // measurement failures and the retry policy that absorbs them.
  FaultInjector::Options fault_injection;
  autotune::RetryPolicy measure_retry;
  // When non-empty, the run records a span trace (tuner phases, measurement
  // batches, PPO updates, journal writes) and writes it to this path as
  // Chrome trace-event JSON (see autotune::TuningOptions::trace_path).
  std::string trace_path;
};

// Maps the facade options onto the tuner's options (variant selection, shared
// pretrained agent, fault knobs). Exposed so journal-aware entry points can
// derive the exact options a plain Compile would use.
autotune::TuningOptions ToTuningOptions(const AltOptions& options,
                                        const sim::Machine& machine);

StatusOr<autotune::CompiledNetwork> Compile(const graph::Graph& graph,
                                            const sim::Machine& machine,
                                            const AltOptions& options);

// Lazily pretrained PPO layout agent shared across compilations (paper §6:
// the agent is pretrained once on C2D and GMM workloads).
const std::vector<double>& SharedPretrainedAgent(const sim::Machine& machine);

}  // namespace alt::core

#endif  // ALT_CORE_ALT_H_

// ALT compiler facade: the single documented entry point for compiling,
// persisting, and deploying tuned networks.
//
//   COMPILE            core::Compile(graph, machine, options)
//   COMPILE, CRASH-SAFE core::CompileWithJournal(graph, machine, options, path)
//                      (core/tuning_journal.h — resumes an interrupted run
//                      from its journal, bit-identical to an uninterrupted one)
//   SAVE / LOAD        core::SaveArtifact / core::LoadArtifact
//                      (core/artifact.h — versioned CRC-framed on-disk format;
//                      a loaded artifact re-lowers to the exact programs the
//                      tuner produced, no re-tuning)
//   SERVE              runtime::InferenceSession (runtime/session.h —
//                      compile-once / run-many execution of a CompiledNetwork
//                      or loaded artifact)
//   SERVE AT SCALE     serving::Server (serving/server.h — request queue with
//                      dynamic batching under a size/timeout policy, worker
//                      dispatch onto pooled sessions, per-model latency
//                      metrics, atomic hot-swap to a retuned artifact)
//   LAYOUT ALGEBRA     layout::LayoutRelation (layout/relation.h — the
//                      first-class invertible index relation a primitive
//                      sequence denotes: Compose / Inverse / ApplyToShape,
//                      canonical Fingerprint() for semantic equality and
//                      candidate dedup, coalescing and divisibility queries;
//                      LayoutSeq::MapRead / MapInverse are thin wrappers
//                      over it)
//
//   graph::Graph g = graph::BuildResNet18(1);
//   core::AltOptions options;
//   auto compiled = core::Compile(g, sim::Machine::IntelCpu(), options);
//   core::SaveArtifact(*compiled, sim::Machine::IntelCpu(), options, "net.altart");
//   ...
//   auto loaded = core::LoadArtifact("net.altart");
//   auto session = runtime::InferenceSession::Create(
//       loaded->network.graph, loaded->network.assignment,
//       {loaded->network.groups, loaded->network.programs});
//
// Variants mirror the paper's ablations (§7.2):
//   * kFull — joint layout + loop tuning with full propagation (ALT).
//   * kLoopOnly — loop tuning only, NHWO/NDHWO layouts (ALT-OL).
//   * kWithoutPropagation — joint tuning but only direct producer-side
//     conversion elimination, no multi-hop propagation, so fusion conflicts
//     remain (ALT-WP).

#ifndef ALT_CORE_ALT_H_
#define ALT_CORE_ALT_H_

#include "src/autotune/tuner.h"
#include "src/baselines/baselines.h"
#include "src/runtime/interpreter.h"
#include "src/runtime/session.h"

namespace alt::core {

enum class AltVariant { kFull, kLoopOnly, kWithoutPropagation };

const char* VariantName(AltVariant variant);

// Measurement-engine knobs (see autotune/measure.h).
struct MeasureOptions {
  // Candidate lowering + estimation threads (<= 0: one per core).
  int threads = 1;
  // Memoize measurements keyed by (layout, schedule) serialization.
  bool cache = true;
  // Crash isolation (see autotune/worker_pool.h): evaluate candidates in
  // forked worker subprocesses so a crashing or hanging candidate is retried
  // and quarantined instead of killing the tuner. Trajectory-identical to
  // in-process measurement for a fixed seed.
  bool isolate = false;
  int workers = 2;
  int deadline_ms = 10000;
  // Persistent tuning database path (see core/tuning_database.h). When
  // non-empty, measurements are looked up here before running and written
  // through after, so a rerun against the same database warm-starts with
  // zero redundant measurements.
  std::string database;
};

// Fault-tolerance knobs (see autotune/measure.h): simulated transient
// measurement failures and the retry policy that absorbs them. `worker`
// injects child-side failures (crash / hang / garbled reply) into the
// isolated measurement path for testing.
struct FaultOptions {
  FaultInjector::Options injection;
  autotune::RetryPolicy retry;
  autotune::WorkerFaultHooks worker;
};

// Observability knobs (see support/trace.h).
struct TraceOptions {
  // When non-empty, the run records a span trace (tuner phases, measurement
  // batches, PPO updates, journal writes) and writes it to this path as
  // Chrome trace-event JSON (see autotune::TuningOptions::trace_path).
  std::string path;
};

struct AltOptions {
  int budget = 600;
  double joint_fraction = 0.3;
  AltVariant variant = AltVariant::kFull;
  autotune::SearchMethod method = autotune::SearchMethod::kPpoPretrained;
  bool two_level_templates = false;
  // Share one evaluation among layout candidates with equal relation
  // fingerprints (layout/relation.h); see TuningOptions::layout_relation_dedup.
  bool layout_relation_dedup = true;
  uint64_t seed = 1;
  // Execution engine for serving the compiled network (runtime/interpreter.h).
  // kNative additionally makes SaveArtifact embed the JIT-compiled kernel
  // objects so a loaded artifact serves without recompiling.
  runtime::ExecEngine engine = runtime::ExecEngine::kAuto;
  // Intra-op threads for executing the compiled network: root loops the
  // schedule marked ForKind::kParallel shard across this many threads when
  // provably safe (runtime::SessionOptions::intra_threads). <= 0 selects
  // HardwareThreads(); 1 keeps execution serial.
  int intra_threads = 0;
  MeasureOptions measure;
  FaultOptions fault;
  TraceOptions trace;
};

// Maps the facade options onto the tuner's options (variant selection, shared
// pretrained agent, fault knobs). Exposed so journal-aware entry points can
// derive the exact options a plain Compile would use.
autotune::TuningOptions ToTuningOptions(const AltOptions& options,
                                        const sim::Machine& machine);

// Maps the facade options onto serving-session options (execution engine and
// intra-op thread budget), so embedders serving a CompiledNetwork or loaded
// artifact get the same execution behavior from one set of flags.
runtime::SessionOptions ToSessionOptions(const AltOptions& options);

StatusOr<autotune::CompiledNetwork> Compile(const graph::Graph& graph,
                                            const sim::Machine& machine,
                                            const AltOptions& options);

// Shared tail of every compile path: opens the tuning database when
// `options.measure.database` is set (wiring it into `tuning`), runs the
// tuner, and closes the database. Journal-aware entry points call this after
// layering replay/event-sink state onto `tuning`; Compile is just
// RunTuner(graph, machine, options, ToTuningOptions(options, machine)).
StatusOr<autotune::CompiledNetwork> RunTuner(const graph::Graph& graph,
                                             const sim::Machine& machine,
                                             const AltOptions& options,
                                             autotune::TuningOptions tuning);

// Lazily pretrained PPO layout agent shared across compilations (paper §6:
// the agent is pretrained once on C2D and GMM workloads).
const std::vector<double>& SharedPretrainedAgent(const sim::Machine& machine);

}  // namespace alt::core

// Aggregated facade: pulling in alt.h gives the full compile / persist /
// resume surface. Both headers include alt.h themselves, so these must come
// after the declarations above (the include guards make the cycle benign).
#include "src/core/artifact.h"        // SaveArtifact / LoadArtifact
#include "src/core/tuning_journal.h"  // CompileWithJournal / ResumeFromJournal
// serving::Server lives above the core facade: include "src/serving/server.h"
// (and link alt_serving) for the batching front-end — server.h includes this
// header, so aggregating it here would cycle.

#endif  // ALT_CORE_ALT_H_

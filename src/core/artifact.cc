#include "src/core/artifact.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>
#include <vector>

#include "src/codegen/kernel_cache.h"
#include "src/loop/serialization.h"
#include "src/runtime/interpreter.h"
#include "src/sim/perf_model.h"
#include "src/support/crc32.h"
#include "src/support/fileio.h"
#include "src/support/logging.h"
#include "src/support/string_util.h"

namespace alt::core {

namespace {

using graph::Graph;
using graph::Op;
using graph::OpKind;

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FormatU64Hex(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

StatusOr<uint64_t> ParseU64Hex(const std::string& s) {
  if (s.empty() || s.size() > 16) {
    return Status::InvalidArgument("bad hex field: " + s);
  }
  uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return Status::InvalidArgument("bad hex field: " + s);
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  return v;
}

StatusOr<uint64_t> ParseU64Dec(const std::string& s) {
  if (s.empty()) {
    return Status::InvalidArgument("empty integer field");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size() || s[0] == '-') {
    return Status::InvalidArgument("bad integer field: " + s);
  }
  return static_cast<uint64_t>(v);
}

StatusOr<double> ParseDouble(const std::string& s) {
  if (s.empty()) {
    return Status::InvalidArgument("empty float field");
  }
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) {
    return Status::InvalidArgument("bad float field: " + s);
  }
  return v;
}

// Consumes `prefix` from the front of `s`.
bool ConsumePrefix(std::string& s, const std::string& prefix) {
  if (s.size() < prefix.size() || s.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  s = s.substr(prefix.size());
  return true;
}

// sim::Machine::ByName aborts on unknown names; artifacts carry untrusted
// text, so perf re-estimation uses this lookup instead and is skipped for
// machines this build doesn't know.
const sim::Machine* FindMachineByName(const std::string& name) {
  static const sim::Machine kMachines[] = {sim::Machine::IntelCpu(), sim::Machine::NvidiaGpu(),
                                           sim::Machine::ArmCpu(), sim::Machine::CortexA76()};
  for (const sim::Machine& m : kMachines) {
    if (m.name == name) {
      return &m;
    }
  }
  return nullptr;
}

// --- kernel section (v2) ------------------------------------------------

// Bytes of object code per kdata line (128 hex characters of payload).
constexpr size_t kKernelChunkBytes = 64;

std::string EncodeHex(const unsigned char* data, size_t n) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(2 * n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  return out;
}

Status DecodeHexAppend(const std::string& s, std::vector<unsigned char>* out) {
  if (s.empty() || s.size() % 2 != 0) {
    return Status::InvalidArgument("bad kdata hex length");
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') {
      return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
      return c - 'a' + 10;
    }
    return -1;
  };
  for (size_t i = 0; i < s.size(); i += 2) {
    int hi = nibble(s[i]);
    int lo = nibble(s[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("bad kdata hex digit");
    }
    out->push_back(static_cast<unsigned char>((hi << 4) | lo));
  }
  return Status::Ok();
}

// A kernel record mid-parse: header seen, kdata chunks still arriving.
struct PendingKernel {
  std::string key;
  uint64_t size = 0;
  uint64_t lines = 0;
  uint64_t seen_lines = 0;
  std::vector<unsigned char> bytes;
};

std::string EncodeIntCsv(const std::vector<int64_t>& v) { return v.empty() ? "-" : Join(v, ","); }

std::string EncodeOpInputCsv(const std::vector<int>& v) { return v.empty() ? "-" : Join(v, ","); }

StatusOr<std::vector<int64_t>> DecodeIntCsv(const std::string& s) {
  if (s == "-") {
    return std::vector<int64_t>{};
  }
  return loop::ParseInts(s);
}

// --- graph section ------------------------------------------------------

// The graph section is the identity of the artifact: these exact payload
// lines (in this order, '\n'-joined) are what GraphSignature fingerprints.
std::vector<std::string> GraphSectionLines(const Graph& graph) {
  std::vector<std::string> lines;
  lines.push_back("net " + graph.name());
  for (const auto& t : graph.tensors()) {
    std::string line = "tensor " + std::to_string(t.id) + " " +
                       (graph.IsConstant(t.id) ? "const" : "var") + " shape=" +
                       EncodeIntCsv(t.shape) + " name=" + t.name;
    lines.push_back(std::move(line));
  }
  for (const Op& op : graph.ops()) {
    const auto& c = op.conv;
    std::vector<int64_t> conv = {c.spatial_dims, c.stride[0],     c.stride[1],     c.stride[2],
                                 c.dilation[0],  c.dilation[1],   c.dilation[2],   c.pad[0],
                                 c.pad[1],       c.pad[2],        c.groups,        c.output_pad[0],
                                 c.output_pad[1], c.output_pad[2]};
    const auto& p = op.pool;
    std::vector<int64_t> pool = {p.window[0], p.window[1], p.stride[0], p.stride[1],
                                 p.pad[0],    p.pad[1],    p.global ? 1 : 0};
    std::string line = "op " + std::to_string(op.id) + " " + graph::OpKindName(op.kind) +
                       " out=" + std::to_string(op.output) +
                       " in=" + EncodeOpInputCsv(op.inputs) + " conv=" + Join(conv, ",") +
                       " pool=" + Join(pool, ",") + " padb=" + EncodeIntCsv(op.pad.before) +
                       " pada=" + EncodeIntCsv(op.pad.after) +
                       " scalar=" + FormatDouble(op.scalar) +
                       " axis=" + std::to_string(op.bias_axis) + " name=" + op.name;
    lines.push_back(std::move(line));
  }
  return lines;
}

uint64_t SignatureOfLines(const std::vector<std::string>& lines) {
  return Fnv1a64(Join(lines, "\n"));
}

// Splits a graph-section payload into its space-separated head tokens and
// the trailing free-form name (everything after the first " name=").
Status SplitNameTail(const std::string& payload, std::vector<std::string>* head,
                     std::string* name) {
  size_t pos = payload.find(" name=");
  if (pos == std::string::npos) {
    return Status::InvalidArgument("missing name field: " + payload);
  }
  *head = Split(payload.substr(0, pos), ' ');
  *name = payload.substr(pos + 6);
  return Status::Ok();
}

StatusOr<ir::Tensor> ParseTensorLine(const std::string& payload, bool* is_const) {
  std::vector<std::string> head;
  std::string name;
  ALT_RETURN_IF_ERROR(SplitNameTail(payload, &head, &name));
  if (head.size() != 4 || head[0] != "tensor" || (head[2] != "var" && head[2] != "const") ||
      head[3].rfind("shape=", 0) != 0) {
    return Status::InvalidArgument("bad tensor line: " + payload);
  }
  auto id = ParseInt32(head[1]);
  if (!id.ok()) {
    return id.status();
  }
  auto shape = DecodeIntCsv(head[3].substr(6));
  if (!shape.ok()) {
    return shape.status();
  }
  ir::Tensor t;
  t.id = *id;
  t.name = std::move(name);
  t.shape = std::move(*shape);
  *is_const = head[2] == "const";
  return t;
}

StatusOr<Op> ParseOpLine(const std::string& payload) {
  std::vector<std::string> head;
  std::string name;
  ALT_RETURN_IF_ERROR(SplitNameTail(payload, &head, &name));
  if (head.size() != 11 || head[0] != "op") {
    return Status::InvalidArgument("bad op line: " + payload);
  }
  static const char* kPrefixes[] = {"out=", "in=", "conv=", "pool=", "padb=", "pada=",
                                    "scalar=", "axis="};
  for (int i = 0; i < 8; ++i) {
    if (head[3 + i].rfind(kPrefixes[i], 0) != 0) {
      return Status::InvalidArgument("bad op line: " + payload);
    }
    head[3 + i] = head[3 + i].substr(std::string(kPrefixes[i]).size());
  }
  Op op;
  auto id = ParseInt32(head[1]);
  auto kind = graph::OpKindFromName(head[2]);
  auto out = ParseInt32(head[3]);
  auto in = DecodeIntCsv(head[4]);
  auto conv = loop::ParseInts(head[5]);
  auto pool = loop::ParseInts(head[6]);
  auto padb = DecodeIntCsv(head[7]);
  auto pada = DecodeIntCsv(head[8]);
  auto scalar = ParseDouble(head[9]);
  auto axis = ParseInt32(head[10]);
  for (const Status& s :
       {id.status(), kind.status(), out.status(), in.status(), conv.status(), pool.status(),
        padb.status(), pada.status(), scalar.status(), axis.status()}) {
    if (!s.ok()) {
      return s;
    }
  }
  if (conv->size() != 14 || pool->size() != 7) {
    return Status::InvalidArgument("bad op attribute arity: " + payload);
  }
  op.id = *id;
  op.kind = *kind;
  op.name = std::move(name);
  op.output = *out;
  for (int64_t v : *in) {
    op.inputs.push_back(static_cast<int>(v));
  }
  op.conv.spatial_dims = static_cast<int>((*conv)[0]);
  for (int d = 0; d < 3; ++d) {
    op.conv.stride[d] = (*conv)[1 + d];
    op.conv.dilation[d] = (*conv)[4 + d];
    op.conv.pad[d] = (*conv)[7 + d];
    op.conv.output_pad[d] = (*conv)[11 + d];
  }
  op.conv.groups = (*conv)[10];
  op.pool.window[0] = (*pool)[0];
  op.pool.window[1] = (*pool)[1];
  op.pool.stride[0] = (*pool)[2];
  op.pool.stride[1] = (*pool)[3];
  op.pool.pad[0] = (*pool)[4];
  op.pool.pad[1] = (*pool)[5];
  op.pool.global = (*pool)[6] != 0;
  op.pad.before = std::move(*padb);
  op.pad.after = std::move(*pada);
  op.scalar = *scalar;
  op.bias_axis = *axis;
  return op;
}

}  // namespace

uint64_t GraphSignature(const Graph& graph) {
  return SignatureOfLines(GraphSectionLines(graph));
}

uint64_t InterfaceSignature(const Graph& graph) {
  // Same line discipline as the graph section, restricted to the tensors a
  // client feeds: retuning inserts conversion ops and interior tensors but
  // never changes the inputs/constants a request must supply.
  std::vector<std::string> lines;
  for (const auto& t : graph.tensors()) {
    if (!graph.IsGraphInput(t.id) && !graph.IsConstant(t.id)) {
      continue;
    }
    lines.push_back(std::string("feed ") + (graph.IsConstant(t.id) ? "const" : "var") +
                    " shape=" + EncodeIntCsv(t.shape) + " name=" + t.name);
  }
  return SignatureOfLines(lines);
}

Status SaveArtifact(const autotune::CompiledNetwork& network, const sim::Machine& machine,
                    const AltOptions& options, const std::string& path) {
  if (network.schedules.size() != network.groups.size()) {
    return Status::InvalidArgument("network has " + std::to_string(network.groups.size()) +
                                   " groups but " + std::to_string(network.schedules.size()) +
                                   " schedules; cannot serialize");
  }
  std::vector<std::string> graph_lines = GraphSectionLines(network.graph);
  const uint64_t gsig = SignatureOfLines(graph_lines);

  // Collect native kernel objects first: the header version depends on
  // whether any are embedded. Programs the native engine cannot compile
  // (non-affine, no toolchain) are simply not embedded — at load time those
  // programs serve through the interpreter exactly as they would have here.
  std::vector<std::pair<std::string, std::vector<unsigned char>>> kernels;
  if (options.engine == runtime::ExecEngine::kNative) {
    for (const auto& program : network.programs) {
      auto key = runtime::EnsureNativeKernel(program);
      if (!key.ok()) {
        continue;
      }
      bool seen = false;
      for (const auto& [k, b] : kernels) {
        seen = seen || k == *key;
      }
      if (seen) {
        continue;  // programs with equal structure share one object
      }
      auto bytes = codegen::KernelCache::Global().ObjectBytes(*key);
      if (!bytes.ok()) {
        ALT_LOG(Warning) << "artifact: not embedding kernel " << *key << ": "
                         << bytes.status().message();
        continue;
      }
      kernels.emplace_back(*key, std::move(*bytes));
    }
  }

  std::vector<std::string> payloads;
  payloads.push_back(std::string("altart v") + (kernels.empty() ? "1" : "2") +
                     " gsig=" + FormatU64Hex(gsig));
  payloads.push_back("machine " + machine.name);
  const double best_us =
      network.history_us.empty() ? std::nan("") : network.history_us.back();
  payloads.push_back("prov seed=" + std::to_string(options.seed) +
                     " budget=" + std::to_string(options.budget) +
                     " variant=" + std::to_string(static_cast<int>(options.variant)) +
                     " method=" + std::to_string(static_cast<int>(options.method)) +
                     " best_us=" + FormatDouble(best_us) +
                     " measurements=" + std::to_string(network.measurements_used));
  for (auto& line : graph_lines) {
    payloads.push_back(std::move(line));
  }
  for (const auto& t : network.graph.tensors()) {
    if (network.assignment.Has(t.id)) {
      payloads.push_back("layout " + std::to_string(t.id) + " " +
                         loop::EncodeLayoutSeq(network.assignment.Get(t.id)));
    }
  }
  for (size_t i = 0; i < network.groups.size(); ++i) {
    std::vector<int64_t> fused(network.groups[i].fused_ops.begin(),
                               network.groups[i].fused_ops.end());
    payloads.push_back("group " + std::to_string(network.groups[i].anchor_op) +
                       " fused=" + EncodeIntCsv(fused) + " " +
                       loop::EncodeSchedule(network.schedules[i]));
  }
  for (const auto& [key, bytes] : kernels) {
    const size_t chunks = (bytes.size() + kKernelChunkBytes - 1) / kKernelChunkBytes;
    payloads.push_back("kernel " + key + " size=" + std::to_string(bytes.size()) +
                       " lines=" + std::to_string(chunks));
    for (size_t off = 0; off < bytes.size(); off += kKernelChunkBytes) {
      payloads.push_back(
          "kdata " + EncodeHex(bytes.data() + off, std::min(kKernelChunkBytes, bytes.size() - off)));
    }
  }
  payloads.push_back("end n=" + std::to_string(payloads.size()));

  std::string contents;
  for (const std::string& payload : payloads) {
    contents += FrameLine(payload);
    contents += '\n';
  }
  return WriteFile(path, contents);
}

StatusOr<LoadedArtifact> LoadArtifact(const std::string& path) {
  auto contents = ReadFile(path);
  if (!contents.ok()) {
    return contents.status();
  }

  // Frame check: every line must be complete (newline-terminated) and pass
  // its CRC. A truncated tail or a flipped bit anywhere is fatal — an
  // artifact reproduces execution exactly or not at all.
  std::vector<std::string> payloads;
  size_t pos = 0;
  while (pos < contents->size()) {
    size_t nl = contents->find('\n', pos);
    if (nl == std::string::npos) {
      return Status::InvalidArgument("artifact truncated: unterminated final line");
    }
    std::string payload;
    if (!UnframeLine(std::string_view(*contents).substr(pos, nl - pos), &payload)) {
      return Status::InvalidArgument("artifact corrupt: bad CRC frame at line " +
                                     std::to_string(payloads.size() + 1));
    }
    payloads.push_back(std::move(payload));
    pos = nl + 1;
  }
  if (payloads.size() < 2) {
    return Status::InvalidArgument("artifact truncated: missing header or trailer");
  }

  // Header: version gate first — nothing else is interpreted under an
  // unknown version.
  std::string header = payloads.front();
  if (!ConsumePrefix(header, "altart v")) {
    return Status::InvalidArgument("not an ALT artifact: bad header");
  }
  size_t sp = header.find(' ');
  if (sp == std::string::npos) {
    return Status::InvalidArgument("not an ALT artifact: bad header");
  }
  auto version = ParseInt32(header.substr(0, sp));
  if (!version.ok()) {
    return version.status();
  }
  if (*version != 1 && *version != 2) {
    return Status::InvalidArgument("unsupported artifact version " + std::to_string(*version) +
                                   " (this build reads v1 and v2)");
  }
  std::string gsig_field = header.substr(sp + 1);
  if (!ConsumePrefix(gsig_field, "gsig=")) {
    return Status::InvalidArgument("not an ALT artifact: bad header");
  }
  auto declared_gsig = ParseU64Hex(gsig_field);
  if (!declared_gsig.ok()) {
    return declared_gsig.status();
  }

  // Trailer: the line count commits the artifact's full extent, so dropping
  // whole framed lines off the end (which every per-line CRC would accept)
  // is still detected.
  std::string trailer = payloads.back();
  if (!ConsumePrefix(trailer, "end n=")) {
    return Status::InvalidArgument("artifact truncated: missing 'end' trailer");
  }
  auto declared_count = ParseInt64(trailer);
  if (!declared_count.ok()) {
    return declared_count.status();
  }
  if (*declared_count != static_cast<int64_t>(payloads.size()) - 1) {
    return Status::InvalidArgument("artifact truncated: trailer declares " +
                                   std::to_string(*declared_count) + " lines, file has " +
                                   std::to_string(payloads.size() - 1));
  }

  LoadedArtifact result;
  result.info.version = *version;

  bool saw_net = false;
  bool saw_machine = false;
  bool saw_prov = false;
  std::string graph_name;
  std::vector<ir::Tensor> tensors;
  std::vector<bool> is_const;
  std::vector<Op> ops;
  std::vector<std::string> graph_lines;            // verbatim, for gsig recompute
  std::vector<std::pair<int, std::string>> layouts;  // tensor id -> encoded seq
  std::vector<loop::FusedGroup> groups;
  std::vector<loop::LoopSchedule> schedules;
  std::vector<std::pair<std::string, std::vector<unsigned char>>> kernel_objects;
  std::optional<PendingKernel> pending_kernel;

  for (size_t i = 1; i + 1 < payloads.size(); ++i) {
    std::string payload = payloads[i];
    if (pending_kernel.has_value() && payload.rfind("kdata ", 0) != 0) {
      return Status::InvalidArgument("artifact corrupt: kernel " + pending_kernel->key +
                                     " interrupted before its kdata completed");
    }
    if (ConsumePrefix(payload, "machine ")) {
      if (saw_machine) {
        return Status::InvalidArgument("artifact has multiple machine lines");
      }
      saw_machine = true;
      result.info.machine = payload;
    } else if (ConsumePrefix(payload, "prov ")) {
      if (saw_prov) {
        return Status::InvalidArgument("artifact has multiple prov lines");
      }
      saw_prov = true;
      for (const std::string& token : Split(payload, ' ')) {
        size_t eq = token.find('=');
        if (eq == std::string::npos) {
          return Status::InvalidArgument("bad prov token: " + token);
        }
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);
        if (key == "seed") {
          auto v = ParseU64Dec(value);
          if (!v.ok()) {
            return v.status();
          }
          result.info.seed = *v;
        } else if (key == "budget") {
          auto v = ParseInt32(value);
          if (!v.ok()) {
            return v.status();
          }
          result.info.budget = *v;
        } else if (key == "variant") {
          auto v = ParseInt32(value);
          if (!v.ok()) {
            return v.status();
          }
          if (*v < 0 || *v > static_cast<int>(AltVariant::kWithoutPropagation)) {
            return Status::InvalidArgument("bad prov variant: " + value);
          }
          result.info.variant = static_cast<AltVariant>(*v);
        } else if (key == "method") {
          auto v = ParseInt32(value);
          if (!v.ok()) {
            return v.status();
          }
          if (*v < 0 || *v > static_cast<int>(autotune::SearchMethod::kRandom)) {
            return Status::InvalidArgument("bad prov method: " + value);
          }
          result.info.method = static_cast<autotune::SearchMethod>(*v);
        } else if (key == "best_us") {
          auto v = ParseDouble(value);
          if (!v.ok()) {
            return v.status();
          }
          result.info.best_latency_us = *v;
        } else if (key == "measurements") {
          auto v = ParseInt32(value);
          if (!v.ok()) {
            return v.status();
          }
          result.info.measurements_used = *v;
        } else {
          return Status::InvalidArgument("unknown prov token: " + token);
        }
      }
    } else if (payload.rfind("net ", 0) == 0) {
      if (saw_net) {
        return Status::InvalidArgument("artifact has multiple net lines");
      }
      saw_net = true;
      graph_lines.push_back(payload);
      graph_name = payload.substr(4);
    } else if (payload.rfind("tensor ", 0) == 0) {
      graph_lines.push_back(payload);
      bool c = false;
      auto t = ParseTensorLine(payload, &c);
      if (!t.ok()) {
        return t.status();
      }
      tensors.push_back(std::move(*t));
      is_const.push_back(c);
    } else if (payload.rfind("op ", 0) == 0) {
      graph_lines.push_back(payload);
      auto op = ParseOpLine(payload);
      if (!op.ok()) {
        return op.status();
      }
      ops.push_back(std::move(*op));
    } else if (ConsumePrefix(payload, "layout ")) {
      size_t space = payload.find(' ');
      if (space == std::string::npos) {
        return Status::InvalidArgument("bad layout line: " + payload);
      }
      auto id = ParseInt32(payload.substr(0, space));
      if (!id.ok()) {
        return id.status();
      }
      layouts.emplace_back(*id, payload.substr(space + 1));
    } else if (ConsumePrefix(payload, "group ")) {
      std::vector<std::string> tokens = Split(payload, ' ');
      if (tokens.size() < 2 || tokens[1].rfind("fused=", 0) != 0) {
        return Status::InvalidArgument("bad group line: " + payload);
      }
      auto anchor = ParseInt32(tokens[0]);
      auto fused = DecodeIntCsv(tokens[1].substr(6));
      if (!anchor.ok()) {
        return anchor.status();
      }
      if (!fused.ok()) {
        return fused.status();
      }
      loop::FusedGroup group;
      group.anchor_op = *anchor;
      for (int64_t v : *fused) {
        group.fused_ops.push_back(static_cast<int>(v));
      }
      loop::LoopSchedule sched;
      for (size_t t = 2; t < tokens.size(); ++t) {
        size_t eq = tokens[t].find('=');
        if (eq == std::string::npos) {
          return Status::InvalidArgument("bad schedule token: " + tokens[t]);
        }
        ALT_RETURN_IF_ERROR(
            loop::DecodeScheduleToken(tokens[t].substr(0, eq), tokens[t].substr(eq + 1), sched));
      }
      ALT_RETURN_IF_ERROR(loop::ValidateSchedule(sched));
      groups.push_back(std::move(group));
      schedules.push_back(std::move(sched));
    } else if (*version >= 2 && ConsumePrefix(payload, "kernel ")) {
      std::vector<std::string> tokens = Split(payload, ' ');
      if (tokens.size() != 3 || tokens[0].size() != 16 ||
          tokens[1].rfind("size=", 0) != 0 || tokens[2].rfind("lines=", 0) != 0) {
        return Status::InvalidArgument("bad kernel line: " + payload);
      }
      auto key_check = ParseU64Hex(tokens[0]);
      auto size = ParseU64Dec(tokens[1].substr(5));
      auto chunk_lines = ParseU64Dec(tokens[2].substr(6));
      for (const Status& s : {key_check.status(), size.status(), chunk_lines.status()}) {
        if (!s.ok()) {
          return s;
        }
      }
      if (*size == 0 || *chunk_lines == 0) {
        return Status::InvalidArgument("bad kernel line: empty object: " + payload);
      }
      PendingKernel pk;
      pk.key = tokens[0];
      pk.size = *size;
      pk.lines = *chunk_lines;
      pk.bytes.reserve(*size);
      pending_kernel = std::move(pk);
    } else if (*version >= 2 && ConsumePrefix(payload, "kdata ")) {
      if (!pending_kernel.has_value()) {
        return Status::InvalidArgument("artifact corrupt: kdata line outside a kernel record");
      }
      ALT_RETURN_IF_ERROR(DecodeHexAppend(payload, &pending_kernel->bytes));
      if (pending_kernel->bytes.size() > pending_kernel->size) {
        return Status::InvalidArgument("artifact corrupt: kernel " + pending_kernel->key +
                                       " exceeds its declared size");
      }
      if (++pending_kernel->seen_lines == pending_kernel->lines) {
        if (pending_kernel->bytes.size() != pending_kernel->size) {
          return Status::InvalidArgument("artifact corrupt: kernel " + pending_kernel->key +
                                         " declares " + std::to_string(pending_kernel->size) +
                                         " bytes, carries " +
                                         std::to_string(pending_kernel->bytes.size()));
        }
        kernel_objects.emplace_back(std::move(pending_kernel->key),
                                    std::move(pending_kernel->bytes));
        pending_kernel.reset();
      }
    } else {
      return Status::InvalidArgument("unknown artifact line: " + payloads[i]);
    }
  }
  if (pending_kernel.has_value()) {
    return Status::InvalidArgument("artifact truncated: kernel " + pending_kernel->key +
                                   " missing kdata lines");
  }

  if (!saw_net || !saw_machine || !saw_prov) {
    return Status::InvalidArgument("artifact missing net, machine, or prov line");
  }

  // Identity check: the graph section we parsed must hash to what the header
  // promised. Reordered, dropped, or injected graph lines all land here.
  result.info.graph_signature = SignatureOfLines(graph_lines);
  if (result.info.graph_signature != *declared_gsig) {
    return Status::InvalidArgument("graph signature mismatch: header declares " +
                                   FormatU64Hex(*declared_gsig) + ", graph section hashes to " +
                                   FormatU64Hex(result.info.graph_signature));
  }

  auto graph = Graph::FromParts(std::move(graph_name), std::move(tensors), std::move(ops),
                                std::move(is_const));
  if (!graph.ok()) {
    return graph.status();
  }
  autotune::CompiledNetwork& network = result.network;
  network.graph = std::move(*graph);

  const int num_tensors = static_cast<int>(network.graph.tensors().size());
  const int num_ops = static_cast<int>(network.graph.ops().size());
  for (const auto& [tensor_id, encoded] : layouts) {
    if (tensor_id < 0 || tensor_id >= num_tensors) {
      return Status::InvalidArgument("layout line references tensor " +
                                     std::to_string(tensor_id) + " out of range");
    }
    layout::LayoutSeq seq;
    for (const std::string& prim_text : Split(encoded, ' ')) {
      if (prim_text.empty()) {
        continue;
      }
      auto prim = loop::DecodePrimitive(prim_text);
      if (!prim.ok()) {
        return prim.status();
      }
      seq.Append(std::move(*prim));
    }
    network.assignment.Set(tensor_id, std::move(seq));
  }
  // Applicability check: every assigned sequence must map its tensor to a
  // valid physical shape (split divisibility, store_at sources, ...).
  for (const auto& [tensor_id, encoded] : layouts) {
    auto phys = network.assignment.PhysicalShape(network.graph, tensor_id);
    if (!phys.ok()) {
      return Status::InvalidArgument("layout for tensor " + std::to_string(tensor_id) +
                                     " is not applicable: " + phys.status().message());
    }
  }

  // Re-lower. LowerGroup is deterministic and LowerGroupNaive is exactly
  // LowerGroup with the naive schedule (the tuner records one schedule per
  // group, naive for groups it didn't tune), so this reproduces the tuner's
  // programs bit for bit.
  if (groups.empty()) {
    return Status::InvalidArgument("artifact has no groups");
  }
  for (size_t i = 0; i < groups.size(); ++i) {
    if (groups[i].anchor_op < 0 || groups[i].anchor_op >= num_ops) {
      return Status::InvalidArgument("group anchor op out of range");
    }
    for (int fused : groups[i].fused_ops) {
      if (fused < 0 || fused >= num_ops) {
        return Status::InvalidArgument("group fused op out of range");
      }
    }
    auto program =
        loop::LowerGroup(network.graph, network.assignment, groups[i], schedules[i]);
    if (!program.ok()) {
      return Status::InvalidArgument("artifact group " + std::to_string(i) +
                                     " failed to lower: " + program.status().message());
    }
    network.programs.push_back(std::move(*program));
  }
  network.groups = std::move(groups);
  network.schedules = std::move(schedules);
  network.measurements_used = result.info.measurements_used;

  // Deliver embedded kernel objects to the process-wide cache so native-
  // engine sessions over this network hit without compiling. A load failure
  // (object from another architecture, dlopen unavailable) is a degraded
  // environment, not a corrupt artifact: the programs above are the source
  // of truth and the native engine falls back per program, bit-identically.
  for (const auto& [key, bytes] : kernel_objects) {
    Status s = codegen::KernelCache::Global().RegisterObject(key, bytes);
    if (s.ok()) {
      ++result.info.kernels;
    } else {
      ALT_LOG(Warning) << "artifact: embedded kernel " << key
                       << " not loadable here: " << s.message();
    }
  }

  if (const sim::Machine* m = FindMachineByName(result.info.machine)) {
    network.perf = sim::EstimatePrograms(network.programs, *m);
  }
  return result;
}

}  // namespace alt::core

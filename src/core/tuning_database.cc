#include "src/core/tuning_database.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string_view>

#include "src/support/crc32.h"
#include "src/support/logging.h"
#include "src/support/metrics.h"

namespace alt::core {

namespace {

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);  // round-trips bit-exactly
  return buf;
}

std::string FormatU64Hex(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
  return buf;
}

// Parses a 16-digit hex field starting at `s`; advances `s` past it.
bool ParseU64Hex(const char** s, uint64_t* out) {
  char* end = nullptr;
  uint64_t v = std::strtoull(*s, &end, 16);
  if (end != *s + 16) {
    return false;
  }
  *s = end;
  *out = v;
  return true;
}

bool ConsumePrefix(const char** s, const char* prefix) {
  size_t len = std::strlen(prefix);
  if (std::strncmp(*s, prefix, len) != 0) {
    return false;
  }
  *s += len;
  return true;
}

}  // namespace

uint64_t MachineFingerprint(const sim::Machine& machine) {
  std::ostringstream oss;
  oss << "name=" << machine.name << ";cores=" << machine.cores
      << ";lanes=" << machine.vector_lanes << ";freq=" << FormatDouble(machine.freq_ghz)
      << ";bw=" << FormatDouble(machine.dram_bw_gbps)
      << ";dramlat=" << FormatDouble(machine.dram_latency_cycles) << ";caches=";
  for (const auto& level : machine.caches) {
    oss << level.size_bytes << "," << level.line_bytes << "," << level.associativity << ","
        << FormatDouble(level.hit_latency_cycles) << ";";
  }
  oss << "prefetch=" << machine.prefetch_lines
      << ";fma=" << FormatDouble(machine.fma_per_cycle) << ";gpu=" << (machine.gpu_like ? 1 : 0)
      << ";peff=" << FormatDouble(machine.parallel_efficiency);
  return Fnv1a64(oss.str());
}

StatusOr<std::unique_ptr<TuningDatabase>> TuningDatabase::Open(const std::string& path,
                                                               const sim::Machine& machine) {
  std::unique_ptr<TuningDatabase> db(new TuningDatabase());
  db->machine_fp_ = MachineFingerprint(machine);

  bool has_header = false;
  if (FileExists(path)) {
    auto data_or = ReadFile(path);
    if (!data_or.ok()) {
      return data_or.status();
    }
    const std::string& data = *data_or;
    // Record lines seen since the last good trailer; a trailer claims the
    // cumulative count, so a mismatch means the trailer (or a record before
    // it) was forged or lost — the trailer is then worthless and skipped.
    int64_t records_seen = 0;
    size_t pos = 0;
    while (pos < data.size()) {
      size_t nl = data.find('\n', pos);
      const bool torn = nl == std::string::npos;
      std::string_view line =
          std::string_view(data).substr(pos, torn ? data.size() - pos : nl - pos);
      pos = torn ? data.size() : nl + 1;
      std::string payload;
      if (torn || !UnframeLine(line, &payload)) {
        ++db->stats_.skipped_records;  // torn tail or checksum failure
        continue;
      }
      const char* s = payload.c_str();
      if (ConsumePrefix(&s, "tuningdb v1")) {
        has_header = true;
        continue;
      }
      if (ConsumePrefix(&s, "record ")) {
        uint64_t machine_fp = 0;
        uint64_t site = 0;
        if (!ParseU64Hex(&s, &machine_fp) || !ConsumePrefix(&s, " ") ||
            !ParseU64Hex(&s, &site)) {
          ++db->stats_.skipped_records;
          continue;
        }
        Entry entry;
        if (ConsumePrefix(&s, " ok ")) {
          char* end = nullptr;
          entry.latency_us = std::strtod(s, &end);
          if (end == s) {
            ++db->stats_.skipped_records;
            continue;
          }
        } else if (ConsumePrefix(&s, " fail")) {
          entry.failed = true;
        } else {
          ++db->stats_.skipped_records;
          continue;
        }
        ++records_seen;
        ++db->stats_.total_records;
        if (machine_fp != db->machine_fp_) {
          continue;  // another machine's measurement: real, just not ours
        }
        if (!db->entries_.emplace(site, entry).second) {
          ++db->stats_.duplicate_records;  // first occurrence wins
        } else {
          ++db->stats_.loaded;
        }
        continue;
      }
      if (ConsumePrefix(&s, "trailer records=")) {
        char* end = nullptr;
        long long claimed = std::strtoll(s, &end, 10);
        if (end == s || claimed != records_seen) {
          ++db->stats_.skipped_records;  // forged or stale checkpoint
        }
        continue;
      }
      // Unknown record kind written by a newer version: ignore, don't count
      // it as corruption.
    }
    // A torn tail (no final newline) was skipped above, but it must also be
    // cut from the file — otherwise the next appended line glues onto it and
    // becomes unreadable too.
    const size_t last_nl = data.rfind('\n');
    const size_t valid_end = last_nl == std::string::npos ? 0 : last_nl + 1;
    if (valid_end < data.size()) {
      ALT_RETURN_IF_ERROR(TruncateFile(path, valid_end));
    }
  }

  if (db->stats_.skipped_records > 0) {
    ALT_LOG(Warning) << "tuning database " << path << ": skipped "
                     << db->stats_.skipped_records << " corrupt record(s), loaded "
                     << db->stats_.loaded << " for this machine";
    MetricsRegistry::Global()
        .counter("measure.db_skipped_records")
        .Add(db->stats_.skipped_records);
  }

  auto writer = AppendWriter::Open(path);
  if (!writer.ok()) {
    return writer.status();
  }
  db->writer_ = std::move(*writer);
  db->open_ = true;
  if (!has_header) {
    std::lock_guard<std::mutex> lock(db->mu_);
    db->Append("tuningdb v1");
    if (!db->status_.ok()) {
      return db->status_;
    }
  }
  return db;
}

void TuningDatabase::Append(const std::string& payload) {
  if (!status_.ok() || !open_) {
    return;  // sticky failure: the run continues, just unpersisted
  }
  status_ = writer_.AppendLine(FrameLine(payload));
}

std::optional<TuningDatabase::Entry> TuningDatabase::Lookup(uint64_t site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(site);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void TuningDatabase::Record(uint64_t site, const Entry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!entries_.emplace(site, entry).second) {
    return;  // already known; keep the first record, append nothing
  }
  std::string payload = "record " + FormatU64Hex(machine_fp_) + " " + FormatU64Hex(site);
  if (entry.failed) {
    payload += " fail";
  } else {
    payload += " ok " + FormatDouble(entry.latency_us);
  }
  Append(payload);
  if (status_.ok()) {
    ++stats_.appended;
    ++stats_.total_records;
  }
}

Status TuningDatabase::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) {
    return status_;
  }
  Append("trailer records=" + std::to_string(stats_.total_records));
  writer_.Close();
  open_ = false;
  return status_;
}

TuningDatabase::~TuningDatabase() { Close(); }

TuningDatabase::Stats TuningDatabase::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status TuningDatabase::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

}  // namespace alt::core

// Persistent cross-run tuning database (warm start).
//
// The tuning journal (tuning_journal.h) makes ONE run crash-safe; it is keyed
// to one exact (graph, machine, options) configuration and replays a
// trajectory. The tuning database is the complementary long-lived store: an
// append-only file of (machine, program-structure site) -> measured latency
// records that accumulates across runs, networks, and option sets. The
// measurement engine consults it before measuring and writes through after
// (MeasureEngineConfig::database), so a run warm-started against a populated
// database issues zero redundant measurements while spending its budget
// exactly as a cold run would (hits use replay semantics, not cache-hit
// semantics — see measure.h).
//
// FILE FORMAT — text, one record per line, each line independently framed
// with the same <crc32-hex-8> <payload> scheme as the tuning journal:
//
//   tuningdb v1                                   header
//   record <machine-hex-16> <site-hex-16> ok <latency %.17g>
//   record <machine-hex-16> <site-hex-16> fail    persistent failure
//   trailer records=<n>                           checkpoint: record lines so
//                                                 far, written by Close()
//
// `machine` is MachineFingerprint() of the sim::Machine the latency was
// measured on — a latency is only meaningful on the machine that produced it,
// so Lookup() is scoped to the handle's machine while the file freely mixes
// records from many. `site` is Fnv1a64 of the full measurement cache key
// (group structure + layouts + schedule), the same fingerprint the journal
// and fault injector use.
//
// TOLERANT LOAD. Unlike the journal — where the valid prefix IS the
// trajectory, so the first bad line ends it — database records are
// independent facts: a corrupt line invalidates nothing around it. Open()
// therefore SKIPS lines that fail CRC or parsing (counting them in
// stats().skipped_records, mirrored to the measure.db_skipped_records
// counter) and keeps loading. A trailer whose count disagrees with the
// records actually seen is treated as forged and skipped the same way.
// Duplicate (machine, site) records keep the FIRST occurrence, matching the
// engine's own memoization.

#ifndef ALT_CORE_TUNING_DATABASE_H_
#define ALT_CORE_TUNING_DATABASE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/autotune/measure.h"
#include "src/sim/machine.h"
#include "src/support/fileio.h"
#include "src/support/status.h"

namespace alt::core {

// Stable fingerprint of every performance-affecting sim::Machine field.
// Latencies recorded under one fingerprint are never served to another.
uint64_t MachineFingerprint(const sim::Machine& machine);

class TuningDatabase : public autotune::MeasureDatabase {
 public:
  struct Stats {
    int64_t total_records = 0;      // valid record lines loaded, any machine
    int64_t loaded = 0;             // records usable by this handle's machine
    int64_t duplicate_records = 0;  // same (machine, site) seen again (first wins)
    int64_t skipped_records = 0;    // corrupt / unparsable / forged-trailer lines
    int64_t appended = 0;           // records written through by this handle
  };

  // Loads `path` (created if absent) scoped to `machine` and opens it for
  // appending. Corrupt lines are skipped, not fatal; only I/O errors fail.
  static StatusOr<std::unique_ptr<TuningDatabase>> Open(const std::string& path,
                                                        const sim::Machine& machine);

  // MeasureDatabase. Lookup answers only records for this handle's machine;
  // Record appends one framed line per fresh measurement (write-through).
  // Append failures are sticky in status(): the run continues unpersisted.
  std::optional<Entry> Lookup(uint64_t site) override;
  void Record(uint64_t site, const Entry& entry) override;

  // Appends a `trailer records=<n>` checkpoint and closes the file. Further
  // Records are dropped (sticky status). Called by the destructor if not
  // called explicitly; call it directly to observe the final status.
  Status Close();
  ~TuningDatabase() override;

  Stats stats() const;
  Status status() const;
  uint64_t machine_fingerprint() const { return machine_fp_; }

  TuningDatabase(const TuningDatabase&) = delete;
  TuningDatabase& operator=(const TuningDatabase&) = delete;

 private:
  TuningDatabase() = default;

  void Append(const std::string& payload);  // requires mu_ held

  mutable std::mutex mu_;
  uint64_t machine_fp_ = 0;
  std::unordered_map<uint64_t, Entry> entries_;  // this machine only
  AppendWriter writer_;
  bool open_ = false;
  Status status_ = Status::Ok();
  Stats stats_;
};

}  // namespace alt::core

#endif  // ALT_CORE_TUNING_DATABASE_H_

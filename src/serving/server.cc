#include "src/serving/server.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace alt::serving {

namespace {

using Clock = std::chrono::steady_clock;

int64_t MicrosBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from).count();
}

// One queued request: its payload, its answer slot, and its dispatch
// deadline under the batch policy.
struct Pending {
  runtime::TensorDataMap data;
  std::promise<Response> promise;
  Clock::time_point enqueued;
  Clock::time_point deadline;
  // Shed deadline: a request still QUEUED at this point is failed with
  // kDeadlineExceeded instead of claimed (Server::SubmitOptions::deadline_us).
  // Unset when the caller gave no deadline.
  bool has_shed_deadline = false;
  Clock::time_point shed_deadline;
};

// A registered model: the hot-swappable session plus its own FIFO queue.
// Batches never mix models, so batching state lives here.
struct Model {
  std::string name;
  uint64_t interface_sig = 0;
  std::vector<int64_t> output_shape;
  // Flipped by SwapModel under the server lock; workers copy it out before
  // running so an in-flight batch keeps the session it started with alive.
  std::shared_ptr<runtime::InferenceSession> session;
  std::deque<Pending> queue;
  // Per-model end-to-end latency (submit -> response), the operator's
  // p50/p95/p99 surface.
  Histogram* request_us = nullptr;
};

}  // namespace

struct Server::Impl {
  ServerOptions options;
  MetricsSnapshot start;

  // One lock for admission, batching state, and model registry: every
  // critical section is short (queue splicing and pointer flips; execution
  // happens outside it).
  mutable std::mutex mu;
  std::condition_variable work_cv;
  std::map<std::string, std::unique_ptr<Model>> models;
  bool draining = false;
  int64_t queued = 0;  // across all models; mirrored in serving.queue_depth

  std::vector<std::thread> workers;

  // Instruments (global registry; cached once).
  Counter& requests = MetricsRegistry::Global().counter("serving.requests");
  Counter& rejected = MetricsRegistry::Global().counter("serving.rejected");
  Counter& completed = MetricsRegistry::Global().counter("serving.completed");
  Counter& failed = MetricsRegistry::Global().counter("serving.failed");
  Counter& batches = MetricsRegistry::Global().counter("serving.batches");
  Counter& swaps = MetricsRegistry::Global().counter("serving.swaps");
  Counter& deadline_rejected = MetricsRegistry::Global().counter("serving.deadline_rejected");
  Gauge& queue_depth = MetricsRegistry::Global().gauge("serving.queue_depth");
  Gauge& model_count = MetricsRegistry::Global().gauge("serving.models");
  Histogram& batch_size = MetricsRegistry::Global().histogram("serving.batch_size");
  Histogram& queue_wait_us = MetricsRegistry::Global().histogram("serving.queue_wait_us");
  Histogram& batch_us = MetricsRegistry::Global().histogram("serving.batch_us");

  int IntraBatchThreads() const {
    if (options.intra_batch_threads > 0) {
      return options.intra_batch_threads;
    }
    return std::max(1, HardwareThreads() / std::max(1, options.workers));
  }

  // Builds a session + interface identity for AddModel/SwapModel.
  StatusOr<std::unique_ptr<Model>> BuildModel(const std::string& name,
                                              const graph::Graph& graph,
                                              const graph::LayoutAssignment& assignment,
                                              const loop::LoweredNetwork& net) {
    auto session = runtime::InferenceSession::Create(graph, assignment, net, options.session);
    if (!session.ok()) {
      return session.status();
    }
    auto model = std::make_unique<Model>();
    model->name = name;
    model->interface_sig = core::InterfaceSignature(graph);
    model->output_shape = session->output_shape();
    model->session = std::make_shared<runtime::InferenceSession>(std::move(*session));
    model->request_us = &MetricsRegistry::Global().histogram("serving." + name + ".request_us");
    return model;
  }

  // Under `mu`: the model whose queue must be dispatched now, or nullptr.
  // Ready means a full batch, an expired oldest-request deadline, or any
  // backlog while draining.
  Model* FindReadyModel(Clock::time_point now) {
    for (auto& [name, model] : models) {
      if (model->queue.empty()) {
        continue;
      }
      if (static_cast<int>(model->queue.size()) >= options.policy.max_batch_size ||
          model->queue.front().deadline <= now || draining) {
        return model.get();
      }
    }
    return nullptr;
  }

  // Under `mu`: earliest dispatch deadline across queued requests; false
  // when nothing is queued.
  bool EarliestDeadline(Clock::time_point* deadline) const {
    bool any = false;
    for (const auto& [name, model] : models) {
      if (!model->queue.empty() &&
          (!any || model->queue.front().deadline < *deadline)) {
        *deadline = model->queue.front().deadline;
        any = true;
      }
    }
    return any;
  }

  void WorkerLoop() {
    // The worker's reusable pool: intra-batch fan-out costs a wakeup, never
    // a thread spawn (each worker owns one because ParallelFor is not
    // reentrant on a shared pool).
    ThreadPool pool(IntraBatchThreads());
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
      Model* ready = FindReadyModel(Clock::now());
      if (ready == nullptr) {
        if (draining && queued == 0) {
          return;
        }
        Clock::time_point deadline;
        if (EarliestDeadline(&deadline)) {
          work_cv.wait_until(lock, deadline);
        } else {
          work_cv.wait(lock);
        }
        continue;
      }

      // Claim up to one policy batch from this model's queue. Requests that
      // outlived their per-request submit deadline are shed here — they fail
      // fast with kDeadlineExceeded instead of occupying a batch slot.
      std::vector<Pending> batch;
      std::vector<std::promise<Response>> shed;
      const Clock::time_point claim_now = Clock::now();
      int popped = 0;
      while (!ready->queue.empty() &&
             static_cast<int>(batch.size()) < options.policy.max_batch_size) {
        Pending p = std::move(ready->queue.front());
        ready->queue.pop_front();
        ++popped;
        if (p.has_shed_deadline && claim_now > p.shed_deadline) {
          deadline_rejected.Add();
          shed.push_back(std::move(p.promise));
          continue;
        }
        batch.push_back(std::move(p));
      }
      queued -= popped;
      queue_depth.Add(-popped);
      // Another model (or the rest of this queue) may be ready too — hand it
      // to a sibling worker while this one executes.
      if (FindReadyModel(Clock::now()) != nullptr) {
        work_cv.notify_one();
      }
      std::shared_ptr<runtime::InferenceSession> session = ready->session;
      Histogram* request_us = ready->request_us;
      lock.unlock();

      for (auto& promise : shed) {
        promise.set_value(
            Status::DeadlineExceeded("request deadline elapsed before a worker claimed it"));
      }
      if (batch.empty()) {  // everything claimed this round was shed
        lock.lock();
        continue;
      }

      TraceSpan batch_span("serving.batch");
      const Clock::time_point run_start = Clock::now();
      batch_size.Observe(static_cast<double>(batch.size()));
      for (const Pending& p : batch) {
        queue_wait_us.Observe(static_cast<double>(MicrosBetween(p.enqueued, run_start)));
      }
      std::vector<runtime::TensorDataMap> requests;
      requests.reserve(batch.size());
      for (Pending& p : batch) {
        requests.push_back(std::move(p.data));
      }
      auto results = session->RunBatchDetailed(requests, pool);
      const Clock::time_point run_end = Clock::now();
      batches.Add();
      batch_us.Observe(static_cast<double>(MicrosBetween(run_start, run_end)));
      for (size_t i = 0; i < batch.size(); ++i) {
        if (results[i].ok()) {
          completed.Add();
        } else {
          failed.Add();
        }
        request_us->Observe(static_cast<double>(MicrosBetween(batch[i].enqueued, run_end)));
        batch[i].promise.set_value(std::move(results[i]));
      }
      lock.lock();
    }
  }
};

Server::Server(const ServerOptions& options) : impl_(std::make_unique<Impl>()) {
  impl_->options = options;
  impl_->options.workers = std::max(1, options.workers);
  impl_->options.policy.max_batch_size = std::max(1, options.policy.max_batch_size);
  impl_->options.policy.max_delay_us = std::max<int64_t>(0, options.policy.max_delay_us);
  impl_->options.queue_capacity = std::max(1, options.queue_capacity);
  // Default intra-op budget: divide the machine across dispatcher workers,
  // same policy as IntraBatchThreads — W workers each serving batches never
  // ask for more than the core count in aggregate. Each model's session adds
  // its own single-holder gate on top, so intra-batch fan-out and intra-op
  // sharding add rather than multiply.
  if (impl_->options.session.intra_threads <= 0 &&
      !impl_->options.session.exec.intra_pool) {
    impl_->options.session.intra_threads =
        std::max(1, HardwareThreads() / impl_->options.workers);
  }
  impl_->start = MetricsRegistry::Global().Snapshot();
  for (int i = 0; i < impl_->options.workers; ++i) {
    impl_->workers.emplace_back([impl = impl_.get()] { impl->WorkerLoop(); });
  }
}

Server::~Server() { Shutdown(); }

Status Server::AddModel(const std::string& name, const graph::Graph& graph,
                        const graph::LayoutAssignment& assignment,
                        const loop::LoweredNetwork& net) {
  auto model = impl_->BuildModel(name, graph, assignment, net);
  if (!model.ok()) {
    return model.status();
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->draining) {
    return Status::Unavailable("server is shutting down");
  }
  auto [it, inserted] = impl_->models.emplace(name, std::move(*model));
  if (!inserted) {
    return Status::InvalidArgument("model '" + name + "' already registered");
  }
  impl_->model_count.Add(1);
  return Status::Ok();
}

Status Server::AddModel(const std::string& name, const core::LoadedArtifact& artifact) {
  const autotune::CompiledNetwork& net = artifact.network;
  return AddModel(name, net.graph, net.assignment, {net.groups, net.programs});
}

Status Server::SwapModel(const std::string& name, const graph::Graph& graph,
                         const graph::LayoutAssignment& assignment,
                         const loop::LoweredNetwork& net) {
  // Build and validate BEFORE touching the live model: a bad artifact must
  // never take the model down.
  auto fresh = impl_->BuildModel(name, graph, assignment, net);
  if (!fresh.ok()) {
    return fresh.status();
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->models.find(name);
  if (it == impl_->models.end()) {
    return Status::NotFound("model '" + name + "' not registered");
  }
  Model& live = *it->second;
  if ((*fresh)->interface_sig != live.interface_sig) {
    return Status::InvalidArgument(
        "refusing hot-swap of model '" + name +
        "': serving interface changed (inputs/constants differ)");
  }
  if ((*fresh)->output_shape != live.output_shape) {
    return Status::InvalidArgument("refusing hot-swap of model '" + name +
                                   "': output shape changed");
  }
  // The flip. Queued requests and every future batch use the new session;
  // batches already executing hold their own shared_ptr to the old one and
  // finish undisturbed.
  live.session = std::move((*fresh)->session);
  impl_->swaps.Add();
  return Status::Ok();
}

Status Server::SwapModel(const std::string& name, const core::LoadedArtifact& artifact) {
  const autotune::CompiledNetwork& net = artifact.network;
  return SwapModel(name, net.graph, net.assignment, {net.groups, net.programs});
}

std::future<Response> Server::Submit(const std::string& model,
                                     runtime::TensorDataMap request) {
  return Submit(model, std::move(request), SubmitOptions{});
}

std::future<Response> Server::Submit(const std::string& model, runtime::TensorDataMap request,
                                     const SubmitOptions& submit_options) {
  std::promise<Response> promise;
  std::future<Response> future = promise.get_future();
  const Clock::time_point now = Clock::now();

  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->requests.Add();
  if (impl_->draining) {
    impl_->rejected.Add();
    lock.unlock();
    promise.set_value(Status::Unavailable("server is shutting down"));
    return future;
  }
  auto it = impl_->models.find(model);
  if (it == impl_->models.end()) {
    impl_->rejected.Add();
    lock.unlock();
    promise.set_value(Status::NotFound("model '" + model + "' not registered"));
    return future;
  }
  Model& m = *it->second;
  if (static_cast<int>(m.queue.size()) >= impl_->options.queue_capacity) {
    impl_->rejected.Add();
    lock.unlock();
    promise.set_value(Status::Unavailable("queue full for model '" + model + "'"));
    return future;
  }
  Pending pending;
  pending.data = std::move(request);
  pending.promise = std::move(promise);
  pending.enqueued = now;
  pending.deadline =
      now + std::chrono::microseconds(impl_->options.policy.max_delay_us);
  if (submit_options.deadline_us > 0) {
    pending.has_shed_deadline = true;
    pending.shed_deadline = now + std::chrono::microseconds(submit_options.deadline_us);
  }
  m.queue.push_back(std::move(pending));
  ++impl_->queued;
  impl_->queue_depth.Add(1);
  lock.unlock();
  // Wake a worker: either the batch just filled, or a timer must be armed
  // for this request's deadline.
  impl_->work_cv.notify_one();
  return future;
}

Response Server::Infer(const std::string& model, runtime::TensorDataMap request) {
  return Submit(model, std::move(request)).get();
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->draining && impl_->workers.empty()) {
      return;
    }
    impl_->draining = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& w : impl_->workers) {
    if (w.joinable()) {
      w.join();
    }
  }
  impl_->workers.clear();
}

MetricsSnapshot Server::Metrics() const {
  return MetricsRegistry::Global().Snapshot().DeltaSince(impl_->start);
}

int64_t Server::queue_depth() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->queued;
}

}  // namespace alt::serving

// Production serving front-end: dynamic batching over InferenceSessions.
//
// InferenceSession (runtime/session.h) answers "run this batch"; a real
// service receives a STREAM of single requests. serving::Server closes that
// gap:
//
//   * Request queue + dynamic batching. Submit() enqueues one request per
//     call; dispatcher workers form batches under a size/timeout policy
//     (BatchPolicy): a batch leaves the queue as soon as max_batch_size
//     requests are waiting OR the oldest request has waited max_delay_us —
//     so a lone request pays at most the timeout, and a burst amortizes
//     dispatch across a full batch.
//   * Session pool dispatch. Each worker owns a reusable ThreadPool and runs
//     its batches via InferenceSession::RunBatchDetailed, so requests inside
//     a batch execute concurrently on the session's bounded arena pool, and
//     one malformed request fails alone — the rest of its batch still
//     completes.
//   * Operator metrics. Every request/batch feeds the process-global
//     MetricsRegistry: per-model latency percentiles
//     (serving.<model>.request_us), queue depth (serving.queue_depth gauge),
//     batch-size and queue-wait histograms, swap/reject counters.
//     Metrics() returns the delta since the server started — the dashboard
//     surface.
//   * Atomic hot-swap. SwapModel() builds a session for the retuned network,
//     validates that its serving interface (core::InterfaceSignature — input
//     and constant names/shapes — plus the output shape) matches the live
//     model, and flips a shared_ptr under the queue lock. In-flight batches
//     hold their own reference and finish on the old session; queued and
//     future requests run on the new one. Zero downtime, no mixed batches.
//
// Shutdown() (also run by the destructor) stops admission — further Submits
// fail with Unavailable — and DRAINS: workers keep forming (partial) batches
// until every queued request has been answered, then exit. No promise is
// ever dropped.

#ifndef ALT_SERVING_SERVER_H_
#define ALT_SERVING_SERVER_H_

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "src/core/artifact.h"
#include "src/runtime/session.h"
#include "src/support/metrics.h"

namespace alt::serving {

// When a queued batch is released to a worker.
struct BatchPolicy {
  // Dispatch as soon as this many requests are queued for one model...
  int max_batch_size = 8;
  // ...or as soon as the oldest queued request has waited this long. This is
  // the latency the batcher may ADD to a request; it bounds the tail-latency
  // cost of waiting for peers.
  int64_t max_delay_us = 2000;
};

struct ServerOptions {
  BatchPolicy policy;
  // Dispatcher workers: concurrent batches in flight.
  int workers = 1;
  // ThreadPool size per worker for intra-batch fan-out (<= 0: hardware
  // threads divided across workers, at least 1).
  int intra_batch_threads = 0;
  // Per-model queue bound; Submit past it rejects with Unavailable instead
  // of queueing unboundedly (serving.rejected counts these).
  int queue_capacity = 4096;
  // Session construction knobs (execution engine, arena cap) for AddModel /
  // SwapModel.
  runtime::SessionOptions session;
};

// The batcher's answer to one request.
using Response = StatusOr<std::vector<float>>;

class Server {
 public:
  explicit Server(const ServerOptions& options = ServerOptions());
  ~Server();  // Shutdown()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Registers a model under `name`. Fails with AlreadyExists-style
  // InvalidArgument on a duplicate name; session-construction failures pass
  // through. The artifact overload serves a core::LoadArtifact result.
  Status AddModel(const std::string& name, const graph::Graph& graph,
                  const graph::LayoutAssignment& assignment,
                  const loop::LoweredNetwork& net);
  Status AddModel(const std::string& name, const core::LoadedArtifact& artifact);

  // Atomically replaces `name`'s session with one built from the retuned
  // network. Validates the serving interface first (InterfaceSignature +
  // output shape); on mismatch the live model is untouched and
  // InvalidArgument is returned. In-flight batches finish on the old
  // session.
  Status SwapModel(const std::string& name, const graph::Graph& graph,
                   const graph::LayoutAssignment& assignment,
                   const loop::LoweredNetwork& net);
  Status SwapModel(const std::string& name, const core::LoadedArtifact& artifact);

  // Per-request knobs for Submit.
  struct SubmitOptions {
    // When > 0, the request must be CLAIMED by a worker within this many
    // microseconds of submission; a request still queued past its deadline
    // is shed with kDeadlineExceeded instead of occupying a batch slot
    // (counted in serving.deadline_rejected). 0 disables the deadline.
    // Execution time is not bounded — a claimed request always runs.
    int64_t deadline_us = 0;
  };

  // Enqueues one request; the future resolves when its batch ran (or
  // immediately with NotFound / Unavailable when the model is unknown, the
  // queue is full, or the server is shutting down). Never blocks on
  // execution.
  std::future<Response> Submit(const std::string& model, runtime::TensorDataMap request);
  std::future<Response> Submit(const std::string& model, runtime::TensorDataMap request,
                               const SubmitOptions& submit_options);

  // Submit + wait: the blocking convenience used by tests and the CLI.
  Response Infer(const std::string& model, runtime::TensorDataMap request);

  // Stops admission and drains every queued request, then joins the
  // workers. Idempotent.
  void Shutdown();

  // Serving metrics accumulated since this server was constructed (delta of
  // the process-global registry — exact when one server runs per process).
  MetricsSnapshot Metrics() const;

  // Requests currently queued across all models.
  int64_t queue_depth() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace alt::serving

#endif  // ALT_SERVING_SERVER_H_

#include "src/sim/machine.h"

#include "src/support/status.h"

namespace alt::sim {

Machine Machine::IntelCpu() {
  Machine m;
  m.name = "intel-cpu";
  m.cores = 40;
  m.vector_lanes = 16;  // AVX-512 fp32
  m.freq_ghz = 2.5;
  m.dram_bw_gbps = 120.0;
  m.dram_latency_cycles = 220.0;
  m.caches = {
      {32 * 1024, 64, 8, 4},        // L1D
      {1024 * 1024, 64, 16, 14},    // L2
      {28 * 1024 * 1024, 64, 11, 50},  // L3 (shared; modeled per-core slice)
  };
  m.prefetch_lines = 4;
  m.fma_per_cycle = 2.0;
  return m;
}

Machine Machine::NvidiaGpu() {
  Machine m;
  m.name = "nvidia-gpu";
  m.cores = 80;  // SMs
  m.vector_lanes = 32;  // warp
  m.freq_ghz = 1.4;
  m.dram_bw_gbps = 900.0;
  m.dram_latency_cycles = 400.0;
  m.caches = {
      {128 * 1024, 128, 8, 28},        // unified L1/shared per SM
      {6 * 1024 * 1024, 128, 16, 190},  // L2
  };
  m.prefetch_lines = 1;  // no hardware stream prefetcher; coalescing instead
  m.fma_per_cycle = 2.0;
  m.gpu_like = true;
  m.parallel_efficiency = 0.85;
  return m;
}

Machine Machine::ArmCpu() {
  Machine m;
  m.name = "arm-cpu";
  m.cores = 4;
  m.vector_lanes = 4;  // NEON fp32
  m.freq_ghz = 2.6;
  m.dram_bw_gbps = 30.0;
  m.dram_latency_cycles = 180.0;
  m.caches = {
      {64 * 1024, 64, 4, 4},      // L1D
      {512 * 1024, 64, 8, 12},    // L2
      {4 * 1024 * 1024, 64, 16, 40},  // L3/DSU
  };
  m.prefetch_lines = 4;
  m.fma_per_cycle = 2.0;
  return m;
}

Machine Machine::CortexA76() {
  Machine m = ArmCpu();
  m.name = "cortex-a76";
  m.cores = 1;
  return m;
}

const Machine& Machine::ByName(const std::string& name) {
  static const Machine kIntel = IntelCpu();
  static const Machine kGpu = NvidiaGpu();
  static const Machine kArm = ArmCpu();
  static const Machine kA76 = CortexA76();
  if (name == kIntel.name) {
    return kIntel;
  }
  if (name == kGpu.name) {
    return kGpu;
  }
  if (name == kArm.name) {
    return kArm;
  }
  if (name == kA76.name) {
    return kA76;
  }
  ALT_CHECK_MSG(false, "unknown machine " << name);
  return kIntel;
}

}  // namespace alt::sim

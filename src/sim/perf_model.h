// Analytic performance model.
//
// Estimates latency and memory-hierarchy counters for a lowered program on a
// Machine, fast enough to serve as the tuner's measurement device (the paper
// measures on real hardware; our "hardware" is this model plus, for the
// profiling micro-benchmarks, the trace-driven cache simulator in cache.h).
//
// The model captures exactly the effects the paper's layout tuning exploits:
//   * contiguous-run length of each access (layout tiling lengthens runs,
//     enabling line utilization and next-N-line prefetching — Table 2),
//   * tile-footprint vs cache-capacity fit per loop level (data reuse),
//   * SIMD vectorizability of the innermost loop (channels-last layouts),
//   * GPU coalescing, multi-core scaling, DRAM bandwidth ceilings.
//
// Thread-safety: EstimateProgram / EstimatePrograms are pure — all state is
// local to the call and `machine` is only read — so the measurement engine
// may invoke them concurrently from its thread pool. Keep it that way: any
// future memoization or scratch buffers here must be confined per call (or
// guarded), not stored in globals.

#ifndef ALT_SIM_PERF_MODEL_H_
#define ALT_SIM_PERF_MODEL_H_

#include <vector>

#include "src/ir/stmt.h"
#include "src/sim/machine.h"

namespace alt::sim {

struct PerfCounters {
  double latency_us = 0.0;
  double instructions = 0.0;
  double l1_loads = 0.0;
  double l1_misses = 0.0;
  double l1_stores = 0.0;
  double l2_misses = 0.0;
  double llc_misses = 0.0;
  double flops = 0.0;
  double dram_bytes = 0.0;

  PerfCounters& operator+=(const PerfCounters& o) {
    latency_us += o.latency_us;
    instructions += o.instructions;
    l1_loads += o.l1_loads;
    l1_misses += o.l1_misses;
    l1_stores += o.l1_stores;
    l2_misses += o.l2_misses;
    llc_misses += o.llc_misses;
    flops += o.flops;
    dram_bytes += o.dram_bytes;
    return *this;
  }
};

PerfCounters EstimateProgram(const ir::Program& program, const Machine& machine);

// Sums estimates over a network's programs (layout conversions included).
PerfCounters EstimatePrograms(const std::vector<ir::Program>& programs, const Machine& machine);

}  // namespace alt::sim

#endif  // ALT_SIM_PERF_MODEL_H_

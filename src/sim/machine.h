// Simulated machine profiles.
//
// The paper evaluates on Intel Xeon CPUs, NVIDIA GPUs and an ARM SoC. We
// cannot measure those here, so programs are costed on analytic machine
// models whose parameters (cache sizes, line size, next-N-line prefetcher,
// SIMD width, core count, bandwidth) capture exactly the effects the paper's
// layout analysis relies on (§5.1 observations 1-2, Table 2). Absolute
// latencies are model outputs, not silicon measurements; EXPERIMENTS.md
// discusses fidelity.

#ifndef ALT_SIM_MACHINE_H_
#define ALT_SIM_MACHINE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace alt::sim {

struct CacheLevel {
  int64_t size_bytes = 0;
  int line_bytes = 64;
  int associativity = 8;
  double hit_latency_cycles = 4;  // latency to THIS level on a miss above
};

struct Machine {
  std::string name;
  int cores = 1;
  int vector_lanes = 1;          // float32 SIMD lanes (warp size on GPU)
  double freq_ghz = 2.0;
  double dram_bw_gbps = 50.0;    // GB/s
  double dram_latency_cycles = 200.0;
  std::vector<CacheLevel> caches;  // L1 first
  int prefetch_lines = 4;        // next-N-line hardware prefetcher (Table 2)
  double fma_per_cycle = 2.0;    // vector FMA issue slots per core per cycle
  bool gpu_like = false;         // coalescing instead of prefetching
  double parallel_efficiency = 0.9;

  // 40-core Xeon-like profile (AVX-512: 16 fp32 lanes).
  static Machine IntelCpu();
  // V100-like profile (80 SMs, 32-wide warps, HBM bandwidth).
  static Machine NvidiaGpu();
  // Kirin 990-like big-core profile (NEON: 4 fp32 lanes, 4 big cores).
  static Machine ArmCpu();
  // Cortex-A76-like single-core profile used by the Table 2 experiment.
  static Machine CortexA76();

  static const Machine& ByName(const std::string& name);
};

}  // namespace alt::sim

#endif  // ALT_SIM_MACHINE_H_

#include "src/sim/cache.h"

#include <cmath>

#include "src/ir/eval.h"
#include "src/support/status.h"

namespace alt::sim {

namespace {

int Log2i(int64_t v) {
  int s = 0;
  while ((int64_t{1} << s) < v) {
    ++s;
  }
  return s;
}

}  // namespace

CacheSim::CacheSim(const Machine& machine) : prefetch_lines_(machine.prefetch_lines) {
  for (const auto& spec : machine.caches) {
    Level level;
    level.assoc = spec.associativity;
    level.line_shift = Log2i(spec.line_bytes);
    level.sets = spec.size_bytes / spec.line_bytes / spec.associativity;
    ALT_CHECK(level.sets > 0);
    level.tags.assign(level.sets * level.assoc, 0);
    level.lru.assign(level.sets * level.assoc, 0);
    level.valid.assign(level.sets * level.assoc, false);
    levels_.push_back(std::move(level));
  }
  stats_.resize(levels_.size());
}

bool CacheSim::AccessLevel(size_t li, uint64_t addr, bool is_prefetch) {
  Level& level = levels_[li];
  uint64_t line = addr >> level.line_shift;
  int64_t set = static_cast<int64_t>(line % static_cast<uint64_t>(level.sets));
  uint64_t tag = line / static_cast<uint64_t>(level.sets);
  int base = static_cast<int>(set) * level.assoc;

  if (!is_prefetch) {
    ++stats_[li].accesses;
  } else {
    ++stats_[li].prefetches;
  }
  ++tick_;

  for (int w = 0; w < level.assoc; ++w) {
    if (level.valid[base + w] && level.tags[base + w] == tag) {
      level.lru[base + w] = tick_;
      return true;
    }
  }
  if (!is_prefetch) {
    ++stats_[li].misses;
  }
  // Fill from below.
  if (li + 1 < levels_.size()) {
    AccessLevel(li + 1, addr, is_prefetch);
  }
  // Install with LRU replacement.
  int victim = 0;
  uint32_t oldest = level.lru[base];
  for (int w = 1; w < level.assoc; ++w) {
    if (!level.valid[base + w]) {
      victim = w;
      break;
    }
    if (level.lru[base + w] < oldest) {
      oldest = level.lru[base + w];
      victim = w;
    }
  }
  level.tags[base + victim] = tag;
  level.valid[base + victim] = true;
  level.lru[base + victim] = tick_;
  return false;
}

void CacheSim::Access(uint64_t addr, bool is_store) {
  if (is_store) {
    ++stores_;
  } else {
    ++loads_;
  }
  if (levels_.empty()) {
    return;
  }
  // Stream detection: a small table of concurrent sequential streams (real
  // prefetchers track several). A stream is confirmed once it advances to
  // the next line; only confirmed streams trigger the next-N-line prefetch.
  // This is what separates layout tiling (one long stream) from loop tiling
  // (a fresh, never-confirmed stream per short row) in the paper's Table 2.
  uint64_t line = addr >> levels_[0].line_shift;
  bool stream_confirmed = false;
  int match = -1;
  for (size_t i = 0; i < streams_.size(); ++i) {
    if (!streams_[i].valid) {
      continue;
    }
    if (streams_[i].last_line == line) {
      match = static_cast<int>(i);
      stream_confirmed = streams_[i].confirmed;
      break;
    }
    if (streams_[i].last_line + 1 == line) {
      match = static_cast<int>(i);
      streams_[i].confirmed = true;
      streams_[i].last_line = line;
      stream_confirmed = true;
      break;
    }
  }
  if (match < 0) {
    // Allocate the least-recently-used stream slot.
    size_t victim = 0;
    for (size_t i = 1; i < streams_.size(); ++i) {
      if (streams_[i].last_touch < streams_[victim].last_touch) {
        victim = i;
      }
    }
    streams_[victim] = {line, true, false, tick_};
    match = static_cast<int>(victim);
  }
  streams_[match].last_touch = tick_;

  bool hit = AccessLevel(0, addr, /*is_prefetch=*/false);
  if (!hit && prefetch_lines_ > 1 && stream_confirmed) {
    uint64_t line_bytes = uint64_t{1} << levels_[0].line_shift;
    for (int i = 1; i < prefetch_lines_; ++i) {
      AccessLevel(0, addr + static_cast<uint64_t>(i) * line_bytes, /*is_prefetch=*/true);
    }
  }
}

namespace {

// Address-stream walker: like the interpreter but data-free.
struct Tracer {
  const ir::Program* program;
  CacheSim* cache;
  uint64_t max_accesses;
  uint64_t accesses = 0;
  uint64_t executed_stores = 0;
  bool truncated = false;

  ir::VarSlotMap slots;
  std::unordered_map<int, uint64_t> base_addr;
  // First compile error (missing buffer decl, unbound loop var). A malformed
  // program yields zeroed stats instead of aborting the process.
  Status status = Status::Ok();

  void Fail(const std::string& msg) {
    if (status.ok()) {
      status = Status::InvalidArgument(msg);
    }
  }

  ir::CompiledExpr CompileExpr(const ir::Expr& e) {
    auto compiled = ir::CompiledExpr::Compile(e, slots);
    if (!compiled.ok()) {
      Fail(compiled.status().message());
      return ir::CompiledExpr();
    }
    return std::move(*compiled);
  }

  struct CompiledAccess {
    ir::CompiledExpr offset;
    uint64_t base = 0;
    double dummy = 0;
  };
  struct Guard {
    ir::CompiledExpr expr;
    int64_t lo, hi, modulus, rem;
  };
  struct CompiledLeafVal {
    ir::ValKind kind;
    std::vector<Guard> guards;          // kSelect
    std::vector<CompiledAccess> loads;  // flattened loads of this subtree
    std::unique_ptr<CompiledLeafVal> a;
    std::unique_ptr<CompiledLeafVal> b;
  };
  struct Node {
    ir::StmtKind kind;
    int slot = -1;
    int64_t extent = 0;
    std::vector<Node> children;
    // store payload
    std::unique_ptr<CompiledLeafVal> value;
    CompiledAccess store;
    bool accumulate_reload = false;
  };

  uint64_t AssignBases() {
    uint64_t next = 4096;
    for (const auto& decl : program->buffers) {
      base_addr[decl.tensor.id] = next;
      uint64_t bytes = static_cast<uint64_t>(decl.tensor.SizeBytes());
      next += (bytes + 4095) & ~uint64_t{4095};
    }
    return next;
  }

  CompiledAccess CompileAccess(int tensor_id, const std::vector<ir::Expr>& indices) {
    const ir::BufferDecl* decl = program->FindBuffer(tensor_id);
    if (decl == nullptr) {
      Fail("trace: no buffer decl for tensor " + std::to_string(tensor_id));
      return CompiledAccess();
    }
    auto strides = ir::RowMajorStrides(decl->tensor.shape);
    ir::Expr linear = ir::Const(0);
    for (size_t d = 0; d < indices.size(); ++d) {
      linear = ir::Add(linear, ir::Mul(indices[d], strides[d]));
    }
    CompiledAccess access;
    access.offset = CompileExpr(linear);
    access.base = base_addr[tensor_id];
    return access;
  }

  std::unique_ptr<CompiledLeafVal> CompileVal(const ir::Val& v) {
    auto out = std::make_unique<CompiledLeafVal>();
    out->kind = v->kind;
    if (v->kind == ir::ValKind::kLoad) {
      out->loads.push_back(CompileAccess(v->tensor_id, v->indices));
      return out;
    }
    if (v->kind == ir::ValKind::kSelect) {
      for (const auto& c : v->conds) {
        out->guards.push_back({CompileExpr(c.expr), c.lo, c.hi, c.modulus, c.rem});
      }
      out->a = CompileVal(v->a);
      out->b = v->b ? CompileVal(v->b) : nullptr;
      return out;
    }
    // Ordinary node: flatten children loads, keep selects nested.
    if (v->a) {
      auto ca = CompileVal(v->a);
      if (ca->kind == ir::ValKind::kSelect || !ca->guards.empty() || ca->a) {
        out->a = std::move(ca);
      } else {
        for (auto& l : ca->loads) {
          out->loads.push_back(std::move(l));
        }
      }
    }
    if (v->b) {
      auto cb = CompileVal(v->b);
      if (cb->kind == ir::ValKind::kSelect || !cb->guards.empty() || cb->a) {
        out->b = std::move(cb);
      } else {
        for (auto& l : cb->loads) {
          out->loads.push_back(std::move(l));
        }
      }
    }
    return out;
  }

  Node Compile(const ir::Stmt& stmt) {
    Node node;
    node.kind = stmt->kind;
    switch (stmt->kind) {
      case ir::StmtKind::kFor:
        node.slot = slots.AddVar(stmt->loop_var->var_id);
        node.extent = stmt->extent;
        node.children.push_back(Compile(stmt->body));
        break;
      case ir::StmtKind::kBlock:
        for (const auto& s : stmt->stmts) {
          node.children.push_back(Compile(s));
        }
        break;
      case ir::StmtKind::kStore:
        node.value = CompileVal(stmt->value);
        node.store = CompileAccess(stmt->tensor_id, stmt->indices);
        node.accumulate_reload = stmt->mode == ir::StoreMode::kAccumulate;
        break;
    }
    return node;
  }

  void EmitVal(const CompiledLeafVal& v, const int64_t* env) {
    if (v.kind == ir::ValKind::kSelect) {
      for (const auto& g : v.guards) {
        int64_t e = g.expr.Eval(env);
        if (e < g.lo || e >= g.hi) {
          if (v.b) {
            EmitVal(*v.b, env);
          }
          return;
        }
        if (g.modulus > 1) {
          int64_t m = e % g.modulus;
          if (m < 0) {
            m += g.modulus;
          }
          if (m != g.rem) {
            if (v.b) {
              EmitVal(*v.b, env);
            }
            return;
          }
        }
      }
      if (v.a) {
        EmitVal(*v.a, env);
      }
      return;
    }
    for (const auto& l : v.loads) {
      cache->Access(l.base + static_cast<uint64_t>(l.offset.Eval(env)) * 4, false);
      ++accesses;
    }
    if (v.a) {
      EmitVal(*v.a, env);
    }
    if (v.b) {
      EmitVal(*v.b, env);
    }
  }

  void Exec(const Node& node, int64_t* env) {
    if (truncated) {
      return;
    }
    switch (node.kind) {
      case ir::StmtKind::kFor:
        for (int64_t i = 0; i < node.extent; ++i) {
          env[node.slot] = i;
          Exec(node.children[0], env);
          if (truncated) {
            return;
          }
        }
        break;
      case ir::StmtKind::kBlock:
        for (const auto& child : node.children) {
          Exec(child, env);
          if (truncated) {
            return;
          }
        }
        break;
      case ir::StmtKind::kStore: {
        EmitVal(*node.value, env);
        uint64_t addr = node.store.base + static_cast<uint64_t>(node.store.offset.Eval(env)) * 4;
        if (node.accumulate_reload) {
          cache->Access(addr, false);
          ++accesses;
        }
        cache->Access(addr, true);
        ++accesses;
        ++executed_stores;
        if (accesses >= max_accesses) {
          truncated = true;
        }
        break;
      }
    }
  }
};

}  // namespace

TraceStats SimulateProgramTrace(const ir::Program& program, const Machine& machine,
                                uint64_t max_accesses) {
  CacheSim cache(machine);
  Tracer tracer;
  tracer.program = &program;
  tracer.cache = &cache;
  tracer.max_accesses = max_accesses;
  tracer.AssignBases();
  TraceStats out;
  if (!program.root) {
    return out;
  }
  Tracer::Node plan = tracer.Compile(program.root);
  if (!tracer.status.ok()) {
    // Malformed program: report an empty (zero-access) trace. The cost model
    // turns that into a degenerate estimate and the candidate is rejected
    // upstream; crashing the tuning process here would be strictly worse.
    return out;
  }
  std::vector<int64_t> env(tracer.slots.size(), 0);
  tracer.Exec(plan, env.data());

  int64_t total_stores = ir::CountStoreExecutions(program.root);
  out.fraction = total_stores > 0
                     ? static_cast<double>(tracer.executed_stores) / total_stores
                     : 1.0;
  double scale = out.fraction > 0 ? 1.0 / out.fraction : 1.0;
  out.loads = static_cast<uint64_t>(cache.loads() * scale);
  out.stores = static_cast<uint64_t>(cache.stores() * scale);
  for (const auto& s : cache.stats()) {
    CacheSim::LevelStats scaled;
    scaled.accesses = static_cast<uint64_t>(s.accesses * scale);
    scaled.misses = static_cast<uint64_t>(s.misses * scale);
    scaled.prefetches = static_cast<uint64_t>(s.prefetches * scale);
    out.levels.push_back(scaled);
  }
  return out;
}

}  // namespace alt::sim

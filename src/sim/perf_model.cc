#include "src/sim/perf_model.h"

#include <algorithm>
#include <cmath>

#include "src/support/metrics.h"

#include "src/ir/affine.h"
#include "src/ir/eval.h"

namespace alt::sim {

namespace {

struct LoopInfo {
  int var_id;
  int64_t extent;
  ir::ForKind kind;
};

struct AccessInfo {
  bool is_store = false;
  int64_t tensor_elems = 0;
  std::vector<int64_t> strides;  // per enclosing loop, in elements
  double selectivity = 1.0;      // fraction of iterations the access executes
};

struct LeafInfo {
  std::vector<LoopInfo> loops;  // outer -> inner
  std::vector<AccessInfo> accesses;
  double arith_ops = 0.0;       // arithmetic nodes per innermost iteration
  double store_selectivity = 1.0;
  int64_t trips = 1;
};

// Counts arithmetic nodes and collects loads of a value expression.
void AnalyzeVal(const ir::Val& v, double selectivity, double* arith,
                std::vector<std::pair<const ir::ValNode*, double>>* loads) {
  switch (v->kind) {
    case ir::ValKind::kImm:
      return;
    case ir::ValKind::kLoad:
      loads->push_back({v.get(), selectivity});
      return;
    case ir::ValKind::kSelect: {
      double inner = selectivity;
      for (const auto& c : v->conds) {
        if (c.modulus > 1) {
          inner /= static_cast<double>(c.modulus);
        }
      }
      *arith += static_cast<double>(v->conds.size()) * selectivity;
      AnalyzeVal(v->a, inner, arith, loads);
      if (v->b) {
        AnalyzeVal(v->b, selectivity - inner, arith, loads);
      }
      return;
    }
    default: {
      *arith += selectivity;
      if (v->a) {
        AnalyzeVal(v->a, selectivity, arith, loads);
      }
      if (v->b) {
        AnalyzeVal(v->b, selectivity, arith, loads);
      }
    }
  }
}

struct Collector {
  const ir::Program* program;
  std::vector<LoopInfo> stack;
  std::vector<LeafInfo> leaves;
  double loop_iterations = 0.0;   // total loop-header executions (overhead)
  double parallel_iters = 1.0;
  bool parallel_recorded = false;

  void Walk(const ir::Stmt& stmt, int64_t outer_trips) {
    switch (stmt->kind) {
      case ir::StmtKind::kFor: {
        if (stmt->for_kind != ir::ForKind::kVectorized &&
            stmt->for_kind != ir::ForKind::kUnrolled) {
          loop_iterations += static_cast<double>(outer_trips) * stmt->extent;
        }
        if (stmt->for_kind == ir::ForKind::kParallel) {
          parallel_iters *= stmt->extent;
        }
        stack.push_back({stmt->loop_var->var_id, stmt->extent, stmt->for_kind});
        Walk(stmt->body, outer_trips * stmt->extent);
        stack.pop_back();
        break;
      }
      case ir::StmtKind::kBlock: {
        for (const auto& s : stmt->stmts) {
          Walk(s, outer_trips);
        }
        break;
      }
      case ir::StmtKind::kStore: {
        LeafInfo leaf;
        leaf.loops = stack;
        leaf.trips = outer_trips;

        // Slot map over all loop vars in scope.
        ir::VarSlotMap slots;
        for (const auto& l : stack) {
          slots.AddVar(l.var_id);
        }
        std::vector<int64_t> env(slots.size(), 0);

        // Shared affine analysis (ir/affine.h): per-loop strides come straight
        // from the decomposed coefficients, with no probe evaluations. The
        // decomposition is exact over the iteration domain, and with every
        // extent >= 2 the probe points below lie inside that domain — so both
        // derivations provably agree; probing is kept for non-affine residue.
        std::vector<ir::AffineLoop> aloops;
        aloops.reserve(stack.size());
        bool probe_only = false;
        for (const auto& l : stack) {
          aloops.push_back({l.var_id, l.extent});
          if (l.extent < 2) {
            probe_only = true;  // unit loop: probe point leaves the domain
          }
        }
        ir::AffineAnalyzer analyzer(std::move(aloops));

        auto analyze_access = [&](int tensor_id, const std::vector<ir::Expr>& indices,
                                  bool is_store, double selectivity) {
          const ir::BufferDecl* decl = program->FindBuffer(tensor_id);
          if (decl == nullptr) {
            return;
          }
          auto buf_strides = ir::RowMajorStrides(decl->tensor.shape);
          ir::Expr linear = ir::Const(0);
          for (size_t d = 0; d < indices.size() && d < buf_strides.size(); ++d) {
            linear = ir::Add(linear, ir::Mul(indices[d], buf_strides[d]));
          }
          if (!probe_only) {
            if (auto form = analyzer.Decompose(linear)) {
              static Counter& affine_strides =
                  MetricsRegistry::Global().counter("sim.affine_strides");
              affine_strides.Add();
              AccessInfo info;
              info.is_store = is_store;
              info.tensor_elems = decl->tensor.NumElements();
              info.selectivity = selectivity;
              info.strides.assign(form->coeffs.begin(), form->coeffs.end());
              leaf.accesses.push_back(std::move(info));
              return;
            }
          }
          static Counter& probed_strides =
              MetricsRegistry::Global().counter("sim.probed_strides");
          probed_strides.Add();
          auto maybe_compiled = ir::CompiledExpr::Compile(linear, slots);
          if (!maybe_compiled.ok()) {
            // Access references a var outside the loop nest (malformed
            // program); skip it rather than crash — the candidate's estimate
            // degrades but the tuning process survives.
            return;
          }
          ir::CompiledExpr compiled = std::move(*maybe_compiled);
          AccessInfo info;
          info.is_store = is_store;
          info.tensor_elems = decl->tensor.NumElements();
          info.selectivity = selectivity;
          int64_t base = compiled.Eval(env.data());
          for (size_t i = 0; i < stack.size(); ++i) {
            int slot = slots.SlotOf(stack[i].var_id);
            env[slot] = 1;
            int64_t shifted = compiled.Eval(env.data());
            env[slot] = 0;
            info.strides.push_back(shifted - base);
          }
          leaf.accesses.push_back(std::move(info));
        };

        double arith = 0.0;
        std::vector<std::pair<const ir::ValNode*, double>> loads;
        AnalyzeVal(stmt->value, 1.0, &arith, &loads);
        if (stmt->mode == ir::StoreMode::kAccumulate) {
          arith += 1.0;  // the += itself
          // Accumulation re-reads the output.
          analyze_access(stmt->tensor_id, stmt->indices, false, 1.0);
        }
        leaf.arith_ops = arith;
        for (const auto& [load, sel] : loads) {
          analyze_access(load->tensor_id, load->indices, false, sel);
        }
        analyze_access(stmt->tensor_id, stmt->indices, true, 1.0);
        leaves.push_back(std::move(leaf));
        break;
      }
    }
  }
};

struct FootprintResult {
  double lines = 0.0;   // distinct cache lines touched
  double run_lines = 0.0;  // avg consecutive lines per contiguous run
};

// Distinct lines / contiguity of an access over the loops in [from, end).
FootprintResult Footprint(const LeafInfo& leaf, const AccessInfo& access, size_t from,
                          int line_elems) {
  double distinct = 1.0;
  double run = 1.0;  // contiguous run length in elements
  for (int i = static_cast<int>(leaf.loops.size()) - 1; i >= static_cast<int>(from); --i) {
    int64_t s = std::abs(access.strides[i]);
    int64_t e = leaf.loops[i].extent;
    if (s == 0) {
      continue;  // temporal reuse
    }
    if (static_cast<double>(s) == run) {
      run *= static_cast<double>(e);
      distinct *= static_cast<double>(e);
    } else {
      distinct *= static_cast<double>(e);
    }
  }
  distinct = std::min(distinct, static_cast<double>(access.tensor_elems));
  run = std::min(run, distinct);
  FootprintResult fr;
  fr.run_lines = std::ceil(run / line_elems);
  fr.lines = distinct / run * fr.run_lines;
  return fr;
}

}  // namespace

PerfCounters EstimateProgram(const ir::Program& program, const Machine& machine) {
  // Hottest call in a tuning run (once per candidate schedule); the counter
  // is one relaxed atomic add, cheap enough to keep always-on.
  static Counter& calls = MetricsRegistry::Global().counter("sim.estimate_program_calls");
  calls.Add();
  PerfCounters out;
  if (!program.root) {
    return out;
  }
  Collector collector;
  collector.program = &program;
  collector.Walk(program.root, 1);

  const int line_bytes = machine.caches.empty() ? 64 : machine.caches[0].line_bytes;
  const int line_elems = line_bytes / 4;

  double compute_cycles = 0.0;
  double mem_stall_cycles = 0.0;

  for (const auto& leaf : collector.leaves) {
    double trips = static_cast<double>(leaf.trips);

    // Vectorization effectiveness: innermost loop vectorized and the store
    // has unit stride along it.
    double vec_eff = 1.0;
    double gather_penalty = 1.0;
    int inner = static_cast<int>(leaf.loops.size()) - 1;
    if (inner >= 0 && leaf.loops[inner].kind == ir::ForKind::kVectorized) {
      int64_t store_stride = 0;
      for (const auto& a : leaf.accesses) {
        if (a.is_store) {
          store_stride = a.strides[inner];
        }
      }
      if (store_stride == 1) {
        vec_eff = std::min<double>(leaf.loops[inner].extent, machine.vector_lanes);
        // Non-contiguous loads under a vector loop become gathers.
        for (const auto& a : leaf.accesses) {
          if (!a.is_store && a.strides[inner] != 0 && std::abs(a.strides[inner]) != 1) {
            gather_penalty += machine.gpu_like ? 0.75 : 0.25;
          }
        }
      }
    }

    // FLOPs and instruction counts.
    double flops = leaf.arith_ops * trips;
    out.flops += flops;
    double loads = 0.0;
    double stores = 0.0;
    for (const auto& a : leaf.accesses) {
      (a.is_store ? stores : loads) += trips * a.selectivity;
    }
    out.l1_loads += loads / vec_eff;
    out.l1_stores += stores / vec_eff;
    out.instructions += (flops + loads + stores) / vec_eff;

    compute_cycles += flops / (machine.fma_per_cycle * vec_eff) * gather_penalty;

    // Cache modeling per access and per level.
    for (const auto& a : leaf.accesses) {
      double reuse_misses_prev = -1.0;
      for (size_t level = 0; level < machine.caches.size(); ++level) {
        const CacheLevel& cache = machine.caches[level];
        int lelems = cache.line_bytes / 4;
        // Find the outermost loop level whose full-subtree footprint (all
        // accesses of this leaf) fits in this cache.
        size_t fit_level = leaf.loops.size();  // default: innermost only
        for (size_t k = 0; k <= leaf.loops.size(); ++k) {
          double bytes = 0.0;
          for (const auto& b : leaf.accesses) {
            bytes += Footprint(leaf, b, k, lelems).lines * cache.line_bytes;
          }
          if (bytes <= 0.75 * static_cast<double>(cache.size_bytes)) {
            fit_level = k;
            break;
          }
        }
        double outer_trips = 1.0;
        for (size_t i = 0; i < fit_level; ++i) {
          outer_trips *= static_cast<double>(leaf.loops[i].extent);
        }
        FootprintResult fr = Footprint(leaf, a, fit_level, lelems);
        double misses = outer_trips * fr.lines * a.selectivity;
        // Next-N-line prefetcher: within a contiguous run only every N-th
        // line actually stalls/counts (streaming detected).
        double prefetched = misses;
        if (!machine.gpu_like && machine.prefetch_lines > 1 && fr.run_lines > 1.0) {
          prefetched = misses *
                       std::ceil(fr.run_lines / machine.prefetch_lines) /
                       std::max(1.0, fr.run_lines);
        }
        // A lower level cannot miss more often than the level above hit.
        if (reuse_misses_prev >= 0.0) {
          prefetched = std::min(prefetched, reuse_misses_prev);
        }
        reuse_misses_prev = prefetched;
        double next_latency = (level + 1 < machine.caches.size())
                                  ? machine.caches[level + 1].hit_latency_cycles
                                  : machine.dram_latency_cycles;
        // Memory-level parallelism hides most miss latency.
        mem_stall_cycles += prefetched * next_latency * 0.25;
        if (level == 0) {
          out.l1_misses += prefetched;
        } else if (level == 1) {
          out.l2_misses += prefetched;
        }
        if (level + 1 == machine.caches.size()) {
          out.llc_misses += prefetched;
          out.dram_bytes += prefetched * cache.line_bytes;
        }
      }
    }
  }

  // Loop bookkeeping overhead.
  double overhead_cycles = collector.loop_iterations * 1.2;

  double speedup = std::min<double>(machine.cores, collector.parallel_iters) *
                   machine.parallel_efficiency;
  speedup = std::max(speedup, 1.0);

  double core_cycles = std::max(compute_cycles + overhead_cycles, mem_stall_cycles) +
                       0.2 * std::min(compute_cycles + overhead_cycles, mem_stall_cycles);
  double seconds = core_cycles / (machine.freq_ghz * 1e9) / speedup;
  double bw_seconds = out.dram_bytes / (machine.dram_bw_gbps * 1e9);
  out.latency_us = std::max(seconds, bw_seconds) * 1e6;
  // Fixed kernel-launch / dispatch overhead keeps tiny programs non-zero.
  out.latency_us += machine.gpu_like ? 3.0 : 0.5;
  return out;
}

PerfCounters EstimatePrograms(const std::vector<ir::Program>& programs,
                              const Machine& machine) {
  PerfCounters total;
  for (const auto& p : programs) {
    total += EstimateProgram(p, machine);
  }
  return total;
}

}  // namespace alt::sim

// Trace-driven set-associative cache hierarchy with a next-N-line prefetcher.
//
// Used by the profiling micro-benchmarks (paper Table 2 and Table 3) where
// exact miss counts matter: the Table 2 experiment is precisely about a
// hardware prefetcher fetching N contiguous lines on a miss, which decides
// layout tiling vs loop tiling.

#ifndef ALT_SIM_CACHE_H_
#define ALT_SIM_CACHE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/ir/stmt.h"
#include "src/sim/machine.h"

namespace alt::sim {

class CacheSim {
 public:
  explicit CacheSim(const Machine& machine);

  // One scalar access of `bytes` bytes at byte address `addr`.
  void Access(uint64_t addr, bool is_store);

  struct LevelStats {
    uint64_t accesses = 0;
    uint64_t misses = 0;        // demand misses (prefetched lines hit)
    uint64_t prefetches = 0;    // lines brought in by the prefetcher
  };

  const std::vector<LevelStats>& stats() const { return stats_; }
  uint64_t loads() const { return loads_; }
  uint64_t stores() const { return stores_; }

 private:
  struct Level {
    int64_t sets;
    int assoc;
    int line_shift;
    // tags[set * assoc + way]; lru holds per-way ages.
    std::vector<uint64_t> tags;
    std::vector<uint32_t> lru;
    std::vector<bool> valid;
  };

  // Returns true on hit at `level`; on miss recurses downward and installs.
  bool AccessLevel(size_t level, uint64_t line_addr, bool is_prefetch);

  std::vector<Level> levels_;
  std::vector<LevelStats> stats_;
  struct Stream {
    uint64_t last_line = 0;
    bool valid = false;
    bool confirmed = false;
    uint32_t last_touch = 0;
  };

  int prefetch_lines_;
  std::array<Stream, 8> streams_{};
  uint64_t loads_ = 0;
  uint64_t stores_ = 0;
  uint32_t tick_ = 0;
};

// Runs the program's exact access stream (loads then the store of every
// statement execution, guards respected) through the cache simulator.
// Stops after `max_accesses` and scales the results linearly; returns the
// simulated fraction in `fraction_out` (1.0 = complete).
struct TraceStats {
  uint64_t loads = 0;
  uint64_t stores = 0;
  std::vector<CacheSim::LevelStats> levels;
  double fraction = 1.0;  // portion of the program actually simulated
};

TraceStats SimulateProgramTrace(const ir::Program& program, const Machine& machine,
                                uint64_t max_accesses = 50'000'000);

}  // namespace alt::sim

#endif  // ALT_SIM_CACHE_H_

#include "src/support/fault_injection.h"

namespace alt {

namespace {

// SplitMix64 finalizer: a high-quality stateless mix of the inputs.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool FaultInjector::ShouldFail(uint64_t site, int attempt) const {
  if (attempt < options_.always_fail_first) {
    return true;
  }
  if (options_.failure_rate <= 0.0) {
    return false;
  }
  if (options_.failure_rate >= 1.0) {
    return true;
  }
  uint64_t h = Mix(Mix(options_.seed ^ site) + static_cast<uint64_t>(attempt));
  // Top 53 bits -> uniform double in [0, 1).
  double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < options_.failure_rate;
}

}  // namespace alt

// Lightweight status / error propagation used across the ALT code base.
//
// We deliberately avoid exceptions in the hot tuning paths; fallible APIs
// return Status or StatusOr<T>. Irrecoverable internal invariant violations
// use ALT_CHECK which aborts with a message.

#ifndef ALT_SUPPORT_STATUS_H_
#define ALT_SUPPORT_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <utility>

namespace alt {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  // Transient: the operation may succeed if retried (e.g. an injected or
  // real measurement-backend failure). Callers with a retry policy treat
  // only this code as retryable.
  kUnavailable,
  // The caller's deadline elapsed before the operation ran (e.g. a serving
  // request whose queue wait exceeded its SLO). Retrying immediately would
  // just miss again; shed instead.
  kDeadlineExceeded,
};

// Plain value-type status: a code plus a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) { return Status(StatusCode::kNotFound, std::move(msg)); }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) { return Status(StatusCode::kInternal, std::move(msg)); }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Minimal StatusOr: either a value or a non-OK status.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}                  // NOLINT(google-explicit)
  StatusOr(Status status) : status_(std::move(status)) {}          // NOLINT(google-explicit)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_ = Status::Ok();
};

[[noreturn]] void CheckFailed(const char* file, int line, const char* cond, const std::string& msg);

}  // namespace alt

#define ALT_CHECK(cond)                                              \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::alt::CheckFailed(__FILE__, __LINE__, #cond, "");             \
    }                                                                \
  } while (0)

#define ALT_CHECK_MSG(cond, msg)                                     \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream oss_;                                       \
      oss_ << msg;                                                   \
      ::alt::CheckFailed(__FILE__, __LINE__, #cond, oss_.str());     \
    }                                                                \
  } while (0)

#define ALT_RETURN_IF_ERROR(expr)           \
  do {                                      \
    ::alt::Status status_ = (expr);         \
    if (!status_.ok()) return status_;      \
  } while (0)

#endif  // ALT_SUPPORT_STATUS_H_

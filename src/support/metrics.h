// Named counters and latency histograms for tuning telemetry.
//
// The registry is a process-global singleton of monotone instruments:
//
//   * Counter — a lock-free (relaxed atomic) 64-bit counter. Full 64-bit
//     range: values past INT32_MAX neither truncate nor saturate.
//   * Gauge — a settable signed level (e.g. serving queue depth): Set() and
//     Add() with negative deltas allowed. A gauge is a point-in-time reading,
//     so DeltaSince passes the end-snapshot value through unchanged.
//   * Histogram — fixed exponential buckets (4 per octave, so bucket bounds
//     grow by 2^(1/4) ~ 1.19x) over non-negative doubles, with approximate
//     p50/p95/p99 (reported as the upper bound of the bucket holding the
//     rank, i.e. at most one resolution step above the true value). Observe()
//     is wait-free: one log2, one atomic increment per bucket/count/sum.
//
// Instruments are created on first use and never destroyed, so call sites can
// cache references in function-local statics:
//
//   static Counter& hits = MetricsRegistry::Global().counter("measure.cache_hits");
//   hits.Add();
//
// Per-run attribution on a process-global registry works by DELTA snapshots:
// snapshot at run start, snapshot at run end, and DeltaSince() subtracts
// counters and histogram buckets (recomputing percentiles from the delta
// buckets). JointTuner does exactly this to attach a per-compilation
// MetricsSnapshot to CompiledNetwork. Deltas are exact as long as no other
// run executes concurrently in the same process; min/max are not deltable
// and report the end-snapshot values.

#ifndef ALT_SUPPORT_METRICS_H_
#define ALT_SUPPORT_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace alt {

class Counter {
 public:
  void Add(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

class Histogram {
 public:
  // Bucket 0 holds values <= 1 (and anything non-positive or non-finite from
  // below); the last bucket holds everything past the covered range (~4e9
  // units, i.e. over an hour when observing microseconds).
  static constexpr int kBuckets = 128;
  static constexpr int kSubBuckets = 4;  // buckets per octave

  void Observe(double value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double max() const { return max_.load(std::memory_order_relaxed); }
  // Approximate percentile in [0, 100]: the upper bound of the bucket that
  // contains the requested rank (0 when empty).
  double Percentile(double p) const;
  void Reset();

  int64_t bucket(int i) const { return buckets_[i].load(std::memory_order_relaxed); }
  // Upper bound of bucket i's value range.
  static double BucketUpperBound(int i);

 private:
  std::atomic<int64_t> buckets_[kBuckets] = {};
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

// Point-in-time value of one histogram, carrying the raw buckets so deltas
// can recompute percentiles.
struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  double sum = 0.0;
  double max = 0.0;  // since process start; not deltable
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<int64_t> buckets;

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
};

struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;  // sorted by name
  std::vector<std::pair<std::string, int64_t>> gauges;    // sorted by name
  std::vector<HistogramSnapshot> histograms;              // sorted by name

  // 0 / nullptr when the instrument does not exist (yet).
  int64_t counter(const std::string& name) const;
  int64_t gauge(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;

  // This snapshot minus `start`: counters subtract, histogram buckets
  // subtract bucket-wise and percentiles are recomputed from the difference.
  // Instruments absent from `start` pass through unchanged.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& start) const;

  // Stable JSON rendering (counters + histogram summaries) for artifacts.
  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Find-or-create; the returned reference is valid forever.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

  // Zeroes every instrument's value (identities survive, so references cached
  // by call sites stay valid). Test isolation only.
  void ResetForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace alt

#endif  // ALT_SUPPORT_METRICS_H_

// Minimal checked file I/O for the tuning journal and record files.
//
// Everything returns Status — a full disk, a missing directory, or a
// permission error during a 12-hour tuning run must surface as a recoverable
// condition, never an abort. AppendWriter flushes after every line so the
// on-disk journal is complete up to the last finished write even if the
// process is killed; a torn final line is expected and tolerated by the
// CRC-framed reader (see core/tuning_journal.h).

#ifndef ALT_SUPPORT_FILEIO_H_
#define ALT_SUPPORT_FILEIO_H_

#include <cstdio>
#include <string>
#include <string_view>

#include "src/support/status.h"

namespace alt {

bool FileExists(const std::string& path);

StatusOr<std::string> ReadFile(const std::string& path);

Status WriteFile(const std::string& path, std::string_view contents);

// Shrinks `path` to exactly `size` bytes (used to discard a corrupt journal
// tail before appending new entries after it).
Status TruncateFile(const std::string& path, uint64_t size);

Status RemoveFile(const std::string& path);

// Line-oriented append handle. Each AppendLine writes `line` plus '\n' and
// flushes, so every completed call survives a crash of this process.
class AppendWriter {
 public:
  AppendWriter() = default;
  ~AppendWriter() { Close(); }

  AppendWriter(AppendWriter&& other) noexcept : file_(other.file_) { other.file_ = nullptr; }
  AppendWriter& operator=(AppendWriter&& other) noexcept;
  AppendWriter(const AppendWriter&) = delete;
  AppendWriter& operator=(const AppendWriter&) = delete;

  static StatusOr<AppendWriter> Open(const std::string& path);

  Status AppendLine(std::string_view line);

  // Forces appended lines to stable storage (fflush + fsync). AppendLine only
  // flushes to the kernel, which survives a crash of this process but not a
  // power loss; callers with durability requirements sync at their own cadence
  // (see core::TuningJournalOptions::fsync_every_n_lines).
  Status Sync();

  bool is_open() const { return file_ != nullptr; }
  void Close();

 private:
  std::FILE* file_ = nullptr;
};

}  // namespace alt

#endif  // ALT_SUPPORT_FILEIO_H_

// Subprocess spawn/kill/pipe helpers for crash-isolated measurement workers.
//
// A measurement worker is a FORKED child of the tuner process: it inherits
// the batch context (graph, layout assignment, fused group, schedules) by
// copy-on-write, so nothing but candidate indices and results ever crosses
// the pipe. The parent talks to each child over a pair of anonymous pipes
// carrying length-prefixed, CRC-framed messages:
//
//   <u32 LE payload length> <u32 LE Crc32(payload)> <payload>
//
// The same Crc32 that frames the tuning journal and artifacts (support/crc32)
// guards every frame, so a child that dies mid-write, scribbles on its pipe,
// or garbles a reply is DETECTED — the reader reports kCorrupt/kEof instead
// of handing corrupt bytes to the tuner. Frames are written with a single
// write(2); at the sizes used here (well under PIPE_BUF) that write is atomic,
// so a reader never sees an interleaved or torn frame from a live writer.
//
// fork() in a process with running threads is safe only because the children
// never touch anything but pure functions and their own pipe fds: the child
// body must not take locks, log, or allocate from arenas shared with other
// threads' in-flight state (see autotune/worker_pool.cc for the contract).

#ifndef ALT_SUPPORT_SUBPROCESS_H_
#define ALT_SUPPORT_SUBPROCESS_H_

#include <sys/types.h>

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/status.h"

namespace alt {

// A live forked worker and the parent's ends of its two pipes.
struct ChildProcess {
  pid_t pid = -1;
  int read_fd = -1;   // parent reads the child's replies here
  int write_fd = -1;  // parent writes requests here

  bool running() const { return pid > 0; }
};

// Forks a child that runs `body(request_fd, reply_fd)` and _exits with its
// return value (no atexit handlers, no static destructors — the parent's
// buffers must not be flushed twice). `close_in_child` lists additional fds
// the child must not inherit open — typically the pipe ends of its sibling
// workers, whose EOF detection would otherwise be defeated by this child
// keeping their write ends alive.
StatusOr<ChildProcess> SpawnChild(const std::function<int(int request_fd, int reply_fd)>& body,
                                  const std::vector<int>& close_in_child = {});

// SIGKILLs and reaps `child`, then closes the parent's pipe ends. Idempotent;
// safe on an already-dead or never-spawned child.
void KillChild(ChildProcess* child);

enum class FrameReadResult {
  kOk,       // *payload holds one verified frame
  kEof,      // clean end of stream (writer closed / died before a frame)
  kTimeout,  // deadline elapsed before a full frame arrived
  kCorrupt,  // CRC mismatch, oversized length, or a torn partial frame
  kError,    // read(2)/poll(2) failure
};

// Builds one frame: 4-byte little-endian payload length, 4-byte little-endian
// Crc32(payload), payload bytes.
std::string EncodeFrame(std::string_view payload);

// Writes all of `bytes` to `fd`, retrying short writes and EINTR. The caller
// must have SIGPIPE ignored (WorkerPool does this once) so a dead reader
// surfaces as an EPIPE Status, not a process-killing signal.
Status WriteAll(int fd, std::string_view bytes);

// EncodeFrame + WriteAll.
Status WriteFrame(int fd, std::string_view payload);

// Reads and verifies one frame. `deadline_ms` < 0 blocks indefinitely; >= 0
// bounds the TOTAL wait (poll + partial reads) from call time. On anything
// but kOk the stream should be considered dead: a frame boundary cannot be
// re-found after corruption or a partial read.
FrameReadResult ReadFrame(int fd, std::string* payload, int deadline_ms);

}  // namespace alt

#endif  // ALT_SUPPORT_SUBPROCESS_H_

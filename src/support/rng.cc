#include "src/support/rng.h"

#include <cmath>

namespace alt {

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  ALT_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (~n + 1) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  ALT_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  double u2 = NextDouble();
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

}  // namespace alt

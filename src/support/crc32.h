// Checksums and stable hashes for on-disk framing and cache-key
// fingerprinting.
//
// Crc32 (IEEE 802.3, reflected polynomial 0xEDB88320) frames every tuning
// journal line so a crashed or torn write is detected on load instead of
// silently corrupting a resumed run. Fnv1a64 fingerprints measurement cache
// keys: the full keys are long structural strings, the journal only needs a
// stable 64-bit identity for them. Both are fixed algorithms — values written
// by one build must verify on any other — so neither may ever be swapped for
// std::hash (which is unspecified across implementations).

#ifndef ALT_SUPPORT_CRC32_H_
#define ALT_SUPPORT_CRC32_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace alt {

// CRC-32 (IEEE) of `data`, starting from the conventional ~0 seed.
uint32_t Crc32(std::string_view data);

// FNV-1a 64-bit hash of `data`.
uint64_t Fnv1a64(std::string_view data);

// Line framing shared by every CRC-checked text format (tuning journal,
// compiled-network artifacts): "<crc32-hex-8> <payload>", checksum over
// exactly <payload>.
std::string FrameLine(const std::string& payload);

// Splits a framed line and verifies its checksum. Returns false on short
// lines, malformed hex, or a CRC mismatch; `payload` is valid only on true.
bool UnframeLine(std::string_view line, std::string* payload);

}  // namespace alt

#endif  // ALT_SUPPORT_CRC32_H_

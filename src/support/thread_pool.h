// Fixed-size worker thread pool used by the parallel measurement engine.
//
// The pool is deliberately minimal: it supports exactly the pattern the tuner
// needs — index-based fan-out with a blocking join (`ParallelFor`) — so that
// callers can compute results into pre-sized slots and then reduce them in a
// deterministic order on the calling thread. Work stealing, futures, and task
// priorities are intentionally out of scope.
//
// Thread-safety contract: the closure passed to ParallelFor runs concurrently
// on pool workers and on the calling thread; it must only write to disjoint
// state per index (e.g. `results[i]`). ParallelFor itself is NOT reentrant
// on one pool — neither from a second thread while a batch is in flight, nor
// from inside a batch's own closure. Reentrancy is DETECTED at runtime: the
// offending call returns FailedPrecondition immediately (running no indices)
// instead of corrupting the in-flight batch or self-deadlocking on the join.
// The inline path (a pool with no workers, or n <= 1) stays callable from
// anywhere, nested included — it touches no shared batch state.
//
// Fault tolerance: a closure that throws does not take the pool down. On a
// worker thread an escaping exception would call std::terminate, and a skipped
// completion would deadlock the joining caller — so every invocation is
// wrapped, the index is always marked finished, and the first captured
// exception is reported as the ParallelFor return Status. Remaining indices
// of the batch still run; the pool stays usable for subsequent batches.

#ifndef ALT_SUPPORT_THREAD_POOL_H_
#define ALT_SUPPORT_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/support/status.h"

namespace alt {

// std::thread::hardware_concurrency() clamped to at least 1. The standard
// allows it to return 0 ("not computable"); every consumer that sizes a pool
// or divides by the core count needs the same floor, so the clamp lives here
// once instead of being re-derived (inconsistently) at each call site.
int HardwareThreads();

class ThreadPool {
 public:
  // Spawns `num_threads - 1` workers (the calling thread participates in
  // ParallelFor, so `num_threads` is the total parallelism). `num_threads`
  // values below 2 spawn no workers and make ParallelFor run inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total parallelism (workers + caller).
  int size() const { return static_cast<int>(workers_.size()) + 1; }

  // Runs fn(i) for every i in [0, n); returns once all n calls completed.
  // Indices are claimed dynamically, so per-index results must be written to
  // disjoint slots and reduced by the caller afterwards. Returns Ok when every
  // invocation returned normally, otherwise Internal carrying the first
  // exception observed (all indices are still attempted either way).
  // A reentrant call — another batch already in flight on this pool — runs
  // nothing and returns FailedPrecondition (see the contract above).
  Status ParallelFor(int n, const std::function<void(int)>& fn);

 private:
  void WorkerLoop();
  // Claims the next index of batch `batch`; false when that batch is drained
  // (or superseded), which tells the claimant to stop working on it.
  bool ClaimIndex(uint64_t batch, int* index);
  void FinishIndex();
  // fn(i) with exception capture; always marks the index finished.
  void RunIndex(const std::function<void(int)>& fn, int index);
  void RecordError(int index, const char* what);

  std::vector<std::thread> workers_;

  // Reentrancy detector for the pooled path: set for the duration of one
  // ParallelFor, checked-and-set atomically so both a concurrent second
  // caller and a nested call from a batch closure are refused with a Status.
  std::atomic<bool> in_flight_{false};

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers: new batch or shutdown
  std::condition_variable done_cv_;   // signals caller: batch finished
  const std::function<void(int)>* fn_ = nullptr;  // current batch body
  int batch_size_ = 0;
  uint64_t batch_id_ = 0;             // bumped per ParallelFor call
  int next_index_ = 0;                // next unclaimed index of the batch
  int completed_ = 0;                 // indices fully executed
  std::string batch_error_;           // first exception of the current batch
  bool batch_failed_ = false;
  bool shutdown_ = false;
};

}  // namespace alt

#endif  // ALT_SUPPORT_THREAD_POOL_H_

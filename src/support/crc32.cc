#include "src/support/crc32.h"

#include <array>
#include <cstdio>

namespace alt {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint64_t Fnv1a64(std::string_view data) {
  uint64_t hash = 0xcbf29ce484222325ull;
  for (unsigned char byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string FrameLine(const std::string& payload) {
  char crc[16];
  std::snprintf(crc, sizeof(crc), "%08x ", Crc32(payload));
  return crc + payload;
}

bool UnframeLine(std::string_view line, std::string* payload) {
  if (line.size() < 10 || line[8] != ' ') {
    return false;
  }
  uint32_t crc = 0;
  for (int i = 0; i < 8; ++i) {
    char c = line[i];
    uint32_t digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = 10 + (c - 'a');
    } else {
      return false;
    }
    crc = (crc << 4) | digit;
  }
  *payload = std::string(line.substr(9));
  return Crc32(*payload) == crc;
}

}  // namespace alt

#include "src/support/trace.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "src/support/fileio.h"

namespace alt {

namespace {

// Escapes a string for embedding inside a JSON string literal. Site names are
// plain identifiers, but detail strings may carry serialized schedules or
// layout descriptions with arbitrary punctuation.
void AppendJsonEscaped(const std::string& s, std::ostringstream& oss) {
  for (char c : s) {
    switch (c) {
      case '"':
        oss << "\\\"";
        break;
      case '\\':
        oss << "\\\\";
        break;
      case '\n':
        oss << "\\n";
        break;
      case '\t':
        oss << "\\t";
        break;
      case '\r':
        oss << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          oss << buf;
        } else {
          oss << c;
        }
    }
  }
}

}  // namespace

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // never destroyed
  return *recorder;
}

int64_t TraceRecorder::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TraceRecorder::Start() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  epoch_ns_.store(NowNs(), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
}

void TraceRecorder::Stop() { enabled_.store(false, std::memory_order_release); }

TraceRecorder::ThreadBuffer& TraceRecorder::LocalBuffer() {
  // Buffers are never removed from `buffers_`, so the cached raw pointer
  // stays valid for the life of the process even across Start() calls.
  thread_local ThreadBuffer* local = nullptr;
  if (local == nullptr) {
    std::lock_guard<std::mutex> lock(registry_mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    local = buffers_.back().get();
    local->tid = static_cast<int>(buffers_.size());
  }
  return *local;
}

void TraceRecorder::Record(const char* name, std::string detail, int64_t start_ns,
                           int64_t end_ns, bool instant) {
  if (!enabled()) {
    return;  // stopped between span construction and destruction: drop
  }
  int64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  if (start_ns < epoch) {
    return;  // span straddles a Start(): its beginning was cleared away
  }
  ThreadBuffer& buffer = LocalBuffer();
  TraceEvent event;
  event.name = name;
  event.detail = std::move(detail);
  event.ts_us = static_cast<double>(start_ns - epoch) * 1e-3;
  event.dur_us = static_cast<double>(end_ns - start_ns) * 1e-3;
  event.tid = buffer.tid;
  event.instant = instant;
  std::lock_guard<std::mutex> lock(buffer.mu);
  buffer.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::StopAndDrain() {
  Stop();
  std::vector<TraceEvent> all;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (auto& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    for (auto& event : buffer->events) {
      all.push_back(std::move(event));
    }
    buffer->events.clear();
  }
  return all;
}

int TraceRecorder::thread_buffer_count() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  return static_cast<int>(buffers_.size());
}

Status TraceRecorder::StopAndWriteChromeTrace(const std::string& path) {
  return WriteChromeTrace(StopAndDrain(), path);
}

Status WriteChromeTrace(const std::vector<TraceEvent>& events, const std::string& path) {
  std::ostringstream oss;
  oss << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& event : events) {
    if (!first) {
      oss << ",";
    }
    first = false;
    oss << "{\"name\":\"";
    AppendJsonEscaped(event.name, oss);
    oss << "\",\"cat\":\"alt\",\"ph\":\"" << (event.instant ? "i" : "X") << "\",\"ts\":";
    char num[40];
    std::snprintf(num, sizeof(num), "%.3f", event.ts_us);
    oss << num;
    if (!event.instant) {
      std::snprintf(num, sizeof(num), "%.3f", event.dur_us);
      oss << ",\"dur\":" << num;
    } else {
      oss << ",\"s\":\"t\"";  // instant scope: thread
    }
    oss << ",\"pid\":1,\"tid\":" << event.tid;
    if (!event.detail.empty()) {
      oss << ",\"args\":{\"detail\":\"";
      AppendJsonEscaped(event.detail, oss);
      oss << "\"}";
    }
    oss << "}";
  }
  oss << "],\"displayTimeUnit\":\"ms\"}\n";
  return WriteFile(path, oss.str());
}

}  // namespace alt

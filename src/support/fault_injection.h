// Deterministic fault injection for measurement robustness testing.
//
// Real tuning backends (RPC measurement workers, remote devices) fail
// transiently; the simulator never does. FaultInjector lets the measurement
// engine rehearse those failures: at a configured rate, a measurement attempt
// is declared failed before any work happens, exercising the retry /
// quarantine / penalty-reward machinery end to end.
//
// The decision for a given (site, attempt) pair is a PURE function of the
// injector's seed — no internal state is consumed. This is load-bearing
// twice over: worker threads can consult the injector concurrently without
// perturbing each other (trajectory determinism at any thread count), and a
// resumed tuning run that skips already-journaled measurements still sees
// exactly the same fault decisions on the continuation as an uninterrupted
// run would (journal-resume determinism).

#ifndef ALT_SUPPORT_FAULT_INJECTION_H_
#define ALT_SUPPORT_FAULT_INJECTION_H_

#include <cstdint>

namespace alt {

class FaultInjector {
 public:
  struct Options {
    // Probability in [0, 1] that any single measurement attempt fails.
    double failure_rate = 0.0;
    uint64_t seed = 0;
    // Deterministic override for tests: attempts numbered below this value
    // fail at EVERY site regardless of rate (e.g. 1 = first attempt always
    // fails, retries succeed; a large value forces quarantine).
    int always_fail_first = 0;
  };

  FaultInjector() = default;
  explicit FaultInjector(const Options& options) : options_(options) {}

  bool enabled() const {
    return options_.failure_rate > 0.0 || options_.always_fail_first > 0;
  }

  const Options& options() const { return options_; }

  // Whether attempt number `attempt` (0-based) at `site` fails. `site` is a
  // stable fingerprint of the work item (e.g. Fnv1a64 of a measurement cache
  // key) so the same candidate sees the same fate in any run with this seed.
  bool ShouldFail(uint64_t site, int attempt) const;

 private:
  Options options_;
};

}  // namespace alt

#endif  // ALT_SUPPORT_FAULT_INJECTION_H_

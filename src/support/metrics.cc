#include "src/support/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace alt {

namespace {

int BucketIndex(double value) {
  if (!(value > 1.0)) {  // <= 1, zero, negative, NaN
    return 0;
  }
  int idx = 1 + static_cast<int>(std::floor(std::log2(value) *
                                            static_cast<double>(Histogram::kSubBuckets)));
  return std::min(std::max(idx, 1), Histogram::kBuckets - 1);
}

// Percentile over raw bucket counts: upper bound of the bucket holding the
// rank. Shared by the live histogram and (delta) snapshots.
double PercentileFromBuckets(const std::vector<int64_t>& buckets, int64_t count, double p) {
  if (count <= 0) {
    return 0.0;
  }
  double frac = std::min(std::max(p, 0.0), 100.0) / 100.0;
  int64_t target = std::max<int64_t>(1, static_cast<int64_t>(std::ceil(frac * count)));
  int64_t cumulative = 0;
  for (int i = 0; i < static_cast<int>(buckets.size()); ++i) {
    cumulative += buckets[i];
    if (cumulative >= target) {
      return Histogram::BucketUpperBound(i);
    }
  }
  return Histogram::BucketUpperBound(Histogram::kBuckets - 1);
}

std::string FormatJsonDouble(double v) {
  if (!std::isfinite(v)) {
    return "0";  // JSON has no NaN/Inf; instruments never produce them anyway
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

double Histogram::BucketUpperBound(int i) {
  if (i <= 0) {
    return 1.0;
  }
  return std::exp2(static_cast<double>(i) / static_cast<double>(kSubBuckets));
}

void Histogram::Observe(double value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double clean = std::isfinite(value) && value > 0.0 ? value : 0.0;
  sum_.fetch_add(clean, std::memory_order_relaxed);
  double seen = max_.load(std::memory_order_relaxed);
  while (clean > seen && !max_.compare_exchange_weak(seen, clean, std::memory_order_relaxed)) {
  }
}

double Histogram::Percentile(double p) const {
  std::vector<int64_t> buckets(kBuckets);
  for (int i = 0; i < kBuckets; ++i) {
    buckets[i] = bucket(i);
  }
  return PercentileFromBuckets(buckets, count(), p);
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.count = histogram->count();
    h.sum = histogram->sum();
    h.max = histogram->max();
    h.buckets.resize(Histogram::kBuckets);
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      h.buckets[i] = histogram->bucket(i);
    }
    h.p50 = PercentileFromBuckets(h.buckets, h.count, 50);
    h.p95 = PercentileFromBuckets(h.buckets, h.count, 95);
    h.p99 = PercentileFromBuckets(h.buckets, h.count, 99);
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) {
    counter->Reset();
  }
  for (auto& [name, gauge] : gauges_) {
    gauge->Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->Reset();
  }
}

int64_t MetricsSnapshot::counter(const std::string& name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) {
      return v;
    }
  }
  return 0;
}

int64_t MetricsSnapshot::gauge(const std::string& name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) {
      return v;
    }
  }
  return 0;
}

const HistogramSnapshot* MetricsSnapshot::histogram(const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) {
      return &h;
    }
  }
  return nullptr;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& start) const {
  MetricsSnapshot delta;
  delta.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) {
    delta.counters.emplace_back(name, value - start.counter(name));
  }
  // Gauges are levels, not totals: the end-snapshot reading IS the delta-era
  // reading, so they pass through unsubtracted.
  delta.gauges = gauges;
  delta.histograms.reserve(histograms.size());
  for (const auto& h : histograms) {
    HistogramSnapshot d = h;
    if (const HistogramSnapshot* s = start.histogram(h.name)) {
      d.count -= s->count;
      d.sum -= s->sum;
      for (size_t i = 0; i < d.buckets.size() && i < s->buckets.size(); ++i) {
        d.buckets[i] -= s->buckets[i];
      }
      d.p50 = PercentileFromBuckets(d.buckets, d.count, 50);
      d.p95 = PercentileFromBuckets(d.buckets, d.count, 95);
      d.p99 = PercentileFromBuckets(d.buckets, d.count, 99);
    }
    delta.histograms.push_back(std::move(d));
  }
  return delta;
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream oss;
  oss << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    oss << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  oss << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    oss << (first ? "\n" : ",\n") << "    \"" << name << "\": " << value;
    first = false;
  }
  oss << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& h : histograms) {
    oss << (first ? "\n" : ",\n") << "    \"" << h.name << "\": {\"count\": " << h.count
        << ", \"sum\": " << FormatJsonDouble(h.sum)
        << ", \"mean\": " << FormatJsonDouble(h.mean())
        << ", \"p50\": " << FormatJsonDouble(h.p50)
        << ", \"p95\": " << FormatJsonDouble(h.p95)
        << ", \"p99\": " << FormatJsonDouble(h.p99)
        << ", \"max\": " << FormatJsonDouble(h.max) << "}";
    first = false;
  }
  oss << "\n  }\n}\n";
  return oss.str();
}

}  // namespace alt

#include "src/support/subprocess.h"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/support/crc32.h"

namespace alt {

namespace {

// Upper bound on a frame payload. Worker replies are a few hundred bytes at
// most; a length field beyond this is corruption (or a desynchronized
// stream), never a legitimate frame.
constexpr uint32_t kMaxFramePayload = 1u << 20;

void PutU32Le(uint32_t v, char* out) {
  out[0] = static_cast<char>(v & 0xff);
  out[1] = static_cast<char>((v >> 8) & 0xff);
  out[2] = static_cast<char>((v >> 16) & 0xff);
  out[3] = static_cast<char>((v >> 24) & 0xff);
}

uint32_t GetU32Le(const char* in) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

int64_t NowMs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000 + ts.tv_nsec / 1000000;
}

// Reads exactly `n` bytes into `buf`, honouring an absolute deadline
// (`deadline_ms_abs` < 0: block forever). `*got` reports bytes read so far so
// the caller can distinguish clean EOF from a torn frame.
FrameReadResult ReadExact(int fd, char* buf, size_t n, int64_t deadline_ms_abs, size_t* got) {
  *got = 0;
  while (*got < n) {
    if (deadline_ms_abs >= 0) {
      int64_t remaining = deadline_ms_abs - NowMs();
      if (remaining < 0) {
        remaining = 0;
      }
      struct pollfd pfd;
      pfd.fd = fd;
      pfd.events = POLLIN;
      int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (pr < 0) {
        if (errno == EINTR) {
          continue;
        }
        return FrameReadResult::kError;
      }
      if (pr == 0) {
        return FrameReadResult::kTimeout;
      }
    }
    ssize_t r = ::read(fd, buf + *got, n - *got);
    if (r == 0) {
      return FrameReadResult::kEof;
    }
    if (r < 0) {
      if (errno == EINTR) {
        continue;
      }
      return FrameReadResult::kError;
    }
    *got += static_cast<size_t>(r);
  }
  return FrameReadResult::kOk;
}

}  // namespace

StatusOr<ChildProcess> SpawnChild(const std::function<int(int request_fd, int reply_fd)>& body,
                                  const std::vector<int>& close_in_child) {
  int request[2];  // parent writes [1], child reads [0]
  int reply[2];    // child writes [1], parent reads [0]
  if (::pipe(request) != 0) {
    return Status::Internal(std::string("pipe failed: ") + std::strerror(errno));
  }
  if (::pipe(reply) != 0) {
    int err = errno;
    ::close(request[0]);
    ::close(request[1]);
    return Status::Internal(std::string("pipe failed: ") + std::strerror(err));
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    int err = errno;
    ::close(request[0]);
    ::close(request[1]);
    ::close(reply[0]);
    ::close(reply[1]);
    return Status::Internal(std::string("fork failed: ") + std::strerror(err));
  }
  if (pid == 0) {
    // Child. Drop the parent-side pipe ends and every sibling fd we were told
    // about, so a sibling's EOF is observable the moment it dies.
    ::close(request[1]);
    ::close(reply[0]);
    for (int fd : close_in_child) {
      if (fd >= 0 && fd != request[0] && fd != reply[1]) {
        ::close(fd);
      }
    }
    int rc = 1;
    try {
      rc = body(request[0], reply[1]);
    } catch (...) {
      rc = 1;
    }
    ::_exit(rc);
  }
  // Parent.
  ::close(request[0]);
  ::close(reply[1]);
  ChildProcess child;
  child.pid = pid;
  child.read_fd = reply[0];
  child.write_fd = request[1];
  return child;
}

void KillChild(ChildProcess* child) {
  if (child == nullptr) {
    return;
  }
  if (child->pid > 0) {
    ::kill(child->pid, SIGKILL);
    int status = 0;
    while (::waitpid(child->pid, &status, 0) < 0 && errno == EINTR) {
    }
    child->pid = -1;
  }
  if (child->read_fd >= 0) {
    ::close(child->read_fd);
    child->read_fd = -1;
  }
  if (child->write_fd >= 0) {
    ::close(child->write_fd);
    child->write_fd = -1;
  }
}

std::string EncodeFrame(std::string_view payload) {
  std::string out(8 + payload.size(), '\0');
  PutU32Le(static_cast<uint32_t>(payload.size()), &out[0]);
  PutU32Le(Crc32(payload), &out[4]);
  std::memcpy(&out[8], payload.data(), payload.size());
  return out;
}

Status WriteAll(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t w = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (w < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Unavailable(std::string("pipe write failed: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(w);
  }
  return Status::Ok();
}

Status WriteFrame(int fd, std::string_view payload) {
  // One write(2) per frame: at worker-protocol sizes (< PIPE_BUF) the kernel
  // delivers it atomically, so a reader that polls readable sees whole frames.
  return WriteAll(fd, EncodeFrame(payload));
}

FrameReadResult ReadFrame(int fd, std::string* payload, int deadline_ms) {
  const int64_t deadline_abs = deadline_ms < 0 ? -1 : NowMs() + deadline_ms;
  char header[8];
  size_t got = 0;
  FrameReadResult r = ReadExact(fd, header, sizeof(header), deadline_abs, &got);
  if (r != FrameReadResult::kOk) {
    // EOF after a partial header is a torn frame, not a clean close.
    return (r == FrameReadResult::kEof && got > 0) ? FrameReadResult::kCorrupt : r;
  }
  const uint32_t len = GetU32Le(header);
  const uint32_t crc = GetU32Le(header + 4);
  if (len > kMaxFramePayload) {
    return FrameReadResult::kCorrupt;
  }
  payload->assign(len, '\0');
  if (len > 0) {
    r = ReadExact(fd, payload->data(), len, deadline_abs, &got);
    if (r != FrameReadResult::kOk) {
      return r == FrameReadResult::kEof ? FrameReadResult::kCorrupt : r;
    }
  }
  if (Crc32(*payload) != crc) {
    return FrameReadResult::kCorrupt;
  }
  return FrameReadResult::kOk;
}

}  // namespace alt

// Low-overhead span tracing for the tuner and measurement engine.
//
// The recorder is a process-global singleton that collects timestamped spans
// into PER-THREAD buffers and serializes them to the Chrome trace-event JSON
// format (load in chrome://tracing or https://ui.perfetto.dev). Design goals,
// in order:
//
//   * DISABLED IS FREE — tracing is off by default. A TraceSpan constructed
//     while the recorder is disabled costs one relaxed atomic load and never
//     touches the clock, allocates, or registers a thread buffer. This is
//     what keeps the instrumentation safe to leave in hot paths (the
//     bench_tuner_throughput overhead budget is <1%).
//   * THREAD-SAFE BY CONSTRUCTION — every thread appends to its own buffer
//     under a per-buffer mutex that is uncontended except while Drain() runs,
//     so pool workers never serialize against each other on the hot path.
//   * STRICT NESTING — spans are RAII objects, so within a thread they close
//     in LIFO order and the emitted complete events ("ph":"X") are either
//     disjoint or properly nested. support_test verifies this invariant for
//     spans recorded concurrently from ThreadPool workers.
//
// Usage:
//
//   TraceRecorder::Global().Start();
//   {
//     TraceSpan span("tuner.loop_batch");            // hot path: no alloc
//     TraceSpan detail("measure.batch", Str(i));     // detail arg is built
//   }                                                // by the caller: avoid
//                                                    // on hot paths
//   TraceRecorder::Global().StopAndWriteChromeTrace("trace.json");
//
// Spans still open when the recorder stops (or when their thread outlives a
// Drain) are dropped, not truncated — a trace contains only complete spans.
// Start/Stop are not reentrant: Start() clears everything recorded so far,
// so nested tracing sessions must be coordinated by the caller (in practice
// JointTuner::Tune owns the session when TuningOptions::trace_path is set).

#ifndef ALT_SUPPORT_TRACE_H_
#define ALT_SUPPORT_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace alt {

// One completed span (or instant marker) as drained from the recorder.
struct TraceEvent {
  const char* name = "";  // static-storage site name
  std::string detail;     // optional dynamic annotation ("" = none)
  double ts_us = 0.0;     // start, microseconds since the recorder's Start()
  double dur_us = 0.0;    // duration in microseconds (0 for instants)
  int tid = 0;            // recorder-assigned sequential thread id
  bool instant = false;   // "ph":"i" marker rather than a "ph":"X" span
};

class TraceRecorder {
 public:
  static TraceRecorder& Global();

  // Discards everything recorded so far and starts a fresh trace whose
  // timestamps are relative to this call.
  void Start();
  // Stops recording. Spans alive across Stop() are dropped on destruction.
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Stop() + move every thread's buffered events out of the recorder.
  // Within a thread, events appear in completion order (children first).
  std::vector<TraceEvent> StopAndDrain();

  // Convenience: StopAndDrain() + WriteChromeTrace() below.
  Status StopAndWriteChromeTrace(const std::string& path);

  // Number of threads that have registered a buffer since process start.
  // Exposed so tests can assert that disabled tracing registers nothing.
  int thread_buffer_count() const;

  // Called by TraceSpan / TraceInstant; `start_ns`/`end_ns` are steady-clock
  // nanosecond readings (see NowNs). Drops the event when disabled or when it
  // began before the current Start().
  void Record(const char* name, std::string detail, int64_t start_ns, int64_t end_ns,
              bool instant);

  // Monotonic nanoseconds; comparable across threads.
  static int64_t NowNs();

 private:
  TraceRecorder() = default;

  struct ThreadBuffer {
    std::mutex mu;
    std::vector<TraceEvent> events;
    int tid = 0;
  };

  // Finds or creates the calling thread's buffer. Buffers live for the whole
  // process (threads are few and long-lived here), which keeps the cached
  // thread_local pointer valid forever.
  ThreadBuffer& LocalBuffer();

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> epoch_ns_{0};  // Start() time; events before it drop

  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

// Serializes drained events as Chrome trace-event JSON:
//   {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,"pid":1,"tid":...}]}
Status WriteChromeTrace(const std::vector<TraceEvent>& events, const std::string& path);

// RAII span: records [construction, destruction) on the recorder when tracing
// was enabled at construction time.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : name_(name) {
    if (TraceRecorder::Global().enabled()) {
      start_ns_ = TraceRecorder::NowNs();
    }
  }
  // The detail string is evaluated by the caller even when tracing is off;
  // reserve this overload for cold paths (per-op, per-phase spans).
  TraceSpan(const char* name, std::string detail) : name_(name) {
    if (TraceRecorder::Global().enabled()) {
      detail_ = std::move(detail);
      start_ns_ = TraceRecorder::NowNs();
    }
  }
  ~TraceSpan() {
    if (start_ns_ >= 0) {
      TraceRecorder::Global().Record(name_, std::move(detail_), start_ns_,
                                     TraceRecorder::NowNs(), /*instant=*/false);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::string detail_;
  int64_t start_ns_ = -1;  // -1: tracing was disabled at construction
};

// Zero-duration marker (phase transitions, one-off occurrences).
inline void TraceInstant(const char* name, std::string detail = {}) {
  if (TraceRecorder::Global().enabled()) {
    int64_t now = TraceRecorder::NowNs();
    TraceRecorder::Global().Record(name, std::move(detail), now, now, /*instant=*/true);
  }
}

}  // namespace alt

#endif  // ALT_SUPPORT_TRACE_H_

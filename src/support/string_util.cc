#include "src/support/string_util.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "src/support/status.h"

namespace alt {

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string FormatMicros(double us) {
  char buf[64];
  if (us >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f s", us / 1e6);
  } else if (us >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", us / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f us", us);
  }
  return buf;
}

StatusOr<int64_t> ParseInt64(const std::string& s) {
  if (s.empty()) {
    return Status::InvalidArgument("empty integer literal");
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) {
    return Status::InvalidArgument("not an integer: '" + s + "'");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument("integer out of range: '" + s + "'");
  }
  return static_cast<int64_t>(v);
}

StatusOr<int> ParseInt32(const std::string& s) {
  auto v = ParseInt64(s);
  if (!v.ok()) {
    return v.status();
  }
  if (*v < std::numeric_limits<int>::min() || *v > std::numeric_limits<int>::max()) {
    return Status::InvalidArgument("integer out of range: '" + s + "'");
  }
  return static_cast<int>(*v);
}

std::vector<int64_t> Divisors(int64_t n) {
  ALT_CHECK(n > 0);
  std::vector<int64_t> out;
  for (int64_t d = 1; d * d <= n; ++d) {
    if (n % d == 0) {
      out.push_back(d);
      if (d != n / d) {
        out.push_back(n / d);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace alt

// Tiny leveled logger. Default level is warning so tuning loops stay quiet;
// benches and examples raise it explicitly.

#ifndef ALT_SUPPORT_LOGGING_H_
#define ALT_SUPPORT_LOGGING_H_

#include <iostream>
#include <sstream>
#include <string>

namespace alt {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

struct LogSink {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace alt

#define ALT_LOG(level)                                                       \
  (::alt::LogLevel::k##level < ::alt::GetLogLevel())                         \
      ? (void)0                                                              \
      : ::alt::internal::LogSink() &                                         \
            ::alt::internal::LogMessage(::alt::LogLevel::k##level, __FILE__, __LINE__).stream()

#endif  // ALT_SUPPORT_LOGGING_H_

#include "src/support/fileio.h"

#include <cerrno>
#include <cstring>

#include <sys/stat.h>
#include <unistd.h>

namespace alt {

namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound(Errno("cannot open", path));
  }
  std::string out;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal(Errno("read failed on", path));
  }
  return out;
}

Status WriteFile(const std::string& path, std::string_view contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal(Errno("cannot create", path));
  }
  size_t written = contents.empty() ? 0 : std::fwrite(contents.data(), 1, contents.size(), f);
  bool ok = written == contents.size() && std::fflush(f) == 0;
  std::fclose(f);
  if (!ok) {
    return Status::Internal(Errno("write failed on", path));
  }
  return Status::Ok();
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Status::Internal(Errno("truncate failed on", path));
  }
  return Status::Ok();
}

Status RemoveFile(const std::string& path) {
  if (::remove(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Internal(Errno("remove failed on", path));
  }
  return Status::Ok();
}

AppendWriter& AppendWriter::operator=(AppendWriter&& other) noexcept {
  if (this != &other) {
    Close();
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

StatusOr<AppendWriter> AppendWriter::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::Internal(Errno("cannot open for append", path));
  }
  AppendWriter w;
  w.file_ = f;
  return w;
}

Status AppendWriter::AppendLine(std::string_view line) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("append writer is closed");
  }
  if ((!line.empty() && std::fwrite(line.data(), 1, line.size(), file_) != line.size()) ||
      std::fputc('\n', file_) == EOF || std::fflush(file_) != 0) {
    return Status::Internal(std::string("journal append failed: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Status AppendWriter::Sync() {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("append writer is closed");
  }
  if (std::fflush(file_) != 0 || ::fsync(fileno(file_)) != 0) {
    return Status::Internal(std::string("fsync failed: ") + std::strerror(errno));
  }
  return Status::Ok();
}

void AppendWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace alt

#include "src/support/thread_pool.h"

#include <algorithm>
#include <exception>

namespace alt {

int HardwareThreads() {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

ThreadPool::ThreadPool(int num_threads) {
  int workers = std::max(0, num_threads - 1);
  workers_.reserve(workers);
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) {
    t.join();
  }
}

// Index claims happen under the pool mutex, atomically with the batch-id
// check, so a worker that wakes up late can never claim (and then drop) an
// index that belongs to a newer batch. The per-claim lock cost is irrelevant
// next to the work items (each is a full lowering + estimation).
bool ThreadPool::ClaimIndex(uint64_t batch, int* index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (batch != batch_id_ || next_index_ >= batch_size_) {
    return false;
  }
  *index = next_index_++;
  return true;
}

void ThreadPool::FinishIndex() {
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++completed_;
    drained = completed_ == batch_size_;
  }
  if (drained) {
    done_cv_.notify_all();
  }
}

void ThreadPool::RecordError(int index, const char* what) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!batch_failed_) {
    batch_failed_ = true;
    batch_error_ = "task " + std::to_string(index) + " threw: " + what;
  }
}

void ThreadPool::RunIndex(const std::function<void(int)>& fn, int index) {
  // The catch-all is what keeps a throwing task from calling std::terminate
  // on a worker thread; unconditionally finishing the index is what keeps the
  // joining caller from waiting forever on `completed_`.
  try {
    fn(index);
  } catch (const std::exception& e) {
    RecordError(index, e.what());
  } catch (...) {
    RecordError(index, "non-standard exception");
  }
  FinishIndex();
}

Status ThreadPool::ParallelFor(int n, const std::function<void(int)>& fn) {
  if (n <= 0) {
    return Status::Ok();
  }
  if (workers_.empty() || n == 1) {
    std::string error;
    for (int i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (const std::exception& e) {
        if (error.empty()) {
          error = "task " + std::to_string(i) + " threw: " + e.what();
        }
      } catch (...) {
        if (error.empty()) {
          error = "task " + std::to_string(i) + " threw: non-standard exception";
        }
      }
    }
    return error.empty() ? Status::Ok() : Status::Internal(error);
  }
  // Reentrancy detection: a nested ParallelFor from a batch closure would
  // reset the in-flight batch's counters under the outer caller and then
  // join on a `completed_` total the outer batch can never reach — a silent
  // deadlock the old contract only warned about in comments. Refuse instead.
  bool expected = false;
  if (!in_flight_.compare_exchange_strong(expected, true)) {
    return Status::FailedPrecondition(
        "ThreadPool::ParallelFor is not reentrant: a batch is already in flight "
        "on this pool");
  }
  uint64_t batch = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    batch_size_ = n;
    next_index_ = 0;
    completed_ = 0;
    batch_error_.clear();
    batch_failed_ = false;
    batch = ++batch_id_;
  }
  work_cv_.notify_all();

  // The caller participates until the batch's indices are exhausted.
  int i = 0;
  while (ClaimIndex(batch, &i)) {
    RunIndex(fn, i);
  }

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this, n] { return completed_ == n; });
  fn_ = nullptr;
  batch_size_ = 0;
  Status result = batch_failed_ ? Status::Internal(batch_error_) : Status::Ok();
  lock.unlock();
  in_flight_.store(false);
  return result;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_batch = 0;
  for (;;) {
    const std::function<void(int)>* fn = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this, seen_batch] {
        return shutdown_ || (fn_ != nullptr && batch_id_ != seen_batch);
      });
      if (shutdown_) {
        return;
      }
      seen_batch = batch_id_;
      fn = fn_;
    }
    int i = 0;
    while (ClaimIndex(seen_batch, &i)) {
      RunIndex(*fn, i);
    }
  }
}

}  // namespace alt

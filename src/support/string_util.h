#ifndef ALT_SUPPORT_STRING_UTIL_H_
#define ALT_SUPPORT_STRING_UTIL_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace alt {

// Joins container elements with a separator, using operator<< on elements.
template <typename Container>
std::string Join(const Container& c, const std::string& sep) {
  std::ostringstream oss;
  bool first = true;
  for (const auto& e : c) {
    if (!first) {
      oss << sep;
    }
    oss << e;
    first = false;
  }
  return oss.str();
}

std::vector<std::string> Split(const std::string& s, char sep);

// "1.23 ms" / "456 us" style human-friendly duration from microseconds.
std::string FormatMicros(double us);

// All positive divisors of n, ascending.
std::vector<int64_t> Divisors(int64_t n);

// Checked numeric parsing for untrusted text (tuning records, CLI input).
// Unlike std::stoll these never throw: empty strings, trailing garbage, and
// out-of-range values all return InvalidArgument.
StatusOr<int64_t> ParseInt64(const std::string& s);
StatusOr<int> ParseInt32(const std::string& s);

}  // namespace alt

#endif  // ALT_SUPPORT_STRING_UTIL_H_

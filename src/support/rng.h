// Deterministic random number generation for reproducible tuning runs.
//
// All stochastic components (explorers, PPO initialization, workload sampling)
// take an explicit Rng so experiments are reproducible bit-for-bit given a
// seed, matching the reproducibility demands of the benchmark harness.

#ifndef ALT_SUPPORT_RNG_H_
#define ALT_SUPPORT_RNG_H_

#include <cstdint>
#include <vector>

#include "src/support/status.h"

namespace alt {

// xoshiro256** — small, fast, good statistical quality; independent of libc.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  uint64_t NextU64();

  // Uniform in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Standard normal via Box-Muller.
  double NextGaussian();

  // Picks a uniformly random element index of a non-empty container size.
  template <typename T>
  const T& Choose(const std::vector<T>& v) {
    ALT_CHECK(!v.empty());
    return v[NextBelow(v.size())];
  }

  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBelow(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace alt

#endif  // ALT_SUPPORT_RNG_H_

#include "src/support/status.h"

namespace alt {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

}  // namespace

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

void CheckFailed(const char* file, int line, const char* cond, const std::string& msg) {
  std::fprintf(stderr, "ALT_CHECK failed at %s:%d: %s %s\n", file, line, cond, msg.c_str());
  std::abort();
}

}  // namespace alt

#include "src/ir/stmt.h"

#include <sstream>

namespace alt::ir {

Stmt MakeFor(Expr loop_var, int64_t extent, ForKind kind, Stmt body) {
  ALT_CHECK(loop_var->kind == ExprKind::kVar);
  ALT_CHECK(extent > 0);
  auto node = std::make_shared<StmtNode>();
  node->kind = StmtKind::kFor;
  node->loop_var = std::move(loop_var);
  node->extent = extent;
  node->for_kind = kind;
  node->body = std::move(body);
  return node;
}

Stmt MakeBlock(std::vector<Stmt> stmts) {
  if (stmts.size() == 1) {
    return stmts[0];
  }
  auto node = std::make_shared<StmtNode>();
  node->kind = StmtKind::kBlock;
  node->stmts = std::move(stmts);
  return node;
}

Stmt MakeStore(int tensor_id, std::vector<Expr> indices, Val value, StoreMode mode) {
  auto node = std::make_shared<StmtNode>();
  node->kind = StmtKind::kStore;
  node->tensor_id = tensor_id;
  node->indices = std::move(indices);
  node->value = std::move(value);
  node->mode = mode;
  return node;
}

int64_t CountStoreExecutions(const Stmt& stmt) {
  switch (stmt->kind) {
    case StmtKind::kStore:
      return 1;
    case StmtKind::kBlock: {
      int64_t total = 0;
      for (const auto& s : stmt->stmts) {
        total += CountStoreExecutions(s);
      }
      return total;
    }
    case StmtKind::kFor:
      return stmt->extent * CountStoreExecutions(stmt->body);
  }
  return 0;
}

namespace {
const char* ForKindName(ForKind kind) {
  switch (kind) {
    case ForKind::kSerial:
      return "for";
    case ForKind::kParallel:
      return "parallel for";
    case ForKind::kVectorized:
      return "vectorized for";
    case ForKind::kUnrolled:
      return "unrolled for";
  }
  return "for";
}
}  // namespace

std::string ToString(const Stmt& stmt, int indent) {
  std::ostringstream oss;
  std::string pad(indent * 2, ' ');
  switch (stmt->kind) {
    case StmtKind::kFor: {
      oss << pad << ForKindName(stmt->for_kind) << " " << stmt->loop_var->var_name << " in [0, "
          << stmt->extent << "):\n";
      oss << ToString(stmt->body, indent + 1);
      break;
    }
    case StmtKind::kBlock: {
      for (const auto& s : stmt->stmts) {
        oss << ToString(s, indent);
      }
      break;
    }
    case StmtKind::kStore: {
      oss << pad << "T" << stmt->tensor_id;
      for (const auto& idx : stmt->indices) {
        oss << "[" << ToString(idx) << "]";
      }
      oss << (stmt->mode == StoreMode::kAssign ? " = " : " += ");
      oss << ToString(stmt->value) << "\n";
      break;
    }
  }
  return oss.str();
}

std::string ToString(const Program& program) {
  std::ostringstream oss;
  oss << "program " << program.name << " {\n";
  for (const auto& b : program.buffers) {
    const char* role = "tmp";
    switch (b.role) {
      case BufferRole::kInput:
        role = "in";
        break;
      case BufferRole::kOutput:
        role = "out";
        break;
      case BufferRole::kIntermediate:
        role = "tmp";
        break;
      case BufferRole::kConstant:
        role = "const";
        break;
    }
    oss << "  buffer T" << b.tensor.id << " \"" << b.tensor.name << "\" " << role << " "
        << ShapeToString(b.tensor.shape) << "\n";
  }
  if (program.root) {
    oss << ToString(program.root, 1);
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace alt::ir

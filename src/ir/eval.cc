#include "src/ir/eval.h"

#include <algorithm>

namespace alt::ir {

namespace {

int64_t FloorDivI(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) {
    --q;
  }
  return q;
}

}  // namespace

StatusOr<CompiledExpr> CompiledExpr::Compile(const Expr& e, const VarSlotMap& slots) {
  CompiledExpr out;
  out.ops_.clear();
  // Post-order flattening.
  struct Frame {
    const ExprNode* node;
    bool expanded;
  };
  std::vector<Frame> work;
  work.push_back({e.get(), false});
  while (!work.empty()) {
    Frame frame = work.back();
    work.pop_back();
    const ExprNode* n = frame.node;
    if (!frame.expanded && n->kind != ExprKind::kConst && n->kind != ExprKind::kVar) {
      work.push_back({n, true});
      work.push_back({n->b.get(), false});
      work.push_back({n->a.get(), false});
      continue;
    }
    Op op;
    switch (n->kind) {
      case ExprKind::kConst:
        op.code = OpCode::kPushConst;
        op.imm = n->value;
        break;
      case ExprKind::kVar: {
        int slot = slots.SlotOf(n->var_id);
        if (slot < 0) {
          return Status::InvalidArgument("CompiledExpr: unbound var " + n->var_name);
        }
        op.code = OpCode::kPushVar;
        op.imm = slot;
        break;
      }
      case ExprKind::kAdd:
        op.code = OpCode::kAdd;
        break;
      case ExprKind::kSub:
        op.code = OpCode::kSub;
        break;
      case ExprKind::kMul:
        op.code = OpCode::kMul;
        break;
      case ExprKind::kFloorDiv:
        op.code = OpCode::kFloorDiv;
        break;
      case ExprKind::kMod:
        op.code = OpCode::kMod;
        break;
      case ExprKind::kMin:
        op.code = OpCode::kMin;
        break;
      case ExprKind::kMax:
        op.code = OpCode::kMax;
        break;
    }
    out.ops_.push_back(op);
  }
  return out;
}

int64_t CompiledExpr::Eval(const int64_t* env) const {
  // Stack-local operand stack: Eval holds no shared mutable state, so the
  // same compiled expression is safe to evaluate from concurrent intra-op
  // shards. ops_.size() + 1 bounds the depth; real index expressions are a
  // handful of ops, so the heap spill is effectively dead code.
  int64_t inline_stack[kInlineStack];
  std::vector<int64_t> spill;
  int64_t* sp = inline_stack;
  if (ops_.size() + 1 > kInlineStack) {
    spill.resize(ops_.size() + 1);
    sp = spill.data();
  }
  for (const Op& op : ops_) {
    switch (op.code) {
      case OpCode::kPushConst:
        *sp++ = op.imm;
        break;
      case OpCode::kPushVar:
        *sp++ = env[op.imm];
        break;
      case OpCode::kAdd:
        sp[-2] = sp[-2] + sp[-1];
        --sp;
        break;
      case OpCode::kSub:
        sp[-2] = sp[-2] - sp[-1];
        --sp;
        break;
      case OpCode::kMul:
        sp[-2] = sp[-2] * sp[-1];
        --sp;
        break;
      case OpCode::kFloorDiv:
        sp[-2] = FloorDivI(sp[-2], sp[-1]);
        --sp;
        break;
      case OpCode::kMod:
        sp[-2] = sp[-2] - FloorDivI(sp[-2], sp[-1]) * sp[-1];
        --sp;
        break;
      case OpCode::kMin:
        sp[-2] = std::min(sp[-2], sp[-1]);
        --sp;
        break;
      case OpCode::kMax:
        sp[-2] = std::max(sp[-2], sp[-1]);
        --sp;
        break;
    }
  }
  return sp[-1];
}

}  // namespace alt::ir

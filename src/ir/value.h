// Floating-point value expressions: the right-hand sides of stores.
//
// A value expression reads tensors through Load nodes whose indices are
// integer index expressions (expr.h). Guarded loads (kSelect with interval
// conditions over index expressions) model zero-padding without materializing
// padded buffers, mirroring how TE expresses `if_then_else` padding.

#ifndef ALT_IR_VALUE_H_
#define ALT_IR_VALUE_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/ir/expr.h"

namespace alt::ir {

enum class ValKind {
  kImm,     // float literal
  kLoad,    // tensor[indices...]
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMax,
  kMin,
  kExp,     // unary
  kTanh,    // unary
  kSqrt,    // unary
  kSelect,  // conditions ? a : b
};

class ValNode;
using Val = std::shared_ptr<const ValNode>;

// Interval guard: lo <= expr < hi, and expr ≡ rem (mod modulus). A Select's
// guards are ANDed together. The modulus arm (default 1 == always true)
// exists for transposed convolutions, whose gather form only reads input
// positions divisible by the stride.
struct IntervalCond {
  Expr expr;
  int64_t lo = 0;
  int64_t hi = 0;
  int64_t modulus = 1;
  int64_t rem = 0;
};

class ValNode {
 public:
  ValKind kind;
  double imm = 0.0;                  // kImm
  int tensor_id = -1;                // kLoad
  std::vector<Expr> indices;         // kLoad
  Val a;                             // binary / unary / select-then
  Val b;                             // binary / select-else
  std::vector<IntervalCond> conds;   // kSelect
};

Val Imm(double v);
Val Load(int tensor_id, std::vector<Expr> indices);
Val VAdd(const Val& a, const Val& b);
Val VSub(const Val& a, const Val& b);
Val VMul(const Val& a, const Val& b);
Val VDiv(const Val& a, const Val& b);
Val VMax(const Val& a, const Val& b);
Val VMin(const Val& a, const Val& b);
Val VExp(const Val& a);
Val VTanh(const Val& a);
Val VSqrt(const Val& a);
Val Select(std::vector<IntervalCond> conds, const Val& then_val, const Val& else_val);

// Applies an index-expression rewrite to every Load index and guard.
Val RewriteIndices(const Val& v, const std::function<Expr(const Expr&)>& fn);

// Rewrites only loads of `tensor_id`, mapping its index vector wholesale.
Val RewriteLoadsOfTensor(
    const Val& v, int tensor_id,
    const std::function<std::vector<Expr>(const std::vector<Expr>&)>& fn);

// Substitutes loop vars inside all index expressions and guards.
Val SubstituteVal(const Val& v, const std::unordered_map<int, Expr>& map);

// Collects ids of all tensors loaded by the expression (dedup, stable order).
std::vector<int> CollectLoadTensors(const Val& v);

std::string ToString(const Val& v);

}  // namespace alt::ir

#endif  // ALT_IR_VALUE_H_

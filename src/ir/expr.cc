#include "src/ir/expr.h"

#include <atomic>
#include <sstream>

namespace alt::ir {

namespace {

std::atomic<int> g_next_var_id{0};

Expr MakeBinary(ExprKind kind, const Expr& a, const Expr& b) {
  auto node = std::make_shared<ExprNode>();
  node->kind = kind;
  node->a = a;
  node->b = b;
  return node;
}

int64_t FloorDivI(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) {
    --q;
  }
  return q;
}

int64_t ModI(int64_t a, int64_t b) { return a - FloorDivI(a, b) * b; }

}  // namespace

int NextVarId() { return g_next_var_id.fetch_add(1); }

Expr Const(int64_t v) {
  auto node = std::make_shared<ExprNode>();
  node->kind = ExprKind::kConst;
  node->value = v;
  return node;
}

Expr MakeVar(const std::string& name) { return MakeVarWithId(name, NextVarId()); }

Expr MakeVarWithId(const std::string& name, int id) {
  auto node = std::make_shared<ExprNode>();
  node->kind = ExprKind::kVar;
  node->var_id = id;
  node->var_name = name;
  return node;
}

Expr Add(const Expr& a, const Expr& b) {
  if (a->kind == ExprKind::kConst && b->kind == ExprKind::kConst) {
    return Const(a->value + b->value);
  }
  if (IsZero(a)) {
    return b;
  }
  if (IsZero(b)) {
    return a;
  }
  return MakeBinary(ExprKind::kAdd, a, b);
}

Expr Sub(const Expr& a, const Expr& b) {
  if (a->kind == ExprKind::kConst && b->kind == ExprKind::kConst) {
    return Const(a->value - b->value);
  }
  if (IsZero(b)) {
    return a;
  }
  if (ExprEquals(a, b)) {
    return Const(0);
  }
  return MakeBinary(ExprKind::kSub, a, b);
}

Expr Mul(const Expr& a, const Expr& b) {
  if (a->kind == ExprKind::kConst && b->kind == ExprKind::kConst) {
    return Const(a->value * b->value);
  }
  if (IsZero(a) || IsZero(b)) {
    return Const(0);
  }
  if (IsOne(a)) {
    return b;
  }
  if (IsOne(b)) {
    return a;
  }
  return MakeBinary(ExprKind::kMul, a, b);
}

Expr FloorDiv(const Expr& a, const Expr& b) {
  ALT_CHECK_MSG(b->kind != ExprKind::kConst || b->value > 0, "floordiv by non-positive constant");
  if (a->kind == ExprKind::kConst && b->kind == ExprKind::kConst) {
    return Const(FloorDivI(a->value, b->value));
  }
  if (IsOne(b)) {
    return a;
  }
  if (IsZero(a)) {
    return Const(0);
  }
  // (x * c) / c == x when c divides the multiplier exactly.
  if (b->kind == ExprKind::kConst && a->kind == ExprKind::kMul &&
      a->b->kind == ExprKind::kConst && a->b->value % b->value == 0) {
    return Mul(a->a, Const(a->b->value / b->value));
  }
  return MakeBinary(ExprKind::kFloorDiv, a, b);
}

Expr Mod(const Expr& a, const Expr& b) {
  ALT_CHECK_MSG(b->kind != ExprKind::kConst || b->value > 0, "mod by non-positive constant");
  if (a->kind == ExprKind::kConst && b->kind == ExprKind::kConst) {
    return Const(ModI(a->value, b->value));
  }
  if (IsOne(b) || IsZero(a)) {
    return Const(0);
  }
  return MakeBinary(ExprKind::kMod, a, b);
}

Expr Min(const Expr& a, const Expr& b) {
  if (a->kind == ExprKind::kConst && b->kind == ExprKind::kConst) {
    return Const(std::min(a->value, b->value));
  }
  if (ExprEquals(a, b)) {
    return a;
  }
  return MakeBinary(ExprKind::kMin, a, b);
}

Expr Max(const Expr& a, const Expr& b) {
  if (a->kind == ExprKind::kConst && b->kind == ExprKind::kConst) {
    return Const(std::max(a->value, b->value));
  }
  if (ExprEquals(a, b)) {
    return a;
  }
  return MakeBinary(ExprKind::kMax, a, b);
}

Expr Add(const Expr& a, int64_t b) { return Add(a, Const(b)); }
Expr Sub(const Expr& a, int64_t b) { return Sub(a, Const(b)); }
Expr Mul(const Expr& a, int64_t b) { return Mul(a, Const(b)); }
Expr FloorDiv(const Expr& a, int64_t b) { return FloorDiv(a, Const(b)); }
Expr Mod(const Expr& a, int64_t b) { return Mod(a, Const(b)); }

bool IsConst(const Expr& e, int64_t v) { return e->kind == ExprKind::kConst && e->value == v; }
bool IsZero(const Expr& e) { return IsConst(e, 0); }
bool IsOne(const Expr& e) { return IsConst(e, 1); }

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.get() == b.get()) {
    return true;
  }
  if (a->kind != b->kind) {
    return false;
  }
  switch (a->kind) {
    case ExprKind::kConst:
      return a->value == b->value;
    case ExprKind::kVar:
      return a->var_id == b->var_id;
    default:
      return ExprEquals(a->a, b->a) && ExprEquals(a->b, b->b);
  }
}

Expr Substitute(const Expr& e, const std::unordered_map<int, Expr>& map) {
  switch (e->kind) {
    case ExprKind::kConst:
      return e;
    case ExprKind::kVar: {
      auto it = map.find(e->var_id);
      return it == map.end() ? e : it->second;
    }
    default: {
      Expr a = Substitute(e->a, map);
      Expr b = Substitute(e->b, map);
      if (a.get() == e->a.get() && b.get() == e->b.get()) {
        return e;
      }
      switch (e->kind) {
        case ExprKind::kAdd:
          return Add(a, b);
        case ExprKind::kSub:
          return Sub(a, b);
        case ExprKind::kMul:
          return Mul(a, b);
        case ExprKind::kFloorDiv:
          return FloorDiv(a, b);
        case ExprKind::kMod:
          return Mod(a, b);
        case ExprKind::kMin:
          return Min(a, b);
        case ExprKind::kMax:
          return Max(a, b);
        default:
          ALT_CHECK(false);
      }
    }
  }
  ALT_CHECK(false);
  return e;
}

int64_t Eval(const Expr& e, const std::unordered_map<int, int64_t>& env) {
  switch (e->kind) {
    case ExprKind::kConst:
      return e->value;
    case ExprKind::kVar: {
      auto it = env.find(e->var_id);
      ALT_CHECK_MSG(it != env.end(), "unbound var " << e->var_name);
      return it->second;
    }
    case ExprKind::kAdd:
      return Eval(e->a, env) + Eval(e->b, env);
    case ExprKind::kSub:
      return Eval(e->a, env) - Eval(e->b, env);
    case ExprKind::kMul:
      return Eval(e->a, env) * Eval(e->b, env);
    case ExprKind::kFloorDiv:
      return FloorDivI(Eval(e->a, env), Eval(e->b, env));
    case ExprKind::kMod:
      return ModI(Eval(e->a, env), Eval(e->b, env));
    case ExprKind::kMin:
      return std::min(Eval(e->a, env), Eval(e->b, env));
    case ExprKind::kMax:
      return std::max(Eval(e->a, env), Eval(e->b, env));
  }
  ALT_CHECK(false);
  return 0;
}

namespace {
void CollectVarsInto(const Expr& e, std::vector<int>& out) {
  switch (e->kind) {
    case ExprKind::kConst:
      return;
    case ExprKind::kVar: {
      for (int id : out) {
        if (id == e->var_id) {
          return;
        }
      }
      out.push_back(e->var_id);
      return;
    }
    default:
      CollectVarsInto(e->a, out);
      CollectVarsInto(e->b, out);
  }
}
}  // namespace

std::vector<int> CollectVars(const Expr& e) {
  std::vector<int> out;
  CollectVarsInto(e, out);
  return out;
}

std::string ToString(const Expr& e) {
  switch (e->kind) {
    case ExprKind::kConst:
      return std::to_string(e->value);
    case ExprKind::kVar:
      return e->var_name;
    case ExprKind::kAdd:
      return "(" + ToString(e->a) + " + " + ToString(e->b) + ")";
    case ExprKind::kSub:
      return "(" + ToString(e->a) + " - " + ToString(e->b) + ")";
    case ExprKind::kMul:
      return "(" + ToString(e->a) + " * " + ToString(e->b) + ")";
    case ExprKind::kFloorDiv:
      return "(" + ToString(e->a) + " / " + ToString(e->b) + ")";
    case ExprKind::kMod:
      return "(" + ToString(e->a) + " % " + ToString(e->b) + ")";
    case ExprKind::kMin:
      return "min(" + ToString(e->a) + ", " + ToString(e->b) + ")";
    case ExprKind::kMax:
      return "max(" + ToString(e->a) + ", " + ToString(e->b) + ")";
  }
  return "?";
}

}  // namespace alt::ir

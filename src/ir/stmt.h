// Loop-nest statement IR and lowered programs.
//
// A Program is the unit that the simulator estimates and the interpreter
// executes: a set of buffer declarations plus a statement tree of For /
// Block / Store nodes (the shape of Fig. 3 / Fig. 6 / Fig. 7 in the paper).

#ifndef ALT_IR_STMT_H_
#define ALT_IR_STMT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ir/tensor.h"
#include "src/ir/value.h"

namespace alt::ir {

enum class ForKind {
  kSerial,
  kParallel,    // multi-core worker loop
  kVectorized,  // SIMD lanes
  kUnrolled,
};

enum class StmtKind { kFor, kBlock, kStore };

enum class StoreMode { kAssign, kAccumulate };

class StmtNode;
using Stmt = std::shared_ptr<const StmtNode>;

class StmtNode {
 public:
  StmtKind kind;

  // kFor payload.
  Expr loop_var;          // must be ExprKind::kVar
  int64_t extent = 0;
  ForKind for_kind = ForKind::kSerial;
  Stmt body;

  // kBlock payload.
  std::vector<Stmt> stmts;

  // kStore payload.
  int tensor_id = -1;
  std::vector<Expr> indices;
  Val value;
  StoreMode mode = StoreMode::kAssign;
};

Stmt MakeFor(Expr loop_var, int64_t extent, ForKind kind, Stmt body);
Stmt MakeBlock(std::vector<Stmt> stmts);
Stmt MakeStore(int tensor_id, std::vector<Expr> indices, Val value,
               StoreMode mode = StoreMode::kAssign);

struct BufferDecl {
  Tensor tensor;
  BufferRole role = BufferRole::kIntermediate;
};

// A lowered, executable program for one fused operator group (or a whole
// network when programs are concatenated by the session).
struct Program {
  std::string name;
  std::vector<BufferDecl> buffers;  // indexed by position; tensor.id is the key
  Stmt root;

  const BufferDecl* FindBuffer(int tensor_id) const {
    for (const auto& b : buffers) {
      if (b.tensor.id == tensor_id) {
        return &b;
      }
    }
    return nullptr;
  }
};

// Total number of innermost store executions (product of loop extents above
// each store). Useful as a quick work estimate and in tests.
int64_t CountStoreExecutions(const Stmt& stmt);

// Pretty-prints the statement tree with indentation.
std::string ToString(const Stmt& stmt, int indent = 0);
std::string ToString(const Program& program);

}  // namespace alt::ir

#endif  // ALT_IR_STMT_H_

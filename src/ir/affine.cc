#include "src/ir/affine.h"

#include <algorithm>
#include <sstream>

#include "src/ir/value.h"

namespace alt::ir {

namespace {

int64_t FloorDivI(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) {
    --q;
  }
  return q;
}

int64_t CeilDivI(int64_t a, int64_t b) { return -FloorDivI(-a, b); }

int64_t FloorModI(int64_t a, int64_t b) { return a - FloorDivI(a, b) * b; }

}  // namespace

int64_t AffineForm::MinValue(const std::vector<AffineLoop>& loops) const {
  int64_t v = base;
  for (size_t i = 0; i < coeffs.size() && i < loops.size(); ++i) {
    if (coeffs[i] < 0) {
      v += coeffs[i] * std::max<int64_t>(loops[i].extent - 1, 0);
    }
  }
  return v;
}

int64_t AffineForm::MaxValue(const std::vector<AffineLoop>& loops) const {
  int64_t v = base;
  for (size_t i = 0; i < coeffs.size() && i < loops.size(); ++i) {
    if (coeffs[i] > 0) {
      v += coeffs[i] * std::max<int64_t>(loops[i].extent - 1, 0);
    }
  }
  return v;
}

AffineAnalyzer::AffineAnalyzer(std::vector<AffineLoop> loops) : loops_(std::move(loops)) {
  for (size_t i = 0; i < loops_.size(); ++i) {
    // Inner bindings shadow outer ones for duplicate var ids (which a
    // well-formed program never has anyway).
    var_pos_[loops_[i].var_id] = static_cast<int>(i);
  }
}

std::optional<AffineAnalyzer::Ranged> AffineAnalyzer::Dec(const ExprNode* n) const {
  const size_t nl = loops_.size();
  switch (n->kind) {
    case ExprKind::kConst: {
      Ranged r;
      r.form.base = n->value;
      r.form.coeffs.assign(nl, 0);
      r.lo = r.hi = n->value;
      return r;
    }
    case ExprKind::kVar: {
      auto it = var_pos_.find(n->var_id);
      if (it == var_pos_.end()) {
        return std::nullopt;  // not an enclosing loop: non-affine residue
      }
      Ranged r;
      r.form.coeffs.assign(nl, 0);
      r.form.coeffs[it->second] = 1;
      r.lo = 0;
      r.hi = std::max<int64_t>(loops_[it->second].extent - 1, 0);
      return r;
    }
    default:
      break;
  }
  auto a = Dec(n->a.get());
  if (!a) {
    return std::nullopt;
  }
  auto b = Dec(n->b.get());
  if (!b) {
    return std::nullopt;
  }
  auto range_of = [&](const AffineForm& f) -> std::pair<int64_t, int64_t> {
    return {f.MinValue(loops_), f.MaxValue(loops_)};
  };
  switch (n->kind) {
    case ExprKind::kAdd: {
      Ranged r;
      r.form.base = a->form.base + b->form.base;
      r.form.coeffs.resize(nl);
      for (size_t i = 0; i < nl; ++i) {
        r.form.coeffs[i] = a->form.coeffs[i] + b->form.coeffs[i];
      }
      std::tie(r.lo, r.hi) = range_of(r.form);
      return r;
    }
    case ExprKind::kSub: {
      Ranged r;
      r.form.base = a->form.base - b->form.base;
      r.form.coeffs.resize(nl);
      for (size_t i = 0; i < nl; ++i) {
        r.form.coeffs[i] = a->form.coeffs[i] - b->form.coeffs[i];
      }
      std::tie(r.lo, r.hi) = range_of(r.form);
      return r;
    }
    case ExprKind::kMul: {
      // One side must be a pure constant.
      const Ranged* c = nullptr;
      const Ranged* x = nullptr;
      auto is_const = [](const Ranged& r) {
        for (int64_t co : r.form.coeffs) {
          if (co != 0) {
            return false;
          }
        }
        return true;
      };
      if (is_const(*a)) {
        c = &*a;
        x = &*b;
      } else if (is_const(*b)) {
        c = &*b;
        x = &*a;
      } else {
        return std::nullopt;
      }
      Ranged r;
      int64_t k = c->form.base;
      r.form.base = x->form.base * k;
      r.form.coeffs.resize(nl);
      for (size_t i = 0; i < nl; ++i) {
        r.form.coeffs[i] = x->form.coeffs[i] * k;
      }
      std::tie(r.lo, r.hi) = range_of(r.form);
      return r;
    }
    case ExprKind::kFloorDiv:
    case ExprKind::kMod: {
      // Divisor must be a positive constant.
      bool b_const = true;
      for (int64_t co : b->form.coeffs) {
        b_const = b_const && co == 0;
      }
      if (!b_const || b->form.base <= 0) {
        return std::nullopt;
      }
      int64_t d = b->form.base;
      // Divisibility split: a = div_part + rem_part where every term of
      // div_part is divisible by d. If rem_part's range lies in [0, d), the
      // floor division drops rem_part exactly and the mod keeps it exactly.
      AffineForm div_part, rem_part;
      div_part.coeffs.assign(nl, 0);
      rem_part.coeffs.assign(nl, 0);
      rem_part.base = FloorModI(a->form.base, d);
      div_part.base = a->form.base - rem_part.base;
      for (size_t i = 0; i < nl; ++i) {
        if (a->form.coeffs[i] % d == 0) {
          div_part.coeffs[i] = a->form.coeffs[i];
        } else {
          rem_part.coeffs[i] = a->form.coeffs[i];
        }
      }
      int64_t rlo = rem_part.MinValue(loops_);
      int64_t rhi = rem_part.MaxValue(loops_);
      if (rlo >= 0 && rhi < d) {
        Ranged r;
        if (n->kind == ExprKind::kFloorDiv) {
          r.form.base = div_part.base / d;
          r.form.coeffs.resize(nl);
          for (size_t i = 0; i < nl; ++i) {
            r.form.coeffs[i] = div_part.coeffs[i] / d;
          }
        } else {
          r.form = rem_part;
        }
        std::tie(r.lo, r.hi) = range_of(r.form);
        return r;
      }
      // Whole-range single quotient: a's range maps into one multiple of d.
      int64_t qlo = FloorDivI(a->lo, d);
      int64_t qhi = FloorDivI(a->hi, d);
      if (qlo == qhi) {
        Ranged r;
        if (n->kind == ExprKind::kFloorDiv) {
          r.form.base = qlo;
          r.form.coeffs.assign(nl, 0);
          r.lo = r.hi = qlo;
        } else {
          // a mod d == a - qlo * d, exactly, over the whole domain.
          r.form = a->form;
          r.form.base -= qlo * d;
          std::tie(r.lo, r.hi) = range_of(r.form);
        }
        return r;
      }
      return std::nullopt;
    }
    case ExprKind::kMin:
    case ExprKind::kMax: {
      // Difference-range comparison: d(v) = b(v) - a(v) is affine and exact,
      // so a sign-definite difference picks one operand at EVERY point of the
      // domain (this resolves the unfold clamps when tile sizes line up).
      AffineForm diff;
      diff.base = b->form.base - a->form.base;
      diff.coeffs.resize(nl);
      for (size_t i = 0; i < nl; ++i) {
        diff.coeffs[i] = b->form.coeffs[i] - a->form.coeffs[i];
      }
      int64_t dlo = diff.MinValue(loops_);
      int64_t dhi = diff.MaxValue(loops_);
      if (n->kind == ExprKind::kMin) {
        if (dlo >= 0) {
          return a;  // a <= b everywhere
        }
        if (dhi <= 0) {
          return b;
        }
      } else {
        if (dhi <= 0) {
          return a;  // a >= b everywhere
        }
        if (dlo >= 0) {
          return b;
        }
      }
      return std::nullopt;
    }
    default:
      return std::nullopt;
  }
}

std::optional<AffineForm> AffineAnalyzer::Decompose(const Expr& e) const {
  if (!e) {
    return std::nullopt;
  }
  auto r = Dec(e.get());
  if (!r) {
    return std::nullopt;
  }
  return r->form;
}

namespace {

// Collects the distinct Min(affine, const) nodes the plain rules cannot
// resolve — the unfold clamps whose boundary falls inside the domain.
void CollectClamps(const Expr& e, const AffineAnalyzer& az,
                   std::vector<Expr>& clamps) {
  if (!e) {
    return;
  }
  if (e->kind == ExprKind::kMin && !az.Decompose(e)) {
    auto a = az.Decompose(e->a);
    auto b = az.Decompose(e->b);
    auto is_const = [](const std::optional<AffineForm>& f) {
      if (!f) {
        return false;
      }
      for (int64_t c : f->coeffs) {
        if (c != 0) {
          return false;
        }
      }
      return true;
    };
    if ((a && is_const(b)) || (b && is_const(a))) {
      for (const Expr& seen : clamps) {
        if (seen.get() == e.get() || ExprEquals(seen, e)) {
          return;  // the shared tile node (or an equal spelling)
        }
      }
      clamps.push_back(e);
      return;  // operands are affine: nothing unresolved below
    }
  }
  CollectClamps(e->a, az, clamps);
  CollectClamps(e->b, az, clamps);
}

// Rebuilds `e` with every occurrence of `target` (by identity or structure)
// replaced by `repl`. Folding constructors may simplify the result; that only
// helps the subsequent decomposition.
Expr ReplaceNode(const Expr& e, const Expr& target, const Expr& repl) {
  if (!e) {
    return e;
  }
  if (e.get() == target.get() || ExprEquals(e, target)) {
    return repl;
  }
  if (!e->a && !e->b) {
    return e;
  }
  Expr a = ReplaceNode(e->a, target, repl);
  Expr b = ReplaceNode(e->b, target, repl);
  if (a.get() == e->a.get() && b.get() == e->b.get()) {
    return e;
  }
  switch (e->kind) {
    case ExprKind::kAdd:
      return Add(a, b);
    case ExprKind::kSub:
      return Sub(a, b);
    case ExprKind::kMul:
      return Mul(a, b);
    case ExprKind::kFloorDiv:
      return FloorDiv(a, b);
    case ExprKind::kMod:
      return Mod(a, b);
    case ExprKind::kMin:
      return Min(a, b);
    case ExprKind::kMax:
      return Max(a, b);
    default:
      return e;
  }
}

}  // namespace

std::optional<ClampedForm> AffineAnalyzer::DecomposeClamped(const Expr& e) const {
  if (!e || Decompose(e)) {
    return std::nullopt;  // empty, or no clamp needed — callers use Decompose
  }
  std::vector<Expr> clamps;
  CollectClamps(e, *this, clamps);
  if (clamps.size() != 1) {
    return std::nullopt;
  }
  const Expr& clamp = clamps[0];
  auto fa = Decompose(clamp->a);
  auto fb = Decompose(clamp->b);
  if (!fa || !fb) {
    return std::nullopt;
  }
  auto is_const = [](const AffineForm& f) {
    for (int64_t c : f.coeffs) {
      if (c != 0) {
        return false;
      }
    }
    return true;
  };
  // Orient as Min(guard, bound).
  Expr guard_e = clamp->a;
  ClampedForm out;
  if (is_const(*fb)) {
    out.guard = *fa;
    out.bound = fb->base;
  } else if (is_const(*fa)) {
    guard_e = clamp->b;
    out.guard = *fb;
    out.bound = fa->base;
  } else {
    return std::nullopt;
  }
  auto then_f = Decompose(ReplaceNode(e, clamp, guard_e));
  auto else_f = Decompose(ReplaceNode(e, clamp, Const(out.bound)));
  if (!then_f || !else_f) {
    return std::nullopt;  // residue beyond the clamp
  }
  out.then_form = *std::move(then_f);
  out.else_form = *std::move(else_f);
  return out;
}

std::optional<std::pair<int64_t, int64_t>> GuardRange(int64_t c0, int64_t cv, int64_t lo,
                                                      int64_t hi, int64_t modulus,
                                                      int64_t rem, int64_t extent) {
  int64_t begin = 0;
  int64_t end = extent;
  if (cv == 0) {
    bool ok = c0 >= lo && c0 < hi;
    if (modulus > 1) {
      ok = ok && FloorModI(c0, modulus) == rem;
    }
    return ok ? std::make_pair<int64_t, int64_t>(0, int64_t{extent})
              : std::make_pair<int64_t, int64_t>(0, 0);
  }
  if (modulus > 1) {
    if (cv % modulus != 0) {
      return std::nullopt;  // periodic subset: not a contiguous range
    }
    // The residue is constant along v.
    if (FloorModI(c0, modulus) != rem) {
      return std::make_pair<int64_t, int64_t>(0, 0);
    }
  }
  if (cv > 0) {
    begin = CeilDivI(lo - c0, cv);
    end = CeilDivI(hi - c0, cv);
  } else {
    // c0 + cv*v decreasing in v.
    begin = FloorDivI(c0 - hi, -cv) + 1;
    end = FloorDivI(c0 - lo, -cv) + 1;
  }
  begin = std::max<int64_t>(begin, 0);
  end = std::min<int64_t>(end, extent);
  if (begin >= end) {
    begin = end = 0;
  }
  return std::make_pair(begin, end);
}

int64_t ContiguousInnerRun(const std::vector<int64_t>& strides,
                           const std::vector<int64_t>& extents) {
  int64_t run = 1;
  for (int i = static_cast<int>(strides.size()) - 1; i >= 0; --i) {
    int64_t s = strides[i] < 0 ? -strides[i] : strides[i];
    if (s == 0) {
      continue;  // temporal reuse: does not break contiguity
    }
    if (s != run) {
      break;
    }
    run *= extents[i];
  }
  return run;
}

namespace {

// Per-tensor union footprint of every access, expressed relative to the root
// loop: offset(i0, inner...) = root_coeff * i0 + r with r in [lo, hi].
struct TensorFootprint {
  bool written = false;
  bool provable = true;     // all accesses decomposed with one root stride
  bool any = false;
  int64_t root_coeff = 0;
  int64_t lo = 0, hi = 0;   // inclusive residual range at root iteration 0
};

struct FootprintScan {
  const Program* program = nullptr;
  std::vector<AffineLoop> loops;  // enclosing loops, root first
  std::unordered_map<int, TensorFootprint> tensors;

  void AddAccess(int tensor_id, const std::vector<Expr>& indices, bool is_write) {
    TensorFootprint& fp = tensors[tensor_id];
    fp.written = fp.written || is_write;
    if (!fp.provable) {
      return;
    }
    const BufferDecl* decl = program->FindBuffer(tensor_id);
    if (decl == nullptr) {
      fp.provable = false;
      return;
    }
    auto strides = RowMajorStrides(decl->tensor.shape);
    if (indices.size() != strides.size()) {
      fp.provable = false;
      return;
    }
    Expr linear = Const(0);
    for (size_t d = 0; d < indices.size(); ++d) {
      linear = Add(linear, Mul(indices[d], strides[d]));
    }
    AffineAnalyzer az(loops);
    auto form = az.Decompose(linear);
    if (!form) {
      fp.provable = false;
      return;
    }
    // Residual range over every loop but the root (coeff index 0).
    int64_t lo = form->base;
    int64_t hi = form->base;
    for (size_t i = 1; i < form->coeffs.size(); ++i) {
      int64_t span = form->coeffs[i] * std::max<int64_t>(loops[i].extent - 1, 0);
      if (span < 0) {
        lo += span;
      } else {
        hi += span;
      }
    }
    if (!fp.any) {
      fp.any = true;
      fp.root_coeff = form->coeffs[0];
      fp.lo = lo;
      fp.hi = hi;
      return;
    }
    if (form->coeffs[0] != fp.root_coeff) {
      fp.provable = false;  // mixed root strides: footprints shear apart
      return;
    }
    fp.lo = std::min(fp.lo, lo);
    fp.hi = std::max(fp.hi, hi);
  }

  void ScanVal(const Val& v) {
    if (!v) {
      return;
    }
    if (v->kind == ValKind::kLoad) {
      AddAccess(v->tensor_id, v->indices, /*is_write=*/false);
      return;
    }
    // Select guard expressions index loops, not memory — only the value
    // operands can carry loads.
    ScanVal(v->a);
    ScanVal(v->b);
  }

  void Scan(const Stmt& s) {
    switch (s->kind) {
      case StmtKind::kFor:
        loops.push_back({s->loop_var->var_id, s->extent});
        Scan(s->body);
        loops.pop_back();
        return;
      case StmtKind::kBlock:
        for (const auto& child : s->stmts) {
          Scan(child);
        }
        return;
      case StmtKind::kStore:
        AddAccess(s->tensor_id, s->indices, /*is_write=*/true);
        ScanVal(s->value);
        return;
    }
  }
};

}  // namespace

bool ParallelRootWritesDisjoint(const Program& program) {
  if (!program.root || program.root->kind != StmtKind::kFor) {
    return false;
  }
  const StmtNode* root = program.root.get();
  FootprintScan scan;
  scan.program = &program;
  scan.loops.push_back({root->loop_var->var_id, root->extent});
  scan.Scan(root->body);
  for (const auto& [tensor_id, fp] : scan.tensors) {
    if (!fp.written) {
      continue;  // read-only tensors never conflict
    }
    if (!fp.provable || !fp.any || fp.root_coeff == 0) {
      return false;
    }
    const int64_t width = fp.hi - fp.lo;  // footprint spans width + 1 elements
    const int64_t step = fp.root_coeff < 0 ? -fp.root_coeff : fp.root_coeff;
    if (width >= step) {
      return false;
    }
  }
  return true;
}

namespace {

// Normalizing serializer for ProgramStructureKey.
struct KeyBuilder {
  std::ostringstream oss;
  std::unordered_map<int, int> var_norm;
  std::unordered_map<int, int> tensor_norm;
  std::vector<int> tensor_order;  // original ids, in first-appearance order

  int NormVar(int id) {
    auto [it, inserted] = var_norm.try_emplace(id, static_cast<int>(var_norm.size()));
    return it->second;
  }
  int NormTensor(int id) {
    auto [it, inserted] = tensor_norm.try_emplace(id, static_cast<int>(tensor_norm.size()));
    if (inserted) {
      tensor_order.push_back(id);
    }
    return it->second;
  }

  void Emit(const Expr& e) {
    const ExprNode* n = e.get();
    switch (n->kind) {
      case ExprKind::kConst:
        oss << n->value;
        return;
      case ExprKind::kVar:
        oss << "v" << NormVar(n->var_id);
        return;
      default:
        oss << static_cast<int>(n->kind) << "(";
        Emit(n->a);
        oss << ",";
        Emit(n->b);
        oss << ")";
        return;
    }
  }

  void Emit(const Val& v) {
    oss << "V" << static_cast<int>(v->kind);
    switch (v->kind) {
      case ValKind::kImm: {
        // Exact bit pattern (imm values do not change structure-only analyses,
        // but including them keeps equal keys strictly stronger than needed).
        oss << std::hexfloat << v->imm << std::defaultfloat;
        return;
      }
      case ValKind::kLoad: {
        oss << "t" << NormTensor(v->tensor_id) << "[";
        for (const auto& idx : v->indices) {
          Emit(idx);
          oss << ";";
        }
        oss << "]";
        return;
      }
      default:
        break;
    }
    for (const auto& c : v->conds) {
      oss << "?";
      Emit(c.expr);
      oss << ":" << c.lo << "," << c.hi << "," << c.modulus << "," << c.rem;
    }
    if (v->a) {
      oss << "{";
      Emit(v->a);
      oss << "}";
    }
    if (v->b) {
      oss << "{";
      Emit(v->b);
      oss << "}";
    }
  }

  void Emit(const Stmt& s) {
    switch (s->kind) {
      case StmtKind::kFor:
        oss << "F" << static_cast<int>(s->for_kind) << "x" << s->extent << "v"
            << NormVar(s->loop_var->var_id) << "{";
        Emit(s->body);
        oss << "}";
        return;
      case StmtKind::kBlock:
        oss << "B{";
        for (const auto& child : s->stmts) {
          Emit(child);
        }
        oss << "}";
        return;
      case StmtKind::kStore:
        oss << "S" << static_cast<int>(s->mode) << "t" << NormTensor(s->tensor_id) << "[";
        for (const auto& idx : s->indices) {
          Emit(idx);
          oss << ";";
        }
        oss << "]=";
        Emit(s->value);
        return;
    }
  }
};

}  // namespace

std::string ProgramStructureKey(const Program& program) {
  KeyBuilder kb;
  if (program.root) {
    kb.Emit(program.root);
  }
  // Referenced buffer shapes, in normalized order: shapes determine row-major
  // strides and element counts, the only buffer facts structure-only analyses
  // consult.
  for (size_t i = 0; i < kb.tensor_order.size(); ++i) {
    kb.oss << "|T" << i << ":";
    const BufferDecl* decl = program.FindBuffer(kb.tensor_order[i]);
    if (decl == nullptr) {
      kb.oss << "?";
      continue;
    }
    for (int64_t d : decl->tensor.shape) {
      kb.oss << d << "x";
    }
    kb.oss << "r" << static_cast<int>(decl->role);
  }
  return kb.oss.str();
}

}  // namespace alt::ir

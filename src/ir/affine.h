// Affine access analysis shared by the execution engine and the perf model.
//
// After split/reorder/fuse/unfold/pad lowering, nearly every load/store offset
// in a Program is (quasi-)affine in the enclosing loop variables:
//
//   offset = base + sum_i coeff_i * loop_i,   loop_i in [0, extent_i)
//
// AffineAnalyzer::Decompose recovers that form symbolically, once per access,
// instead of re-evaluating the offset bytecode per element (interpreter) or
// re-probing it per statement (perf model). FloorDiv/Mod introduced by layout
// splits are resolved with a divisibility + range rule, and the Min/Max clamps
// of the unfold rewrite (paper Eq. (1)) are resolved by difference-range
// comparison; anything that does not resolve exactly is reported as non-affine
// residue so callers fall back to the generic per-element path. Every rule is
// EXACT over the declared iteration domain: when Decompose succeeds, the
// returned form evaluates to the same integer as the original expression at
// every point of the domain — this is what lets the interpreter's fast path
// stay bit-identical and the perf model's stride derivation stay unchanged.

#ifndef ALT_IR_AFFINE_H_
#define ALT_IR_AFFINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/ir/expr.h"
#include "src/ir/stmt.h"

namespace alt::ir {

// One enclosing loop of an access: the loop variable and its trip count.
// Loops are listed outermost first; a loop's iteration domain is [0, extent).
struct AffineLoop {
  int var_id = -1;
  int64_t extent = 0;
};

// base + sum coeffs[i] * loop_i, with coeffs parallel to the analyzer's loop
// vector (coeff 0 for loops the expression does not depend on).
struct AffineForm {
  int64_t base = 0;
  std::vector<int64_t> coeffs;

  // Value range over the box domain (every loop in [0, extent)).
  int64_t MinValue(const std::vector<AffineLoop>& loops) const;
  int64_t MaxValue(const std::vector<AffineLoop>& loops) const;
};

// Exact piecewise decomposition of the overlapped-tiling clamp. The layout
// relation's canonical-representative unfold rewrite (layout/relation.h,
// LayoutRelation::UnfoldAccess) emits accesses in a single-clamp normal form:
// the only non-affine residue is one shared node Min(g, c) with g affine over
// the loops and c a constant (the tile index clamped to tiles-1). Such an
// expression is affine on each side of the clamp boundary:
//
//   e == then_form   wherever g <= c   (clamp not binding)
//   e == else_form   wherever g >= c   (clamp binding: Min(g, c) == c)
//
// Both forms agree at g == c, so either branch may take the boundary; the
// split is EXACT over the declared domain, like every other analyzer rule.
struct ClampedForm {
  AffineForm then_form;
  AffineForm else_form;
  AffineForm guard;   // g
  int64_t bound = 0;  // c
};

class AffineAnalyzer {
 public:
  explicit AffineAnalyzer(std::vector<AffineLoop> loops);

  const std::vector<AffineLoop>& loops() const { return loops_; }

  // Decomposes `e` into an affine form over the analyzer's loops. Returns
  // nullopt when non-affine residue remains (unresolvable FloorDiv/Mod/Min/Max
  // or a variable that is not one of the loops).
  std::optional<AffineForm> Decompose(const Expr& e) const;

  // Piecewise fallback when Decompose fails: recovers the two-sided exact
  // form of an expression whose only residue is a single unfold clamp (see
  // ClampedForm above). Returns nullopt when there is no clamp, more than
  // one distinct clamp, or residue beyond the clamp.
  std::optional<ClampedForm> DecomposeClamped(const Expr& e) const;

 private:
  struct Ranged {
    AffineForm form;
    int64_t lo = 0;  // inclusive
    int64_t hi = 0;  // inclusive
  };
  std::optional<Ranged> Dec(const ExprNode* n) const;

  std::vector<AffineLoop> loops_;
  std::unordered_map<int, int> var_pos_;
};

// Guard-range splitting for an interval guard `lo <= e < hi` with
// `e == rem (mod modulus)`, where along the candidate loop `v in [0, extent)`
// the guard expression is e(v) = c0 + cv * v. Returns the contiguous subrange
// [begin, end) of v on which the guard holds (possibly empty: begin == end),
// or nullopt when the satisfied set is not contiguous (a modulus guard with
// cv % modulus != 0 selects a periodic subset — callers must evaluate such
// guards per element).
std::optional<std::pair<int64_t, int64_t>> GuardRange(int64_t c0, int64_t cv, int64_t lo,
                                                      int64_t hi, int64_t modulus,
                                                      int64_t rem, int64_t extent);

// Length (in elements) of the contiguous run an access touches when the
// trailing loops are walked innermost-first: extents multiply into the run
// while each loop's |stride| equals the run length accumulated so far.
// `strides` and `extents` are parallel, outermost first.
int64_t ContiguousInnerRun(const std::vector<int64_t>& strides,
                           const std::vector<int64_t>& extents);

// Conservative cross-iteration disjointness proof for the program's
// outermost loop, the enabling analysis for intra-op sharding of a
// ForKind::kParallel root (runtime/interpreter.cc, codegen sliced kernels).
//
// Returns true when distinct iterations of the root loop provably touch
// disjoint element ranges of every tensor the program WRITES, so contiguous
// iteration shards may execute concurrently with bit-identical results. The
// proof: every access (store or load — fused consumers re-read what the
// iteration wrote) of a written tensor must decompose affinely over its
// enclosing loops, all such accesses must share one nonzero root-loop
// coefficient c0, and the union of their footprints over the non-root loops
// must span fewer than |c0| + 1 elements — the footprint then translates
// uniformly by c0 per iteration and never overlaps itself. Reads of tensors
// the program never writes (inputs, constants) are unconstrained. Anything
// unprovable — non-affine residue, mixed root strides, a root-invariant
// write — returns false and the caller degrades the loop to serial.
bool ParallelRootWritesDisjoint(const Program& program);

// Structural signature of a Program: loop kinds/extents, store modes, index
// and value expression shapes, guard constants, and the shapes of every
// referenced buffer — with loop-variable ids and tensor ids normalized to
// first-appearance order. Two programs with equal keys are structurally
// identical, so every structure-only analysis (sim::EstimateProgram in
// particular) produces identical results for them. Used by the measurement
// engine's analysis cache.
std::string ProgramStructureKey(const Program& program);

}  // namespace alt::ir

#endif  // ALT_IR_AFFINE_H_

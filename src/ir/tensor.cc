#include "src/ir/tensor.h"

#include <sstream>

namespace alt::ir {

std::vector<int64_t> RowMajorStrides(const std::vector<int64_t>& shape) {
  std::vector<int64_t> strides(shape.size(), 1);
  for (int i = static_cast<int>(shape.size()) - 2; i >= 0; --i) {
    strides[i] = strides[i + 1] * shape[i + 1];
  }
  return strides;
}

std::string ShapeToString(const std::vector<int64_t>& shape) {
  std::ostringstream oss;
  oss << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) {
      oss << ", ";
    }
    oss << shape[i];
  }
  oss << "]";
  return oss.str();
}

}  // namespace alt::ir

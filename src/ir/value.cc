#include "src/ir/value.h"

#include <sstream>

namespace alt::ir {

namespace {

Val MakeVal(ValKind kind) {
  auto node = std::make_shared<ValNode>();
  node->kind = kind;
  return node;
}

Val MakeBinary(ValKind kind, const Val& a, const Val& b) {
  auto node = std::make_shared<ValNode>();
  node->kind = kind;
  node->a = a;
  node->b = b;
  return node;
}

Val MakeUnary(ValKind kind, const Val& a) {
  auto node = std::make_shared<ValNode>();
  node->kind = kind;
  node->a = a;
  return node;
}

}  // namespace

Val Imm(double v) {
  auto node = std::make_shared<ValNode>();
  node->kind = ValKind::kImm;
  node->imm = v;
  return node;
}

Val Load(int tensor_id, std::vector<Expr> indices) {
  auto node = std::make_shared<ValNode>();
  node->kind = ValKind::kLoad;
  node->tensor_id = tensor_id;
  node->indices = std::move(indices);
  return node;
}

Val VAdd(const Val& a, const Val& b) { return MakeBinary(ValKind::kAdd, a, b); }
Val VSub(const Val& a, const Val& b) { return MakeBinary(ValKind::kSub, a, b); }
Val VMul(const Val& a, const Val& b) { return MakeBinary(ValKind::kMul, a, b); }
Val VDiv(const Val& a, const Val& b) { return MakeBinary(ValKind::kDiv, a, b); }
Val VMax(const Val& a, const Val& b) { return MakeBinary(ValKind::kMax, a, b); }
Val VMin(const Val& a, const Val& b) { return MakeBinary(ValKind::kMin, a, b); }
Val VExp(const Val& a) { return MakeUnary(ValKind::kExp, a); }
Val VTanh(const Val& a) { return MakeUnary(ValKind::kTanh, a); }
Val VSqrt(const Val& a) { return MakeUnary(ValKind::kSqrt, a); }

Val Select(std::vector<IntervalCond> conds, const Val& then_val, const Val& else_val) {
  auto node = std::make_shared<ValNode>();
  node->kind = ValKind::kSelect;
  node->conds = std::move(conds);
  node->a = then_val;
  node->b = else_val;
  return node;
}

Val RewriteIndices(const Val& v, const std::function<Expr(const Expr&)>& fn) {
  auto node = std::make_shared<ValNode>(*v);
  if (v->kind == ValKind::kLoad) {
    for (auto& idx : node->indices) {
      idx = fn(idx);
    }
    return node;
  }
  for (auto& cond : node->conds) {
    cond.expr = fn(cond.expr);
  }
  if (v->a) {
    node->a = RewriteIndices(v->a, fn);
  }
  if (v->b) {
    node->b = RewriteIndices(v->b, fn);
  }
  return node;
}

Val RewriteLoadsOfTensor(
    const Val& v, int tensor_id,
    const std::function<std::vector<Expr>(const std::vector<Expr>&)>& fn) {
  if (v->kind == ValKind::kLoad) {
    if (v->tensor_id != tensor_id) {
      return v;
    }
    auto node = std::make_shared<ValNode>(*v);
    node->indices = fn(v->indices);
    return node;
  }
  auto node = std::make_shared<ValNode>(*v);
  if (v->a) {
    node->a = RewriteLoadsOfTensor(v->a, tensor_id, fn);
  }
  if (v->b) {
    node->b = RewriteLoadsOfTensor(v->b, tensor_id, fn);
  }
  return node;
}

Val SubstituteVal(const Val& v, const std::unordered_map<int, Expr>& map) {
  return RewriteIndices(v, [&map](const Expr& e) { return Substitute(e, map); });
}

namespace {
void CollectLoadTensorsInto(const Val& v, std::vector<int>& out) {
  if (v->kind == ValKind::kLoad) {
    for (int id : out) {
      if (id == v->tensor_id) {
        return;
      }
    }
    out.push_back(v->tensor_id);
    return;
  }
  if (v->a) {
    CollectLoadTensorsInto(v->a, out);
  }
  if (v->b) {
    CollectLoadTensorsInto(v->b, out);
  }
}
}  // namespace

std::vector<int> CollectLoadTensors(const Val& v) {
  std::vector<int> out;
  CollectLoadTensorsInto(v, out);
  return out;
}

std::string ToString(const Val& v) {
  std::ostringstream oss;
  switch (v->kind) {
    case ValKind::kImm:
      oss << v->imm;
      break;
    case ValKind::kLoad: {
      oss << "T" << v->tensor_id;
      for (const auto& idx : v->indices) {
        oss << "[" << ToString(idx) << "]";
      }
      break;
    }
    case ValKind::kAdd:
      oss << "(" << ToString(v->a) << " + " << ToString(v->b) << ")";
      break;
    case ValKind::kSub:
      oss << "(" << ToString(v->a) << " - " << ToString(v->b) << ")";
      break;
    case ValKind::kMul:
      oss << "(" << ToString(v->a) << " * " << ToString(v->b) << ")";
      break;
    case ValKind::kDiv:
      oss << "(" << ToString(v->a) << " / " << ToString(v->b) << ")";
      break;
    case ValKind::kMax:
      oss << "max(" << ToString(v->a) << ", " << ToString(v->b) << ")";
      break;
    case ValKind::kMin:
      oss << "min(" << ToString(v->a) << ", " << ToString(v->b) << ")";
      break;
    case ValKind::kExp:
      oss << "exp(" << ToString(v->a) << ")";
      break;
    case ValKind::kTanh:
      oss << "tanh(" << ToString(v->a) << ")";
      break;
    case ValKind::kSqrt:
      oss << "sqrt(" << ToString(v->a) << ")";
      break;
    case ValKind::kSelect: {
      oss << "select(";
      for (size_t i = 0; i < v->conds.size(); ++i) {
        if (i > 0) {
          oss << " && ";
        }
        oss << v->conds[i].lo << " <= " << ToString(v->conds[i].expr) << " < " << v->conds[i].hi;
      }
      oss << ", " << ToString(v->a) << ", " << ToString(v->b) << ")";
      break;
    }
  }
  return oss.str();
}

}  // namespace alt::ir

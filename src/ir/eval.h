// Fast evaluation of index expressions.
//
// The interpreter and the trace-driven cache simulator evaluate access
// expressions millions of times; recursing over shared_ptr trees with a hash
// map environment is far too slow. CompiledExpr flattens an Expr into a
// postfix program over a dense slot array of loop-variable values.

#ifndef ALT_IR_EVAL_H_
#define ALT_IR_EVAL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/ir/expr.h"
#include "src/support/status.h"

namespace alt::ir {

// Maps var ids to dense slots. The owner (interpreter / tracer) keeps a
// parallel vector<int64_t> of current loop values.
class VarSlotMap {
 public:
  int AddVar(int var_id) {
    auto it = slots_.find(var_id);
    if (it != slots_.end()) {
      return it->second;
    }
    int slot = static_cast<int>(slots_.size());
    slots_.emplace(var_id, slot);
    return slot;
  }

  // Returns -1 when the var is unknown.
  int SlotOf(int var_id) const {
    auto it = slots_.find(var_id);
    return it == slots_.end() ? -1 : it->second;
  }

  int size() const { return static_cast<int>(slots_.size()); }

 private:
  std::unordered_map<int, int> slots_;
};

class CompiledExpr {
 public:
  // Compiles `e`. A var without a slot in `slots` is a malformed program
  // (e.g. a corrupt tuning record lowered to IR referencing a loop variable
  // that no loop binds) — it returns InvalidArgument rather than aborting, so
  // one bad candidate can never take down a tuning process.
  static StatusOr<CompiledExpr> Compile(const Expr& e, const VarSlotMap& slots);

  // Default-constructed: evaluates to 0 (a single push-const op), so callers
  // that record a Status and keep a placeholder expression stay well-defined.
  CompiledExpr() : ops_{{OpCode::kPushConst, 0}} {}

  // Thread-safe: the operand stack lives on the caller's stack (with a heap
  // spill for pathologically deep expressions), so one CompiledExpr may be
  // evaluated concurrently from intra-op shards sharing a prepared program.
  int64_t Eval(const int64_t* env) const;

  // True when the expression is a constant (no ops besides one push-const).
  bool IsConstant() const { return ops_.size() == 1 && ops_[0].code == OpCode::kPushConst; }

 private:
  enum class OpCode : uint8_t {
    kPushConst,
    kPushVar,
    kAdd,
    kSub,
    kMul,
    kFloorDiv,
    kMod,
    kMin,
    kMax,
  };
  struct Op {
    OpCode code;
    int64_t imm = 0;  // const value or slot index
  };

  // Operand slots Eval keeps inline on its own stack; expressions needing
  // more (never seen from real lowerings) spill to a per-call heap buffer.
  static constexpr size_t kInlineStack = 64;

  std::vector<Op> ops_;
};

}  // namespace alt::ir

#endif  // ALT_IR_EVAL_H_

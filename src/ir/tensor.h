// Tensor descriptors: a named, shaped buffer in the computational graph.
//
// The *storage layout* of a tensor is its shape plus the primitive sequence
// that produced it (tracked by the layout module); the descriptor here always
// reflects the current physical shape.

#ifndef ALT_IR_TENSOR_H_
#define ALT_IR_TENSOR_H_

#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "src/support/status.h"

namespace alt::ir {

enum class DType { kFloat32, kInt32 };

inline int64_t DTypeBytes(DType t) {
  switch (t) {
    case DType::kFloat32:
    case DType::kInt32:
      return 4;
  }
  return 4;
}

// Role of a buffer inside a lowered program.
enum class BufferRole { kInput, kOutput, kIntermediate, kConstant };

struct Tensor {
  int id = -1;                   // graph-unique id
  std::string name;
  std::vector<int64_t> shape;    // physical shape (post layout transforms)
  DType dtype = DType::kFloat32;

  int64_t NumElements() const {
    int64_t n = 1;
    for (int64_t d : shape) {
      n *= d;
    }
    return n;
  }
  int64_t SizeBytes() const { return NumElements() * DTypeBytes(dtype); }
  int Rank() const { return static_cast<int>(shape.size()); }
};

// Row-major strides (in elements) for a shape.
std::vector<int64_t> RowMajorStrides(const std::vector<int64_t>& shape);

std::string ShapeToString(const std::vector<int64_t>& shape);

}  // namespace alt::ir

#endif  // ALT_IR_TENSOR_H_

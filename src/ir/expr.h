// Integer index expressions.
//
// These are the affine-ish scalar expressions that appear as tensor access
// indices and loop bounds (paper §4.1, Table 1). Layout primitives rewrite
// them (split introduces floordiv/mod, fuse introduces linear combinations,
// unfold introduces the clamped floordiv of Eq. (1)).
//
// Expressions are immutable reference-counted trees. Constructor helpers do
// local constant folding so that printed programs stay readable and the
// evaluators stay fast.

#ifndef ALT_IR_EXPR_H_
#define ALT_IR_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/support/status.h"

namespace alt::ir {

enum class ExprKind {
  kConst,     // integer literal
  kVar,       // loop variable
  kAdd,       // a + b
  kSub,       // a - b
  kMul,       // a * b
  kFloorDiv,  // floor(a / b), b > 0
  kMod,       // a mod b (non-negative for non-negative a), b > 0
  kMin,       // min(a, b)
  kMax,       // max(a, b)
};

class ExprNode;
using Expr = std::shared_ptr<const ExprNode>;

class ExprNode {
 public:
  ExprKind kind;
  // kConst payload.
  int64_t value = 0;
  // kVar payload: globally unique id plus a display name.
  int var_id = -1;
  std::string var_name;
  // Binary payloads.
  Expr a;
  Expr b;
};

// Leaf constructors.
Expr Const(int64_t v);
Expr MakeVar(const std::string& name);           // fresh unique id
Expr MakeVarWithId(const std::string& name, int id);
int NextVarId();

// Folding binary constructors.
Expr Add(const Expr& a, const Expr& b);
Expr Sub(const Expr& a, const Expr& b);
Expr Mul(const Expr& a, const Expr& b);
Expr FloorDiv(const Expr& a, const Expr& b);
Expr Mod(const Expr& a, const Expr& b);
Expr Min(const Expr& a, const Expr& b);
Expr Max(const Expr& a, const Expr& b);

// Convenience overloads with integer rhs.
Expr Add(const Expr& a, int64_t b);
Expr Sub(const Expr& a, int64_t b);
Expr Mul(const Expr& a, int64_t b);
Expr FloorDiv(const Expr& a, int64_t b);
Expr Mod(const Expr& a, int64_t b);

bool IsConst(const Expr& e, int64_t v);
bool IsZero(const Expr& e);
bool IsOne(const Expr& e);

// Structural equality.
bool ExprEquals(const Expr& a, const Expr& b);

// Replaces each var whose id appears in `map` by the mapped expression.
Expr Substitute(const Expr& e, const std::unordered_map<int, Expr>& map);

// Recursive evaluation with a var binding environment (slow path; the
// interpreter and trace generator use CompiledExpr from eval.h).
int64_t Eval(const Expr& e, const std::unordered_map<int, int64_t>& env);

// Collects var ids appearing in the expression (deduplicated, stable order).
std::vector<int> CollectVars(const Expr& e);

std::string ToString(const Expr& e);

}  // namespace alt::ir

#endif  // ALT_IR_EXPR_H_

// Lowering: computational graph + layout assignment + loop schedule → Program.
//
// This implements the compilation pass of paper §6: the loop nest of an
// operator mirrors the PHYSICAL dimensions of its output tensor one-to-one.
// Given the output's primitive sequence S_Y, loop variables L' range over the
// transformed shape; canonical indices are reconstructed as S_Y^{-1}(L') and
// every input access S_X(S_Y^{-1}(L')) is rewritten through the input's own
// sequence S_X — so changing a layout never requires re-implementing the
// operator.
//
// Operator fusion follows §4.2: an element-wise consumer fuses into its
// producer's loop nest only when both outputs share the same physical layout
// (the layout-propagation mechanism exists precisely to make this align).
//
// Thread-safety: LowerGroup and friends only read their arguments and build
// fresh IR; the sole shared state is the atomic variable-id counter behind
// ir::MakeVar. The parallel measurement engine relies on this to lower
// candidates concurrently — do not introduce global mutable state here.

#ifndef ALT_LOOP_LOWERING_H_
#define ALT_LOOP_LOWERING_H_

#include <vector>

#include "src/graph/graph.h"
#include "src/graph/layout_assignment.h"
#include "src/ir/stmt.h"
#include "src/loop/schedule.h"

namespace alt::loop {

// One fused loop nest: an anchor operator plus a chain of element-wise
// consumers computed at its tile level.
struct FusedGroup {
  int anchor_op = -1;
  std::vector<int> fused_ops;  // in dataflow order

  // The tensor the group ultimately produces.
  int OutputTensor(const graph::Graph& g) const {
    return fused_ops.empty() ? g.op(anchor_op).output : g.op(fused_ops.back()).output;
  }
};

// Splits the graph into fused groups in topological execution order. Fusion
// requires: element-wise consumer, sole consumer of its input, same canonical
// shape, and same assigned physical layout (the fusion-conflict rule).
std::vector<FusedGroup> PartitionGraph(const graph::Graph& graph,
                                       const graph::LayoutAssignment& assignment,
                                       bool enable_fusion = true);

// The extents a LoopSchedule for this group must tile: the physical output
// dims (spatial) and the anchor's reduction extents.
struct LoopNestSignature {
  std::vector<int64_t> spatial_extents;
  std::vector<int64_t> reduction_extents;
};

StatusOr<LoopNestSignature> GroupSignature(const graph::Graph& graph,
                                           const graph::LayoutAssignment& assignment,
                                           const FusedGroup& group);

// Lowers one group under a schedule. The schedule's axis counts must match
// the group's signature.
StatusOr<ir::Program> LowerGroup(const graph::Graph& graph,
                                 const graph::LayoutAssignment& assignment,
                                 const FusedGroup& group, const LoopSchedule& schedule);

// Convenience: lower with a naive (untiled) schedule.
StatusOr<ir::Program> LowerGroupNaive(const graph::Graph& graph,
                                      const graph::LayoutAssignment& assignment,
                                      const FusedGroup& group);

// A whole network lowered group-by-group, in execution order.
struct LoweredNetwork {
  std::vector<FusedGroup> groups;
  std::vector<ir::Program> programs;
};

StatusOr<LoweredNetwork> LowerNetworkNaive(const graph::Graph& graph,
                                           const graph::LayoutAssignment& assignment,
                                           bool enable_fusion = true);

}  // namespace alt::loop

#endif  // ALT_LOOP_LOWERING_H_

#include "src/loop/lowering.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "src/ir/eval.h"
#include "src/layout/relation.h"
#include "src/support/logging.h"

namespace alt::loop {

using graph::Graph;
using graph::LayoutAssignment;
using graph::Op;
using graph::OpKind;
using ir::Expr;
using ir::Stmt;
using ir::Val;

namespace {

// ---------------------------------------------------------------------------
// Anchor bodies: the canonical semantics of each operator.
// ---------------------------------------------------------------------------

enum class Combine { kNone, kSum, kMax };

struct AnchorBody {
  std::vector<Expr> spatial_vars;        // canonical output dims, in order
  std::vector<int64_t> spatial_extents;  // canonical output shape
  std::vector<Expr> reduction_vars;
  std::vector<int64_t> reduction_extents;
  Val update;  // per-reduction-point value, canonical loads
  Combine combine = Combine::kNone;
  double init_value = 0.0;
  double finalize_scale = 1.0;  // e.g. 1/window for average pooling
  // Per input-tensor window patterns (parallel to that tensor's canonical
  // rank) enabling the Eq. (1) unfold rewrite.
  std::unordered_map<int, std::vector<std::optional<layout::WindowPattern>>> patterns;
};

std::vector<Expr> MakeDimVars(const std::vector<int64_t>& shape, const char* prefix) {
  std::vector<Expr> vars;
  for (size_t d = 0; d < shape.size(); ++d) {
    vars.push_back(ir::MakeVar(std::string(prefix) + std::to_string(d)));
  }
  return vars;
}

StatusOr<AnchorBody> BuildConvBody(const Graph& g, const Op& op) {
  bool transposed =
      (op.kind == OpKind::kTransposedConv2d || op.kind == OpKind::kTransposedConv3d);
  const auto& attrs = op.conv;
  int sd = attrs.spatial_dims;
  int data = op.inputs[0];
  int weight = op.inputs[1];
  const auto& in_shape = g.tensor(data).shape;
  const auto& w_shape = g.tensor(weight).shape;
  const auto& out_shape = g.tensor(op.output).shape;

  if (!transposed) {
    for (int d = 0; d < sd; ++d) {
      if (attrs.pad[d] != 0) {
        return Status::FailedPrecondition(
            "forward convolutions must take explicitly padded inputs (insert a pad op)");
      }
    }
  }

  AnchorBody body;
  body.spatial_extents = out_shape;
  body.spatial_vars = MakeDimVars(out_shape, "s");
  body.combine = Combine::kSum;
  body.init_value = 0.0;

  int64_t out_channels = out_shape[1];
  int64_t cpg = transposed ? w_shape[1] : w_shape[1];  // channels per group (weight dim 1)
  int64_t opg = out_channels / attrs.groups;           // out channels per group

  // Reduction vars: input-channel (within group) then kernel dims.
  int64_t red_channels = transposed ? in_shape[1] / attrs.groups : cpg;
  body.reduction_extents.push_back(red_channels);
  for (int d = 0; d < sd; ++d) {
    body.reduction_extents.push_back(w_shape[2 + d]);
  }
  body.reduction_vars = MakeDimVars(body.reduction_extents, "r");

  Expr n = body.spatial_vars[0];
  Expr o = body.spatial_vars[1];
  Expr ri = body.reduction_vars[0];
  // Group index of the output channel; input channels offset accordingly.
  Expr group = attrs.groups > 1 ? ir::FloorDiv(o, opg) : ir::Const(0);

  if (!transposed) {
    Expr in_channel = attrs.groups > 1 ? ir::Add(ir::Mul(group, red_channels), ri) : ri;
    std::vector<Expr> in_idx{n, in_channel};
    std::vector<std::optional<layout::WindowPattern>> pats(2 + sd);
    for (int d = 0; d < sd; ++d) {
      Expr s = body.spatial_vars[2 + d];
      Expr r = body.reduction_vars[1 + d];
      Expr pos = ir::Add(ir::Mul(s, attrs.stride[d]), ir::Mul(r, attrs.dilation[d]));
      in_idx.push_back(pos);
      layout::WindowPattern wp;
      wp.base = s;
      wp.stride = attrs.stride[d];
      wp.window = ir::Mul(r, attrs.dilation[d]);
      wp.window_size = attrs.dilation[d] * (w_shape[2 + d] - 1) + 1;
      pats[2 + d] = wp;
    }
    std::vector<Expr> w_idx{o, ri};
    for (int d = 0; d < sd; ++d) {
      w_idx.push_back(body.reduction_vars[1 + d]);
    }
    body.update = ir::VMul(ir::Load(data, in_idx), ir::Load(weight, w_idx));
    body.patterns[data] = pats;
  } else {
    // Gather form: out[n,o,x...] += in[n,c,(x + pad - r)/V] * w[c,o_in_g,r...]
    // guarded by range and divisibility.
    std::vector<Expr> in_idx{n, attrs.groups > 1 ? ir::Add(ir::Mul(group, red_channels), ri) : ri};
    std::vector<ir::IntervalCond> conds;
    for (int d = 0; d < sd; ++d) {
      Expr s = body.spatial_vars[2 + d];
      Expr r = body.reduction_vars[1 + d];
      Expr e = ir::Sub(ir::Add(s, attrs.pad[d]), r);
      ir::IntervalCond cond;
      cond.expr = e;
      cond.lo = 0;
      cond.hi = (in_shape[2 + d] - 1) * attrs.stride[d] + 1;
      cond.modulus = attrs.stride[d];
      cond.rem = 0;
      conds.push_back(cond);
      in_idx.push_back(ir::FloorDiv(e, attrs.stride[d]));
    }
    std::vector<Expr> w_idx{ir::Add(ir::Mul(group, red_channels), ri), ir::Mod(o, opg)};
    for (int d = 0; d < sd; ++d) {
      w_idx.push_back(body.reduction_vars[1 + d]);
    }
    Val prod = ir::VMul(ir::Load(data, in_idx), ir::Load(weight, w_idx));
    body.update = ir::Select(std::move(conds), prod, ir::Imm(0.0));
  }
  return body;
}

StatusOr<AnchorBody> BuildMatmulBody(const Graph& g, const Op& op) {
  const auto& sa = g.tensor(op.inputs[0]).shape;
  AnchorBody body;
  body.spatial_extents = g.tensor(op.output).shape;
  body.spatial_vars = MakeDimVars(body.spatial_extents, "s");
  body.reduction_extents = {sa[1]};
  body.reduction_vars = MakeDimVars(body.reduction_extents, "r");
  body.combine = Combine::kSum;
  Expr m = body.spatial_vars[0];
  Expr nn = body.spatial_vars[1];
  Expr k = body.reduction_vars[0];
  body.update = ir::VMul(ir::Load(op.inputs[0], {m, k}), ir::Load(op.inputs[1], {k, nn}));
  return body;
}

StatusOr<AnchorBody> BuildPoolBody(const Graph& g, const Op& op) {
  const auto& attrs = op.pool;
  const auto& in_shape = g.tensor(op.inputs[0]).shape;
  AnchorBody body;
  body.spatial_extents = g.tensor(op.output).shape;
  body.spatial_vars = MakeDimVars(body.spatial_extents, "s");
  int64_t wh = attrs.global ? in_shape[2] : attrs.window[0];
  int64_t ww = attrs.global ? in_shape[3] : attrs.window[1];
  body.reduction_extents = {wh, ww};
  body.reduction_vars = MakeDimVars(body.reduction_extents, "r");
  if (!attrs.global && (attrs.pad[0] != 0 || attrs.pad[1] != 0)) {
    return Status::FailedPrecondition("pooling must take explicitly padded inputs");
  }
  Expr n = body.spatial_vars[0];
  Expr c = body.spatial_vars[1];
  Expr h = attrs.global ? body.reduction_vars[0]
                        : ir::Add(ir::Mul(body.spatial_vars[2], attrs.stride[0]),
                                  body.reduction_vars[0]);
  Expr w = attrs.global ? body.reduction_vars[1]
                        : ir::Add(ir::Mul(body.spatial_vars[3], attrs.stride[1]),
                                  body.reduction_vars[1]);
  body.update = ir::Load(op.inputs[0], {n, c, h, w});
  std::vector<std::optional<layout::WindowPattern>> pats(4);
  if (!attrs.global) {
    pats[2] = layout::WindowPattern{body.spatial_vars[2], attrs.stride[0],
                                    body.reduction_vars[0], attrs.window[0]};
    pats[3] = layout::WindowPattern{body.spatial_vars[3], attrs.stride[1],
                                    body.reduction_vars[1], attrs.window[1]};
  }
  body.patterns[op.inputs[0]] = pats;
  if (op.kind == OpKind::kMaxPool2d) {
    body.combine = Combine::kMax;
    body.init_value = -std::numeric_limits<double>::infinity();
  } else {
    body.combine = Combine::kSum;
    body.init_value = 0.0;
    body.finalize_scale = 1.0 / static_cast<double>(wh * ww);
  }
  return body;
}

// Element-wise value given the loaded input value(s) at canonical indices.
// Used both for stand-alone simple anchors and fused consumers.
StatusOr<Val> ElementwiseValue(const Graph& g, const Op& op, const Val& main_input,
                               const std::vector<Expr>& canonical_idx) {
  switch (op.kind) {
    case OpKind::kRelu:
      return ir::VMax(main_input, ir::Imm(0.0));
    case OpKind::kGelu: {
      // 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3))).
      Val x = main_input;
      Val x3 = ir::VMul(x, ir::VMul(x, x));
      Val inner = ir::VMul(ir::Imm(0.7978845608028654),
                           ir::VAdd(x, ir::VMul(ir::Imm(0.044715), x3)));
      return ir::VMul(ir::VMul(ir::Imm(0.5), x), ir::VAdd(ir::Imm(1.0), ir::VTanh(inner)));
    }
    case OpKind::kMulScalar:
      return ir::VMul(main_input, ir::Imm(op.scalar));
    case OpKind::kIdentity:
      return main_input;
    case OpKind::kBiasAdd: {
      Val bias = ir::Load(op.inputs[1], {canonical_idx[op.bias_axis]});
      return ir::VAdd(main_input, bias);
    }
    case OpKind::kAddTensors: {
      Val other = ir::Load(op.inputs[1], canonical_idx);
      return ir::VAdd(main_input, other);
    }
    default:
      return Status::Unimplemented(std::string("elementwise value for ") +
                                   graph::OpKindName(op.kind));
  }
}

StatusOr<AnchorBody> BuildSimpleBody(const Graph& g, const Op& op) {
  AnchorBody body;
  body.spatial_extents = g.tensor(op.output).shape;
  body.spatial_vars = MakeDimVars(body.spatial_extents, "s");
  switch (op.kind) {
    case OpKind::kPad: {
      const auto& in_shape = g.tensor(op.inputs[0]).shape;
      std::vector<Expr> in_idx;
      std::vector<ir::IntervalCond> conds;
      for (size_t d = 0; d < in_shape.size(); ++d) {
        Expr e = ir::Sub(body.spatial_vars[d], op.pad.before[d]);
        in_idx.push_back(e);
        if (op.pad.before[d] != 0 || op.pad.after[d] != 0) {
          conds.push_back(ir::IntervalCond{e, 0, in_shape[d], 1, 0});
        }
      }
      Val load = ir::Load(op.inputs[0], in_idx);
      body.update = conds.empty() ? load : ir::Select(std::move(conds), load, ir::Imm(0.0));
      return body;
    }
    case OpKind::kReshape: {
      const auto& in_shape = g.tensor(op.inputs[0]).shape;
      // Linearize output indices row-major, then delinearize into the input.
      Expr linear = ir::Const(0);
      for (size_t d = 0; d < body.spatial_extents.size(); ++d) {
        linear = ir::Add(ir::Mul(linear, body.spatial_extents[d]), body.spatial_vars[d]);
      }
      std::vector<Expr> in_idx(in_shape.size());
      Expr rem = linear;
      for (int d = static_cast<int>(in_shape.size()) - 1; d >= 0; --d) {
        in_idx[d] = ir::Mod(rem, in_shape[d]);
        rem = ir::FloorDiv(rem, in_shape[d]);
      }
      body.update = ir::Load(op.inputs[0], in_idx);
      return body;
    }
    case OpKind::kLayoutConvert: {
      body.update = ir::Load(op.inputs[0], body.spatial_vars);
      return body;
    }
    default: {
      Val main_input = ir::Load(op.inputs[0], body.spatial_vars);
      auto value = ElementwiseValue(g, op, main_input, body.spatial_vars);
      if (!value.ok()) {
        return value.status();
      }
      body.update = *value;
      return body;
    }
  }
}

StatusOr<AnchorBody> BuildAnchorBody(const Graph& g, const Op& op) {
  switch (op.kind) {
    case OpKind::kConv1d:
    case OpKind::kConv2d:
    case OpKind::kConv3d:
    case OpKind::kTransposedConv2d:
    case OpKind::kTransposedConv3d:
      return BuildConvBody(g, op);
    case OpKind::kMatmul:
      return BuildMatmulBody(g, op);
    case OpKind::kMaxPool2d:
    case OpKind::kAvgPool2d:
      return BuildPoolBody(g, op);
    case OpKind::kInput:
      return Status::InvalidArgument("cannot lower an input placeholder");
    case OpKind::kSoftmax:
    case OpKind::kLayerNorm:
      return Status::Internal("softmax/layernorm use the row-op lowering path");
    default:
      return BuildSimpleBody(g, op);
  }
}

bool IsRowOp(OpKind kind) { return kind == OpKind::kSoftmax || kind == OpKind::kLayerNorm; }

// ---------------------------------------------------------------------------
// Group partitioning.
// ---------------------------------------------------------------------------

bool CanFuse(const Graph& g, const LayoutAssignment& assignment, int producer_tensor,
             const Op& consumer) {
  if (!graph::IsElementwise(consumer.kind)) {
    return false;
  }
  if (consumer.inputs.empty() || consumer.inputs[0] != producer_tensor) {
    return false;  // fuse only along the main data input
  }
  if (g.ConsumersOf(producer_tensor).size() != 1) {
    return false;
  }
  if (g.tensor(consumer.output).shape != g.tensor(producer_tensor).shape) {
    return false;
  }
  // The fusion-conflict rule (§4.2): loop nests align only when the physical
  // layouts coincide — compared semantically, so equivalent spellings of one
  // relation still fuse.
  return graph::SameLayout(assignment.Get(producer_tensor), assignment.Get(consumer.output),
                           g.tensor(producer_tensor).shape);
}

}  // namespace

std::vector<FusedGroup> PartitionGraph(const Graph& graph, const LayoutAssignment& assignment,
                                       bool enable_fusion) {
  std::vector<FusedGroup> groups;
  std::unordered_set<int> consumed;  // op ids already part of a group
  for (int op_id : graph::TopoOrder(graph)) {
    if (consumed.count(op_id)) {
      continue;
    }
    const Op& op = graph.op(op_id);
    if (op.kind == OpKind::kInput) {
      continue;
    }
    FusedGroup group;
    group.anchor_op = op_id;
    consumed.insert(op_id);
    if (enable_fusion && !IsRowOp(op.kind)) {
      int tail = op.output;
      for (;;) {
        auto consumers = graph.ConsumersOf(tail);
        if (consumers.size() != 1) {
          break;
        }
        const Op& next = graph.op(consumers[0]);
        if (!CanFuse(graph, assignment, tail, next)) {
          break;
        }
        group.fused_ops.push_back(next.id);
        consumed.insert(next.id);
        tail = next.output;
      }
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

StatusOr<LoopNestSignature> GroupSignature(const Graph& graph,
                                           const LayoutAssignment& assignment,
                                           const FusedGroup& group) {
  const Op& anchor = graph.op(group.anchor_op);
  LoopNestSignature sig;
  auto phys = assignment.PhysicalShape(graph, anchor.output);
  if (!phys.ok()) {
    return phys.status();
  }
  sig.spatial_extents = *phys;
  if (IsRowOp(anchor.kind)) {
    return sig;  // fixed lowering, no tiling knobs
  }
  auto body = BuildAnchorBody(graph, anchor);
  if (!body.ok()) {
    return body.status();
  }
  sig.reduction_extents = body->reduction_extents;
  return sig;
}

namespace {

// ---------------------------------------------------------------------------
// Scheduled emission.
// ---------------------------------------------------------------------------

struct AxisVars {
  Expr outer, mid, inner, vec;
  Expr combined;  // physical index expression
};

Stmt WrapLoops(Stmt body, const std::vector<std::pair<Expr, int64_t>>& loops,
               ir::ForKind kind = ir::ForKind::kSerial) {
  for (int i = static_cast<int>(loops.size()) - 1; i >= 0; --i) {
    if (loops[i].second == 1) {
      continue;  // omit unit loops for readability
    }
    body = ir::MakeFor(loops[i].first, loops[i].second, kind, body);
  }
  return body;
}

std::vector<int> RotatedOrder(int n, int rotation) {
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) {
    order[i] = (i + rotation % std::max(n, 1) + n) % std::max(n, 1);
  }
  return order;
}

}  // namespace

StatusOr<ir::Program> LowerGroup(const Graph& graph, const LayoutAssignment& assignment,
                                 const FusedGroup& group, const LoopSchedule& schedule) {
  const Op& anchor = graph.op(group.anchor_op);
  if (IsRowOp(anchor.kind)) {
    return LowerGroupNaive(graph, assignment, group);  // row ops ignore schedules
  }
  auto body_or = BuildAnchorBody(graph, anchor);
  if (!body_or.ok()) {
    return body_or.status();
  }
  AnchorBody body = std::move(*body_or);

  const layout::LayoutSeq& out_seq = assignment.Get(anchor.output);
  auto phys_or = assignment.PhysicalShape(graph, anchor.output);
  if (!phys_or.ok()) {
    return phys_or.status();
  }
  std::vector<int64_t> phys_shape = *phys_or;

  // --- validate schedule against signature ---
  if (schedule.spatial.size() != phys_shape.size() ||
      schedule.reduction.size() != body.reduction_extents.size()) {
    return Status::InvalidArgument("schedule axis count mismatch");
  }
  for (size_t j = 0; j < phys_shape.size(); ++j) {
    const auto& a = schedule.spatial[j];
    // Sign check before the product check: a pair of negative factors can
    // multiply to the right extent yet lower to a negative loop bound.
    if (a.outer < 1 || a.mid < 1 || a.inner < 1 || a.vec < 1) {
      return Status::InvalidArgument("spatial tile factors must be >= 1");
    }
    if (a.outer * a.mid * a.inner * a.vec != phys_shape[j]) {
      return Status::InvalidArgument("spatial tile factors do not multiply to extent");
    }
  }
  for (size_t k = 0; k < body.reduction_extents.size(); ++k) {
    const auto& a = schedule.reduction[k];
    if (a.outer < 1 || a.inner < 1) {
      return Status::InvalidArgument("reduction tile factors must be >= 1");
    }
    if (a.outer * a.inner != body.reduction_extents[k]) {
      return Status::InvalidArgument("reduction tile factors do not multiply to extent");
    }
  }

  // --- create loop vars and physical index expressions ---
  int ns = static_cast<int>(phys_shape.size());
  int nr = static_cast<int>(body.reduction_extents.size());
  std::vector<AxisVars> axes(ns);
  std::vector<Expr> phys_idx(ns);
  for (int j = 0; j < ns; ++j) {
    const auto& a = schedule.spatial[j];
    std::string base = "l" + std::to_string(j);
    axes[j].outer = ir::MakeVar(base + "o");
    axes[j].mid = ir::MakeVar(base + "m");
    axes[j].inner = ir::MakeVar(base + "i");
    axes[j].vec = ir::MakeVar(base + "v");
    Expr e = axes[j].outer;
    e = ir::Add(ir::Mul(e, a.mid), axes[j].mid);
    e = ir::Add(ir::Mul(e, a.inner), axes[j].inner);
    e = ir::Add(ir::Mul(e, a.vec), axes[j].vec);
    // Unit loops are omitted during emission, so zero their vars out here.
    std::unordered_map<int, Expr> zero;
    if (a.outer == 1) zero[axes[j].outer->var_id] = ir::Const(0);
    if (a.mid == 1) zero[axes[j].mid->var_id] = ir::Const(0);
    if (a.inner == 1) zero[axes[j].inner->var_id] = ir::Const(0);
    if (a.vec == 1) zero[axes[j].vec->var_id] = ir::Const(0);
    phys_idx[j] = ir::Substitute(e, zero);
    axes[j].combined = phys_idx[j];
  }
  std::vector<Expr> red_outer(nr), red_inner(nr), red_idx(nr);
  for (int k = 0; k < nr; ++k) {
    const auto& a = schedule.reduction[k];
    red_outer[k] = ir::MakeVar("ro" + std::to_string(k));
    red_inner[k] = ir::MakeVar("ri" + std::to_string(k));
    Expr e = ir::Add(ir::Mul(red_outer[k], a.inner), red_inner[k]);
    std::unordered_map<int, Expr> zero;
    if (a.outer == 1) zero[red_outer[k]->var_id] = ir::Const(0);
    if (a.inner == 1) zero[red_inner[k]->var_id] = ir::Const(0);
    red_idx[k] = ir::Substitute(e, zero);
  }

  // --- canonical indices via the inverse relation (S_Y^{-1}) ---
  std::vector<Expr> canonical;
  if (out_seq.empty()) {
    canonical = phys_idx;
  } else {
    auto out_rel = layout::LayoutRelation::FromSeq(out_seq, body.spatial_extents);
    if (!out_rel.ok()) {
      return out_rel.status();
    }
    auto inv = out_rel->MapInverse(phys_idx);
    if (!inv.ok()) {
      return inv.status();
    }
    canonical = *inv;
  }

  // Substitution: canonical spatial var -> canonical expr; reduction var ->
  // tiled reduction expr.
  std::unordered_map<int, Expr> subst;
  for (size_t d = 0; d < body.spatial_vars.size(); ++d) {
    subst[body.spatial_vars[d]->var_id] = canonical[d];
  }
  for (int k = 0; k < nr; ++k) {
    subst[body.reduction_vars[k]->var_id] = red_idx[k];
  }

  // store_at hosting (paper §4.1.2): when another tensor W's sequence is
  // exactly [store_at(S, k)], loads of S are redirected into W's appended
  // slice at index extent_k. Returns the host tensor id or -1.
  auto store_at_host = [&](int src_tensor, int* dim_out, int64_t* index_out) -> int {
    for (const auto& [host_id, seq] : assignment.all()) {
      if (seq.size() != 1 ||
          seq.primitives()[0].kind != layout::PrimitiveKind::kStoreAt ||
          seq.primitives()[0].store_src_tensor != src_tensor) {
        continue;
      }
      int dim = seq.primitives()[0].dim;
      *dim_out = dim;
      *index_out = graph.tensor(host_id).shape[dim];
      return host_id;
    }
    return -1;
  };

  // --- rewrite a canonical-load value into physical space ---
  // `skip_tensor`: leave loads of this tensor untouched (already physical).
  auto rewrite_value = [&](const Val& v, int skip_tensor = -1) -> StatusOr<Val> {
    // 1. substitute loop vars; 2. per-tensor layout rewrite of load indices.
    Val out = ir::SubstituteVal(v, subst);
    Status failed = Status::Ok();
    for (int tid : ir::CollectLoadTensors(out)) {
      if (tid == skip_tensor) {
        continue;
      }
      int host_dim = 0;
      int64_t host_index = 0;
      int host = store_at_host(tid, &host_dim, &host_index);
      if (host >= 0) {
        out = ir::RewriteLoadsOfTensor(out, tid,
                                       [&](const std::vector<Expr>& idx) -> std::vector<Expr> {
                                         std::vector<Expr> extended = idx;
                                         extended.insert(extended.begin() + host_dim,
                                                         ir::Const(host_index));
                                         return extended;
                                       });
        // Retarget the load to the host tensor.
        struct Retarget {
          static Val Apply(const Val& v, int from, int to) {
            auto node = std::make_shared<ir::ValNode>(*v);
            if (v->kind == ir::ValKind::kLoad && v->tensor_id == from) {
              node->tensor_id = to;
              return node;
            }
            if (v->a) {
              node->a = Apply(v->a, from, to);
            }
            if (v->b) {
              node->b = Apply(v->b, from, to);
            }
            return node;
          }
        };
        out = Retarget::Apply(out, tid, host);
        continue;
      }
      const layout::LayoutSeq& seq = assignment.Get(tid);
      if (seq.empty()) {
        continue;
      }
      // Window patterns, with loop-var substitution applied to their exprs.
      std::vector<std::optional<layout::WindowPattern>> pats;
      auto it = body.patterns.find(tid);
      if (it != body.patterns.end()) {
        pats = it->second;
        for (auto& p : pats) {
          if (p.has_value()) {
            p->base = ir::Substitute(p->base, subst);
            p->window = ir::Substitute(p->window, subst);
          }
        }
      }
      auto rel = layout::LayoutRelation::FromSeq(seq, graph.tensor(tid).shape);
      if (!rel.ok()) {
        return rel.status();
      }
      out = ir::RewriteLoadsOfTensor(out, tid,
                                     [&](const std::vector<Expr>& idx) -> std::vector<Expr> {
                                       auto mapped = rel->MapRead(idx, pats);
                                       if (!mapped.ok()) {
                                         failed = mapped.status();
                                         return idx;
                                       }
                                       return *mapped;
                                     });
    }
    if (!failed.ok()) {
      return failed;
    }
    return out;
  };

  // kLayoutConvert with a padding/unfold output layout can reconstruct
  // canonical indices outside the tensor: guard them.
  bool guard_canonical = (anchor.kind == OpKind::kLayoutConvert && !out_seq.empty());
  Val update = body.update;
  if (guard_canonical) {
    std::vector<ir::IntervalCond> conds;
    for (size_t d = 0; d < body.spatial_extents.size(); ++d) {
      conds.push_back(ir::IntervalCond{body.spatial_vars[d], 0, body.spatial_extents[d], 1, 0});
    }
    update = ir::Select(std::move(conds), update, ir::Imm(0.0));
  }
  auto update_or = rewrite_value(update);
  if (!update_or.ok()) {
    return update_or.status();
  }
  update = *update_or;

  // --- assemble loop nest ---
  bool has_reduction = body.combine != Combine::kNone;
  auto inner_order = RotatedOrder(ns, schedule.inner_order_rotation);

  auto spatial_loops = [&](const Stmt& innermost) -> Stmt {
    // inner loops in rotated order, vec innermost.
    std::vector<std::pair<Expr, int64_t>> vec_loops;
    for (int j = 0; j < ns; ++j) {
      if (schedule.spatial[j].vec > 1) {
        vec_loops.push_back({axes[j].vec, schedule.spatial[j].vec});
      }
    }
    Stmt s = innermost;
    for (auto it = vec_loops.rbegin(); it != vec_loops.rend(); ++it) {
      s = ir::MakeFor(it->first, it->second, ir::ForKind::kVectorized, s);
    }
    std::vector<std::pair<Expr, int64_t>> loops;
    for (int j : inner_order) {
      loops.push_back({axes[j].inner, schedule.spatial[j].inner});
    }
    return WrapLoops(s, loops);
  };

  std::vector<Stmt> tile_body;

  int out_id = anchor.output;
  if (has_reduction) {
    // init nest
    Stmt init = ir::MakeStore(out_id, phys_idx, ir::Imm(body.init_value));
    tile_body.push_back(spatial_loops(init));
    // reduction nest
    Stmt store;
    if (body.combine == Combine::kSum) {
      store = ir::MakeStore(out_id, phys_idx, update, ir::StoreMode::kAccumulate);
    } else {
      store = ir::MakeStore(out_id, phys_idx, ir::VMax(ir::Load(out_id, phys_idx), update));
    }
    // inner reduction loops (unrolled if requested)
    Stmt s = store;
    for (int k = nr - 1; k >= 0; --k) {
      if (schedule.reduction[k].inner > 1) {
        s = ir::MakeFor(red_inner[k], schedule.reduction[k].inner,
                        schedule.unroll_inner_reduction ? ir::ForKind::kUnrolled
                                                        : ir::ForKind::kSerial,
                        s);
      }
    }
    s = spatial_loops(s);
    std::vector<std::pair<Expr, int64_t>> ro_loops;
    for (int k = 0; k < nr; ++k) {
      ro_loops.push_back({red_outer[k], schedule.reduction[k].outer});
    }
    tile_body.push_back(WrapLoops(s, ro_loops));
  }

  // finalize / element-wise nest
  std::vector<Stmt> finalize_stores;
  Val carried = ir::Load(out_id, phys_idx);
  if (body.finalize_scale != 1.0) {
    finalize_stores.push_back(
        ir::MakeStore(out_id, phys_idx, ir::VMul(carried, ir::Imm(body.finalize_scale))));
    carried = ir::Load(out_id, phys_idx);
  }
  if (!has_reduction) {
    // anchor itself is the element-wise store
    finalize_stores.push_back(ir::MakeStore(out_id, phys_idx, update));
    carried = ir::Load(out_id, phys_idx);
  }
  int prev_tensor = out_id;
  for (int fused_id : group.fused_ops) {
    const Op& fop = graph.op(fused_id);
    Val incoming = ir::Load(prev_tensor, phys_idx);
    auto value = ElementwiseValue(graph, fop, incoming, body.spatial_vars);
    if (!value.ok()) {
      return value.status();
    }
    // The main input is already physical; rewrite only side inputs.
    auto rewritten = rewrite_value(*value, /*skip_tensor=*/prev_tensor);
    if (!rewritten.ok()) {
      return rewritten.status();
    }
    finalize_stores.push_back(ir::MakeStore(fop.output, phys_idx, *rewritten));
    prev_tensor = fop.output;
  }
  if (!finalize_stores.empty()) {
    tile_body.push_back(spatial_loops(ir::MakeBlock(std::move(finalize_stores))));
  }

  Stmt tile = ir::MakeBlock(std::move(tile_body));

  // mid loops then outer loops (parallel on the leading ones).
  std::vector<std::pair<Expr, int64_t>> mid_loops;
  for (int j = 0; j < ns; ++j) {
    mid_loops.push_back({axes[j].mid, schedule.spatial[j].mid});
  }
  Stmt s = WrapLoops(tile, mid_loops);
  for (int j = ns - 1; j >= 0; --j) {
    if (schedule.spatial[j].outer == 1) {
      continue;
    }
    ir::ForKind kind =
        j < schedule.parallel_axes ? ir::ForKind::kParallel : ir::ForKind::kSerial;
    s = ir::MakeFor(axes[j].outer, schedule.spatial[j].outer, kind, s);
  }

  // --- buffers ---
  ir::Program program;
  program.name = anchor.name;
  program.root = s;
  int final_out = group.OutputTensor(graph);

  auto add_buffer = [&](int tid, ir::BufferRole role) -> Status {
    if (program.FindBuffer(tid) != nullptr) {
      return Status::Ok();
    }
    auto shape = assignment.PhysicalShape(graph, tid);
    if (!shape.ok()) {
      return shape.status();
    }
    ir::BufferDecl decl;
    decl.tensor = graph.tensor(tid);
    decl.tensor.shape = *shape;
    decl.role = role;
    program.buffers.push_back(std::move(decl));
    return Status::Ok();
  };

  // Collect loads from the final statement tree.
  std::vector<int> loaded;
  {
    std::vector<const ir::StmtNode*> work{program.root.get()};
    while (!work.empty()) {
      const ir::StmtNode* node = work.back();
      work.pop_back();
      switch (node->kind) {
        case ir::StmtKind::kFor:
          work.push_back(node->body.get());
          break;
        case ir::StmtKind::kBlock:
          for (const auto& child : node->stmts) {
            work.push_back(child.get());
          }
          break;
        case ir::StmtKind::kStore:
          for (int tid : ir::CollectLoadTensors(node->value)) {
            loaded.push_back(tid);
          }
          break;
      }
    }
  }
  for (int tid : loaded) {
    if (tid == final_out) {
      continue;
    }
    int producer = graph.ProducerOf(tid);
    bool inside_group = (producer == group.anchor_op);
    for (int f : group.fused_ops) {
      inside_group = inside_group || producer == f;
    }
    ir::BufferRole role = inside_group ? ir::BufferRole::kIntermediate
                          : graph.IsConstant(tid) ? ir::BufferRole::kConstant
                                                  : ir::BufferRole::kInput;
    ALT_RETURN_IF_ERROR(add_buffer(tid, role));
  }
  // Intermediates written by the group.
  ALT_RETURN_IF_ERROR(add_buffer(anchor.output, anchor.output == final_out
                                                    ? ir::BufferRole::kOutput
                                                    : ir::BufferRole::kIntermediate));
  for (int f : group.fused_ops) {
    int t = graph.op(f).output;
    ALT_RETURN_IF_ERROR(
        add_buffer(t, t == final_out ? ir::BufferRole::kOutput : ir::BufferRole::kIntermediate));
  }
  return program;
}

namespace {

// Softmax / LayerNorm over the last canonical dim: fixed two-buffer lowering.
StatusOr<ir::Program> LowerRowOp(const Graph& graph, const LayoutAssignment& assignment,
                                 const FusedGroup& group) {
  const Op& op = graph.op(group.anchor_op);
  const auto& shape = graph.tensor(op.output).shape;
  int64_t cols = shape.back();
  int64_t rows = 1;
  for (size_t d = 0; d + 1 < shape.size(); ++d) {
    rows *= shape[d];
  }
  int in_id = op.inputs[0];
  int out_id = op.output;

  ir::Program program;
  program.name = op.name;

  // Temp row-statistic buffers get ids beyond the graph tensors.
  int stat_a = static_cast<int>(graph.tensors().size()) + group.anchor_op * 2;
  int stat_b = stat_a + 1;

  Expr m = ir::MakeVar("m");
  Expr c = ir::MakeVar("c");
  Expr c2 = ir::MakeVar("c2");
  Expr c3 = ir::MakeVar("c3");

  // Flatten leading dims: canonical index = (m decomposed, c).
  auto make_idx = [&](const Expr& row, const Expr& col) {
    std::vector<Expr> idx(shape.size());
    Expr rem = row;
    for (int d = static_cast<int>(shape.size()) - 2; d >= 0; --d) {
      idx[d] = ir::Mod(rem, shape[d]);
      rem = ir::FloorDiv(rem, shape[d]);
    }
    idx[shape.size() - 1] = col;
    return idx;
  };

  std::vector<Stmt> body;
  if (op.kind == OpKind::kSoftmax) {
    body.push_back(ir::MakeStore(stat_a, {m}, ir::Imm(-1e30)));
    body.push_back(ir::MakeFor(
        c, cols, ir::ForKind::kSerial,
        ir::MakeStore(stat_a, {m},
                      ir::VMax(ir::Load(stat_a, {m}), ir::Load(in_id, make_idx(m, c))))));
    body.push_back(ir::MakeStore(stat_b, {m}, ir::Imm(0.0)));
    body.push_back(ir::MakeFor(
        c2, cols, ir::ForKind::kSerial,
        ir::MakeBlock(
            {ir::MakeStore(out_id, make_idx(m, c2),
                           ir::VExp(ir::VSub(ir::Load(in_id, make_idx(m, c2)),
                                             ir::Load(stat_a, {m})))),
             ir::MakeStore(stat_b, {m}, ir::Load(out_id, make_idx(m, c2)),
                           ir::StoreMode::kAccumulate)})));
    body.push_back(ir::MakeFor(
        c3, cols, ir::ForKind::kVectorized,
        ir::MakeStore(out_id, make_idx(m, c3),
                      ir::VDiv(ir::Load(out_id, make_idx(m, c3)), ir::Load(stat_b, {m})))));
  } else {  // LayerNorm (no affine params)
    body.push_back(ir::MakeStore(stat_a, {m}, ir::Imm(0.0)));
    body.push_back(ir::MakeFor(c, cols, ir::ForKind::kSerial,
                               ir::MakeStore(stat_a, {m}, ir::Load(in_id, make_idx(m, c)),
                                             ir::StoreMode::kAccumulate)));
    body.push_back(
        ir::MakeStore(stat_a, {m}, ir::VMul(ir::Load(stat_a, {m}), ir::Imm(1.0 / cols))));
    body.push_back(ir::MakeStore(stat_b, {m}, ir::Imm(0.0)));
    body.push_back(ir::MakeFor(
        c2, cols, ir::ForKind::kSerial,
        ir::MakeStore(stat_b, {m},
                      ir::VMul(ir::VSub(ir::Load(in_id, make_idx(m, c2)), ir::Load(stat_a, {m})),
                               ir::VSub(ir::Load(in_id, make_idx(m, c2)), ir::Load(stat_a, {m}))),
                      ir::StoreMode::kAccumulate)));
    body.push_back(
        ir::MakeStore(stat_b, {m}, ir::VMul(ir::Load(stat_b, {m}), ir::Imm(1.0 / cols))));
    body.push_back(ir::MakeFor(
        c3, cols, ir::ForKind::kVectorized,
        ir::MakeStore(out_id, make_idx(m, c3),
                      ir::VDiv(ir::VSub(ir::Load(in_id, make_idx(m, c3)), ir::Load(stat_a, {m})),
                               ir::VSqrt(ir::VAdd(ir::Load(stat_b, {m}), ir::Imm(1e-5)))))));
  }

  program.root = ir::MakeFor(m, rows, ir::ForKind::kParallel, ir::MakeBlock(std::move(body)));

  ir::BufferDecl in_decl;
  in_decl.tensor = graph.tensor(in_id);
  in_decl.role = ir::BufferRole::kInput;
  program.buffers.push_back(in_decl);
  ir::BufferDecl out_decl;
  out_decl.tensor = graph.tensor(out_id);
  out_decl.role = ir::BufferRole::kOutput;
  program.buffers.push_back(out_decl);
  ir::BufferDecl sa;
  sa.tensor.id = stat_a;
  sa.tensor.name = op.name + "_stat_a";
  sa.tensor.shape = {rows};
  sa.role = ir::BufferRole::kIntermediate;
  program.buffers.push_back(sa);
  ir::BufferDecl sb;
  sb.tensor.id = stat_b;
  sb.tensor.name = op.name + "_stat_b";
  sb.tensor.shape = {rows};
  sb.role = ir::BufferRole::kIntermediate;
  program.buffers.push_back(sb);
  return program;
}

}  // namespace

StatusOr<ir::Program> LowerGroupNaive(const Graph& graph, const LayoutAssignment& assignment,
                                      const FusedGroup& group) {
  const Op& anchor = graph.op(group.anchor_op);
  if (IsRowOp(anchor.kind)) {
    return LowerRowOp(graph, assignment, group);
  }
  auto sig = GroupSignature(graph, assignment, group);
  if (!sig.ok()) {
    return sig.status();
  }
  return LowerGroup(graph, assignment, group,
                    LoopSchedule::Naive(sig->spatial_extents, sig->reduction_extents));
}

StatusOr<LoweredNetwork> LowerNetworkNaive(const Graph& graph,
                                           const LayoutAssignment& assignment,
                                           bool enable_fusion) {
  LoweredNetwork net;
  net.groups = PartitionGraph(graph, assignment, enable_fusion);
  for (const auto& group : net.groups) {
    auto program = LowerGroupNaive(graph, assignment, group);
    if (!program.ok()) {
      return program.status();
    }
    net.programs.push_back(std::move(*program));
  }
  return net;
}

}  // namespace alt::loop

// Text encoding of layout primitive sequences and loop schedules.
//
// These helpers started life private to the tuning-record reader/writer
// (src/core/tuning_record.cc); they are shared now because the measurement
// cache keys candidates by exactly the same strings — a (layout sequence,
// schedule) pair that serializes identically is by construction the same
// measurement, so the cache and the on-disk record format can never drift
// apart.
//
// All decoders take untrusted text: they return Status instead of throwing,
// including on non-numeric or out-of-range integers (see ParseInt64).

#ifndef ALT_LOOP_SERIALIZATION_H_
#define ALT_LOOP_SERIALIZATION_H_

#include <string>
#include <vector>

#include "src/layout/primitive.h"
#include "src/loop/schedule.h"
#include "src/support/status.h"

namespace alt::loop {

// "split:1:4,8" / "reorder:0,2,1" / "unfold:2:3:1" ... (one primitive).
std::string EncodePrimitive(const layout::Primitive& p);
StatusOr<layout::Primitive> DecodePrimitive(const std::string& text);

// Space-separated primitives; empty string for the canonical layout.
std::string EncodeLayoutSeq(const layout::LayoutSeq& seq);

// "s=o,m,i,v;... r=o,i;... par=N rot=N unroll=0|1" — the schedule portion of
// a tuning-record line.
std::string EncodeSchedule(const LoopSchedule& sched);

// Applies one "key=value" schedule token to `sched`. Unknown keys are
// ignored (forward compatibility with newer record writers).
Status DecodeScheduleToken(const std::string& key, const std::string& value,
                           LoopSchedule& sched);

// Comma-separated int64 list; rejects non-numeric or out-of-range entries.
StatusOr<std::vector<int64_t>> ParseInts(const std::string& s);

// Structural sanity of a decoded schedule: every tile factor >= 1,
// parallel_axes and inner_order_rotation within [0, 64]. Decoders accept any
// integers (the token grammar doesn't know the op signature), so untrusted
// schedules must pass through this before being lowered or stored.
Status ValidateSchedule(const LoopSchedule& sched);

}  // namespace alt::loop

#endif  // ALT_LOOP_SERIALIZATION_H_

#include "src/loop/serialization.h"

#include <sstream>

#include "src/support/string_util.h"

namespace alt::loop {

using layout::LayoutSeq;
using layout::Primitive;
using layout::PrimitiveKind;

std::string EncodePrimitive(const Primitive& p) {
  std::ostringstream oss;
  switch (p.kind) {
    case PrimitiveKind::kSplit:
      oss << "split:" << p.dim << ":" << Join(p.factors, ",");
      break;
    case PrimitiveKind::kReorder:
      oss << "reorder:" << Join(p.perm, ",");
      break;
    case PrimitiveKind::kFuse:
      oss << "fuse:" << p.dim << ":" << p.num_dims;
      break;
    case PrimitiveKind::kUnfold:
      oss << "unfold:" << p.dim << ":" << p.tile_size << ":" << p.stride;
      break;
    case PrimitiveKind::kPad:
      oss << "pad:" << p.dim << ":" << p.pad_before << ":" << p.pad_after;
      break;
    case PrimitiveKind::kStoreAt:
      oss << "store_at:" << p.store_src_tensor << ":" << p.dim;
      break;
  }
  return oss.str();
}

StatusOr<std::vector<int64_t>> ParseInts(const std::string& s) {
  std::vector<int64_t> out;
  for (const auto& part : Split(s, ',')) {
    if (part.empty()) {
      continue;
    }
    auto v = ParseInt64(part);
    if (!v.ok()) {
      return v.status();
    }
    out.push_back(*v);
  }
  return out;
}

namespace {

StatusOr<int> ParseIntField(const std::string& s) {
  auto v = ParseInt32(s);
  if (!v.ok()) {
    return Status::InvalidArgument("bad primitive field: " + v.status().message());
  }
  return v;
}

StatusOr<int64_t> ParseInt64Field(const std::string& s) {
  auto v = ParseInt64(s);
  if (!v.ok()) {
    return Status::InvalidArgument("bad primitive field: " + v.status().message());
  }
  return v;
}

}  // namespace

StatusOr<Primitive> DecodePrimitive(const std::string& text) {
  auto fields = Split(text, ':');
  if (fields.empty()) {
    return Status::InvalidArgument("empty primitive");
  }
  const std::string& kind = fields[0];
  if (kind == "split" && fields.size() == 3) {
    auto dim = ParseIntField(fields[1]);
    auto factors = ParseInts(fields[2]);
    if (!dim.ok()) {
      return dim.status();
    }
    if (!factors.ok()) {
      return factors.status();
    }
    return Primitive::Split(*dim, *factors);
  }
  if (kind == "reorder" && fields.size() == 2) {
    auto vals = ParseInts(fields[1]);
    if (!vals.ok()) {
      return vals.status();
    }
    std::vector<int> perm;
    for (int64_t v : *vals) {
      perm.push_back(static_cast<int>(v));
    }
    return Primitive::Reorder(perm);
  }
  if (kind == "fuse" && fields.size() == 3) {
    auto dim = ParseIntField(fields[1]);
    auto num = ParseIntField(fields[2]);
    if (!dim.ok()) {
      return dim.status();
    }
    if (!num.ok()) {
      return num.status();
    }
    return Primitive::Fuse(*dim, *num);
  }
  if (kind == "unfold" && fields.size() == 4) {
    auto dim = ParseIntField(fields[1]);
    auto tile = ParseInt64Field(fields[2]);
    auto stride = ParseInt64Field(fields[3]);
    if (!dim.ok()) {
      return dim.status();
    }
    if (!tile.ok()) {
      return tile.status();
    }
    if (!stride.ok()) {
      return stride.status();
    }
    return Primitive::Unfold(*dim, *tile, *stride);
  }
  if (kind == "pad" && fields.size() == 4) {
    auto dim = ParseIntField(fields[1]);
    auto before = ParseInt64Field(fields[2]);
    auto after = ParseInt64Field(fields[3]);
    if (!dim.ok()) {
      return dim.status();
    }
    if (!before.ok()) {
      return before.status();
    }
    if (!after.ok()) {
      return after.status();
    }
    return Primitive::Pad(*dim, *before, *after);
  }
  if (kind == "store_at" && fields.size() == 3) {
    auto src = ParseIntField(fields[1]);
    auto dim = ParseIntField(fields[2]);
    if (!src.ok()) {
      return src.status();
    }
    if (!dim.ok()) {
      return dim.status();
    }
    return Primitive::StoreAt(*src, *dim);
  }
  return Status::InvalidArgument("unparsable primitive: " + text);
}

std::string EncodeLayoutSeq(const LayoutSeq& seq) {
  std::ostringstream oss;
  bool first = true;
  for (const auto& p : seq.primitives()) {
    if (!first) {
      oss << " ";
    }
    oss << EncodePrimitive(p);
    first = false;
  }
  return oss.str();
}

std::string EncodeSchedule(const LoopSchedule& sched) {
  std::ostringstream oss;
  oss << "s=";
  for (size_t j = 0; j < sched.spatial.size(); ++j) {
    if (j > 0) {
      oss << ";";
    }
    oss << sched.spatial[j].outer << "," << sched.spatial[j].mid << ","
        << sched.spatial[j].inner << "," << sched.spatial[j].vec;
  }
  oss << " r=";
  for (size_t j = 0; j < sched.reduction.size(); ++j) {
    if (j > 0) {
      oss << ";";
    }
    oss << sched.reduction[j].outer << "," << sched.reduction[j].inner;
  }
  oss << " par=" << sched.parallel_axes << " rot=" << sched.inner_order_rotation
      << " unroll=" << (sched.unroll_inner_reduction ? 1 : 0);
  return oss.str();
}

Status DecodeScheduleToken(const std::string& key, const std::string& value,
                           LoopSchedule& sched) {
  if (key == "s") {
    for (const auto& axis : Split(value, ';')) {
      if (axis.empty()) {
        continue;
      }
      auto parts = ParseInts(axis);
      if (!parts.ok()) {
        return parts.status();
      }
      if (parts->size() != 4) {
        return Status::InvalidArgument("bad spatial axis: " + axis);
      }
      sched.spatial.push_back({(*parts)[0], (*parts)[1], (*parts)[2], (*parts)[3]});
    }
    return Status::Ok();
  }
  if (key == "r") {
    for (const auto& axis : Split(value, ';')) {
      if (axis.empty()) {
        continue;
      }
      auto parts = ParseInts(axis);
      if (!parts.ok()) {
        return parts.status();
      }
      if (parts->size() != 2) {
        return Status::InvalidArgument("bad reduction axis: " + axis);
      }
      sched.reduction.push_back({(*parts)[0], (*parts)[1]});
    }
    return Status::Ok();
  }
  if (key == "par") {
    auto v = ParseInt32(value);
    if (!v.ok()) {
      return v.status();
    }
    sched.parallel_axes = *v;
    return Status::Ok();
  }
  if (key == "rot") {
    auto v = ParseInt32(value);
    if (!v.ok()) {
      return v.status();
    }
    sched.inner_order_rotation = *v;
    return Status::Ok();
  }
  if (key == "unroll") {
    sched.unroll_inner_reduction = value == "1";
    return Status::Ok();
  }
  return Status::Ok();  // unknown keys: ignore
}

Status ValidateSchedule(const LoopSchedule& sched) {
  for (size_t j = 0; j < sched.spatial.size(); ++j) {
    const auto& a = sched.spatial[j];
    if (a.outer < 1 || a.mid < 1 || a.inner < 1 || a.vec < 1) {
      return Status::InvalidArgument("spatial axis " + std::to_string(j) +
                                     ": tile factors must be >= 1");
    }
  }
  for (size_t k = 0; k < sched.reduction.size(); ++k) {
    const auto& a = sched.reduction[k];
    if (a.outer < 1 || a.inner < 1) {
      return Status::InvalidArgument("reduction axis " + std::to_string(k) +
                                     ": tile factors must be >= 1");
    }
  }
  if (sched.parallel_axes < 0 || sched.parallel_axes > 64) {
    return Status::InvalidArgument("parallel_axes out of range");
  }
  if (sched.inner_order_rotation < 0 || sched.inner_order_rotation > 64) {
    return Status::InvalidArgument("inner_order_rotation out of range");
  }
  return Status::Ok();
}

}  // namespace alt::loop

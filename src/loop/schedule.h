// Loop schedules (paper §4.3).
//
// A LoopSchedule is a structured multi-level tiling template equivalent to a
// sequence of TVM-style loop primitives (split / reorder / fuse / vectorize /
// unroll / parallel / compute_at): every spatial axis of the output's
// PHYSICAL layout is split three ways (outer / mid / inner, optionally with a
// vector tail on one axis), reduction axes are split two ways, outer spatial
// tiles run in parallel, fused element-wise consumers are computed at the
// tile level (Fig. 7). The loop tuning space of §5.1 enumerates these knobs.

#ifndef ALT_LOOP_SCHEDULE_H_
#define ALT_LOOP_SCHEDULE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace alt::loop {

struct SpatialAxisSchedule {
  // outer * mid * inner * vec == extent of the physical axis.
  int64_t outer = 1;
  int64_t mid = 1;
  int64_t inner = 1;
  int64_t vec = 1;  // > 1 on at most one axis (the vectorized lanes)
};

struct ReductionAxisSchedule {
  int64_t outer = 1;
  int64_t inner = 1;  // outer * inner == reduction extent
};

struct LoopSchedule {
  std::vector<SpatialAxisSchedule> spatial;
  std::vector<ReductionAxisSchedule> reduction;
  // Number of leading spatial axes whose outer-tile loops are parallel.
  int parallel_axes = 1;
  // Rotation applied to the order of the inner spatial loops (a cheap stand-in
  // for full reorder freedom; 0 = physical order).
  int inner_order_rotation = 0;
  // Unroll annotation on the innermost reduction loop.
  bool unroll_inner_reduction = false;

  // A trivial schedule: single-level loops in physical order, no
  // vectorization (extents supplied by the caller).
  static LoopSchedule Naive(const std::vector<int64_t>& spatial_extents,
                            const std::vector<int64_t>& reduction_extents);

  std::string ToString() const;
};

}  // namespace alt::loop

#endif  // ALT_LOOP_SCHEDULE_H_

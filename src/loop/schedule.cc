#include "src/loop/schedule.h"

#include <sstream>

namespace alt::loop {

LoopSchedule LoopSchedule::Naive(const std::vector<int64_t>& spatial_extents,
                                 const std::vector<int64_t>& reduction_extents) {
  LoopSchedule s;
  for (int64_t e : spatial_extents) {
    SpatialAxisSchedule axis;
    axis.outer = e;
    s.spatial.push_back(axis);
  }
  for (int64_t e : reduction_extents) {
    ReductionAxisSchedule axis;
    axis.outer = e;
    s.reduction.push_back(axis);
  }
  s.parallel_axes = spatial_extents.empty() ? 0 : 1;
  return s;
}

std::string LoopSchedule::ToString() const {
  std::ostringstream oss;
  oss << "spatial[";
  for (size_t i = 0; i < spatial.size(); ++i) {
    if (i > 0) {
      oss << ", ";
    }
    oss << spatial[i].outer << "/" << spatial[i].mid << "/" << spatial[i].inner << "/"
        << spatial[i].vec;
  }
  oss << "] reduction[";
  for (size_t i = 0; i < reduction.size(); ++i) {
    if (i > 0) {
      oss << ", ";
    }
    oss << reduction[i].outer << "/" << reduction[i].inner;
  }
  oss << "] par=" << parallel_axes << " rot=" << inner_order_rotation
      << (unroll_inner_reduction ? " unroll" : "");
  return oss.str();
}

}  // namespace alt::loop

#include "src/baselines/baselines.h"

namespace alt::baselines {

const char* BaselineName(BaselineKind kind) {
  switch (kind) {
    case BaselineKind::kVendor:
      return "Vendor";
    case BaselineKind::kAutoTvm:
      return "AutoTVM";
    case BaselineKind::kFlexTensor:
      return "FlexTensor";
    case BaselineKind::kAnsor:
      return "Ansor";
  }
  return "?";
}

StatusOr<autotune::CompiledNetwork> RunBaseline(BaselineKind kind, const graph::Graph& graph,
                                                const sim::Machine& machine, int budget,
                                                uint64_t seed) {
  autotune::TuningOptions options;
  options.seed = seed;
  options.tune_layout = false;
  options.method = autotune::SearchMethod::kRandom;
  switch (kind) {
    case BaselineKind::kVendor:
      // Expert default schedules, zero search. MKL-DNN-style blocked NCHWc on
      // CPUs; cuDNN prefers NCHW (canonical) on GPU.
      options.total_budget = 0;
      options.fixed_layout = machine.gpu_like ? autotune::FixedLayout::kCanonical
                                              : autotune::FixedLayout::kBlocked;
      break;
    case BaselineKind::kAutoTvm:
      options.total_budget = budget;
      options.restricted_loop_space = true;
      options.use_cost_model = true;
      options.fixed_layout = autotune::FixedLayout::kBlocked;
      break;
    case BaselineKind::kFlexTensor:
      options.total_budget = budget;
      options.use_cost_model = false;  // no cost model: measure everything
      options.fixed_layout = autotune::FixedLayout::kCanonical;
      break;
    case BaselineKind::kAnsor:
      options.total_budget = budget;
      options.use_cost_model = true;
      options.fixed_layout = machine.gpu_like ? autotune::FixedLayout::kCanonical
                                              : autotune::FixedLayout::kBlocked;
      break;
  }
  autotune::JointTuner tuner(graph, machine, options);
  return tuner.Tune();
}

}  // namespace alt::baselines

// Auto-tuning and vendor-library baselines (paper §7).
//
// Each baseline reproduces the mechanism gap the paper attributes to it:
//   * Vendor (MKL-DNN / cuDNN / XNNPACK stand-in): expert fixed schedules on
//     the library's preferred fixed layout; no search at all.
//   * AutoTVM-like: small template loop space (restricted knobs), cost model,
//     fixed blocked layout (NeoCPU's N O/ot H W ot with predetermined ot).
//   * FlexTensor-like: full loop space, random-walk exploration, but NO cost
//     model — every candidate costs a measurement.
//   * Ansor-like: full loop space + cost model — the strongest loop-only
//     tuner; layouts stay fixed (blocked on CPUs, canonical on GPU).

#ifndef ALT_BASELINES_BASELINES_H_
#define ALT_BASELINES_BASELINES_H_

#include "src/autotune/tuner.h"

namespace alt::baselines {

enum class BaselineKind { kVendor, kAutoTvm, kFlexTensor, kAnsor };

const char* BaselineName(BaselineKind kind);

StatusOr<autotune::CompiledNetwork> RunBaseline(BaselineKind kind, const graph::Graph& graph,
                                                const sim::Machine& machine, int budget,
                                                uint64_t seed = 1);

}  // namespace alt::baselines

#endif  // ALT_BASELINES_BASELINES_H_

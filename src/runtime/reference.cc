#include "src/runtime/reference.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/graph/layout_assignment.h"
#include "src/ir/eval.h"
#include "src/layout/relation.h"

namespace alt::runtime {

using graph::Graph;
using graph::Op;
using graph::OpKind;

namespace {

struct View {
  const std::vector<float>* data;
  std::vector<int64_t> shape;
  std::vector<int64_t> strides;

  explicit View(const std::vector<float>& d, std::vector<int64_t> s)
      : data(&d), shape(std::move(s)), strides(ir::RowMajorStrides(shape)) {}

  float at(std::initializer_list<int64_t> idx) const {
    int64_t off = 0;
    size_t d = 0;
    for (int64_t i : idx) {
      off += i * strides[d++];
    }
    return (*data)[off];
  }
};

void RefConv(const Graph& g, const Op& op, TensorDataMap& data) {
  const auto& attrs = op.conv;
  int sd = attrs.spatial_dims;
  bool transposed =
      (op.kind == OpKind::kTransposedConv2d || op.kind == OpKind::kTransposedConv3d);
  const auto& in_shape = g.tensor(op.inputs[0]).shape;
  const auto& w_shape = g.tensor(op.inputs[1]).shape;
  const auto& out_shape = g.tensor(op.output).shape;
  const auto& in = data[op.inputs[0]];
  const auto& w = data[op.inputs[1]];
  auto& out = data[op.output];
  out.assign(g.tensor(op.output).NumElements(), 0.0f);

  auto in_strides = ir::RowMajorStrides(in_shape);
  auto w_strides = ir::RowMajorStrides(w_shape);
  auto out_strides = ir::RowMajorStrides(out_shape);

  int64_t groups = attrs.groups;
  int64_t opg = out_shape[1] / groups;
  int64_t red_channels = transposed ? in_shape[1] / groups : w_shape[1];

  // Iterate the full output domain plus the reduction domain generically.
  std::vector<int64_t> sp(out_shape.size(), 0);
  for (;;) {
    double acc = 0.0;
    int64_t n = sp[0];
    int64_t o = sp[1];
    int64_t grp = o / opg;
    std::vector<int64_t> red(1 + sd, 0);
    std::vector<int64_t> red_ext{red_channels};
    for (int d = 0; d < sd; ++d) {
      red_ext.push_back(w_shape[2 + d]);
    }
    for (;;) {
      int64_t ri = red[0];
      bool valid = true;
      int64_t in_off = n * in_strides[0] + (grp * red_channels + ri) * in_strides[1];
      int64_t w_off = 0;
      if (!transposed) {
        w_off = o * w_strides[0] + ri * w_strides[1];
        for (int d = 0; d < sd && valid; ++d) {
          int64_t pos = sp[2 + d] * attrs.stride[d] + red[1 + d] * attrs.dilation[d];
          in_off += pos * in_strides[2 + d];
          w_off += red[1 + d] * w_strides[2 + d];
        }
      } else {
        w_off = (grp * red_channels + ri) * w_strides[0] + (o % opg) * w_strides[1];
        for (int d = 0; d < sd && valid; ++d) {
          int64_t e = sp[2 + d] + attrs.pad[d] - red[1 + d];
          if (e < 0 || e % attrs.stride[d] != 0 || e / attrs.stride[d] >= in_shape[2 + d]) {
            valid = false;
            break;
          }
          in_off += (e / attrs.stride[d]) * in_strides[2 + d];
          w_off += red[1 + d] * w_strides[2 + d];
        }
      }
      if (valid) {
        acc += static_cast<double>(in[in_off]) * static_cast<double>(w[w_off]);
      }
      int d = static_cast<int>(red.size()) - 1;
      while (d >= 0 && ++red[d] == red_ext[d]) {
        red[d--] = 0;
      }
      if (d < 0) {
        break;
      }
    }
    int64_t out_off = 0;
    for (size_t d = 0; d < sp.size(); ++d) {
      out_off += sp[d] * out_strides[d];
    }
    out[out_off] = static_cast<float>(acc);
    int d = static_cast<int>(sp.size()) - 1;
    while (d >= 0 && ++sp[d] == out_shape[d]) {
      sp[d--] = 0;
    }
    if (d < 0) {
      break;
    }
  }
}

void RefMatmul(const Graph& g, const Op& op, TensorDataMap& data) {
  const auto& sa = g.tensor(op.inputs[0]).shape;
  const auto& sb = g.tensor(op.inputs[1]).shape;
  const auto& a = data[op.inputs[0]];
  const auto& b = data[op.inputs[1]];
  auto& out = data[op.output];
  int64_t m = sa[0], k = sa[1], n = sb[1];
  out.assign(m * n, 0.0f);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      double av = a[i * k + kk];
      for (int64_t j = 0; j < n; ++j) {
        out[i * n + j] += static_cast<float>(av * b[kk * n + j]);
      }
    }
  }
}

void RefPool(const Graph& g, const Op& op, TensorDataMap& data) {
  const auto& attrs = op.pool;
  const auto& in_shape = g.tensor(op.inputs[0]).shape;
  const auto& out_shape = g.tensor(op.output).shape;
  const auto& in = data[op.inputs[0]];
  auto& out = data[op.output];
  out.assign(g.tensor(op.output).NumElements(), 0.0f);
  int64_t wh = attrs.global ? in_shape[2] : attrs.window[0];
  int64_t ww = attrs.global ? in_shape[3] : attrs.window[1];
  int64_t sh = attrs.global ? 1 : attrs.stride[0];
  int64_t sw = attrs.global ? 1 : attrs.stride[1];
  bool is_max = op.kind == OpKind::kMaxPool2d;
  auto is4 = ir::RowMajorStrides(in_shape);
  auto os4 = ir::RowMajorStrides(out_shape);
  for (int64_t n = 0; n < out_shape[0]; ++n) {
    for (int64_t c = 0; c < out_shape[1]; ++c) {
      for (int64_t oh = 0; oh < out_shape[2]; ++oh) {
        for (int64_t ow = 0; ow < out_shape[3]; ++ow) {
          double acc = is_max ? -std::numeric_limits<double>::infinity() : 0.0;
          for (int64_t rh = 0; rh < wh; ++rh) {
            for (int64_t rw = 0; rw < ww; ++rw) {
              float v = in[n * is4[0] + c * is4[1] + (oh * sh + rh) * is4[2] +
                           (ow * sw + rw) * is4[3]];
              acc = is_max ? std::max(acc, static_cast<double>(v)) : acc + v;
            }
          }
          if (!is_max) {
            acc /= static_cast<double>(wh * ww);
          }
          out[n * os4[0] + c * os4[1] + oh * os4[2] + ow * os4[3]] = static_cast<float>(acc);
        }
      }
    }
  }
}

void RefElementwiseLike(const Graph& g, const Op& op, TensorDataMap& data) {
  const auto& out_shape = g.tensor(op.output).shape;
  int64_t n = g.tensor(op.output).NumElements();
  const auto& in = data[op.inputs[0]];
  auto& out = data[op.output];
  out.assign(n, 0.0f);
  switch (op.kind) {
    case OpKind::kRelu:
      for (int64_t i = 0; i < n; ++i) {
        out[i] = std::max(in[i], 0.0f);
      }
      break;
    case OpKind::kGelu:
      for (int64_t i = 0; i < n; ++i) {
        double x = in[i];
        out[i] = static_cast<float>(
            0.5 * x * (1.0 + std::tanh(0.7978845608028654 * (x + 0.044715 * x * x * x))));
      }
      break;
    case OpKind::kMulScalar:
      for (int64_t i = 0; i < n; ++i) {
        out[i] = static_cast<float>(in[i] * op.scalar);
      }
      break;
    case OpKind::kIdentity:
    case OpKind::kReshape:
      out = in;
      break;
    case OpKind::kAddTensors: {
      const auto& other = data[op.inputs[1]];
      for (int64_t i = 0; i < n; ++i) {
        out[i] = in[i] + other[i];
      }
      break;
    }
    case OpKind::kBiasAdd: {
      const auto& bias = data[op.inputs[1]];
      auto strides = ir::RowMajorStrides(out_shape);
      int64_t axis_stride = strides[op.bias_axis];
      int64_t axis_extent = out_shape[op.bias_axis];
      for (int64_t i = 0; i < n; ++i) {
        int64_t c = (i / axis_stride) % axis_extent;
        out[i] = in[i] + bias[c];
      }
      break;
    }
    default:
      ALT_CHECK_MSG(false, "unsupported elementwise op");
  }
}

void RefPad(const Graph& g, const Op& op, TensorDataMap& data) {
  const auto& in_shape = g.tensor(op.inputs[0]).shape;
  const auto& out_shape = g.tensor(op.output).shape;
  const auto& in = data[op.inputs[0]];
  auto& out = data[op.output];
  out.assign(g.tensor(op.output).NumElements(), 0.0f);
  auto in_strides = ir::RowMajorStrides(in_shape);
  auto out_strides = ir::RowMajorStrides(out_shape);
  std::vector<int64_t> idx(in_shape.size(), 0);
  for (;;) {
    int64_t in_off = 0, out_off = 0;
    for (size_t d = 0; d < idx.size(); ++d) {
      in_off += idx[d] * in_strides[d];
      out_off += (idx[d] + op.pad.before[d]) * out_strides[d];
    }
    out[out_off] = in[in_off];
    int d = static_cast<int>(idx.size()) - 1;
    while (d >= 0 && ++idx[d] == in_shape[d]) {
      idx[d--] = 0;
    }
    if (d < 0) {
      break;
    }
  }
}

void RefRowOp(const Graph& g, const Op& op, TensorDataMap& data) {
  const auto& shape = g.tensor(op.output).shape;
  int64_t cols = shape.back();
  int64_t rows = g.tensor(op.output).NumElements() / cols;
  const auto& in = data[op.inputs[0]];
  auto& out = data[op.output];
  out.assign(rows * cols, 0.0f);
  for (int64_t m = 0; m < rows; ++m) {
    const float* x = &in[m * cols];
    float* y = &out[m * cols];
    if (op.kind == OpKind::kSoftmax) {
      double mx = -1e30;
      for (int64_t c = 0; c < cols; ++c) {
        mx = std::max(mx, static_cast<double>(x[c]));
      }
      double sum = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        y[c] = static_cast<float>(std::exp(x[c] - mx));
        sum += y[c];
      }
      for (int64_t c = 0; c < cols; ++c) {
        y[c] = static_cast<float>(y[c] / sum);
      }
    } else {  // LayerNorm
      double mean = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        mean += x[c];
      }
      mean /= cols;
      double var = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        var += (x[c] - mean) * (x[c] - mean);
      }
      var /= cols;
      for (int64_t c = 0; c < cols; ++c) {
        y[c] = static_cast<float>((x[c] - mean) / std::sqrt(var + 1e-5));
      }
    }
  }
}

}  // namespace

void FillGraphInputs(const Graph& graph, Rng& rng, TensorDataMap& data) {
  for (const auto& t : graph.tensors()) {
    if (graph.IsGraphInput(t.id) || graph.IsConstant(t.id)) {
      auto& buf = data[t.id];
      buf.resize(t.NumElements());
      for (auto& v : buf) {
        v = static_cast<float>(rng.NextDouble() * 2.0 - 1.0);
      }
    }
  }
}

Status ExecuteReference(const Graph& graph, TensorDataMap& data) {
  for (int op_id : graph::TopoOrder(graph)) {
    const Op& op = graph.op(op_id);
    switch (op.kind) {
      case OpKind::kConv1d:
      case OpKind::kConv2d:
      case OpKind::kConv3d:
      case OpKind::kTransposedConv2d:
      case OpKind::kTransposedConv3d:
        RefConv(graph, op, data);
        break;
      case OpKind::kMatmul:
        RefMatmul(graph, op, data);
        break;
      case OpKind::kMaxPool2d:
      case OpKind::kAvgPool2d:
        RefPool(graph, op, data);
        break;
      case OpKind::kPad:
        RefPad(graph, op, data);
        break;
      case OpKind::kSoftmax:
      case OpKind::kLayerNorm:
        RefRowOp(graph, op, data);
        break;
      case OpKind::kLayoutConvert:
        data[op.output] = data[op.inputs[0]];  // pure layout change: same values
        break;
      case OpKind::kInput:
        break;
      default:
        RefElementwiseLike(graph, op, data);
    }
  }
  return Status::Ok();
}

StatusOr<ConversionPlan> BuildConversionPlan(const std::vector<int64_t>& canonical_shape,
                                             const layout::LayoutSeq& seq) {
  ConversionPlan plan;
  plan.canonical_size = 1;
  for (int64_t d : canonical_shape) {
    plan.canonical_size *= d;
  }
  if (seq.empty()) {
    plan.identity = true;
    plan.physical_size = plan.canonical_size;
    return plan;
  }
  auto rel = layout::LayoutRelation::FromSeq(seq, canonical_shape);
  if (!rel.ok()) {
    return rel.status();
  }
  const std::vector<int64_t>& phys_shape = rel->ApplyToShape();

  // Fresh vars over physical dims; inverse gives canonical index exprs.
  std::vector<ir::Expr> vars;
  ir::VarSlotMap slots;
  for (size_t d = 0; d < phys_shape.size(); ++d) {
    vars.push_back(ir::MakeVar("p" + std::to_string(d)));
    slots.AddVar(vars.back()->var_id);
  }
  auto inv = rel->MapInverse(vars);
  if (!inv.ok()) {
    return inv.status();
  }
  std::vector<ir::CompiledExpr> compiled;
  for (const auto& e : *inv) {
    auto ce = ir::CompiledExpr::Compile(e, slots);
    if (!ce.ok()) {
      return ce.status();
    }
    compiled.push_back(std::move(*ce));
  }

  auto canon_strides = ir::RowMajorStrides(canonical_shape);
  int64_t total = 1;
  for (int64_t d : phys_shape) {
    total *= d;
  }
  plan.physical_size = total;
  if (total <= 0) {
    return plan;
  }
  plan.src.resize(total);
  std::vector<int64_t> idx(phys_shape.size(), 0);
  std::vector<int64_t> env(slots.size(), 0);
  int64_t off = 0;
  for (;;) {
    for (size_t d = 0; d < idx.size(); ++d) {
      env[slots.SlotOf(vars[d]->var_id)] = idx[d];
    }
    bool in_range = true;
    int64_t coff = 0;
    for (size_t d = 0; d < canonical_shape.size(); ++d) {
      int64_t c = compiled[d].Eval(env.data());
      if (c < 0 || c >= canonical_shape[d]) {
        in_range = false;
        break;
      }
      coff += c * canon_strides[d];
    }
    plan.src[off] = in_range ? coff : -1;
    ++off;
    int d = static_cast<int>(idx.size()) - 1;
    while (d >= 0 && ++idx[d] == phys_shape[d]) {
      idx[d--] = 0;
    }
    if (d < 0) {
      break;
    }
  }
  return plan;
}

void PhysicalizeWithPlan(const ConversionPlan& plan, const float* canonical,
                         float* physical) {
  if (plan.identity) {
    std::copy(canonical, canonical + plan.canonical_size, physical);
    return;
  }
  for (int64_t off = 0; off < plan.physical_size; ++off) {
    int64_t s = plan.src[off];
    physical[off] = s >= 0 ? canonical[s] : 0.0f;
  }
}

void CanonicalizeWithPlan(const ConversionPlan& plan, const float* physical,
                          float* canonical) {
  if (plan.identity) {
    std::copy(physical, physical + plan.physical_size, canonical);
    return;
  }
  // Zero-fill, then scatter in physical-offset order: duplicated canonical
  // elements (unfold) are overwritten repeatedly, last physical copy wins —
  // the exact write order of the original one-shot loop.
  std::fill(canonical, canonical + plan.canonical_size, 0.0f);
  for (int64_t off = 0; off < plan.physical_size; ++off) {
    int64_t s = plan.src[off];
    if (s >= 0) {
      canonical[s] = physical[off];
    }
  }
}

StatusOr<std::vector<float>> Physicalize(const std::vector<float>& canonical,
                                         const std::vector<int64_t>& canonical_shape,
                                         const layout::LayoutSeq& seq) {
  auto plan = BuildConversionPlan(canonical_shape, seq);
  if (!plan.ok()) {
    return plan.status();
  }
  std::vector<float> phys(plan->physical_size, 0.0f);
  PhysicalizeWithPlan(*plan, canonical.data(), phys.data());
  return phys;
}

StatusOr<std::vector<float>> Canonicalize(const std::vector<float>& physical,
                                          const std::vector<int64_t>& canonical_shape,
                                          const layout::LayoutSeq& seq) {
  auto plan = BuildConversionPlan(canonical_shape, seq);
  if (!plan.ok()) {
    return plan.status();
  }
  std::vector<float> canonical(plan->canonical_size, 0.0f);
  CanonicalizeWithPlan(*plan, physical.data(), canonical.data());
  return canonical;
}

double MaxAbsDiff(const std::vector<float>& a, const std::vector<float>& b) {
  ALT_CHECK(a.size() == b.size());
  double mx = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    mx = std::max(mx, std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i])));
  }
  return mx;
}

}  // namespace alt::runtime

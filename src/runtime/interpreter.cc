#include "src/runtime/interpreter.h"

#include <cmath>
#include <memory>
#include <sstream>

#include "src/ir/eval.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace alt::runtime {

namespace {

using ir::CompiledExpr;
using ir::VarSlotMap;

// A value expression compiled against buffer pointers and var slots.
struct CompiledVal {
  ir::ValKind kind;
  double imm = 0.0;
  const std::vector<float>* buffer = nullptr;  // kLoad
  CompiledExpr offset;                         // kLoad: linearized element offset
  int64_t buffer_size = 0;
  std::unique_ptr<CompiledVal> a;
  std::unique_ptr<CompiledVal> b;
  struct Cond {
    CompiledExpr expr;
    int64_t lo, hi, modulus, rem;
  };
  std::vector<Cond> conds;
};

struct CompiledStore {
  std::vector<float>* buffer = nullptr;
  int64_t buffer_size = 0;
  CompiledExpr offset;
  CompiledVal value;
  ir::StoreMode mode;
};

// Execution plan node mirroring the statement tree.
struct PlanNode {
  ir::StmtKind kind;
  // For
  int slot = -1;
  int64_t extent = 0;
  std::vector<PlanNode> children;  // For: 1 child; Block: n children
  // Store
  CompiledStore store;
};

// Execution-time error state. A malformed program (e.g. applied from a
// corrupt tuning record) may compute an out-of-range element offset; the
// first such fault is recorded here and execution unwinds instead of
// aborting the process.
struct ExecContext {
  Status error = Status::Ok();
  bool failed = false;

  void Fail(std::string msg) {
    if (!failed) {
      failed = true;
      error = Status::InvalidArgument(std::move(msg));
    }
  }
};

struct Compiler {
  VarSlotMap slots;
  BufferStore* store;
  const ir::Program* program;
  // First compile error; the returned plan is a safe placeholder after that.
  Status status = Status::Ok();

  void Fail(const std::string& msg) {
    if (status.ok()) {
      status = Status::InvalidArgument(msg);
    }
  }

  CompiledExpr CompileExpr(const ir::Expr& e) {
    auto compiled = CompiledExpr::Compile(e, slots);
    if (!compiled.ok()) {
      Fail(compiled.status().message());
      return CompiledExpr();
    }
    return std::move(*compiled);
  }

  CompiledExpr LinearOffset(int tensor_id, const std::vector<ir::Expr>& indices,
                            int64_t* size_out) {
    *size_out = 0;
    const ir::BufferDecl* decl = program->FindBuffer(tensor_id);
    if (decl == nullptr) {
      Fail("no buffer decl for tensor " + std::to_string(tensor_id));
      return CompiledExpr();
    }
    auto strides = ir::RowMajorStrides(decl->tensor.shape);
    if (indices.size() != strides.size()) {
      std::ostringstream oss;
      oss << "index rank mismatch on tensor " << tensor_id << ": " << indices.size()
          << " vs " << strides.size();
      Fail(oss.str());
      return CompiledExpr();
    }
    ir::Expr linear = ir::Const(0);
    for (size_t d = 0; d < indices.size(); ++d) {
      linear = ir::Add(linear, ir::Mul(indices[d], strides[d]));
    }
    *size_out = decl->tensor.NumElements();
    return CompileExpr(linear);
  }

  CompiledVal CompileVal(const ir::Val& v) {
    CompiledVal out;
    out.kind = v->kind;
    out.imm = v->imm;
    if (v->kind == ir::ValKind::kLoad) {
      out.buffer = &store->Get(v->tensor_id);
      out.offset = LinearOffset(v->tensor_id, v->indices, &out.buffer_size);
      return out;
    }
    for (const auto& c : v->conds) {
      out.conds.push_back({CompileExpr(c.expr), c.lo, c.hi, c.modulus, c.rem});
    }
    if (v->a) {
      out.a = std::make_unique<CompiledVal>(CompileVal(v->a));
    }
    if (v->b) {
      out.b = std::make_unique<CompiledVal>(CompileVal(v->b));
    }
    return out;
  }

  PlanNode CompileStmt(const ir::Stmt& stmt) {
    PlanNode node;
    node.kind = stmt->kind;
    switch (stmt->kind) {
      case ir::StmtKind::kFor: {
        node.slot = slots.AddVar(stmt->loop_var->var_id);
        node.extent = stmt->extent;
        node.children.push_back(CompileStmt(stmt->body));
        break;
      }
      case ir::StmtKind::kBlock: {
        for (const auto& s : stmt->stmts) {
          node.children.push_back(CompileStmt(s));
        }
        break;
      }
      case ir::StmtKind::kStore: {
        auto& st = node.store;
        st.buffer = &store->Get(stmt->tensor_id);
        st.offset = LinearOffset(stmt->tensor_id, stmt->indices, &st.buffer_size);
        st.value = CompileVal(stmt->value);
        st.mode = stmt->mode;
        break;
      }
    }
    return node;
  }
};

double EvalVal(const CompiledVal& v, const int64_t* env, ExecContext& ctx) {
  switch (v.kind) {
    case ir::ValKind::kImm:
      return v.imm;
    case ir::ValKind::kLoad: {
      int64_t off = v.offset.Eval(env);
      if (off < 0 || off >= v.buffer_size) {
        std::ostringstream oss;
        oss << "load out of bounds: " << off << " size " << v.buffer_size;
        ctx.Fail(oss.str());
        return 0.0;
      }
      return (*v.buffer)[off];
    }
    case ir::ValKind::kAdd:
      return EvalVal(*v.a, env, ctx) + EvalVal(*v.b, env, ctx);
    case ir::ValKind::kSub:
      return EvalVal(*v.a, env, ctx) - EvalVal(*v.b, env, ctx);
    case ir::ValKind::kMul:
      return EvalVal(*v.a, env, ctx) * EvalVal(*v.b, env, ctx);
    case ir::ValKind::kDiv:
      return EvalVal(*v.a, env, ctx) / EvalVal(*v.b, env, ctx);
    case ir::ValKind::kMax:
      return std::max(EvalVal(*v.a, env, ctx), EvalVal(*v.b, env, ctx));
    case ir::ValKind::kMin:
      return std::min(EvalVal(*v.a, env, ctx), EvalVal(*v.b, env, ctx));
    case ir::ValKind::kExp:
      return std::exp(EvalVal(*v.a, env, ctx));
    case ir::ValKind::kTanh:
      return std::tanh(EvalVal(*v.a, env, ctx));
    case ir::ValKind::kSqrt:
      return std::sqrt(EvalVal(*v.a, env, ctx));
    case ir::ValKind::kSelect: {
      for (const auto& c : v.conds) {
        int64_t e = c.expr.Eval(env);
        if (e < c.lo || e >= c.hi) {
          return EvalVal(*v.b, env, ctx);
        }
        if (c.modulus > 1) {
          int64_t m = e % c.modulus;
          if (m < 0) {
            m += c.modulus;
          }
          if (m != c.rem) {
            return EvalVal(*v.b, env, ctx);
          }
        }
      }
      return EvalVal(*v.a, env, ctx);
    }
  }
  return 0.0;
}

void ExecNode(const PlanNode& node, int64_t* env, ExecContext& ctx) {
  switch (node.kind) {
    case ir::StmtKind::kFor: {
      for (int64_t i = 0; i < node.extent && !ctx.failed; ++i) {
        env[node.slot] = i;
        ExecNode(node.children[0], env, ctx);
      }
      break;
    }
    case ir::StmtKind::kBlock: {
      for (const auto& child : node.children) {
        if (ctx.failed) {
          break;
        }
        ExecNode(child, env, ctx);
      }
      break;
    }
    case ir::StmtKind::kStore: {
      const auto& st = node.store;
      int64_t off = st.offset.Eval(env);
      if (off < 0 || off >= st.buffer_size) {
        std::ostringstream oss;
        oss << "store out of bounds: " << off << " size " << st.buffer_size;
        ctx.Fail(oss.str());
        break;
      }
      double v = EvalVal(st.value, env, ctx);
      if (ctx.failed) {
        break;
      }
      if (st.mode == ir::StoreMode::kAssign) {
        (*st.buffer)[off] = static_cast<float>(v);
      } else {
        (*st.buffer)[off] += static_cast<float>(v);
      }
      break;
    }
  }
}

}  // namespace

Status Execute(const ir::Program& program, BufferStore& store) {
  TraceSpan span("interp.execute");
  static Counter& executions = MetricsRegistry::Global().counter("interp.programs");
  executions.Add();
  // Allocate / validate buffers.
  for (const auto& decl : program.buffers) {
    int64_t n = decl.tensor.NumElements();
    auto& buf = store.Get(decl.tensor.id);
    switch (decl.role) {
      case ir::BufferRole::kInput:
      case ir::BufferRole::kConstant:
        if (static_cast<int64_t>(buf.size()) != n) {
          return Status::FailedPrecondition("input buffer " + decl.tensor.name +
                                            " missing or mis-sized");
        }
        break;
      case ir::BufferRole::kOutput:
      case ir::BufferRole::kIntermediate:
        buf.assign(n, 0.0f);
        break;
    }
  }
  if (!program.root) {
    return Status::Ok();
  }
  Compiler compiler;
  compiler.store = &store;
  compiler.program = &program;
  PlanNode plan = compiler.CompileStmt(program.root);
  if (!compiler.status.ok()) {
    return compiler.status;
  }
  std::vector<int64_t> env(compiler.slots.size(), 0);
  ExecContext ctx;
  ExecNode(plan, env.data(), ctx);
  return ctx.error;
}

}  // namespace alt::runtime

#include "src/runtime/interpreter.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <utility>

#include "src/codegen/kernel_cache.h"
#include "src/codegen/kernel_spec.h"
#include "src/ir/affine.h"
#include "src/ir/eval.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace alt::runtime {

namespace {

using ir::CompiledExpr;
using ir::VarSlotMap;

// Fixed binding of a declared buffer: pointer and size are captured once, in
// the up-front allocation pass, before any plan compilation — compiled plans
// and kernels may hold raw pointers for the duration of the execution.
struct BufferBinding {
  std::vector<float>* buffer = nullptr;
  int64_t size = 0;
};
using BindingMap = std::unordered_map<int, BufferBinding>;

// A value expression compiled against buffer pointers and var slots.
struct CompiledVal {
  ir::ValKind kind;
  double imm = 0.0;
  const std::vector<float>* buffer = nullptr;  // kLoad
  CompiledExpr offset;                         // kLoad: linearized element offset
  int64_t buffer_size = 0;
  std::unique_ptr<CompiledVal> a;
  std::unique_ptr<CompiledVal> b;
  struct Cond {
    CompiledExpr expr;
    int64_t lo, hi, modulus, rem;
  };
  std::vector<Cond> conds;
};

struct CompiledStore {
  std::vector<float>* buffer = nullptr;
  int64_t buffer_size = 0;
  CompiledExpr offset;
  CompiledVal value;
  ir::StoreMode mode;
};

// Execution plan node mirroring the statement tree.
struct PlanNode {
  ir::StmtKind kind;
  // For
  int slot = -1;
  int64_t extent = 0;
  std::vector<PlanNode> children;  // For: 1 child; Block: n children
  // Store
  CompiledStore store;
};

// Execution-time error state. A malformed program (e.g. applied from a
// corrupt tuning record) may compute an out-of-range element offset; the
// first such fault is recorded here and execution unwinds instead of
// aborting the process.
struct ExecContext {
  Status error = Status::Ok();
  bool failed = false;

  void Fail(std::string msg) {
    if (!failed) {
      failed = true;
      error = Status::InvalidArgument(std::move(msg));
    }
  }
};

ir::Expr LinearIndexExpr(const std::vector<ir::Expr>& indices,
                         const std::vector<int64_t>& strides) {
  ir::Expr linear = ir::Const(0);
  for (size_t d = 0; d < indices.size(); ++d) {
    linear = ir::Add(linear, ir::Mul(indices[d], strides[d]));
  }
  return linear;
}

struct Compiler {
  VarSlotMap slots;
  const BindingMap* bindings = nullptr;
  const ir::Program* program = nullptr;
  // First compile error; the returned plan is a safe placeholder after that.
  Status status = Status::Ok();

  void Fail(const std::string& msg) {
    if (status.ok()) {
      status = Status::InvalidArgument(msg);
    }
  }

  CompiledExpr CompileExpr(const ir::Expr& e) {
    auto compiled = CompiledExpr::Compile(e, slots);
    if (!compiled.ok()) {
      Fail(compiled.status().message());
      return CompiledExpr();
    }
    return std::move(*compiled);
  }

  std::vector<float>* Binding(int tensor_id, int64_t* size_out) {
    auto it = bindings->find(tensor_id);
    if (it == bindings->end()) {
      Fail("no buffer binding for tensor " + std::to_string(tensor_id));
      *size_out = 0;
      return nullptr;
    }
    *size_out = it->second.size;
    return it->second.buffer;
  }

  CompiledExpr LinearOffset(int tensor_id, const std::vector<ir::Expr>& indices,
                            int64_t* size_out) {
    *size_out = 0;
    const ir::BufferDecl* decl = program->FindBuffer(tensor_id);
    if (decl == nullptr) {
      Fail("no buffer decl for tensor " + std::to_string(tensor_id));
      return CompiledExpr();
    }
    auto strides = ir::RowMajorStrides(decl->tensor.shape);
    if (indices.size() != strides.size()) {
      std::ostringstream oss;
      oss << "index rank mismatch on tensor " << tensor_id << ": " << indices.size()
          << " vs " << strides.size();
      Fail(oss.str());
      return CompiledExpr();
    }
    *size_out = decl->tensor.NumElements();
    return CompileExpr(LinearIndexExpr(indices, strides));
  }

  CompiledVal CompileVal(const ir::Val& v) {
    CompiledVal out;
    out.kind = v->kind;
    out.imm = v->imm;
    if (v->kind == ir::ValKind::kLoad) {
      int64_t size = 0;
      out.buffer = Binding(v->tensor_id, &size);
      out.offset = LinearOffset(v->tensor_id, v->indices, &out.buffer_size);
      return out;
    }
    for (const auto& c : v->conds) {
      out.conds.push_back({CompileExpr(c.expr), c.lo, c.hi, c.modulus, c.rem});
    }
    if (v->a) {
      out.a = std::make_unique<CompiledVal>(CompileVal(v->a));
    }
    if (v->b) {
      out.b = std::make_unique<CompiledVal>(CompileVal(v->b));
    }
    return out;
  }

  PlanNode CompileStmt(const ir::Stmt& stmt) {
    PlanNode node;
    node.kind = stmt->kind;
    switch (stmt->kind) {
      case ir::StmtKind::kFor: {
        node.slot = slots.AddVar(stmt->loop_var->var_id);
        node.extent = stmt->extent;
        node.children.push_back(CompileStmt(stmt->body));
        break;
      }
      case ir::StmtKind::kBlock: {
        for (const auto& s : stmt->stmts) {
          node.children.push_back(CompileStmt(s));
        }
        break;
      }
      case ir::StmtKind::kStore: {
        auto& st = node.store;
        int64_t size = 0;
        st.buffer = Binding(stmt->tensor_id, &size);
        st.offset = LinearOffset(stmt->tensor_id, stmt->indices, &st.buffer_size);
        st.value = CompileVal(stmt->value);
        st.mode = stmt->mode;
        break;
      }
    }
    return node;
  }
};

double EvalVal(const CompiledVal& v, const int64_t* env, ExecContext& ctx) {
  switch (v.kind) {
    case ir::ValKind::kImm:
      return v.imm;
    case ir::ValKind::kLoad: {
      int64_t off = v.offset.Eval(env);
      if (off < 0 || off >= v.buffer_size) {
        std::ostringstream oss;
        oss << "load out of bounds: " << off << " size " << v.buffer_size;
        ctx.Fail(oss.str());
        return 0.0;
      }
      return (*v.buffer)[off];
    }
    case ir::ValKind::kAdd:
      return EvalVal(*v.a, env, ctx) + EvalVal(*v.b, env, ctx);
    case ir::ValKind::kSub:
      return EvalVal(*v.a, env, ctx) - EvalVal(*v.b, env, ctx);
    case ir::ValKind::kMul:
      return EvalVal(*v.a, env, ctx) * EvalVal(*v.b, env, ctx);
    case ir::ValKind::kDiv:
      return EvalVal(*v.a, env, ctx) / EvalVal(*v.b, env, ctx);
    case ir::ValKind::kMax:
      return std::max(EvalVal(*v.a, env, ctx), EvalVal(*v.b, env, ctx));
    case ir::ValKind::kMin:
      return std::min(EvalVal(*v.a, env, ctx), EvalVal(*v.b, env, ctx));
    case ir::ValKind::kExp:
      return std::exp(EvalVal(*v.a, env, ctx));
    case ir::ValKind::kTanh:
      return std::tanh(EvalVal(*v.a, env, ctx));
    case ir::ValKind::kSqrt:
      return std::sqrt(EvalVal(*v.a, env, ctx));
    case ir::ValKind::kSelect: {
      for (const auto& c : v.conds) {
        int64_t e = c.expr.Eval(env);
        if (e < c.lo || e >= c.hi) {
          return EvalVal(*v.b, env, ctx);
        }
        if (c.modulus > 1) {
          int64_t m = e % c.modulus;
          if (m < 0) {
            m += c.modulus;
          }
          if (m != c.rem) {
            return EvalVal(*v.b, env, ctx);
          }
        }
      }
      return EvalVal(*v.a, env, ctx);
    }
  }
  return 0.0;
}

void ExecNode(const PlanNode& node, int64_t* env, ExecContext& ctx) {
  switch (node.kind) {
    case ir::StmtKind::kFor: {
      for (int64_t i = 0; i < node.extent && !ctx.failed; ++i) {
        env[node.slot] = i;
        ExecNode(node.children[0], env, ctx);
      }
      break;
    }
    case ir::StmtKind::kBlock: {
      for (const auto& child : node.children) {
        if (ctx.failed) {
          break;
        }
        ExecNode(child, env, ctx);
      }
      break;
    }
    case ir::StmtKind::kStore: {
      const auto& st = node.store;
      int64_t off = st.offset.Eval(env);
      if (off < 0 || off >= st.buffer_size) {
        std::ostringstream oss;
        oss << "store out of bounds: " << off << " size " << st.buffer_size;
        ctx.Fail(oss.str());
        break;
      }
      double v = EvalVal(st.value, env, ctx);
      if (ctx.failed) {
        break;
      }
      if (st.mode == ir::StoreMode::kAssign) {
        (*st.buffer)[off] = static_cast<float>(v);
      } else {
        (*st.buffer)[off] += static_cast<float>(v);
      }
      break;
    }
  }
}

// ===========================================================================
// Affine engine.
//
// The statement tree is flattened into a linear instruction array
// (LoopBegin / LoopEnd / Leaf). Every affine load/store offset gets an
// integer accumulator initialized to the form's base; each enclosing loop
// carries a bump list of (accumulator, stride) pairs applied on every
// iteration advance — strength reduction that removes offset bytecode from
// execution entirely. A For whose body is a single Store is consumed into a
// kernel leaf that runs the innermost loop as a tight kernel (fill / copy /
// mul-accumulate, or a per-element fallback); top-level pad/unfold Selects
// whose guards are affine in the leaf variable are split into contiguous
// [else)[then)[else) ranges so the condition check leaves the inner loop.
// Stores with non-affine residue become bytecode leaves that reuse the
// generic CompiledStore — the two engines are bit-identical by construction:
// every kernel performs the exact double→float conversion sequence of the
// generic evaluator, in the same element order.
// ===========================================================================

// An affine load feeding a kernel. `acc` holds the offset at leaf position
// v = 0 for the current outer-loop iteration; `inner` is the stride along
// the leaf loop.
struct AffineAccess {
  const float* data = nullptr;
  int64_t size = 0;
  int acc = -1;
  int64_t inner = 0;
};

enum class KernelKind {
  kFill,    // value is an immediate (or a product of immediates)
  kCopy,    // value is a single affine load
  kMulAcc,  // value is load*load, load*imm or imm*load
  kEval,    // per-element evaluation of a CompiledVal (offsets still bumped)
};

struct KernelBranch {
  KernelKind kind = KernelKind::kEval;
  double imm = 0.0;  // kFill splat value (double; cast to float at the store)
  bool a_is_imm = false, b_is_imm = false;  // kMulAcc operand forms
  double imm_a = 0.0, imm_b = 0.0;
  AffineAccess a, b;
  const CompiledVal* eval = nullptr;
  std::shared_ptr<CompiledVal> owned;  // keeps `eval` alive for select branches
};

// One ANDed interval guard along the leaf loop: e(v) = acc-value + cv * v,
// required to satisfy lo <= e < hi (and e ≡ rem mod modulus).
struct LeafCond {
  int acc = -1;
  int64_t cv = 0, lo = 0, hi = 0, modulus = 1, rem = 0;
};

struct Leaf {
  int64_t extent = 1;  // leaf loop trip count (1 for singleton stores)
  int vslot = -1;      // env slot of the consumed loop (-1: singleton)
  // Bytecode fallback (non-affine store offset).
  const CompiledStore* bytecode = nullptr;
  // The generic compiled store this leaf came from; the native engine runs
  // kEval-shaped leaves through it (env-only, no accumulators needed).
  const CompiledStore* generic = nullptr;
  // Kernel leaf.
  float* out = nullptr;
  int64_t out_size = 0;
  int store_acc = -1;
  int64_t store_inner = 0;
  ir::StoreMode mode = ir::StoreMode::kAssign;
  bool guarded = false;
  std::vector<LeafCond> conds;
  KernelBranch then_k, else_k;
};

struct Instr {
  enum Kind { kLoopBegin, kLoopEnd, kLeaf } kind = kLeaf;
  int slot = -1;
  int64_t extent = 0;
  int match = -1;  // begin: index of matching end; end: index of begin
  int leaf = -1;
  std::vector<std::pair<int, int64_t>> bumps;  // (accumulator, stride)
};

struct AffinePlan {
  std::vector<Instr> instrs;
  std::vector<Leaf> leaves;
  std::vector<int64_t> acc_init;
  int64_t kernel_leaves = 0;
  int64_t bytecode_leaves = 0;
};

// The top-level Select (if any) of a store value, with the value rewritten so
// the select is outermost. A product with one select operand is hoisted:
//   Mul(Select(c, t, e), x)  ==  Select(c, Mul(t, x), Mul(e, x))
// pointwise — both sides evaluate the identical double products — so pad
// guards buried under the conv multiply still split out of the inner loop.
struct SelParts {
  const std::vector<ir::IntervalCond>* conds;
  ir::Val then_v, else_v;
};

bool ContainsSelect(const ir::Val& v) {
  if (!v) {
    return false;
  }
  if (v->kind == ir::ValKind::kSelect) {
    return true;
  }
  return ContainsSelect(v->a) || ContainsSelect(v->b);
}

std::optional<SelParts> ExtractSelect(const ir::Val& v) {
  auto is_select = [](const ir::Val& x) {
    return x && x->kind == ir::ValKind::kSelect && !x->conds.empty() && x->a && x->b;
  };
  if (is_select(v)) {
    return SelParts{&v->conds, v->a, v->b};
  }
  if (v->kind == ir::ValKind::kMul && v->a && v->b) {
    if (is_select(v->a) && !ContainsSelect(v->b)) {
      return SelParts{&v->a->conds, ir::VMul(v->a->a, v->b), ir::VMul(v->a->b, v->b)};
    }
    if (is_select(v->b) && !ContainsSelect(v->a)) {
      return SelParts{&v->b->conds, ir::VMul(v->a, v->b->a), ir::VMul(v->a, v->b->b)};
    }
  }
  return std::nullopt;
}

struct AffineBuilder {
  Compiler* compiler = nullptr;
  AffinePlan plan;
  // Enclosing loops, outermost first. When building a consumed leaf the leaf
  // loop is the last entry (with no loop instruction of its own).
  std::vector<ir::AffineLoop> loops;
  std::vector<int> loop_instrs;

  // Analysis result not yet committed to an accumulator: classification may
  // abandon it (e.g. a sibling operand turns out non-affine).
  struct Pending {
    ir::AffineForm form;
    float* data = nullptr;
    int64_t size = 0;
  };

  int NewAcc(const ir::AffineForm& f, bool consumed) {
    int id = static_cast<int>(plan.acc_init.size());
    plan.acc_init.push_back(f.base);
    size_t outer = loops.size() - (consumed ? 1 : 0);
    for (size_t i = 0; i < outer; ++i) {
      if (f.coeffs[i] != 0) {
        plan.instrs[loop_instrs[i]].bumps.push_back({id, f.coeffs[i]});
      }
    }
    return id;
  }

  // A load whose offset needs the unfold clamp split (ir::DecomposeClamped):
  // affine on each side of the clamp boundary, so the leaf becomes a guarded
  // two-branch kernel instead of degrading to per-element evaluation.
  struct ClampedPending {
    ir::ClampedForm cf;
    float* data = nullptr;
    int64_t size = 0;
  };

  std::optional<Pending> Analyze(int tensor_id, const std::vector<ir::Expr>& indices,
                                 const ir::AffineAnalyzer& az) {
    const ir::BufferDecl* decl = compiler->program->FindBuffer(tensor_id);
    if (decl == nullptr) {
      return std::nullopt;
    }
    auto strides = ir::RowMajorStrides(decl->tensor.shape);
    if (indices.size() != strides.size()) {
      return std::nullopt;
    }
    auto f = az.Decompose(LinearIndexExpr(indices, strides));
    if (!f) {
      return std::nullopt;
    }
    auto it = compiler->bindings->find(tensor_id);
    if (it == compiler->bindings->end()) {
      return std::nullopt;
    }
    return Pending{std::move(*f), it->second.buffer->data(), it->second.size};
  }

  std::optional<ClampedPending> AnalyzeClamped(int tensor_id,
                                               const std::vector<ir::Expr>& indices,
                                               const ir::AffineAnalyzer& az) {
    const ir::BufferDecl* decl = compiler->program->FindBuffer(tensor_id);
    if (decl == nullptr) {
      return std::nullopt;
    }
    auto strides = ir::RowMajorStrides(decl->tensor.shape);
    if (indices.size() != strides.size()) {
      return std::nullopt;
    }
    auto cf = az.DecomposeClamped(LinearIndexExpr(indices, strides));
    if (!cf) {
      return std::nullopt;
    }
    auto it = compiler->bindings->find(tensor_id);
    if (it == compiler->bindings->end()) {
      return std::nullopt;
    }
    return ClampedPending{std::move(*cf), it->second.buffer->data(), it->second.size};
  }

  AffineAccess Commit(const Pending& p, bool consumed) {
    AffineAccess a;
    a.data = p.data;
    a.size = p.size;
    a.inner = consumed ? p.form.coeffs.back() : 0;
    a.acc = NewAcc(p.form, consumed);
    return a;
  }

  struct PendingBranch {
    KernelKind kind = KernelKind::kEval;
    double imm = 0.0;
    bool a_is_imm = false, b_is_imm = false;
    double imm_a = 0.0, imm_b = 0.0;
    std::optional<Pending> a, b;
  };

  std::optional<PendingBranch> Classify(const ir::Val& v, const ir::AffineAnalyzer& az) {
    switch (v->kind) {
      case ir::ValKind::kImm: {
        PendingBranch br;
        br.kind = KernelKind::kFill;
        br.imm = v->imm;
        return br;
      }
      case ir::ValKind::kLoad: {
        auto p = Analyze(v->tensor_id, v->indices, az);
        if (!p) {
          return std::nullopt;
        }
        PendingBranch br;
        br.kind = KernelKind::kCopy;
        br.a = std::move(p);
        return br;
      }
      case ir::ValKind::kMul: {
        if (!v->a || !v->b) {
          return std::nullopt;
        }
        PendingBranch br;
        br.kind = KernelKind::kMulAcc;
        auto operand = [&](const ir::Val& o, bool* is_imm, double* imm,
                           std::optional<Pending>* acc) {
          if (o->kind == ir::ValKind::kImm) {
            *is_imm = true;
            *imm = o->imm;
            return true;
          }
          if (o->kind == ir::ValKind::kLoad) {
            *acc = Analyze(o->tensor_id, o->indices, az);
            return acc->has_value();
          }
          return false;
        };
        if (!operand(v->a, &br.a_is_imm, &br.imm_a, &br.a) ||
            !operand(v->b, &br.b_is_imm, &br.imm_b, &br.b)) {
          return std::nullopt;
        }
        if (br.a_is_imm && br.b_is_imm) {
          PendingBranch fill;
          fill.kind = KernelKind::kFill;
          fill.imm = br.imm_a * br.imm_b;
          return fill;
        }
        return br;
      }
      default:
        return std::nullopt;
    }
  }

  // Classification of a store value whose only obstruction is one clamped
  // load: yields the exact then/else kernel pair plus the clamp guard. Covers
  // the shapes a clamped unfold read appears in — a bare copy and a product
  // with an immediate or affine co-operand.
  struct PendingClamp {
    PendingBranch then_b, else_b;
    ir::AffineForm guard;
    int64_t bound = 0;
  };

  std::optional<PendingClamp> ClassifyClamped(const ir::Val& v,
                                              const ir::AffineAnalyzer& az) {
    auto split_load = [&](const ir::Val& o) -> std::optional<ClampedPending> {
      if (o->kind != ir::ValKind::kLoad || Analyze(o->tensor_id, o->indices, az)) {
        return std::nullopt;
      }
      return AnalyzeClamped(o->tensor_id, o->indices, az);
    };
    switch (v->kind) {
      case ir::ValKind::kLoad: {
        auto cp = split_load(v);
        if (!cp) {
          return std::nullopt;
        }
        PendingClamp pc;
        pc.guard = cp->cf.guard;
        pc.bound = cp->cf.bound;
        pc.then_b.kind = KernelKind::kCopy;
        pc.then_b.a = Pending{cp->cf.then_form, cp->data, cp->size};
        pc.else_b.kind = KernelKind::kCopy;
        pc.else_b.a = Pending{cp->cf.else_form, cp->data, cp->size};
        return pc;
      }
      case ir::ValKind::kMul: {
        if (!v->a || !v->b) {
          return std::nullopt;
        }
        PendingClamp pc;
        pc.then_b.kind = pc.else_b.kind = KernelKind::kMulAcc;
        bool have_clamp = false;
        auto operand = [&](const ir::Val& o, bool* is_imm, double* imm_t, double* imm_e,
                           std::optional<Pending>* then_acc,
                           std::optional<Pending>* else_acc) {
          if (o->kind == ir::ValKind::kImm) {
            *is_imm = true;
            *imm_t = *imm_e = o->imm;
            return true;
          }
          if (o->kind != ir::ValKind::kLoad) {
            return false;
          }
          if (auto p = Analyze(o->tensor_id, o->indices, az)) {
            *then_acc = *p;
            *else_acc = std::move(*p);
            return true;
          }
          auto cp = split_load(o);
          if (!cp || have_clamp) {
            return false;  // unresolved residue, or a second clamp
          }
          have_clamp = true;
          pc.guard = cp->cf.guard;
          pc.bound = cp->cf.bound;
          *then_acc = Pending{cp->cf.then_form, cp->data, cp->size};
          *else_acc = Pending{cp->cf.else_form, cp->data, cp->size};
          return true;
        };
        if (!operand(v->a, &pc.then_b.a_is_imm, &pc.then_b.imm_a, &pc.else_b.imm_a,
                     &pc.then_b.a, &pc.else_b.a) ||
            !operand(v->b, &pc.then_b.b_is_imm, &pc.then_b.imm_b, &pc.else_b.imm_b,
                     &pc.then_b.b, &pc.else_b.b) ||
            !have_clamp) {
          return std::nullopt;
        }
        pc.else_b.a_is_imm = pc.then_b.a_is_imm;
        pc.else_b.b_is_imm = pc.then_b.b_is_imm;
        return pc;
      }
      default:
        return std::nullopt;
    }
  }

  KernelBranch CommitBranch(PendingBranch&& p, bool consumed) {
    KernelBranch k;
    k.kind = p.kind;
    k.imm = p.imm;
    k.a_is_imm = p.a_is_imm;
    k.b_is_imm = p.b_is_imm;
    k.imm_a = p.imm_a;
    k.imm_b = p.imm_b;
    if (p.a) {
      k.a = Commit(*p.a, consumed);
    }
    if (p.b) {
      k.b = Commit(*p.b, consumed);
    }
    return k;
  }

  KernelBranch BranchFor(const ir::Val& v, const ir::AffineAnalyzer& az, bool consumed) {
    if (auto k = Classify(v, az)) {
      return CommitBranch(std::move(*k), consumed);
    }
    KernelBranch k;
    k.kind = KernelKind::kEval;
    k.owned = std::make_shared<CompiledVal>(compiler->CompileVal(v));
    k.eval = k.owned.get();
    return k;
  }

  void BuildLeaf(const ir::StmtNode* st, const PlanNode* pstore, bool consumed, int vslot) {
    Leaf leaf;
    leaf.extent = consumed ? loops.back().extent : 1;
    leaf.vslot = consumed ? vslot : -1;
    leaf.generic = &pstore->store;
    leaf.mode = st->mode;
    ir::AffineAnalyzer az(loops);
    auto sp = Analyze(st->tensor_id, st->indices, az);
    if (!sp) {
      // Non-affine store offset: fall back to the generic compiled store.
      leaf.bytecode = &pstore->store;
      ++plan.bytecode_leaves;
      EmitLeaf(std::move(leaf));
      return;
    }
    leaf.out = sp->data;
    leaf.out_size = sp->size;
    leaf.store_inner = consumed ? sp->form.coeffs.back() : 0;
    leaf.store_acc = NewAcc(sp->form, consumed);

    auto sel = ExtractSelect(st->value);
    struct PendingCond {
      ir::AffineForm form;
      int64_t cv, lo, hi, modulus, rem;
    };
    std::vector<PendingCond> pconds;
    bool split = sel.has_value();
    if (split) {
      for (const ir::IntervalCond& c : *sel->conds) {
        auto f = az.Decompose(c.expr);
        if (!f) {
          split = false;
          break;
        }
        int64_t cv = consumed ? f->coeffs.back() : 0;
        if (c.modulus > 1 && cv % c.modulus != 0) {
          // The guard selects a periodic subset of the leaf range (transposed
          // conv stride-divisibility with the guard var in the inner loop):
          // not a contiguous split — evaluate per element instead.
          split = false;
          break;
        }
        pconds.push_back({std::move(*f), cv, c.lo, c.hi, c.modulus, c.rem});
      }
    }
    if (split) {
      leaf.guarded = true;
      for (auto& pc : pconds) {
        leaf.conds.push_back(
            {NewAcc(pc.form, consumed), pc.cv, pc.lo, pc.hi, pc.modulus, pc.rem});
      }
      leaf.then_k = BranchFor(sel->then_v, az, consumed);
      leaf.else_k = BranchFor(sel->else_v, az, consumed);
    } else if (auto k = Classify(st->value, az)) {
      leaf.then_k = CommitBranch(std::move(*k), consumed);
    } else if (auto ck = ClassifyClamped(st->value, az)) {
      // Unfold clamp split: the load is affine on each side of the boundary
      // g <= bound, so run it as a guarded two-branch kernel with the guard
      // interval [min(g), bound + 1) — then where the clamp is slack, else
      // where it binds (both agree at g == bound).
      leaf.guarded = true;
      int64_t cv = consumed ? ck->guard.coeffs.back() : 0;
      leaf.conds.push_back({NewAcc(ck->guard, consumed), cv,
                            ck->guard.MinValue(az.loops()), ck->bound + 1,
                            /*modulus=*/1, /*rem=*/0});
      leaf.then_k = CommitBranch(std::move(ck->then_b), consumed);
      leaf.else_k = CommitBranch(std::move(ck->else_b), consumed);
    } else {
      leaf.then_k.kind = KernelKind::kEval;
      leaf.then_k.eval = &pstore->store.value;
    }
    ++plan.kernel_leaves;
    EmitLeaf(std::move(leaf));
  }

  void EmitLeaf(Leaf&& leaf) {
    Instr ins;
    ins.kind = Instr::kLeaf;
    ins.leaf = static_cast<int>(plan.leaves.size());
    plan.leaves.push_back(std::move(leaf));
    plan.instrs.push_back(std::move(ins));
  }

  void Build(const ir::Stmt& s, const PlanNode& p) {
    switch (s->kind) {
      case ir::StmtKind::kFor: {
        // Unwrap single-statement blocks to see whether this loop's body is
        // exactly one store — if so, consume the loop into a kernel leaf.
        const ir::StmtNode* body = s->body.get();
        const PlanNode* pb = &p.children[0];
        while (body->kind == ir::StmtKind::kBlock && body->stmts.size() == 1) {
          body = body->stmts[0].get();
          pb = &pb->children[0];
        }
        if (body->kind == ir::StmtKind::kStore) {
          loops.push_back({s->loop_var->var_id, s->extent});
          loop_instrs.push_back(-1);
          BuildLeaf(body, pb, /*consumed=*/true, p.slot);
          loops.pop_back();
          loop_instrs.pop_back();
          return;
        }
        int begin = static_cast<int>(plan.instrs.size());
        Instr ins;
        ins.kind = Instr::kLoopBegin;
        ins.slot = p.slot;
        ins.extent = s->extent;
        plan.instrs.push_back(std::move(ins));
        loops.push_back({s->loop_var->var_id, s->extent});
        loop_instrs.push_back(begin);
        Build(s->body, p.children[0]);
        loops.pop_back();
        loop_instrs.pop_back();
        int end = static_cast<int>(plan.instrs.size());
        Instr endi;
        endi.kind = Instr::kLoopEnd;
        endi.match = begin;
        plan.instrs.push_back(std::move(endi));
        plan.instrs[begin].match = end;
        return;
      }
      case ir::StmtKind::kBlock: {
        for (size_t i = 0; i < s->stmts.size(); ++i) {
          Build(s->stmts[i], p.children[i]);
        }
        return;
      }
      case ir::StmtKind::kStore: {
        BuildLeaf(s.get(), &p, /*consumed=*/false, -1);
        return;
      }
    }
  }
};

// Runs one kernel branch over leaf positions [v0, v1). Offsets are linear in
// v, so checking both segment endpoints bounds every touched element exactly.
void RunBranch(const Leaf& lf, const KernelBranch& k, int64_t v0, int64_t v1,
               const std::vector<int64_t>& acc, int64_t* env, ExecContext& ctx) {
  const int64_t n = v1 - v0;
  if (n <= 0 || ctx.failed) {
    return;
  }
  const int64_t si = lf.store_inner;
  const int64_t so = acc[lf.store_acc] + si * v0;
  {
    int64_t last = so + si * (n - 1);
    if (so < 0 || so >= lf.out_size || last < 0 || last >= lf.out_size) {
      int64_t bad = (so < 0 || so >= lf.out_size) ? so : last;
      std::ostringstream oss;
      oss << "store out of bounds: " << bad << " size " << lf.out_size;
      ctx.Fail(oss.str());
      return;
    }
  }
  auto check_load = [&](const AffineAccess& a, int64_t* off0) {
    int64_t o0 = acc[a.acc] + a.inner * v0;
    int64_t last = o0 + a.inner * (n - 1);
    if (o0 < 0 || o0 >= a.size || last < 0 || last >= a.size) {
      int64_t bad = (o0 < 0 || o0 >= a.size) ? o0 : last;
      std::ostringstream oss;
      oss << "load out of bounds: " << bad << " size " << a.size;
      ctx.Fail(oss.str());
      return false;
    }
    *off0 = o0;
    return true;
  };
  float* out = lf.out;
  const bool accumulate = lf.mode == ir::StoreMode::kAccumulate;
  switch (k.kind) {
    case KernelKind::kFill: {
      const float f = static_cast<float>(k.imm);
      if (!accumulate) {
        if (si == 1) {
          std::fill_n(out + so, n, f);
        } else if (si == 0) {
          out[so] = f;  // n identical assigns collapse to one
        } else {
          for (int64_t i = 0; i < n; ++i) {
            out[so + si * i] = f;
          }
        }
      } else {
        for (int64_t i = 0; i < n; ++i) {
          out[so + si * i] += f;
        }
      }
      return;
    }
    case KernelKind::kCopy: {
      int64_t io = 0;
      if (!check_load(k.a, &io)) {
        return;
      }
      const float* in = k.a.data;
      const int64_t ai = k.a.inner;
      if (!accumulate) {
        for (int64_t i = 0; i < n; ++i) {
          out[so + si * i] = in[io + ai * i];
        }
      } else {
        for (int64_t i = 0; i < n; ++i) {
          out[so + si * i] += in[io + ai * i];
        }
      }
      return;
    }
    case KernelKind::kMulAcc: {
      int64_t ia = 0, ib = 0;
      if (!k.a_is_imm && !check_load(k.a, &ia)) {
        return;
      }
      if (!k.b_is_imm && !check_load(k.b, &ib)) {
        return;
      }
      if (!k.a_is_imm && !k.b_is_imm) {
        const float* A = k.a.data;
        const float* B = k.b.data;
        const int64_t sa = k.a.inner, sb = k.b.inner;
        if (accumulate) {
          if (si == 0) {
            // Reduction into one element (e.g. the GMM dot product).
            // Sequential float accumulation preserves bit-identity.
            float* o = out + so;
            for (int64_t i = 0; i < n; ++i) {
              *o += static_cast<float>(static_cast<double>(A[ia + sa * i]) *
                                       static_cast<double>(B[ib + sb * i]));
            }
          } else {
            for (int64_t i = 0; i < n; ++i) {
              out[so + si * i] += static_cast<float>(static_cast<double>(A[ia + sa * i]) *
                                                     static_cast<double>(B[ib + sb * i]));
            }
          }
        } else {
          for (int64_t i = 0; i < n; ++i) {
            out[so + si * i] = static_cast<float>(static_cast<double>(A[ia + sa * i]) *
                                                  static_cast<double>(B[ib + sb * i]));
          }
        }
        return;
      }
      for (int64_t i = 0; i < n; ++i) {
        double x = k.a_is_imm ? k.imm_a : static_cast<double>(k.a.data[ia + k.a.inner * i]);
        double y = k.b_is_imm ? k.imm_b : static_cast<double>(k.b.data[ib + k.b.inner * i]);
        float p = static_cast<float>(x * y);
        if (accumulate) {
          out[so + si * i] += p;
        } else {
          out[so + si * i] = p;
        }
      }
      return;
    }
    case KernelKind::kEval: {
      const CompiledVal& cv = *k.eval;
      int64_t o = so;
      for (int64_t i = 0; i < n; ++i, o += si) {
        if (lf.vslot >= 0) {
          env[lf.vslot] = v0 + i;
        }
        double v = EvalVal(cv, env, ctx);
        if (ctx.failed) {
          return;
        }
        if (accumulate) {
          out[o] += static_cast<float>(v);
        } else {
          out[o] = static_cast<float>(v);
        }
      }
      return;
    }
  }
}

// Env-only store loop shared by the bytecode leaf path and the native
// engine's per-leaf fallback: evaluates `st` for every leaf position.
void RunStoreLoop(const CompiledStore& st, int64_t extent, int vslot, int64_t* env,
                  ExecContext& ctx) {
  for (int64_t v = 0; v < extent && !ctx.failed; ++v) {
    if (vslot >= 0) {
      env[vslot] = v;
    }
    int64_t off = st.offset.Eval(env);
    if (off < 0 || off >= st.buffer_size) {
      std::ostringstream oss;
      oss << "store out of bounds: " << off << " size " << st.buffer_size;
      ctx.Fail(oss.str());
      return;
    }
    double val = EvalVal(st.value, env, ctx);
    if (ctx.failed) {
      return;
    }
    if (st.mode == ir::StoreMode::kAssign) {
      (*st.buffer)[off] = static_cast<float>(val);
    } else {
      (*st.buffer)[off] += static_cast<float>(val);
    }
  }
}

void RunBytecodeLeaf(const Leaf& lf, int64_t* env, ExecContext& ctx) {
  RunStoreLoop(*lf.bytecode, lf.extent, lf.vslot, env, ctx);
}

// ===========================================================================
// Native engine: the affine plan re-expressed as a pointer-free
// codegen::KernelSpec. Buffers become positions in a table assigned in
// first-appearance order over a deterministic plan walk, so two programs
// with equal ir::ProgramStructureKey build byte-identical specs and share
// one compiled kernel. Leaves the kernel library cannot express (bytecode
// stores, kEval branches) run through a host callback indexed by leaf.
// ===========================================================================

// One per plan leaf; `store == nullptr` marks leaves the generated code
// never routes through the callback.
struct NativeFallbackLeaf {
  const CompiledStore* store = nullptr;
  int64_t extent = 1;
  int vslot = -1;
};

struct NativeBuild {
  codegen::KernelSpec spec;
  std::vector<float*> bufs;
  std::vector<NativeFallbackLeaf> fallbacks;  // indexed by leaf
};

NativeBuild BuildNativeSpec(const AffinePlan& plan, size_t env_size) {
  NativeBuild nb;
  codegen::KernelSpec& spec = nb.spec;
  spec.env_size = static_cast<int>(env_size);
  spec.acc_init = plan.acc_init;

  std::unordered_map<const float*, int> buffer_index;
  auto buf_id = [&](const float* p) {
    auto [it, inserted] = buffer_index.emplace(p, static_cast<int>(nb.bufs.size()));
    if (inserted) {
      nb.bufs.push_back(const_cast<float*>(p));
    }
    return it->second;
  };
  auto convert_access = [&](const AffineAccess& a) {
    codegen::KernelSpec::Access out;
    out.buffer = buf_id(a.data);
    out.size = a.size;
    out.acc = a.acc;
    out.inner = a.inner;
    return out;
  };
  auto convert_branch = [&](const KernelBranch& k) {
    codegen::KernelSpec::Branch b;
    switch (k.kind) {
      case KernelKind::kFill:
        b.kind = codegen::KernelSpec::BranchKind::kFill;
        b.imm = k.imm;
        break;
      case KernelKind::kCopy:
        b.kind = codegen::KernelSpec::BranchKind::kCopy;
        b.a = convert_access(k.a);
        break;
      case KernelKind::kMulAcc:
        b.kind = codegen::KernelSpec::BranchKind::kMulAcc;
        b.a_is_imm = k.a_is_imm;
        b.b_is_imm = k.b_is_imm;
        b.imm_a = k.imm_a;
        b.imm_b = k.imm_b;
        if (!k.a_is_imm) {
          b.a = convert_access(k.a);
        }
        if (!k.b_is_imm) {
          b.b = convert_access(k.b);
        }
        break;
      case KernelKind::kEval:
        break;  // unreachable: kEval leaves fall back before conversion
    }
    return b;
  };

  nb.fallbacks.resize(plan.leaves.size());
  for (size_t li = 0; li < plan.leaves.size(); ++li) {
    const Leaf& lf = plan.leaves[li];
    codegen::KernelSpec::Leaf out;
    out.extent = lf.extent;
    out.vslot = lf.vslot;
    const bool native = lf.bytecode == nullptr && lf.then_k.kind != KernelKind::kEval &&
                        (!lf.guarded || lf.else_k.kind != KernelKind::kEval);
    if (!native) {
      out.fallback = true;
      spec.needs_env = true;
      nb.fallbacks[li] = {lf.bytecode != nullptr ? lf.bytecode : lf.generic, lf.extent,
                          lf.vslot};
    } else {
      out.out_buffer = buf_id(lf.out);
      out.out_size = lf.out_size;
      out.store_acc = lf.store_acc;
      out.store_inner = lf.store_inner;
      out.accumulate = lf.mode == ir::StoreMode::kAccumulate;
      out.guarded = lf.guarded;
      for (const LeafCond& c : lf.conds) {
        out.conds.push_back({c.acc, c.cv, c.lo, c.hi, c.modulus, c.rem});
      }
      out.then_k = convert_branch(lf.then_k);
      if (lf.guarded) {
        out.else_k = convert_branch(lf.else_k);
      }
    }
    spec.leaves.push_back(std::move(out));
  }
  for (const Instr& ins : plan.instrs) {
    codegen::KernelSpec::Instr out;
    switch (ins.kind) {
      case Instr::kLoopBegin:
        out.kind = codegen::KernelSpec::Instr::kLoopBegin;
        break;
      case Instr::kLoopEnd:
        out.kind = codegen::KernelSpec::Instr::kLoopEnd;
        break;
      case Instr::kLeaf:
        out.kind = codegen::KernelSpec::Instr::kLeaf;
        break;
    }
    out.slot = ins.slot;
    out.extent = ins.extent;
    out.match = ins.match;
    out.leaf = ins.leaf;
    out.bumps = ins.bumps;
    spec.instrs.push_back(std::move(out));
  }
  spec.num_buffers = static_cast<int>(nb.bufs.size());
  return nb;
}

struct NativeThunkCtx {
  ExecContext* ctx = nullptr;
  const std::vector<NativeFallbackLeaf>* leaves = nullptr;
};

// The callback a generated kernel invokes for fallback leaves. Returns the
// host-reserved code 3 on failure; the kernel propagates it verbatim and the
// real Status is already recorded in the ExecContext.
int64_t NativeFallbackThunk(void* p, int64_t leaf, int64_t* env) {
  auto* t = static_cast<NativeThunkCtx*>(p);
  const NativeFallbackLeaf& fl = (*t->leaves)[static_cast<size_t>(leaf)];
  RunStoreLoop(*fl.store, fl.extent, fl.vslot, env, *t->ctx);
  return t->ctx->failed ? 3 : 0;
}

// Translates a native kernel return code into the ExecContext. Code 3 is the
// host-reserved fallback-failure code: the Status is already in the context.
void ApplyNativeRc(int64_t rc, ExecContext& ctx) {
  switch (rc) {
    case codegen::kOk:
    case 3:
      break;
    case codegen::kStoreOutOfBounds:
      ctx.Fail("store out of bounds (native kernel)");
      break;
    case codegen::kLoadOutOfBounds:
      ctx.Fail("load out of bounds (native kernel)");
      break;
    default:
      ctx.Fail("internal: native kernel error code " + std::to_string(rc));
      break;
  }
}

// RAII TryAcquire/Release around one Run. `threads` is non-null only when
// this Run won the session's intra-op budget and may shard.
struct PoolLease {
  IntraOpPool* pool = nullptr;
  ThreadPool* threads = nullptr;
  explicit PoolLease(IntraOpPool* p) {
    if (p != nullptr) {
      threads = p->TryAcquire();
      if (threads != nullptr) {
        pool = p;
      }
    }
  }
  ~PoolLease() {
    if (pool != nullptr) {
      pool->Release();
    }
  }
  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;
};

void RunLeaf(const Leaf& lf, const std::vector<int64_t>& acc, int64_t* env,
             ExecContext& ctx) {
  if (lf.bytecode != nullptr) {
    RunBytecodeLeaf(lf, env, ctx);
    return;
  }
  if (!lf.guarded) {
    RunBranch(lf, lf.then_k, 0, lf.extent, acc, env, ctx);
    return;
  }
  int64_t tb = 0, te = lf.extent;
  for (const LeafCond& c : lf.conds) {
    auto r = ir::GuardRange(acc[c.acc], c.cv, c.lo, c.hi, c.modulus, c.rem, lf.extent);
    if (!r) {
      ctx.Fail("internal: unsplittable guard reached affine executor");
      return;
    }
    tb = std::max(tb, r->first);
    te = std::min(te, r->second);
  }
  if (tb >= te) {
    RunBranch(lf, lf.else_k, 0, lf.extent, acc, env, ctx);
    return;
  }
  // Same element order as the generic engine: prefix else, then, suffix else.
  RunBranch(lf, lf.else_k, 0, tb, acc, env, ctx);
  RunBranch(lf, lf.then_k, tb, te, acc, env, ctx);
  RunBranch(lf, lf.else_k, te, lf.extent, acc, env, ctx);
}

// Executes the instruction range [from, to). `acc` must hold the accumulator
// values at instruction `from`; on successful return it is restored to those
// entry values — every kLoopEnd un-bumps its accumulators on exit — so a
// range can be re-entered with fresh loop state. `iters` is caller-owned
// scratch (one slot per instruction) so shard loops don't reallocate it.
void RunAffineRange(const AffinePlan& plan, size_t from, size_t to,
                    std::vector<int64_t>& acc, int64_t* env, std::vector<int64_t>& iters,
                    ExecContext& ctx) {
  size_t ip = from;
  while (ip < to && !ctx.failed) {
    const Instr& ins = plan.instrs[ip];
    switch (ins.kind) {
      case Instr::kLoopBegin: {
        if (ins.extent <= 0) {
          ip = static_cast<size_t>(ins.match) + 1;
          break;
        }
        iters[ip] = 0;
        env[ins.slot] = 0;
        ++ip;
        break;
      }
      case Instr::kLoopEnd: {
        const Instr& begin = plan.instrs[ins.match];
        int64_t i = ++iters[ins.match];
        if (i < begin.extent) {
          env[begin.slot] = i;
          for (const auto& [a, s] : begin.bumps) {
            acc[a] += s;
          }
          ip = static_cast<size_t>(ins.match) + 1;
        } else {
          for (const auto& [a, s] : begin.bumps) {
            acc[a] -= s * (begin.extent - 1);
          }
          ++ip;
        }
        break;
      }
      case Instr::kLeaf: {
        RunLeaf(plan.leaves[ins.leaf], acc, env, ctx);
        ++ip;
        break;
      }
    }
  }
}

void RunAffine(const AffinePlan& plan, std::vector<int64_t>& acc, int64_t* env,
               ExecContext& ctx) {
  std::vector<int64_t> iters(plan.instrs.size(), 0);
  RunAffineRange(plan, 0, plan.instrs.size(), acc, env, iters, ctx);
}

// Executes iterations [begin, end) of the root loop of `plan` with private
// accumulator/env/iteration state. Preconditions (established by Prepare's
// shardability analysis): instrs[0] is the root kLoopBegin, its matching end
// is the last instruction, and 0 <= begin <= end <= extent. The incremental
// offset state is re-based in closed form — acc = acc_init + stride·begin —
// so a shard starts with exactly the accumulator values serial execution
// would have reached, and the body range restores them after each iteration.
void RunAffineShard(const AffinePlan& plan, int64_t begin, int64_t end, size_t env_size,
                    ExecContext& ctx) {
  const Instr& root = plan.instrs[0];
  std::vector<int64_t> acc = plan.acc_init;
  for (const auto& [a, s] : root.bumps) {
    acc[a] += s * begin;
  }
  std::vector<int64_t> env(env_size, 0);
  std::vector<int64_t> iters(plan.instrs.size(), 0);
  const size_t body_end = static_cast<size_t>(root.match);
  for (int64_t i = begin; i < end && !ctx.failed; ++i) {
    env[root.slot] = i;
    RunAffineRange(plan, 1, body_end, acc, env.data(), iters, ctx);
    for (const auto& [a, s] : root.bumps) {
      acc[a] += s;
    }
  }
}

// In-order (= execution-order) first store per tensor id: a tensor whose
// first write plainly assigns needs no zero-fill; only accumulate-first
// (reduction) outputs rely on a zeroed buffer.
void CollectFirstStores(const ir::Stmt& s, std::unordered_map<int, ir::StoreMode>& out) {
  switch (s->kind) {
    case ir::StmtKind::kFor:
      CollectFirstStores(s->body, out);
      break;
    case ir::StmtKind::kBlock:
      for (const auto& child : s->stmts) {
        CollectFirstStores(child, out);
      }
      break;
    case ir::StmtKind::kStore:
      out.try_emplace(s->tensor_id, s->mode);
      break;
  }
}

}  // namespace

IntraOpPool::IntraOpPool(int threads) {
  threads_ = threads > 0 ? threads : HardwareThreads();
  if (threads_ < 1) {
    threads_ = 1;
  }
}

IntraOpPool::~IntraOpPool() = default;

ThreadPool* IntraOpPool::TryAcquire() {
  if (threads_ <= 1) {
    return nullptr;
  }
  bool expected = false;
  if (!busy_.compare_exchange_strong(expected, true)) {
    return nullptr;
  }
  // Workers spawn on the first successful acquire only; a serial-only session
  // never pays for threads it doesn't use.
  std::call_once(once_, [this] { pool_ = std::make_unique<ThreadPool>(threads_); });
  return pool_.get();
}

void IntraOpPool::Release() { busy_.store(false); }

// All compiled state for one prepared program. The AffinePlan's leaves hold
// pointers into the PlanNode tree (`bytecode`, `eval`), so the tree is moved
// into place here BEFORE the affine build runs, and the whole Impl lives
// behind a unique_ptr that never relocates it.
struct PreparedProgram::Impl {
  struct InputCheck {
    const std::vector<float>* buffer = nullptr;
    int64_t size = 0;
    std::string name;
  };
  struct ZeroFill {
    std::vector<float>* buffer = nullptr;
  };
  // Inputs/constants re-validated on every Run (the caller owns their fill).
  std::vector<InputCheck> input_checks;
  // Accumulate-first outputs/intermediates re-zeroed on every Run.
  std::vector<ZeroFill> zero_fills;
  bool has_root = false;
  bool use_affine = false;
  size_t env_size = 0;
  PlanNode plan;
  AffinePlan affine;
  // Native engine state: populated when the program was prepared with
  // kNative AND its kernel compiled (or was already cached); otherwise Run
  // executes the affine plan built above.
  bool use_native = false;
  std::shared_ptr<codegen::NativeKernel> native;
  std::vector<float*> native_bufs;
  std::vector<NativeFallbackLeaf> native_fallbacks;
  // Intra-op sharding: set when the root loop is kParallel, spans the whole
  // instruction array, and every iteration provably writes a disjoint region
  // (ir::ParallelRootWritesDisjoint). `intra` is non-null only when sharding
  // is both provable and enabled (> 1 intra-op threads).
  bool shardable = false;
  int64_t root_extent = 0;
  // The native kernel was emitted with a [begin, end) root slice; a serial
  // native Run must then pass (0, root_extent) instead of the ignored (0, 0).
  bool native_sliced = false;
  std::shared_ptr<IntraOpPool> intra;
};

PreparedProgram::PreparedProgram() = default;
PreparedProgram::PreparedProgram(PreparedProgram&&) noexcept = default;
PreparedProgram& PreparedProgram::operator=(PreparedProgram&&) noexcept = default;
PreparedProgram::~PreparedProgram() = default;

StatusOr<PreparedProgram> PreparedProgram::Prepare(const ir::Program& program,
                                                   BufferStore& store,
                                                   const ExecOptions& options) {
  PreparedProgram prepared;
  prepared.impl_ = std::make_unique<Impl>();
  Impl& impl = *prepared.impl_;
  std::unordered_map<int, ir::StoreMode> first_store;
  if (program.root) {
    CollectFirstStores(program.root, first_store);
  }
  // Allocate / validate every declared buffer up front, in one pass, before
  // any compilation: compiled plans capture raw pointers, so allocation and
  // pointer capture must not interleave.
  BindingMap bindings;
  bindings.reserve(program.buffers.size());
  for (const auto& decl : program.buffers) {
    int64_t n = decl.tensor.NumElements();
    auto& buf = store.Get(decl.tensor.id);
    switch (decl.role) {
      case ir::BufferRole::kInput:
      case ir::BufferRole::kConstant:
        if (static_cast<int64_t>(buf.size()) != n) {
          return Status::FailedPrecondition("input buffer " + decl.tensor.name +
                                            " missing or mis-sized");
        }
        impl.input_checks.push_back({&buf, n, decl.tensor.name});
        break;
      case ir::BufferRole::kOutput:
      case ir::BufferRole::kIntermediate: {
        auto it = first_store.find(decl.tensor.id);
        if (it != first_store.end() && it->second == ir::StoreMode::kAssign) {
          // First write is a plain store: skip the redundant zero-fill
          // (fresh elements from growth are value-initialized anyway).
          buf.resize(n);
        } else {
          buf.assign(n, 0.0f);
          impl.zero_fills.push_back({&buf});
        }
        break;
      }
    }
    bindings[decl.tensor.id] = {&buf, n};
  }
  if (!program.root) {
    return prepared;
  }
  Compiler compiler;
  compiler.bindings = &bindings;
  compiler.program = &program;
  impl.plan = compiler.CompileStmt(program.root);
  if (!compiler.status.ok()) {
    return compiler.status;
  }
  impl.has_root = true;
  impl.env_size = compiler.slots.size();
  impl.use_affine = options.engine != ExecEngine::kGeneric;
  if (impl.use_affine) {
    AffineBuilder builder;
    builder.compiler = &compiler;
    builder.Build(program.root, impl.plan);
    if (!compiler.status.ok()) {
      return compiler.status;  // select-branch compiles share the error state
    }
    static Counter& kernel_leaves = MetricsRegistry::Global().counter("interp.kernel_leaves");
    static Counter& bytecode_leaves =
        MetricsRegistry::Global().counter("interp.bytecode_leaves");
    kernel_leaves.Add(static_cast<uint64_t>(builder.plan.kernel_leaves));
    bytecode_leaves.Add(static_cast<uint64_t>(builder.plan.bytecode_leaves));
    impl.affine = std::move(builder.plan);
    // Intra-op sharding analysis. The root loop is shardable when the
    // schedule marked it kParallel AND the conservative disjointness proof
    // holds; a kParallel root that fails the proof (e.g. a parallel
    // reduction axis) degrades to serial execution, counted so schedules
    // that promise parallelism without delivering it stay visible.
    if (program.root->kind == ir::StmtKind::kFor &&
        program.root->for_kind == ir::ForKind::kParallel && program.root->extent > 1 &&
        !impl.affine.instrs.empty() && impl.affine.instrs[0].kind == Instr::kLoopBegin &&
        impl.affine.instrs[0].match == static_cast<int>(impl.affine.instrs.size()) - 1) {
      if (ir::ParallelRootWritesDisjoint(program)) {
        impl.shardable = true;
        impl.root_extent = impl.affine.instrs[0].extent;
      } else {
        static Counter& degraded =
            MetricsRegistry::Global().counter("interp.parallel_degraded");
        degraded.Add();
      }
    }
    if (impl.shardable) {
      std::shared_ptr<IntraOpPool> pool =
          options.intra_pool ? options.intra_pool
                             : std::make_shared<IntraOpPool>(options.intra_threads);
      if (pool->threads() > 1) {
        impl.intra = std::move(pool);
      }
    }
  }
  if (options.engine == ExecEngine::kNative) {
    static Counter& native_programs =
        MetricsRegistry::Global().counter("codegen.native_programs");
    static Counter& fallback_programs =
        MetricsRegistry::Global().counter("codegen.fallback_programs");
    NativeBuild nb = BuildNativeSpec(impl.affine, impl.env_size);
    // Slice the emitted root loop iff the structure proof allows sharding.
    // Deliberately independent of the thread options: the flag — like the
    // proof it reflects — is a pure function of ProgramStructureKey, so
    // cached kernels stay shareable across sessions with different budgets.
    nb.spec.sliced = impl.shardable;
    const std::string key =
        codegen::KernelCache::KeyForStructure(ir::ProgramStructureKey(program));
    auto kernel = codegen::KernelCache::Global().GetOrCompile(key, nb.spec);
    if (kernel.ok()) {
      impl.native = std::move(*kernel);
      impl.native_bufs = std::move(nb.bufs);
      impl.native_fallbacks = std::move(nb.fallbacks);
      impl.use_native = true;
      impl.native_sliced = nb.spec.sliced;
      native_programs.Add();
    } else {
      // Compile/load failed (e.g. no host toolchain): Prepare still
      // succeeds and Run serves through the affine engine. The failure
      // Status stays cached in the KernelCache for inspection.
      fallback_programs.Add();
    }
  }
  return prepared;
}

Status PreparedProgram::Run() {
  Impl& impl = *impl_;
  static Counter& executions = MetricsRegistry::Global().counter("interp.programs");
  executions.Add();
  for (const auto& c : impl.input_checks) {
    if (static_cast<int64_t>(c.buffer->size()) != c.size) {
      return Status::FailedPrecondition("input buffer " + c.name + " missing or mis-sized");
    }
  }
  // std::fill (not assign) so the buffer provably never reallocates — the
  // compiled plans hold its data() pointer.
  for (const auto& z : impl.zero_fills) {
    std::fill(z.buffer->begin(), z.buffer->end(), 0.0f);
  }
  if (!impl.has_root) {
    return Status::Ok();
  }
  std::vector<int64_t> env(impl.env_size, 0);
  ExecContext ctx;
  // Shard dispatch: split [0, root_extent) into one contiguous slice per
  // pool member and run each with private acc/env/error state. The zero
  // fills above already ran serially, and disjointness was proven at
  // Prepare, so shards never touch the same element. Errors merge lowest
  // shard first — the reported failure is the one serial execution would
  // have hit first, whatever the thread timing.
  const auto run_sharded = [&](ThreadPool& pool,
                               const std::function<void(int64_t, int64_t, ExecContext&)>&
                                   shard) {
    static Counter& parallel =
        MetricsRegistry::Global().counter("interp.parallel_programs");
    parallel.Add();
    const int shards = static_cast<int>(
        std::min<int64_t>(static_cast<int64_t>(pool.size()), impl.root_extent));
    std::vector<ExecContext> shard_ctx(static_cast<size_t>(shards));
    const Status pool_status = pool.ParallelFor(shards, [&](int s) {
      const int64_t b = impl.root_extent * s / shards;
      const int64_t e = impl.root_extent * (s + 1) / shards;
      shard(b, e, shard_ctx[static_cast<size_t>(s)]);
    });
    for (ExecContext& sc : shard_ctx) {
      if (sc.failed) {
        ctx = std::move(sc);
        break;
      }
    }
    if (!ctx.failed && !pool_status.ok()) {
      ctx.failed = true;
      ctx.error = pool_status;
    }
  };
  if (impl.use_native) {
    static Counter& native = MetricsRegistry::Global().counter("interp.native_programs");
    native.Add();
    PoolLease lease(impl.intra.get());
    if (lease.threads != nullptr) {
      run_sharded(*lease.threads, [&](int64_t b, int64_t e, ExecContext& sc) {
        std::vector<int64_t> shard_env(impl.env_size, 0);
        NativeThunkCtx thunk_ctx{&sc, &impl.native_fallbacks};
        ApplyNativeRc(impl.native->fn()(impl.native_bufs.data(), shard_env.data(),
                                        &thunk_ctx, &NativeFallbackThunk, b, e),
                      sc);
      });
    } else {
      NativeThunkCtx thunk_ctx{&ctx, &impl.native_fallbacks};
      ApplyNativeRc(impl.native->fn()(impl.native_bufs.data(), env.data(), &thunk_ctx,
                                      &NativeFallbackThunk, 0,
                                      impl.native_sliced ? impl.root_extent : 0),
                    ctx);
    }
    return ctx.error;
  }
  if (!impl.use_affine) {
    static Counter& generic = MetricsRegistry::Global().counter("interp.generic_programs");
    generic.Add();
    ExecNode(impl.plan, env.data(), ctx);
  } else {
    static Counter& affine = MetricsRegistry::Global().counter("interp.affine_programs");
    affine.Add();
    PoolLease lease(impl.intra.get());
    if (lease.threads != nullptr) {
      run_sharded(*lease.threads, [&](int64_t b, int64_t e, ExecContext& sc) {
        RunAffineShard(impl.affine, b, e, impl.env_size, sc);
      });
    } else {
      std::vector<int64_t> acc = impl.affine.acc_init;
      RunAffine(impl.affine, acc, env.data(), ctx);
    }
  }
  return ctx.error;
}

StatusOr<std::string> EnsureNativeKernel(const ir::Program& program) {
  BufferStore scratch;
  for (const auto& decl : program.buffers) {
    if (decl.role == ir::BufferRole::kInput || decl.role == ir::BufferRole::kConstant) {
      scratch.Get(decl.tensor.id).assign(static_cast<size_t>(decl.tensor.NumElements()),
                                         0.0f);
    }
  }
  ExecOptions options;
  options.engine = ExecEngine::kNative;
  auto prepared = PreparedProgram::Prepare(program, scratch, options);
  if (!prepared.ok()) {
    return prepared.status();
  }
  return codegen::KernelCache::KeyForStructure(ir::ProgramStructureKey(program));
}

Status Execute(const ir::Program& program, BufferStore& store) {
  return Execute(program, store, ExecOptions());
}

Status Execute(const ir::Program& program, BufferStore& store, const ExecOptions& options) {
  TraceSpan span("interp.execute");
  auto prepared = PreparedProgram::Prepare(program, store, options);
  if (!prepared.ok()) {
    return prepared.status();
  }
  return prepared->Run();
}

}  // namespace alt::runtime

// Program interpreter: executes lowered programs on real float buffers.
//
// This is the ground truth that keeps the layout machinery honest — every
// transformed program must produce the same numbers as the canonical
// reference implementation (reference.h), whatever primitive sequences and
// schedules were applied.
//
// Three engines share one compile step:
//   - kAffine (default): loads/stores whose offsets decompose into
//     base + Σ stride_i · loop_i (ir/affine.h) run through an iterative
//     loop-nest executor with incremental offset bumping, guard-range
//     splitting and tight inner-loop kernels. Anything with non-affine
//     residue falls back per-store to the generic bytecode path.
//   - kGeneric: the recursive tree-walking path, retained as the fallback
//     target and as the oracle for differential testing.
//   - kNative: the affine plan lowered to C++ (src/codegen), JIT-compiled
//     into a dlopened shared object and cached process-wide by program
//     structure. Leaves the plan cannot express natively (non-affine
//     offsets, general expression values) call back into the interpreter
//     per leaf; if the kernel cannot be compiled at all (no host compiler),
//     Prepare degrades to the affine engine and still succeeds.
// All engines produce bit-identical buffers.

#ifndef ALT_RUNTIME_INTERPRETER_H_
#define ALT_RUNTIME_INTERPRETER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/ir/stmt.h"
#include "src/support/status.h"
#include "src/support/thread_pool.h"

namespace alt::runtime {

// Storage keyed by tensor id. Buffers persist across program executions so a
// lowered network can run group by group.
class BufferStore {
 public:
  std::vector<float>& Get(int tensor_id) { return buffers_[tensor_id]; }
  const std::vector<float>* Find(int tensor_id) const {
    auto it = buffers_.find(tensor_id);
    return it == buffers_.end() ? nullptr : &it->second;
  }
  bool Has(int tensor_id) const { return buffers_.count(tensor_id) > 0; }

 private:
  std::unordered_map<int, std::vector<float>> buffers_;
};

enum class ExecEngine {
  kAuto,     // affine engine with per-store generic fallback (the default)
  kAffine,   // same as kAuto (the affine engine always embeds the fallback)
  kGeneric,  // force the recursive tree-walking engine
  kNative,   // JIT-compiled kernels with per-leaf interpreter fallback;
             // degrades to kAffine when compilation is unavailable
};

// Intra-op worker pool with a built-in thread budget. One pool is shared by
// every prepared program of a session: a Run that wants to shard a kParallel
// root TryAcquire()s the pool and runs serially (bit-identically) when
// another Run already holds it. That single-holder gate is the budget policy
// — with batch fan-out F and intra-op threads T, peak live threads are
// F + T - 1 (one sharded Run joins the pool's T - 1 workers), never F * T.
// Worker threads spawn lazily on the first successful acquire, so sessions
// whose programs never shard cost nothing.
class IntraOpPool {
 public:
  // `threads` is total intra-op parallelism for one sharded Run (the caller
  // participates). <= 0 selects HardwareThreads(); 1 disables sharding.
  explicit IntraOpPool(int threads = 0);
  ~IntraOpPool();

  IntraOpPool(const IntraOpPool&) = delete;
  IntraOpPool& operator=(const IntraOpPool&) = delete;

  int threads() const { return threads_; }

  // The pool when this caller may shard; nullptr when sharding is disabled
  // (threads() == 1) or another Run holds the pool. Non-blocking — a refused
  // caller executes serially rather than queueing. Pair with Release().
  ThreadPool* TryAcquire();
  void Release();

 private:
  int threads_ = 1;
  std::atomic<bool> busy_{false};
  std::once_flag once_;
  std::unique_ptr<ThreadPool> pool_;
};

struct ExecOptions {
  ExecEngine engine = ExecEngine::kAuto;
  // Intra-op threads for sharding a root ForKind::kParallel loop whose
  // iterations provably write disjoint regions (ir::ParallelRootWritesDisjoint).
  // <= 0 selects HardwareThreads(); 1 keeps execution serial. Results are
  // bit-identical at any thread count. Ignored when `intra_pool` is set.
  int intra_threads = 0;
  // Session-shared pool + budget. When null, Prepare builds a private pool
  // (at `intra_threads`) for each shardable program; sessions install one
  // shared pool here so concurrent Runs never stack worker threads.
  std::shared_ptr<IntraOpPool> intra_pool;
};

// A program compiled once against a fixed BufferStore, executable many times.
//
// Prepare() performs everything Execute() used to do per call except the
// execution itself: buffer allocation/validation, generic plan compilation,
// and affine plan construction. The compiled plans capture raw pointers into
// `store`'s buffers, so between Prepare() and the last Run() the store must
// stay alive and its buffers must never be erased or resized. Run() re-zeros
// only the accumulate-first output/intermediate buffers (via std::fill — no
// reallocation) and executes; repeated Runs on the same inputs are
// bit-identical to repeated one-shot Execute() calls.
class PreparedProgram {
 public:
  PreparedProgram(PreparedProgram&&) noexcept;
  PreparedProgram& operator=(PreparedProgram&&) noexcept;
  ~PreparedProgram();

  static StatusOr<PreparedProgram> Prepare(const ir::Program& program, BufferStore& store,
                                           const ExecOptions& options = ExecOptions());

  Status Run();

 private:
  PreparedProgram();

  struct Impl;
  std::unique_ptr<Impl> impl_;
};

// Executes `program` against `store` (Prepare + Run in one shot). Buffers for
// inputs/constants must be present and correctly sized; outputs and
// intermediates are allocated up front in one pass before plan compilation
// (zero-filled only when the program's first write to them accumulates).
Status Execute(const ir::Program& program, BufferStore& store);
Status Execute(const ir::Program& program, BufferStore& store, const ExecOptions& options);

// Compiles (or fetches from the process-wide codegen::KernelCache) the
// native kernel for `program` against scratch buffers and returns its cache
// key. Used by artifact save to embed kernels without a live session; the
// key's object bytes are then available via KernelCache::ObjectBytes (which
// reports the compile failure when the toolchain was unavailable).
StatusOr<std::string> EnsureNativeKernel(const ir::Program& program);

}  // namespace alt::runtime

#endif  // ALT_RUNTIME_INTERPRETER_H_

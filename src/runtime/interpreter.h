// Program interpreter: executes lowered programs on real float buffers.
//
// This is the ground truth that keeps the layout machinery honest — every
// transformed program must produce the same numbers as the canonical
// reference implementation (reference.h), whatever primitive sequences and
// schedules were applied.

#ifndef ALT_RUNTIME_INTERPRETER_H_
#define ALT_RUNTIME_INTERPRETER_H_

#include <unordered_map>
#include <vector>

#include "src/ir/stmt.h"
#include "src/support/status.h"

namespace alt::runtime {

// Storage keyed by tensor id. Buffers persist across program executions so a
// lowered network can run group by group.
class BufferStore {
 public:
  std::vector<float>& Get(int tensor_id) { return buffers_[tensor_id]; }
  const std::vector<float>* Find(int tensor_id) const {
    auto it = buffers_.find(tensor_id);
    return it == buffers_.end() ? nullptr : &it->second;
  }
  bool Has(int tensor_id) const { return buffers_.count(tensor_id) > 0; }

 private:
  std::unordered_map<int, std::vector<float>> buffers_;
};

// Executes `program` against `store`. Buffers for inputs/constants must be
// present and correctly sized; outputs and intermediates are allocated (and
// zero-initialized) on demand.
Status Execute(const ir::Program& program, BufferStore& store);

}  // namespace alt::runtime

#endif  // ALT_RUNTIME_INTERPRETER_H_

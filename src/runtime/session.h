// Serving-side execution of a lowered network.
//
// InferenceSession is the one-time-setup / many-runs split: construction
// compiles every program into a PreparedProgram, pre-sizes a buffer arena,
// and caches the canonical<->physical conversion plans for every graph
// input, constant, store_at host, and the network output. Run() then only
// converts inputs, executes the prepared plans, and converts the output —
// no per-call allocation of intermediates, plan compilation, or layout
// analysis.
//
// Threading model: Run() is safe to call concurrently. Each in-flight call
// borrows a complete arena (BufferStore + prepared programs) from a
// mutex-guarded pool; a new arena is built lazily when all existing ones are
// busy, so the pool grows with concurrency and is reused afterwards. The pool
// is BOUNDED by SessionOptions::max_arenas — once every arena is in flight a
// borrower blocks until one is returned (counted in session.arena_waits /
// session.arena_wait_us), so a request burst costs queueing, not unbounded
// memory. RunBatch() fans a vector of requests across a ThreadPool with
// exactly that mechanism.
//
// The free functions RunLoweredNetwork / ValidateAgainstReference predate
// the session and are DEPRECATED: they are thin wrappers that build a
// throwaway session per call (bit-identical results, none of the reuse).

#ifndef ALT_RUNTIME_SESSION_H_
#define ALT_RUNTIME_SESSION_H_

#include <memory>
#include <vector>

#include "src/graph/layout_assignment.h"
#include "src/loop/lowering.h"
#include "src/runtime/interpreter.h"
#include "src/runtime/reference.h"
#include "src/support/thread_pool.h"

namespace alt::runtime {

struct SessionOptions {
  // Engine selection for every prepared program (affine by default).
  ExecOptions exec;
  // Upper bound on arenas the session may materialize (i.e. on concurrent
  // in-flight Run calls before borrowers block). <= 0 selects the default:
  // 2x hardware threads (at least 2) — enough that a worker-per-core server
  // never waits, while a burst of N >> cores callers queues instead of
  // allocating N full buffer arenas.
  int max_arenas = 0;
  // Intra-op threads for sharding provably-parallel root loops (see
  // ExecOptions::intra_threads). <= 0 selects HardwareThreads(); 1 keeps
  // every program serial. All arenas share ONE IntraOpPool built at Create,
  // whose single-holder budget keeps batch fan-out from multiplying with
  // intra-op sharding: with fan-out F, peak live threads are F +
  // intra_threads - 1, never F * intra_threads. Ignored when
  // exec.intra_pool is set explicitly.
  int intra_threads = 0;
};

class InferenceSession {
 public:
  // Builds a session for `net` (lowered from `graph` under `assignment`).
  // All three are copied in, so the session is self-contained. Plan
  // compilation happens here: a malformed network fails at Create, not at
  // the first Run. Fails with InvalidArgument on an empty network.
  static StatusOr<InferenceSession> Create(const graph::Graph& graph,
                                           const graph::LayoutAssignment& assignment,
                                           const loop::LoweredNetwork& net,
                                           const SessionOptions& options = SessionOptions());

  // Serves one request: canonical graph inputs + constants in, the final
  // group output in CANONICAL layout out. Thread-safe; bit-identical to
  // RunLoweredNetwork on the same data, call after call.
  StatusOr<std::vector<float>> Run(const TensorDataMap& canonical_data) const;

  // Runs every request concurrently on `pool` (caller-owned and reusable
  // across batches, so the per-batch cost is fan-out, not thread spawn) and
  // returns per-request results in request order: element i is request i's
  // output or its own failure Status. One malformed request never discards
  // the other requests' outputs — the caller rejects exactly the bad one.
  // Concurrent calls are fine as long as each caller passes its own pool
  // (ThreadPool::ParallelFor is not reentrant on one pool).
  std::vector<StatusOr<std::vector<float>>> RunBatchDetailed(
      const std::vector<TensorDataMap>& requests, ThreadPool& pool) const;

  // Convenience wrapper over RunBatchDetailed: runs on a session-owned
  // reusable pool (built lazily at the first call's `threads`; <= 0 means one
  // per hardware core, clamped to >= 1 — see ResolveBatchThreads) and
  // collapses per-request results to all-or-nothing: outputs in request order
  // when every request succeeded, otherwise the first failed request's
  // status. Callers that must keep the good outputs of a mixed batch use
  // RunBatchDetailed. Concurrent RunBatch calls serialize on the owned pool.
  StatusOr<std::vector<std::vector<float>>> RunBatch(
      const std::vector<TensorDataMap>& requests, int threads = 0) const;

  // Tensor id / canonical shape of the network output.
  int output_tensor() const;
  const std::vector<int64_t>& output_shape() const;

  // Arenas materialized so far (== peak concurrent Run calls; >= 1).
  int arena_count() const;

  // Arena cap this session resolved from SessionOptions::max_arenas.
  int max_arenas() const;

 private:
  InferenceSession() = default;

  struct Impl;
  std::shared_ptr<Impl> impl_;
};

// RunBatch's thread-count resolution, exposed for regression testing:
// `requested` when positive, else `hardware` — which is the value of
// std::thread::hardware_concurrency() and may legitimately be 0 ("not
// computable") — clamped to >= 1 so a ThreadPool(0) is never constructed.
int ResolveBatchThreads(int requested, unsigned hardware);

// Seed/fusion knobs for ValidateAgainstReference, replacing its former bare
// default arguments so call sites are self-describing.
struct ValidateOptions {
  uint64_t seed = 42;
  bool enable_fusion = true;
};

// DEPRECATED: builds a throwaway InferenceSession per call. Prefer creating
// one session and calling Run repeatedly.
StatusOr<std::vector<float>> RunLoweredNetwork(const graph::Graph& graph,
                                               const graph::LayoutAssignment& assignment,
                                               const loop::LoweredNetwork& net,
                                               const TensorDataMap& canonical_data);

// DEPRECATED convenience kept for tests/examples: lowers naive, runs both
// the lowered network (through a session) and the reference, and returns max
// |diff| on the final output.
StatusOr<double> ValidateAgainstReference(const graph::Graph& graph,
                                          const graph::LayoutAssignment& assignment,
                                          const ValidateOptions& options = ValidateOptions());

}  // namespace alt::runtime

#endif  // ALT_RUNTIME_SESSION_H_

// End-to-end execution of a lowered network against canonical inputs, and
// numeric validation against the reference executor. This is the harness the
// integration tests and examples use to prove that layout + loop transforms
// preserve semantics.

#ifndef ALT_RUNTIME_SESSION_H_
#define ALT_RUNTIME_SESSION_H_

#include "src/graph/layout_assignment.h"
#include "src/loop/lowering.h"
#include "src/runtime/interpreter.h"
#include "src/runtime/reference.h"

namespace alt::runtime {

// Runs `net` (lowered from `graph` under `assignment`) on the canonical
// inputs in `canonical_data` (graph inputs + constants must be present).
// Returns the final group output in CANONICAL layout.
StatusOr<std::vector<float>> RunLoweredNetwork(const graph::Graph& graph,
                                               const graph::LayoutAssignment& assignment,
                                               const loop::LoweredNetwork& net,
                                               const TensorDataMap& canonical_data);

// Convenience: lowers naive, runs both the lowered network and the reference,
// and returns max |diff| on the final output.
StatusOr<double> ValidateAgainstReference(const graph::Graph& graph,
                                          const graph::LayoutAssignment& assignment,
                                          uint64_t seed = 42, bool enable_fusion = true);

}  // namespace alt::runtime

#endif  // ALT_RUNTIME_SESSION_H_

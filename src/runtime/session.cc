#include "src/runtime/session.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <utility>

#include "src/support/logging.h"
#include "src/support/metrics.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace alt::runtime {

namespace {

// One complete execution context: private buffers plus the programs prepared
// against them. Exactly one in-flight Run owns an arena at a time.
struct Arena {
  BufferStore store;
  std::vector<PreparedProgram> programs;
};

// Canonical data fed into the arena at the start of every Run.
struct FeedSpec {
  int tensor_id = -1;
  std::string name;
  ConversionPlan plan;
};

// store_at materialization (paper §4.1.2): a host tensor whose sequence is
// exactly [store_at(src, k)] carries the source's values in its appended
// slice. `host_offsets[i]` is the host physical offset of source element i.
struct StoreAtSpec {
  int host_id = -1;
  int src_id = -1;
  std::vector<int64_t> host_offsets;
};

}  // namespace

struct InferenceSession::Impl {
  graph::Graph graph;
  graph::LayoutAssignment assignment;
  loop::LoweredNetwork net;
  SessionOptions options;

  std::vector<FeedSpec> feeds;
  std::vector<StoreAtSpec> store_ats;
  int out_id = -1;
  ConversionPlan out_plan;

  // Arena pool: idle arenas, guarded by `mu`. Grows to peak concurrency but
  // never past `max_arenas`; borrowers past the cap block on `arena_cv`.
  mutable std::mutex mu;
  mutable std::condition_variable arena_cv;
  mutable std::vector<std::unique_ptr<Arena>> free_arenas;
  mutable int total_arenas = 0;
  int max_arenas = 1;

  // Reusable pool backing the RunBatch convenience overload, built lazily at
  // the first call (RunBatchDetailed callers bring their own). The lock is
  // held across the whole batch because ParallelFor is not reentrant.
  mutable std::mutex batch_mu;
  mutable std::unique_ptr<ThreadPool> batch_pool;

  // One intra-op pool for the whole session (every arena, every program):
  // its single-holder TryAcquire is the thread budget — at most one Run in
  // the session shards at a time, so batch fan-out and intra-op threads add
  // instead of multiplying.
  std::shared_ptr<IntraOpPool> intra_pool;

  StatusOr<std::unique_ptr<Arena>> NewArena() const {
    auto arena = std::make_unique<Arena>();
    // Pre-size every feed buffer so PreparedProgram::Prepare sees correctly
    // sized inputs/constants; values are written per Run.
    for (const FeedSpec& f : feeds) {
      arena->store.Get(f.tensor_id).assign(f.plan.physical_size, 0.0f);
    }
    ExecOptions exec = options.exec;
    if (!exec.intra_pool) {
      exec.intra_pool = intra_pool;
    }
    // Prepare in execution order: each program allocates its outputs, which
    // later programs validate as their inputs.
    for (const auto& program : net.programs) {
      auto prepared = PreparedProgram::Prepare(program, arena->store, exec);
      if (!prepared.ok()) {
        return prepared.status();
      }
      arena->programs.push_back(std::move(*prepared));
    }
    return arena;
  }
};

StatusOr<InferenceSession> InferenceSession::Create(const graph::Graph& graph,
                                                    const graph::LayoutAssignment& assignment,
                                                    const loop::LoweredNetwork& net,
                                                    const SessionOptions& options) {
  // An empty lowering is invalid: fail fast, before net.groups.back() below
  // would be UB.
  if (net.groups.empty()) {
    return Status::InvalidArgument("empty network");
  }
  auto impl = std::make_shared<Impl>();
  impl->graph = graph;
  impl->assignment = assignment;
  impl->net = net;
  impl->options = options;

  // Cache a conversion plan per graph input / constant (tensor order — the
  // same order the deprecated free function checked for missing data).
  for (const auto& t : graph.tensors()) {
    if (!graph.IsGraphInput(t.id) && !graph.IsConstant(t.id)) {
      continue;
    }
    auto plan = BuildConversionPlan(t.shape, assignment.Get(t.id));
    if (!plan.ok()) {
      return plan.status();
    }
    impl->feeds.push_back({t.id, t.name, std::move(*plan)});
  }

  // Precompute host offsets for store_at slices.
  for (const auto& t : graph.tensors()) {
    const layout::LayoutSeq& seq = assignment.Get(t.id);
    if (seq.size() != 1 || seq.primitives()[0].kind != layout::PrimitiveKind::kStoreAt) {
      continue;
    }
    StoreAtSpec spec;
    spec.host_id = t.id;
    spec.src_id = seq.primitives()[0].store_src_tensor;
    int dim = seq.primitives()[0].dim;
    std::vector<int64_t> phys_shape = t.shape;
    phys_shape[dim] += 1;
    auto strides = ir::RowMajorStrides(phys_shape);
    // Iterate the source domain (host canonical shape minus `dim`) in the
    // exact order of the original materialization loop.
    std::vector<int64_t> src_shape = t.shape;
    src_shape.erase(src_shape.begin() + dim);
    std::vector<int64_t> idx(src_shape.size(), 0);
    for (;;) {
      int64_t host_off = t.shape[dim] * strides[dim];
      int sd = 0;
      for (size_t d = 0; d < phys_shape.size(); ++d) {
        if (static_cast<int>(d) == dim) {
          continue;
        }
        host_off += idx[sd++] * strides[d];
      }
      spec.host_offsets.push_back(host_off);
      int d = static_cast<int>(idx.size()) - 1;
      while (d >= 0 && ++idx[d] == src_shape[d]) {
        idx[d--] = 0;
      }
      if (d < 0) {
        break;
      }
    }
    impl->store_ats.push_back(std::move(spec));
  }

  impl->out_id = net.groups.back().OutputTensor(graph);
  const auto& out_tensor = graph.tensor(impl->out_id);
  auto out_plan = BuildConversionPlan(out_tensor.shape, assignment.Get(impl->out_id));
  if (!out_plan.ok()) {
    return out_plan.status();
  }
  impl->out_plan = std::move(*out_plan);

  // Resolve the arena cap: an explicit positive cap wins, otherwise twice the
  // hardware threads (HardwareThreads clamps to >= 1 so the cap — and with it
  // peak concurrency — is never below the eager first arena).
  impl->max_arenas =
      options.max_arenas > 0 ? options.max_arenas : std::max(2, 2 * HardwareThreads());

  // Resolve the intra-op budget before the first arena so its programs bind
  // the shared pool. The gauge reports the resolved per-session width even
  // when no program ever shards (workers spawn lazily on first use).
  impl->intra_pool = options.exec.intra_pool
                         ? options.exec.intra_pool
                         : std::make_shared<IntraOpPool>(options.intra_threads);
  MetricsRegistry::Global()
      .gauge("session.intra_threads")
      .Set(impl->intra_pool->threads());

  // Build the first arena eagerly so plan-compilation errors surface here.
  auto arena = impl->NewArena();
  if (!arena.ok()) {
    return arena.status();
  }
  impl->free_arenas.push_back(std::move(*arena));
  impl->total_arenas = 1;

  InferenceSession session;
  session.impl_ = std::move(impl);
  return session;
}

StatusOr<std::vector<float>> InferenceSession::Run(const TensorDataMap& canonical_data) const {
  TraceSpan session_span("session.run");
  static Counter& runs = MetricsRegistry::Global().counter("session.runs");
  static Histogram& run_us = MetricsRegistry::Global().histogram("session.run_us");
  static Counter& arena_waits = MetricsRegistry::Global().counter("session.arena_waits");
  static Histogram& arena_wait_us =
      MetricsRegistry::Global().histogram("session.arena_wait_us");
  const int64_t start_ns = TraceRecorder::NowNs();
  Impl& impl = *impl_;

  // Borrow an idle arena; build a fresh one (outside the lock) while below
  // the cap, otherwise block until a returning Run frees one. The blocked
  // path is the bounded-memory trade: a burst past max_arenas queues here
  // instead of materializing an arena per caller.
  std::unique_ptr<Arena> arena;
  bool build_fresh = false;
  {
    std::unique_lock<std::mutex> lock(impl.mu);
    while (impl.free_arenas.empty() && impl.total_arenas >= impl.max_arenas) {
      arena_waits.Add();
      const int64_t wait_start_ns = TraceRecorder::NowNs();
      impl.arena_cv.wait(lock, [&impl] {
        return !impl.free_arenas.empty() || impl.total_arenas < impl.max_arenas;
      });
      arena_wait_us.Observe(static_cast<double>(TraceRecorder::NowNs() - wait_start_ns) *
                            1e-3);
    }
    if (!impl.free_arenas.empty()) {
      arena = std::move(impl.free_arenas.back());
      impl.free_arenas.pop_back();
    } else {
      // Reserve a slot under the lock so concurrent borrowers cannot
      // collectively overshoot the cap while this one builds.
      ++impl.total_arenas;
      build_fresh = true;
    }
  }
  if (build_fresh) {
    auto fresh = impl.NewArena();
    if (!fresh.ok()) {
      std::lock_guard<std::mutex> lock(impl.mu);
      --impl.total_arenas;
      impl.arena_cv.notify_one();
      return fresh.status();
    }
    arena = std::move(*fresh);
  }
  struct Release {
    Impl* impl;
    std::unique_ptr<Arena>* arena;
    ~Release() {
      {
        std::lock_guard<std::mutex> lock(impl->mu);
        impl->free_arenas.push_back(std::move(*arena));
      }
      impl->arena_cv.notify_one();
    }
  } release{&impl, &arena};

  {
    TraceSpan convert_span("session.convert");
    for (const FeedSpec& f : impl.feeds) {
      auto it = canonical_data.find(f.tensor_id);
      if (it == canonical_data.end()) {
        return Status::FailedPrecondition("missing canonical data for tensor " + f.name);
      }
      if (static_cast<int64_t>(it->second.size()) != f.plan.canonical_size) {
        return Status::FailedPrecondition("canonical data for tensor " + f.name +
                                          " mis-sized");
      }
      PhysicalizeWithPlan(f.plan, it->second.data(), arena->store.Get(f.tensor_id).data());
    }
    for (const StoreAtSpec& s : impl.store_ats) {
      auto it = canonical_data.find(s.src_id);
      if (it == canonical_data.end()) {
        return Status::FailedPrecondition("store_at source data missing");
      }
      if (it->second.size() < s.host_offsets.size()) {
        return Status::FailedPrecondition("store_at source data mis-sized");
      }
      auto& host = arena->store.Get(s.host_id);
      for (size_t i = 0; i < s.host_offsets.size(); ++i) {
        host[s.host_offsets[i]] = it->second[i];
      }
    }
  }

  for (auto& program : arena->programs) {
    TraceSpan program_span("session.program");
    ALT_RETURN_IF_ERROR(program.Run());
  }

  std::vector<float> out(impl.out_plan.canonical_size);
  {
    TraceSpan convert_span("session.convert");
    CanonicalizeWithPlan(impl.out_plan, arena->store.Get(impl.out_id).data(), out.data());
  }
  runs.Add();
  run_us.Observe(static_cast<double>(TraceRecorder::NowNs() - start_ns) * 1e-3);
  return out;
}

int ResolveBatchThreads(int requested, unsigned hardware) {
  if (requested > 0) {
    return requested;
  }
  // hardware_concurrency() is allowed to return 0 ("not computable"); a
  // ThreadPool(0) would be degenerate, so the floor is one thread.
  return std::max(1, static_cast<int>(hardware));
}

std::vector<StatusOr<std::vector<float>>> InferenceSession::RunBatchDetailed(
    const std::vector<TensorDataMap>& requests, ThreadPool& pool) const {
  std::vector<StatusOr<std::vector<float>>> results(
      requests.size(), Status::Internal("request not executed"));
  Status fanout = pool.ParallelFor(static_cast<int>(requests.size()),
                                   [&](int i) { results[i] = Run(requests[i]); });
  if (!fanout.ok()) {
    // ParallelFor only fails on an escaping exception; every index still ran,
    // so surface the failure on slots that kept the placeholder status.
    for (auto& r : results) {
      if (!r.ok() && r.status().message() == "request not executed") {
        r = fanout;
      }
    }
  }
  return results;
}

StatusOr<std::vector<std::vector<float>>> InferenceSession::RunBatch(
    const std::vector<TensorDataMap>& requests, int threads) const {
  Impl& impl = *impl_;
  std::lock_guard<std::mutex> lock(impl.batch_mu);
  const int resolved = ResolveBatchThreads(threads, std::thread::hardware_concurrency());
  // The owned pool is created once and reused across batches (the bug this
  // replaces built and tore down a ThreadPool per call); it is only rebuilt
  // when a caller asks for a different parallelism.
  if (impl.batch_pool == nullptr || impl.batch_pool->size() != resolved) {
    impl.batch_pool = std::make_unique<ThreadPool>(resolved);
  }
  auto results = RunBatchDetailed(requests, *impl.batch_pool);
  std::vector<std::vector<float>> outputs;
  outputs.reserve(results.size());
  for (auto& r : results) {
    if (!r.ok()) {
      return r.status();
    }
    outputs.push_back(std::move(*r));
  }
  return outputs;
}

int InferenceSession::output_tensor() const { return impl_->out_id; }

const std::vector<int64_t>& InferenceSession::output_shape() const {
  return impl_->graph.tensor(impl_->out_id).shape;
}

int InferenceSession::arena_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->total_arenas;
}

int InferenceSession::max_arenas() const { return impl_->max_arenas; }

StatusOr<std::vector<float>> RunLoweredNetwork(const graph::Graph& graph,
                                               const graph::LayoutAssignment& assignment,
                                               const loop::LoweredNetwork& net,
                                               const TensorDataMap& canonical_data) {
  auto session = InferenceSession::Create(graph, assignment, net);
  if (!session.ok()) {
    return session.status();
  }
  return session->Run(canonical_data);
}

StatusOr<double> ValidateAgainstReference(const graph::Graph& graph,
                                          const graph::LayoutAssignment& assignment,
                                          const ValidateOptions& options) {
  auto net = loop::LowerNetworkNaive(graph, assignment, options.enable_fusion);
  if (!net.ok()) {
    return net.status();
  }
  Rng rng(options.seed);
  TensorDataMap data;
  FillGraphInputs(graph, rng, data);
  auto lowered_out = RunLoweredNetwork(graph, assignment, *net, data);
  if (!lowered_out.ok()) {
    return lowered_out.status();
  }
  ALT_RETURN_IF_ERROR(ExecuteReference(graph, data));
  int out_id = net->groups.back().OutputTensor(graph);
  return MaxAbsDiff(*lowered_out, data[out_id]);
}

}  // namespace alt::runtime

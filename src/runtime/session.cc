#include "src/runtime/session.h"

#include <mutex>
#include <thread>
#include <utility>

#include "src/support/logging.h"
#include "src/support/metrics.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace alt::runtime {

namespace {

// One complete execution context: private buffers plus the programs prepared
// against them. Exactly one in-flight Run owns an arena at a time.
struct Arena {
  BufferStore store;
  std::vector<PreparedProgram> programs;
};

// Canonical data fed into the arena at the start of every Run.
struct FeedSpec {
  int tensor_id = -1;
  std::string name;
  ConversionPlan plan;
};

// store_at materialization (paper §4.1.2): a host tensor whose sequence is
// exactly [store_at(src, k)] carries the source's values in its appended
// slice. `host_offsets[i]` is the host physical offset of source element i.
struct StoreAtSpec {
  int host_id = -1;
  int src_id = -1;
  std::vector<int64_t> host_offsets;
};

}  // namespace

struct InferenceSession::Impl {
  graph::Graph graph;
  graph::LayoutAssignment assignment;
  loop::LoweredNetwork net;
  SessionOptions options;

  std::vector<FeedSpec> feeds;
  std::vector<StoreAtSpec> store_ats;
  int out_id = -1;
  ConversionPlan out_plan;

  // Arena pool: idle arenas, guarded by `mu`. Grows to peak concurrency.
  mutable std::mutex mu;
  mutable std::vector<std::unique_ptr<Arena>> free_arenas;
  mutable int total_arenas = 0;

  StatusOr<std::unique_ptr<Arena>> NewArena() const {
    auto arena = std::make_unique<Arena>();
    // Pre-size every feed buffer so PreparedProgram::Prepare sees correctly
    // sized inputs/constants; values are written per Run.
    for (const FeedSpec& f : feeds) {
      arena->store.Get(f.tensor_id).assign(f.plan.physical_size, 0.0f);
    }
    // Prepare in execution order: each program allocates its outputs, which
    // later programs validate as their inputs.
    for (const auto& program : net.programs) {
      auto prepared = PreparedProgram::Prepare(program, arena->store, options.exec);
      if (!prepared.ok()) {
        return prepared.status();
      }
      arena->programs.push_back(std::move(*prepared));
    }
    return arena;
  }
};

StatusOr<InferenceSession> InferenceSession::Create(const graph::Graph& graph,
                                                    const graph::LayoutAssignment& assignment,
                                                    const loop::LoweredNetwork& net,
                                                    const SessionOptions& options) {
  // An empty lowering is invalid: fail fast, before net.groups.back() below
  // would be UB.
  if (net.groups.empty()) {
    return Status::InvalidArgument("empty network");
  }
  auto impl = std::make_shared<Impl>();
  impl->graph = graph;
  impl->assignment = assignment;
  impl->net = net;
  impl->options = options;

  // Cache a conversion plan per graph input / constant (tensor order — the
  // same order the deprecated free function checked for missing data).
  for (const auto& t : graph.tensors()) {
    if (!graph.IsGraphInput(t.id) && !graph.IsConstant(t.id)) {
      continue;
    }
    auto plan = BuildConversionPlan(t.shape, assignment.Get(t.id));
    if (!plan.ok()) {
      return plan.status();
    }
    impl->feeds.push_back({t.id, t.name, std::move(*plan)});
  }

  // Precompute host offsets for store_at slices.
  for (const auto& t : graph.tensors()) {
    const layout::LayoutSeq& seq = assignment.Get(t.id);
    if (seq.size() != 1 || seq.primitives()[0].kind != layout::PrimitiveKind::kStoreAt) {
      continue;
    }
    StoreAtSpec spec;
    spec.host_id = t.id;
    spec.src_id = seq.primitives()[0].store_src_tensor;
    int dim = seq.primitives()[0].dim;
    std::vector<int64_t> phys_shape = t.shape;
    phys_shape[dim] += 1;
    auto strides = ir::RowMajorStrides(phys_shape);
    // Iterate the source domain (host canonical shape minus `dim`) in the
    // exact order of the original materialization loop.
    std::vector<int64_t> src_shape = t.shape;
    src_shape.erase(src_shape.begin() + dim);
    std::vector<int64_t> idx(src_shape.size(), 0);
    for (;;) {
      int64_t host_off = t.shape[dim] * strides[dim];
      int sd = 0;
      for (size_t d = 0; d < phys_shape.size(); ++d) {
        if (static_cast<int>(d) == dim) {
          continue;
        }
        host_off += idx[sd++] * strides[d];
      }
      spec.host_offsets.push_back(host_off);
      int d = static_cast<int>(idx.size()) - 1;
      while (d >= 0 && ++idx[d] == src_shape[d]) {
        idx[d--] = 0;
      }
      if (d < 0) {
        break;
      }
    }
    impl->store_ats.push_back(std::move(spec));
  }

  impl->out_id = net.groups.back().OutputTensor(graph);
  const auto& out_tensor = graph.tensor(impl->out_id);
  auto out_plan = BuildConversionPlan(out_tensor.shape, assignment.Get(impl->out_id));
  if (!out_plan.ok()) {
    return out_plan.status();
  }
  impl->out_plan = std::move(*out_plan);

  // Build the first arena eagerly so plan-compilation errors surface here.
  auto arena = impl->NewArena();
  if (!arena.ok()) {
    return arena.status();
  }
  impl->free_arenas.push_back(std::move(*arena));
  impl->total_arenas = 1;

  InferenceSession session;
  session.impl_ = std::move(impl);
  return session;
}

StatusOr<std::vector<float>> InferenceSession::Run(const TensorDataMap& canonical_data) const {
  TraceSpan session_span("session.run");
  static Counter& runs = MetricsRegistry::Global().counter("session.runs");
  static Histogram& run_us = MetricsRegistry::Global().histogram("session.run_us");
  const int64_t start_ns = TraceRecorder::NowNs();
  Impl& impl = *impl_;

  // Borrow an idle arena; build a fresh one (outside the lock) when every
  // existing arena is serving another caller.
  std::unique_ptr<Arena> arena;
  {
    std::lock_guard<std::mutex> lock(impl.mu);
    if (!impl.free_arenas.empty()) {
      arena = std::move(impl.free_arenas.back());
      impl.free_arenas.pop_back();
    }
  }
  if (arena == nullptr) {
    auto fresh = impl.NewArena();
    if (!fresh.ok()) {
      return fresh.status();
    }
    arena = std::move(*fresh);
    std::lock_guard<std::mutex> lock(impl.mu);
    ++impl.total_arenas;
  }
  struct Release {
    Impl* impl;
    std::unique_ptr<Arena>* arena;
    ~Release() {
      std::lock_guard<std::mutex> lock(impl->mu);
      impl->free_arenas.push_back(std::move(*arena));
    }
  } release{&impl, &arena};

  {
    TraceSpan convert_span("session.convert");
    for (const FeedSpec& f : impl.feeds) {
      auto it = canonical_data.find(f.tensor_id);
      if (it == canonical_data.end()) {
        return Status::FailedPrecondition("missing canonical data for tensor " + f.name);
      }
      if (static_cast<int64_t>(it->second.size()) != f.plan.canonical_size) {
        return Status::FailedPrecondition("canonical data for tensor " + f.name +
                                          " mis-sized");
      }
      PhysicalizeWithPlan(f.plan, it->second.data(), arena->store.Get(f.tensor_id).data());
    }
    for (const StoreAtSpec& s : impl.store_ats) {
      auto it = canonical_data.find(s.src_id);
      if (it == canonical_data.end()) {
        return Status::FailedPrecondition("store_at source data missing");
      }
      if (it->second.size() < s.host_offsets.size()) {
        return Status::FailedPrecondition("store_at source data mis-sized");
      }
      auto& host = arena->store.Get(s.host_id);
      for (size_t i = 0; i < s.host_offsets.size(); ++i) {
        host[s.host_offsets[i]] = it->second[i];
      }
    }
  }

  for (auto& program : arena->programs) {
    TraceSpan program_span("session.program");
    ALT_RETURN_IF_ERROR(program.Run());
  }

  std::vector<float> out(impl.out_plan.canonical_size);
  {
    TraceSpan convert_span("session.convert");
    CanonicalizeWithPlan(impl.out_plan, arena->store.Get(impl.out_id).data(), out.data());
  }
  runs.Add();
  run_us.Observe(static_cast<double>(TraceRecorder::NowNs() - start_ns) * 1e-3);
  return out;
}

StatusOr<std::vector<std::vector<float>>> InferenceSession::RunBatch(
    const std::vector<TensorDataMap>& requests, int threads) const {
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  std::vector<std::vector<float>> outputs(requests.size());
  std::vector<Status> statuses(requests.size(), Status::Ok());
  ThreadPool pool(threads);
  ALT_RETURN_IF_ERROR(pool.ParallelFor(static_cast<int>(requests.size()), [&](int i) {
    auto out = Run(requests[i]);
    if (out.ok()) {
      outputs[i] = std::move(*out);
    } else {
      statuses[i] = out.status();
    }
  }));
  for (const Status& s : statuses) {
    if (!s.ok()) {
      return s;
    }
  }
  return outputs;
}

int InferenceSession::output_tensor() const { return impl_->out_id; }

const std::vector<int64_t>& InferenceSession::output_shape() const {
  return impl_->graph.tensor(impl_->out_id).shape;
}

int InferenceSession::arena_count() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->total_arenas;
}

StatusOr<std::vector<float>> RunLoweredNetwork(const graph::Graph& graph,
                                               const graph::LayoutAssignment& assignment,
                                               const loop::LoweredNetwork& net,
                                               const TensorDataMap& canonical_data) {
  auto session = InferenceSession::Create(graph, assignment, net);
  if (!session.ok()) {
    return session.status();
  }
  return session->Run(canonical_data);
}

StatusOr<double> ValidateAgainstReference(const graph::Graph& graph,
                                          const graph::LayoutAssignment& assignment,
                                          const ValidateOptions& options) {
  auto net = loop::LowerNetworkNaive(graph, assignment, options.enable_fusion);
  if (!net.ok()) {
    return net.status();
  }
  Rng rng(options.seed);
  TensorDataMap data;
  FillGraphInputs(graph, rng, data);
  auto lowered_out = RunLoweredNetwork(graph, assignment, *net, data);
  if (!lowered_out.ok()) {
    return lowered_out.status();
  }
  ALT_RETURN_IF_ERROR(ExecuteReference(graph, data));
  int out_id = net->groups.back().OutputTensor(graph);
  return MaxAbsDiff(*lowered_out, data[out_id]);
}

}  // namespace alt::runtime

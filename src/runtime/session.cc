#include "src/runtime/session.h"

#include "src/support/logging.h"
#include "src/support/trace.h"

namespace alt::runtime {

StatusOr<std::vector<float>> RunLoweredNetwork(const graph::Graph& graph,
                                               const graph::LayoutAssignment& assignment,
                                               const loop::LoweredNetwork& net,
                                               const TensorDataMap& canonical_data) {
  TraceSpan session_span("session.run");
  // An empty lowering is invalid: fail fast, before physicalizing inputs and
  // executing programs (and before net.groups.back() below would be UB).
  if (net.groups.empty()) {
    return Status::InvalidArgument("empty network");
  }
  BufferStore store;
  // Physicalize graph inputs and constants.
  for (const auto& t : graph.tensors()) {
    if (!graph.IsGraphInput(t.id) && !graph.IsConstant(t.id)) {
      continue;
    }
    auto it = canonical_data.find(t.id);
    if (it == canonical_data.end()) {
      return Status::FailedPrecondition("missing canonical data for tensor " + t.name);
    }
    auto phys = Physicalize(it->second, t.shape, assignment.Get(t.id));
    if (!phys.ok()) {
      return phys.status();
    }
    store.Get(t.id) = std::move(*phys);
  }
  // Materialize store_at slices: a host tensor whose sequence is exactly
  // [store_at(src, k)] carries the source's values in its appended slice
  // (paper §4.1.2: e.g. a bias vector attached to a weight matrix).
  for (const auto& t : graph.tensors()) {
    const layout::LayoutSeq& seq = assignment.Get(t.id);
    if (seq.size() != 1 || seq.primitives()[0].kind != layout::PrimitiveKind::kStoreAt) {
      continue;
    }
    int src_id = seq.primitives()[0].store_src_tensor;
    int dim = seq.primitives()[0].dim;
    auto src_it = canonical_data.find(src_id);
    if (src_it == canonical_data.end()) {
      return Status::FailedPrecondition("store_at source data missing");
    }
    auto& host = store.Get(t.id);
    std::vector<int64_t> phys_shape = t.shape;
    phys_shape[dim] += 1;
    auto strides = ir::RowMajorStrides(phys_shape);
    // Iterate the source domain (host canonical shape minus `dim`).
    std::vector<int64_t> src_shape = t.shape;
    src_shape.erase(src_shape.begin() + dim);
    std::vector<int64_t> idx(src_shape.size(), 0);
    int64_t off = 0;
    for (;;) {
      int64_t host_off = t.shape[dim] * strides[dim];
      int sd = 0;
      for (size_t d = 0; d < phys_shape.size(); ++d) {
        if (static_cast<int>(d) == dim) {
          continue;
        }
        host_off += idx[sd++] * strides[d];
      }
      host[host_off] = src_it->second[off++];
      int d = static_cast<int>(idx.size()) - 1;
      while (d >= 0 && ++idx[d] == src_shape[d]) {
        idx[d--] = 0;
      }
      if (d < 0) {
        break;
      }
    }
  }
  for (const auto& program : net.programs) {
    TraceSpan program_span("session.program");
    ALT_RETURN_IF_ERROR(Execute(program, store));
  }
  int out_id = net.groups.back().OutputTensor(graph);
  const auto& t = graph.tensor(out_id);
  return Canonicalize(store.Get(out_id), t.shape, assignment.Get(out_id));
}

StatusOr<double> ValidateAgainstReference(const graph::Graph& graph,
                                          const graph::LayoutAssignment& assignment,
                                          uint64_t seed, bool enable_fusion) {
  auto net = loop::LowerNetworkNaive(graph, assignment, enable_fusion);
  if (!net.ok()) {
    return net.status();
  }
  Rng rng(seed);
  TensorDataMap data;
  FillGraphInputs(graph, rng, data);
  auto lowered_out = RunLoweredNetwork(graph, assignment, *net, data);
  if (!lowered_out.ok()) {
    return lowered_out.status();
  }
  ALT_RETURN_IF_ERROR(ExecuteReference(graph, data));
  int out_id = net->groups.back().OutputTensor(graph);
  return MaxAbsDiff(*lowered_out, data[out_id]);
}

}  // namespace alt::runtime

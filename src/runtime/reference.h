// Canonical reference execution of computational graphs.
//
// Every operator is implemented directly with plain nested loops over
// canonical layouts, completely independent of the IR / lowering / layout
// machinery, so that lowered-and-transformed programs can be validated
// end-to-end against straightforward ground truth.

#ifndef ALT_RUNTIME_REFERENCE_H_
#define ALT_RUNTIME_REFERENCE_H_

#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"
#include "src/layout/primitive.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace alt::runtime {

using TensorDataMap = std::unordered_map<int, std::vector<float>>;

// Fills canonical buffers for all graph inputs and constants with
// deterministic pseudo-random values in [-1, 1].
void FillGraphInputs(const graph::Graph& graph, Rng& rng, TensorDataMap& data);

// Runs every op in topological order on canonical-layout buffers.
Status ExecuteReference(const graph::Graph& graph, TensorDataMap& data);

// Precompiled canonical<->physical index map for one (shape, primitive
// sequence) pair. Building it walks the physical domain once through the
// sequence's compiled MapInverse exprs — the expensive part of layout
// conversion — so a serving session can pay that cost at construction and
// reduce every later conversion to a gather/scatter over `src`.
struct ConversionPlan {
  bool identity = false;   // empty sequence: conversion is a plain copy
  int64_t canonical_size = 0;
  int64_t physical_size = 0;
  // Per physical offset (row-major), the canonical offset it mirrors, or -1
  // for zero-filled elements (padding / unfold overhang).
  std::vector<int64_t> src;
};

StatusOr<ConversionPlan> BuildConversionPlan(const std::vector<int64_t>& canonical_shape,
                                             const layout::LayoutSeq& seq);

// Applies a plan. Both directions preserve the exact element order of the
// one-shot Physicalize/Canonicalize below (which are now thin wrappers), so
// planned and unplanned conversions are bit-identical. Buffers must match
// the plan's sizes; `physical` is fully written, `canonical` is zero-filled
// before the scatter (duplicated elements overwrite in physical order).
void PhysicalizeWithPlan(const ConversionPlan& plan, const float* canonical, float* physical);
void CanonicalizeWithPlan(const ConversionPlan& plan, const float* physical, float* canonical);

// Converts a canonical buffer into its physical layout (applying a primitive
// sequence): iterates the physical domain, maps back through MapInverse, and
// copies (duplicating under unfold, zero-filling padding/overhang).
StatusOr<std::vector<float>> Physicalize(const std::vector<float>& canonical,
                                         const std::vector<int64_t>& canonical_shape,
                                         const layout::LayoutSeq& seq);

// Recovers the canonical buffer from a physical one (inverse of Physicalize;
// duplicated elements are written repeatedly with identical values).
StatusOr<std::vector<float>> Canonicalize(const std::vector<float>& physical,
                                          const std::vector<int64_t>& canonical_shape,
                                          const layout::LayoutSeq& seq);

// Max |a-b| over two equal-sized buffers.
double MaxAbsDiff(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace alt::runtime

#endif  // ALT_RUNTIME_REFERENCE_H_

// Canonical reference execution of computational graphs.
//
// Every operator is implemented directly with plain nested loops over
// canonical layouts, completely independent of the IR / lowering / layout
// machinery, so that lowered-and-transformed programs can be validated
// end-to-end against straightforward ground truth.

#ifndef ALT_RUNTIME_REFERENCE_H_
#define ALT_RUNTIME_REFERENCE_H_

#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"
#include "src/layout/primitive.h"
#include "src/support/rng.h"
#include "src/support/status.h"

namespace alt::runtime {

using TensorDataMap = std::unordered_map<int, std::vector<float>>;

// Fills canonical buffers for all graph inputs and constants with
// deterministic pseudo-random values in [-1, 1].
void FillGraphInputs(const graph::Graph& graph, Rng& rng, TensorDataMap& data);

// Runs every op in topological order on canonical-layout buffers.
Status ExecuteReference(const graph::Graph& graph, TensorDataMap& data);

// Converts a canonical buffer into its physical layout (applying a primitive
// sequence): iterates the physical domain, maps back through MapInverse, and
// copies (duplicating under unfold, zero-filling padding/overhang).
StatusOr<std::vector<float>> Physicalize(const std::vector<float>& canonical,
                                         const std::vector<int64_t>& canonical_shape,
                                         const layout::LayoutSeq& seq);

// Recovers the canonical buffer from a physical one (inverse of Physicalize;
// duplicated elements are written repeatedly with identical values).
StatusOr<std::vector<float>> Canonicalize(const std::vector<float>& physical,
                                          const std::vector<int64_t>& canonical_shape,
                                          const layout::LayoutSeq& seq);

// Max |a-b| over two equal-sized buffers.
double MaxAbsDiff(const std::vector<float>& a, const std::vector<float>& b);

}  // namespace alt::runtime

#endif  // ALT_RUNTIME_REFERENCE_H_

// Figure 1 (paper §2): C2D latency under NOHW / NHWO / HWON layouts and GMM
// latency under KN / NK / NKn layouts, each loop-tuned independently, on the
// Intel-CPU and NVIDIA-GPU machine profiles. The claim to reproduce: the best
// layout depends on the operator configuration and platform, and picking it
// well yields large average gains (paper: 55.9% / 87.2% for C2D, 20.6% /
// 24.8% for GMM).

#include <cmath>

#include "bench/harness.h"
#include "src/autotune/layout_templates.h"

namespace alt {

using graph::ConvConfig;
using graph::Graph;
using graph::LayoutAssignment;

double LoopTuneFixedLayout(const Graph& g, const LayoutAssignment& la,
                           const sim::Machine& machine, int budget, uint64_t seed) {
  autotune::TuningOptions options;
  options.tune_layout = false;
  options.initial_assignment = &la;
  options.total_budget = budget;
  options.seed = seed;
  autotune::JointTuner tuner(g, machine, options);
  auto result = tuner.Tune();
  if (!result.ok()) {
    std::fprintf(stderr, "  tuning failed: %s\n", result.status().ToString().c_str());
    return -1.0;
  }
  return result->perf.latency_us;
}

struct C2dCase {
  ConvConfig cfg;
  std::string name;
};

std::vector<C2dCase> C2dConfigs() {
  // Sampled from widely-used settings (ResNet / MobileNet / VGG shapes).
  std::vector<C2dCase> cases;
  auto add = [&](int64_t c, int64_t o, int64_t hw, int64_t k, int64_t s) {
    ConvConfig cfg;
    cfg.batch = 1;
    cfg.in_channels = c;
    cfg.out_channels = o;
    cfg.spatial[0] = cfg.spatial[1] = hw;
    cfg.kernel[0] = cfg.kernel[1] = k;
    cfg.stride = s;
    cfg.pad = 0;
    char buf[64];
    std::snprintf(buf, sizeof(buf), "C%ldxO%ldx%ld k%ld s%ld", c, o, hw, k, s);
    cases.push_back({cfg, buf});
  };
  add(3, 64, 112, 7, 2);
  add(16, 64, 56, 3, 1);
  add(64, 64, 56, 3, 1);
  add(64, 128, 28, 3, 2);
  add(128, 128, 28, 3, 1);
  add(256, 256, 14, 3, 1);
  add(512, 512, 7, 3, 1);
  add(32, 64, 56, 1, 1);
  return cases;
}

void RunC2d(const sim::Machine& machine) {
  bench::PrintHeader("Fig. 1 " + std::string(machine.gpu_like ? "(b)" : "(a)") +
                     ": C2D latency by layout on " + machine.name);
  std::vector<double> best_gain;
  for (const auto& c2d : C2dConfigs()) {
    Graph g = graph::BuildSingleConv(graph::OpKind::kConv2d, c2d.cfg);
    int conv_out = g.op(0).output;
    int data = g.op(0).inputs[0];

    std::vector<bench::MethodResult> row;
    for (const char* layout : {"NOHW", "NHWO", "HWON"}) {
      LayoutAssignment la;
      if (std::string(layout) == "NHWO") {
        la.Set(conv_out, autotune::ChannelsLast(2));
        la.Set(data, autotune::ChannelsLast(2));
      } else if (std::string(layout) == "HWON") {
        la.Set(conv_out, autotune::Hwon());
        la.Set(data, autotune::Hwon());
      }
      bench::MethodResult r;
      r.name = layout;
      r.latency_us = LoopTuneFixedLayout(g, la, machine, 60, 7);
      row.push_back(r);
    }
    bench::PrintRow(c2d.name, row);
    double worst = 0, best = 1e30;
    for (const auto& r : row) {
      if (r.latency_us > 0) {
        worst = std::max(worst, r.latency_us);
        best = std::min(best, r.latency_us);
      }
    }
    if (best < 1e30) {
      best_gain.push_back(worst / best - 1.0);
    }
  }
  double mean = 0;
  for (double v : best_gain) {
    mean += v;
  }
  std::printf("-> average best-vs-worst layout gain: %.1f%% (paper: %.1f%%)\n",
              100.0 * mean / best_gain.size(), machine.gpu_like ? 87.2 : 55.9);
}

void RunGmm(const sim::Machine& machine) {
  bench::PrintHeader("Fig. 1 " + std::string(machine.gpu_like ? "(d)" : "(c)") +
                     ": GMM latency by layout on " + machine.name);
  struct GmmCase {
    int64_t m, k, n;
  };
  std::vector<GmmCase> cases = {{128, 128, 128},   {256, 256, 256},  {512, 512, 512},
                                {1024, 1024, 1024}, {128, 768, 768},  {128, 768, 3072},
                                {512, 64, 512},     {2048, 2048, 2048}};
  for (const auto& gc : cases) {
    Graph g = graph::BuildSingleMatmul(gc.m, gc.k, gc.n);
    const graph::Op& op = g.op(0);
    std::vector<bench::MethodResult> row;
    for (const char* layout : {"KN", "NK", "NKn"}) {
      LayoutAssignment la;
      if (std::string(layout) == "NK") {
        la.Set(op.inputs[1], autotune::TransposedB());
      } else if (std::string(layout) == "NKn") {
        autotune::GmmLayoutParams params;
        params.mt = std::min<int64_t>(16, gc.m);
        params.nt = std::min<int64_t>(16, gc.n);
        params.kt = gc.k;  // paper NKn tiles M and N with 16, K untouched
        auto layouts = autotune::MakeGmmTemplates(g, op, params);
        if (layouts.ok()) {
          la.Set(op.output, layouts->c);
          la.Set(op.inputs[0], layouts->a);
          la.Set(op.inputs[1], layouts->b);
        }
      }
      bench::MethodResult r;
      r.name = layout;
      r.latency_us = LoopTuneFixedLayout(g, la, machine, 60, 11);
      row.push_back(r);
    }
    char name[64];
    std::snprintf(name, sizeof(name), "%ldx%ldx%ld", gc.m, gc.k, gc.n);
    bench::PrintRow(name, row);
  }
}

}  // namespace alt

int main() {
  alt::RunC2d(alt::sim::Machine::IntelCpu());
  alt::RunC2d(alt::sim::Machine::NvidiaGpu());
  alt::RunGmm(alt::sim::Machine::IntelCpu());
  alt::RunGmm(alt::sim::Machine::NvidiaGpu());
  return 0;
}

// Figure 12 (paper §7.3.2): layout propagation overhead on two subgraphs
// (padding → C2D 3x3 → C2D 1x1) comparing Ansor, ALT-FP (forward-propagate
// the first conv's output layout into the second), ALT-BP (backward: force
// the first conv's output to the second's preferred input layout), and ALT
// (tune both independently, inserting a conversion operator).
//
// Claims to reproduce: ALT beats ALT-FP and ALT-BP (independent per-op
// layouts win), and the conversion operator's cost is small relative to the
// convs.

#include <cstdio>

#include "bench/harness.h"

namespace alt {

struct Fig12Result {
  double total_us = -1.0;
  double conversion_us = 0.0;
};

Fig12Result RunVariant(const std::string& name, const graph::Graph& g,
                       const sim::Machine& machine, int budget) {
  Fig12Result out;
  StatusOr<autotune::CompiledNetwork> compiled = Status::Ok();
  if (name == "Ansor") {
    compiled = baselines::RunBaseline(baselines::BaselineKind::kAnsor, g, machine, budget, 5);
  } else {
    autotune::TuningOptions options;
    options.total_budget = budget;
    options.seed = 5;
    options.method = autotune::SearchMethod::kPpoPretrained;
    options.pretrained_agent = &core::SharedPretrainedAgent(machine);
    if (name == "ALT-FP") {
      options.input_policy = autotune::InputLayoutPolicy::kInheritProducer;
    } else if (name == "ALT-BP") {
      options.input_policy = autotune::InputLayoutPolicy::kForceProducer;
      options.reverse_op_order = true;
    }
    autotune::JointTuner tuner(g, machine, options);
    compiled = tuner.Tune();
  }
  if (!compiled.ok()) {
    std::fprintf(stderr, "  [%s] FAILED: %s\n", name.c_str(),
                 compiled.status().ToString().c_str());
    return out;
  }
  out.total_us = compiled->perf.latency_us;
  for (size_t i = 0; i < compiled->groups.size(); ++i) {
    const auto& anchor = compiled->graph.op(compiled->groups[i].anchor_op);
    if (anchor.kind == graph::OpKind::kLayoutConvert) {
      out.conversion_us += sim::EstimateProgram(compiled->programs[i], machine).latency_us;
    }
  }
  return out;
}

void RunSubgraph(int index, const sim::Machine& machine) {
  graph::Graph g = graph::BuildFig12Subgraph(index);
  char title[128];
  std::snprintf(title, sizeof(title), "Fig. 12: subgraph#%d on %s", index,
                machine.name.c_str());
  bench::PrintHeader(title);
  const int kBudget = 160;
  double alt_total = -1, fp_total = -1, bp_total = -1;
  for (const char* name : {"Ansor", "ALT-FP", "ALT-BP", "ALT"}) {
    Fig12Result r = RunVariant(name, g, machine, kBudget);
    std::printf("%-8s total %9.1f us", name, r.total_us);
    if (std::string(name) == "ALT") {
      std::printf("   (conversion op: %.1f us)", r.conversion_us);
      alt_total = r.total_us;
    }
    if (std::string(name) == "ALT-FP") {
      fp_total = r.total_us;
    }
    if (std::string(name) == "ALT-BP") {
      bp_total = r.total_us;
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("-> ALT (independent + conversion) vs FP/BP: %s / %s\n",
              (alt_total > 0 && fp_total > 0 && alt_total <= fp_total * 1.05) ? "wins" : "loses",
              (alt_total > 0 && bp_total > 0 && alt_total <= bp_total * 1.05) ? "wins" : "loses");
}

}  // namespace alt

int main() {
  alt::RunSubgraph(1, alt::sim::Machine::IntelCpu());
  alt::RunSubgraph(2, alt::sim::Machine::IntelCpu());
  alt::RunSubgraph(1, alt::sim::Machine::NvidiaGpu());
  alt::RunSubgraph(2, alt::sim::Machine::NvidiaGpu());
  return 0;
}

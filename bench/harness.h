// Shared helpers for the per-figure/table benchmark binaries.
//
// Budgets are scaled down from the paper (which spends 1,000 measurements per
// single operator and 20,000 per network on real hardware) because our
// measurement device is a simulator estimate; the joint/loop budget RATIO
// follows the paper (30% joint stage / 70% loop-only stage).

#ifndef ALT_BENCH_HARNESS_H_
#define ALT_BENCH_HARNESS_H_

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/baselines/baselines.h"
#include "src/core/alt.h"
#include "src/graph/networks.h"
#include "src/support/fileio.h"
#include "src/support/logging.h"

namespace alt::bench {

// Order statistics over repeated samples (exact nearest-rank percentiles —
// unlike the bucketed MetricsRegistry histograms, bench sample counts are
// tiny, so sorting is free and exact).
struct SampleStats {
  int n = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double min = 0.0;
  double max = 0.0;
};

inline SampleStats Summarize(std::vector<double> samples) {
  SampleStats s;
  s.n = static_cast<int>(samples.size());
  if (s.n == 0) {
    return s;
  }
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (double v : samples) {
    sum += v;
  }
  s.mean = sum / s.n;
  s.min = samples.front();
  s.max = samples.back();
  auto rank = [&](double p) {
    int idx = static_cast<int>(std::ceil(p / 100.0 * s.n)) - 1;
    return samples[std::min(std::max(idx, 0), s.n - 1)];
  };
  s.p50 = rank(50);
  s.p95 = rank(95);
  return s;
}

// Directory for per-run telemetry artifacts, from ALT_TRACE_DIR ("" = off).
// When set, every ALT-variant RunMethod writes <net>_<method>_trace.json
// (Chrome trace-event format) and <net>_<method>_metrics.json there.
inline std::string TraceDir() {
  const char* dir = std::getenv("ALT_TRACE_DIR");
  return dir != nullptr ? dir : "";
}

inline std::string SanitizeTag(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (!std::isalnum(static_cast<unsigned char>(c))) {
      c = '_';
    }
  }
  return out;
}

struct MethodResult {
  std::string name;
  double latency_us = 0.0;
  int measurements = 0;
};

inline MethodResult RunMethod(const std::string& name, const graph::Graph& g,
                              const sim::Machine& machine, int budget, uint64_t seed) {
  MethodResult result;
  result.name = name;
  StatusOr<autotune::CompiledNetwork> compiled = Status::Ok();
  if (name == "Vendor") {
    compiled = baselines::RunBaseline(baselines::BaselineKind::kVendor, g, machine, 0, seed);
  } else if (name == "AutoTVM") {
    compiled = baselines::RunBaseline(baselines::BaselineKind::kAutoTvm, g, machine, budget,
                                      seed);
  } else if (name == "FlexTensor") {
    compiled = baselines::RunBaseline(baselines::BaselineKind::kFlexTensor, g, machine,
                                      budget, seed);
  } else if (name == "Ansor") {
    compiled = baselines::RunBaseline(baselines::BaselineKind::kAnsor, g, machine, budget,
                                      seed);
  } else {
    core::AltOptions options;
    options.budget = budget;
    options.seed = seed;
    options.method = autotune::SearchMethod::kPpoPretrained;
    if (name == "ALT-OL") {
      options.variant = core::AltVariant::kLoopOnly;
    } else if (name == "ALT-WP") {
      options.variant = core::AltVariant::kWithoutPropagation;
    }
    const std::string trace_dir = TraceDir();
    const std::string tag = SanitizeTag(g.name() + "_" + name);
    if (!trace_dir.empty()) {
      options.trace.path = trace_dir + "/" + tag + "_trace.json";
    }
    compiled = core::Compile(g, machine, options);
    if (!trace_dir.empty() && compiled.ok()) {
      Status ws = WriteFile(trace_dir + "/" + tag + "_metrics.json",
                            compiled->metrics.ToJson());
      if (!ws.ok()) {
        std::fprintf(stderr, "  [%s] metrics snapshot not written: %s\n", name.c_str(),
                     ws.ToString().c_str());
      }
    }
  }
  if (!compiled.ok()) {
    std::fprintf(stderr, "  [%s] FAILED: %s\n", name.c_str(),
                 compiled.status().ToString().c_str());
    result.latency_us = -1.0;
    return result;
  }
  result.latency_us = compiled->perf.latency_us;
  result.measurements = compiled->measurements_used;
  return result;
}

// Prints one row: workload name, per-method latency (ms) and normalized
// performance (best = 1.00).
inline void PrintRow(const std::string& workload, const std::vector<MethodResult>& results) {
  double best = 1e30;
  for (const auto& r : results) {
    if (r.latency_us > 0) {
      best = std::min(best, r.latency_us);
    }
  }
  std::printf("%-14s", workload.c_str());
  for (const auto& r : results) {
    if (r.latency_us <= 0) {
      std::printf(" | %-9s n/a      ", r.name.c_str());
    } else {
      std::printf(" | %-9s %8.3fms (%.2f)", r.name.c_str(), r.latency_us / 1e3,
                  best / r.latency_us);
    }
  }
  std::printf("\n");
  std::fflush(stdout);
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
  std::fflush(stdout);
}

// Geometric-mean speedup of `method` over `baseline` across rows.
inline double GeoMeanSpeedup(const std::vector<std::vector<MethodResult>>& rows,
                             const std::string& method, const std::string& baseline) {
  double log_sum = 0.0;
  int n = 0;
  for (const auto& row : rows) {
    double m = -1, b = -1;
    for (const auto& r : row) {
      if (r.name == method) {
        m = r.latency_us;
      }
      if (r.name == baseline) {
        b = r.latency_us;
      }
    }
    if (m > 0 && b > 0) {
      log_sum += std::log(b / m);
      ++n;
    }
  }
  return n > 0 ? std::exp(log_sum / n) : 0.0;
}

}  // namespace alt::bench

#endif  // ALT_BENCH_HARNESS_H_

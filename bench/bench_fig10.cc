// Figure 10 (paper §7.2): end-to-end inference performance of ResNet-18,
// MobileNet-V2, BERT (base/tiny) and ResNet3D-18 under the vendor compiler
// stand-in, AutoTVM, Ansor, ALT, ALT-OL (loop-only) and ALT-WP (no multi-hop
// propagation), on the three machine profiles.
//
// Claims to reproduce: ALT beats Ansor on average (~1.4x); ALT-OL ~ Ansor;
// ALT-WP sits between ALT-OL and ALT (propagation enables fusion wins).

#include "bench/harness.h"

namespace alt {

struct NetCase {
  std::string name;
  graph::Graph g;
};

void RunMachine(const sim::Machine& machine, const std::vector<NetCase>& nets) {
  bench::PrintHeader("Fig. 10: end-to-end inference on " + machine.name);
  const std::vector<std::string> methods = {"Vendor", "AutoTVM", "Ansor",
                                            "ALT",    "ALT-OL",  "ALT-WP"};
  const int kBudget = 1000;  // paper: 20,000 on-device measurements

  std::vector<std::vector<bench::MethodResult>> rows;
  for (const auto& net : nets) {
    std::vector<bench::MethodResult> row;
    for (const auto& m : methods) {
      row.push_back(bench::RunMethod(m, net.g, machine, kBudget, 17));
    }
    bench::PrintRow(net.name, row);
    rows.push_back(row);
  }
  std::printf("\ngeomean speedups of ALT: vs Vendor %.2fx, vs AutoTVM %.2fx, vs Ansor %.2fx,"
              "\n                         vs ALT-OL %.2fx, vs ALT-WP %.2fx\n",
              bench::GeoMeanSpeedup(rows, "ALT", "Vendor"),
              bench::GeoMeanSpeedup(rows, "ALT", "AutoTVM"),
              bench::GeoMeanSpeedup(rows, "ALT", "Ansor"),
              bench::GeoMeanSpeedup(rows, "ALT", "ALT-OL"),
              bench::GeoMeanSpeedup(rows, "ALT", "ALT-WP"));
  std::printf("(paper: ~1.4x vs Ansor across platforms; ALT-OL ~ Ansor; ALT ~1.3x vs ALT-WP)\n");
}

}  // namespace alt

int main() {
  using alt::NetCase;
  namespace g = alt::graph;

  {
    std::vector<NetCase> nets;
    nets.push_back({"R18-b1", g::BuildResNet18(1)});
    nets.push_back({"R18-b16", g::BuildResNet18(16)});
    nets.push_back({"MV2-b1", g::BuildMobileNetV2(1)});
    nets.push_back({"BB-b1", g::BuildBert(1, 768, 12)});
    nets.push_back({"R3D-b1", g::BuildResNet3d18(1)});
    alt::RunMachine(alt::sim::Machine::IntelCpu(), nets);
  }
  {
    std::vector<NetCase> nets;
    nets.push_back({"R18-b1", g::BuildResNet18(1)});
    nets.push_back({"R18-b16", g::BuildResNet18(16)});
    nets.push_back({"MV2-b1", g::BuildMobileNetV2(1)});
    nets.push_back({"BB-b1", g::BuildBert(1, 768, 12)});
    nets.push_back({"R3D-b1", g::BuildResNet3d18(1)});
    alt::RunMachine(alt::sim::Machine::NvidiaGpu(), nets);
  }
  {
    std::vector<NetCase> nets;
    nets.push_back({"R18-b1", g::BuildResNet18(1)});
    nets.push_back({"MV2-b1", g::BuildMobileNetV2(1)});
    nets.push_back({"BT-b1", g::BuildBert(1, 128, 2)});
    nets.push_back({"R3D-b1", g::BuildResNet3d18(1)});
    alt::RunMachine(alt::sim::Machine::ArmCpu(), nets);
  }
  return 0;
}

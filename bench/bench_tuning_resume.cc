// Tuning-journal overhead and resume economics.
//
//   ./build/bench/bench_tuning_resume
//
// Three questions, answered on the same fixed-seed workload:
//
//   1. OVERHEAD — how much wall-clock does journaling every fresh measurement
//      add to a tuning run? (Target: < 2%. The journal appends one short
//      CRC-framed line per measurement through a buffered FILE* with a
//      per-line flush; measurement itself lowers a whole fused group and runs
//      the analytic cost model, so the journal should be noise.)
//   2. RESUME SPEED — how fast is re-running the tuner with every measurement
//      answered from the replay log instead of executed?
//   3. DETERMINISM — the resumed run must land on the identical tuned
//      network (latency, budget spend, tuning curve length). Exits non-zero
//      if it does not; the CI resume test covers this with finer assertions,
//      the bench guards the full-size workload.

#include <chrono>
#include <cstdio>

#include "bench/harness.h"
#include "src/core/tuning_journal.h"
#include "src/support/fileio.h"

namespace alt {

namespace {

// Minimum over reps: the run least disturbed by scheduler noise, the usual
// estimator when comparing two deterministic computations.
double MinOf(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

core::AltOptions BenchOptions() {
  core::AltOptions options;
  options.budget = 300;
  options.seed = 11;
  options.method = autotune::SearchMethod::kPpoPretrained;
  return options;
}

template <typename Fn>
double TimeMs(const Fn& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int Main() {
  bench::PrintHeader("Tuning journal: overhead of journaling and speed of resume");

  graph::Graph g = graph::BuildResNetFirstLayer(1);
  const auto& machine = sim::Machine::IntelCpu();
  core::AltOptions options = BenchOptions();
  const std::string path = "/tmp/alt_bench_tuning_resume.altj";
  std::printf("workload: %s on %s, budget %d\n\n", g.name().c_str(), machine.name.c_str(),
              options.budget);

  const int kReps = 5;
  std::vector<double> plain_ms, journal_ms, resume_ms;
  StatusOr<autotune::CompiledNetwork> plain = Status::Ok();
  StatusOr<autotune::CompiledNetwork> journaled = Status::Ok();
  StatusOr<autotune::CompiledNetwork> resumed = Status::Ok();
  for (int rep = 0; rep < kReps; ++rep) {
    plain_ms.push_back(TimeMs([&] { plain = core::Compile(g, machine, options); }));
    RemoveFile(path);
    journal_ms.push_back(
        TimeMs([&] { journaled = core::CompileWithJournal(g, machine, options, path); }));
    // The journal is now complete: a resume replays everything and measures
    // nothing new.
    resume_ms.push_back(
        TimeMs([&] { resumed = core::ResumeFromJournal(g, machine, options, path); }));
  }
  if (!plain.ok() || !journaled.ok() || !resumed.ok()) {
    std::fprintf(stderr, "tuning failed: %s\n",
                 (!plain.ok()    ? plain.status()
                  : !journaled.ok() ? journaled.status()
                                    : resumed.status())
                     .ToString()
                     .c_str());
    return 1;
  }

  const double plain_med = MinOf(plain_ms);
  const double journal_med = MinOf(journal_ms);
  const double resume_med = MinOf(resume_ms);
  const double overhead_pct = (journal_med / plain_med - 1.0) * 100.0;

  std::printf("%-22s %10s %12s %10s %10s\n", "mode", "wall_ms", "tuned_us", "measured",
              "replayed");
  std::printf("%-22s %10.1f %12.1f %10lld %10lld\n", "plain", plain_med,
              plain->perf.latency_us, static_cast<long long>(plain->measure_stats.measured),
              static_cast<long long>(plain->measure_stats.replayed));
  std::printf("%-22s %10.1f %12.1f %10lld %10lld\n", "journaled", journal_med,
              journaled->perf.latency_us,
              static_cast<long long>(journaled->measure_stats.measured),
              static_cast<long long>(journaled->measure_stats.replayed));
  std::printf("%-22s %10.1f %12.1f %10lld %10lld\n", "resume (full replay)", resume_med,
              resumed->perf.latency_us,
              static_cast<long long>(resumed->measure_stats.measured),
              static_cast<long long>(resumed->measure_stats.replayed));
  std::printf("\njournal overhead: %+.2f%% (min of %d)   resume speedup: %.2fx\n",
              overhead_pct, kReps, resume_med > 0 ? plain_med / resume_med : 0.0);

  // Determinism: all three runs are the same trajectory.
  bool same = plain->perf.latency_us == journaled->perf.latency_us &&
              plain->perf.latency_us == resumed->perf.latency_us &&
              plain->measurements_used == journaled->measurements_used &&
              plain->measurements_used == resumed->measurements_used &&
              plain->history_us.size() == resumed->history_us.size();
  if (!same) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: plain %.3f us/%d, journaled %.3f us/%d, "
                 "resumed %.3f us/%d\n",
                 plain->perf.latency_us, plain->measurements_used, journaled->perf.latency_us,
                 journaled->measurements_used, resumed->perf.latency_us,
                 resumed->measurements_used);
    return 1;
  }
  if (resumed->measure_stats.measured != 0) {
    std::fprintf(stderr, "resume re-measured %lld candidates; expected full replay\n",
                 static_cast<long long>(resumed->measure_stats.measured));
    return 1;
  }
  std::printf("determinism: plain == journaled == resumed (%.1f us, %d measurements)\n",
              plain->perf.latency_us, plain->measurements_used);
  if (overhead_pct >= 2.0) {
    std::printf("WARNING: journal overhead above the 2%% target\n");
  }
  RemoveFile(path);
  return 0;
}

}  // namespace alt

int main() { return alt::Main(); }

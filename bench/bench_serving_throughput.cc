// Serving throughput: InferenceSession reuse vs per-call setup, and
// single- vs multi-threaded request execution.
//
//   ./build/bench/bench_serving_throughput
//
// Before timing, the session output is checked bit-identical against the
// deprecated RunLoweredNetwork free function (which rebuilds a session per
// call — the "per-call setup" baseline being measured). With ALT_TRACE_DIR
// set the requests/s figures are also written as a JSON metrics artifact for
// CI. Exits nonzero if session reuse fails to beat per-call setup: the
// entire point of the serving split is amortizing plan compilation and
// buffer allocation.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/autotune/layout_templates.h"
#include "src/runtime/session.h"

namespace alt {

graph::Graph ServingGraph() {
  graph::Graph g("serving_conv");
  int x = g.AddInput("x", {1, 8, 12, 12});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("w", {16, 8, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, p, w, attrs, "conv");
  int b = g.AddConstant("b", {16});
  g.AddRelu(g.AddBiasAdd(c, b, 1, "bias"), "relu");
  return g;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

int Main() {
  bench::PrintHeader(
      "Serving throughput: session reuse vs per-call setup, single vs "
      "multi-threaded");

  graph::Graph g = ServingGraph();
  graph::LayoutAssignment la;
  // Channels-last on the conv output (propagated across the elementwise
  // tail) so requests exercise real layout-conversion plans on both ends.
  // Tensor ids in ServingGraph(): x=0, pad=1, w=2, conv=3, b=4, bias=5, relu=6.
  constexpr int kPadT = 1, kConvOut = 3;
  la.Set(kConvOut, autotune::ChannelsLast(2));
  la.Set(kPadT, autotune::ChannelsLast(2));
  graph::PropagateOutputLayout(g, la, kConvOut);

  auto net = loop::LowerNetworkNaive(g, la, true);
  if (!net.ok()) {
    std::fprintf(stderr, "lowering failed: %s\n", net.status().ToString().c_str());
    return 1;
  }
  auto session = runtime::InferenceSession::Create(g, la, *net);
  if (!session.ok()) {
    std::fprintf(stderr, "session creation failed: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }

  constexpr int kRequests = 64;
  std::vector<runtime::TensorDataMap> requests;
  for (int i = 0; i < kRequests; ++i) {
    Rng rng(1000 + i);
    runtime::TensorDataMap data;
    runtime::FillGraphInputs(g, rng, data);
    requests.push_back(std::move(data));
  }

  // Bit-identity gate: the session must reproduce the free function exactly,
  // request by request (the free function builds a fresh session per call,
  // so this also pins reused arenas to fresh-arena results).
  for (int i = 0; i < kRequests; ++i) {
    auto via_free = runtime::RunLoweredNetwork(g, la, *net, requests[i]);
    auto via_session = session->Run(requests[i]);
    if (!via_free.ok() || !via_session.ok()) {
      std::fprintf(stderr, "request %d failed: %s\n", i,
                   (!via_free.ok() ? via_free.status() : via_session.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    if (via_free->size() != via_session->size() ||
        std::memcmp(via_free->data(), via_session->data(),
                    via_free->size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "BIT-IDENTITY VIOLATION on request %d\n", i);
      return 1;
    }
  }
  std::printf("bit-identity gate: %d requests identical to RunLoweredNetwork\n\n",
              kRequests);

  // --- per-call setup: a throwaway session per request -------------------
  auto start = std::chrono::steady_clock::now();
  for (const auto& request : requests) {
    auto out = runtime::RunLoweredNetwork(g, la, *net, request);
    if (!out.ok()) {
      std::fprintf(stderr, "per-call run failed: %s\n", out.status().ToString().c_str());
      return 1;
    }
  }
  const double per_call_rps = kRequests / Seconds(start);

  // --- session reuse, single caller --------------------------------------
  start = std::chrono::steady_clock::now();
  for (const auto& request : requests) {
    auto out = session->Run(request);
    if (!out.ok()) {
      std::fprintf(stderr, "session run failed: %s\n", out.status().ToString().c_str());
      return 1;
    }
  }
  const double session_rps = kRequests / Seconds(start);

  // --- session reuse, concurrent callers ---------------------------------
  constexpr int kThreads = 4;
  start = std::chrono::steady_clock::now();
  auto batch = session->RunBatch(requests, kThreads);
  if (!batch.ok()) {
    std::fprintf(stderr, "batch run failed: %s\n", batch.status().ToString().c_str());
    return 1;
  }
  const double batch_rps = kRequests / Seconds(start);

  std::printf("%-28s %12s\n", "mode", "requests/s");
  std::printf("%-28s %12.1f\n", "per-call setup", per_call_rps);
  std::printf("%-28s %12.1f\n", "session reuse (1 thread)", session_rps);
  std::printf("%-28s %12.1f\n", "session RunBatch (4 threads)", batch_rps);
  std::printf("\nsession-reuse speedup over per-call setup: %.2fx\n",
              session_rps / per_call_rps);
  std::printf("arenas materialized: %d\n", session->arena_count());

  const std::string trace_dir = bench::TraceDir();
  if (!trace_dir.empty()) {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "{\n  \"serving_throughput\": {\n"
                  "    \"requests\": %d,\n"
                  "    \"per_call_rps\": %.3f,\n"
                  "    \"session_rps\": %.3f,\n"
                  "    \"batch_rps\": %.3f,\n"
                  "    \"batch_threads\": %d,\n"
                  "    \"session_speedup\": %.3f,\n"
                  "    \"arenas\": %d\n  }\n}\n",
                  kRequests, per_call_rps, session_rps, batch_rps, kThreads,
                  session_rps / per_call_rps, session->arena_count());
    Status ws = WriteFile(trace_dir + "/serving_throughput_metrics.json", buf);
    if (!ws.ok()) {
      std::fprintf(stderr, "metrics artifact not written: %s\n", ws.ToString().c_str());
    } else {
      std::printf("metrics artifact written to %s/serving_throughput_metrics.json\n",
                  trace_dir.c_str());
    }
  }

  if (session_rps <= per_call_rps) {
    std::fprintf(stderr,
                 "SERVING REGRESSION: session reuse (%.1f req/s) did not beat "
                 "per-call setup (%.1f req/s)\n",
                 session_rps, per_call_rps);
    return 1;
  }
  return 0;
}

}  // namespace alt

int main() { return alt::Main(); }

// Interpreter throughput: a three-way race — generic tree walk, affine
// engine, and the JIT-compiled native backend — on conv2d and GMM programs
// under several layouts (including the pad-guard and unfold templates that
// stress guard splitting and the bytecode fallback).
//
//   ./build/bench/bench_interpreter_throughput
//
// For every configuration the three engines are first checked to produce
// bit-identical buffers, then timed over repeated runs. Work is counted in
// innermost store executions (ir::CountStoreExecutions), so elements/s is
// comparable across layouts of the same workload. With ALT_TRACE_DIR set the
// per-config throughput is also written as a JSON metrics artifact for CI.
//
// Gates: affine must hold a 2x geomean over generic, and native must not
// slip below affine (geomean >= 1x) — unless the host has no toolchain
// (codegen.fallback_programs > 0), in which case the native gate is skipped
// because "native" silently served through the affine engine.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "src/autotune/layout_templates.h"
#include "src/runtime/session.h"
#include "src/support/metrics.h"
#include "src/support/thread_pool.h"

namespace alt {

struct BenchConfig {
  std::string name;
  graph::Graph g;
  graph::LayoutAssignment la;
};

// A deterministic schedule that exercises the vectorized inner-loop kernels
// AND carves a multi-core outer tile: each spatial axis takes an outer tile
// (largest divisor <= 8) whose leading two axes are marked kParallel —
// canonical conv2d gets a parallel out-channel tile of 8, canonical GMM a
// parallel row tile of 8 — then keeps a unit-stride vec slot from what
// remains. The kParallel root is what the intra-op thread sweep below
// shards.
loop::LoopSchedule DefaultSchedule(const loop::LoopNestSignature& sig) {
  loop::LoopSchedule s;
  auto largest_divisor = [](int64_t e, int64_t cap) {
    int64_t best = 1;
    for (int64_t d = 1; d <= cap && d <= e; ++d) {
      if (e % d == 0) {
        best = d;
      }
    }
    return best;
  };
  for (int64_t e : sig.spatial_extents) {
    const int64_t outer = largest_divisor(e, 8);
    const int64_t rest = e / outer;
    const int64_t vec = largest_divisor(rest, 8);
    loop::SpatialAxisSchedule a;
    a.outer = outer;
    a.mid = 1;
    a.inner = rest / vec;
    a.vec = vec;
    s.spatial.push_back(a);
  }
  for (int64_t e : sig.reduction_extents) {
    s.reduction.push_back({e, 1});
  }
  s.parallel_axes = 2;
  return s;
}

StatusOr<loop::LoweredNetwork> Lower(const graph::Graph& g,
                                     const graph::LayoutAssignment& la) {
  auto groups = loop::PartitionGraph(g, la, true);
  loop::LoweredNetwork net;
  net.groups = groups;
  for (const auto& group : groups) {
    if (graph::IsComplex(g.op(group.anchor_op).kind)) {
      auto sig = loop::GroupSignature(g, la, group);
      if (!sig.ok()) {
        return sig.status();
      }
      auto prog = loop::LowerGroup(g, la, group, DefaultSchedule(*sig));
      if (!prog.ok()) {
        return prog.status();
      }
      net.programs.push_back(std::move(*prog));
    } else {
      auto prog = loop::LowerGroupNaive(g, la, group);
      if (!prog.ok()) {
        return prog.status();
      }
      net.programs.push_back(std::move(*prog));
    }
  }
  return net;
}

graph::Graph ConvGraph() {
  graph::Graph g("conv2d");
  int x = g.AddInput("x", {1, 8, 28, 28});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("w", {16, 8, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, p, w, attrs, "conv");
  g.AddRelu(c, "relu");
  return g;
}

std::vector<BenchConfig> BuildConfigs() {
  std::vector<BenchConfig> configs;

  {
    BenchConfig cfg{"conv2d/canonical", ConvGraph(), {}};
    configs.push_back(std::move(cfg));
  }
  // Tensor ids in ConvGraph(): x=0, pad=1, w=2, conv=3, relu=4.
  constexpr int kPad = 1, kConvOut = 3;
  {
    BenchConfig cfg{"conv2d/channels-last", ConvGraph(), {}};
    cfg.la.Set(kConvOut, autotune::ChannelsLast(2));
    cfg.la.Set(kPad, autotune::ChannelsLast(2));
    graph::PropagateOutputLayout(cfg.g, cfg.la, kConvOut);
    configs.push_back(std::move(cfg));
  }
  {
    // Full ALT conv template: pad-guarded unfolded input, tiled output and
    // weight — the layout that stresses guard splitting the hardest.
    BenchConfig cfg{"conv2d/alt-template", ConvGraph(), {}};
    const graph::Op& conv = cfg.g.op(cfg.g.ProducerOf(kConvOut));
    autotune::ConvLayoutParams params;
    params.spatial_tiles = {7, 7};
    params.out_tile = 4;
    params.in_tile = 2;
    params.w_in_tile = 2;
    params.w_out_tile = 4;
    auto layouts = autotune::MakeConvTemplates(cfg.g, conv, params);
    if (layouts.ok()) {
      cfg.la.Set(kConvOut, layouts->output);
      cfg.la.Set(kPad, layouts->input);
      cfg.la.Set(conv.inputs[1], layouts->weight);
      graph::PropagateOutputLayout(cfg.g, cfg.la, kConvOut);
      configs.push_back(std::move(cfg));
    } else {
      std::fprintf(stderr, "alt-template config skipped: %s\n",
                   layouts.status().ToString().c_str());
    }
  }
  {
    BenchConfig cfg{"gmm/canonical", graph::BuildSingleMatmul(64, 64, 64), {}};
    configs.push_back(std::move(cfg));
  }
  {
    BenchConfig cfg{"gmm/transposed-b", graph::BuildSingleMatmul(64, 64, 64), {}};
    cfg.la.Set(cfg.g.op(0).inputs[1], autotune::TransposedB());
    configs.push_back(std::move(cfg));
  }
  {
    BenchConfig cfg{"gmm/blocked", graph::BuildSingleMatmul(64, 64, 64), {}};
    const graph::Op& op = cfg.g.op(0);
    autotune::GmmLayoutParams params{8, 8, 8};
    auto layouts = autotune::MakeGmmTemplates(cfg.g, op, params);
    if (layouts.ok()) {
      cfg.la.Set(op.output, layouts->c);
      cfg.la.Set(op.inputs[0], layouts->a);
      cfg.la.Set(op.inputs[1], layouts->b);
      configs.push_back(std::move(cfg));
    } else {
      std::fprintf(stderr, "gmm/blocked config skipped: %s\n",
                   layouts.status().ToString().c_str());
    }
  }
  return configs;
}

struct ConfigResult {
  std::string name;
  double affine_eps = 0.0;   // elements (store executions) per second
  double generic_eps = 0.0;
  double native_eps = 0.0;
  double speedup = 0.0;            // affine vs generic
  double native_vs_affine = 0.0;
  bench::SampleStats affine_stats;  // per-run elements/s samples
};

// Seeds `store` with physicalized graph inputs/constants.
Status SeedStore(const graph::Graph& g, const graph::LayoutAssignment& la,
                 runtime::BufferStore& store, uint64_t seed) {
  Rng rng(seed);
  runtime::TensorDataMap data;
  runtime::FillGraphInputs(g, rng, data);
  for (const auto& t : g.tensors()) {
    if (!g.IsGraphInput(t.id) && !g.IsConstant(t.id)) {
      continue;
    }
    auto phys = runtime::Physicalize(data[t.id], t.shape, la.Get(t.id));
    if (!phys.ok()) {
      return phys.status();
    }
    store.Get(t.id) = std::move(*phys);
  }
  return Status::Ok();
}

double RunOnce(const loop::LoweredNetwork& net, runtime::BufferStore& store,
               const runtime::ExecOptions& opts) {
  auto start = std::chrono::steady_clock::now();
  for (const auto& program : net.programs) {
    Status s = runtime::Execute(program, store, opts);
    if (!s.ok()) {
      std::fprintf(stderr, "execute failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Prepare-once / Run-many execution for the thread sweep: plan compilation,
// shardability analysis, and the intra-op pool are paid once, so the timed
// runs measure execution alone — the serving-path shape.
StatusOr<std::vector<runtime::PreparedProgram>> PrepareNet(const loop::LoweredNetwork& net,
                                                           runtime::BufferStore& store,
                                                           const runtime::ExecOptions& opts) {
  std::vector<runtime::PreparedProgram> programs;
  programs.reserve(net.programs.size());
  for (const auto& program : net.programs) {
    auto prepared = runtime::PreparedProgram::Prepare(program, store, opts);
    if (!prepared.ok()) {
      return prepared.status();
    }
    programs.push_back(std::move(*prepared));
  }
  return programs;
}

double RunPrepared(std::vector<runtime::PreparedProgram>& programs) {
  auto start = std::chrono::steady_clock::now();
  for (auto& p : programs) {
    Status s = p.Run();
    if (!s.ok()) {
      std::fprintf(stderr, "prepared run failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Bit-identity across thread counts: every declared buffer of every program
// must match the serial reference exactly.
bool StoresMatch(const loop::LoweredNetwork& net, const runtime::BufferStore& got,
                 const runtime::BufferStore& want, std::string* what) {
  for (const auto& program : net.programs) {
    for (const auto& decl : program.buffers) {
      const auto* a = got.Find(decl.tensor.id);
      const auto* b = want.Find(decl.tensor.id);
      if (a == nullptr || b == nullptr || a->size() != b->size() ||
          std::memcmp(a->data(), b->data(), a->size() * sizeof(float)) != 0) {
        *what = decl.tensor.name;
        return false;
      }
    }
  }
  return true;
}

int Main() {
  bench::PrintHeader(
      "Interpreter throughput: generic tree walk vs affine engine vs native "
      "JIT (elements = innermost store executions)");

  // The three-way race is a SINGLE-THREAD engine comparison: intra-op
  // sharding is pinned off so the ratios keep measuring per-core execution.
  // The thread sweep below is where kParallel roots fan out.
  runtime::ExecOptions affine;
  affine.engine = runtime::ExecEngine::kAffine;
  affine.intra_threads = 1;
  runtime::ExecOptions generic;
  generic.engine = runtime::ExecEngine::kGeneric;
  generic.intra_threads = 1;
  runtime::ExecOptions native;
  native.engine = runtime::ExecEngine::kNative;
  native.intra_threads = 1;
  const int64_t fallback_before =
      MetricsRegistry::Global().Snapshot().counter("codegen.fallback_programs");

  std::vector<BenchConfig> configs = BuildConfigs();
  std::vector<ConfigResult> results;
  std::printf("%-22s %14s %14s %14s %9s %9s\n", "config", "affine_el/s",
              "generic_el/s", "native_el/s", "aff/gen", "nat/aff");
  for (auto& cfg : configs) {
    auto net = Lower(cfg.g, cfg.la);
    if (!net.ok()) {
      std::fprintf(stderr, "%s: lowering failed: %s\n", cfg.name.c_str(),
                   net.status().ToString().c_str());
      return 1;
    }
    int64_t elems = 0;
    for (const auto& program : net->programs) {
      elems += ir::CountStoreExecutions(program.root);
    }

    // Correctness gate: all three engines must produce bit-identical
    // buffers. (These runs also warm the kernel cache, so the timed native
    // runs below never pay a compile.)
    runtime::BufferStore fast, slow, jitted;
    if (!SeedStore(cfg.g, cfg.la, fast, 7).ok() ||
        !SeedStore(cfg.g, cfg.la, slow, 7).ok() ||
        !SeedStore(cfg.g, cfg.la, jitted, 7).ok()) {
      std::fprintf(stderr, "%s: input physicalization failed\n", cfg.name.c_str());
      return 1;
    }
    RunOnce(*net, fast, affine);
    RunOnce(*net, slow, generic);
    RunOnce(*net, jitted, native);
    for (const auto& program : net->programs) {
      for (const auto& decl : program.buffers) {
        const auto* a = fast.Find(decl.tensor.id);
        const auto* b = slow.Find(decl.tensor.id);
        const auto* n = jitted.Find(decl.tensor.id);
        if (a == nullptr || b == nullptr || n == nullptr || a->size() != b->size() ||
            a->size() != n->size() ||
            std::memcmp(a->data(), b->data(), a->size() * sizeof(float)) != 0 ||
            std::memcmp(a->data(), n->data(), a->size() * sizeof(float)) != 0) {
          std::fprintf(stderr, "%s: BIT-IDENTITY VIOLATION on tensor %s\n",
                       cfg.name.c_str(), decl.tensor.name.c_str());
          return 1;
        }
      }
    }

    constexpr int kAffineReps = 10;
    constexpr int kGenericReps = 3;
    std::vector<double> affine_eps;
    for (int r = 0; r < kAffineReps; ++r) {
      affine_eps.push_back(static_cast<double>(elems) / RunOnce(*net, fast, affine));
    }
    std::vector<double> native_eps;
    for (int r = 0; r < kAffineReps; ++r) {
      native_eps.push_back(static_cast<double>(elems) / RunOnce(*net, jitted, native));
    }
    double generic_total = 0.0;
    for (int r = 0; r < kGenericReps; ++r) {
      generic_total += RunOnce(*net, slow, generic);
    }

    ConfigResult res;
    res.name = cfg.name;
    res.affine_stats = bench::Summarize(affine_eps);
    res.affine_eps = res.affine_stats.p50;
    res.native_eps = bench::Summarize(native_eps).p50;
    res.generic_eps = static_cast<double>(elems) * kGenericReps / generic_total;
    res.speedup = res.affine_eps / res.generic_eps;
    res.native_vs_affine = res.native_eps / res.affine_eps;
    std::printf("%-22s %14.3e %14.3e %14.3e %8.2fx %8.2fx\n", res.name.c_str(),
                res.affine_eps, res.generic_eps, res.native_eps, res.speedup,
                res.native_vs_affine);
    results.push_back(std::move(res));
  }

  double log_sum = 0.0;
  double native_log_sum = 0.0;
  for (const auto& r : results) {
    log_sum += std::log(r.speedup);
    native_log_sum += std::log(r.native_vs_affine);
  }
  double geomean = results.empty() ? 0.0 : std::exp(log_sum / results.size());
  double native_geomean =
      results.empty() ? 0.0 : std::exp(native_log_sum / results.size());
  const int64_t native_fallbacks =
      MetricsRegistry::Global().Snapshot().counter("codegen.fallback_programs") -
      fallback_before;
  std::printf("\ngeomean speedup (affine vs generic): %.2fx\n", geomean);
  std::printf("geomean speedup (native vs affine): %.2fx (%lld fallback programs)\n",
              native_geomean, static_cast<long long>(native_fallbacks));
  for (const auto& r : results) {
    std::printf("  %-22s p50=%.3e p95=%.3e min=%.3e max=%.3e el/s\n", r.name.c_str(),
                r.affine_stats.p50, r.affine_stats.p95, r.affine_stats.min,
                r.affine_stats.max);
  }

  // --- intra-op thread sweep ------------------------------------------------
  // Every config runs the affine and native engines at 1/2/4/hw intra-op
  // threads (Prepare once, Run many), with a bit-identity check against the
  // serial run at every width. Configs whose kParallel root fails the
  // disjointness proof (e.g. channels-last, where the parallel axis carries
  // the smallest stride) degrade to serial and simply sweep flat.
  struct SweepPoint {
    std::string config;
    std::string engine;
    int threads = 0;
    double eps = 0.0;
    double speedup = 0.0;  // vs the same engine at 1 thread
  };
  const int64_t parallel_before =
      MetricsRegistry::Global().Snapshot().counter("interp.parallel_programs");
  std::vector<int> sweep_threads = {1, 2, 4, HardwareThreads()};
  std::sort(sweep_threads.begin(), sweep_threads.end());
  sweep_threads.erase(std::unique(sweep_threads.begin(), sweep_threads.end()),
                      sweep_threads.end());
  std::vector<SweepPoint> sweep;
  std::printf("\nintra-op thread sweep (Prepare once / Run many):\n");
  std::printf("%-22s %-7s %8s %14s %9s\n", "config", "engine", "threads", "el/s",
              "vs_1t");
  for (auto& cfg : configs) {
    auto net = Lower(cfg.g, cfg.la);
    if (!net.ok()) {
      std::fprintf(stderr, "%s: lowering failed: %s\n", cfg.name.c_str(),
                   net.status().ToString().c_str());
      return 1;
    }
    int64_t elems = 0;
    for (const auto& program : net->programs) {
      elems += ir::CountStoreExecutions(program.root);
    }
    for (const auto* engine_name : {"affine", "native"}) {
      const runtime::ExecEngine engine = std::strcmp(engine_name, "affine") == 0
                                             ? runtime::ExecEngine::kAffine
                                             : runtime::ExecEngine::kNative;
      // Serial reference buffers for the bit-identity gate.
      runtime::BufferStore ref_store;
      if (!SeedStore(cfg.g, cfg.la, ref_store, 11).ok()) {
        std::fprintf(stderr, "%s: input physicalization failed\n", cfg.name.c_str());
        return 1;
      }
      runtime::ExecOptions ref_opts;
      ref_opts.engine = engine;
      ref_opts.intra_threads = 1;
      auto ref_prepared = PrepareNet(*net, ref_store, ref_opts);
      if (!ref_prepared.ok()) {
        std::fprintf(stderr, "%s: prepare failed: %s\n", cfg.name.c_str(),
                     ref_prepared.status().ToString().c_str());
        return 1;
      }
      RunPrepared(*ref_prepared);
      double base_eps = 0.0;
      for (int t : sweep_threads) {
        runtime::BufferStore store;
        if (!SeedStore(cfg.g, cfg.la, store, 11).ok()) {
          std::fprintf(stderr, "%s: input physicalization failed\n", cfg.name.c_str());
          return 1;
        }
        runtime::ExecOptions opts;
        opts.engine = engine;
        opts.intra_threads = t;
        auto prepared = PrepareNet(*net, store, opts);
        if (!prepared.ok()) {
          std::fprintf(stderr, "%s: prepare failed: %s\n", cfg.name.c_str(),
                       prepared.status().ToString().c_str());
          return 1;
        }
        RunPrepared(*prepared);  // warm-up; also the correctness run
        std::string bad;
        if (!StoresMatch(*net, store, ref_store, &bad)) {
          std::fprintf(stderr,
                       "%s: BIT-IDENTITY VIOLATION at %s intra_threads=%d on tensor %s\n",
                       cfg.name.c_str(), engine_name, t, bad.c_str());
          return 1;
        }
        constexpr int kSweepReps = 10;
        std::vector<double> eps_samples;
        for (int r = 0; r < kSweepReps; ++r) {
          eps_samples.push_back(static_cast<double>(elems) / RunPrepared(*prepared));
        }
        SweepPoint p;
        p.config = cfg.name;
        p.engine = engine_name;
        p.threads = t;
        p.eps = bench::Summarize(eps_samples).p50;
        if (t == 1) {
          base_eps = p.eps;
        }
        p.speedup = base_eps > 0.0 ? p.eps / base_eps : 0.0;
        std::printf("%-22s %-7s %8d %14.3e %8.2fx\n", p.config.c_str(), engine_name, t,
                    p.eps, p.speedup);
        sweep.push_back(std::move(p));
      }
    }
  }
  const int64_t parallel_programs =
      MetricsRegistry::Global().Snapshot().counter("interp.parallel_programs") -
      parallel_before;
  std::printf("parallel (sharded) program runs during sweep: %lld\n",
              static_cast<long long>(parallel_programs));

  const std::string trace_dir = bench::TraceDir();
  if (!trace_dir.empty()) {
    std::string json = "{\n  \"interpreter_throughput\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      char buf[384];
      std::snprintf(buf, sizeof(buf),
                    "    {\"config\": \"%s\", \"elements_per_s\": %.6e, "
                    "\"generic_elements_per_s\": %.6e, "
                    "\"native_elements_per_s\": %.6e, \"speedup\": %.3f, "
                    "\"native_vs_affine\": %.3f}%s\n",
                    r.name.c_str(), r.affine_eps, r.generic_eps, r.native_eps,
                    r.speedup, r.native_vs_affine, i + 1 < results.size() ? "," : "");
      json += buf;
    }
    json += "  ],\n  \"thread_sweep\": [\n";
    for (size_t i = 0; i < sweep.size(); ++i) {
      const auto& p = sweep[i];
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "    {\"config\": \"%s\", \"engine\": \"%s\", \"threads\": %d, "
                    "\"elements_per_s\": %.6e, \"speedup_vs_1\": %.3f}%s\n",
                    p.config.c_str(), p.engine.c_str(), p.threads, p.eps, p.speedup,
                    i + 1 < sweep.size() ? "," : "");
      json += buf;
    }
    char tail[256];
    std::snprintf(tail, sizeof(tail),
                  "  ],\n  \"geomean_speedup\": %.3f,\n"
                  "  \"native_geomean_vs_affine\": %.3f,\n"
                  "  \"native_fallback_programs\": %lld,\n"
                  "  \"parallel_programs\": %lld,\n"
                  "  \"hardware_threads\": %d\n}\n",
                  geomean, native_geomean, static_cast<long long>(native_fallbacks),
                  static_cast<long long>(parallel_programs), HardwareThreads());
    json += tail;
    Status ws = WriteFile(trace_dir + "/interpreter_throughput_metrics.json", json);
    if (!ws.ok()) {
      std::fprintf(stderr, "metrics artifact not written: %s\n", ws.ToString().c_str());
    } else {
      std::printf("metrics artifact written to %s/interpreter_throughput_metrics.json\n",
                  trace_dir.c_str());
    }
  }

  // The affine engine exists to make simulation-side execution cheap; a
  // regression below 2x end-to-end means the fast path stopped engaging.
  if (geomean < 2.0) {
    std::fprintf(stderr, "THROUGHPUT REGRESSION: geomean %.2fx < 2x\n", geomean);
    return 1;
  }
  // The native backend justifies its complexity by never losing to the
  // interpreter it replaces. Skipped when any program could not be compiled
  // (no host toolchain): "native" then timed the affine engine against
  // itself and the comparison is meaningless.
  if (native_fallbacks > 0) {
    std::printf("native gate skipped: %lld programs served without a compiled kernel\n",
                static_cast<long long>(native_fallbacks));
  } else if (native_geomean < 1.0) {
    std::fprintf(stderr, "NATIVE REGRESSION: geomean %.2fx < 1x vs affine\n",
                 native_geomean);
    return 1;
  }
  // Scaling gate: the canonical configs carry provably disjoint kParallel
  // roots, so 4 intra-op threads must buy >= 2x geomean over serial — for the
  // affine engine always, and for native whenever every kernel compiled
  // (under fallback "native" shards the affine plan, double-counting it).
  // Skipped on hosts without 4 cores, where the speedup physically cannot
  // materialize.
  if (HardwareThreads() < 4) {
    std::printf("scaling gate skipped: host has %d hardware threads (< 4)\n",
                HardwareThreads());
  } else {
    double scale_log_sum = 0.0;
    int scale_n = 0;
    for (const auto& p : sweep) {
      if (p.threads != 4 ||
          (p.config != "conv2d/canonical" && p.config != "gmm/canonical")) {
        continue;
      }
      if (p.engine == "native" && native_fallbacks > 0) {
        continue;
      }
      scale_log_sum += std::log(p.speedup);
      ++scale_n;
    }
    const double scale_geomean =
        scale_n > 0 ? std::exp(scale_log_sum / scale_n) : 0.0;
    std::printf("geomean scaling at 4 threads (canonical configs): %.2fx\n",
                scale_geomean);
    if (scale_geomean < 2.0) {
      std::fprintf(stderr, "SCALING REGRESSION: geomean %.2fx < 2x at 4 threads\n",
                   scale_geomean);
      return 1;
    }
  }
  return 0;
}

}  // namespace alt

int main() { return alt::Main(); }

// Serving front-end QPS: dynamic batching vs per-request dispatch, plus the
// RunBatch pool-reuse delta and hot-swap bit-identity.
//
//   ./build/bench/bench_serving_qps
//
// A small network is tuned (random search, tiny budget — deterministic), and
// the same request stream is pushed through serving::Server twice:
//
//   * per-request dispatch: max_batch_size=1 — every request is its own
//     batch, the naive serve loop.
//   * dynamic batching: max_batch_size=16 under a 2 ms delay budget — the
//     batcher aggregates the backlog into units the worker can fan out
//     across its ThreadPool.
//
// Batching wins by turning a stream of serial Run() calls into parallelizable
// batches and by amortizing dispatch (wakeup, lock, deadline scan) across 16
// requests. The parallel half needs >1 hardware thread: on a single-core
// host the bench degrades to the overhead comparison, so the hard gate
// "batching sustains more requests/sec" applies on multi-core hosts and a
// 0.85x sanity floor applies on one core.
//
// Everything is gated on bit-identity: every response in every mode must
// equal the direct InferenceSession::Run output for its seed — including
// after an atomic hot-swap to the re-saved, re-loaded artifact of the same
// tuned network halfway through the stream.
//
// With ALT_TRACE_DIR set, the figures are written as a JSON metrics artifact
// for CI.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "src/core/alt.h"
#include "src/serving/server.h"

namespace alt {

namespace {

graph::Graph QpsGraph() {
  graph::Graph g("served_conv");
  int x = g.AddInput("x", {1, 8, 12, 12});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("w", {16, 8, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, p, w, attrs, "conv");
  int b = g.AddConstant("b", {16});
  g.AddRelu(g.AddBiasAdd(c, b, 1, "bias"), "relu");
  return g;
}

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

runtime::TensorDataMap MakeRequest(const graph::Graph& g, uint64_t seed) {
  Rng rng(seed);
  runtime::TensorDataMap data;
  runtime::FillGraphInputs(g, rng, data);
  return data;
}

constexpr int kRequests = 96;

struct StreamResult {
  double rps = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
};

// Pushes the full request stream through `server`, optionally hot-swapping
// `swap_artifact` in after half the stream, and bit-checks every response.
// Returns false (with a message) on any failure or identity violation.
bool RunStream(serving::Server& server, const std::string& model,
               const graph::Graph& g, const std::vector<std::vector<float>>& expected,
               const core::LoadedArtifact* swap_artifact, StreamResult* result) {
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  auto start = std::chrono::steady_clock::now();
  std::vector<std::future<serving::Response>> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    if (swap_artifact != nullptr && i == kRequests / 2) {
      Status swap = server.SwapModel(model, *swap_artifact);
      if (!swap.ok()) {
        std::fprintf(stderr, "hot-swap failed: %s\n", swap.ToString().c_str());
        return false;
      }
    }
    futures.push_back(server.Submit(model, MakeRequest(g, 1000 + i)));
  }
  for (int i = 0; i < kRequests; ++i) {
    auto out = futures[i].get();
    if (!out.ok()) {
      std::fprintf(stderr, "request %d failed: %s\n", i, out.status().ToString().c_str());
      return false;
    }
    if (out->size() != expected[i].size() ||
        std::memcmp(out->data(), expected[i].data(),
                    expected[i].size() * sizeof(float)) != 0) {
      std::fprintf(stderr, "BIT-IDENTITY VIOLATION on request %d%s\n", i,
                   swap_artifact != nullptr ? " (hot-swap stream)" : "");
      return false;
    }
  }
  const double elapsed = Seconds(start);
  MetricsSnapshot delta = MetricsRegistry::Global().Snapshot().DeltaSince(before);
  result->rps = kRequests / elapsed;
  if (const HistogramSnapshot* lat = delta.histogram("serving." + model + ".request_us")) {
    result->p95_us = lat->p95;
    result->p99_us = lat->p99;
  }
  if (const HistogramSnapshot* sizes = delta.histogram("serving.batch_size")) {
    result->mean_batch = sizes->mean();
  }
  return true;
}

}  // namespace

int Main() {
  bench::PrintHeader(
      "Serving QPS: dynamic batching vs per-request dispatch, pool-reuse "
      "delta, hot-swap bit-identity");

  // A deterministic tuned network (random search keeps this fast) so the
  // stream exercises real tuned layouts and the artifact path.
  core::AltOptions options;
  options.budget = 80;
  options.method = autotune::SearchMethod::kRandom;
  options.seed = 7;
  graph::Graph g = QpsGraph();
  auto compiled = core::Compile(g, sim::Machine::IntelCpu(), options);
  if (!compiled.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", compiled.status().ToString().c_str());
    return 1;
  }
  const loop::LoweredNetwork net{compiled->groups, compiled->programs};
  auto session = runtime::InferenceSession::Create(compiled->graph, compiled->assignment, net);
  if (!session.ok()) {
    std::fprintf(stderr, "session failed: %s\n", session.status().ToString().c_str());
    return 1;
  }

  // Reference outputs: the bit-identity contract for every serving mode.
  std::vector<std::vector<float>> expected;
  for (int i = 0; i < kRequests; ++i) {
    auto out = session->Run(MakeRequest(compiled->graph, 1000 + i));
    if (!out.ok()) {
      std::fprintf(stderr, "reference run failed: %s\n", out.status().ToString().c_str());
      return 1;
    }
    expected.push_back(std::move(*out));
  }

  // --- RunBatch pool reuse vs a fresh ThreadPool per batch ----------------
  // The old RunBatch constructed and joined a ThreadPool on every call; the
  // session now keeps one. Measure exactly that delta.
  constexpr int kPoolBatches = 24;
  constexpr int kPoolThreads = 4;
  std::vector<runtime::TensorDataMap> pool_batch;
  for (int i = 0; i < 16; ++i) {
    pool_batch.push_back(MakeRequest(compiled->graph, 1000 + i));
  }
  auto start = std::chrono::steady_clock::now();
  for (int b = 0; b < kPoolBatches; ++b) {
    ThreadPool fresh(kPoolThreads);  // the per-call spawn the bugfix removed
    auto results = session->RunBatchDetailed(pool_batch, fresh);
    for (auto& r : results) {
      if (!r.ok()) {
        std::fprintf(stderr, "fresh-pool batch failed\n");
        return 1;
      }
    }
  }
  const double fresh_pool_s = Seconds(start);
  ThreadPool reused(kPoolThreads);
  start = std::chrono::steady_clock::now();
  for (int b = 0; b < kPoolBatches; ++b) {
    auto results = session->RunBatchDetailed(pool_batch, reused);
    for (auto& r : results) {
      if (!r.ok()) {
        std::fprintf(stderr, "reused-pool batch failed\n");
        return 1;
      }
    }
  }
  const double reused_pool_s = Seconds(start);
  const double pool_reuse_speedup = fresh_pool_s / reused_pool_s;

  // --- per-request dispatch ----------------------------------------------
  StreamResult per_request;
  {
    serving::ServerOptions sopt;
    sopt.policy.max_batch_size = 1;  // no batching: the naive serve loop
    sopt.policy.max_delay_us = 0;
    sopt.workers = 1;
    sopt.intra_batch_threads = 1;
    serving::Server server(sopt);
    Status added = server.AddModel("m", compiled->graph, compiled->assignment, net);
    if (!added.ok()) {
      std::fprintf(stderr, "add model failed: %s\n", added.ToString().c_str());
      return 1;
    }
    if (!RunStream(server, "m", compiled->graph, expected, nullptr, &per_request)) {
      return 1;
    }
  }

  // --- dynamic batching, with a hot-swap halfway through ------------------
  const std::string artifact_path = "bench_serving_qps.altart";
  Status saved = core::SaveArtifact(*compiled, sim::Machine::IntelCpu(), options,
                                    artifact_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "artifact save failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  auto loaded = core::LoadArtifact(artifact_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "artifact load failed: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::remove(artifact_path.c_str());
  StreamResult batching;
  int swaps = 0;
  {
    serving::ServerOptions sopt;
    sopt.policy.max_batch_size = 16;
    sopt.policy.max_delay_us = 2000;  // the tail-latency budget batching may add
    sopt.workers = 1;
    sopt.intra_batch_threads = 4;
    serving::Server server(sopt);
    Status added = server.AddModel("m", compiled->graph, compiled->assignment, net);
    if (!added.ok()) {
      std::fprintf(stderr, "add model failed: %s\n", added.ToString().c_str());
      return 1;
    }
    if (!RunStream(server, "m", compiled->graph, expected, &*loaded, &batching)) {
      return 1;
    }
    swaps = static_cast<int>(server.Metrics().counter("serving.swaps"));
  }
  std::printf("bit-identity gate: %d requests x 2 modes identical to direct "
              "session runs, across %d hot-swap(s)\n\n",
              kRequests, swaps);

  // --- multi-worker sweep: workers x intra_batch_threads x intra-op --------
  // The three thread knobs compose: worker threads drain the queue,
  // intra_batch_threads fan requests of one batch across the session pool,
  // and intra-op threads shard each program's kParallel root. The sweep shows
  // where each knob pays (and that the budget keeps them from fighting) —
  // every point re-checks bit-identity against the direct session runs.
  struct SweepRow {
    int workers = 0;
    int batch_threads = 0;
    int intra_threads = 0;
    double rps = 0.0;
    double p99_us = 0.0;
  };
  std::vector<SweepRow> worker_sweep;
  std::printf("%-10s %-14s %-13s %10s %10s\n", "workers", "batch_threads",
              "intra_threads", "req/s", "p99 us");
  for (int workers : {1, 2}) {
    for (int batch_threads : {1, 2}) {
      for (int intra : {1, 2}) {
        serving::ServerOptions sopt;
        sopt.policy.max_batch_size = 16;
        sopt.policy.max_delay_us = 2000;
        sopt.workers = workers;
        sopt.intra_batch_threads = batch_threads;
        sopt.session.intra_threads = intra;
        serving::Server server(sopt);
        Status added = server.AddModel("m", compiled->graph, compiled->assignment, net);
        if (!added.ok()) {
          std::fprintf(stderr, "add model failed: %s\n", added.ToString().c_str());
          return 1;
        }
        StreamResult point;
        if (!RunStream(server, "m", compiled->graph, expected, nullptr, &point)) {
          std::fprintf(stderr, "sweep point workers=%d batch_threads=%d intra=%d failed\n",
                       workers, batch_threads, intra);
          return 1;
        }
        std::printf("%-10d %-14d %-13d %10.1f %10.0f\n", workers, batch_threads,
                    intra, point.rps, point.p99_us);
        worker_sweep.push_back({workers, batch_threads, intra, point.rps, point.p99_us});
      }
    }
  }
  std::printf("\n");

  const int hardware = static_cast<int>(std::thread::hardware_concurrency());
  std::printf("%-34s %10s %10s %10s %10s\n", "mode", "req/s", "p95 us", "p99 us",
              "batch");
  std::printf("%-34s %10.1f %10.0f %10.0f %10.1f\n", "per-request dispatch",
              per_request.rps, per_request.p95_us, per_request.p99_us,
              per_request.mean_batch);
  std::printf("%-34s %10.1f %10.0f %10.0f %10.1f\n", "dynamic batching (16 @ 2ms)",
              batching.rps, batching.p95_us, batching.p99_us, batching.mean_batch);
  std::printf("\nbatching speedup: %.2fx (hardware threads: %d)\n",
              batching.rps / per_request.rps, hardware);
  std::printf("RunBatch pool reuse over fresh pool per batch: %.2fx\n",
              pool_reuse_speedup);

  const std::string trace_dir = bench::TraceDir();
  if (!trace_dir.empty()) {
    char buf[640];
    std::snprintf(buf, sizeof(buf),
                  "{\n  \"serving_qps\": {\n"
                  "    \"requests\": %d,\n"
                  "    \"hardware_threads\": %d,\n"
                  "    \"per_request_rps\": %.3f,\n"
                  "    \"per_request_p99_us\": %.3f,\n"
                  "    \"batching_rps\": %.3f,\n"
                  "    \"batching_p99_us\": %.3f,\n"
                  "    \"batching_mean_batch\": %.3f,\n"
                  "    \"batching_speedup\": %.4f,\n"
                  "    \"pool_reuse_speedup\": %.4f,\n"
                  "    \"hot_swaps\": %d\n  },\n"
                  "  \"worker_sweep\": [\n",
                  kRequests, hardware, per_request.rps, per_request.p99_us,
                  batching.rps, batching.p99_us, batching.mean_batch,
                  batching.rps / per_request.rps, pool_reuse_speedup, swaps);
    std::string json = buf;
    for (size_t i = 0; i < worker_sweep.size(); ++i) {
      const auto& row = worker_sweep[i];
      char rbuf[256];
      std::snprintf(rbuf, sizeof(rbuf),
                    "    {\"workers\": %d, \"intra_batch_threads\": %d, "
                    "\"intra_threads\": %d, \"rps\": %.3f, \"p99_us\": %.3f}%s\n",
                    row.workers, row.batch_threads, row.intra_threads, row.rps,
                    row.p99_us, i + 1 < worker_sweep.size() ? "," : "");
      json += rbuf;
    }
    json += "  ]\n}\n";
    Status ws = WriteFile(trace_dir + "/serving_qps_metrics.json", json);
    if (!ws.ok()) {
      std::fprintf(stderr, "metrics artifact not written: %s\n", ws.ToString().c_str());
    } else {
      std::printf("metrics artifact written to %s/serving_qps_metrics.json\n",
                  trace_dir.c_str());
    }
  }

  // The gate: batching must sustain more than per-request dispatch. The
  // parallel win needs >1 hardware thread; a single-core host can only show
  // the overhead delta, so it gets a sanity floor instead of the hard gate.
  const double floor = hardware >= 2 ? 1.0 : 0.85;
  if (batching.rps <= per_request.rps * floor) {
    std::fprintf(stderr,
                 "SERVING REGRESSION: dynamic batching (%.1f req/s) did not "
                 "sustain more than per-request dispatch (%.1f req/s, floor %.2fx)\n",
                 batching.rps, per_request.rps, floor);
    return 1;
  }
  if (swaps != 1) {
    std::fprintf(stderr, "SERVING REGRESSION: expected exactly 1 hot-swap, saw %d\n",
                 swaps);
    return 1;
  }
  return 0;
}

}  // namespace alt

int main() { return alt::Main(); }

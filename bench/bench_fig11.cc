// Figure 11 (paper §7.3.1): layout-tuning efficiency of Random, PPO without
// pretraining, and PPO with pretraining, on the first C2D of ResNet-18
// (N=1, I=3, H=W=230 padded, O=64, 7x7, stride 2) on the Intel-CPU profile.
//
// Claim to reproduce: PPO-Pret reaches the best performance with roughly
// half the budget of random search; pretraining improves over fresh PPO.

#include <cstdio>

#include "src/core/alt.h"
#include "src/graph/networks.h"

namespace alt {

std::vector<double> TuneCurve(autotune::SearchMethod method, int budget, uint64_t seed) {
  graph::Graph g = graph::BuildResNetFirstLayer(1);
  core::AltOptions options;
  options.budget = budget;
  options.joint_fraction = 0.6;  // this experiment is about layout search
  options.method = method;
  options.seed = seed;
  auto result = core::Compile(g, sim::Machine::IntelCpu(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "tuning failed: %s\n", result.status().ToString().c_str());
    return {};
  }
  return result->history_us;
}

}  // namespace alt

int main() {
  const int kBudget = 300;  // paper: 1000 on-device measurements
  struct MethodCurve {
    const char* name;
    alt::autotune::SearchMethod method;
    std::vector<double> avg;
  };
  MethodCurve methods[] = {
      {"Random", alt::autotune::SearchMethod::kRandom, {}},
      {"PPO-woPret", alt::autotune::SearchMethod::kPpo, {}},
      {"PPO-Pret", alt::autotune::SearchMethod::kPpoPretrained, {}},
  };

  std::printf("Fig. 11: layout tuning efficiency on the first C2D of ResNet-18\n");
  std::printf("(intel-cpu profile, budget %d, 3 seeds averaged; best-so-far latency)\n\n",
              kBudget);

  for (auto& m : methods) {
    std::vector<std::vector<double>> curves;
    for (uint64_t seed : {1ull, 2ull, 3ull}) {
      auto curve = alt::TuneCurve(m.method, kBudget, seed);
      if (!curve.empty()) {
        curves.push_back(curve);
      }
    }
    size_t len = 0;
    for (const auto& c : curves) {
      len = std::max(len, c.size());
    }
    m.avg.assign(len, 0.0);
    for (auto& c : curves) {
      double last = c.empty() ? 0.0 : c.back();
      c.resize(len, last);
      for (size_t i = 0; i < len; ++i) {
        m.avg[i] += c[i] / curves.size();
      }
    }
  }

  std::printf("%-10s", "Budget");
  for (const auto& m : methods) {
    std::printf(" | %-12s", m.name);
  }
  std::printf("\n---------------------------------------------------------\n");
  size_t len = 0;
  for (const auto& m : methods) {
    len = std::max(len, m.avg.size());
  }
  for (size_t checkpoint : {9ul, 29ul, 59ul, 99ul, 149ul, 199ul, 249ul, len - 1}) {
    if (checkpoint >= len) {
      continue;
    }
    std::printf("%-10zu", checkpoint + 1);
    for (const auto& m : methods) {
      size_t i = std::min(checkpoint, m.avg.size() - 1);
      std::printf(" | %9.3f ms", m.avg[i] / 1e3);
    }
    std::printf("\n");
  }

  // Budget Random needs to reach PPO-Pret's final quality.
  double target = methods[2].avg.back();
  size_t random_budget = methods[0].avg.size();
  for (size_t i = 0; i < methods[0].avg.size(); ++i) {
    if (methods[0].avg[i] <= target * 1.02) {
      random_budget = i + 1;
      break;
    }
  }
  std::printf("\n-> PPO-Pret final %.3f ms reached by Random only at budget %zu/%zu\n",
              target / 1e3, random_budget, methods[0].avg.size());
  std::printf("   (paper: PPO-Pret gives 1.2x better result with 2x less budget)\n");
  return 0;
}

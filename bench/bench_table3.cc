// Table 3 (paper §7.3.4): profiling the first layer of ResNet-18 (padding →
// C2D 7x7/s2 O=64 → bias → ReLU) under four layouts:
//   NHWO, NOHW, N O/ot H W ot (ot=16), and the searched ALT layout
//   N H/ht W/wt O/ot ht wt ot (ht=4, wt=16, ot=16).
// Reported: #instructions, L1 loads / misses / stores (trace-driven cache
// simulation) and model latency. Claim to reproduce: the ALT layout has the
// fewest L1 misses and the lowest latency; NOHW has the most instructions.

#include <cstdio>
#include <string>

#include "src/autotune/layout_templates.h"
#include "src/autotune/space.h"
#include "src/core/alt.h"
#include "src/graph/networks.h"
#include "src/sim/cache.h"
#include "src/sim/perf_model.h"

namespace alt {

struct LayoutResult {
  std::string name;
  double instructions;
  double l1_loads;
  double l1_misses;
  double l1_stores;
  double latency_us;
};

LayoutResult ProfileLayout(const std::string& name, int which) {
  graph::Graph g = graph::BuildResNetFirstLayer(1);
  // Tensors: 0 data, pad out, weight, conv out, bias, ...
  int pad_out = g.op(0).output;
  int conv_op = -1;
  for (const auto& op : g.ops()) {
    if (op.kind == graph::OpKind::kConv2d) {
      conv_op = op.id;
    }
  }
  const graph::Op& conv = g.op(conv_op);
  int conv_out = conv.output;
  int weight = conv.inputs[1];

  graph::LayoutAssignment la;
  switch (which) {
    case 0: {  // NHWO & rsIO
      la.Set(conv_out, autotune::ChannelsLast(2));
      la.Set(pad_out, autotune::ChannelsLast(2));
      layout::LayoutSeq w;  // OIrs -> rsIO
      w.Append(layout::Primitive::Reorder({2, 3, 1, 0}));
      la.Set(weight, w);
      break;
    }
    case 1:  // NOHW & OIrs (canonical)
      break;
    case 2: {  // N O/ot H W ot & O/ot I/it r s i o
      auto blocked_out = autotune::BlockedChannels(g.tensor(conv_out).shape, 16);
      auto blocked_in = autotune::BlockedChannels(g.tensor(pad_out).shape, 3);
      if (blocked_out.ok()) la.Set(conv_out, *blocked_out);
      if (blocked_in.ok()) la.Set(pad_out, *blocked_in);
      autotune::ConvLayoutParams params;
      params.spatial_tiles = {g.tensor(conv_out).shape[2], g.tensor(conv_out).shape[3]};
      params.out_tile = 16;
      params.in_tile = 3;
      params.w_in_tile = 3;
      params.w_out_tile = 16;
      auto layouts = autotune::MakeConvTemplates(g, conv, params);
      if (layouts.ok()) la.Set(weight, layouts->weight);
      break;
    }
    case 3: {  // ALT searched: ht=4, wt=16, ot=16, it=1
      autotune::ConvLayoutParams params;
      params.spatial_tiles = {4, 16};
      params.out_tile = 16;
      params.in_tile = 1;
      params.w_in_tile = 3;
      params.w_out_tile = 16;
      auto layouts = autotune::MakeConvTemplates(g, conv, params);
      if (layouts.ok()) {
        la.Set(conv_out, layouts->output);
        la.Set(pad_out, layouts->input);
        la.Set(weight, layouts->weight);
      }
      break;
    }
  }
  graph::PropagateOutputLayout(g, la, conv_out);

  const auto& machine = sim::Machine::IntelCpu();
  auto groups = loop::PartitionGraph(g, la, true);
  LayoutResult result;
  result.name = name;
  result.instructions = result.l1_loads = result.l1_misses = result.l1_stores = 0;
  result.latency_us = 0;
  for (const auto& group : groups) {
    auto sig = loop::GroupSignature(g, la, group);
    if (!sig.ok()) {
      continue;
    }
    auto sched = autotune::LoopSpace::Default(*sig, machine);
    auto program = loop::LowerGroup(g, la, group, sched);
    if (!program.ok()) {
      std::fprintf(stderr, "lowering failed: %s\n", program.status().ToString().c_str());
      continue;
    }
    auto perf = sim::EstimateProgram(*program, machine);
    result.instructions += perf.instructions;
    result.latency_us += perf.latency_us;
    auto trace = sim::SimulateProgramTrace(*program, machine, 20'000'000);
    result.l1_loads += static_cast<double>(trace.loads);
    result.l1_misses += static_cast<double>(trace.levels[0].misses);
    result.l1_stores += static_cast<double>(trace.stores);
  }
  return result;
}

}  // namespace alt

int main() {
  std::printf("Table 3: first layer of ResNet-18 (pad + C2D 7x7/s2 O=64 + bias + ReLU)\n");
  std::printf("profiled on the intel-cpu profile; counters in units of 1e6.\n\n");
  std::printf("%-28s | %8s | %8s | %8s | %8s | %8s\n", "Layout (Conv & Ker)", "#Inst",
              "#L1-lds", "#L1-mis", "#L1-sts", "Lat(ms)");
  std::printf("---------------------------------------------------------------------------------\n");
  const char* names[] = {"NHWO & rsIO", "NOHW & OIrs", "N O/ot H W ot & blocked",
                         "N H/ht W/wt O/ot ht wt ot"};
  alt::LayoutResult rows[4];
  for (int i = 0; i < 4; ++i) {
    rows[i] = alt::ProfileLayout(names[i], i);
    std::printf("%-28s | %8.1f | %8.1f | %8.1f | %8.1f | %8.3f\n", rows[i].name.c_str(),
                rows[i].instructions / 1e6, rows[i].l1_loads / 1e6, rows[i].l1_misses / 1e6,
                rows[i].l1_stores / 1e6, rows[i].latency_us / 1e3);
    std::fflush(stdout);
  }
  std::printf("\npaper reference (measured on Xeon Gold 5117):\n");
  std::printf("  NHWO 509.4/166.4/9.7/103.6/0.34   NOHW 626.9/206.6/4.5/121.3/0.49\n");
  std::printf("  NOotHWot 567.6/193.6/9.9/112.9/0.37   ALT 550.5/174.3/3.9/106.2/0.25\n");
  bool alt_fewest_misses = rows[3].l1_misses <= rows[0].l1_misses &&
                           rows[3].l1_misses <= rows[2].l1_misses;
  bool alt_fastest = rows[3].latency_us <= rows[0].latency_us &&
                     rows[3].latency_us <= rows[1].latency_us &&
                     rows[3].latency_us <= rows[2].latency_us;
  std::printf("\n-> ALT layout fewest L1 misses vs NHWO/blocked: %s; fastest: %s\n",
              alt_fewest_misses ? "yes" : "NO", alt_fastest ? "yes" : "NO");
  return 0;
}

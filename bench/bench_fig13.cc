// Figure 13 (paper §7.3.3): parameter sensitivity — layout template depth vs
// budget. Compares two-level layout-tiling templates at the base budget,
// two-level at 1.5x budget, and one-level at the base budget (the default).
//
// Claims to reproduce: with the same budget, one-level templates beat
// two-level (bigger space, same budget); giving two-level more budget closes
// most of the gap (the space is a superset).

#include "bench/harness.h"

namespace alt {

double RunSetting(const graph::Graph& g, const sim::Machine& machine, bool two_level,
                  int budget) {
  // Direct tuner invocation so the seeded layout candidates can be disabled:
  // this experiment isolates the template-space-size vs budget tradeoff.
  autotune::TuningOptions options;
  options.total_budget = budget;
  options.two_level_templates = two_level;
  options.seed = 23;
  options.seed_layout_candidates = false;
  options.method = autotune::SearchMethod::kPpoPretrained;
  options.pretrained_agent = &core::SharedPretrainedAgent(machine);
  autotune::JointTuner tuner(g, machine, options);
  auto result = tuner.Tune();
  if (!result.ok()) {
    std::fprintf(stderr, "  failed: %s\n", result.status().ToString().c_str());
    return -1.0;
  }
  return result->perf.latency_us;
}

void RunWorkload(const std::string& name, const graph::Graph& g, const sim::Machine& machine) {
  const int kBudget = 240;  // paper: 20,000 (and 30,000 for the bigger run)
  double two_base = RunSetting(g, machine, true, kBudget);
  double two_more = RunSetting(g, machine, true, kBudget * 3 / 2);
  double one_base = RunSetting(g, machine, false, kBudget);
  std::printf("%-14s | two-level(1x) %9.2f ms | two-level(1.5x) %9.2f ms | "
              "one-level(1x) %9.2f ms | one-level speedup vs two-level(1x): %.2fx\n",
              (name + "-" + machine.name).c_str(), two_base / 1e3, two_more / 1e3,
              one_base / 1e3, two_base / one_base);
  std::fflush(stdout);
}

}  // namespace alt

int main() {
  alt::bench::PrintHeader(
      "Fig. 13: layout template depth vs budget (paper: one-level at the base\n"
      "budget is ~15% faster than two-level; +50% budget recovers ~6%)");
  alt::RunWorkload("R18-b1", alt::graph::BuildResNet18(1), alt::sim::Machine::IntelCpu());
  alt::RunWorkload("MV2-b1", alt::graph::BuildMobileNetV2(1), alt::sim::Machine::IntelCpu());
  alt::RunWorkload("BB-b1", alt::graph::BuildBert(1, 768, 12), alt::sim::Machine::IntelCpu());
  alt::RunWorkload("R18-b1", alt::graph::BuildResNet18(1), alt::sim::Machine::NvidiaGpu());
  alt::RunWorkload("R3D-b1", alt::graph::BuildResNet3d18(1), alt::sim::Machine::NvidiaGpu());
  return 0;
}

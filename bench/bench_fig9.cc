// Figure 9 (paper §7.1): single-operator performance of nine layout-
// sensitive operators (C2D, GRP, DIL, DEP, C3D, C1D, GMM, T2D, T3D) under
// Vendor, AutoTVM, FlexTensor, Ansor and ALT on three machine profiles.
//
// Claims to reproduce: ALT wins on average everywhere; the margin is largest
// on memory-bound operators (DIL, DEP); AutoTVM/FlexTensor trail Ansor.

#include <cmath>
#include <cstdio>
#include <map>

#include "bench/harness.h"

namespace alt {

struct OpCase {
  std::string label;
  graph::Graph g;
};

std::vector<OpCase> MakeOpCases() {
  using graph::ConvConfig;
  using graph::OpKind;
  std::vector<OpCase> cases;
  auto add_conv = [&](const char* label, OpKind kind, ConvConfig cfg) {
    cases.push_back({label, graph::BuildSingleConv(kind, cfg)});
  };

  // Two configurations per operator class (the paper samples ten random
  // configurations; we keep a representative small/large pair per class).
  {
    ConvConfig cfg;
    cfg.in_channels = 64;
    cfg.out_channels = 64;
    cfg.spatial[0] = cfg.spatial[1] = 56;
    add_conv("C2D/a", OpKind::kConv2d, cfg);
    cfg.in_channels = 256;
    cfg.out_channels = 256;
    cfg.spatial[0] = cfg.spatial[1] = 14;
    add_conv("C2D/b", OpKind::kConv2d, cfg);
  }
  {
    ConvConfig cfg;
    cfg.in_channels = 64;
    cfg.out_channels = 128;
    cfg.groups = 4;
    cfg.spatial[0] = cfg.spatial[1] = 28;
    add_conv("GRP/a", OpKind::kConv2d, cfg);
    cfg.in_channels = 128;
    cfg.groups = 8;
    add_conv("GRP/b", OpKind::kConv2d, cfg);
  }
  {
    ConvConfig cfg;
    cfg.in_channels = 64;
    cfg.out_channels = 64;
    cfg.dilation = 2;
    cfg.spatial[0] = cfg.spatial[1] = 32;
    cfg.pad = 0;
    add_conv("DIL/a", OpKind::kConv2d, cfg);
    cfg.in_channels = 128;
    cfg.out_channels = 128;
    cfg.spatial[0] = cfg.spatial[1] = 16;
    add_conv("DIL/b", OpKind::kConv2d, cfg);
  }
  {
    ConvConfig cfg;
    cfg.in_channels = 96;
    cfg.out_channels = 96;
    cfg.groups = 96;
    cfg.spatial[0] = cfg.spatial[1] = 56;
    add_conv("DEP/a", OpKind::kConv2d, cfg);
    cfg.in_channels = 384;
    cfg.out_channels = 384;
    cfg.groups = 384;
    cfg.spatial[0] = cfg.spatial[1] = 14;
    add_conv("DEP/b", OpKind::kConv2d, cfg);
  }
  {
    ConvConfig cfg;
    cfg.in_channels = 16;
    cfg.out_channels = 32;
    cfg.spatial[0] = cfg.spatial[1] = 14;
    cfg.spatial[2] = 8;
    add_conv("C3D/a", OpKind::kConv3d, cfg);
    cfg.in_channels = 64;
    cfg.out_channels = 64;
    cfg.spatial[0] = cfg.spatial[1] = 7;
    cfg.spatial[2] = 4;
    add_conv("C3D/b", OpKind::kConv3d, cfg);
  }
  {
    ConvConfig cfg;
    cfg.in_channels = 64;
    cfg.out_channels = 128;
    cfg.spatial[0] = 128;
    cfg.kernel[0] = 3;
    add_conv("C1D/a", OpKind::kConv1d, cfg);
    cfg.in_channels = 512;
    cfg.out_channels = 512;
    cfg.spatial[0] = 32;
    add_conv("C1D/b", OpKind::kConv1d, cfg);
  }
  cases.push_back({"GMM/a", graph::BuildSingleMatmul(128, 512, 512)});
  cases.push_back({"GMM/b", graph::BuildSingleMatmul(512, 512, 2048)});
  {
    ConvConfig cfg;
    cfg.in_channels = 64;
    cfg.out_channels = 32;
    cfg.spatial[0] = cfg.spatial[1] = 14;
    cfg.stride = 2;
    cfg.pad = 1;
    add_conv("T2D/a", OpKind::kTransposedConv2d, cfg);
    cfg.in_channels = 128;
    cfg.out_channels = 64;
    cfg.spatial[0] = cfg.spatial[1] = 7;
    add_conv("T2D/b", OpKind::kTransposedConv2d, cfg);
  }
  {
    ConvConfig cfg;
    cfg.in_channels = 32;
    cfg.out_channels = 16;
    cfg.spatial[0] = cfg.spatial[1] = 7;
    cfg.spatial[2] = 4;
    cfg.stride = 2;
    cfg.pad = 1;
    add_conv("T3D/a", OpKind::kTransposedConv3d, cfg);
    cfg.in_channels = 64;
    cfg.out_channels = 32;
    add_conv("T3D/b", OpKind::kTransposedConv3d, cfg);
  }
  return cases;
}

void RunMachine(const sim::Machine& machine) {
  bench::PrintHeader("Fig. 9: single-operator performance on " + machine.name);
  const std::vector<std::string> methods = {"Vendor", "AutoTVM", "FlexTensor", "Ansor", "ALT"};
  const int kBudget = 120;  // paper: 1000

  std::vector<std::vector<bench::MethodResult>> rows;
  std::map<std::string, std::vector<std::vector<bench::MethodResult>>> per_class;
  for (const auto& c : MakeOpCases()) {
    std::vector<bench::MethodResult> row;
    for (const auto& m : methods) {
      row.push_back(bench::RunMethod(m, c.g, machine, kBudget, 13));
    }
    bench::PrintRow(c.label, row);
    rows.push_back(row);
    per_class[c.label.substr(0, 3)].push_back(row);
  }

  std::printf("\nper-class geomean speedup of ALT over Ansor:\n  ");
  for (const auto& [cls, cls_rows] : per_class) {
    std::printf("%s %.2fx  ", cls.c_str(), bench::GeoMeanSpeedup(cls_rows, "ALT", "Ansor"));
  }
  std::printf("\noverall geomean speedups of ALT: vs Vendor %.2fx, vs AutoTVM %.2fx, "
              "vs FlexTensor %.2fx, vs Ansor %.2fx\n",
              bench::GeoMeanSpeedup(rows, "ALT", "Vendor"),
              bench::GeoMeanSpeedup(rows, "ALT", "AutoTVM"),
              bench::GeoMeanSpeedup(rows, "ALT", "FlexTensor"),
              bench::GeoMeanSpeedup(rows, "ALT", "Ansor"));
  std::printf("(paper intel-cpu: 2.1x / 9.9x / 9.8x / 1.6x; gpu & arm: ~1.4-1.5x vs Ansor)\n");
}

}  // namespace alt

int main() {
  alt::RunMachine(alt::sim::Machine::IntelCpu());
  alt::RunMachine(alt::sim::Machine::NvidiaGpu());
  alt::RunMachine(alt::sim::Machine::ArmCpu());
  return 0;
}

// Table 2 (paper §5.1, observation 2): profiled L1 data-cache misses of
// loading a 512×{4,16,64,256} float block when the block is stored
// contiguously (layout tiling) vs row-by-row with a large row stride (loop
// tiling), on a Cortex-A76-like core with a next-4-line prefetcher.
//
// Claim to reproduce: layout tiling's misses track the paper's prefetch
// prediction (#lines / 4) and are far below loop tiling's.

#include <cstdio>

#include "src/ir/stmt.h"
#include "src/sim/cache.h"
#include "src/sim/machine.h"

namespace alt {

ir::Program BlockLoadProgram(int64_t rows, int64_t cols, int64_t row_stride) {
  ir::Program program;
  program.name = "block_load";
  ir::BufferDecl src;
  src.tensor.id = 0;
  src.tensor.name = "src";
  src.tensor.shape = {rows * row_stride};
  src.role = ir::BufferRole::kInput;
  ir::BufferDecl dst;
  dst.tensor.id = 1;
  dst.tensor.name = "dst";
  dst.tensor.shape = {1};
  dst.role = ir::BufferRole::kOutput;
  program.buffers = {src, dst};
  ir::Expr r = ir::MakeVar("r");
  ir::Expr c = ir::MakeVar("c");
  ir::Stmt store = ir::MakeStore(1, {ir::Const(0)},
                                 ir::Load(0, {ir::Add(ir::Mul(r, row_stride), c)}),
                                 ir::StoreMode::kAccumulate);
  program.root = ir::MakeFor(r, rows, ir::ForKind::kSerial,
                             ir::MakeFor(c, cols, ir::ForKind::kSerial, store));
  return program;
}

}  // namespace alt

int main() {
  const auto& machine = alt::sim::Machine::CortexA76();
  std::printf("Table 2: L1 data-cache misses, 512 x C block load (Cortex-A76-like,\n");
  std::printf("64B lines, next-%d-line stream prefetcher)\n\n", machine.prefetch_lines);
  std::printf("%-10s | %-22s | %-22s | %s\n", "Tile Size", "#L1-mis layout tiling",
              "#L1-mis loop tiling", "paper (1stF pred / 1stF / 2ndF)");
  std::printf("-----------------------------------------------------------------------------\n");
  struct PaperRow {
    int cols;
    const char* paper;
  };
  const PaperRow rows[] = {{4, "32 / 32 / 208"},
                           {16, "128 / 96 / 262"},
                           {64, "512 / 501 / 785"},
                           {256, "2048 / 2037 / 2952"}};
  for (const auto& row : rows) {
    auto contiguous = alt::BlockLoadProgram(512, row.cols, row.cols);
    auto strided = alt::BlockLoadProgram(512, row.cols, 4096);
    auto sc = alt::sim::SimulateProgramTrace(contiguous, machine);
    auto ss = alt::sim::SimulateProgramTrace(strided, machine);
    std::printf("512 x %-4d | %-22lu | %-22lu | %s\n", row.cols,
                static_cast<unsigned long>(sc.levels[0].misses),
                static_cast<unsigned long>(ss.levels[0].misses), row.paper);
  }
  std::printf("\n-> layout tiling is preferable to loop tiling for cache utilization\n");
  std::printf("   via hardware prefetching (paper section 5.1).\n");
  return 0;
}

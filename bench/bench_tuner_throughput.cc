// Measurement-engine throughput: wall-clock of a fixed-budget tune_conv2d
// run at measure_threads = 1 / 2 / 4 (cache on and off), verifying along the
// way that every configuration lands on the identical tuned result — the
// determinism guarantee that makes the parallelism safe to enable.
//
//   ./build/bench/bench_tuner_throughput
//
// On a 4+ core host the 4-thread row should be >= 2x the 1-thread row; on
// smaller hosts the speedup degrades gracefully (the engine never slows a
// run down: candidates are claimed dynamically and the caller participates).

#include <chrono>
#include <cstdio>

#include "bench/harness.h"

namespace alt {

struct RunResult {
  double wall_ms = 0.0;
  double latency_us = 0.0;
  int measurements = 0;
  autotune::MeasureStats stats;
};

RunResult RunTune(const graph::Graph& g, const sim::Machine& machine, int threads,
                  bool cache, const std::string& trace_path = "") {
  core::AltOptions options;
  options.budget = 300;
  options.seed = 11;
  options.method = autotune::SearchMethod::kPpoPretrained;
  options.measure.threads = threads;
  options.measure.cache = cache;
  options.trace.path = trace_path;
  auto start = std::chrono::steady_clock::now();
  auto compiled = core::Compile(g, machine, options);
  auto wall =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  RunResult r;
  r.wall_ms = wall;
  if (!compiled.ok()) {
    std::fprintf(stderr, "tune failed: %s\n", compiled.status().ToString().c_str());
    return r;
  }
  r.latency_us = compiled->perf.latency_us;
  r.measurements = compiled->measurements_used;
  r.stats = compiled->measure_stats;
  return r;
}

int Main() {
  bench::PrintHeader(
      "Tuner throughput: parallel measurement engine on tune_conv2d (budget 300)");

  graph::Graph g = graph::BuildResNetFirstLayer(1);
  const auto& machine = sim::Machine::IntelCpu();
  std::printf("workload: %s on %s\n\n", g.name().c_str(), machine.name.c_str());
  std::printf("%-10s %-7s %10s %12s %10s %8s %8s\n", "threads", "cache", "wall_ms",
              "tuned_us", "measured", "hits", "speedup");

  for (bool cache : {false, true}) {
    RunResult base;
    for (int threads : {1, 2, 4}) {
      RunResult r = RunTune(g, machine, threads, cache);
      if (threads == 1) {
        base = r;
      }
      std::printf("%-10d %-7s %10.1f %12.1f %10lld %8lld %7.2fx\n", threads,
                  cache ? "on" : "off", r.wall_ms, r.latency_us,
                  static_cast<long long>(r.stats.measured),
                  static_cast<long long>(r.stats.cache_hits),
                  r.wall_ms > 0 ? base.wall_ms / r.wall_ms : 0.0);
      // Determinism guarantee: identical tuned result at every thread count.
      if (r.latency_us != base.latency_us || r.measurements != base.measurements) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: threads=%d cache=%d diverged "
                     "(%.3f us / %d meas vs %.3f us / %d meas)\n",
                     threads, cache ? 1 : 0, r.latency_us, r.measurements, base.latency_us,
                     base.measurements);
        return 1;
      }
    }
    std::printf("\n");
  }
  std::printf(
      "note: rows within a cache setting must agree exactly on tuned_us; the\n"
      "speedup column is wall-clock relative to the 1-thread row.\n");

  // Wall-clock repeatability at the default configuration: single runs above
  // are fine for the speedup table, but overhead claims (e.g. the <1% budget
  // for disabled tracing) need percentiles, not a lone sample.
  constexpr int kRepeats = 5;
  std::vector<double> walls;
  for (int rep = 0; rep < kRepeats; ++rep) {
    walls.push_back(RunTune(g, machine, /*threads=*/4, /*cache=*/true).wall_ms);
  }
  bench::SampleStats stats = bench::Summarize(walls);
  std::printf(
      "\nrepeatability (threads=4, cache=on, %d runs): wall_ms p50=%.1f p95=%.1f "
      "min=%.1f max=%.1f\n",
      stats.n, stats.p50, stats.p95, stats.min, stats.max);
  // One extra traced run when ALT_TRACE_DIR is set — kept out of the timed
  // rows above so the table always reports the tracing-disabled numbers.
  const std::string trace_dir = bench::TraceDir();
  if (!trace_dir.empty()) {
    RunTune(g, machine, /*threads=*/4, /*cache=*/true,
            trace_dir + "/tuner_throughput_trace.json");
    std::printf("telemetry artifacts (ALT_TRACE_DIR) written to %s\n", trace_dir.c_str());
  }
  return 0;
}

}  // namespace alt

int main() { return alt::Main(); }

// Measurement-engine throughput: wall-clock of a fixed-budget tune_conv2d
// run at measure_threads = 1 / 2 / 4 (cache on and off), verifying along the
// way that every configuration lands on the identical tuned result — the
// determinism guarantee that makes the parallelism safe to enable.
//
//   ./build/bench/bench_tuner_throughput
//
// On a 4+ core host the 4-thread row should be >= 2x the 1-thread row; on
// smaller hosts the speedup degrades gracefully (the engine never slows a
// run down: candidates are claimed dynamically and the caller participates).

#include <chrono>
#include <cstdio>

#include "bench/harness.h"

namespace alt {

struct RunResult {
  double wall_ms = 0.0;
  double latency_us = 0.0;
  int measurements = 0;
  autotune::MeasureStats stats;
  // Per-run deltas of the layout-space counters (layout/relation.h dedup).
  int64_t enumerated = 0;
  int64_t deduped = 0;
};

RunResult RunTune(const graph::Graph& g, const sim::Machine& machine, int threads,
                  bool cache, const std::string& trace_path = "", bool dedup = true,
                  int budget = 300) {
  core::AltOptions options;
  options.budget = budget;
  options.seed = 11;
  options.method = autotune::SearchMethod::kPpoPretrained;
  options.measure.threads = threads;
  options.measure.cache = cache;
  options.layout_relation_dedup = dedup;
  options.trace.path = trace_path;
  auto start = std::chrono::steady_clock::now();
  auto compiled = core::Compile(g, machine, options);
  auto wall =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();
  RunResult r;
  r.wall_ms = wall;
  if (!compiled.ok()) {
    std::fprintf(stderr, "tune failed: %s\n", compiled.status().ToString().c_str());
    return r;
  }
  r.latency_us = compiled->perf.latency_us;
  r.measurements = compiled->measurements_used;
  r.stats = compiled->measure_stats;
  r.enumerated = compiled->metrics.counter("layout.candidates_enumerated");
  r.deduped = compiled->metrics.counter("layout.relation_dedup");
  return r;
}

int Main() {
  bench::PrintHeader(
      "Tuner throughput: parallel measurement engine on tune_conv2d (budget 300)");

  graph::Graph g = graph::BuildResNetFirstLayer(1);
  const auto& machine = sim::Machine::IntelCpu();
  std::printf("workload: %s on %s\n\n", g.name().c_str(), machine.name.c_str());
  std::printf("%-10s %-7s %10s %12s %10s %8s %8s\n", "threads", "cache", "wall_ms",
              "tuned_us", "measured", "hits", "speedup");

  for (bool cache : {false, true}) {
    RunResult base;
    for (int threads : {1, 2, 4}) {
      RunResult r = RunTune(g, machine, threads, cache);
      if (threads == 1) {
        base = r;
      }
      std::printf("%-10d %-7s %10.1f %12.1f %10lld %8lld %7.2fx\n", threads,
                  cache ? "on" : "off", r.wall_ms, r.latency_us,
                  static_cast<long long>(r.stats.measured),
                  static_cast<long long>(r.stats.cache_hits),
                  r.wall_ms > 0 ? base.wall_ms / r.wall_ms : 0.0);
      // Determinism guarantee: identical tuned result at every thread count.
      if (r.latency_us != base.latency_us || r.measurements != base.measurements) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: threads=%d cache=%d diverged "
                     "(%.3f us / %d meas vs %.3f us / %d meas)\n",
                     threads, cache ? 1 : 0, r.latency_us, r.measurements, base.latency_us,
                     base.measurements);
        return 1;
      }
    }
    std::printf("\n");
  }
  std::printf(
      "note: rows within a cache setting must agree exactly on tuned_us; the\n"
      "speedup column is wall-clock relative to the 1-thread row.\n");

  // Layout-relation dedup (layout/relation.h): candidates whose relation
  // fingerprints match an already-evaluated triple replay its result instead
  // of spending measurement budget. The comparison reports, per workload,
  // how many candidates the search enumerated, how many were actually
  // measured (enumerated - deduped), and the tuned latency — dedup must
  // measure fewer candidates than it enumerates while landing on an
  // identical-or-better result than the dedup-off run.
  bench::PrintHeader("Layout relation dedup: candidates measured vs enumerated");
  struct DedupRow {
    std::string workload;
    bool dedup;
    RunResult r;
  };
  std::vector<DedupRow> dedup_rows;
  {
    // Small canonical shapes: the divisor grids are compact enough that the
    // agent's quantized proposals revisit fingerprint-equal layouts within
    // the budget, so the dedup path demonstrably engages (deterministically,
    // given the fixed seed).
    graph::ConvConfig small_conv;
    small_conv.in_channels = 16;
    small_conv.out_channels = 16;
    small_conv.spatial[0] = small_conv.spatial[1] = 8;
    std::vector<std::pair<std::string, graph::Graph>> workloads;
    workloads.emplace_back("conv2d/16ch-8x8",
                           graph::BuildSingleConv(graph::OpKind::kConv2d, small_conv));
    workloads.emplace_back("gmm/16x16x16", graph::BuildSingleMatmul(16, 16, 16));
    std::printf("%-20s %-7s %11s %9s %9s %12s\n", "workload", "dedup", "enumerated",
                "deduped", "measured", "tuned_us");
    for (const auto& [name, wg] : workloads) {
      RunResult off, on;
      for (bool dedup : {false, true}) {
        RunResult r = RunTune(wg, machine, /*threads=*/4, /*cache=*/true, "", dedup,
                              /*budget=*/400);
        (dedup ? on : off) = r;
        std::printf("%-20s %-7s %11lld %9lld %9lld %12.1f\n", name.c_str(),
                    dedup ? "on" : "off", static_cast<long long>(r.enumerated),
                    static_cast<long long>(r.deduped),
                    static_cast<long long>(r.enumerated - r.deduped), r.latency_us);
        dedup_rows.push_back({name, dedup, r});
      }
      if (on.deduped <= 0) {
        std::fprintf(stderr, "DEDUP INEFFECTIVE: %s collapsed no candidates\n",
                     name.c_str());
        return 1;
      }
      if (on.latency_us > off.latency_us) {
        std::fprintf(stderr,
                     "DEDUP REGRESSION: %s tuned %.3f us with dedup vs %.3f us without\n",
                     name.c_str(), on.latency_us, off.latency_us);
        return 1;
      }
    }
    std::printf(
        "\nnote: 'measured' = enumerated - deduped; the dedup-on row must reach an\n"
        "identical-or-better tuned latency while measuring fewer of its candidates.\n");
  }

  // Wall-clock repeatability at the default configuration: single runs above
  // are fine for the speedup table, but overhead claims (e.g. the <1% budget
  // for disabled tracing) need percentiles, not a lone sample.
  constexpr int kRepeats = 5;
  std::vector<double> walls;
  for (int rep = 0; rep < kRepeats; ++rep) {
    walls.push_back(RunTune(g, machine, /*threads=*/4, /*cache=*/true).wall_ms);
  }
  bench::SampleStats stats = bench::Summarize(walls);
  std::printf(
      "\nrepeatability (threads=4, cache=on, %d runs): wall_ms p50=%.1f p95=%.1f "
      "min=%.1f max=%.1f\n",
      stats.n, stats.p50, stats.p95, stats.min, stats.max);
  // One extra traced run when ALT_TRACE_DIR is set — kept out of the timed
  // rows above so the table always reports the tracing-disabled numbers.
  const std::string trace_dir = bench::TraceDir();
  if (!trace_dir.empty()) {
    RunTune(g, machine, /*threads=*/4, /*cache=*/true,
            trace_dir + "/tuner_throughput_trace.json");
    std::string json = "{\n  \"dedup_comparison\": [\n";
    for (size_t i = 0; i < dedup_rows.size(); ++i) {
      const auto& row = dedup_rows[i];
      char buf[320];
      std::snprintf(buf, sizeof(buf),
                    "    {\"workload\": \"%s\", \"dedup\": %s, \"enumerated\": %lld, "
                    "\"deduped\": %lld, \"measured\": %lld, \"tuned_us\": %.3f}%s\n",
                    row.workload.c_str(), row.dedup ? "true" : "false",
                    static_cast<long long>(row.r.enumerated),
                    static_cast<long long>(row.r.deduped),
                    static_cast<long long>(row.r.enumerated - row.r.deduped),
                    row.r.latency_us, i + 1 < dedup_rows.size() ? "," : "");
      json += buf;
    }
    json += "  ]\n}\n";
    Status ws = WriteFile(trace_dir + "/tuner_throughput_metrics.json", json);
    if (!ws.ok()) {
      std::fprintf(stderr, "metrics artifact not written: %s\n", ws.ToString().c_str());
    }
    std::printf("telemetry artifacts (ALT_TRACE_DIR) written to %s\n", trace_dir.c_str());
  }
  return 0;
}

}  // namespace alt

int main() { return alt::Main(); }

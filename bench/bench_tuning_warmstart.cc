// Tuning-database warm-start economics.
//
//   ./build/bench/bench_tuning_warmstart
//
// Three questions, answered on the same fixed-seed workload:
//
//   1. WRITE-THROUGH OVERHEAD — how much wall-clock does recording every
//      fresh measurement into the tuning database add to a cold run?
//      (Target: noise — one short CRC-framed append per measurement.)
//   2. WARM-START SPEED — how fast is re-running the tuner with every
//      measurement answered from the database instead of executed?
//   3. BIT-IDENTITY — the warm run must land on the identical tuned network
//      with ZERO fresh measurements. Exits non-zero if it does not: warm
//      start is a pure accelerator, never a different compiler.
//
// With ALT_TRACE_DIR set, writes warmstart_metrics.json there (the warm
// run's metrics snapshot — db_hits, measured, requested) for CI validation.

#include <chrono>
#include <cstdio>

#include "bench/harness.h"
#include "src/core/alt.h"
#include "src/support/fileio.h"

namespace alt {

namespace {

double MinOf(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

core::AltOptions BenchOptions() {
  core::AltOptions options;
  options.budget = 300;
  options.seed = 11;
  options.method = autotune::SearchMethod::kPpoPretrained;
  return options;
}

template <typename Fn>
double TimeMs(const Fn& fn) {
  auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int Main() {
  bench::PrintHeader("Tuning database: write-through overhead and warm-start speed");

  graph::Graph g = graph::BuildResNetFirstLayer(1);
  const auto& machine = sim::Machine::IntelCpu();
  const std::string path = "/tmp/alt_bench_tuning_warmstart.altdb";
  core::AltOptions plain_options = BenchOptions();
  core::AltOptions db_options = BenchOptions();
  db_options.measure.database = path;
  std::printf("workload: %s on %s, budget %d\n\n", g.name().c_str(), machine.name.c_str(),
              plain_options.budget);

  const int kReps = 5;
  std::vector<double> plain_ms, cold_ms, warm_ms;
  StatusOr<autotune::CompiledNetwork> plain = Status::Ok();
  StatusOr<autotune::CompiledNetwork> cold = Status::Ok();
  StatusOr<autotune::CompiledNetwork> warm = Status::Ok();
  for (int rep = 0; rep < kReps; ++rep) {
    plain_ms.push_back(TimeMs([&] { plain = core::Compile(g, machine, plain_options); }));
    RemoveFile(path);
    cold_ms.push_back(TimeMs([&] { cold = core::Compile(g, machine, db_options); }));
    // The database is now fully populated: the warm run must answer every
    // measurement from disk.
    warm_ms.push_back(TimeMs([&] { warm = core::Compile(g, machine, db_options); }));
  }
  if (!plain.ok() || !cold.ok() || !warm.ok()) {
    std::fprintf(stderr, "tuning failed: %s\n",
                 (!plain.ok()  ? plain.status()
                  : !cold.ok() ? cold.status()
                               : warm.status())
                     .ToString()
                     .c_str());
    return 1;
  }

  const double plain_med = MinOf(plain_ms);
  const double cold_med = MinOf(cold_ms);
  const double warm_med = MinOf(warm_ms);
  const double overhead_pct = (cold_med / plain_med - 1.0) * 100.0;

  std::printf("%-22s %10s %12s %10s %10s\n", "mode", "wall_ms", "tuned_us", "measured",
              "db_hits");
  std::printf("%-22s %10.1f %12.1f %10lld %10lld\n", "plain (no database)", plain_med,
              plain->perf.latency_us, static_cast<long long>(plain->measure_stats.measured),
              static_cast<long long>(plain->measure_stats.db_hits));
  std::printf("%-22s %10.1f %12.1f %10lld %10lld\n", "cold (write-through)", cold_med,
              cold->perf.latency_us, static_cast<long long>(cold->measure_stats.measured),
              static_cast<long long>(cold->measure_stats.db_hits));
  std::printf("%-22s %10.1f %12.1f %10lld %10lld\n", "warm (db answers)", warm_med,
              warm->perf.latency_us, static_cast<long long>(warm->measure_stats.measured),
              static_cast<long long>(warm->measure_stats.db_hits));
  std::printf("\nwrite-through overhead: %+.2f%% (min of %d)   warm-start speedup: %.2fx\n",
              overhead_pct, kReps, warm_med > 0 ? plain_med / warm_med : 0.0);

  // Bit-identity gate: all three runs are the same trajectory, and the warm
  // run measured nothing.
  bool same = plain->perf.latency_us == cold->perf.latency_us &&
              plain->perf.latency_us == warm->perf.latency_us &&
              plain->measurements_used == cold->measurements_used &&
              plain->measurements_used == warm->measurements_used &&
              plain->history_us.size() == warm->history_us.size();
  if (!same) {
    std::fprintf(stderr,
                 "DETERMINISM VIOLATION: plain %.3f us/%d, cold %.3f us/%d, "
                 "warm %.3f us/%d\n",
                 plain->perf.latency_us, plain->measurements_used, cold->perf.latency_us,
                 cold->measurements_used, warm->perf.latency_us, warm->measurements_used);
    return 1;
  }
  if (warm->measure_stats.measured != 0) {
    std::fprintf(stderr, "warm start re-measured %lld candidates; expected zero\n",
                 static_cast<long long>(warm->measure_stats.measured));
    return 1;
  }
  if (warm->measure_stats.db_hits <= 0) {
    std::fprintf(stderr, "warm start reported no database hits\n");
    return 1;
  }
  std::printf("bit-identity: plain == cold == warm (%.1f us, %d measurements, %lld db hits)\n",
              plain->perf.latency_us, plain->measurements_used,
              static_cast<long long>(warm->measure_stats.db_hits));

  const std::string trace_dir = bench::TraceDir();
  if (!trace_dir.empty()) {
    const std::string out = trace_dir + "/warmstart_metrics.json";
    Status ws = WriteFile(out, warm->metrics.ToJson());
    if (!ws.ok()) {
      std::fprintf(stderr, "metrics artifact not written: %s\n", ws.ToString().c_str());
    } else {
      std::printf("metrics artifact written to %s\n", out.c_str());
    }
  }
  RemoveFile(path);
  return 0;
}

}  // namespace alt

int main() { return alt::Main(); }

// Simulator tests: the analytic model and the trace-driven cache simulator
// must reproduce the qualitative effects the paper's layout tuning relies on.

#include <gtest/gtest.h>

#include "src/autotune/layout_templates.h"
#include "src/graph/layout_assignment.h"
#include "src/graph/networks.h"
#include "src/loop/lowering.h"
#include "src/sim/cache.h"
#include "src/sim/machine.h"
#include "src/sim/perf_model.h"

namespace alt {
namespace {

using graph::Graph;
using graph::LayoutAssignment;
using graph::OpKind;

// Lower a conv under a layout and a reasonable blocked schedule, return perf.
sim::PerfCounters EstimateConv(const LayoutAssignment& la, Graph& g, int conv_out,
                               const sim::Machine& machine) {
  auto groups = loop::PartitionGraph(g, la, true);
  sim::PerfCounters total;
  for (const auto& group : groups) {
    auto sig = loop::GroupSignature(g, la, group);
    EXPECT_TRUE(sig.ok());
    // Simple generic schedule: parallelize dim0, vectorize last dim when its
    // extent is divisible by the lanes.
    loop::LoopSchedule sched = loop::LoopSchedule::Naive(sig->spatial_extents,
                                                         sig->reduction_extents);
    if (!sched.spatial.empty()) {
      auto& last = sched.spatial.back();
      int64_t e = sig->spatial_extents.back();
      int64_t lanes = machine.vector_lanes;
      if (e % lanes == 0) {
        last.outer = e / lanes;
        last.vec = lanes;
      }
    }
    auto program = loop::LowerGroup(g, la, group, sched);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    total += sim::EstimateProgram(*program, machine);
  }
  return total;
}

TEST(AnalyticModel, ChannelsLastBeatsCanonicalOnCpuConv) {
  // Observation 1 of §5.1: channels-last enables SIMD + reuse; on CPU NHWO
  // should beat NOHW for a typical conv with many output channels.
  auto build = [] {
    Graph g("conv");
    int x = g.AddInput("x", {1, 32, 30, 30});
    graph::PadAttrs pad;
    pad.before = {0, 0, 1, 1};
    pad.after = {0, 0, 1, 1};
    int p = g.AddPad(x, pad, "pad");
    int w = g.AddConstant("w", {64, 32, 3, 3});
    graph::ConvAttrs attrs;
    int c = g.AddConv(OpKind::kConv2d, p, w, attrs, "conv");
    return std::make_pair(std::move(g), c);
  };
  const auto& machine = sim::Machine::IntelCpu();

  auto [g_nohw, c0] = build();
  LayoutAssignment nohw;
  double lat_nohw = EstimateConv(nohw, g_nohw, c0, machine).latency_us;

  auto [g_nhwo, c1] = build();
  LayoutAssignment nhwo;
  nhwo.Set(c1, autotune::ChannelsLast(2));
  nhwo.Set(g_nhwo.op(g_nhwo.ProducerOf(c1)).inputs[0], autotune::ChannelsLast(2));
  double lat_nhwo = EstimateConv(nhwo, g_nhwo, c1, machine).latency_us;

  EXPECT_LT(lat_nhwo, lat_nohw) << "NHWO should vectorize the channel dim";
}

TEST(AnalyticModel, LatencyScalesWithWork) {
  Graph small = graph::BuildSingleMatmul(64, 64, 64);
  Graph big = graph::BuildSingleMatmul(256, 256, 256);
  LayoutAssignment la;
  const auto& machine = sim::Machine::IntelCpu();
  auto lower = [&](Graph& g) {
    auto net = loop::LowerNetworkNaive(g, la, true);
    EXPECT_TRUE(net.ok());
    return sim::EstimatePrograms(net->programs, machine);
  };
  auto s = lower(small);
  auto b = lower(big);
  EXPECT_GT(b.latency_us, s.latency_us);
  EXPECT_NEAR(b.flops / s.flops, 64.0, 1.0);  // 4^3
}

TEST(AnalyticModel, VectorizationReducesInstructions) {
  Graph g = graph::BuildSingleMatmul(64, 64, 64);
  LayoutAssignment la;
  auto groups = loop::PartitionGraph(g, la, true);
  ASSERT_EQ(groups.size(), 1u);
  auto sig = loop::GroupSignature(g, la, groups[0]);
  ASSERT_TRUE(sig.ok());

  loop::LoopSchedule naive = loop::LoopSchedule::Naive(sig->spatial_extents,
                                                       sig->reduction_extents);
  loop::LoopSchedule vec = naive;
  vec.spatial[1].outer = 4;
  vec.spatial[1].vec = 16;

  const auto& machine = sim::Machine::IntelCpu();
  auto p_naive = loop::LowerGroup(g, la, groups[0], naive);
  auto p_vec = loop::LowerGroup(g, la, groups[0], vec);
  ASSERT_TRUE(p_naive.ok() && p_vec.ok());
  auto e_naive = sim::EstimateProgram(*p_naive, machine);
  auto e_vec = sim::EstimateProgram(*p_vec, machine);
  EXPECT_LT(e_vec.instructions, e_naive.instructions / 4);
  EXPECT_LT(e_vec.latency_us, e_naive.latency_us);
}

TEST(AnalyticModel, ParallelismHelps) {
  Graph g = graph::BuildSingleMatmul(512, 128, 128);
  LayoutAssignment la;
  auto groups = loop::PartitionGraph(g, la, true);
  auto sig = loop::GroupSignature(g, la, groups[0]);
  ASSERT_TRUE(sig.ok());
  loop::LoopSchedule serial = loop::LoopSchedule::Naive(sig->spatial_extents,
                                                        sig->reduction_extents);
  serial.parallel_axes = 0;
  loop::LoopSchedule parallel = serial;
  parallel.parallel_axes = 1;
  const auto& machine = sim::Machine::IntelCpu();
  auto ps = loop::LowerGroup(g, la, groups[0], serial);
  auto pp = loop::LowerGroup(g, la, groups[0], parallel);
  ASSERT_TRUE(ps.ok() && pp.ok());
  EXPECT_LT(sim::EstimateProgram(*pp, machine).latency_us,
            sim::EstimateProgram(*ps, machine).latency_us / 4);
}

// ---------------------------------------------------------------------------
// Trace-driven cache simulation (Table 2 behaviour).
// ---------------------------------------------------------------------------

// Builds the Table 2 micro-programs: load a rows×cols block either from
// contiguous storage (layout tiling) or strided rows (loop tiling).
ir::Program BlockLoadProgram(int64_t rows, int64_t cols, int64_t row_stride) {
  ir::Program program;
  program.name = "block_load";
  ir::BufferDecl src;
  src.tensor.id = 0;
  src.tensor.name = "src";
  src.tensor.shape = {rows * row_stride};
  src.role = ir::BufferRole::kInput;
  ir::BufferDecl dst;
  dst.tensor.id = 1;
  dst.tensor.name = "dst";
  dst.tensor.shape = {1};
  dst.role = ir::BufferRole::kOutput;
  program.buffers = {src, dst};

  ir::Expr r = ir::MakeVar("r");
  ir::Expr c = ir::MakeVar("c");
  ir::Val load = ir::Load(0, {ir::Add(ir::Mul(r, row_stride), c)});
  ir::Stmt store = ir::MakeStore(1, {ir::Const(0)}, load, ir::StoreMode::kAccumulate);
  program.root = ir::MakeFor(r, rows, ir::ForKind::kSerial,
                             ir::MakeFor(c, cols, ir::ForKind::kSerial, store));
  return program;
}

TEST(CacheSim, LayoutTilingBeatsLoopTilingUnderPrefetch) {
  const auto& machine = sim::Machine::CortexA76();
  for (int64_t cols : {4, 16, 64, 256}) {
    auto contiguous = BlockLoadProgram(512, cols, cols);       // layout tiling
    auto strided = BlockLoadProgram(512, cols, 1024);          // loop tiling
    auto sc = sim::SimulateProgramTrace(contiguous, machine);
    auto ss = sim::SimulateProgramTrace(strided, machine);
    EXPECT_LT(sc.levels[0].misses, ss.levels[0].misses) << "cols=" << cols;
  }
}

TEST(CacheSim, PrefetchPredictionMatchesPaperFormula) {
  // Paper: 512×4 contiguous elements = 2048 floats = 128 lines; with a
  // 4-line prefetcher the predicted demand misses are 128/4 = 32.
  const auto& machine = sim::Machine::CortexA76();
  auto program = BlockLoadProgram(512, 4, 4);
  auto stats = sim::SimulateProgramTrace(program, machine);
  EXPECT_NEAR(static_cast<double>(stats.levels[0].misses), 32.0, 4.0);
}

TEST(CacheSim, SmallArrayFitsInL1SecondPass) {
  const auto& machine = sim::Machine::CortexA76();
  // Two passes over 1024 floats: second pass should be all hits.
  ir::Program program;
  program.name = "two_pass";
  ir::BufferDecl src;
  src.tensor.id = 0;
  src.tensor.name = "src";
  src.tensor.shape = {1024};
  src.role = ir::BufferRole::kInput;
  ir::BufferDecl dst;
  dst.tensor.id = 1;
  dst.tensor.name = "dst";
  dst.tensor.shape = {1};
  dst.role = ir::BufferRole::kOutput;
  program.buffers = {src, dst};
  ir::Expr p = ir::MakeVar("pass");
  ir::Expr i = ir::MakeVar("i");
  ir::Stmt store =
      ir::MakeStore(1, {ir::Const(0)}, ir::Load(0, {i}), ir::StoreMode::kAccumulate);
  program.root = ir::MakeFor(p, 2, ir::ForKind::kSerial,
                             ir::MakeFor(i, 1024, ir::ForKind::kSerial, store));
  auto stats = sim::SimulateProgramTrace(program, machine);
  // 1024 floats = 64 lines; prefetcher cuts demand misses to ~16 on pass one,
  // zero on pass two.
  EXPECT_LE(stats.levels[0].misses, 20u);
}

TEST(CacheSim, TruncationScalesCounts) {
  const auto& machine = sim::Machine::CortexA76();
  auto program = BlockLoadProgram(4096, 64, 64);
  auto full = sim::SimulateProgramTrace(program, machine, 10'000'000);
  auto truncated = sim::SimulateProgramTrace(program, machine, 50'000);
  EXPECT_LT(truncated.fraction, 1.0);
  EXPECT_NEAR(static_cast<double>(truncated.loads), static_cast<double>(full.loads),
              full.loads * 0.05);
}

}  // namespace
}  // namespace alt

// Interpreter, reference executor, physicalize/canonicalize converters, and
// the store_at materialization path.

#include <cmath>

#include <gtest/gtest.h>

#include "src/graph/layout_assignment.h"
#include "src/graph/networks.h"
#include "src/loop/lowering.h"
#include "src/runtime/session.h"

namespace alt::runtime {
namespace {

using graph::Graph;
using graph::LayoutAssignment;
using graph::OpKind;

TEST(Interpreter, ExecutesSimpleAccumulation) {
  // for i in 8: out[0] += in[i]
  ir::Program program;
  ir::BufferDecl in;
  in.tensor.id = 0;
  in.tensor.name = "in";
  in.tensor.shape = {8};
  in.role = ir::BufferRole::kInput;
  ir::BufferDecl out;
  out.tensor.id = 1;
  out.tensor.name = "out";
  out.tensor.shape = {1};
  out.role = ir::BufferRole::kOutput;
  program.buffers = {in, out};
  ir::Expr i = ir::MakeVar("i");
  program.root = ir::MakeFor(
      i, 8, ir::ForKind::kSerial,
      ir::MakeStore(1, {ir::Const(0)}, ir::Load(0, {i}), ir::StoreMode::kAccumulate));

  BufferStore store;
  store.Get(0) = {1, 2, 3, 4, 5, 6, 7, 8};
  ASSERT_TRUE(Execute(program, store).ok());
  EXPECT_FLOAT_EQ(store.Get(1)[0], 36.0f);
}

TEST(Interpreter, GuardsRespectModulus) {
  // out[i] = (i % 3 == 0 && 0 <= i < 9) ? in[i/3] : -1
  ir::Program program;
  ir::BufferDecl in;
  in.tensor.id = 0;
  in.tensor.name = "in";
  in.tensor.shape = {3};
  in.role = ir::BufferRole::kInput;
  ir::BufferDecl out;
  out.tensor.id = 1;
  out.tensor.name = "out";
  out.tensor.shape = {9};
  out.role = ir::BufferRole::kOutput;
  program.buffers = {in, out};
  ir::Expr i = ir::MakeVar("i");
  std::vector<ir::IntervalCond> conds{{i, 0, 9, 3, 0}};
  ir::Val v = ir::Select(std::move(conds), ir::Load(0, {ir::FloorDiv(i, 3)}), ir::Imm(-1.0));
  program.root = ir::MakeFor(i, 9, ir::ForKind::kSerial, ir::MakeStore(1, {i}, v));

  BufferStore store;
  store.Get(0) = {10, 20, 30};
  ASSERT_TRUE(Execute(program, store).ok());
  std::vector<float> expected{10, -1, -1, 20, -1, -1, 30, -1, -1};
  EXPECT_EQ(store.Get(1), expected);
}

TEST(Interpreter, MissingInputBufferFails) {
  ir::Program program;
  ir::BufferDecl in;
  in.tensor.id = 0;
  in.tensor.name = "in";
  in.tensor.shape = {4};
  in.role = ir::BufferRole::kInput;
  program.buffers = {in};
  BufferStore store;
  EXPECT_FALSE(Execute(program, store).ok());
}

TEST(Interpreter, MathFunctions) {
  ir::Program program;
  ir::BufferDecl in;
  in.tensor.id = 0;
  in.tensor.name = "in";
  in.tensor.shape = {1};
  in.role = ir::BufferRole::kInput;
  ir::BufferDecl out;
  out.tensor.id = 1;
  out.tensor.name = "out";
  out.tensor.shape = {3};
  out.role = ir::BufferRole::kOutput;
  program.buffers = {in, out};
  ir::Val x = ir::Load(0, {ir::Const(0)});
  program.root = ir::MakeBlock({
      ir::MakeStore(1, {ir::Const(0)}, ir::VExp(x)),
      ir::MakeStore(1, {ir::Const(1)}, ir::VTanh(x)),
      ir::MakeStore(1, {ir::Const(2)}, ir::VSqrt(x)),
  });
  BufferStore store;
  store.Get(0) = {1.0f};
  ASSERT_TRUE(Execute(program, store).ok());
  EXPECT_NEAR(store.Get(1)[0], std::exp(1.0f), 1e-5);
  EXPECT_NEAR(store.Get(1)[1], std::tanh(1.0f), 1e-5);
  EXPECT_NEAR(store.Get(1)[2], 1.0f, 1e-6);
}

// ---------------------------------------------------------------------------
// Physicalize / Canonicalize properties.
// ---------------------------------------------------------------------------

class PhysicalizeRoundTrip : public ::testing::TestWithParam<int> {
 public:
  static layout::LayoutSeq SeqFor(int which) {
    layout::LayoutSeq seq;
    switch (which) {
      case 0:
        seq.Append(layout::Primitive::Split(0, {3, 4}));
        break;
      case 1:
        seq.Append(layout::Primitive::Reorder({1, 0}));
        break;
      case 2:
        seq.Append(layout::Primitive::Fuse(0, 2));
        break;
      case 3:
        seq.Append(layout::Primitive::Pad(1, 2, 2));
        break;
      case 4:
        seq.Append(layout::Primitive::Unfold(0, 5, 3));
        break;
      case 5:
        seq.Append(layout::Primitive::Split(1, {2, 3}));
        seq.Append(layout::Primitive::Reorder({1, 0, 2}));
        seq.Append(layout::Primitive::Unfold(2, 2, 1));
        break;
    }
    return seq;
  }
};

TEST_P(PhysicalizeRoundTrip, CanonicalizeInvertsPhysicalize) {
  layout::LayoutSeq seq = SeqFor(GetParam());
  std::vector<int64_t> shape{12, 6};
  std::vector<float> data(72);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<float>(i) * 0.5f;
  }
  auto phys = Physicalize(data, shape, seq);
  ASSERT_TRUE(phys.ok());
  auto back = Canonicalize(*phys, shape, seq);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(MaxAbsDiff(*back, data), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seqs, PhysicalizeRoundTrip, ::testing::Range(0, 6));

TEST(Physicalize, UnfoldDuplicatesConsistently) {
  // Every copy of a duplicated element must hold the same value.
  layout::LayoutSeq seq;
  seq.Append(layout::Primitive::Unfold(0, 4, 2));
  std::vector<float> data{0, 1, 2, 3, 4, 5, 6, 7};
  auto phys = Physicalize(data, {8}, seq);
  ASSERT_TRUE(phys.ok());
  // Tiles: [0..3], [2..5], [4..7]: 12 elements.
  ASSERT_EQ(phys->size(), 12u);
  EXPECT_FLOAT_EQ((*phys)[2], (*phys)[4]);  // element 2: tile0[2], tile1[0]
  EXPECT_FLOAT_EQ((*phys)[7], (*phys)[9]);  // element 5: tile1[3], tile2[1]
}

TEST(Physicalize, PadRegionsAreZero) {
  layout::LayoutSeq seq;
  seq.Append(layout::Primitive::Pad(0, 1, 1));
  std::vector<float> data{5, 6};
  auto phys = Physicalize(data, {2}, seq);
  ASSERT_TRUE(phys.ok());
  EXPECT_EQ(*phys, (std::vector<float>{0, 5, 6, 0}));
}

// ---------------------------------------------------------------------------
// store_at: bias attached to the weight matrix (paper §4.1.2).
// ---------------------------------------------------------------------------

TEST(StoreAt, GmmBiasInWeightMatchesReference) {
  Graph g("gmm_bias");
  int a = g.AddInput("A", {6, 8});
  int b = g.AddConstant("B", {8, 10});
  int c = g.AddMatmul(a, b, "gmm");
  int bias = g.AddConstant("bias", {10});
  g.AddBiasAdd(c, bias, 1, "bias_add");

  LayoutAssignment la;
  layout::LayoutSeq host;
  host.Append(layout::Primitive::StoreAt(bias, 0));  // B becomes (K+1) x N
  la.Set(b, host);

  auto diff = ValidateAgainstReference(g, la, {.seed = 3});
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_LT(*diff, 1e-4);
}

TEST(StoreAt, LoweredProgramDropsTheSourceBuffer) {
  Graph g("gmm_bias2");
  int a = g.AddInput("A", {4, 4});
  int b = g.AddConstant("B", {4, 4});
  int c = g.AddMatmul(a, b, "gmm");
  int bias = g.AddConstant("bias", {4});
  g.AddBiasAdd(c, bias, 1, "bias_add");
  LayoutAssignment la;
  layout::LayoutSeq host;
  host.Append(layout::Primitive::StoreAt(bias, 0));
  la.Set(b, host);
  auto net = loop::LowerNetworkNaive(g, la, true);
  ASSERT_TRUE(net.ok());
  ASSERT_EQ(net->programs.size(), 1u);  // matmul + fused bias
  // The bias tensor is folded into B's buffer: no separate decl, and B's
  // physical shape grew by one row.
  EXPECT_EQ(net->programs[0].FindBuffer(bias), nullptr);
  ASSERT_NE(net->programs[0].FindBuffer(b), nullptr);
  EXPECT_EQ(net->programs[0].FindBuffer(b)->tensor.shape,
            (std::vector<int64_t>{5, 4}));
}

// ---------------------------------------------------------------------------
// Reference executor spot checks against hand-computed values.
// ---------------------------------------------------------------------------

TEST(Reference, TinyConvByHand) {
  Graph g;
  int x = g.AddInput("x", {1, 1, 3, 3});
  int w = g.AddConstant("w", {1, 1, 2, 2});
  graph::ConvAttrs attrs;
  int y = g.AddConv(OpKind::kConv2d, x, w, attrs);
  TensorDataMap data;
  data[x] = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  data[w] = {1, 0, 0, 1};  // identity-ish: adds top-left and bottom-right
  ASSERT_TRUE(ExecuteReference(g, data).ok());
  // out[i][j] = x[i][j] + x[i+1][j+1]
  EXPECT_EQ(data[y], (std::vector<float>{6, 8, 12, 14}));
}

TEST(Reference, SoftmaxRowsSumToOne) {
  Graph g;
  int x = g.AddInput("x", {4, 8});
  int y = g.AddSoftmax(x);
  Rng rng(2);
  TensorDataMap data;
  FillGraphInputs(g, rng, data);
  ASSERT_TRUE(ExecuteReference(g, data).ok());
  for (int r = 0; r < 4; ++r) {
    double sum = 0;
    for (int c = 0; c < 8; ++c) {
      sum += data[y][r * 8 + c];
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Reference, LayerNormMoments) {
  Graph g;
  int x = g.AddInput("x", {2, 16});
  int y = g.AddLayerNorm(x);
  Rng rng(4);
  TensorDataMap data;
  FillGraphInputs(g, rng, data);
  ASSERT_TRUE(ExecuteReference(g, data).ok());
  for (int r = 0; r < 2; ++r) {
    double mean = 0, var = 0;
    for (int c = 0; c < 16; ++c) {
      mean += data[y][r * 16 + c];
    }
    mean /= 16;
    for (int c = 0; c < 16; ++c) {
      var += (data[y][r * 16 + c] - mean) * (data[y][r * 16 + c] - mean);
    }
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var / 16, 1.0, 0.05);
  }
}

TEST(Interpreter, OutOfBoundsStoreReturnsStatusNotCrash) {
  // for i in 8: out[i] = in[i], but out only has 4 elements. A malformed
  // program (bad schedule, corrupt record) must surface as a Status from
  // Execute, never as memory corruption or an abort.
  ir::Program program;
  ir::BufferDecl in;
  in.tensor.id = 0;
  in.tensor.name = "in";
  in.tensor.shape = {8};
  in.role = ir::BufferRole::kInput;
  ir::BufferDecl out;
  out.tensor.id = 1;
  out.tensor.name = "out";
  out.tensor.shape = {4};
  out.role = ir::BufferRole::kOutput;
  program.buffers = {in, out};
  ir::Expr i = ir::MakeVar("i");
  program.root = ir::MakeFor(
      i, 8, ir::ForKind::kSerial,
      ir::MakeStore(1, {i}, ir::Load(0, {i}), ir::StoreMode::kAssign));

  BufferStore store;
  store.Get(0) = {1, 2, 3, 4, 5, 6, 7, 8};
  Status s = Execute(program, store);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("out"), std::string::npos);
}

TEST(Interpreter, OutOfBoundsLoadReturnsStatus) {
  // out[i] = in[i + 4] walks off the end of a 4-element input.
  ir::Program program;
  ir::BufferDecl in;
  in.tensor.id = 0;
  in.tensor.name = "in";
  in.tensor.shape = {4};
  in.role = ir::BufferRole::kInput;
  ir::BufferDecl out;
  out.tensor.id = 1;
  out.tensor.name = "out";
  out.tensor.shape = {4};
  out.role = ir::BufferRole::kOutput;
  program.buffers = {in, out};
  ir::Expr i = ir::MakeVar("i");
  program.root = ir::MakeFor(
      i, 4, ir::ForKind::kSerial,
      ir::MakeStore(1, {i}, ir::Load(0, {ir::Add(i, ir::Const(4))}),
                    ir::StoreMode::kAssign));

  BufferStore store;
  store.Get(0) = {1, 2, 3, 4};
  EXPECT_FALSE(Execute(program, store).ok());
}

TEST(Interpreter, UnboundVariableReturnsStatus) {
  // The store index references a loop variable that no loop binds.
  ir::Program program;
  ir::BufferDecl out;
  out.tensor.id = 0;
  out.tensor.name = "out";
  out.tensor.shape = {4};
  out.role = ir::BufferRole::kOutput;
  program.buffers = {out};
  ir::Expr i = ir::MakeVar("i");
  ir::Expr ghost = ir::MakeVar("never_bound");
  program.root = ir::MakeFor(
      i, 4, ir::ForKind::kSerial,
      ir::MakeStore(0, {ghost}, ir::Imm(1.0), ir::StoreMode::kAssign));

  BufferStore store;
  Status s = Execute(program, store);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("never_bound"), std::string::npos);
}

TEST(Interpreter, StoreToUndeclaredBufferReturnsStatus) {
  ir::Program program;
  ir::BufferDecl out;
  out.tensor.id = 0;
  out.tensor.name = "out";
  out.tensor.shape = {2};
  out.role = ir::BufferRole::kOutput;
  program.buffers = {out};
  ir::Expr i = ir::MakeVar("i");
  program.root = ir::MakeFor(
      i, 2, ir::ForKind::kSerial,
      ir::MakeStore(/*buffer_id=*/5, {i}, ir::Imm(1.0), ir::StoreMode::kAssign));

  BufferStore store;
  EXPECT_FALSE(Execute(program, store).ok());
}

}  // namespace
}  // namespace alt::runtime

// Whole-pipeline integration tests: small but structurally complete networks
// (residual blocks, depthwise bottlenecks, a transformer layer, 3-D convs)
// tuned and/or layout-transformed, lowered, interpreted, and validated
// against the reference executor.

#include <gtest/gtest.h>

#include "src/autotune/layout_templates.h"
#include "src/core/alt.h"
#include "src/graph/layout_assignment.h"
#include "src/graph/networks.h"
#include "src/loop/lowering.h"
#include "src/runtime/session.h"

namespace alt {
namespace {

using graph::Graph;
using graph::LayoutAssignment;
using graph::OpKind;

constexpr double kTol = 5e-3;

// A miniature residual stage: conv-bias-relu, conv-bias, downsample 1x1,
// add, relu — the exact dataflow shape of a ResNet basic block.
Graph MiniResidualBlock() {
  Graph g("mini_residual");
  int x = g.AddInput("x", {1, 8, 12, 12});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p1 = g.AddPad(x, pad, "pad1");
  int w1 = g.AddConstant("w1", {16, 8, 3, 3});
  graph::ConvAttrs s2;
  s2.stride[0] = s2.stride[1] = 2;
  int c1 = g.AddConv(OpKind::kConv2d, p1, w1, s2, "conv1");
  int b1 = g.AddConstant("b1", {16});
  int y = g.AddRelu(g.AddBiasAdd(c1, b1, 1, "bias1"), "relu1");

  int p2 = g.AddPad(y, pad, "pad2");
  int w2 = g.AddConstant("w2", {16, 16, 3, 3});
  graph::ConvAttrs s1;
  int c2 = g.AddConv(OpKind::kConv2d, p2, w2, s1, "conv2");
  int b2 = g.AddConstant("b2", {16});
  int main_path = g.AddBiasAdd(c2, b2, 1, "bias2");

  int wd = g.AddConstant("wd", {16, 8, 1, 1});
  int down = g.AddConv(OpKind::kConv2d, x, wd, s2, "down");

  int sum = g.AddAdd(main_path, down, "add");
  g.AddRelu(sum, "relu_out");
  return g;
}

TEST(Integration, ResidualBlockCanonical) {
  Graph g = MiniResidualBlock();
  EXPECT_LT(*runtime::ValidateAgainstReference(g, LayoutAssignment{}, {.seed = 5}), kTol);
}

TEST(Integration, ResidualBlockMixedLayouts) {
  Graph g = MiniResidualBlock();
  // Put different layouts on the two convs: channels-last on conv1 (with
  // propagation) and a blocked layout on conv2's side.
  LayoutAssignment la;
  int c1 = -1, c2 = -1;
  for (const auto& op : g.ops()) {
    if (op.name == "conv1") {
      c1 = op.output;
    }
    if (op.name == "conv2") {
      c2 = op.output;
    }
  }
  ASSERT_GE(c1, 0);
  ASSERT_GE(c2, 0);
  la.Set(c1, autotune::ChannelsLast(2));
  graph::PropagateOutputLayout(g, la, c1);
  auto blocked = autotune::BlockedChannels(g.tensor(c2).shape, 4);
  ASSERT_TRUE(blocked.ok());
  la.Set(c2, *blocked);
  graph::PropagateOutputLayout(g, la, c2);
  EXPECT_LT(*runtime::ValidateAgainstReference(g, la, {.seed = 6}), kTol);
}

TEST(Integration, DepthwiseBottleneckTuned) {
  // Mini MobileNet inverted residual: expand 1x1 -> depthwise 3x3 -> project.
  Graph g("mini_bottleneck");
  int x = g.AddInput("x", {1, 8, 10, 10});
  int we = g.AddConstant("we", {24, 8, 1, 1});
  graph::ConvAttrs a1;
  int e = g.AddConv(OpKind::kConv2d, x, we, a1, "expand");
  int re = g.AddRelu(e, "relu_e");
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int pd = g.AddPad(re, pad, "pad");
  int wd = g.AddConstant("wd", {24, 1, 3, 3});
  graph::ConvAttrs dw;
  dw.groups = 24;
  int d = g.AddConv(OpKind::kConv2d, pd, wd, dw, "depthwise");
  int rd = g.AddRelu(d, "relu_d");
  int wp = g.AddConstant("wp", {8, 24, 1, 1});
  int proj = g.AddConv(OpKind::kConv2d, rd, wp, a1, "project");
  g.AddAdd(proj, x, "residual");

  // Tune it end-to-end and validate the tuned programs numerically.
  core::AltOptions options;
  options.budget = 120;
  options.method = autotune::SearchMethod::kRandom;
  auto compiled = core::Compile(g, sim::Machine::ArmCpu(), options);
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();

  Rng rng(31);
  runtime::TensorDataMap data;
  runtime::FillGraphInputs(compiled->graph, rng, data);
  loop::LoweredNetwork net;
  net.groups = compiled->groups;
  net.programs = compiled->programs;
  auto out = runtime::RunLoweredNetwork(compiled->graph, compiled->assignment, net, data);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_TRUE(runtime::ExecuteReference(compiled->graph, data).ok());
  int out_id = net.groups.back().OutputTensor(compiled->graph);
  EXPECT_LT(runtime::MaxAbsDiff(*out, data[out_id]), kTol);
}

TEST(Integration, TransformerLayerCanonical) {
  // One miniature BERT-style layer (hidden 32): matmuls + bias + gelu +
  // residual + layernorm + softmax path.
  Graph g = graph::BuildBert(1, 64, 1, /*seq_len=*/8);
  EXPECT_LT(*runtime::ValidateAgainstReference(g, LayoutAssignment{}, {.seed = 8}), kTol);
}

TEST(Integration, Conv3dBlockWithLayouts) {
  Graph g("mini3d");
  int x = g.AddInput("x", {1, 4, 6, 8, 8});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1, 1};
  pad.after = {0, 0, 1, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("w", {8, 4, 3, 3, 3});
  graph::ConvAttrs attrs;
  attrs.spatial_dims = 3;
  int c = g.AddConv(OpKind::kConv3d, p, w, attrs, "conv3d");
  int b = g.AddConstant("b", {8});
  g.AddRelu(g.AddBiasAdd(c, b, 1, "bias"), "relu");

  const graph::Op& conv = g.op(g.ProducerOf(c));
  autotune::ConvLayoutParams params;
  params.spatial_tiles = {3, 4, 4};
  params.out_tile = 4;
  params.in_tile = 2;
  params.w_in_tile = 2;
  params.w_out_tile = 4;
  auto layouts = autotune::MakeConvTemplates(g, conv, params);
  ASSERT_TRUE(layouts.ok()) << layouts.status().ToString();
  LayoutAssignment la;
  la.Set(c, layouts->output);
  la.Set(p, layouts->input);
  la.Set(w, layouts->weight);
  graph::PropagateOutputLayout(g, la, c);
  EXPECT_LT(*runtime::ValidateAgainstReference(g, la, {.seed = 9}), kTol);
}

TEST(Integration, Fig12SubgraphWithConversionOp) {
  // Shrunk §7.3.2 subgraph: tune both convs independently so a conversion op
  // appears between them; the converted network must stay correct.
  Graph g("fig12_mini");
  int x = g.AddInput("x", {1, 8, 7, 7});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w1 = g.AddConstant("w1", {8, 8, 3, 3});
  graph::ConvAttrs attrs;
  int c1 = g.AddConv(OpKind::kConv2d, p, w1, attrs, "c3x3");
  int w2 = g.AddConstant("w2", {16, 8, 1, 1});
  int c2 = g.AddConv(OpKind::kConv2d, c1, w2, attrs, "c1x1");
  (void)c2;

  LayoutAssignment la;
  la.Set(c1, autotune::ChannelsLast(2));
  auto blocked = autotune::BlockedChannels(g.tensor(c1).shape, 4);
  ASSERT_TRUE(blocked.ok());
  auto sat = graph::RequestInputLayout(g, la, g.ProducerOf(c2), 0, *blocked);
  ASSERT_EQ(sat, graph::InputSatisfaction::kConversionInserted);
  EXPECT_LT(*runtime::ValidateAgainstReference(g, la, {.seed = 10}), kTol);
}

// ---------------------------------------------------------------------------
// Partitioning properties.
// ---------------------------------------------------------------------------

TEST(Partitioning, EveryOpAppearsExactlyOnce) {
  Graph g = MiniResidualBlock();
  LayoutAssignment la;
  auto groups = loop::PartitionGraph(g, la, true);
  std::vector<int> count(g.ops().size(), 0);
  for (const auto& grp : groups) {
    ++count[grp.anchor_op];
    for (int f : grp.fused_ops) {
      ++count[f];
    }
  }
  for (size_t i = 0; i < count.size(); ++i) {
    EXPECT_EQ(count[i], 1) << "op " << i;
  }
}

TEST(Partitioning, FusionDisabledYieldsSingletonGroups) {
  Graph g = MiniResidualBlock();
  LayoutAssignment la;
  auto fused = loop::PartitionGraph(g, la, true);
  auto unfused = loop::PartitionGraph(g, la, false);
  EXPECT_GT(unfused.size(), fused.size());
  for (const auto& grp : unfused) {
    EXPECT_TRUE(grp.fused_ops.empty());
  }
  // Both partitions execute to the same numbers.
  EXPECT_LT(*runtime::ValidateAgainstReference(g, la, {.seed = 12, .enable_fusion = false}), kTol);
}

TEST(Partitioning, MultiConsumerTensorIsNotFused) {
  // The residual input x feeds two convs: neither may fuse across it.
  Graph g("fanout");
  int x = g.AddInput("x", {1, 4, 4, 4});
  int r = g.AddRelu(x, "relu");
  g.AddMulScalar(r, 2.0, "a");
  g.AddMulScalar(r, 3.0, "b");
  LayoutAssignment la;
  auto groups = loop::PartitionGraph(g, la, true);
  EXPECT_EQ(groups.size(), 3u);  // relu cannot fuse into either consumer
}

// ---------------------------------------------------------------------------
// Tuned-variant consistency on a shared workload.
// ---------------------------------------------------------------------------

TEST(Integration, AllVariantsStayCorrect) {
  Graph g = MiniResidualBlock();
  for (auto variant : {core::AltVariant::kFull, core::AltVariant::kLoopOnly,
                       core::AltVariant::kWithoutPropagation}) {
    core::AltOptions options;
    options.budget = 80;
    options.variant = variant;
    options.method = autotune::SearchMethod::kRandom;
    auto compiled = core::Compile(g, sim::Machine::IntelCpu(), options);
    ASSERT_TRUE(compiled.ok()) << core::VariantName(variant);
    Rng rng(41);
    runtime::TensorDataMap data;
    runtime::FillGraphInputs(compiled->graph, rng, data);
    loop::LoweredNetwork net;
    net.groups = compiled->groups;
    net.programs = compiled->programs;
    auto out = runtime::RunLoweredNetwork(compiled->graph, compiled->assignment, net, data);
    ASSERT_TRUE(out.ok()) << core::VariantName(variant) << ": "
                          << out.status().ToString();
    ASSERT_TRUE(runtime::ExecuteReference(compiled->graph, data).ok());
    int out_id = net.groups.back().OutputTensor(compiled->graph);
    EXPECT_LT(runtime::MaxAbsDiff(*out, data[out_id]), kTol)
        << core::VariantName(variant);
  }
}

}  // namespace
}  // namespace alt

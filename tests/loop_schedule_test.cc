// Structural tests for schedules and the emitted loop nests: annotations
// (parallel / vectorized / unrolled) land where the schedule says, unit loops
// are elided, signatures drive the spaces.

#include <gtest/gtest.h>

#include "src/graph/layout_assignment.h"
#include "src/graph/networks.h"
#include "src/loop/lowering.h"
#include "src/loop/schedule.h"

namespace alt::loop {
namespace {

using graph::Graph;
using graph::LayoutAssignment;
using graph::OpKind;

// Counts loops of a given kind in a statement tree.
int CountLoops(const ir::Stmt& stmt, ir::ForKind kind) {
  switch (stmt->kind) {
    case ir::StmtKind::kFor: {
      int inner = CountLoops(stmt->body, kind);
      return inner + (stmt->for_kind == kind ? 1 : 0);
    }
    case ir::StmtKind::kBlock: {
      int total = 0;
      for (const auto& s : stmt->stmts) {
        total += CountLoops(s, kind);
      }
      return total;
    }
    case ir::StmtKind::kStore:
      return 0;
  }
  return 0;
}

int MaxDepth(const ir::Stmt& stmt) {
  switch (stmt->kind) {
    case ir::StmtKind::kFor:
      return 1 + MaxDepth(stmt->body);
    case ir::StmtKind::kBlock: {
      int depth = 0;
      for (const auto& s : stmt->stmts) {
        depth = std::max(depth, MaxDepth(s));
      }
      return depth;
    }
    case ir::StmtKind::kStore:
      return 0;
  }
  return 0;
}

Graph MatmulGraph() { return graph::BuildSingleMatmul(32, 16, 64); }

TEST(ScheduleEmission, NaiveScheduleHasExpectedShape) {
  Graph g = MatmulGraph();
  LayoutAssignment la;
  auto groups = PartitionGraph(g, la, true);
  ASSERT_EQ(groups.size(), 1u);
  auto program = LowerGroupNaive(g, la, groups[0]);
  ASSERT_TRUE(program.ok());
  // Naive: one parallel loop over M; init nest + reduce nest.
  EXPECT_EQ(CountLoops(program->root, ir::ForKind::kParallel), 1);
  EXPECT_EQ(CountLoops(program->root, ir::ForKind::kVectorized), 0);
  EXPECT_EQ(ir::CountStoreExecutions(program->root),
            32 * 64 /*init*/ + 32 * 64 * 16 /*updates*/);
}

TEST(ScheduleEmission, VectorizedAndUnrolledAnnotations) {
  Graph g = MatmulGraph();
  LayoutAssignment la;
  auto groups = PartitionGraph(g, la, true);
  auto sig = GroupSignature(g, la, groups[0]);
  ASSERT_TRUE(sig.ok());
  LoopSchedule sched = LoopSchedule::Naive(sig->spatial_extents, sig->reduction_extents);
  sched.spatial[1].outer = 4;
  sched.spatial[1].vec = 16;
  sched.reduction[0] = {4, 4};
  sched.unroll_inner_reduction = true;
  auto program = LowerGroup(g, la, groups[0], sched);
  ASSERT_TRUE(program.ok());
  // Vector loop appears in init, reduce and (absent) finalize nests.
  EXPECT_GE(CountLoops(program->root, ir::ForKind::kVectorized), 2);
  EXPECT_EQ(CountLoops(program->root, ir::ForKind::kUnrolled), 1);
  // Work unchanged by tiling.
  EXPECT_EQ(ir::CountStoreExecutions(program->root), 32 * 64 + 32 * 64 * 16);
}

TEST(ScheduleEmission, UnitLoopsAreElided) {
  Graph g = MatmulGraph();
  LayoutAssignment la;
  auto groups = PartitionGraph(g, la, true);
  auto sig = GroupSignature(g, la, groups[0]);
  ASSERT_TRUE(sig.ok());
  // All-unit mid/inner: depth must stay minimal (2 spatial + 1 reduction).
  LoopSchedule sched = LoopSchedule::Naive(sig->spatial_extents, sig->reduction_extents);
  auto program = LowerGroup(g, la, groups[0], sched);
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(MaxDepth(program->root), 3);
}

TEST(ScheduleEmission, InvalidFactorsRejected) {
  Graph g = MatmulGraph();
  LayoutAssignment la;
  auto groups = PartitionGraph(g, la, true);
  auto sig = GroupSignature(g, la, groups[0]);
  ASSERT_TRUE(sig.ok());
  LoopSchedule sched = LoopSchedule::Naive(sig->spatial_extents, sig->reduction_extents);
  sched.spatial[0].inner = 5;  // 5 does not divide 32 with outer=32
  auto program = LowerGroup(g, la, groups[0], sched);
  EXPECT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kInvalidArgument);

  LoopSchedule wrong_axes;
  wrong_axes.spatial.resize(1);
  auto program2 = LowerGroup(g, la, groups[0], wrong_axes);
  EXPECT_FALSE(program2.ok());
}

TEST(ScheduleEmission, RotationPermutesInnerLoops) {
  // Both rotations must produce valid, equal-work programs.
  Graph g = MatmulGraph();
  LayoutAssignment la;
  auto groups = PartitionGraph(g, la, true);
  auto sig = GroupSignature(g, la, groups[0]);
  ASSERT_TRUE(sig.ok());
  for (int rot = 0; rot < 2; ++rot) {
    LoopSchedule sched = LoopSchedule::Naive(sig->spatial_extents, sig->reduction_extents);
    sched.spatial[0] = {4, 2, 4, 1};
    sched.spatial[1] = {8, 2, 4, 1};
    sched.inner_order_rotation = rot;
    auto program = LowerGroup(g, la, groups[0], sched);
    ASSERT_TRUE(program.ok()) << "rotation " << rot;
    EXPECT_EQ(ir::CountStoreExecutions(program->root), 32 * 64 + 32 * 64 * 16);
  }
}

TEST(ScheduleToString, MentionsAllParts) {
  LoopSchedule sched;
  sched.spatial.push_back({2, 3, 4, 5});
  sched.reduction.push_back({6, 7});
  sched.unroll_inner_reduction = true;
  std::string s = sched.ToString();
  EXPECT_NE(s.find("2/3/4/5"), std::string::npos);
  EXPECT_NE(s.find("6/7"), std::string::npos);
  EXPECT_NE(s.find("unroll"), std::string::npos);
}

TEST(GroupSignatureTest, ReflectsPhysicalShape) {
  Graph g("conv");
  int x = g.AddInput("x", {1, 8, 6, 6});
  int w = g.AddConstant("w", {8, 8, 1, 1});
  graph::ConvAttrs attrs;
  int c = g.AddConv(OpKind::kConv2d, x, w, attrs, "conv");
  LayoutAssignment la;
  layout::LayoutSeq seq;
  seq.Append(layout::Primitive::Split(1, {2, 4}));
  la.Set(c, seq);
  auto groups = PartitionGraph(g, la, true);
  auto sig = GroupSignature(g, la, groups[0]);
  ASSERT_TRUE(sig.ok());
  // Physical output is rank 5 after the split.
  EXPECT_EQ(sig->spatial_extents, (std::vector<int64_t>{1, 2, 4, 6, 6}));
  EXPECT_EQ(sig->reduction_extents, (std::vector<int64_t>{8, 1, 1}));
}

TEST(ScheduleEmission, FusedConsumersShareTheNest) {
  Graph g("fused");
  int x = g.AddInput("x", {1, 4, 4, 4});
  int w = g.AddConstant("w", {4, 4, 1, 1});
  graph::ConvAttrs attrs;
  int c = g.AddConv(OpKind::kConv2d, x, w, attrs, "conv");
  g.AddRelu(c, "relu");
  LayoutAssignment la;
  auto fused_groups = PartitionGraph(g, la, true);
  ASSERT_EQ(fused_groups.size(), 1u);
  auto program = LowerGroupNaive(g, la, fused_groups[0]);
  ASSERT_TRUE(program.ok());
  // Stores: init + update + relu finalize.
  EXPECT_EQ(ir::CountStoreExecutions(program->root), 64 + 64 * 4 + 64);
  // Both the conv output (intermediate) and relu output (output) are decls.
  EXPECT_NE(program->FindBuffer(c), nullptr);
  EXPECT_EQ(program->FindBuffer(c)->role, ir::BufferRole::kIntermediate);
}

}  // namespace
}  // namespace alt::loop

// Tests for the crash-safe tuning journal: CRC line framing, tolerant
// parsing of torn/corrupt tails, deterministic replay-based resume (the
// kill-and-resume acceptance scenario), and fault-injected tuning sessions.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "src/core/tuning_journal.h"
#include "src/graph/networks.h"
#include "src/loop/serialization.h"
#include "src/support/fileio.h"
#include "src/support/metrics.h"

namespace alt {
namespace {

graph::Graph SmallConvGraph() {
  graph::Graph g("journal_target");
  int x = g.AddInput("x", {1, 16, 14, 14});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("w", {32, 16, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, p, w, attrs, "conv");
  g.AddRelu(c, "relu");
  return g;
}

core::AltOptions BaseOptions() {
  core::AltOptions options;
  options.budget = 120;
  options.method = autotune::SearchMethod::kRandom;
  options.seed = 7;
  return options;
}

std::string TempPath(const std::string& name) {
  std::string path = ::testing::TempDir() + name;
  RemoveFile(path);
  return path;
}

// Every observable piece of a compilation result that the resume guarantee
// promises to reproduce.
void ExpectIdenticalResults(const autotune::CompiledNetwork& a,
                            const autotune::CompiledNetwork& b) {
  EXPECT_EQ(a.perf.latency_us, b.perf.latency_us);
  EXPECT_EQ(a.measurements_used, b.measurements_used);
  ASSERT_EQ(a.history_us.size(), b.history_us.size());
  for (size_t i = 0; i < a.history_us.size(); ++i) {
    ASSERT_EQ(a.history_us[i], b.history_us[i]) << "tuning curve diverges at " << i;
  }
  ASSERT_EQ(a.schedules.size(), b.schedules.size());
  for (size_t i = 0; i < a.schedules.size(); ++i) {
    EXPECT_EQ(loop::EncodeSchedule(a.schedules[i]), loop::EncodeSchedule(b.schedules[i]));
  }
  ASSERT_EQ(a.graph.tensors().size(), b.graph.tensors().size());
  for (const auto& t : a.graph.tensors()) {
    EXPECT_EQ(loop::EncodeLayoutSeq(a.assignment.Get(t.id)),
              loop::EncodeLayoutSeq(b.assignment.Get(t.id)))
        << "layout diverges on tensor " << t.name;
  }
}

TEST(TuningJournal, JournalRoundTrip) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  core::AltOptions options = BaseOptions();
  std::string path = TempPath("journal_roundtrip.altj");

  auto result = core::CompileWithJournal(g, machine, options, path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(FileExists(path));

  auto contents = core::LoadTuningJournal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->has_header);
  EXPECT_EQ(contents->fingerprint, core::TuningFingerprint(g, machine, options));
  EXPECT_GT(contents->measure_lines, 0);
  EXPECT_GT(contents->batch_lines, 0);
  EXPECT_EQ(contents->discarded_bytes, 0);
  EXPECT_EQ(static_cast<int64_t>(contents->replay.ok.size()), result->measure_stats.measured);
}

TEST(TuningJournal, PhaseAndNanBatchLinesRoundTrip) {
  std::string path = TempPath("journal_phase_nan.altj");
  auto writer = core::TuningJournalWriter::Open(path, 0x1234, /*write_header=*/true);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  writer->OnPhase("joint");
  // Before the first successful complex-group measurement the tuner reports
  // "no best yet" as NaN; the journal must round-trip it, not reject it.
  writer->OnBatchDone(0, std::numeric_limits<double>::quiet_NaN());
  writer->OnPhase("loop");
  ASSERT_TRUE(writer->status().ok());

  auto contents = core::LoadTuningJournal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents->phase_lines, 2);
  EXPECT_EQ(contents->batch_lines, 1);
  EXPECT_TRUE(std::isnan(contents->last_best_us));
  EXPECT_EQ(contents->discarded_bytes, 0);  // every line parses cleanly
}

TEST(TuningJournal, JournaledRunRecordsAllThreePhases) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  core::AltOptions options = BaseOptions();
  std::string path = TempPath("journal_phases.altj");

  auto result = core::CompileWithJournal(g, machine, options, path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto contents = core::LoadTuningJournal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_EQ(contents->phase_lines, 3);  // joint, loop, lower
  // The sentinel-leak fix end to end: no journaled batch line ever carries
  // the 1e30 "no best yet" internal value.
  EXPECT_TRUE(std::isnan(contents->last_best_us) || contents->last_best_us < 1e29);
}

TEST(TuningJournal, JournalingIsObservationOnly) {
  // A journaled run must produce the same result as a plain Compile.
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  core::AltOptions options = BaseOptions();
  std::string path = TempPath("journal_observer.altj");

  auto plain = core::Compile(g, machine, options);
  auto journaled = core::CompileWithJournal(g, machine, options, path);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(journaled.ok());
  ExpectIdenticalResults(*plain, *journaled);
}

TEST(TuningJournal, TornTailIsDiscardedNotFatal) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  std::string path = TempPath("journal_torn.altj");
  auto result = core::CompileWithJournal(g, machine, BaseOptions(), path);
  ASSERT_TRUE(result.ok());

  auto full = ReadFile(path);
  ASSERT_TRUE(full.ok());
  // Simulate a crash mid-write: cut the file in the middle of its last line.
  ASSERT_TRUE(TruncateFile(path, full->size() - 7).ok());

  auto contents = core::LoadTuningJournal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->has_header);
  EXPECT_GT(contents->discarded_bytes, 0);
  EXPECT_LT(contents->valid_bytes, static_cast<int64_t>(full->size()));
}

TEST(TuningJournal, BitFlipEndsTheValidPrefix) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  std::string path = TempPath("journal_bitflip.altj");
  auto result = core::CompileWithJournal(g, machine, BaseOptions(), path);
  ASSERT_TRUE(result.ok());

  auto full = ReadFile(path);
  ASSERT_TRUE(full.ok());
  auto clean = core::LoadTuningJournal(path);
  ASSERT_TRUE(clean.ok());

  // Flip one payload byte around the middle of the file; the CRC must catch
  // it and everything from that line on must be discarded.
  std::string corrupted = *full;
  size_t flip_at = corrupted.size() / 2;
  corrupted[flip_at] ^= 0x20;
  ASSERT_TRUE(WriteFile(path, corrupted).ok());

  auto contents = core::LoadTuningJournal(path);
  ASSERT_TRUE(contents.ok()) << contents.status().ToString();
  EXPECT_TRUE(contents->has_header);
  EXPECT_GT(contents->discarded_bytes, 0);
  EXPECT_LE(contents->valid_bytes, static_cast<int64_t>(flip_at));
  EXPECT_LT(contents->replay.ok.size(), clean->replay.ok.size());
}

TEST(TuningJournal, CorruptedJournalStillResumes) {
  // A bit-flipped journal loses its suffix but the prefix resumes cleanly and
  // converges to the uninterrupted result.
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  core::AltOptions options = BaseOptions();
  std::string full_path = TempPath("journal_flip_full.altj");
  auto full_run = core::CompileWithJournal(g, machine, options, full_path);
  ASSERT_TRUE(full_run.ok());

  auto bytes = ReadFile(full_path);
  ASSERT_TRUE(bytes.ok());
  std::string corrupted = *bytes;
  corrupted[corrupted.size() / 2] ^= 0x01;
  std::string flip_path = TempPath("journal_flip_copy.altj");
  ASSERT_TRUE(WriteFile(flip_path, corrupted).ok());

  auto resumed = core::CompileWithJournal(g, machine, options, flip_path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectIdenticalResults(*full_run, *resumed);
}

// THE acceptance scenario: tune with budget B while journaling, kill the run
// half way (simulated by truncating the journal to its first half, cutting
// mid-line like a torn write would), resume from the prefix, and require the
// final CompiledNetwork to be identical to the uninterrupted run's.
TEST(TuningJournal, KillAndResumeMatchesUninterrupted) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  core::AltOptions options = BaseOptions();

  std::string full_path = TempPath("journal_full.altj");
  auto full_run = core::CompileWithJournal(g, machine, options, full_path);
  ASSERT_TRUE(full_run.ok()) << full_run.status().ToString();

  // The journal of a run killed at ~50% is a byte prefix of the full run's
  // journal (execution is deterministic and the writer appends + flushes
  // line by line), so truncation reproduces the crash exactly.
  auto bytes = ReadFile(full_path);
  ASSERT_TRUE(bytes.ok());
  std::string crashed_path = TempPath("journal_crashed.altj");
  ASSERT_TRUE(WriteFile(crashed_path, bytes->substr(0, bytes->size() / 2)).ok());

  auto resumed = core::CompileWithJournal(g, machine, options, crashed_path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();

  ExpectIdenticalResults(*full_run, *resumed);
  // The resumed run replayed the journaled prefix instead of re-measuring it.
  EXPECT_GT(resumed->measure_stats.replayed, 0);
  EXPECT_LT(resumed->measure_stats.measured, full_run->measure_stats.measured);
  EXPECT_EQ(resumed->measure_stats.requested,
            resumed->measure_stats.measured + resumed->measure_stats.cache_hits +
                resumed->measure_stats.failed + resumed->measure_stats.replayed);
}

TEST(TuningJournal, ResumeFromCompleteJournalMeasuresNothing) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  core::AltOptions options = BaseOptions();
  std::string path = TempPath("journal_complete.altj");

  auto first = core::CompileWithJournal(g, machine, options, path);
  ASSERT_TRUE(first.ok());
  ASSERT_GT(first->measure_stats.measured, 0);

  auto second = core::ResumeFromJournal(g, machine, options, path);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ExpectIdenticalResults(*first, *second);
  EXPECT_EQ(second->measure_stats.measured, 0);
  EXPECT_GT(second->measure_stats.replayed, 0);
}

TEST(TuningJournal, ResumeRejectsMismatchedConfiguration) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  std::string path = TempPath("journal_mismatch.altj");
  auto first = core::CompileWithJournal(g, machine, BaseOptions(), path);
  ASSERT_TRUE(first.ok());

  core::AltOptions different = BaseOptions();
  different.budget = 200;  // a different trajectory: the journal is useless
  auto resumed = core::CompileWithJournal(g, machine, different, path);
  EXPECT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kInvalidArgument);
}

TEST(TuningJournal, ResumeFromJournalRequiresAJournal) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  auto missing = core::ResumeFromJournal(g, machine, BaseOptions(),
                                         TempPath("journal_missing.altj"));
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(TuningJournal, FaultInjectedTuningCompletesAndIsDeterministic) {
  // A 10% transient failure rate must not abort tuning; retries absorb the
  // faults and the whole run stays deterministic (the injector is stateless).
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  core::AltOptions options = BaseOptions();
  options.fault.injection.failure_rate = 0.1;
  options.fault.injection.seed = 5;

  auto r1 = core::Compile(g, machine, options);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_GT(r1->measure_stats.injected_failures, 0);
  EXPECT_GT(r1->measure_stats.retries, 0);

  auto r2 = core::Compile(g, machine, options);
  ASSERT_TRUE(r2.ok());
  ExpectIdenticalResults(*r1, *r2);
  EXPECT_EQ(r1->measure_stats.injected_failures, r2->measure_stats.injected_failures);
  EXPECT_EQ(r1->measure_stats.retries, r2->measure_stats.retries);
}

TEST(TuningJournal, FaultInjectedKillAndResume) {
  // Replay and fault injection compose: resuming a fault-injected run still
  // reproduces the uninterrupted result.
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  core::AltOptions options = BaseOptions();
  options.fault.injection.failure_rate = 0.1;
  options.fault.injection.seed = 5;

  std::string full_path = TempPath("journal_fault_full.altj");
  auto full_run = core::CompileWithJournal(g, machine, options, full_path);
  ASSERT_TRUE(full_run.ok()) << full_run.status().ToString();

  auto bytes = ReadFile(full_path);
  ASSERT_TRUE(bytes.ok());
  std::string crashed_path = TempPath("journal_fault_crashed.altj");
  ASSERT_TRUE(WriteFile(crashed_path, bytes->substr(0, bytes->size() / 2)).ok());

  auto resumed = core::CompileWithJournal(g, machine, options, crashed_path);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectIdenticalResults(*full_run, *resumed);
}

TEST(TuningJournal, FsyncCadenceIsHonoredAndInvisible) {
  // With fsync_every_n_lines set, every Nth append is forced to stable
  // storage (journal.fsyncs counts them); the journal contents — and the
  // compilation result — are byte-for-byte what the no-fsync writer produces.
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  core::AltOptions options = BaseOptions();

  std::string plain_path = TempPath("journal_nofsync.altj");
  auto plain = core::CompileWithJournal(g, machine, options, plain_path);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  const int64_t fsyncs_before =
      MetricsRegistry::Global().Snapshot().counter("journal.fsyncs");
  std::string synced_path = TempPath("journal_fsync.altj");
  core::TuningJournalOptions journal_options;
  journal_options.fsync_every_n_lines = 8;
  auto synced = core::CompileWithJournal(g, machine, options, synced_path, journal_options);
  ASSERT_TRUE(synced.ok()) << synced.status().ToString();
  const int64_t fsyncs_after =
      MetricsRegistry::Global().Snapshot().counter("journal.fsyncs");
  EXPECT_GT(fsyncs_after, fsyncs_before);
  ExpectIdenticalResults(*plain, *synced);

  auto plain_bytes = ReadFile(plain_path);
  auto synced_bytes = ReadFile(synced_path);
  ASSERT_TRUE(plain_bytes.ok());
  ASSERT_TRUE(synced_bytes.ok());
  EXPECT_EQ(*plain_bytes, *synced_bytes);
}

}  // namespace
}  // namespace alt

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/support/crc32.h"
#include "src/support/fault_injection.h"
#include "src/support/fileio.h"
#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/support/string_util.h"
#include "src/support/thread_pool.h"

namespace alt {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::InvalidArgument("bad factor");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("bad factor"), std::string::npos);
}

TEST(StatusTest, StatusOrValueAndError) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e = Status::NotFound("nope");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64();
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(13);
    EXPECT_LT(v, 13u);
  }
}

TEST(RngTest, NextDoubleUniformish) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(StringUtilTest, JoinAndSplit) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(Join(v, ", "), "1, 2, 3");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, FormatMicros) {
  EXPECT_EQ(FormatMicros(12.3), "12.3 us");
  EXPECT_EQ(FormatMicros(4567.0), "4.567 ms");
  EXPECT_EQ(FormatMicros(2.5e6), "2.500 s");
}

TEST(StringUtilTest, DivisorsSortedAndComplete) {
  auto d = Divisors(36);
  EXPECT_EQ(d, (std::vector<int64_t>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
  EXPECT_EQ(Divisors(1), (std::vector<int64_t>{1}));
  EXPECT_EQ(Divisors(7), (std::vector<int64_t>{1, 7}));
}

class DivisorsProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(DivisorsProperty, EveryDivisorDivides) {
  int64_t n = GetParam();
  for (int64_t d : Divisors(n)) {
    EXPECT_EQ(n % d, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Values, DivisorsProperty,
                         ::testing::Values(2, 12, 16, 97, 128, 210, 1000, 2048));

TEST(StringUtilTest, CheckedIntParsing) {
  ASSERT_TRUE(ParseInt64("123").ok());
  EXPECT_EQ(*ParseInt64("123"), 123);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("12 ").ok());
  EXPECT_FALSE(ParseInt64("0x10").ok());
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());   // INT64_MAX + 1
  ASSERT_TRUE(ParseInt64("9223372036854775807").ok());
  EXPECT_FALSE(ParseInt32("4000000000").ok());
  EXPECT_EQ(*ParseInt32("-17"), -17);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(1000, [&](int i) { counts[i].fetch_add(1); });
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> order;
  pool.ParallelFor(5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(round % 7, [&](int i) { sum.fetch_add(i + 1); });
    int n = round % 7;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(ThreadPoolTest, ZeroAndNegativeCountsAreNoops) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](int) { ran = true; });
  pool.ParallelFor(-3, [&](int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, TaskExceptionDoesNotKillThePool) {
  // A throwing task must surface as a Status, not terminate the process or
  // deadlock the join, and the pool must stay fully usable afterwards.
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  Status s = pool.ParallelFor(100, [&](int i) {
    if (i == 37) {
      throw std::runtime_error("simulated worker crash");
    }
    completed.fetch_add(1);
  });
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("simulated worker crash"), std::string::npos);

  // Next batch starts clean: the error is not sticky and every index runs.
  std::atomic<int> sum{0};
  Status ok = pool.ParallelFor(50, [&](int i) { sum.fetch_add(i); });
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(sum.load(), 49 * 50 / 2);
}

TEST(ThreadPoolTest, InlineTaskExceptionIsAlsoCaptured) {
  ThreadPool pool(1);  // single-thread pools run the closure inline
  Status s = pool.ParallelFor(3, [&](int i) {
    if (i == 1) {
      throw std::runtime_error("inline crash");
    }
  });
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(pool.ParallelFor(3, [](int) {}).ok());
}

TEST(Crc32Test, KnownVectorsAndSensitivity) {
  // The IEEE CRC-32 check value (CRC of "123456789").
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("journal v1"), Crc32("journal v2"));
}

TEST(Fnv1a64Test, StableAndDistinct) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);  // FNV offset basis
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
}

TEST(FileIoTest, WriteReadTruncateRoundTrip) {
  std::string path = ::testing::TempDir() + "fileio_roundtrip.txt";
  RemoveFile(path);
  EXPECT_FALSE(FileExists(path));

  ASSERT_TRUE(WriteFile(path, "hello\nworld\n").ok());
  EXPECT_TRUE(FileExists(path));
  auto data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "hello\nworld\n");

  ASSERT_TRUE(TruncateFile(path, 6).ok());
  data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "hello\n");

  ASSERT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(ReadFile(path).ok());
}

TEST(FileIoTest, AppendWriterFlushesLineByLine) {
  std::string path = ::testing::TempDir() + "fileio_append.txt";
  RemoveFile(path);
  {
    auto writer = AppendWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendLine("one").ok());
    // Flushed per line: the line is durable while the writer is still open.
    auto mid = ReadFile(path);
    ASSERT_TRUE(mid.ok());
    EXPECT_EQ(*mid, "one\n");
    ASSERT_TRUE(writer->AppendLine("two").ok());
  }
  // Reopening appends after the existing content.
  {
    auto writer = AppendWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendLine("three").ok());
  }
  auto data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "one\ntwo\nthree\n");
  RemoveFile(path);
}

TEST(FaultInjectorTest, DisabledByDefault) {
  FaultInjector off;
  EXPECT_FALSE(off.enabled());
  for (int a = 0; a < 4; ++a) {
    EXPECT_FALSE(off.ShouldFail(123, a));
  }
}

TEST(FaultInjectorTest, StatelessAndDeterministic) {
  FaultInjector::Options options;
  options.failure_rate = 0.5;
  options.seed = 42;
  FaultInjector a(options), b(options);
  // Decisions are a pure function of (seed, site, attempt): two injectors
  // agree, and interleaving unrelated queries changes nothing.
  for (uint64_t site = 0; site < 50; ++site) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      bool expected = a.ShouldFail(site, attempt);
      b.ShouldFail(site * 7919 + 1, attempt);  // unrelated query in between
      EXPECT_EQ(b.ShouldFail(site, attempt), expected);
      EXPECT_EQ(a.ShouldFail(site, attempt), expected);  // re-asking agrees
    }
  }
}

TEST(FaultInjectorTest, RateIsApproximatelyHonored) {
  FaultInjector::Options options;
  options.failure_rate = 0.25;
  options.seed = 9;
  FaultInjector injector(options);
  int failures = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    failures += injector.ShouldFail(static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ull, 0);
  }
  EXPECT_NEAR(static_cast<double>(failures) / n, 0.25, 0.02);
}

TEST(FaultInjectorTest, AlwaysFailFirstOverridesRate) {
  FaultInjector::Options options;
  options.always_fail_first = 2;
  FaultInjector injector(options);
  EXPECT_TRUE(injector.enabled());
  for (uint64_t site = 0; site < 10; ++site) {
    EXPECT_TRUE(injector.ShouldFail(site, 0));
    EXPECT_TRUE(injector.ShouldFail(site, 1));
    EXPECT_FALSE(injector.ShouldFail(site, 2));  // rate 0: retries succeed
  }
}

}  // namespace
}  // namespace alt

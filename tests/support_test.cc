#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/support/crc32.h"
#include "src/support/fault_injection.h"
#include "src/support/fileio.h"
#include "src/support/metrics.h"
#include "src/support/rng.h"
#include "src/support/status.h"
#include "src/support/string_util.h"
#include "src/support/thread_pool.h"
#include "src/support/trace.h"

namespace alt {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::InvalidArgument("bad factor");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("bad factor"), std::string::npos);
}

TEST(StatusTest, StatusOrValueAndError) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  StatusOr<int> e = Status::NotFound("nope");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.NextU64() == b.NextU64();
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(13);
    EXPECT_LT(v, 13u);
  }
}

TEST(RngTest, NextDoubleUniformish) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(StringUtilTest, JoinAndSplit) {
  std::vector<int> v{1, 2, 3};
  EXPECT_EQ(Join(v, ", "), "1, 2, 3");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtilTest, FormatMicros) {
  EXPECT_EQ(FormatMicros(12.3), "12.3 us");
  EXPECT_EQ(FormatMicros(4567.0), "4.567 ms");
  EXPECT_EQ(FormatMicros(2.5e6), "2.500 s");
}

TEST(StringUtilTest, DivisorsSortedAndComplete) {
  auto d = Divisors(36);
  EXPECT_EQ(d, (std::vector<int64_t>{1, 2, 3, 4, 6, 9, 12, 18, 36}));
  EXPECT_EQ(Divisors(1), (std::vector<int64_t>{1}));
  EXPECT_EQ(Divisors(7), (std::vector<int64_t>{1, 7}));
}

class DivisorsProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(DivisorsProperty, EveryDivisorDivides) {
  int64_t n = GetParam();
  for (int64_t d : Divisors(n)) {
    EXPECT_EQ(n % d, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Values, DivisorsProperty,
                         ::testing::Values(2, 12, 16, 97, 128, 210, 1000, 2048));

TEST(StringUtilTest, CheckedIntParsing) {
  ASSERT_TRUE(ParseInt64("123").ok());
  EXPECT_EQ(*ParseInt64("123"), 123);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("12 ").ok());
  EXPECT_FALSE(ParseInt64("0x10").ok());
  EXPECT_FALSE(ParseInt64("9223372036854775808").ok());   // INT64_MAX + 1
  ASSERT_TRUE(ParseInt64("9223372036854775807").ok());
  EXPECT_FALSE(ParseInt32("4000000000").ok());
  EXPECT_EQ(*ParseInt32("-17"), -17);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(1000, [&](int i) { counts[i].fetch_add(1); });
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(counts[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  std::vector<int> order;
  pool.ParallelFor(5, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(round % 7, [&](int i) { sum.fetch_add(i + 1); });
    int n = round % 7;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(ThreadPoolTest, ZeroAndNegativeCountsAreNoops) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&](int) { ran = true; });
  pool.ParallelFor(-3, [&](int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, TaskExceptionDoesNotKillThePool) {
  // A throwing task must surface as a Status, not terminate the process or
  // deadlock the join, and the pool must stay fully usable afterwards.
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  Status s = pool.ParallelFor(100, [&](int i) {
    if (i == 37) {
      throw std::runtime_error("simulated worker crash");
    }
    completed.fetch_add(1);
  });
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("simulated worker crash"), std::string::npos);

  // Next batch starts clean: the error is not sticky and every index runs.
  std::atomic<int> sum{0};
  Status ok = pool.ParallelFor(50, [&](int i) { sum.fetch_add(i); });
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(sum.load(), 49 * 50 / 2);
}

TEST(ThreadPoolTest, InlineTaskExceptionIsAlsoCaptured) {
  ThreadPool pool(1);  // single-thread pools run the closure inline
  Status s = pool.ParallelFor(3, [&](int i) {
    if (i == 1) {
      throw std::runtime_error("inline crash");
    }
  });
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(pool.ParallelFor(3, [](int) {}).ok());
}

TEST(ThreadPoolTest, ReentrantParallelForFailsInsteadOfDeadlocking) {
  // A closure that calls back into ITS OWN pool used to deadlock (the inner
  // join waited on workers that were all busy running the outer batch). Now
  // the inner call is detected and refused with FailedPrecondition while the
  // outer batch completes; the pool stays usable afterwards.
  ThreadPool pool(4);
  std::atomic<int> inner_refused{0};
  std::atomic<int> outer_ran{0};
  Status outer = pool.ParallelFor(8, [&](int) {
    outer_ran.fetch_add(1);
    Status inner = pool.ParallelFor(2, [](int) {});
    if (!inner.ok()) {
      inner_refused.fetch_add(1);
      EXPECT_NE(inner.ToString().find("not reentrant"), std::string::npos);
    }
  });
  EXPECT_TRUE(outer.ok());
  EXPECT_EQ(outer_ran.load(), 8);
  EXPECT_EQ(inner_refused.load(), 8);

  // The guard clears with the batch: fresh top-level batches run fine...
  std::atomic<int> sum{0};
  EXPECT_TRUE(pool.ParallelFor(10, [&](int i) { sum.fetch_add(i); }).ok());
  EXPECT_EQ(sum.load(), 45);

  // ...and nesting onto a DIFFERENT pool is allowed (the serving pattern:
  // batch fan-out on one pool, intra-op sharding on another).
  ThreadPool inner_pool(2);
  std::atomic<int> nested{0};
  Status nested_status = pool.ParallelFor(4, [&](int) {
    // Only one outer index can hold the inner pool at a time, so serialize;
    // the point is that a distinct pool is not refused as reentrant.
    static std::mutex mu;
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_TRUE(inner_pool.ParallelFor(3, [&](int) { nested.fetch_add(1); }).ok());
  });
  EXPECT_TRUE(nested_status.ok());
  EXPECT_EQ(nested.load(), 12);
}

TEST(ThreadPoolTest, InlinePathIsNotGuardedAsReentrant) {
  // n == 1 and single-thread pools run inline without touching the batch
  // state, so they are callable from inside another pool's closure.
  ThreadPool pool(4);
  Status s = pool.ParallelFor(6, [&](int) {
    ASSERT_TRUE(pool.ParallelFor(1, [](int) {}).ok());  // inline on same pool
  });
  EXPECT_TRUE(s.ok());
}

TEST(Crc32Test, KnownVectorsAndSensitivity) {
  // The IEEE CRC-32 check value (CRC of "123456789").
  EXPECT_EQ(Crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(Crc32(""), 0u);
  EXPECT_NE(Crc32("journal v1"), Crc32("journal v2"));
}

TEST(Fnv1a64Test, StableAndDistinct) {
  EXPECT_EQ(Fnv1a64(""), 0xcbf29ce484222325ull);  // FNV offset basis
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
}

TEST(FileIoTest, WriteReadTruncateRoundTrip) {
  std::string path = ::testing::TempDir() + "fileio_roundtrip.txt";
  RemoveFile(path);
  EXPECT_FALSE(FileExists(path));

  ASSERT_TRUE(WriteFile(path, "hello\nworld\n").ok());
  EXPECT_TRUE(FileExists(path));
  auto data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "hello\nworld\n");

  ASSERT_TRUE(TruncateFile(path, 6).ok());
  data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "hello\n");

  ASSERT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_FALSE(ReadFile(path).ok());
}

TEST(FileIoTest, AppendWriterFlushesLineByLine) {
  std::string path = ::testing::TempDir() + "fileio_append.txt";
  RemoveFile(path);
  {
    auto writer = AppendWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendLine("one").ok());
    // Flushed per line: the line is durable while the writer is still open.
    auto mid = ReadFile(path);
    ASSERT_TRUE(mid.ok());
    EXPECT_EQ(*mid, "one\n");
    ASSERT_TRUE(writer->AppendLine("two").ok());
  }
  // Reopening appends after the existing content.
  {
    auto writer = AppendWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->AppendLine("three").ok());
  }
  auto data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, "one\ntwo\nthree\n");
  RemoveFile(path);
}

TEST(FaultInjectorTest, DisabledByDefault) {
  FaultInjector off;
  EXPECT_FALSE(off.enabled());
  for (int a = 0; a < 4; ++a) {
    EXPECT_FALSE(off.ShouldFail(123, a));
  }
}

TEST(FaultInjectorTest, StatelessAndDeterministic) {
  FaultInjector::Options options;
  options.failure_rate = 0.5;
  options.seed = 42;
  FaultInjector a(options), b(options);
  // Decisions are a pure function of (seed, site, attempt): two injectors
  // agree, and interleaving unrelated queries changes nothing.
  for (uint64_t site = 0; site < 50; ++site) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      bool expected = a.ShouldFail(site, attempt);
      b.ShouldFail(site * 7919 + 1, attempt);  // unrelated query in between
      EXPECT_EQ(b.ShouldFail(site, attempt), expected);
      EXPECT_EQ(a.ShouldFail(site, attempt), expected);  // re-asking agrees
    }
  }
}

TEST(FaultInjectorTest, RateIsApproximatelyHonored) {
  FaultInjector::Options options;
  options.failure_rate = 0.25;
  options.seed = 9;
  FaultInjector injector(options);
  int failures = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    failures += injector.ShouldFail(static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ull, 0);
  }
  EXPECT_NEAR(static_cast<double>(failures) / n, 0.25, 0.02);
}

TEST(FaultInjectorTest, AlwaysFailFirstOverridesRate) {
  FaultInjector::Options options;
  options.always_fail_first = 2;
  FaultInjector injector(options);
  EXPECT_TRUE(injector.enabled());
  for (uint64_t site = 0; site < 10; ++site) {
    EXPECT_TRUE(injector.ShouldFail(site, 0));
    EXPECT_TRUE(injector.ShouldFail(site, 1));
    EXPECT_FALSE(injector.ShouldFail(site, 2));  // rate 0: retries succeed
  }
}

// Structural JSON validation without a JSON library: tracks brace/bracket
// balance outside string literals (honoring escapes). Catches the failure
// modes a serializer can actually produce — unbalanced nesting, unterminated
// strings, raw control characters — without re-implementing a parser.
bool IsStructurallyValidJson(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // control characters must be escaped inside strings
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        stack.push_back(c);
        break;
      case '}':
        if (stack.empty() || stack.back() != '{') {
          return false;
        }
        stack.pop_back();
        break;
      case ']':
        if (stack.empty() || stack.back() != '[') {
          return false;
        }
        stack.pop_back();
        break;
      default:
        break;
    }
  }
  return !in_string && stack.empty();
}

TEST(TraceTest, DisabledTracingRecordsNothingAndRegistersNoBuffers) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Stop();
  recorder.StopAndDrain();  // clear anything a prior test left behind
  const int buffers_before = recorder.thread_buffer_count();
  ThreadPool pool(4);  // fresh threads: any buffer they register is new
  Status s = pool.ParallelFor(64, [&](int i) {
    TraceSpan span("test.disabled_span");
    TraceSpan detail("test.disabled_detail", "i=" + std::to_string(i));
    TraceInstant("test.disabled_instant");
  });
  ASSERT_TRUE(s.ok());
  // Disabled spans never reach the recorder: no per-thread buffer is
  // registered and nothing is drained.
  EXPECT_EQ(recorder.thread_buffer_count(), buffers_before);
  EXPECT_TRUE(recorder.StopAndDrain().empty());
}

TEST(TraceTest, ConcurrentSpansNestStrictlyAndSerializeToValidJson) {
  constexpr int kTasks = 64;
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  {
    TraceSpan outer("test.outer");
    ThreadPool pool(4);
    Status s = pool.ParallelFor(kTasks, [&](int i) {
      TraceSpan work("test.work", "i=" + std::to_string(i));
      {
        TraceSpan inner("test.inner");
        // A little real work so spans have nonzero extent.
        volatile double sink = 0.0;
        for (int k = 0; k < 500; ++k) {
          sink = sink + k * 0.5;
        }
      }
      TraceInstant("test.mark");
    });
    ASSERT_TRUE(s.ok());
  }
  std::vector<TraceEvent> events = recorder.StopAndDrain();

  int outer_n = 0, work_n = 0, inner_n = 0, mark_n = 0;
  for (const auto& e : events) {
    std::string name = e.name;
    outer_n += name == "test.outer";
    work_n += name == "test.work";
    inner_n += name == "test.inner";
    mark_n += name == "test.mark";
    EXPECT_GE(e.ts_us, 0.0);
    EXPECT_GE(e.dur_us, 0.0);
    if (e.instant) {
      EXPECT_EQ(e.dur_us, 0.0);
    }
  }
  EXPECT_EQ(outer_n, 1);
  EXPECT_EQ(work_n, kTasks);
  EXPECT_EQ(inner_n, kTasks);
  EXPECT_EQ(mark_n, kTasks);

  // Within one thread, RAII spans close in LIFO order, so any two spans on
  // the same tid are either disjoint or properly nested — never partially
  // overlapping.
  for (size_t a = 0; a < events.size(); ++a) {
    for (size_t b = a + 1; b < events.size(); ++b) {
      const TraceEvent& x = events[a];
      const TraceEvent& y = events[b];
      if (x.tid != y.tid || x.instant || y.instant) {
        continue;
      }
      double x0 = x.ts_us, x1 = x.ts_us + x.dur_us;
      double y0 = y.ts_us, y1 = y.ts_us + y.dur_us;
      bool disjoint = x1 <= y0 || y1 <= x0;
      bool x_contains_y = x0 <= y0 && y1 <= x1;
      bool y_contains_x = y0 <= x0 && x1 <= y1;
      ASSERT_TRUE(disjoint || x_contains_y || y_contains_x)
          << x.name << " [" << x0 << "," << x1 << ") and " << y.name << " [" << y0 << ","
          << y1 << ") partially overlap on tid " << x.tid;
    }
  }

  std::string path = ::testing::TempDir() + "trace_nesting_test.json";
  ASSERT_TRUE(WriteChromeTrace(events, path).ok());
  auto data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(IsStructurallyValidJson(*data));
  EXPECT_NE(data->find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(data->find("\"test.work\""), std::string::npos);
  EXPECT_NE(data->find("\"ph\":\"i\""), std::string::npos);  // the instants
  RemoveFile(path);
}

TEST(TraceTest, SpansOpenAcrossStopAreDroppedNotTruncated) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  auto open_span = std::make_unique<TraceSpan>("test.open_across_stop");
  std::vector<TraceEvent> events = recorder.StopAndDrain();
  EXPECT_TRUE(events.empty());  // the span had not completed when we stopped
  open_span.reset();            // destructor fires after Stop(): dropped
  EXPECT_TRUE(recorder.StopAndDrain().empty());
}

TEST(TraceTest, DetailStringsAreJsonEscaped) {
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Start();
  TraceInstant("test.escape", "quote=\" backslash=\\ newline=\n tab=\t");
  std::vector<TraceEvent> events = recorder.StopAndDrain();
  ASSERT_EQ(events.size(), 1u);
  std::string path = ::testing::TempDir() + "trace_escape_test.json";
  ASSERT_TRUE(WriteChromeTrace(events, path).ok());
  auto data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(IsStructurallyValidJson(*data));
  RemoveFile(path);
}

TEST(MetricsTest, CounterCountsPastInt32Range) {
  Counter c;
  const int64_t big = int64_t{3} << 30;  // ~3.2e9, already past INT32_MAX
  c.Add(big);
  c.Add(big);
  EXPECT_EQ(c.value(), 2 * big);  // no truncation or saturation at 2^31
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(MetricsTest, HistogramPercentilesAreWithinOneBucketOfExact) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Observe(static_cast<double>(i));
  }
  EXPECT_EQ(h.count(), 1000);
  EXPECT_NEAR(h.sum(), 1000.0 * 1001.0 / 2.0, 1e-6);
  EXPECT_EQ(h.max(), 1000.0);
  // Buckets grow by 2^(1/4) ~ 1.19x, and a percentile reports the upper
  // bound of the bucket holding the rank: the answer is never below the
  // exact value and at most ~19% above it.
  const double kBucketRatio = std::exp2(1.0 / Histogram::kSubBuckets);
  EXPECT_GE(h.Percentile(50), 500.0);
  EXPECT_LE(h.Percentile(50), 500.0 * kBucketRatio * 1.01);
  EXPECT_GE(h.Percentile(95), 950.0);
  EXPECT_LE(h.Percentile(95), 950.0 * kBucketRatio * 1.01);
  EXPECT_GE(h.Percentile(99), 990.0);
  EXPECT_LE(h.Percentile(99), 990.0 * kBucketRatio * 1.01);
  // Degenerate ranks stay in range.
  EXPECT_GE(h.Percentile(0), 1.0);
  EXPECT_LE(h.Percentile(100), 1000.0 * kBucketRatio * 1.01);
}

TEST(MetricsTest, HistogramAbsorbsHostileValues) {
  Histogram h;
  h.Observe(0.0);
  h.Observe(-5.0);
  h.Observe(std::numeric_limits<double>::quiet_NaN());
  h.Observe(1e300);  // far past the covered range: clamps to the last bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_TRUE(std::isfinite(h.Percentile(99)));
}

TEST(MetricsTest, ObserveIsThreadSafe) {
  Histogram& h = MetricsRegistry::Global().histogram("test.concurrent_hist");
  Counter& c = MetricsRegistry::Global().counter("test.concurrent_counter");
  const int64_t count_before = h.count();
  const int64_t value_before = c.value();
  ThreadPool pool(4);
  ASSERT_TRUE(pool.ParallelFor(1000, [&](int i) {
                    h.Observe(static_cast<double>(i % 97) + 1.0);
                    c.Add();
                  })
                  .ok());
  EXPECT_EQ(h.count() - count_before, 1000);
  EXPECT_EQ(c.value() - value_before, 1000);
}

TEST(MetricsTest, SnapshotDeltaIsolatesARun) {
  auto& registry = MetricsRegistry::Global();
  Counter& c = registry.counter("test.delta_counter");
  Histogram& h = registry.histogram("test.delta_hist");
  c.Add(5);
  h.Observe(10.0);  // pre-run noise the delta must subtract away

  MetricsSnapshot before = registry.Snapshot();
  c.Add(7);
  for (int i = 0; i < 100; ++i) {
    h.Observe(1000.0);
  }
  MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);

  EXPECT_EQ(delta.counter("test.delta_counter"), 7);
  EXPECT_EQ(delta.counter("test.never_created"), 0);
  const HistogramSnapshot* hs = delta.histogram("test.delta_hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, 100);
  EXPECT_NEAR(hs->sum, 100 * 1000.0, 1e-6);
  // Percentiles are recomputed from the delta buckets: the pre-run 10.0
  // observation must not drag p50 down.
  EXPECT_GE(hs->p50, 1000.0);
  EXPECT_LE(hs->p50, 1000.0 * 1.2);
}

TEST(MetricsTest, SnapshotJsonIsStructurallyValid) {
  auto& registry = MetricsRegistry::Global();
  registry.counter("test.json_counter").Add(3);
  registry.histogram("test.json_hist").Observe(42.0);
  registry.gauge("test.json_gauge").Set(-4);
  std::string json = registry.Snapshot().ToJson();
  EXPECT_TRUE(IsStructurallyValidJson(json));
  EXPECT_NE(json.find("\"test.json_counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\": -4"), std::string::npos);
}

TEST(MetricsTest, GaugeTracksALevelNotATotal) {
  auto& registry = MetricsRegistry::Global();
  Gauge& depth = registry.gauge("test.queue_depth");
  depth.Set(10);
  depth.Add(3);
  depth.Add(-5);  // levels go down; counters never do
  EXPECT_EQ(depth.value(), 8);

  MetricsSnapshot before = registry.Snapshot();
  depth.Set(2);
  MetricsSnapshot delta = registry.Snapshot().DeltaSince(before);
  // A gauge is a point-in-time reading: DeltaSince reports the end value
  // (2), not the 2 - 8 difference, and unknown gauges read as 0.
  EXPECT_EQ(delta.gauge("test.queue_depth"), 2);
  EXPECT_EQ(delta.gauge("test.never_created"), 0);
}

}  // namespace
}  // namespace alt

// Tests for the persistent tuning database: warm start (a second run against
// the same database issues ZERO fresh measurements while spending its budget
// identically), machine scoping, failure records feeding quarantine, and the
// corruption corpus — truncation, bit flips, duplicate keys, forged trailers
// — that tolerant load must skip without losing the surrounding records.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/core/alt.h"
#include "src/core/tuning_database.h"
#include "src/graph/networks.h"
#include "src/loop/serialization.h"
#include "src/support/crc32.h"
#include "src/support/fileio.h"

namespace alt {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

graph::Graph SmallConvGraph() {
  graph::Graph g("db_target");
  int x = g.AddInput("x", {1, 16, 14, 14});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("w", {32, 16, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, p, w, attrs, "conv");
  g.AddRelu(c, "relu");
  return g;
}

core::AltOptions BaseOptions() {
  core::AltOptions options;
  options.budget = 120;
  options.method = autotune::SearchMethod::kRandom;
  options.seed = 7;
  return options;
}

TEST(TuningDatabase, RecordsRoundTripAcrossReopen) {
  const std::string path = TempPath("db_roundtrip.altdb");
  RemoveFile(path);
  const auto& machine = sim::Machine::IntelCpu();

  {
    auto db = core::TuningDatabase::Open(path, machine);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    (*db)->Record(0x1111, {false, 123.456});
    (*db)->Record(0x2222, {true, 0.0});
    (*db)->Record(0x1111, {false, 999.0});  // duplicate: first record wins
    EXPECT_TRUE((*db)->Close().ok());
  }

  auto db = core::TuningDatabase::Open(path, machine);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->stats().loaded, 2);
  EXPECT_EQ((*db)->stats().skipped_records, 0);
  auto ok_entry = (*db)->Lookup(0x1111);
  ASSERT_TRUE(ok_entry.has_value());
  EXPECT_FALSE(ok_entry->failed);
  EXPECT_EQ(ok_entry->latency_us, 123.456);
  auto fail_entry = (*db)->Lookup(0x2222);
  ASSERT_TRUE(fail_entry.has_value());
  EXPECT_TRUE(fail_entry->failed);
  EXPECT_FALSE((*db)->Lookup(0x3333).has_value());
}

TEST(TuningDatabase, RecordsAreScopedToTheirMachine) {
  const std::string path = TempPath("db_machines.altdb");
  RemoveFile(path);

  {
    auto db = core::TuningDatabase::Open(path, sim::Machine::IntelCpu());
    ASSERT_TRUE(db.ok());
    (*db)->Record(0xabcd, {false, 42.0});
  }
  // A latency measured on the CPU means nothing on the GPU profile: same
  // site, different machine, no hit — but the record itself survives.
  auto gpu = core::TuningDatabase::Open(path, sim::Machine::NvidiaGpu());
  ASSERT_TRUE(gpu.ok());
  EXPECT_FALSE((*gpu)->Lookup(0xabcd).has_value());
  EXPECT_EQ((*gpu)->stats().loaded, 0);
  EXPECT_EQ((*gpu)->stats().total_records, 1);
  (*gpu)->Record(0xabcd, {false, 7.0});
  ASSERT_TRUE((*gpu)->Close().ok());

  auto cpu = core::TuningDatabase::Open(path, sim::Machine::IntelCpu());
  ASSERT_TRUE(cpu.ok());
  auto entry = (*cpu)->Lookup(0xabcd);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->latency_us, 42.0);
}

TEST(TuningDatabase, WarmStartIssuesZeroFreshMeasurements) {
  const std::string path = TempPath("db_warmstart.altdb");
  RemoveFile(path);
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();

  core::AltOptions options = BaseOptions();
  options.measure.database = path;
  auto cold = core::Compile(g, machine, options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_GT(cold->measure_stats.measured, 0);
  EXPECT_EQ(cold->measure_stats.db_hits, 0);

  // Second run, same database: every measurement is answered from disk.
  auto warm = core::Compile(g, machine, options);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->measure_stats.measured, 0);
  EXPECT_GT(warm->measure_stats.db_hits, 0);
  // Every request is a db hit, an in-run cache hit primed by one, or a
  // quarantine short-circuit — never a fresh measurement.
  EXPECT_EQ(warm->measure_stats.db_hits + warm->measure_stats.cache_hits +
                warm->measure_stats.failed,
            warm->measure_stats.requested);

  // Warm start must not bend the trajectory: identical result, identical
  // budget spend, identical schedules.
  EXPECT_EQ(warm->perf.latency_us, cold->perf.latency_us);
  EXPECT_EQ(warm->measurements_used, cold->measurements_used);
  ASSERT_EQ(warm->schedules.size(), cold->schedules.size());
  for (size_t i = 0; i < cold->schedules.size(); ++i) {
    EXPECT_EQ(loop::EncodeSchedule(warm->schedules[i]),
              loop::EncodeSchedule(cold->schedules[i]));
  }
}

TEST(TuningDatabase, FailureRecordsQuarantineOnWarmStart) {
  const std::string path = TempPath("db_fail_quarantine.altdb");
  RemoveFile(path);
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();

  // Cold run under persistent faults: some candidates fail for good and are
  // recorded as failures.
  core::AltOptions options = BaseOptions();
  options.measure.database = path;
  options.fault.injection.failure_rate = 0.3;
  options.fault.injection.seed = 11;
  options.fault.retry.max_attempts = 1;  // any injected failure is persistent
  options.fault.retry.backoff_base_ms = 0;
  auto cold = core::Compile(g, machine, options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_GT(cold->measure_stats.failed, 0);

  // Warm run WITHOUT fault injection: the recorded failures must come back
  // as db-hit failures that feed quarantine — never silently retried as if
  // the previous run hadn't learned they were bad.
  core::AltOptions warm_options = BaseOptions();
  warm_options.measure.database = path;
  auto warm = core::Compile(g, machine, warm_options);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->measure_stats.measured, 0);
  EXPECT_GT(warm->measure_stats.db_hits, 0);
}

TEST(TuningDatabase, CorruptionCorpusIsSkippedNotFatal) {
  const std::string path = TempPath("db_corruption.altdb");
  RemoveFile(path);
  const auto& machine = sim::Machine::IntelCpu();

  {
    auto db = core::TuningDatabase::Open(path, machine);
    ASSERT_TRUE(db.ok());
    for (uint64_t site = 1; site <= 8; ++site) {
      (*db)->Record(site, {false, static_cast<double>(site) * 10.0});
    }
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto data_or = ReadFile(path);
  ASSERT_TRUE(data_or.ok());
  const std::string clean = *data_or;

  struct Case {
    const char* name;
    std::string data;
    int64_t expect_loaded;
    int64_t min_skipped;
  };
  std::vector<Case> cases;

  // Bit flip in the middle of one record line: that line dies, all eight
  // minus one survive (plus the trailer no longer matches its count).
  {
    std::string flipped = clean;
    size_t second_line = flipped.find('\n', flipped.find('\n') + 1) + 10;
    flipped[second_line] ^= 0x20;
    cases.push_back({"bit-flip", flipped, 7, 1});
  }
  // Truncation mid-record: the torn tail is skipped and cut, earlier records
  // survive. Cutting 30 bytes removes the trailer and tears the final record.
  cases.push_back({"truncated", clean.substr(0, clean.size() - 30), 7, 1});
  // Forged trailer claiming the wrong count: skipped, records intact.
  {
    std::string forged = clean;
    size_t tpos = forged.rfind("trailer records=");
    ASSERT_NE(tpos, std::string::npos);
    // Rewrite the whole trailer line with a lying count, re-framed so the
    // CRC passes — the count check, not the checksum, must reject it.
    size_t line_start = forged.rfind('\n', tpos);
    line_start = line_start == std::string::npos ? 0 : line_start + 1;
    size_t line_end = forged.find('\n', tpos);
    forged.replace(line_start, line_end - line_start, FrameLine("trailer records=999"));
    cases.push_back({"forged-trailer", forged, 8, 1});
  }
  // Garbage prepended AND appended: both skipped, everything real loads.
  cases.push_back({"garbage-wrapped", "not a framed line\n" + clean + "zzzz", 8, 2});

  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    ASSERT_TRUE(WriteFile(path, c.data).ok());
    auto db = core::TuningDatabase::Open(path, machine);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    EXPECT_EQ((*db)->stats().loaded, c.expect_loaded);
    EXPECT_GE((*db)->stats().skipped_records, c.min_skipped);
    // Whatever survived is still correct data.
    auto entry = (*db)->Lookup(1);
    ASSERT_TRUE(entry.has_value());
    EXPECT_EQ(entry->latency_us, 10.0);
    // And the handle still appends cleanly after the damage.
    (*db)->Record(0x999, {false, 1.0});
    ASSERT_TRUE((*db)->Close().ok());
  }
}

TEST(TuningDatabase, DuplicateRecordsKeepFirstOccurrence) {
  const std::string path = TempPath("db_dupes.altdb");
  RemoveFile(path);
  const auto& machine = sim::Machine::IntelCpu();

  // Write the same site twice by concatenating two sessions' records (the
  // in-memory handle dedupes its own appends, so forge the second copy by
  // appending the file to itself minus the header).
  {
    auto db = core::TuningDatabase::Open(path, machine);
    ASSERT_TRUE(db.ok());
    (*db)->Record(0x77, {false, 11.0});
    ASSERT_TRUE((*db)->Close().ok());
  }
  auto data = ReadFile(path);
  ASSERT_TRUE(data.ok());
  std::string doubled = *data + *data;
  ASSERT_TRUE(WriteFile(path, doubled).ok());

  auto db = core::TuningDatabase::Open(path, machine);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ((*db)->stats().loaded, 1);
  EXPECT_EQ((*db)->stats().duplicate_records, 1);
  auto entry = (*db)->Lookup(0x77);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->latency_us, 11.0);
}

TEST(TuningDatabase, MachineFingerprintSeparatesProfiles) {
  sim::Machine a = sim::Machine::IntelCpu();
  sim::Machine b = a;
  EXPECT_EQ(core::MachineFingerprint(a), core::MachineFingerprint(b));
  b.cores += 1;
  EXPECT_NE(core::MachineFingerprint(a), core::MachineFingerprint(b));
  b = a;
  b.caches[0].size_bytes *= 2;
  EXPECT_NE(core::MachineFingerprint(a), core::MachineFingerprint(b));
}

}  // namespace
}  // namespace alt

#include <unordered_map>

#include <gtest/gtest.h>

#include "src/ir/eval.h"
#include "src/ir/expr.h"

namespace alt::ir {
namespace {

TEST(ExprTest, ConstantFolding) {
  Expr a = Const(6);
  Expr b = Const(4);
  EXPECT_TRUE(IsConst(Add(a, b), 10));
  EXPECT_TRUE(IsConst(Sub(a, b), 2));
  EXPECT_TRUE(IsConst(Mul(a, b), 24));
  EXPECT_TRUE(IsConst(FloorDiv(a, b), 1));
  EXPECT_TRUE(IsConst(Mod(a, b), 2));
  EXPECT_TRUE(IsConst(Min(a, b), 4));
  EXPECT_TRUE(IsConst(Max(a, b), 6));
}

TEST(ExprTest, IdentityFolding) {
  Expr x = MakeVar("x");
  EXPECT_EQ(Add(x, 0).get(), x.get());
  EXPECT_EQ(Mul(x, 1).get(), x.get());
  EXPECT_TRUE(IsZero(Mul(x, 0)));
  EXPECT_EQ(FloorDiv(x, 1).get(), x.get());
  EXPECT_TRUE(IsZero(Mod(x, 1)));
  EXPECT_TRUE(IsZero(Sub(x, x)));
}

TEST(ExprTest, MulDivCancellation) {
  Expr x = MakeVar("x");
  // (x * 8) / 4 == x * 2
  Expr e = FloorDiv(Mul(x, 8), 4);
  std::unordered_map<int, int64_t> env{{x->var_id, 5}};
  EXPECT_EQ(Eval(e, env), 10);
  EXPECT_EQ(e->kind, ExprKind::kMul);
}

TEST(ExprTest, FloorDivSemantics) {
  Expr x = MakeVar("x");
  Expr d = FloorDiv(x, Const(4));
  Expr m = Mod(x, Const(4));
  std::unordered_map<int, int64_t> env{{x->var_id, -3}};
  EXPECT_EQ(Eval(d, env), -1);  // floor(-3/4) = -1
  EXPECT_EQ(Eval(m, env), 1);   // -3 mod 4 = 1
}

TEST(ExprTest, SubstituteReplacesVars) {
  Expr x = MakeVar("x");
  Expr y = MakeVar("y");
  Expr e = Add(Mul(x, 3), y);
  std::unordered_map<int, Expr> map{{x->var_id, Const(2)}};
  Expr r = Substitute(e, map);
  std::unordered_map<int, int64_t> env{{y->var_id, 7}};
  EXPECT_EQ(Eval(r, env), 13);
}

TEST(ExprTest, CollectVarsDedup) {
  Expr x = MakeVar("x");
  Expr y = MakeVar("y");
  Expr e = Add(Mul(x, 3), Add(y, x));
  auto vars = CollectVars(e);
  EXPECT_EQ(vars.size(), 2u);
}

TEST(ExprTest, ToStringRendersStructure) {
  Expr x = MakeVarWithId("i", NextVarId());
  Expr e = Add(Mul(x, 4), 1);
  EXPECT_EQ(ToString(e), "((i * 4) + 1)");
}

TEST(CompiledExprTest, MatchesRecursiveEval) {
  Expr i = MakeVar("i");
  Expr j = MakeVar("j");
  Expr e = Add(Mul(FloorDiv(i, 3), 16), Add(Mod(i, 3), Mul(j, Min(i, Const(5)))));
  VarSlotMap slots;
  int si = slots.AddVar(i->var_id);
  int sj = slots.AddVar(j->var_id);
  auto compiled = CompiledExpr::Compile(e, slots);
  ASSERT_TRUE(compiled.ok());
  CompiledExpr ce = std::move(*compiled);
  std::vector<int64_t> env(2);
  for (int64_t vi = 0; vi < 20; ++vi) {
    for (int64_t vj = 0; vj < 20; ++vj) {
      env[si] = vi;
      env[sj] = vj;
      std::unordered_map<int, int64_t> ref_env{{i->var_id, vi}, {j->var_id, vj}};
      EXPECT_EQ(ce.Eval(env.data()), Eval(e, ref_env)) << "i=" << vi << " j=" << vj;
    }
  }
}

TEST(CompiledExprTest, ConstantDetection) {
  VarSlotMap slots;
  auto compiled = CompiledExpr::Compile(Const(42), slots);
  ASSERT_TRUE(compiled.ok());
  CompiledExpr c = std::move(*compiled);
  EXPECT_TRUE(c.IsConstant());
  EXPECT_EQ(c.Eval(nullptr), 42);
}

class ExprRandomizedTest : public ::testing::TestWithParam<int> {};

TEST_P(ExprRandomizedTest, SplitReconstruction) {
  // Property: i == (i / f) * f + (i % f) for all i, f.
  int f = GetParam();
  Expr x = MakeVar("x");
  Expr recon = Add(Mul(FloorDiv(x, f), f), Mod(x, f));
  for (int64_t v = 0; v < 100; ++v) {
    std::unordered_map<int, int64_t> env{{x->var_id, v}};
    EXPECT_EQ(Eval(recon, env), v);
  }
}

INSTANTIATE_TEST_SUITE_P(Factors, ExprRandomizedTest, ::testing::Values(1, 2, 3, 4, 7, 16, 100));

}  // namespace
}  // namespace alt::ir

// Tests for the parallel measurement engine: the determinism guarantee (a
// fixed seed produces an identical tuning trajectory at any thread count),
// the memoizing measurement cache, and the cache key.

#include <gtest/gtest.h>

#include "src/autotune/measure.h"
#include "src/autotune/tuner.h"
#include "src/core/alt.h"
#include "src/graph/networks.h"
#include "src/loop/serialization.h"

namespace alt {
namespace {

graph::Graph SmallConvGraph() {
  graph::Graph g("measure_target");
  int x = g.AddInput("x", {1, 16, 14, 14});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("w", {32, 16, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, p, w, attrs, "conv");
  g.AddRelu(c, "relu");
  return g;
}

// The group anchored at the convolution (groups also include the pad op).
loop::FusedGroup ComplexGroup(const graph::Graph& g,
                              const std::vector<loop::FusedGroup>& groups) {
  for (const auto& grp : groups) {
    if (graph::IsComplex(g.op(grp.anchor_op).kind)) {
      return grp;
    }
  }
  return groups.front();
}

core::AltOptions BaseOptions() {
  core::AltOptions options;
  options.budget = 160;
  options.method = autotune::SearchMethod::kRandom;
  options.seed = 7;
  return options;
}

TEST(MeasureEngine, TrajectoryIsIdenticalAcrossThreadCounts) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();

  core::AltOptions one = BaseOptions();
  one.measure_threads = 1;
  auto r1 = core::Compile(g, machine, one);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  core::AltOptions four = BaseOptions();
  four.measure_threads = 4;
  auto r4 = core::Compile(g, machine, four);
  ASSERT_TRUE(r4.ok()) << r4.status().ToString();

  // Best latency, budget spend, the full tuning curve, and every chosen
  // schedule must match bit-for-bit.
  EXPECT_EQ(r1->perf.latency_us, r4->perf.latency_us);
  EXPECT_EQ(r1->measurements_used, r4->measurements_used);
  ASSERT_EQ(r1->history_us.size(), r4->history_us.size());
  for (size_t i = 0; i < r1->history_us.size(); ++i) {
    ASSERT_EQ(r1->history_us[i], r4->history_us[i]) << "tuning curve diverges at " << i;
  }
  ASSERT_EQ(r1->schedules.size(), r4->schedules.size());
  for (size_t i = 0; i < r1->schedules.size(); ++i) {
    EXPECT_EQ(loop::EncodeSchedule(r1->schedules[i]), loop::EncodeSchedule(r4->schedules[i]));
  }
}

TEST(MeasureEngine, CacheOnMatchesCacheOffResult) {
  // Memoization changes how budget is spent, never what a candidate measures:
  // a cached tuning run must report cache hits and stay a valid compilation.
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();

  core::AltOptions cached = BaseOptions();
  cached.measure_cache = true;
  auto rc = core::Compile(g, machine, cached);
  ASSERT_TRUE(rc.ok());
  EXPECT_GT(rc->measure_stats.cache_hits, 0);
  EXPECT_EQ(rc->measure_stats.requested,
            rc->measure_stats.measured + rc->measure_stats.cache_hits +
                rc->measure_stats.failed);

  core::AltOptions uncached = BaseOptions();
  uncached.measure_cache = false;
  auto ru = core::Compile(g, machine, uncached);
  ASSERT_TRUE(ru.ok());
  EXPECT_EQ(ru->measure_stats.cache_hits, 0);
}

TEST(MeasureEngine, RepeatedMeasurementHitsCache) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  graph::LayoutAssignment la;
  auto groups = loop::PartitionGraph(g, la, true);
  ASSERT_FALSE(groups.empty());
  loop::FusedGroup group = ComplexGroup(g, groups);
  auto sig = loop::GroupSignature(g, la, group);
  ASSERT_TRUE(sig.ok());
  loop::LoopSchedule sched =
      loop::LoopSchedule::Naive(sig->spatial_extents, sig->reduction_extents);

  autotune::MeasureEngine engine(machine, /*threads=*/1, /*cache_enabled=*/true);
  auto first = engine.MeasureOne(g, la, group, sched);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.cache_hit);

  auto second = engine.MeasureOne(g, la, group, sched);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.latency_us, first.latency_us);
  EXPECT_EQ(engine.stats().measured, 1);
  EXPECT_EQ(engine.stats().cache_hits, 1);
  EXPECT_EQ(engine.cache_size(), 1);
}

TEST(MeasureEngine, DuplicateCandidatesInOneBatchMeasureOnce) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  graph::LayoutAssignment la;
  auto groups = loop::PartitionGraph(g, la, true);
  loop::FusedGroup group = ComplexGroup(g, groups);
  auto sig = loop::GroupSignature(g, la, group);
  ASSERT_TRUE(sig.ok());
  loop::LoopSchedule sched =
      loop::LoopSchedule::Naive(sig->spatial_extents, sig->reduction_extents);

  autotune::MeasureEngine engine(machine, /*threads=*/2, /*cache_enabled=*/true);
  auto results = engine.Measure(g, la, group, {sched, sched, sched});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].cache_hit);
  EXPECT_TRUE(results[1].cache_hit);
  EXPECT_TRUE(results[2].cache_hit);
  EXPECT_EQ(results[1].latency_us, results[0].latency_us);
  EXPECT_EQ(engine.stats().measured, 1);
  EXPECT_EQ(engine.stats().cache_hits, 2);

  // With the cache disabled every slot is measured (historical behavior).
  autotune::MeasureEngine raw(machine, /*threads=*/2, /*cache_enabled=*/false);
  auto raw_results = raw.Measure(g, la, group, {sched, sched});
  EXPECT_FALSE(raw_results[0].cache_hit);
  EXPECT_FALSE(raw_results[1].cache_hit);
  EXPECT_EQ(raw.stats().measured, 2);
}

TEST(MeasureEngine, ParallelBatchMatchesSequentialBatch) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  graph::LayoutAssignment la;
  auto groups = loop::PartitionGraph(g, la, true);
  loop::FusedGroup group = ComplexGroup(g, groups);
  auto sig = loop::GroupSignature(g, la, group);
  ASSERT_TRUE(sig.ok());

  // A spread of schedules from the loop space.
  auto space = autotune::LoopSpace::ForSignature(*sig, machine, false);
  Rng rng(13);
  std::vector<loop::LoopSchedule> scheds;
  for (int i = 0; i < 12; ++i) {
    scheds.push_back(space.Decode(autotune::RandomPoint(space.num_knobs(), rng)));
  }

  autotune::MeasureEngine seq(machine, 1, false);
  autotune::MeasureEngine par(machine, 4, false);
  auto rs = seq.Measure(g, la, group, scheds);
  auto rp = par.Measure(g, la, group, scheds);
  ASSERT_EQ(rs.size(), rp.size());
  for (size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].status.ok(), rp[i].status.ok());
    EXPECT_EQ(rs[i].latency_us, rp[i].latency_us) << "slot " << i;
  }
}

TEST(MeasureEngine, CacheKeySeparatesLayoutsAndGroups) {
  graph::Graph g = SmallConvGraph();
  auto groups = loop::PartitionGraph(g, graph::LayoutAssignment{}, true);
  ASSERT_FALSE(groups.empty());

  graph::LayoutAssignment canonical;
  graph::LayoutAssignment blocked;
  blocked.Set(g.op(groups[0].anchor_op).output,
              layout::LayoutSeq().Append(layout::Primitive::Split(1, {2, 16})));

  std::string key_canonical = autotune::GroupCacheKey(g, canonical, groups[0]);
  std::string key_blocked = autotune::GroupCacheKey(g, blocked, groups[0]);
  EXPECT_NE(key_canonical, key_blocked);
  // Deterministic for identical inputs.
  EXPECT_EQ(key_canonical, autotune::GroupCacheKey(g, canonical, groups[0]));
}

}  // namespace
}  // namespace alt

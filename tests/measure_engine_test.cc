// Tests for the parallel measurement engine: the determinism guarantee (a
// fixed seed produces an identical tuning trajectory at any thread count),
// the memoizing measurement cache, and the cache key.

#include <gtest/gtest.h>

#include <set>

#include "src/autotune/measure.h"
#include "src/autotune/tuner.h"
#include "src/core/alt.h"
#include "src/graph/networks.h"
#include "src/loop/serialization.h"
#include "src/support/crc32.h"
#include "src/support/metrics.h"

namespace alt {
namespace {

graph::Graph SmallConvGraph() {
  graph::Graph g("measure_target");
  int x = g.AddInput("x", {1, 16, 14, 14});
  graph::PadAttrs pad;
  pad.before = {0, 0, 1, 1};
  pad.after = {0, 0, 1, 1};
  int p = g.AddPad(x, pad, "pad");
  int w = g.AddConstant("w", {32, 16, 3, 3});
  graph::ConvAttrs attrs;
  int c = g.AddConv(graph::OpKind::kConv2d, p, w, attrs, "conv");
  g.AddRelu(c, "relu");
  return g;
}

// The group anchored at the convolution (groups also include the pad op).
loop::FusedGroup ComplexGroup(const graph::Graph& g,
                              const std::vector<loop::FusedGroup>& groups) {
  for (const auto& grp : groups) {
    if (graph::IsComplex(g.op(grp.anchor_op).kind)) {
      return grp;
    }
  }
  return groups.front();
}

core::AltOptions BaseOptions() {
  core::AltOptions options;
  options.budget = 160;
  options.method = autotune::SearchMethod::kRandom;
  options.seed = 7;
  return options;
}

TEST(MeasureEngine, TrajectoryIsIdenticalAcrossThreadCounts) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();

  core::AltOptions one = BaseOptions();
  one.measure.threads = 1;
  auto r1 = core::Compile(g, machine, one);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();

  core::AltOptions four = BaseOptions();
  four.measure.threads = 4;
  auto r4 = core::Compile(g, machine, four);
  ASSERT_TRUE(r4.ok()) << r4.status().ToString();

  // Best latency, budget spend, the full tuning curve, and every chosen
  // schedule must match bit-for-bit.
  EXPECT_EQ(r1->perf.latency_us, r4->perf.latency_us);
  EXPECT_EQ(r1->measurements_used, r4->measurements_used);
  ASSERT_EQ(r1->history_us.size(), r4->history_us.size());
  for (size_t i = 0; i < r1->history_us.size(); ++i) {
    ASSERT_EQ(r1->history_us[i], r4->history_us[i]) << "tuning curve diverges at " << i;
  }
  ASSERT_EQ(r1->schedules.size(), r4->schedules.size());
  for (size_t i = 0; i < r1->schedules.size(); ++i) {
    EXPECT_EQ(loop::EncodeSchedule(r1->schedules[i]), loop::EncodeSchedule(r4->schedules[i]));
  }
}

TEST(MeasureEngine, CacheOnMatchesCacheOffResult) {
  // Memoization changes how budget is spent, never what a candidate measures:
  // a cached tuning run must report cache hits and stay a valid compilation.
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();

  core::AltOptions cached = BaseOptions();
  cached.measure.cache = true;
  auto rc = core::Compile(g, machine, cached);
  ASSERT_TRUE(rc.ok());
  EXPECT_GT(rc->measure_stats.cache_hits, 0);
  EXPECT_EQ(rc->measure_stats.requested,
            rc->measure_stats.measured + rc->measure_stats.cache_hits +
                rc->measure_stats.failed + rc->measure_stats.replayed);

  core::AltOptions uncached = BaseOptions();
  uncached.measure.cache = false;
  auto ru = core::Compile(g, machine, uncached);
  ASSERT_TRUE(ru.ok());
  EXPECT_EQ(ru->measure_stats.cache_hits, 0);
}

TEST(MeasureEngine, RepeatedMeasurementHitsCache) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  graph::LayoutAssignment la;
  auto groups = loop::PartitionGraph(g, la, true);
  ASSERT_FALSE(groups.empty());
  loop::FusedGroup group = ComplexGroup(g, groups);
  auto sig = loop::GroupSignature(g, la, group);
  ASSERT_TRUE(sig.ok());
  loop::LoopSchedule sched =
      loop::LoopSchedule::Naive(sig->spatial_extents, sig->reduction_extents);

  autotune::MeasureEngine engine(machine, /*threads=*/1, /*cache_enabled=*/true);
  auto first = engine.MeasureOne(g, la, group, sched);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.cache_hit);

  auto second = engine.MeasureOne(g, la, group, sched);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.latency_us, first.latency_us);
  EXPECT_EQ(engine.stats().measured, 1);
  EXPECT_EQ(engine.stats().cache_hits, 1);
  EXPECT_EQ(engine.cache_size(), 1);
}

TEST(MeasureEngine, DuplicateCandidatesInOneBatchMeasureOnce) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  graph::LayoutAssignment la;
  auto groups = loop::PartitionGraph(g, la, true);
  loop::FusedGroup group = ComplexGroup(g, groups);
  auto sig = loop::GroupSignature(g, la, group);
  ASSERT_TRUE(sig.ok());
  loop::LoopSchedule sched =
      loop::LoopSchedule::Naive(sig->spatial_extents, sig->reduction_extents);

  autotune::MeasureEngine engine(machine, /*threads=*/2, /*cache_enabled=*/true);
  auto results = engine.Measure(g, la, group, {sched, sched, sched});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[0].cache_hit);
  EXPECT_TRUE(results[1].cache_hit);
  EXPECT_TRUE(results[2].cache_hit);
  EXPECT_EQ(results[1].latency_us, results[0].latency_us);
  EXPECT_EQ(engine.stats().measured, 1);
  EXPECT_EQ(engine.stats().cache_hits, 2);

  // With the cache disabled every slot is measured (historical behavior).
  autotune::MeasureEngine raw(machine, /*threads=*/2, /*cache_enabled=*/false);
  auto raw_results = raw.Measure(g, la, group, {sched, sched});
  EXPECT_FALSE(raw_results[0].cache_hit);
  EXPECT_FALSE(raw_results[1].cache_hit);
  EXPECT_EQ(raw.stats().measured, 2);
}

TEST(MeasureEngine, ParallelBatchMatchesSequentialBatch) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  graph::LayoutAssignment la;
  auto groups = loop::PartitionGraph(g, la, true);
  loop::FusedGroup group = ComplexGroup(g, groups);
  auto sig = loop::GroupSignature(g, la, group);
  ASSERT_TRUE(sig.ok());

  // A spread of schedules from the loop space.
  auto space = autotune::LoopSpace::ForSignature(*sig, machine, false);
  Rng rng(13);
  std::vector<loop::LoopSchedule> scheds;
  for (int i = 0; i < 12; ++i) {
    scheds.push_back(space.Decode(autotune::RandomPoint(space.num_knobs(), rng)));
  }

  autotune::MeasureEngine seq(machine, 1, false);
  autotune::MeasureEngine par(machine, 4, false);
  auto rs = seq.Measure(g, la, group, scheds);
  auto rp = par.Measure(g, la, group, scheds);
  ASSERT_EQ(rs.size(), rp.size());
  for (size_t i = 0; i < rs.size(); ++i) {
    EXPECT_EQ(rs[i].status.ok(), rp[i].status.ok());
    EXPECT_EQ(rs[i].latency_us, rp[i].latency_us) << "slot " << i;
  }
}

TEST(MeasureEngine, CacheKeySeparatesLayoutsAndGroups) {
  graph::Graph g = SmallConvGraph();
  auto groups = loop::PartitionGraph(g, graph::LayoutAssignment{}, true);
  ASSERT_FALSE(groups.empty());

  graph::LayoutAssignment canonical;
  graph::LayoutAssignment blocked;
  blocked.Set(g.op(groups[0].anchor_op).output,
              layout::LayoutSeq().Append(layout::Primitive::Split(1, {2, 16})));

  std::string key_canonical = autotune::GroupCacheKey(g, canonical, groups[0]);
  std::string key_blocked = autotune::GroupCacheKey(g, blocked, groups[0]);
  EXPECT_NE(key_canonical, key_blocked);
  // Deterministic for identical inputs.
  EXPECT_EQ(key_canonical, autotune::GroupCacheKey(g, canonical, groups[0]));
}

// One measurable candidate (group + naive schedule) for the fault tests.
struct Candidate {
  graph::Graph g;
  graph::LayoutAssignment la;
  loop::FusedGroup group;
  loop::LoopSchedule sched;
};

Candidate MakeCandidate() {
  Candidate c{SmallConvGraph(), {}, {}, {}};
  auto groups = loop::PartitionGraph(c.g, c.la, true);
  c.group = ComplexGroup(c.g, groups);
  auto sig = loop::GroupSignature(c.g, c.la, c.group);
  EXPECT_TRUE(sig.ok());
  c.sched = loop::LoopSchedule::Naive(sig->spatial_extents, sig->reduction_extents);
  return c;
}

TEST(MeasureEngine, TransientFailureRetriesThenCaches) {
  Candidate c = MakeCandidate();
  const auto& machine = sim::Machine::IntelCpu();

  autotune::MeasureEngineConfig config;
  config.threads = 1;
  config.faults.always_fail_first = 1;  // first attempt of every key fails
  config.retry.max_attempts = 3;
  autotune::MeasureEngine engine(machine, config);

  auto result = engine.MeasureOne(c.g, c.la, c.group, c.sched);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.attempts, 2);  // one injected failure, then success
  EXPECT_LT(result.latency_us, 1e30);
  EXPECT_EQ(engine.stats().retries, 1);
  EXPECT_EQ(engine.stats().injected_failures, 1);
  EXPECT_EQ(engine.stats().measured, 1);
  EXPECT_EQ(engine.stats().failed, 0);
  EXPECT_EQ(engine.cache_size(), 1);

  // The recovered value is a real measurement: it hits the cache like any
  // other, and matches a fault-free engine's answer.
  auto again = engine.MeasureOne(c.g, c.la, c.group, c.sched);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.latency_us, result.latency_us);
  autotune::MeasureEngine clean(machine, /*threads=*/1, /*cache_enabled=*/true);
  auto reference = clean.MeasureOne(c.g, c.la, c.group, c.sched);
  EXPECT_EQ(reference.latency_us, result.latency_us);
}

TEST(MeasureEngine, PersistentFailureQuarantinesAndIsNeverCached) {
  Candidate c = MakeCandidate();
  const auto& machine = sim::Machine::IntelCpu();

  autotune::MeasureEngineConfig config;
  config.threads = 1;
  config.faults.always_fail_first = 100;  // outlasts any retry budget
  config.retry.max_attempts = 3;
  autotune::MeasureEngine engine(machine, config);

  auto result = engine.MeasureOne(c.g, c.la, c.group, c.sched);
  EXPECT_FALSE(result.status.ok());
  EXPECT_EQ(result.attempts, 3);
  EXPECT_EQ(engine.stats().failed, 1);
  EXPECT_EQ(engine.stats().retries, 2);
  EXPECT_EQ(engine.stats().quarantined, 1);
  EXPECT_EQ(engine.quarantine_size(), 1);
  EXPECT_EQ(engine.cache_size(), 0);  // failures are never cached as latencies

  // Second request short-circuits in quarantine: zero attempts, still failed.
  auto again = engine.MeasureOne(c.g, c.la, c.group, c.sched);
  EXPECT_FALSE(again.status.ok());
  EXPECT_EQ(again.attempts, 0);
  EXPECT_FALSE(again.cache_hit);
  EXPECT_EQ(engine.stats().failed, 2);
  EXPECT_EQ(engine.stats().retries, 2);  // no new attempts were spent
  EXPECT_EQ(engine.stats().quarantined, 1);
}

TEST(MeasureEngine, FaultyBatchStillFillsEverySlot) {
  // A batch under a 30% transient failure rate must come back fully
  // populated: every slot either a real latency or a non-ok status, no
  // aborts, and accounting intact.
  Candidate c = MakeCandidate();
  const auto& machine = sim::Machine::IntelCpu();
  auto sig = loop::GroupSignature(c.g, c.la, c.group);
  ASSERT_TRUE(sig.ok());
  auto space = autotune::LoopSpace::ForSignature(*sig, machine, false);
  Rng rng(29);
  std::vector<loop::LoopSchedule> scheds;
  for (int i = 0; i < 16; ++i) {
    scheds.push_back(space.Decode(autotune::RandomPoint(space.num_knobs(), rng)));
  }

  autotune::MeasureEngineConfig config;
  config.threads = 4;
  config.faults.failure_rate = 0.3;
  config.faults.seed = 11;
  config.retry.max_attempts = 2;
  autotune::MeasureEngine engine(machine, config);

  auto results = engine.Measure(c.g, c.la, c.group, scheds);
  ASSERT_EQ(results.size(), scheds.size());
  for (const auto& r : results) {
    if (r.status.ok()) {
      EXPECT_LT(r.latency_us, 1e30);
    }
  }
  const auto& st = engine.stats();
  EXPECT_EQ(st.requested, static_cast<int64_t>(scheds.size()));
  EXPECT_EQ(st.requested, st.measured + st.cache_hits + st.failed + st.replayed);
}

TEST(MeasureEngine, ReplayLogAnswersWithoutMeasuring) {
  Candidate c = MakeCandidate();
  const auto& machine = sim::Machine::IntelCpu();

  // Hand-build a replay log for this exact candidate, the same way the
  // journal writer keys it: Fnv1a64 of GroupCacheKey + "#" + schedule.
  const std::string key = autotune::GroupCacheKey(c.g, c.la, c.group) + "#" +
                          loop::EncodeSchedule(c.sched);
  autotune::MeasureReplayLog replay;
  replay.ok[Fnv1a64(key)] = 42.5;

  autotune::MeasureEngineConfig config;
  config.threads = 1;
  config.replay = &replay;
  int fresh_outcomes = 0;
  config.on_measured = [&](const std::string&, const autotune::MeasureResult&) {
    ++fresh_outcomes;
  };
  autotune::MeasureEngine engine(machine, config);

  auto result = engine.MeasureOne(c.g, c.la, c.group, c.sched);
  ASSERT_TRUE(result.status.ok());
  EXPECT_TRUE(result.replayed);
  EXPECT_FALSE(result.cache_hit);  // budget accounting must match the original run
  EXPECT_EQ(result.latency_us, 42.5);
  EXPECT_EQ(result.attempts, 0);
  EXPECT_EQ(engine.stats().measured, 0);
  EXPECT_EQ(engine.stats().replayed, 1);
  EXPECT_EQ(fresh_outcomes, 0);  // a replay is not a fresh outcome

  // Successful replays prime the cache, so a revisit is a plain cache hit —
  // exactly what the original (journaling) run would have seen.
  auto again = engine.MeasureOne(c.g, c.la, c.group, c.sched);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.latency_us, 42.5);
}

TEST(MeasureEngine, ReplayedFailureQuarantines) {
  Candidate c = MakeCandidate();
  const auto& machine = sim::Machine::IntelCpu();

  const std::string key = autotune::GroupCacheKey(c.g, c.la, c.group) + "#" +
                          loop::EncodeSchedule(c.sched);
  autotune::MeasureReplayLog replay;
  replay.failed.insert(Fnv1a64(key));

  autotune::MeasureEngineConfig config;
  config.threads = 1;
  config.replay = &replay;
  autotune::MeasureEngine engine(machine, config);

  auto result = engine.MeasureOne(c.g, c.la, c.group, c.sched);
  EXPECT_FALSE(result.status.ok());
  EXPECT_TRUE(result.replayed);
  EXPECT_EQ(engine.stats().replayed, 1);
  EXPECT_EQ(engine.stats().measured, 0);
  EXPECT_EQ(engine.quarantine_size(), 1);  // stays failed on revisit, no re-measure
}

// Every batch must account for every requested candidate exactly once:
// requested == measured + cache_hits + failed + replayed + db_hits.
void ExpectStatsInvariant(const autotune::MeasureStats& s) {
  EXPECT_EQ(s.requested, s.measured + s.cache_hits + s.failed + s.replayed + s.db_hits)
      << "requested=" << s.requested << " measured=" << s.measured
      << " cache_hits=" << s.cache_hits << " failed=" << s.failed
      << " replayed=" << s.replayed << " db_hits=" << s.db_hits;
}

TEST(MeasureEngine, StatsInvariantHoldsAcrossConfigurations) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  for (int threads : {1, 4}) {
    for (bool cache : {false, true}) {
      for (bool faults : {false, true}) {
        core::AltOptions options = BaseOptions();
        options.measure.threads = threads;
        options.measure.cache = cache;
        if (faults) {
          options.fault.injection.always_fail_first = 1;
          options.fault.retry.max_attempts = 3;
        }
        auto result = core::Compile(g, machine, options);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        const autotune::MeasureStats& s = result->measure_stats;
        SCOPED_TRACE("threads=" + std::to_string(threads) +
                     " cache=" + std::to_string(cache) + " faults=" + std::to_string(faults));
        ExpectStatsInvariant(s);
        EXPECT_GT(s.requested, 0);
      }
    }
  }
}

TEST(MeasureEngine, WallTimeIsPerBatchAndCpuTimeIsPerAttempt) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();

  // Single-threaded: attempt time is a subset of the batch wall interval on
  // the same clock, so cpu_ms can never exceed wall_ms.
  core::AltOptions one = BaseOptions();
  one.measure.threads = 1;
  auto r1 = core::Compile(g, machine, one);
  ASSERT_TRUE(r1.ok());
  EXPECT_GT(r1->measure_stats.wall_ms, 0.0);
  EXPECT_GT(r1->measure_stats.cpu_ms, 0.0);
  EXPECT_LE(r1->measure_stats.cpu_ms, r1->measure_stats.wall_ms);

  // Parallel: wall_ms is charged once per batch on the calling thread. The
  // elapsed batch interval is (serial bookkeeping + the parallel span), and
  // the parallel span is itself covered by attempt time on some thread, so
  // wall can exceed cpu only by the serial bookkeeping — never by a
  // per-thread multiple, which is what double-counted accounting produced.
  core::AltOptions four = BaseOptions();
  four.measure.threads = 4;
  auto r4 = core::Compile(g, machine, four);
  ASSERT_TRUE(r4.ok());
  EXPECT_GT(r4->measure_stats.wall_ms, 0.0);
  EXPECT_LE(r4->measure_stats.wall_ms, r4->measure_stats.cpu_ms + 100.0);
  ExpectStatsInvariant(r4->measure_stats);
}

TEST(MeasureEngine, MetricsSnapshotMirrorsMeasureStats) {
  graph::Graph g = SmallConvGraph();
  const auto& machine = sim::Machine::IntelCpu();
  core::AltOptions options = BaseOptions();
  options.fault.injection.always_fail_first = 1;  // exercise the retry counters too
  options.fault.retry.max_attempts = 3;
  auto result = core::Compile(g, machine, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // The per-run metrics delta attached to the result must agree exactly with
  // the engine's own counters — one source of truth, two views.
  const autotune::MeasureStats& s = result->measure_stats;
  const MetricsSnapshot& m = result->metrics;
  EXPECT_EQ(m.counter("measure.requested"), s.requested);
  EXPECT_EQ(m.counter("measure.measured"), s.measured);
  EXPECT_EQ(m.counter("measure.cache_hits"), s.cache_hits);
  EXPECT_EQ(m.counter("measure.failed"), s.failed);
  EXPECT_EQ(m.counter("measure.replayed"), s.replayed);
  EXPECT_EQ(m.counter("measure.retries"), s.retries);
  EXPECT_EQ(m.counter("measure.quarantined"), s.quarantined);
  EXPECT_EQ(m.counter("measure.injected_failures"), s.injected_failures);
  // One latency sample per pool slot that actually did work. In this
  // configuration every slot succeeds (after its injected-failure retry) and
  // nothing quarantines, so slots == measured exactly.
  EXPECT_EQ(s.failed, 0);
  const HistogramSnapshot* candidate = m.histogram("measure.candidate_us");
  ASSERT_NE(candidate, nullptr);
  EXPECT_EQ(candidate->count, s.measured);
}

TEST(MeasureEngine, QuarantineIsCappedAndEvictsOldest) {
  // An adversarial run can fail an unbounded stream of distinct candidates;
  // RetryPolicy::max_quarantine keeps the blocklist from growing without
  // bound by evicting the OLDEST entry — recency beats history for a
  // blocklist whose purpose is "don't retry what just burned us".
  Candidate c = MakeCandidate();
  const auto& machine = sim::Machine::IntelCpu();
  auto sig = loop::GroupSignature(c.g, c.la, c.group);
  ASSERT_TRUE(sig.ok());
  auto space = autotune::LoopSpace::ForSignature(*sig, machine, false);
  Rng rng(31);
  std::vector<loop::LoopSchedule> scheds;
  std::set<std::string> unique;
  while (scheds.size() < 10) {
    auto s = space.Decode(autotune::RandomPoint(space.num_knobs(), rng));
    if (unique.insert(loop::EncodeSchedule(s)).second) {
      scheds.push_back(s);
    }
  }

  autotune::MeasureEngineConfig config;
  config.threads = 1;
  config.faults.always_fail_first = 100;  // every candidate fails persistently
  config.retry.max_attempts = 1;
  config.retry.max_quarantine = 4;
  autotune::MeasureEngine engine(machine, config);

  for (const auto& s : scheds) {
    auto r = engine.MeasureOne(c.g, c.la, c.group, s);
    EXPECT_FALSE(r.status.ok());
  }
  EXPECT_EQ(engine.stats().quarantined, 10);  // all were quarantined at some point
  EXPECT_EQ(engine.quarantine_size(), 4);     // only the newest 4 are still held
  EXPECT_EQ(MetricsRegistry::Global().gauge("measure.quarantine_size").value(), 4);

  // The oldest entry was evicted: measuring schedule 0 again RE-ATTEMPTS it
  // (and re-quarantines, evicting again) while the newest short-circuits.
  auto oldest = engine.MeasureOne(c.g, c.la, c.group, scheds[0]);
  EXPECT_EQ(oldest.attempts, 1);
  auto newest = engine.MeasureOne(c.g, c.la, c.group, scheds[9]);
  EXPECT_EQ(newest.attempts, 0);  // still quarantined: zero budget spent
  EXPECT_EQ(engine.quarantine_size(), 4);
}

}  // namespace
}  // namespace alt

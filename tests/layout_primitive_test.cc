// Tests for layout primitives: shape transforms, read-access rewriting, and
// the round-trip property  MapInverse ∘ MapRead == identity  on canonical
// indices (the foundation of the §6 compilation pass).

#include <unordered_map>

#include <gtest/gtest.h>

#include "src/ir/expr.h"
#include "src/layout/primitive.h"

namespace alt::layout {
namespace {

using ir::Const;
using ir::Eval;
using ir::Expr;
using ir::MakeVar;

std::vector<Expr> MakeVars(int n, std::vector<int>* ids) {
  std::vector<Expr> vars;
  for (int i = 0; i < n; ++i) {
    Expr v = MakeVar("v" + std::to_string(i));
    ids->push_back(v->var_id);
    vars.push_back(v);
  }
  return vars;
}

TEST(LayoutShapeTest, SplitReorderMatchesPaperExample) {
  // NOHW -> N O/ot H W ot (paper §4.1.1, ot = 8).
  std::vector<int64_t> shape{1, 32, 14, 14};
  LayoutSeq seq;
  seq.Append(Primitive::Split(1, {4, 8}));
  seq.Append(Primitive::Reorder({0, 1, 3, 4, 2}));
  ASSERT_TRUE(seq.ApplyToShape(shape).ok());
  EXPECT_EQ(shape, (std::vector<int64_t>{1, 4, 14, 14, 8}));
}

TEST(LayoutShapeTest, FuseSplitReorderSpatialPacking) {
  // NHWO -> N (HWO) -> N (O/4) 4 (HW) -> N (O/4) (HW) 4 (paper §4.1.1).
  std::vector<int64_t> shape{1, 6, 5, 8};
  LayoutSeq seq;
  seq.Append(Primitive::Fuse(1, 3));
  seq.Append(Primitive::Split(1, {2, 4, 30}));
  seq.Append(Primitive::Reorder({0, 1, 3, 2}));
  ASSERT_TRUE(seq.ApplyToShape(shape).ok());
  EXPECT_EQ(shape, (std::vector<int64_t>{1, 2, 30, 4}));
}

TEST(LayoutShapeTest, UnfoldShape) {
  // Array of 5 unfolded with B=3, S=2 -> {{1,2,3},{3,4,5}} (paper §4.1.2).
  std::vector<int64_t> shape{5};
  LayoutSeq seq;
  seq.Append(Primitive::Unfold(0, 3, 2));
  ASSERT_TRUE(seq.ApplyToShape(shape).ok());
  EXPECT_EQ(shape, (std::vector<int64_t>{2, 3}));
}

TEST(LayoutShapeTest, PadShape) {
  std::vector<int64_t> shape{4, 6};
  LayoutSeq seq;
  seq.Append(Primitive::Pad(1, 1, 1));
  ASSERT_TRUE(seq.ApplyToShape(shape).ok());
  EXPECT_EQ(shape, (std::vector<int64_t>{4, 8}));
}

TEST(LayoutShapeTest, SplitRejectsNonDividingFactors) {
  std::vector<int64_t> shape{10};
  LayoutSeq seq;
  seq.Append(Primitive::Split(0, {3, 3}));
  EXPECT_FALSE(seq.ApplyToShape(shape).ok());
}

TEST(LayoutShapeTest, UnfoldRejectsGapStride) {
  std::vector<int64_t> shape{10};
  LayoutSeq seq;
  seq.Append(Primitive::Unfold(0, 2, 3));  // stride > tile would lose elements
  EXPECT_FALSE(seq.ApplyToShape(shape).ok());
}

TEST(LayoutAccessTest, PaperAccessRewriteExample) {
  // Paper §4.1.1 walk-through: NHWO with H=3,W=4,O=8, primitives
  // fuse([1,2,3]); split(1,[O/4=2,4,HW=12]); reorder([0,1,3,2]).
  // Original access T[n][h][w][o]; the example derives
  // T[n][e/(HW*4)][e mod HW][(e/HW) mod 4] with e = h*W*O + w*O + o.
  std::vector<int64_t> shape{2, 3, 4, 8};
  LayoutSeq seq;
  seq.Append(Primitive::Fuse(1, 3));
  seq.Append(Primitive::Split(1, {2, 4, 12}));
  seq.Append(Primitive::Reorder({0, 1, 3, 2}));

  std::vector<int> ids;
  auto vars = MakeVars(4, &ids);
  auto mapped = seq.MapRead(shape, vars);
  ASSERT_TRUE(mapped.ok());
  ASSERT_EQ(mapped->size(), 4u);

  // Validate numerically against the closed form from the paper.
  for (int64_t n = 0; n < 2; ++n) {
    for (int64_t h = 0; h < 3; ++h) {
      for (int64_t w = 0; w < 4; ++w) {
        for (int64_t o = 0; o < 8; ++o) {
          std::unordered_map<int, int64_t> env{
              {ids[0], n}, {ids[1], h}, {ids[2], w}, {ids[3], o}};
          int64_t e = h * 4 * 8 + w * 8 + o;
          EXPECT_EQ(Eval((*mapped)[0], env), n);
          EXPECT_EQ(Eval((*mapped)[1], env), e / 48);
          EXPECT_EQ(Eval((*mapped)[2], env), e % 12);
          EXPECT_EQ(Eval((*mapped)[3], env), (e / 12) % 4);
        }
      }
    }
  }
}

TEST(LayoutAccessTest, UnfoldCanonicalRepresentativeCoversAllElements) {
  // {1,2,3,4,5} with B=3,S=2: element x lives at (tile, offset) and
  // tile*S+offset must reconstruct x.
  std::vector<int64_t> shape{5};
  LayoutSeq seq;
  seq.Append(Primitive::Unfold(0, 3, 2));
  std::vector<int> ids;
  auto vars = MakeVars(1, &ids);
  auto mapped = seq.MapRead(shape, vars);
  ASSERT_TRUE(mapped.ok());
  for (int64_t x = 0; x < 5; ++x) {
    std::unordered_map<int, int64_t> env{{ids[0], x}};
    int64_t tile = Eval((*mapped)[0], env);
    int64_t off = Eval((*mapped)[1], env);
    EXPECT_GE(tile, 0);
    EXPECT_LT(tile, 2);
    EXPECT_GE(off, 0);
    EXPECT_LT(off, 3);
    EXPECT_EQ(tile * 2 + off, x);
  }
}

TEST(LayoutAccessTest, UnfoldWindowFormMatchesEquationOne) {
  // Sliding window access x = V*i + r over a dim of extent D. After unfold
  // with B = V*(ht-1) + M and S = V*ht, Eq. (1) maps (i, r) to
  // (i / ht, V*(i mod ht) + r), and tile*S + offset must equal x.
  const int64_t V = 2;
  const int64_t M = 3;   // window size (e.g. KH)
  const int64_t ht = 4;  // output rows per tile
  const int64_t out_extent = 12;
  const int64_t D = V * (out_extent - 1) + M;
  const int64_t B = V * (ht - 1) + M;
  const int64_t S = V * ht;

  std::vector<int64_t> shape{D};
  LayoutSeq seq;
  seq.Append(Primitive::Unfold(0, B, S));

  Expr i = MakeVar("i");
  Expr r = MakeVar("r");
  Expr x = ir::Add(ir::Mul(i, V), r);
  WindowPattern wp{i, V, r, M};
  auto mapped = seq.MapRead(shape, {x}, {wp});
  ASSERT_TRUE(mapped.ok());

  for (int64_t vi = 0; vi < out_extent; ++vi) {
    for (int64_t vr = 0; vr < M; ++vr) {
      std::unordered_map<int, int64_t> env{{i->var_id, vi}, {r->var_id, vr}};
      int64_t tile = Eval((*mapped)[0], env);
      int64_t off = Eval((*mapped)[1], env);
      EXPECT_EQ(tile, vi / ht);
      EXPECT_EQ(off, V * (vi % ht) + vr);
      EXPECT_EQ(tile * S + off, V * vi + vr);  // same element
      EXPECT_GE(off, 0);
      EXPECT_LT(off, B);  // window never straddles tiles
    }
  }
}

// Property: for any primitive sequence without data duplication, MapInverse
// of fresh new-layout vars composed with MapRead is the identity.
struct SeqCase {
  std::string name;
  std::vector<int64_t> shape;
  LayoutSeq seq;
};

class LayoutRoundTripTest : public ::testing::TestWithParam<int> {
 public:
  static std::vector<SeqCase> Cases() {
    std::vector<SeqCase> cases;
    {
      SeqCase c;
      c.name = "split";
      c.shape = {6, 8};
      c.seq.Append(Primitive::Split(1, {2, 4}));
      cases.push_back(c);
    }
    {
      SeqCase c;
      c.name = "split3";
      c.shape = {24};
      c.seq.Append(Primitive::Split(0, {2, 3, 4}));
      cases.push_back(c);
    }
    {
      SeqCase c;
      c.name = "reorder";
      c.shape = {2, 3, 4};
      c.seq.Append(Primitive::Reorder({2, 0, 1}));
      cases.push_back(c);
    }
    {
      SeqCase c;
      c.name = "fuse";
      c.shape = {2, 3, 4};
      c.seq.Append(Primitive::Fuse(0, 3));
      cases.push_back(c);
    }
    {
      SeqCase c;
      c.name = "pad";
      c.shape = {5};
      c.seq.Append(Primitive::Pad(0, 2, 1));
      cases.push_back(c);
    }
    {
      SeqCase c;
      c.name = "nchw_to_blocked";
      c.shape = {1, 32, 7, 7};
      c.seq.Append(Primitive::Split(1, {4, 8}));
      c.seq.Append(Primitive::Reorder({0, 1, 3, 4, 2}));
      cases.push_back(c);
    }
    {
      SeqCase c;
      c.name = "alt_c2d_template";
      // N H/ht W/wt O/ot ht wt ot with ht=2, wt=2, ot=8.
      c.shape = {1, 8, 8, 32};
      c.seq.Append(Primitive::Split(1, {4, 2}));
      c.seq.Append(Primitive::Split(3, {4, 2}));
      c.seq.Append(Primitive::Split(5, {4, 8}));
      c.seq.Append(Primitive::Reorder({0, 1, 3, 5, 2, 4, 6}));
      cases.push_back(c);
    }
    {
      SeqCase c;
      c.name = "fuse_then_split";
      c.shape = {4, 6};
      c.seq.Append(Primitive::Fuse(0, 2));
      c.seq.Append(Primitive::Split(0, {3, 8}));
      cases.push_back(c);
    }
    {
      SeqCase c;
      c.name = "unfold_no_overlap";
      c.shape = {12};
      c.seq.Append(Primitive::Unfold(0, 3, 3));
      cases.push_back(c);
    }
    {
      SeqCase c;
      c.name = "unfold_overlap";
      c.shape = {11};
      c.seq.Append(Primitive::Unfold(0, 5, 3));
      cases.push_back(c);
    }
    return cases;
  }
};

TEST_P(LayoutRoundTripTest, InverseOfReadIsIdentity) {
  SeqCase c = Cases()[GetParam()];
  std::vector<int64_t> new_shape = c.shape;
  ASSERT_TRUE(c.seq.ApplyToShape(new_shape).ok()) << c.name;

  // Canonical vars -> new indices -> back through inverse.
  std::vector<int> ids;
  auto vars = MakeVars(static_cast<int>(c.shape.size()), &ids);
  auto fwd = c.seq.MapRead(c.shape, vars);
  ASSERT_TRUE(fwd.ok()) << c.name;
  auto back = c.seq.MapInverse(c.shape, *fwd);
  ASSERT_TRUE(back.ok()) << c.name;
  ASSERT_EQ(back->size(), c.shape.size()) << c.name;

  // Enumerate the whole canonical domain and check identity.
  std::vector<int64_t> point(c.shape.size(), 0);
  for (;;) {
    std::unordered_map<int, int64_t> env;
    for (size_t d = 0; d < point.size(); ++d) {
      env[ids[d]] = point[d];
    }
    for (size_t d = 0; d < point.size(); ++d) {
      EXPECT_EQ(Eval((*back)[d], env), point[d]) << c.name << " dim " << d;
    }
    // Also: forward indices must be in-bounds of the new shape.
    for (size_t d = 0; d < new_shape.size(); ++d) {
      int64_t v = Eval((*fwd)[d], env);
      EXPECT_GE(v, 0) << c.name;
      EXPECT_LT(v, new_shape[d]) << c.name;
    }
    int d = static_cast<int>(point.size()) - 1;
    while (d >= 0 && ++point[d] == c.shape[d]) {
      point[d--] = 0;
    }
    if (d < 0) {
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSequences, LayoutRoundTripTest,
                         ::testing::Range(0, static_cast<int>(10)));

TEST(LayoutSeqTest, NontrivialAdvancedDetection) {
  LayoutSeq basic;
  basic.Append(Primitive::Split(0, {2, 2}));
  basic.Append(Primitive::Reorder({1, 0, 2}));
  EXPECT_FALSE(basic.HasNontrivialAdvanced());

  LayoutSeq overlap;
  overlap.Append(Primitive::Unfold(0, 4, 2));
  EXPECT_TRUE(overlap.HasNontrivialAdvanced());

  LayoutSeq tiled;  // non-overlapping unfold behaves like a split
  tiled.Append(Primitive::Unfold(0, 4, 4));
  EXPECT_FALSE(tiled.HasNontrivialAdvanced());

  LayoutSeq padded;
  padded.Append(Primitive::Pad(0, 1, 1));
  EXPECT_TRUE(padded.HasNontrivialAdvanced());
}

TEST(LayoutSeqTest, StateVectorConcatenatesPrimitiveStates) {
  LayoutSeq seq;
  seq.Append(Primitive::Split(2, {4, 8}));
  seq.Append(Primitive::Unfold(1, 6, 4));
  auto state = seq.StateVector();
  EXPECT_FALSE(state.empty());
  // split contributes kind+dim+2 factors, unfold kind+dim+tile+stride.
  EXPECT_EQ(state.size(), 8u);
}

TEST(LayoutSeqTest, ToStringIsReadable) {
  LayoutSeq seq;
  seq.Append(Primitive::Split(1, {2, 16}));
  seq.Append(Primitive::Reorder({0, 1, 3, 4, 2}));
  std::string s = seq.ToString();
  EXPECT_NE(s.find("split"), std::string::npos);
  EXPECT_NE(s.find("reorder"), std::string::npos);
}

TEST(LayoutShapeTest, PaddingWithWindowPatternShiftsBase) {
  // Pad then unfold with a window pattern: pad by a multiple of the stride
  // keeps the Eq. (1) form valid.
  const int64_t V = 1;
  const int64_t M = 3;
  const int64_t ht = 4;
  const int64_t D = 14;  // unpadded input extent
  std::vector<int64_t> shape{D};
  LayoutSeq seq;
  seq.Append(Primitive::Pad(0, 1, 1));
  seq.Append(Primitive::Unfold(0, ht + M - 1, ht));

  Expr i = MakeVar("i");
  Expr r = MakeVar("r");
  // Canonical access into the unpadded tensor: i + r - 1 would be the usual
  // padded conv pattern, but here we access x = i*V + r directly.
  Expr x = ir::Add(ir::Mul(i, V), r);
  WindowPattern wp{i, V, r, M};
  auto mapped = seq.MapRead(shape, {x}, {wp});
  ASSERT_TRUE(mapped.ok());
  std::vector<int64_t> new_shape{D};
  ASSERT_TRUE(seq.ApplyToShape(new_shape).ok());
  // All accesses must stay in bounds and reconstruct x + pad.
  for (int64_t vi = 0; vi + M <= D + 2 && vi < 12; ++vi) {
    for (int64_t vr = 0; vr < M; ++vr) {
      std::unordered_map<int, int64_t> env{{i->var_id, vi}, {r->var_id, vr}};
      int64_t tile = Eval((*mapped)[0], env);
      int64_t off = Eval((*mapped)[1], env);
      EXPECT_EQ(tile * ht + off, vi + vr + 1);
      EXPECT_GE(off, 0);
      EXPECT_LT(off, ht + M - 1);
    }
  }
}

}  // namespace
}  // namespace alt::layout

namespace alt::layout {
namespace {

class InvertedSeqTest : public ::testing::TestWithParam<int> {};

TEST_P(InvertedSeqTest, InvertedSequenceRestoresShapeAndIndices) {
  // Property: applying seq then Inverted(seq) restores the original shape,
  // and the composed access map is the identity.
  int which = GetParam();
  std::vector<int64_t> shape;
  LayoutSeq seq;
  switch (which) {
    case 0:
      shape = {24};
      seq.Append(Primitive::Split(0, {2, 3, 4}));
      break;
    case 1:
      shape = {4, 6, 8};
      seq.Append(Primitive::Reorder({2, 0, 1}));
      break;
    case 2:
      shape = {4, 6, 8};
      seq.Append(Primitive::Fuse(0, 2));
      break;
    case 3:
      shape = {1, 32, 8, 8};
      seq.Append(Primitive::Split(1, {4, 8}));
      seq.Append(Primitive::Reorder({0, 1, 3, 4, 2}));
      break;
    case 4:
      shape = {6, 10};
      seq.Append(Primitive::Fuse(0, 2));
      seq.Append(Primitive::Split(0, {5, 12}));
      seq.Append(Primitive::Reorder({1, 0}));
      break;
  }
  std::vector<int64_t> transformed = shape;
  ASSERT_TRUE(seq.ApplyToShape(transformed).ok());
  auto inverse = seq.Inverted(shape);
  ASSERT_TRUE(inverse.ok()) << inverse.status().ToString();
  std::vector<int64_t> restored = transformed;
  ASSERT_TRUE(inverse->ApplyToShape(restored).ok());
  EXPECT_EQ(restored, shape);

  // Composed access rewrite: forward through seq, then forward through the
  // inverse, must be the identity on every point.
  std::vector<int> ids;
  std::vector<ir::Expr> vars;
  for (size_t d = 0; d < shape.size(); ++d) {
    auto v = ir::MakeVar("q" + std::to_string(d));
    ids.push_back(v->var_id);
    vars.push_back(v);
  }
  auto fwd = seq.MapRead(shape, vars);
  ASSERT_TRUE(fwd.ok());
  auto back = inverse->MapRead(transformed, *fwd);
  ASSERT_TRUE(back.ok());
  std::vector<int64_t> point(shape.size(), 0);
  for (;;) {
    std::unordered_map<int, int64_t> env;
    for (size_t d = 0; d < point.size(); ++d) {
      env[ids[d]] = point[d];
    }
    for (size_t d = 0; d < point.size(); ++d) {
      EXPECT_EQ(ir::Eval((*back)[d], env), point[d]);
    }
    int d = static_cast<int>(point.size()) - 1;
    while (d >= 0 && ++point[d] == shape[d]) {
      point[d--] = 0;
    }
    if (d < 0) {
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seqs, InvertedSeqTest, ::testing::Range(0, 5));

TEST(InvertedSeqTest, AdvancedPrimitivesRejected) {
  LayoutSeq seq;
  seq.Append(Primitive::Unfold(0, 4, 2));
  EXPECT_FALSE(seq.Inverted({10}).ok());
}

}  // namespace
}  // namespace alt::layout
